package see

import (
	"fmt"
	"time"

	"see/internal/experiment"
)

// ExperimentParams configures one evaluation data point (paper §IV-A
// defaults via DefaultExperimentParams).
type ExperimentParams struct {
	Nodes    int
	SDPairs  int
	Channels int
	Memory   int
	// SwapProb, Alpha and Delta follow the NetworkConfig convention: zero
	// means "paper default", ExplicitZero means an actual zero.
	SwapProb float64
	Alpha    float64
	Delta    float64
	// Trials per data point (paper: 100).
	Trials int
	// Seed drives everything; same seed, same numbers.
	Seed int64
	// Tracer observes every engine's slot pipeline across all trials;
	// trials run concurrently, so it must be safe for concurrent use
	// (CountingTracer is). nil disables instrumentation.
	Tracer Tracer
	// Faults applies a deterministic fault schedule to every trial (each
	// engine gets its own injector); nil disables fault injection.
	Faults *FaultPlan
	// SlotBudget bounds each engine's LP solve; on timeout the slot
	// degrades to the Greedy fallback. Zero means no budget.
	SlotBudget time.Duration
	// Slots runs each trial for this many consecutive time slots per
	// algorithm (default 1, the paper's single-slot evaluation); reported
	// throughput is always per slot.
	Slots int
	// CarryOver banks realized-but-unconsumed segments across the trial's
	// slots (see SchedulerOptions.CarryOver). Only meaningful with
	// Slots > 1.
	CarryOver bool
	// DecoherenceSlots is the carry-over age window (default 1); see
	// SchedulerOptions.DecoherenceSlots.
	DecoherenceSlots int
	// Workers bounds the goroutines running trials concurrently (0 =
	// GOMAXPROCS, 1 = serial). Results are identical at any value.
	Workers int
}

// DefaultExperimentParams returns the paper's defaults with 100 trials.
func DefaultExperimentParams() ExperimentParams {
	p := experiment.DefaultParams()
	return ExperimentParams{
		Nodes:    p.Nodes,
		SDPairs:  p.SDPairs,
		Channels: p.Channels,
		Memory:   p.Memory,
		SwapProb: p.SwapProb,
		Alpha:    p.Alpha,
		Delta:    p.Delta,
		Trials:   p.Trials,
		Seed:     p.BaseSeed,
	}
}

func (p ExperimentParams) toInternal() experiment.Params {
	in := experiment.DefaultParams()
	if p.Nodes > 0 {
		in.Nodes = p.Nodes
	}
	if p.SDPairs > 0 {
		in.SDPairs = p.SDPairs
	}
	if p.Channels > 0 {
		in.Channels = p.Channels
	}
	if p.Memory > 0 {
		in.Memory = p.Memory
	}
	in.SwapProb = overrideFloat(p.SwapProb, in.SwapProb)
	in.Alpha = overrideFloat(p.Alpha, in.Alpha)
	in.Delta = overrideFloat(p.Delta, in.Delta)
	if p.Trials > 0 {
		in.Trials = p.Trials
	}
	if p.Seed != 0 {
		in.BaseSeed = p.Seed
	}
	in.Tracer = p.Tracer
	in.Faults = p.Faults
	in.SlotBudget = p.SlotBudget
	in.Slots = p.Slots
	in.CarryOver = p.CarryOver
	in.DecoherenceSlots = p.DecoherenceSlots
	in.Workers = p.Workers
	return in
}

// PointResult is one (configuration, algorithm) evaluation outcome.
type PointResult struct {
	// MeanThroughput is the average established connections per slot.
	MeanThroughput float64
	// CI95 is the half-width of the 95% confidence interval.
	CI95 float64
	// Jain is the mean Jain fairness index across SD pairs.
	Jain float64
	// CDFXs/CDFPs trace the per-SD-pair throughput CDF of the first trial
	// (the paper's (b)/(c) subplots).
	CDFXs, CDFPs []float64
}

// RunExperiment evaluates all three algorithms on identical instances.
func RunExperiment(p ExperimentParams) (map[Algorithm]PointResult, error) {
	res, err := experiment.RunPoint(p.toInternal())
	if err != nil {
		return nil, err
	}
	out := make(map[Algorithm]PointResult, len(res))
	for alg, pr := range res {
		out[alg] = PointResult{
			MeanThroughput: pr.Throughput.Mean,
			CI95:           pr.Throughput.CI95,
			Jain:           pr.Jain,
			CDFXs:          pr.PerPairCDF.Xs,
			CDFPs:          pr.PerPairCDF.Ps,
		}
	}
	return out, nil
}

// MotivationExample evaluates the two Fig. 2 plans analytically and returns
// (conventional, SEE) expected connections — 0.729 and 1.489 in the paper.
func MotivationExample() (conventional, seeValue float64) {
	r := experiment.Motivation()
	return r.Conventional, r.SEE
}

// SweepPoint is one x-value of a figure sweep.
type SweepPoint struct {
	X       float64
	Results map[Algorithm]PointResult
}

// FigureData is a regenerated evaluation figure.
type FigureData struct {
	// Name identifies the figure (e.g. "fig5-swap-prob").
	Name string
	// XLabel names the sweep variable.
	XLabel string
	Points []SweepPoint
}

// Figure regenerates the data behind one of the paper's evaluation figures
// (3: link capacity, 4: α, 5: swap probability, 6: network scale, 7: SD
// pairs). The base parameters configure everything except the swept
// variable.
func Figure(id int, base ExperimentParams) (*FigureData, error) {
	in := base.toInternal()
	var sw *experiment.Sweep
	var err error
	switch id {
	case 3:
		sw, err = experiment.Fig3LinkCapacity(in)
	case 4:
		sw, err = experiment.Fig4Alpha(in)
	case 5:
		sw, err = experiment.Fig5SwapProb(in)
	case 6:
		sw, err = experiment.Fig6Nodes(in)
	case 7:
		sw, err = experiment.Fig7SDPairs(in)
	default:
		return nil, fmt.Errorf("see: no figure %d (want 3..7)", id)
	}
	if err != nil {
		return nil, err
	}
	out := &FigureData{Name: sw.Name, XLabel: sw.XLabel}
	for _, pt := range sw.Points {
		rp := make(map[Algorithm]PointResult, len(pt.Results))
		for alg, pr := range pt.Results {
			rp[alg] = PointResult{
				MeanThroughput: pr.Throughput.Mean,
				CI95:           pr.Throughput.CI95,
				Jain:           pr.Jain,
				CDFXs:          pr.PerPairCDF.Xs,
				CDFPs:          pr.PerPairCDF.Ps,
			}
		}
		out.Points = append(out.Points, SweepPoint{X: pt.X, Results: rp})
	}
	return out, nil
}
