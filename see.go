// Package see is the public API of the SEE reproduction — Segmented
// Entanglement Establishment for Throughput Maximization in Quantum
// Networks (Zhao et al., IEEE ICDCS 2022).
//
// The package wraps the internal engine stack behind a small surface:
//
//	net, pairs, _ := see.GenerateNetwork(see.DefaultNetworkConfig(), 20, 1)
//	sched, _ := see.NewScheduler(see.SEE, net, pairs, nil)
//	res, _ := sched.RunSlot(rand.New(rand.NewSource(1)))
//	fmt.Println("established:", res.Established)
//
// Three schedulers are available: SEE (the paper's contribution), REPS
// (the INFOCOM'21 entanglement-link baseline) and E2E (all-optical
// switching only), plus the repo-grown Greedy non-LP baseline. The
// experiment harness regenerating the paper's figures is exposed via
// RunExperiment and the Fig* helpers. SchedulerOptions.Faults injects
// deterministic faults (see ParseFaultSpec) and SchedulerOptions.SlotBudget
// bounds the LP solve, degrading gracefully to Greedy when exceeded.
package see

import (
	"errors"
	"io"
	"time"

	"see/internal/chaos"
	"see/internal/engines"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/serve"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
	"see/internal/xrand"
)

// Algorithm selects an entanglement-establishment scheme. It is the
// canonical sched.Algorithm shared by every layer of the simulator.
type Algorithm = sched.Algorithm

// The schemes compared in the paper's evaluation.
const (
	// SEE integrates all-optical switching with quantum swapping
	// (the paper's contribution).
	SEE = sched.SEE
	// REPS uses entanglement links only (Zhao & Qiao, INFOCOM 2021).
	REPS = sched.REPS
	// E2E uses all-optical switching only: one segment per connection.
	E2E = sched.E2E
	// Greedy is the repo-grown non-LP baseline: round-robin shortest-path
	// planning with first-come-first-served reservation. It doubles as the
	// degradation target when an LP scheduler blows its SlotBudget.
	Greedy = sched.Greedy
	// Contend is the repo-grown contention-aware baseline in the Q-CAST
	// spirit: candidate paths scored by expected throughput, selected
	// best-first under residual channel/memory accounting, with
	// recovery-path fallback in the physical phase (internal/contend).
	Contend = sched.Contend
	// QPass is the offline-routing contrast baseline in the Q-PASS spirit:
	// candidate paths are fixed from the fault-free topology with per-hop
	// recovery reserved up front, and announced faults are ignored.
	QPass = sched.QPass
	// ContendAware is Contend with fault-forecast subtraction: announced
	// outages and brownouts are removed from the residual capacities
	// before any candidate is scored.
	ContendAware = sched.ContendAware
	// SEEAware is SEE with fault-forecast subtraction: forecast-dead links
	// leave the LP's column pricing and announced capacity reductions
	// shrink the planning tables.
	SEEAware = sched.SEEAware
	// Oracle is the capacity-bound pseudo-scheduler: it establishes
	// nothing and consumes no randomness, but its UpperBound is the
	// network's summed expected entanglement capacity (per-pair min-cut
	// over success-scaled channel counts), so a sweep that includes it can
	// report every real scheme's throughput as a fraction of what the
	// topology could theoretically deliver (see internal/oracle).
	Oracle = sched.Oracle
)

// NetworkConfig mirrors the evaluation parameters of §IV-A.
type NetworkConfig struct {
	// Nodes placed uniformly in a square area (default 200).
	Nodes int
	// AreaKM is the square side in km (default 10,000).
	AreaKM float64
	// Channels per quantum link (default 3).
	Channels int
	// Memory units per node (default 10).
	Memory int
	// SwapProb is the quantum swapping success probability q (default 0.9).
	// Zero means "use the default"; set ExplicitZero for an actual q = 0.
	SwapProb float64
	// Alpha is the attenuation in p = e^(−αl) + δ (default 2e-4).
	// Zero means "use the default"; set ExplicitZero for an actual α = 0.
	Alpha float64
	// Delta is the half-width of the uniform noise δ (default 0.05).
	// Zero means "use the default"; set ExplicitZero for an actual δ = 0.
	Delta float64
}

// DefaultNetworkConfig returns the paper's defaults.
func DefaultNetworkConfig() NetworkConfig {
	c := topo.DefaultConfig()
	return NetworkConfig{
		Nodes:    c.Nodes,
		AreaKM:   c.AreaKM,
		Channels: c.Channels,
		Memory:   c.Memory,
		SwapProb: c.SwapProb,
		Alpha:    c.Alpha,
		Delta:    c.Delta,
	}
}

// ExplicitZero marks a NetworkConfig field as "explicitly zero". The zero
// value of SwapProb, Alpha and Delta means "use the paper default" (so
// sparse literals like NetworkConfig{Nodes: 50} keep working); assigning
// ExplicitZero — or any negative value — requests an actual zero, e.g.
// perfect swapping ablations (SwapProb stays default, q=0 kills every swap)
// or a noise-free success model (Alpha=0 ⇒ p=1+δ clamp, Delta=0 ⇒ no noise).
const ExplicitZero = -1

// overrideFloat resolves the unset / default / explicit-zero convention:
// 0 keeps def, ExplicitZero (any negative) means an actual 0.
func overrideFloat(v, def float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 0:
		return v
	default:
		return def
	}
}

func (c NetworkConfig) toTopo() topo.Config {
	t := topo.DefaultConfig()
	if c.Nodes > 0 {
		t.Nodes = c.Nodes
	}
	if c.AreaKM > 0 {
		t.AreaKM = c.AreaKM
	}
	if c.Channels > 0 {
		t.Channels = c.Channels
	}
	if c.Memory > 0 {
		t.Memory = c.Memory
	}
	t.SwapProb = overrideFloat(c.SwapProb, t.SwapProb)
	t.Alpha = overrideFloat(c.Alpha, t.Alpha)
	t.Delta = overrideFloat(c.Delta, t.Delta)
	return t
}

// SDPair is a source-destination demand.
type SDPair struct {
	S, D int
}

// Network is a generated quantum data network plus its demand set.
type Network struct {
	inner *topo.Network
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return n.inner.NumNodes() }

// NumLinks returns the quantum link count.
func (n *Network) NumLinks() int { return n.inner.NumLinks() }

// Stats summarizes the topology (degree, link lengths, probabilities).
func (n *Network) Stats() NetworkStats {
	st := topo.Summarize(n.inner)
	return NetworkStats{
		Nodes:        st.Nodes,
		Links:        st.Links,
		AvgDegree:    st.AvgDegree,
		MeanLinkKM:   st.MeanLinkKM,
		MeanLinkProb: st.MeanLinkProb,
	}
}

// NetworkStats summarizes a topology.
type NetworkStats struct {
	Nodes, Links int
	AvgDegree    float64
	MeanLinkKM   float64
	MeanLinkProb float64
}

// GenerateNetwork builds a random Waxman QDN with the given number of SD
// pairs, deterministically from the seed.
func GenerateNetwork(cfg NetworkConfig, sdPairs int, seed int64) (*Network, []SDPair, error) {
	rng := xrand.New(seed)
	net, err := topo.Generate(cfg.toTopo(), xrand.Split(rng))
	if err != nil {
		return nil, nil, err
	}
	raw := topo.ChooseSDPairs(net, sdPairs, xrand.Split(rng))
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return &Network{inner: net}, pairs, nil
}

// MotivationNetwork returns the paper's Fig. 2 fixture with its two SD
// pairs.
func MotivationNetwork() (*Network, []SDPair) {
	net, raw := topo.Motivation()
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return &Network{inner: net}, pairs
}

// SchedulerOptions tunes a scheduler; the zero value (or nil pointer)
// selects paper defaults.
type SchedulerOptions struct {
	// KPaths is the Yen candidate-path budget per SD pair (default 5 for
	// SEE/REPS, 1 for E2E).
	KPaths int
	// MaxSegmentHops caps physical hops per entanglement segment for SEE
	// (default 10).
	MaxSegmentHops int
	// MinSegmentProb prunes low-probability candidate segments for SEE
	// (default 0.05).
	MinSegmentProb float64
	// StrictProvisioning switches SEE's ESC to the paper-literal
	// Algorithm 2 (see core.Options).
	StrictProvisioning bool
	// PlainObjective disables the swap-survival weighting of the LP
	// objective (ablation; see flow.Options.SwapWeightedObjective).
	PlainObjective bool
	// Workers bounds the goroutines used by the scheduler's LP pricing
	// rounds: 0 means GOMAXPROCS, 1 is fully serial. Any worker count
	// produces a byte-identical scheduler (the parallel pricing is
	// deterministic), so the knob trades construction latency only.
	Workers int
	// Tracer observes the slot pipeline phases (planning, reservation,
	// physical attempts, stitching); nil disables instrumentation. Attach
	// a *CountingTracer to collect phase-event counts and latencies.
	Tracer Tracer
	// Faults injects deterministic faults (node crashes, link outages,
	// control-message loss, memory decoherence) into the scheduler's slots;
	// nil — or a zero plan — leaves the scheduler byte-identical to a run
	// without the fault layer. Parse a compact spec with ParseFaultSpec.
	Faults *FaultPlan
	// SlotBudget bounds the scheduler's LP solve (which runs lazily inside
	// the first slot). When the solve exceeds the budget or fails, the slot
	// degrades to the Greedy fallback and the LP is retried on later slots
	// a bounded number of times; every degradation and retry is reported
	// through the Tracer as an Incident. Zero means no budget.
	SlotBudget time.Duration
	// CarryOver enables the cross-slot entanglement-state bank (see
	// internal/state and DESIGN.md §6): realized segments no connection
	// consumed are kept in node memories across the slot boundary — within
	// each node's memory size m_u — and withdrawn at the next slot, where
	// they substitute for planned creation attempts. Disabled (the
	// default), the scheduler is memoryless and byte-identical to pre-bank
	// behavior. Banked segments decohere stochastically at each boundary
	// with the Faults plan's decoherence probability (zero without a plan).
	CarryOver bool
	// DecoherenceSlots is the bank's age window when CarryOver is on: the
	// number of slot boundaries a banked segment survives before its
	// quantum memory decoheres deterministically (default 1 — usable in
	// the next slot only). Ignored when CarryOver is false.
	DecoherenceSlots int
	// Warm, when non-nil, memoizes the expensive construction artifacts —
	// segment-candidate sets and LP solutions — across schedulers built
	// over the same Network (see DESIGN.md §9). Share one WarmCache across
	// NewScheduler calls (traffic-server restarts, REPS rounds, benchmark
	// rebuilds) to skip redundant solves; every replayed artifact is
	// byte-identical to a cold build, so results never change. In-place
	// topology mutation is detected by fingerprint and invalidates the
	// affected entries. Nil disables warm starts.
	Warm *WarmCache
	// FidelityFloor is the per-request minimum delivered end-to-end
	// fidelity (see DESIGN.md §10): the stitch phase predicts every
	// candidate connection's fidelity under the Werner model before
	// sampling its swaps and rolls back any assembly that would miss its
	// SD pair's floor — the request is never attempted, its segments stay
	// available, and the rejection is reported via IncidentFloorReject and
	// SlotResult.FloorRejected. Parse a compact spec with ParseFloorSpec.
	// Nil (or an all-zero spec) disables enforcement and leaves the
	// scheduler byte-identical to the pre-floor pipeline.
	FidelityFloor *FloorSpec
	// SwapOrder selects the order a connection's junction swaps are
	// sampled in: SwapOrderPath (the default, source to destination) or
	// SwapOrderGreedy (least reliable junction first, so doomed
	// connections fail before burning spare segments). Delivered fidelity
	// is swap-order-independent; throughput is not.
	SwapOrder SwapOrder
	// CarryAwareLP, with CarryOver, re-prices the provisioning LP at the
	// start of any slot that withdrew banked segments: segment-graph edges
	// covered by carried inventory price cheaper in the column generation,
	// so the plan leans into entanglement the network already holds.
	// Without banked inventory (or without CarryOver) the slot runs the
	// unmodified LP, byte-identical to the flag being off.
	CarryAwareLP bool
	// CarryWernerRetention, with CarryOver, ages banked segments: a
	// segment withdrawn n slot boundaries after creation has its Werner
	// parameter scaled by retention^n, degrading the fidelity of
	// connections built from carried entanglement. 0 (or >= 1) disables
	// aging. See state.Policy.WernerRetention.
	CarryWernerRetention float64
	// CarryMinWernerScale, with CarryOver, stops a withdrawn segment whose
	// decayed Werner scale fell below the threshold from substituting for
	// planned creation attempts (the plan re-attempts fresh entanglement
	// instead). See state.Policy.MinWernerScale.
	CarryMinWernerScale float64
}

// FloorSpec is a per-request fidelity-floor table: a default floor plus
// per-SD-pair overrides. It is the canonical qnet.FloorSpec; build one
// directly or with ParseFloorSpec.
type FloorSpec = qnet.FloorSpec

// ParseFloorSpec parses the compact fidelity-floor grammar shared with the
// seesim -fidelity-floor flag: ';'-separated items, each either a bare
// floor in [0,1] (the default) or pair=floor for one SD pair.
//
//	0.8          every pair needs fidelity ≥ 0.8
//	0.8;3=0.95   pair 3 needs 0.95, everyone else 0.8
//	2=0.9        only pair 2 is floored
func ParseFloorSpec(s string) (*FloorSpec, error) { return qnet.ParseFloorSpec(s) }

// SwapOrder selects the junction-swap sampling order of the stitch phase;
// see SchedulerOptions.SwapOrder.
type SwapOrder = qnet.SwapOrder

// The swap-order policies.
const (
	// SwapOrderPath samples swaps in path order (the default).
	SwapOrderPath = qnet.SwapOrderPath
	// SwapOrderGreedy samples the least reliable junction first.
	SwapOrderGreedy = qnet.SwapOrderGreedy
)

// ParseSwapOrder parses a swap-order name ("path" or "greedy").
func ParseSwapOrder(s string) (SwapOrder, error) { return qnet.ParseSwapOrder(s) }

// WarmCache memoizes scheduler-construction artifacts across rebuilds over
// the same network; see SchedulerOptions.Warm. It is the canonical
// warm.Cache and is safe for concurrent use.
type WarmCache = warm.Cache

// NewWarmCache returns an empty warm-start cache.
func NewWarmCache() *WarmCache { return warm.New() }

// WarmStats is a snapshot of a WarmCache's hit/miss/invalidation counters
// (see warm.Stats).
type WarmStats = warm.Stats

// CarryStats tallies the lifetime activity of a scheduler's cross-slot
// state bank: segments deposited, rejected for lack of memory, withdrawn,
// and lost to decoherence. Read it with SchedulerCarryStats.
type CarryStats = state.Stats

// SchedulerCarryStats returns the carry-over bank tallies of a scheduler
// built with CarryOver enabled (zero stats otherwise).
func SchedulerCarryStats(s Scheduler) CarryStats {
	if st, ok := s.(sched.Stateful); ok {
		return st.Bank().Stats()
	}
	return CarryStats{}
}

// SlotResult reports one simulated time slot. It is the canonical
// sched.SlotResult every engine returns — see that type for the full
// pipeline breakdown (planned/provisioned paths, attempts, segments,
// assembly attempts, established connections).
type SlotResult = sched.SlotResult

// Scheduler runs time slots of one entanglement-establishment scheme over
// a fixed network and demand set. It is the canonical sched.Engine
// interface implemented by all three engine stacks.
type Scheduler = sched.Engine

// Tracer observes the slot pipeline with per-phase callbacks; see
// sched.Tracer for the full contract. Implementations must not mutate
// engine state and never consume randomness.
type Tracer = sched.Tracer

// Phase identifies one stage of the slot pipeline observed by a Tracer.
type Phase = sched.Phase

// The pipeline phases in execution order: EPI planning, ESC reservation,
// the stochastic physical phase, and ECE stitching.
const (
	PhasePlan     = sched.PhasePlan
	PhaseReserve  = sched.PhaseReserve
	PhasePhysical = sched.PhasePhysical
	PhaseStitch   = sched.PhaseStitch
)

// CountingTracer is a concurrency-safe Tracer that tallies phase events
// and records per-phase latencies; its zero value is ready to use.
type CountingTracer = sched.CountingTracer

// NewCountingTracer returns an empty CountingTracer.
func NewCountingTracer() *CountingTracer { return sched.NewCountingTracer() }

// JSONLTracer streams every pipeline event as one JSON object per line —
// a machine-readable slot log for offline analysis. Create one with
// NewJSONLTracer and remember to Flush (or Close) before reading the
// output.
type JSONLTracer = sched.JSONLTracer

// NewJSONLTracer returns a tracer streaming JSON lines to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return sched.NewJSONLTracer(w) }

// MultiTracer fans events out to several tracers (e.g. a CountingTracer
// plus a JSONLTracer); nil entries are dropped.
func MultiTracer(ts ...Tracer) Tracer { return sched.Multi(ts...) }

// Incident classifies the robustness events a Tracer observes: injected
// faults, degraded slots, LP construction retries and control-plane
// message drops/retries.
type Incident = sched.Incident

// The incident kinds reported through Tracer.Incident.
const (
	IncidentFault        = sched.IncidentFault
	IncidentDegraded     = sched.IncidentDegraded
	IncidentRetry        = sched.IncidentRetry
	IncidentMessageDrop  = sched.IncidentMessageDrop
	IncidentMessageRetry = sched.IncidentMessageRetry
	// Carry-over bank events (fire only with CarryOver enabled): segments
	// withdrawn at slot start, deposited at slot end, and lost at a slot
	// boundary to the age window or stochastic decoherence.
	IncidentBankWithdraw  = sched.IncidentBankWithdraw
	IncidentBankDeposit   = sched.IncidentBankDeposit
	IncidentBankDecohered = sched.IncidentBankDecohered
	// IncidentRecovery counts recovery-path creation attempts the
	// contention-aware engine fired after a hop's primary segment attempts
	// all failed (see internal/contend).
	IncidentRecovery = sched.IncidentRecovery
	// Correlated-fault events: segment-creation attempts denied by a
	// brownout's channel budget, link-slots lost to flapping, and the
	// announced elements a fault-aware planner routed around.
	IncidentBrownout      = sched.IncidentBrownout
	IncidentFlap          = sched.IncidentFlap
	IncidentForecastAvoid = sched.IncidentForecastAvoid
	// IncidentFloorReject counts candidate connection assemblies the
	// stitch phase rolled back because their predicted end-to-end
	// fidelity missed the request's floor (fires only with
	// SchedulerOptions.FidelityFloor set).
	IncidentFloorReject = sched.IncidentFloorReject
)

// FaultPlan is a deterministic fault schedule for a scheduler: node crash
// windows, link outage windows, control-message loss and memory
// decoherence, all derived from the plan's seed. It is the canonical
// chaos.FaultPlan; build one directly or via ParseFaultSpec.
type FaultPlan = chaos.FaultPlan

// ParseFaultSpec parses the compact fault-spec grammar shared with the
// seesim -faults flag, e.g.
//
//	seed=7;node=3@2-5;link=10@1-;loss=0.05;decohere=0.02
//
// Fields: node=<id>@<from>-<to> crashes a node for a slot window (open
// ends allowed), link=<id>@... takes a link down, loss=<p> drops control
// messages with probability p, decohere=<p> destroys created segments
// with probability p. Correlated items use ':' and are ';'-separated:
// cut:x,y,r@<from>-<to> fails every link whose midpoint lies in the disc,
// brown:link,frac@... keeps frac of a link's channels, and
// flap:link,period,duty@... oscillates a link with the given duty cycle.
// A '!' before an item's first value (e.g. node=!3@2-5, brown:!2,0.5)
// marks it a surprise: it still fires but is hidden from the fault
// forecast the fault-aware schedulers plan around. Windows are inclusive
// slot ranges.
func ParseFaultSpec(s string) (*FaultPlan, error) { return chaos.ParseSpec(s) }

// ParseAlgorithm parses a case-insensitive algorithm name ("see", "reps",
// "e2e", "greedy").
func ParseAlgorithm(s string) (Algorithm, error) { return sched.ParseAlgorithm(s) }

// Algorithms lists all schemes in display order.
var Algorithms = sched.Algorithms

// NewScheduler builds a scheduler for the given algorithm. opts may be nil.
// All three schemes are constructed through the shared internal/engines
// factory, so a scheduler built here behaves identically to one driven by
// the experiment harness.
func NewScheduler(alg Algorithm, net *Network, pairs []SDPair, opts *SchedulerOptions) (Scheduler, error) {
	if net == nil {
		return nil, errors.New("see: nil network")
	}
	raw := make([]topo.SDPair, len(pairs))
	for i, p := range pairs {
		raw[i] = topo.SDPair{S: p.S, D: p.D}
	}
	var o SchedulerOptions
	if opts != nil {
		o = *opts
	}
	cfg := engines.Config{
		KPaths:             o.KPaths,
		MaxSegmentHops:     o.MaxSegmentHops,
		MinSegmentProb:     o.MinSegmentProb,
		StrictProvisioning: o.StrictProvisioning,
		PlainObjective:     o.PlainObjective,
		Workers:            o.Workers,
		Tracer:             o.Tracer,
		Warm:               o.Warm,
		FidelityFloors:     o.FidelityFloor,
		SwapOrder:          o.SwapOrder,
		CarryAwareLP:       o.CarryAwareLP,
	}
	if o.Faults != nil {
		inj, err := chaos.NewInjector(o.Faults, net.inner)
		if err != nil {
			return nil, err
		}
		cfg.Chaos = inj
	}
	var s Scheduler
	var err error
	if o.SlotBudget > 0 {
		s, err = engines.NewResilient(alg, net.inner, raw, cfg, o.SlotBudget)
	} else {
		s, err = engines.New(alg, net.inner, raw, cfg)
	}
	if err != nil {
		return nil, err
	}
	if o.CarryOver {
		// The bank's stochastic boundary hazard reuses the fault plan's
		// decoherence knob and seed; without a plan the hazard is zero and
		// only the age window drains the bank.
		pol := state.Policy{
			CarrySlots:      o.DecoherenceSlots,
			WernerRetention: o.CarryWernerRetention,
			MinWernerScale:  o.CarryMinWernerScale,
		}
		if o.Faults != nil {
			pol.Decoherence = o.Faults.Decoherence
			pol.Seed = o.Faults.Seed
		}
		st, ok := s.(sched.Stateful)
		if !ok {
			return nil, errors.New("see: scheduler does not support carry-over")
		}
		st.AttachBank(state.NewBank(net.inner, pol))
	}
	return s, nil
}

// LoadNetwork reads a topology from the edge-list text format of
// internal/topo.LoadEdgeList:
//
//	node <id> <x-km> <y-km> [memory] [swap-prob]
//	link <u> <v> [length-km] [channels]
//
// Omitted per-element resources fall back to cfg; the segment success
// model is p = e^(−αl) + δ with δ noise seeded by seed.
func LoadNetwork(r io.Reader, cfg NetworkConfig, seed int64) (*Network, error) {
	net, err := topo.LoadEdgeList(r, resourceDefaults(cfg, seed))
	if err != nil {
		return nil, err
	}
	return &Network{inner: net}, nil
}

// NSFNETNetwork returns the classic 14-node NSFNET backbone with the given
// resource configuration — a standard reference topology for quantum
// network evaluations.
func NSFNETNetwork(cfg NetworkConfig, seed int64) (*Network, error) {
	net, err := topo.NSFNet(resourceDefaults(cfg, seed))
	if err != nil {
		return nil, err
	}
	return &Network{inner: net}, nil
}

// ChoosePairs samples SD pairs from an existing network (loaded or
// generated), deterministically from the seed.
func ChoosePairs(net *Network, count int, seed int64) []SDPair {
	raw := topo.ChooseSDPairs(net.inner, count, xrand.New(seed))
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return pairs
}

func resourceDefaults(cfg NetworkConfig, seed int64) topo.ResourceDefaults {
	return topo.ResourceDefaults{
		Memory:   cfg.Memory,
		Channels: cfg.Channels,
		SwapProb: cfg.SwapProb,
		Alpha:    cfg.Alpha,
		Delta:    cfg.Delta,
		Seed:     seed,
	}
}

// Traffic selects how SD pairs are drawn (see ChoosePairsWithTraffic).
type Traffic int

// Traffic patterns: the paper's uniform sampling, a data-centre hotspot,
// and gravity-style geographic clustering.
const (
	TrafficUniform Traffic = iota
	TrafficHotspot
	TrafficGravity
)

// ChoosePairsWithTraffic samples SD pairs under a traffic pattern,
// deterministically from the seed. TrafficHotspot anchors half the demand
// at the highest-degree node; TrafficGravity prefers geographically close
// pairs.
func ChoosePairsWithTraffic(net *Network, count int, pattern Traffic, seed int64) []SDPair {
	cfg := topo.TrafficConfig{Hub: -1}
	switch pattern {
	case TrafficHotspot:
		cfg.Pattern = topo.TrafficHotspot
	case TrafficGravity:
		cfg.Pattern = topo.TrafficGravity
	default:
		cfg.Pattern = topo.TrafficUniform
	}
	raw := topo.ChooseSDPairsWithTraffic(net.inner, count, cfg, xrand.New(seed))
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return pairs
}

// TrafficServer drives a Scheduler as a long-lived entanglement traffic
// server: an arrival process generates per-user connection requests with
// QoS classes and deadlines, an admission controller bounds the active
// set, and each slot's established connections serve the queued requests
// of their SD pairs in class-priority order. See internal/serve and
// DESIGN.md §8.
type TrafficServer = serve.Server

// ServeConfig parameterizes a TrafficServer; build one from a spec string
// with ParseArrivalSpec.
type ServeConfig = serve.Config

// ServeReport summarizes a service-mode run: throughput next to per-class
// service rates and Jain's fairness index over per-user service.
type ServeReport = serve.Report

// ServeSlotStats reports one service-mode slot.
type ServeSlotStats = serve.SlotStats

// ParseArrivalSpec parses a service-mode arrival specification such as
//
//	poisson;rate=3;users=200;mix=0.2/0.3/0.5;deadline=4/8/16;max-active=64
//
// (also diurnal and bursty processes; see serve.ParseSpec for the full
// grammar). The caller sets Seed — and Tracer, when pipeline counters
// should ride along in checkpoints — on the returned config.
func ParseArrivalSpec(spec string) (ServeConfig, error) {
	return serve.ParseSpec(spec)
}

// NewTrafficServer builds a traffic server over a scheduler serving
// `pairs` SD pairs (the length of the pair set the scheduler was built
// with). The server owns all randomness: arrivals and the scheduler's
// slots draw from one internal stream seeded by cfg.Seed, which is what
// makes a checkpoint cursor pin the remaining run.
func NewTrafficServer(s Scheduler, pairs int, cfg ServeConfig) (*TrafficServer, error) {
	return serve.New(s, pairs, cfg)
}
