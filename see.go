// Package see is the public API of the SEE reproduction — Segmented
// Entanglement Establishment for Throughput Maximization in Quantum
// Networks (Zhao et al., IEEE ICDCS 2022).
//
// The package wraps the internal engine stack behind a small surface:
//
//	net, pairs, _ := see.GenerateNetwork(see.DefaultNetworkConfig(), 20, 1)
//	sched, _ := see.NewScheduler(see.SEE, net, pairs, nil)
//	res, _ := sched.RunSlot(rand.New(rand.NewSource(1)))
//	fmt.Println("established:", res.Established)
//
// Three schedulers are available: SEE (the paper's contribution), REPS
// (the INFOCOM'21 entanglement-link baseline) and E2E (all-optical
// switching only). The experiment harness regenerating the paper's
// figures is exposed via RunExperiment and the Fig* helpers.
package see

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"see/internal/core"
	"see/internal/e2e"
	"see/internal/reps"
	"see/internal/topo"
	"see/internal/xrand"
)

// Algorithm selects an entanglement-establishment scheme.
type Algorithm int

// The schemes compared in the paper's evaluation.
const (
	// SEE integrates all-optical switching with quantum swapping
	// (the paper's contribution).
	SEE Algorithm = iota
	// REPS uses entanglement links only (Zhao & Qiao, INFOCOM 2021).
	REPS
	// E2E uses all-optical switching only: one segment per connection.
	E2E
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SEE:
		return "SEE"
	case REPS:
		return "REPS"
	case E2E:
		return "E2E"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// NetworkConfig mirrors the evaluation parameters of §IV-A.
type NetworkConfig struct {
	// Nodes placed uniformly in a square area (default 200).
	Nodes int
	// AreaKM is the square side in km (default 10,000).
	AreaKM float64
	// Channels per quantum link (default 3).
	Channels int
	// Memory units per node (default 10).
	Memory int
	// SwapProb is the quantum swapping success probability q (default 0.9).
	SwapProb float64
	// Alpha is the attenuation in p = e^(−αl) + δ (default 2e-4).
	Alpha float64
	// Delta is the half-width of the uniform noise δ (default 0.05).
	Delta float64
}

// DefaultNetworkConfig returns the paper's defaults.
func DefaultNetworkConfig() NetworkConfig {
	c := topo.DefaultConfig()
	return NetworkConfig{
		Nodes:    c.Nodes,
		AreaKM:   c.AreaKM,
		Channels: c.Channels,
		Memory:   c.Memory,
		SwapProb: c.SwapProb,
		Alpha:    c.Alpha,
		Delta:    c.Delta,
	}
}

func (c NetworkConfig) toTopo() topo.Config {
	t := topo.DefaultConfig()
	if c.Nodes > 0 {
		t.Nodes = c.Nodes
	}
	if c.AreaKM > 0 {
		t.AreaKM = c.AreaKM
	}
	if c.Channels > 0 {
		t.Channels = c.Channels
	}
	if c.Memory > 0 {
		t.Memory = c.Memory
	}
	if c.SwapProb > 0 {
		t.SwapProb = c.SwapProb
	}
	if c.Alpha > 0 {
		t.Alpha = c.Alpha
	}
	if c.Delta >= 0 {
		t.Delta = c.Delta
	}
	return t
}

// SDPair is a source-destination demand.
type SDPair struct {
	S, D int
}

// Network is a generated quantum data network plus its demand set.
type Network struct {
	inner *topo.Network
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return n.inner.NumNodes() }

// NumLinks returns the quantum link count.
func (n *Network) NumLinks() int { return n.inner.NumLinks() }

// Stats summarizes the topology (degree, link lengths, probabilities).
func (n *Network) Stats() NetworkStats {
	st := topo.Summarize(n.inner)
	return NetworkStats{
		Nodes:        st.Nodes,
		Links:        st.Links,
		AvgDegree:    st.AvgDegree,
		MeanLinkKM:   st.MeanLinkKM,
		MeanLinkProb: st.MeanLinkProb,
	}
}

// NetworkStats summarizes a topology.
type NetworkStats struct {
	Nodes, Links int
	AvgDegree    float64
	MeanLinkKM   float64
	MeanLinkProb float64
}

// GenerateNetwork builds a random Waxman QDN with the given number of SD
// pairs, deterministically from the seed.
func GenerateNetwork(cfg NetworkConfig, sdPairs int, seed int64) (*Network, []SDPair, error) {
	rng := xrand.New(seed)
	net, err := topo.Generate(cfg.toTopo(), xrand.Split(rng))
	if err != nil {
		return nil, nil, err
	}
	raw := topo.ChooseSDPairs(net, sdPairs, xrand.Split(rng))
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return &Network{inner: net}, pairs, nil
}

// MotivationNetwork returns the paper's Fig. 2 fixture with its two SD
// pairs.
func MotivationNetwork() (*Network, []SDPair) {
	net, raw := topo.Motivation()
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return &Network{inner: net}, pairs
}

// SchedulerOptions tunes a scheduler; the zero value (or nil pointer)
// selects paper defaults.
type SchedulerOptions struct {
	// KPaths is the Yen candidate-path budget per SD pair (default 5 for
	// SEE/REPS, 1 for E2E).
	KPaths int
	// MaxSegmentHops caps physical hops per entanglement segment for SEE
	// (default 10).
	MaxSegmentHops int
	// MinSegmentProb prunes low-probability candidate segments for SEE
	// (default 0.05).
	MinSegmentProb float64
	// StrictProvisioning switches SEE's ESC to the paper-literal
	// Algorithm 2 (see core.Options).
	StrictProvisioning bool
	// PlainObjective disables the swap-survival weighting of the LP
	// objective (ablation; see flow.Options.SwapWeightedObjective).
	PlainObjective bool
}

// SlotResult reports one simulated time slot.
type SlotResult struct {
	// Established is the throughput: entanglement connections completed
	// this slot (each teleports exactly one data qubit).
	Established int
	// PerPair breaks Established down by SD pair.
	PerPair []int
	// Attempts is the number of segment-creation attempts reserved.
	Attempts int
	// SegmentsCreated counts attempts that succeeded.
	SegmentsCreated int
}

// Scheduler runs time slots of one entanglement-establishment scheme over
// a fixed network and demand set.
type Scheduler interface {
	// Algorithm identifies the scheme.
	Algorithm() Algorithm
	// RunSlot simulates one time slot; the rng drives all stochastic
	// outcomes, so a fixed generator state reproduces the slot.
	RunSlot(rng *rand.Rand) (*SlotResult, error)
	// UpperBound returns the scheduler's LP planning value. For the
	// default swap-survival-weighted objective this bounds the expected
	// single-pass throughput; retry-based establishment (backed by
	// redundant segments) can deliver somewhat more.
	UpperBound() float64
}

// NewScheduler builds a scheduler for the given algorithm. opts may be nil.
func NewScheduler(alg Algorithm, net *Network, pairs []SDPair, opts *SchedulerOptions) (Scheduler, error) {
	if net == nil {
		return nil, errors.New("see: nil network")
	}
	raw := make([]topo.SDPair, len(pairs))
	for i, p := range pairs {
		raw[i] = topo.SDPair{S: p.S, D: p.D}
	}
	var o SchedulerOptions
	if opts != nil {
		o = *opts
	}
	switch alg {
	case SEE:
		co := core.DefaultOptions()
		if o.KPaths > 0 {
			co.Segment.KPaths = o.KPaths
		}
		if o.MaxSegmentHops > 0 {
			co.Segment.MaxSegmentHops = o.MaxSegmentHops
		}
		if o.MinSegmentProb > 0 {
			co.Segment.MinProb = o.MinSegmentProb
		}
		co.StrictProvisioning = o.StrictProvisioning
		co.Flow.SwapWeightedObjective = !o.PlainObjective
		eng, err := core.NewEngine(net.inner, raw, co)
		if err != nil {
			return nil, err
		}
		return &seeScheduler{eng: eng}, nil
	case REPS:
		eng, err := reps.NewEngine(net.inner, raw, reps.Options{KPaths: o.KPaths})
		if err != nil {
			return nil, err
		}
		return &repsScheduler{eng: eng}, nil
	case E2E:
		eng, err := e2e.NewEngine(net.inner, raw, e2e.Options{KPaths: o.KPaths})
		if err != nil {
			return nil, err
		}
		return &e2eScheduler{eng: eng}, nil
	default:
		return nil, fmt.Errorf("see: unknown algorithm %v", alg)
	}
}

type seeScheduler struct{ eng *core.Engine }

func (s *seeScheduler) Algorithm() Algorithm { return SEE }
func (s *seeScheduler) UpperBound() float64  { return s.eng.ExpectedUpperBound() }
func (s *seeScheduler) RunSlot(rng *rand.Rand) (*SlotResult, error) {
	r, err := s.eng.RunSlot(rng)
	if err != nil {
		return nil, err
	}
	return &SlotResult{
		Established:     r.Established,
		PerPair:         r.PerPair,
		Attempts:        r.Attempts,
		SegmentsCreated: r.SegmentsCreated,
	}, nil
}

type repsScheduler struct{ eng *reps.Engine }

func (s *repsScheduler) Algorithm() Algorithm { return REPS }
func (s *repsScheduler) UpperBound() float64  { return s.eng.ExpectedUpperBound() }
func (s *repsScheduler) RunSlot(rng *rand.Rand) (*SlotResult, error) {
	r, err := s.eng.RunSlot(rng)
	if err != nil {
		return nil, err
	}
	return &SlotResult{
		Established:     r.Established,
		PerPair:         r.PerPair,
		Attempts:        r.Attempts,
		SegmentsCreated: r.LinksCreated,
	}, nil
}

type e2eScheduler struct{ eng *e2e.Engine }

func (s *e2eScheduler) Algorithm() Algorithm { return E2E }
func (s *e2eScheduler) UpperBound() float64  { return s.eng.ExpectedUpperBound() }
func (s *e2eScheduler) RunSlot(rng *rand.Rand) (*SlotResult, error) {
	r, err := s.eng.RunSlot(rng)
	if err != nil {
		return nil, err
	}
	return &SlotResult{
		Established:     r.Established,
		PerPair:         r.PerPair,
		Attempts:        r.Attempts,
		SegmentsCreated: r.SegmentsCreated,
	}, nil
}

// LoadNetwork reads a topology from the edge-list text format of
// internal/topo.LoadEdgeList:
//
//	node <id> <x-km> <y-km> [memory] [swap-prob]
//	link <u> <v> [length-km] [channels]
//
// Omitted per-element resources fall back to cfg; the segment success
// model is p = e^(−αl) + δ with δ noise seeded by seed.
func LoadNetwork(r io.Reader, cfg NetworkConfig, seed int64) (*Network, error) {
	net, err := topo.LoadEdgeList(r, resourceDefaults(cfg, seed))
	if err != nil {
		return nil, err
	}
	return &Network{inner: net}, nil
}

// NSFNETNetwork returns the classic 14-node NSFNET backbone with the given
// resource configuration — a standard reference topology for quantum
// network evaluations.
func NSFNETNetwork(cfg NetworkConfig, seed int64) (*Network, error) {
	net, err := topo.NSFNet(resourceDefaults(cfg, seed))
	if err != nil {
		return nil, err
	}
	return &Network{inner: net}, nil
}

// ChoosePairs samples SD pairs from an existing network (loaded or
// generated), deterministically from the seed.
func ChoosePairs(net *Network, count int, seed int64) []SDPair {
	raw := topo.ChooseSDPairs(net.inner, count, xrand.New(seed))
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return pairs
}

func resourceDefaults(cfg NetworkConfig, seed int64) topo.ResourceDefaults {
	return topo.ResourceDefaults{
		Memory:   cfg.Memory,
		Channels: cfg.Channels,
		SwapProb: cfg.SwapProb,
		Alpha:    cfg.Alpha,
		Delta:    cfg.Delta,
		Seed:     seed,
	}
}

// Traffic selects how SD pairs are drawn (see ChoosePairsWithTraffic).
type Traffic int

// Traffic patterns: the paper's uniform sampling, a data-centre hotspot,
// and gravity-style geographic clustering.
const (
	TrafficUniform Traffic = iota
	TrafficHotspot
	TrafficGravity
)

// ChoosePairsWithTraffic samples SD pairs under a traffic pattern,
// deterministically from the seed. TrafficHotspot anchors half the demand
// at the highest-degree node; TrafficGravity prefers geographically close
// pairs.
func ChoosePairsWithTraffic(net *Network, count int, pattern Traffic, seed int64) []SDPair {
	cfg := topo.TrafficConfig{Hub: -1}
	switch pattern {
	case TrafficHotspot:
		cfg.Pattern = topo.TrafficHotspot
	case TrafficGravity:
		cfg.Pattern = topo.TrafficGravity
	default:
		cfg.Pattern = topo.TrafficUniform
	}
	raw := topo.ChooseSDPairsWithTraffic(net.inner, count, cfg, xrand.New(seed))
	pairs := make([]SDPair, len(raw))
	for i, p := range raw {
		pairs[i] = SDPair{S: p.S, D: p.D}
	}
	return pairs
}
