package see_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§IV). Each BenchmarkFig* runs the corresponding parameter
// sweep at a reduced trial count (benchTrials; the paper uses 100 — use
// cmd/seefig -trials 100 for paper-scale numbers) and logs the same
// rows/series the paper plots. Custom metrics report the headline
// throughputs so `go test -bench` output is self-describing:
//
//	SEE/slot, REPS/slot, E2E/slot — mean established connections per slot
//	                                at the sweep's default point.
//
// Micro-benchmarks at the bottom cover the expensive substrates (LP solve,
// column generation, Yen) and the ablations called out in DESIGN.md.

import (
	"fmt"
	"runtime"
	"testing"

	"see"
	"see/internal/core"
	"see/internal/experiment"
	"see/internal/flow"
	"see/internal/graph"
	"see/internal/lp"
	"see/internal/reps"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

// benchTrials trades benchmark wall-clock against noise; shapes are stable
// from ~3 trials, paper-scale error bars need 100.
const benchTrials = 3

func benchParams() experiment.Params {
	p := experiment.DefaultParams()
	p.Trials = benchTrials
	return p
}

// reportSweep logs the figure's series and reports each algorithm's mean
// throughput at the given x as a custom metric.
func reportSweep(b *testing.B, sw *experiment.Sweep, defaultX float64) {
	b.Helper()
	b.Log("\n" + sw.Table())
	for _, pt := range sw.Points {
		if pt.X != defaultX {
			continue
		}
		b.ReportMetric(pt.Results[experiment.SEE].Throughput.Mean, "SEE/slot")
		b.ReportMetric(pt.Results[experiment.REPS].Throughput.Mean, "REPS/slot")
		b.ReportMetric(pt.Results[experiment.E2E].Throughput.Mean, "E2E/slot")
	}
}

// BenchmarkMotivation regenerates the Fig. 2 table: expected connections of
// the conventional and segmented solutions on the 6-node fixture.
func BenchmarkMotivation(b *testing.B) {
	var r experiment.MotivationResult
	for i := 0; i < b.N; i++ {
		r = experiment.Motivation()
	}
	b.Logf("\nFig. 2: conventional=%.3f SEE=%.3f (%.2fx)", r.Conventional, r.SEE, r.SEE/r.Conventional)
	b.ReportMetric(r.Conventional, "conv")
	b.ReportMetric(r.SEE, "SEE")
}

// BenchmarkFig3LinkCapacity regenerates Fig. 3(a): throughput vs channels
// per link, 2–7.
func BenchmarkFig3LinkCapacity(b *testing.B) {
	var sw *experiment.Sweep
	var err error
	for i := 0; i < b.N; i++ {
		if sw, err = experiment.Fig3LinkCapacity(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, sw, 3)
}

// BenchmarkFig4Alpha regenerates Fig. 4(a): throughput vs attenuation
// parameter α ∈ {1..5}×1e-4.
func BenchmarkFig4Alpha(b *testing.B) {
	var sw *experiment.Sweep
	var err error
	for i := 0; i < b.N; i++ {
		if sw, err = experiment.Fig4Alpha(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, sw, 2)
}

// BenchmarkFig5SwapProb regenerates Fig. 5(a): throughput vs swapping
// success probability 0.5–1.0 (including the REPS/E2E crossover).
func BenchmarkFig5SwapProb(b *testing.B) {
	var sw *experiment.Sweep
	var err error
	for i := 0; i < b.N; i++ {
		if sw, err = experiment.Fig5SwapProb(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, sw, 0.9)
}

// BenchmarkFig6Nodes regenerates Fig. 6(a): throughput vs network scale
// 100–500 nodes.
func BenchmarkFig6Nodes(b *testing.B) {
	var sw *experiment.Sweep
	var err error
	for i := 0; i < b.N; i++ {
		if sw, err = experiment.Fig6Nodes(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, sw, 200)
}

// BenchmarkFig7SDPairs regenerates Fig. 7(a): throughput vs workload,
// 10–50 SD pairs.
func BenchmarkFig7SDPairs(b *testing.B) {
	var sw *experiment.Sweep
	var err error
	for i := 0; i < b.N; i++ {
		if sw, err = experiment.Fig7SDPairs(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, sw, 20)
}

// --- Ablation benches (design choices called out in DESIGN.md §5) ---

func ablationNetwork(b *testing.B) (*topo.Network, []topo.SDPair) {
	b.Helper()
	cfg := topo.DefaultConfig()
	net, err := topo.Generate(cfg, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return net, topo.ChooseSDPairs(net, 20, xrand.New(2))
}

func seeMeanThroughput(b *testing.B, net *topo.Network, pairs []topo.SDPair, opts core.Options, slots int) float64 {
	b.Helper()
	eng, err := core.NewEngine(net, pairs, opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(3)
	total := 0
	for s := 0; s < slots; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Established
	}
	return float64(total) / float64(slots)
}

// BenchmarkAblationObjective compares SEE with the swap-survival-weighted
// LP objective (default) against the paper-literal unweighted objective.
func BenchmarkAblationObjective(b *testing.B) {
	net, pairs := ablationNetwork(b)
	var weighted, plain float64
	for i := 0; i < b.N; i++ {
		o := core.DefaultOptions()
		weighted = seeMeanThroughput(b, net, pairs, o, 5)
		o.Flow.SwapWeightedObjective = false
		plain = seeMeanThroughput(b, net, pairs, o, 5)
	}
	b.Logf("\nSEE objective ablation: weighted=%.2f plain=%.2f", weighted, plain)
	b.ReportMetric(weighted, "weighted/slot")
	b.ReportMetric(plain, "plain/slot")
}

// BenchmarkAblationSegmentHops sweeps SEE's segment hop cap: 1 reproduces
// the link-only setting, larger caps admit longer all-optical segments.
func BenchmarkAblationSegmentHops(b *testing.B) {
	net, pairs := ablationNetwork(b)
	caps := []int{1, 2, 4, 10}
	out := make([]float64, len(caps))
	for i := 0; i < b.N; i++ {
		for k, hopCap := range caps {
			o := core.DefaultOptions()
			o.Segment.MaxSegmentHops = hopCap
			out[k] = seeMeanThroughput(b, net, pairs, o, 5)
		}
	}
	for k, hopCap := range caps {
		b.Logf("MaxSegmentHops=%2d: %.2f connections/slot", hopCap, out[k])
	}
	b.ReportMetric(out[0], "hops1/slot")
	b.ReportMetric(out[len(out)-1], "hops10/slot")
}

// BenchmarkAblationKPaths sweeps the Yen candidate budget.
func BenchmarkAblationKPaths(b *testing.B) {
	net, pairs := ablationNetwork(b)
	ks := []int{1, 3, 5, 8}
	out := make([]float64, len(ks))
	for i := 0; i < b.N; i++ {
		for j, k := range ks {
			o := core.DefaultOptions()
			o.Segment.KPaths = k
			out[j] = seeMeanThroughput(b, net, pairs, o, 5)
		}
	}
	for j, k := range ks {
		b.Logf("KPaths=%d: %.2f connections/slot", k, out[j])
	}
	b.ReportMetric(out[0], "k1/slot")
	b.ReportMetric(out[len(out)-1], "k8/slot")
}

// BenchmarkAblationREPSRounding sweeps REPS's progressive-rounding LP
// budget (the schedule the SEE paper criticizes as slow).
func BenchmarkAblationREPSRounding(b *testing.B) {
	net, pairs := ablationNetwork(b)
	budgets := []int{1, 3, 6, 12}
	out := make([]float64, len(budgets))
	for i := 0; i < b.N; i++ {
		for j, budget := range budgets {
			eng, err := reps.NewEngine(net, pairs, reps.Options{RoundingSolves: budget})
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.New(3)
			total := 0
			const slots = 5
			for s := 0; s < slots; s++ {
				res, err := eng.RunSlot(rng)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Established
			}
			out[j] = float64(total) / slots
		}
	}
	for j, budget := range budgets {
		b.Logf("RoundingSolves=%2d: %.2f connections/slot", budget, out[j])
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkLPDenseSolve measures the two-phase simplex on a mid-size model.
func BenchmarkLPDenseSolve(b *testing.B) {
	rng := xrand.New(5)
	const n, m = 60, 40
	for i := 0; i < b.N; i++ {
		p := lp.NewDense(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, rng.Float64())
		}
		for r := 0; r < m; r++ {
			es := make([]lp.Entry, 0, n/2)
			for j := r % 2; j < n; j += 2 {
				es = append(es, lp.Entry{Index: j, Value: 0.1 + rng.Float64()})
			}
			p.AddConstraint(es, lp.LE, 5+rng.Float64()*5)
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.StatusOptimal {
			b.Fatalf("solve failed: %v %v", sol.Status, err)
		}
	}
}

// BenchmarkColumnGeneration measures one full SEE LP solve at paper scale.
func BenchmarkColumnGeneration(b *testing.B) {
	net, pairs := ablationNetwork(b)
	set, err := segment.Build(net, pairs, core.DefaultOptions().Segment)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := flow.Solve(set, flow.Options{SwapWeightedObjective: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Objective <= 0 {
			b.Fatal("degenerate LP")
		}
	}
}

// BenchmarkColumnGenerationParallel runs the same solve at several pricing
// worker counts. The results are byte-identical at every count (see
// internal/par); the sub-benchmarks expose how much of the solve the
// parallel pricing rounds can hide on multicore hosts. On a single-core
// host all counts degenerate to the serial path.
func BenchmarkColumnGenerationParallel(b *testing.B) {
	net, pairs := ablationNetwork(b)
	set, err := segment.Build(net, pairs, core.DefaultOptions().Segment)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := make(map[int]bool, len(counts))
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := flow.Solve(set, flow.Options{SwapWeightedObjective: true, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Objective <= 0 {
					b.Fatal("degenerate LP")
				}
			}
		})
	}
}

// BenchmarkYenKShortest measures candidate-path enumeration.
func BenchmarkYenKShortest(b *testing.B) {
	net, pairs := ablationNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if got := graph.YenKShortest(net.G, p.S, p.D, 5, graph.DijkstraOptions{}); len(got) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkSlotSEE measures one SEE slot (planning cached, rounding +
// physical phase + establishment live).
func BenchmarkSlotSEE(b *testing.B) {
	net, pairs := ablationNetwork(b)
	eng, err := core.NewEngine(net, pairs, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSlot(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotREPS measures one REPS slot.
func BenchmarkSlotREPS(b *testing.B) {
	net, pairs := ablationNetwork(b)
	eng, err := reps.NewEngine(net, pairs, reps.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSlot(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerConstruction measures end-to-end engine setup
// (Yen + candidate enumeration + LP) through the public API.
func BenchmarkSchedulerConstruction(b *testing.B) {
	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = 100
	net, pairs, err := see.GenerateNetwork(cfg, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := see.NewScheduler(see.SEE, net, pairs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCarryWorkload drives a 20-slot qubit workload through a fresh SEE
// scheduler each iteration, with or without the cross-slot state bank
// (DESIGN.md §6), and reports delivered qubits per slot.
func benchCarryWorkload(b *testing.B, carry bool) {
	b.Helper()
	net, pairs, err := see.GenerateNetwork(see.NetworkConfig{Nodes: 50}, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	const slots = 20
	var delivered int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := &see.SchedulerOptions{}
		if carry {
			opts.CarryOver = true
			opts.DecoherenceSlots = 2
		}
		sc, err := see.NewScheduler(see.SEE, net, pairs, opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := see.RunWorkload(sc, len(pairs), see.WorkloadConfig{
			Slots:           slots,
			ArrivalsPerPair: 1,
			QueueCap:        20,
			Seed:            7,
		})
		if err != nil {
			b.Fatal(err)
		}
		delivered = res.Delivered
	}
	b.ReportMetric(float64(delivered)/slots, "delivered/slot")
}

// BenchmarkWorkloadCarryOver measures the carry-over path (segments banked
// in node memories across slots).
func BenchmarkWorkloadCarryOver(b *testing.B) { benchCarryWorkload(b, true) }

// BenchmarkWorkloadMemoryless measures the paper's memoryless slot for
// comparison against BenchmarkWorkloadCarryOver.
func BenchmarkWorkloadMemoryless(b *testing.B) { benchCarryWorkload(b, false) }

// benchWarmWorkload drives the PR-9 warm-start workload: each iteration
// rebuilds a SEE scheduler over the same paper-scale instance (200 nodes,
// 20 SD pairs — the restart/rebuild pattern of service mode and the
// resilience harness) and runs benchWarmSlots slots. With a warm cache the
// rebuild replays the memoized segment set and LP solution instead of
// re-deriving them, so the cold/warm ratio is the headline slots/sec claim
// in BENCH_PR9.json. Results are byte-identical either way (the schedtest
// warm≡cold suite pins this); only the time to reach them changes.
const benchWarmSlots = 10

func benchWarmWorkload(b *testing.B, cache *see.WarmCache) {
	b.Helper()
	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = 200
	net, pairs, err := see.GenerateNetwork(cfg, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := &see.SchedulerOptions{Warm: cache}
	if cache != nil {
		// Prime outside the timed region: the steady state being measured
		// is "every rebuild after the first".
		if _, err := see.NewScheduler(see.SEE, net, pairs, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := see.NewScheduler(see.SEE, net, pairs, opts)
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(4)
		for s := 0; s < benchWarmSlots; s++ {
			if _, err := sc.RunSlot(rng); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*benchWarmSlots)/b.Elapsed().Seconds(), "slots/sec")
}

// BenchmarkWorkloadSlotsCold measures the rebuild-and-run workload with the
// warm cache disabled: every iteration pays full segment enumeration and
// column generation — the pre-PR-9 cost of a scheduler restart.
func BenchmarkWorkloadSlotsCold(b *testing.B) { benchWarmWorkload(b, nil) }

// BenchmarkWorkloadSlotsWarm measures the same workload with a shared warm
// cache: rebuilds replay memoized planning artifacts and slots run on the
// reusable scratch arenas.
func BenchmarkWorkloadSlotsWarm(b *testing.B) { benchWarmWorkload(b, see.NewWarmCache()) }
