package see

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"see/internal/sched"
	"see/internal/state"
	"see/internal/xrand"
)

// runSlots drives a scheduler for n slots from a fixed seed and returns the
// per-slot results.
func runSlots(t *testing.T, sc Scheduler, seed int64, n int) []SlotResult {
	t.Helper()
	rng := xrand.New(seed)
	out := make([]SlotResult, 0, n)
	for s := 0; s < n; s++ {
		res, err := sc.RunSlot(rng)
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		out = append(out, *res)
	}
	return out
}

// TestCarryOverDisabledByteIdentical checks the disabled-path contract of
// DESIGN.md §6: a scheduler with CarryOver false — even with a non-default
// DecoherenceSlots left in the options — is byte-identical to one built
// with no options at all, for every algorithm including Greedy.
func TestCarryOverDisabledByteIdentical(t *testing.T) {
	net, pairs, err := GenerateNetwork(NetworkConfig{Nodes: 40}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range append(append([]Algorithm(nil), Algorithms...), Greedy) {
		t.Run(alg.String(), func(t *testing.T) {
			plainSC, err := NewScheduler(alg, net, pairs, nil)
			if err != nil {
				t.Fatal(err)
			}
			offSC, err := NewScheduler(alg, net, pairs, &SchedulerOptions{
				CarryOver:        false,
				DecoherenceSlots: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			plain := runSlots(t, plainSC, 77, 5)
			off := runSlots(t, offSC, 77, 5)
			if !reflect.DeepEqual(plain, off) {
				t.Fatalf("CarryOver=false changed results:\n%+v\nvs\n%+v", plain, off)
			}
			if (SchedulerCarryStats(offSC) != CarryStats{}) {
				t.Error("disabled carry-over accumulated bank stats")
			}
		})
	}
}

// TestCarryOverImprovesThroughput verifies the point of the bank: over a
// multi-slot run, carrying unconsumed segments forward establishes at least
// as many connections as the memoryless scheduler, and strictly more for
// this instance. It also checks the tracer's bank incidents reconcile with
// the bank's own stats.
func TestCarryOverImprovesThroughput(t *testing.T) {
	net, pairs, err := GenerateNetwork(NetworkConfig{Nodes: 50}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 10
	total := func(rs []SlotResult) int {
		n := 0
		for _, r := range rs {
			n += r.Established
		}
		return n
	}

	for _, alg := range []Algorithm{SEE, Greedy} {
		t.Run(alg.String(), func(t *testing.T) {
			plainSC, err := NewScheduler(alg, net, pairs, nil)
			if err != nil {
				t.Fatal(err)
			}
			tr := NewCountingTracer()
			carrySC, err := NewScheduler(alg, net, pairs, &SchedulerOptions{
				CarryOver:        true,
				DecoherenceSlots: 2,
				Tracer:           tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			plain := total(runSlots(t, plainSC, 42, slots))
			carry := total(runSlots(t, carrySC, 42, slots))
			if carry < plain {
				t.Errorf("carry-over lost throughput: %d vs %d", carry, plain)
			}
			st := SchedulerCarryStats(carrySC)
			if st.Deposited == 0 || st.Withdrawn == 0 {
				t.Fatalf("bank never cycled: %+v", st)
			}
			c := tr.Counts()
			if got := c.IncidentCount(IncidentBankDeposit); got != st.Deposited {
				t.Errorf("deposit incidents %d != bank stat %d", got, st.Deposited)
			}
			if got := c.IncidentCount(IncidentBankWithdraw); got != st.Withdrawn {
				t.Errorf("withdraw incidents %d != bank stat %d", got, st.Withdrawn)
			}
			if got := c.IncidentCount(IncidentBankDecohered); got != st.Lost() {
				t.Errorf("decohere incidents %d != bank losses %d", got, st.Lost())
			}
		})
	}

	// The SEE instance above is known to improve strictly; pin that so the
	// carry path cannot silently become a no-op.
	plainSC, _ := NewScheduler(SEE, net, pairs, nil)
	carrySC, _ := NewScheduler(SEE, net, pairs, &SchedulerOptions{CarryOver: true, DecoherenceSlots: 2})
	if p, c := total(runSlots(t, plainSC, 42, slots)), total(runSlots(t, carrySC, 42, slots)); c <= p {
		t.Errorf("SEE carry-over did not strictly improve: %d vs %d", c, p)
	}
}

// conservationScheduler wraps a carry-over scheduler and checks the bank's
// memory-accounting invariants after every slot.
type conservationScheduler struct {
	Scheduler
	bank *state.Bank
	t    *testing.T
	// checked counts the slots whose invariants were verified.
	checked int
}

// Forward the Stateful capability so RunWorkload still sees the bank
// through the wrapper.
func (c *conservationScheduler) AttachBank(b *state.Bank) { c.Scheduler.(sched.Stateful).AttachBank(b) }
func (c *conservationScheduler) Bank() *state.Bank        { return c.bank }

func (c *conservationScheduler) RunSlot(rng *rand.Rand) (*SlotResult, error) {
	res, err := c.Scheduler.RunSlot(rng)
	if err == nil {
		if cerr := c.bank.CheckConservation(); cerr != nil {
			c.t.Fatalf("slot %d: %v", c.checked, cerr)
		}
		c.checked++
	}
	return res, err
}

// TestCarryConservation runs a fault-injected 50-slot workload and asserts,
// after every slot, that the banked memory units at each node reconcile
// with the banked entries and never exceed the node's memory size m_u.
func TestCarryConservation(t *testing.T) {
	net, pairs, err := GenerateNetwork(NetworkConfig{Nodes: 40, Memory: 4}, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultSpec("seed=13;node=3@10-20;link=2@25-;decohere=0.15")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScheduler(SEE, net, pairs, &SchedulerOptions{
		CarryOver:        true,
		DecoherenceSlots: 3,
		Faults:           plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := sc.(sched.Stateful)
	if !ok {
		t.Fatal("SEE scheduler is not Stateful")
	}
	wrapped := &conservationScheduler{Scheduler: sc, bank: st.Bank(), t: t}
	res, err := RunWorkload(wrapped, len(pairs), WorkloadConfig{
		Slots:           50,
		ArrivalsPerPair: 1.5,
		QueueCap:        20,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.checked != 50 {
		t.Fatalf("conservation checked on %d slots, want 50", wrapped.checked)
	}
	if res.Carry.Deposited == 0 {
		t.Errorf("workload never banked a segment: %+v", res.Carry)
	}
	if res.Carry != st.Bank().Stats() {
		t.Errorf("WorkloadResult.Carry %+v != bank stats %+v", res.Carry, st.Bank().Stats())
	}
}

// TestCarryDeterministic runs the same carry-over configuration twice and
// expects identical slot results: bank survival is hashed from the policy
// seed, never drawn from the engine rng.
func TestCarryDeterministic(t *testing.T) {
	net, pairs, err := GenerateNetwork(NetworkConfig{Nodes: 40}, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultSpec("seed=21;decohere=0.2")
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range append(append([]Algorithm(nil), Algorithms...), Greedy) {
		t.Run(alg.String(), func(t *testing.T) {
			run := func() []SlotResult {
				sc, err := NewScheduler(alg, net, pairs, &SchedulerOptions{
					CarryOver:        true,
					DecoherenceSlots: 2,
					Faults:           plan,
				})
				if err != nil {
					t.Fatal(err)
				}
				return runSlots(t, sc, 31, 6)
			}
			if a, b := run(), run(); !reflect.DeepEqual(a, b) {
				t.Fatalf("carry-over run not deterministic:\n%+v\nvs\n%+v", a, b)
			}
		})
	}
}

// TestCarryResilientBankSurvivesDegradation forces the degradation ladder
// (impossible LP budget) under carry-over: the greedy fallback must serve
// the slots AND keep banking segments through the same bank.
func TestCarryResilientBankSurvivesDegradation(t *testing.T) {
	net, pairs, err := GenerateNetwork(NetworkConfig{Nodes: 40}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewCountingTracer()
	sc, err := NewScheduler(SEE, net, pairs, &SchedulerOptions{
		SlotBudget:       time.Nanosecond,
		CarryOver:        true,
		DecoherenceSlots: 2,
		Tracer:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	runSlots(t, sc, 9, 5)
	if got := tr.Counts().IncidentCount(IncidentDegraded); got != 5 {
		t.Fatalf("degraded incidents = %d, want 5", got)
	}
	st := SchedulerCarryStats(sc)
	if st.Deposited == 0 {
		t.Errorf("degraded slots never banked a segment: %+v", st)
	}
}

// TestExperimentMultiSlotCarry covers the harness plumbing: Slots=1 is
// bit-identical to the pre-Slots harness default, and a multi-slot
// carry-over experiment is deterministic across worker counts.
func TestExperimentMultiSlotCarry(t *testing.T) {
	base := ExperimentParams{Nodes: 30, SDPairs: 4, Trials: 3, Seed: 11}

	oneSlot := base
	oneSlot.Slots = 1
	r0, err := RunExperiment(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunExperiment(oneSlot)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if r0[alg].MeanThroughput != r1[alg].MeanThroughput {
			t.Errorf("%v: Slots=1 differs from default: %v vs %v",
				alg, r0[alg].MeanThroughput, r1[alg].MeanThroughput)
		}
	}

	multi := base
	multi.Slots = 5
	multi.CarryOver = true
	multi.DecoherenceSlots = 2
	serial := multi
	serial.Workers = 1
	rm, err := RunExperiment(multi)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunExperiment(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if rm[alg].MeanThroughput != rs[alg].MeanThroughput {
			t.Errorf("%v: carry-over experiment differs across worker counts: %v vs %v",
				alg, rm[alg].MeanThroughput, rs[alg].MeanThroughput)
		}
	}
}
