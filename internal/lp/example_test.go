package lp_test

import (
	"fmt"
	"log"

	"see/internal/lp"
)

// A small general LP with the dense two-phase simplex.
func ExampleDenseProblem() {
	// max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6
	p := lp.NewDense(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddConstraint([]lp.Entry{{Index: 0, Value: 1}, {Index: 1, Value: 1}}, lp.LE, 4)
	p.AddConstraint([]lp.Entry{{Index: 0, Value: 1}, {Index: 1, Value: 3}}, lp.LE, 6)
	sol, err := p.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v objective=%.0f x=%.0f y=%.0f\n", sol.Status, sol.Objective, sol.X[0], sol.X[1])
	// Output: optimal objective=12 x=4 y=0
}

// The packing solver accepts columns incrementally — the shape column
// generation needs.
func ExamplePackingSolver() {
	s, err := lp.NewPacking([]float64{10})
	if err != nil {
		log.Fatal(err)
	}
	s.AddColumn(1, []lp.Entry{{Index: 0, Value: 1}})
	s.Solve()
	before := s.Objective()

	// A better column arrives (e.g. priced out by an oracle).
	s.AddColumn(3, []lp.Entry{{Index: 0, Value: 1}})
	s.Solve()
	fmt.Printf("before=%.0f after=%.0f dual=%.0f\n", before, s.Objective(), s.Duals()[0])
	// Output: before=10 after=30 dual=3
}

// ExamplePackingSolver_warmStart shows the warm-start contract the
// column-generation loop in internal/flow relies on: AddColumn never
// invalidates the current basis, so a re-solve after pricing in a new
// column resumes from the previous optimum and only performs the pivots
// the new column forces — while a cold solver handed the same final column
// set replays the whole trajectory. Both land on the identical optimum;
// see DESIGN.md §9 for why between-slot reuse builds on exactly this.
func ExamplePackingSolver_warmStart() {
	rhs := []float64{1, 1, 1, 1}
	unit := func(i int) []lp.Entry { return []lp.Entry{{Index: i, Value: 1}} }

	warm, err := lp.NewPacking(rhs)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		warm.AddColumn(1, unit(i))
	}
	warm.Solve()
	base := warm.Pivots()

	// Price in one more column and re-solve from the current basis.
	extra := []lp.Entry{{Index: 0, Value: 1}, {Index: 1, Value: 1}}
	warm.AddColumn(2.5, extra)
	warm.Solve()
	warmPivots := warm.Pivots() - base

	// A cold solver sees all five columns from scratch.
	cold, err := lp.NewPacking(rhs)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		cold.AddColumn(1, unit(i))
	}
	cold.AddColumn(2.5, extra)
	cold.Solve()

	fmt.Printf("objectives equal: %v\n", warm.Objective() == cold.Objective())
	fmt.Printf("warm re-solve pivots: %d (cold solve: %d)\n", warmPivots, cold.Pivots())
	// Output:
	// objectives equal: true
	// warm re-solve pivots: 1 (cold solve: 4)
}
