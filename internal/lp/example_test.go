package lp_test

import (
	"fmt"
	"log"

	"see/internal/lp"
)

// A small general LP with the dense two-phase simplex.
func ExampleDenseProblem() {
	// max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6
	p := lp.NewDense(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddConstraint([]lp.Entry{{Index: 0, Value: 1}, {Index: 1, Value: 1}}, lp.LE, 4)
	p.AddConstraint([]lp.Entry{{Index: 0, Value: 1}, {Index: 1, Value: 3}}, lp.LE, 6)
	sol, err := p.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v objective=%.0f x=%.0f y=%.0f\n", sol.Status, sol.Objective, sol.X[0], sol.X[1])
	// Output: optimal objective=12 x=4 y=0
}

// The packing solver accepts columns incrementally — the shape column
// generation needs.
func ExamplePackingSolver() {
	s, err := lp.NewPacking([]float64{10})
	if err != nil {
		log.Fatal(err)
	}
	s.AddColumn(1, []lp.Entry{{Index: 0, Value: 1}})
	s.Solve()
	before := s.Objective()

	// A better column arrives (e.g. priced out by an oracle).
	s.AddColumn(3, []lp.Entry{{Index: 0, Value: 1}})
	s.Solve()
	fmt.Printf("before=%.0f after=%.0f dual=%.0f\n", before, s.Objective(), s.Duals()[0])
	// Output: before=10 after=30 dual=3
}
