package lp

import (
	"math"
	"math/rand"
	"testing"
)

func mustSolve(t *testing.T, p *DenseProblem) *DenseSolution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestDenseSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := NewDense(2)
	if err := p.SetObjective(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]Entry{{0, 1}, {1, 1}}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]Entry{{0, 1}, {1, 3}}, LE, 6); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-12) > 1e-7 {
		t.Fatalf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > 1e-7 || math.Abs(sol.X[1]) > 1e-7 {
		t.Fatalf("x = %v, want [4 0]", sol.X)
	}
}

func TestDenseEqualityAndGE(t *testing.T) {
	// max x + y s.t. x + y = 10, x >= 3, y <= 4  -> x=6..? y<=4 so y=4, x=6.
	p := NewDense(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Entry{{0, 1}}, GE, 3)
	p.AddConstraint([]Entry{{1, 1}}, LE, 4)
	sol := mustSolve(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-10) > 1e-7 {
		t.Fatalf("objective = %v, want 10", sol.Objective)
	}
	if sol.X[0] < 3-1e-7 || sol.X[1] > 4+1e-7 {
		t.Fatalf("x = %v violates bounds", sol.X)
	}
	if math.Abs(sol.X[0]+sol.X[1]-10) > 1e-7 {
		t.Fatalf("x = %v violates equality", sol.X)
	}
}

func TestDenseInfeasible(t *testing.T) {
	p := NewDense(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Entry{{0, 1}}, LE, 1)
	p.AddConstraint([]Entry{{0, 1}}, GE, 2)
	sol := mustSolve(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestDenseUnbounded(t *testing.T) {
	p := NewDense(2)
	p.SetObjective(0, 1)
	p.AddConstraint([]Entry{{1, 1}}, LE, 5)
	sol := mustSolve(t, p)
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestDenseNegativeRHS(t *testing.T) {
	// x >= 0, -x <= -2 means x >= 2; max -x -> x = 2, obj = -2.
	p := NewDense(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Entry{{0, -1}}, LE, -2)
	sol := mustSolve(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective+2) > 1e-7 {
		t.Fatalf("objective = %v, want -2", sol.Objective)
	}
}

func TestDenseDuplicateEntriesSummed(t *testing.T) {
	// 2x (as 1x + 1x) <= 4 -> x <= 2.
	p := NewDense(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Entry{{0, 1}, {0, 1}}, LE, 4)
	sol := mustSolve(t, p)
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestDenseDegenerate(t *testing.T) {
	// Classic degenerate LP; must still terminate at the optimum.
	p := NewDense(3)
	p.SetObjective(0, 10)
	p.SetObjective(1, -57)
	p.SetObjective(2, -9)
	p.AddConstraint([]Entry{{0, 0.5}, {1, -5.5}, {2, -2.5}}, LE, 0)
	p.AddConstraint([]Entry{{0, 0.5}, {1, -1.5}, {2, -0.5}}, LE, 0)
	p.AddConstraint([]Entry{{0, 1}}, LE, 1)
	sol := mustSolve(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimum is x = (1, 0, 1)? Verify objective value by known result: 1.
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Fatalf("objective = %v, want 1", sol.Objective)
	}
}

func TestDenseValidation(t *testing.T) {
	p := NewDense(1)
	if err := p.SetObjective(2, 1); err == nil {
		t.Fatal("out-of-range objective index accepted")
	}
	if err := p.AddConstraint([]Entry{{5, 1}}, LE, 1); err == nil {
		t.Fatal("out-of-range constraint index accepted")
	}
	if err := p.AddConstraint([]Entry{{0, math.NaN()}}, LE, 1); err == nil {
		t.Fatal("NaN coefficient accepted")
	}
	if err := p.AddConstraint([]Entry{{0, 1}}, Sense(99), 1); err == nil {
		t.Fatal("invalid sense accepted")
	}
	if err := p.AddConstraint([]Entry{{0, 1}}, LE, math.Inf(1)); err == nil {
		t.Fatal("infinite rhs accepted")
	}
}

// bruteForceBox maximizes over a fine grid; used as an oracle for tiny LPs
// with box-bounded feasible regions.
func bruteForceBox(obj []float64, feasible func(x []float64) bool, hi float64, steps int) float64 {
	best := math.Inf(-1)
	n := len(obj)
	x := make([]float64, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if feasible(x) {
				v := 0.0
				for j := range x {
					v += obj[j] * x[j]
				}
				if v > best {
					best = v
				}
			}
			return
		}
		for s := 0; s <= steps; s++ {
			x[i] = hi * float64(s) / float64(steps)
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// Property: on random 2-3 variable packing LPs the simplex optimum matches a
// grid brute force to grid resolution.
func TestDenseMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(2)
		p := NewDense(n)
		obj := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.Float64() * 5
			p.SetObjective(j, obj[j])
		}
		type row struct {
			a   []float64
			rhs float64
		}
		var rows []row
		m := 1 + rng.Intn(3)
		for i := 0; i < m; i++ {
			a := make([]float64, n)
			es := make([]Entry, n)
			for j := 0; j < n; j++ {
				a[j] = rng.Float64() * 2
				es[j] = Entry{j, a[j]}
			}
			rhs := 1 + rng.Float64()*5
			rows = append(rows, row{a, rhs})
			p.AddConstraint(es, LE, rhs)
		}
		// Box to make brute force finite.
		for j := 0; j < n; j++ {
			p.AddConstraint([]Entry{{j, 1}}, LE, 10)
		}
		sol := mustSolve(t, p)
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		feasible := func(x []float64) bool {
			for _, r := range rows {
				s := 0.0
				for j := range x {
					s += r.a[j] * x[j]
				}
				if s > r.rhs+1e-9 {
					return false
				}
			}
			return true
		}
		bf := bruteForceBox(obj, feasible, 10, 40)
		if sol.Objective < bf-0.5 {
			t.Fatalf("trial %d: simplex %v < brute force %v", trial, sol.Objective, bf)
		}
		if sol.Objective > bf+1.5 {
			// Simplex should not massively exceed a fine grid either;
			// tolerance accounts for grid resolution.
			t.Fatalf("trial %d: simplex %v >> brute force %v", trial, sol.Objective, bf)
		}
		// Returned point must itself be feasible.
		if !feasible(sol.X) {
			t.Fatalf("trial %d: returned point infeasible: %v", trial, sol.X)
		}
		for j, v := range sol.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v < 0", trial, j, v)
			}
		}
	}
}
