package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPackingSimple(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
	s, err := NewPacking([]float64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddColumn(3, []Entry{{0, 1}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddColumn(2, []Entry{{0, 1}, {1, 3}}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Solve()
	if err != nil || st != StatusOptimal {
		t.Fatalf("Solve: %v %v", st, err)
	}
	if math.Abs(s.Objective()-12) > 1e-7 {
		t.Fatalf("objective = %v, want 12", s.Objective())
	}
	if math.Abs(s.Primal(0)-4) > 1e-7 || math.Abs(s.Primal(1)) > 1e-7 {
		t.Fatalf("primal = %v,%v want 4,0", s.Primal(0), s.Primal(1))
	}
}

func TestPackingRejectsBadInput(t *testing.T) {
	if _, err := NewPacking([]float64{-1}); err == nil {
		t.Fatal("negative rhs accepted")
	}
	if _, err := NewPacking([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN rhs accepted")
	}
	s, _ := NewPacking([]float64{1})
	if _, err := s.AddColumn(1, []Entry{{5, 1}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := s.AddColumn(math.Inf(1), nil); err == nil {
		t.Fatal("infinite objective accepted")
	}
	if _, err := s.AddColumn(1, []Entry{{0, math.NaN()}}); err == nil {
		t.Fatal("NaN coefficient accepted")
	}
}

func TestPackingUnbounded(t *testing.T) {
	s, _ := NewPacking([]float64{5})
	// Column with no positive entries and positive objective is unbounded.
	s.AddColumn(1, nil)
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", st)
	}
}

func TestPackingZeroRHS(t *testing.T) {
	// Degenerate at zero: optimum is 0, no pivoting storm.
	s, _ := NewPacking([]float64{0, 0})
	s.AddColumn(5, []Entry{{0, 1}})
	s.AddColumn(3, []Entry{{1, 2}})
	st, err := s.Solve()
	if err != nil || st != StatusOptimal {
		t.Fatalf("Solve: %v %v", st, err)
	}
	if s.Objective() != 0 {
		t.Fatalf("objective = %v, want 0", s.Objective())
	}
}

func TestPackingIncrementalColumns(t *testing.T) {
	// Solve, add a better column, re-solve warm.
	s, _ := NewPacking([]float64{10})
	s.AddColumn(1, []Entry{{0, 1}})
	if st, _ := s.Solve(); st != StatusOptimal {
		t.Fatal("first solve failed")
	}
	if math.Abs(s.Objective()-10) > 1e-7 {
		t.Fatalf("objective = %v, want 10", s.Objective())
	}
	j, _ := s.AddColumn(3, []Entry{{0, 1}})
	if st, _ := s.Solve(); st != StatusOptimal {
		t.Fatal("second solve failed")
	}
	if math.Abs(s.Objective()-30) > 1e-7 {
		t.Fatalf("objective = %v, want 30 after adding better column", s.Objective())
	}
	if math.Abs(s.Primal(j)-10) > 1e-7 {
		t.Fatalf("new column value = %v, want 10", s.Primal(j))
	}
}

func TestPackingDuplicateRowEntriesMerged(t *testing.T) {
	s, _ := NewPacking([]float64{4})
	s.AddColumn(1, []Entry{{0, 1}, {0, 1}}) // effectively 2x <= 4
	if st, _ := s.Solve(); st != StatusOptimal {
		t.Fatal("solve failed")
	}
	if math.Abs(s.Objective()-2) > 1e-7 {
		t.Fatalf("objective = %v, want 2", s.Objective())
	}
}

func TestPackingDuals(t *testing.T) {
	// max 3x+2y, x+y<=4, x+3y<=6. Optimal basis x, slack2: dual = (3, 0).
	s, _ := NewPacking([]float64{4, 6})
	s.AddColumn(3, []Entry{{0, 1}, {1, 1}})
	s.AddColumn(2, []Entry{{0, 1}, {1, 3}})
	if st, _ := s.Solve(); st != StatusOptimal {
		t.Fatal("solve failed")
	}
	y := s.Duals()
	if math.Abs(y[0]-3) > 1e-7 || math.Abs(y[1]) > 1e-7 {
		t.Fatalf("duals = %v, want [3 0]", y)
	}
	// Strong duality: yᵀb == objective.
	if math.Abs(y[0]*4+y[1]*6-s.Objective()) > 1e-7 {
		t.Fatal("strong duality violated")
	}
}

func TestReducedCost(t *testing.T) {
	y := []float64{2, 1}
	rc := ReducedCost(5, []Entry{{0, 1}, {1, 2}}, y)
	if math.Abs(rc-1) > 1e-12 {
		t.Fatalf("ReducedCost = %v, want 1", rc)
	}
}

// randomPacking builds identical random packing LPs in both solvers.
func randomPacking(rng *rand.Rand, m, n int) (*PackingSolver, *DenseProblem, []float64, [][]float64) {
	b := make([]float64, m)
	for i := range b {
		b[i] = 1 + rng.Float64()*9
	}
	ps, _ := NewPacking(b)
	dp := NewDense(n)
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		obj := rng.Float64() * 4
		dp.SetObjective(j, obj)
		var entries []Entry
		nnz := 1 + rng.Intn(m)
		for k := 0; k < nnz; k++ {
			r := rng.Intn(m)
			v := 0.1 + rng.Float64()*2
			entries = append(entries, Entry{r, v})
			rows[r][j] += v
		}
		ps.AddColumn(obj, entries)
	}
	for i := 0; i < m; i++ {
		es := make([]Entry, 0, n)
		for j := 0; j < n; j++ {
			if rows[i][j] != 0 {
				es = append(es, Entry{j, rows[i][j]})
			}
		}
		dp.AddConstraint(es, LE, b[i])
	}
	return ps, dp, b, rows
}

// Property: the packing solver and the dense two-phase solver agree on
// random packing LPs, the solution is feasible, and strong duality holds.
func TestPackingMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(12)
		ps, dp, b, rows := randomPacking(rng, m, n)
		st, err := ps.Solve()
		if err != nil || st != StatusOptimal {
			t.Fatalf("trial %d: packing solve %v %v", trial, st, err)
		}
		dsol, err := dp.Solve()
		if err != nil || dsol.Status != StatusOptimal {
			t.Fatalf("trial %d: dense solve failed", trial)
		}
		if math.Abs(ps.Objective()-dsol.Objective) > 1e-6*(1+math.Abs(dsol.Objective)) {
			t.Fatalf("trial %d: packing %v != dense %v", trial, ps.Objective(), dsol.Objective)
		}
		// Primal feasibility.
		x := ps.Primals()
		for i := 0; i < m; i++ {
			var lhs float64
			for j := 0; j < n; j++ {
				lhs += rows[i][j] * x[j]
			}
			if lhs > b[i]+1e-6 {
				t.Fatalf("trial %d: row %d violated: %v > %v", trial, i, lhs, b[i])
			}
		}
		for j, v := range x {
			if v < -1e-8 {
				t.Fatalf("trial %d: x[%d] = %v < 0", trial, j, v)
			}
		}
		// Strong duality and dual feasibility.
		y := ps.Duals()
		var yb float64
		for i := range y {
			if y[i] < -1e-7 {
				t.Fatalf("trial %d: dual %d negative: %v", trial, i, y[i])
			}
			yb += y[i] * b[i]
		}
		if math.Abs(yb-ps.Objective()) > 1e-5*(1+math.Abs(yb)) {
			t.Fatalf("trial %d: strong duality gap: yb=%v obj=%v", trial, yb, ps.Objective())
		}
	}
}

// Property: after optimality every column's reduced cost is <= tolerance.
func TestPackingOptimalityCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(6)
		n := 2 + rng.Intn(10)
		ps, _, _, _ := randomPacking(rng, m, n)
		if st, _ := ps.Solve(); st != StatusOptimal {
			t.Fatalf("trial %d: not optimal", trial)
		}
		y := ps.Duals()
		for j := 0; j < ps.NumCols(); j++ {
			rc := ps.col[j].obj
			for _, e := range ps.col[j].entries {
				rc -= y[e.Index] * e.Value
			}
			if rc > 1e-6 {
				t.Fatalf("trial %d: column %d has positive reduced cost %v at optimum", trial, j, rc)
			}
		}
	}
}

func TestPackingRefactorizeStability(t *testing.T) {
	// Force many pivots by solving a sequence of growing problems and
	// verify the solution stays consistent with a fresh dense solve.
	rng := rand.New(rand.NewSource(13))
	ps, dp, _, _ := randomPacking(rng, 6, 40)
	ps.pivots = 1999 // trigger refactorization on the first pivot
	if st, _ := ps.Solve(); st != StatusOptimal {
		t.Fatal("not optimal")
	}
	dsol, _ := dp.Solve()
	if math.Abs(ps.Objective()-dsol.Objective) > 1e-6*(1+math.Abs(dsol.Objective)) {
		t.Fatalf("after refactorization: %v != %v", ps.Objective(), dsol.Objective)
	}
}

// Property: the incrementally maintained duals (updated in O(m) per pivot)
// match a from-scratch c_B·B⁻¹ product after arbitrary solve / add-column
// sequences, and the basis-row index agrees with a linear basis scan.
func TestPackingIncrementalStateMatchesScratch(t *testing.T) {
	checkState := func(trial int, ps *PackingSolver) {
		t.Helper()
		// Duals from scratch.
		want := make([]float64, ps.m)
		for i := 0; i < ps.m; i++ {
			cb := ps.objOf(ps.basis[i])
			if cb == 0 {
				continue
			}
			for j := 0; j < ps.m; j++ {
				want[j] += cb * ps.binv[i][j]
			}
		}
		for j := range want {
			if math.Abs(ps.y[j]-want[j]) > 1e-6*(1+math.Abs(want[j])) {
				t.Fatalf("trial %d: incremental dual %d = %v, scratch %v", trial, j, ps.y[j], want[j])
			}
		}
		// basisRowOf and slackInBasis against the basis definition.
		for j := 0; j < ps.NumCols(); j++ {
			row := -1
			for i, bi := range ps.basis {
				if bi == j {
					row = i
				}
			}
			if ps.basisRowOf[j] != row {
				t.Fatalf("trial %d: basisRowOf[%d] = %d, want %d", trial, j, ps.basisRowOf[j], row)
			}
		}
		for r := 0; r < ps.m; r++ {
			want := false
			for _, bi := range ps.basis {
				if bi == -(r + 1) {
					want = true
				}
			}
			if ps.slackInBasis[r] != want {
				t.Fatalf("trial %d: slackInBasis[%d] = %v, want %v", trial, r, ps.slackInBasis[r], want)
			}
		}
	}

	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(7)
		n := 2 + rng.Intn(12)
		ps, _, _, _ := randomPacking(rng, m, n)
		if st, _ := ps.Solve(); st != StatusOptimal {
			t.Fatalf("trial %d: not optimal", trial)
		}
		checkState(trial, ps)
		// Column generation pattern: add columns against the duals, re-solve
		// warm, re-check.
		y := ps.Duals()
		for k := 0; k < 3; k++ {
			r := rng.Intn(m)
			obj := y[r]*2 + 0.5 // guaranteed-attractive column on row r
			ps.AddColumn(obj, []Entry{{Index: r, Value: 1}})
		}
		if st, _ := ps.Solve(); st != StatusOptimal {
			t.Fatalf("trial %d: warm re-solve not optimal", trial)
		}
		checkState(trial, ps)
	}
}

// Primal(j) must agree with Primals() for every column (the O(1) basis-row
// lookup against the slice construction).
func TestPackingPrimalMatchesPrimals(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		ps, _, _, _ := randomPacking(rng, 3+rng.Intn(5), 4+rng.Intn(10))
		if st, _ := ps.Solve(); st != StatusOptimal {
			t.Fatalf("trial %d: not optimal", trial)
		}
		xs := ps.Primals()
		for j, want := range xs {
			if got := ps.Primal(j); got != want {
				t.Fatalf("trial %d: Primal(%d) = %v, Primals %v", trial, j, got, want)
			}
		}
		if ps.Primal(-1) != 0 || ps.Primal(ps.NumCols()) != 0 {
			t.Fatalf("trial %d: out-of-range Primal not 0", trial)
		}
	}
}
