package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ctxCheckStride is how many simplex pivots run between context polls in
// SolveCtx. Small enough that a slot budget cuts a runaway solve promptly,
// large enough that the poll never shows up in profiles.
const ctxCheckStride = 64

// PackingSolver is a revised primal simplex specialized to packing LPs:
//
//	maximize cᵀx  subject to  Ax ≤ b,  x ≥ 0,  b ≥ 0.
//
// All rows are ≤ with non-negative right-hand sides, so the all-slack basis
// is feasible and no phase 1 is needed. Columns are sparse and can be added
// between solves, which makes the type the master problem of the
// column-generation loop in internal/flow: Solve, read Duals, price new
// columns, AddColumn, Solve again (warm-started from the current basis).
type PackingSolver struct {
	m   int
	b   []float64
	col []packedColumn

	// Basis state. basis[i] identifies the basic variable of row i:
	// values ≥ 0 are structural column indices, values < 0 encode slack
	// −(row+1).
	basis   []int
	inBasis []bool // per structural column
	binv    [][]float64
	xb      []float64
	solved  bool

	// Incrementally maintained views of the basis, kept in sync by
	// pivot/resetBasis/refactorize so the solve loop and accessors stop
	// recomputing them:
	//
	//	y            — the (unclamped) duals c_B·B⁻¹; pivoting updates them
	//	               in O(m) via y += rc/d_r · (B⁻¹)_r instead of the
	//	               O(m²) from-scratch product per iteration.
	//	slackInBasis — per row, whether its slack is basic (replaces a
	//	               linear basis scan per pricing candidate).
	//	basisRowOf   — structural column → basis row, or −1 (makes Primal
	//	               O(1)).
	y            []float64
	slackInBasis []bool
	basisRowOf   []int

	// MaxIter caps pivots per Solve call; 0 means automatic.
	MaxIter int
	// pivots counts total pivots across Solve calls (refactorization
	// schedule and tests).
	pivots int
	// supBuf/supVal are pivot's reusable scratch for the nonzero support
	// of the transformed pivot row: indices and, packed densely alongside,
	// the row values at those indices, so the O(rows × support) update
	// streams through contiguous memory instead of gathering from the
	// m-wide pivot row on every pass.
	supBuf []int32
	supVal []float64
	// dirBuf is SolveCtx's reusable entering-direction column B⁻¹·A_j.
	dirBuf []float64
	// colBuf is AddColumn's reusable entry-merge scratch.
	colBuf []Entry
	// refacBuf is refactorize's reusable m×2m Gauss-Jordan workspace.
	refacBuf [][]float64
}

type packedColumn struct {
	obj     float64
	entries []Entry
}

// NewPacking creates a solver with the given row capacities. All entries of
// b must be finite and ≥ 0.
func NewPacking(b []float64) (*PackingSolver, error) {
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("lp: packing rhs[%d] = %v must be finite and >= 0", i, v)
		}
	}
	s := &PackingSolver{
		m: len(b),
		b: append([]float64(nil), b...),
	}
	s.resetBasis()
	return s, nil
}

func (s *PackingSolver) resetBasis() {
	s.basis = make([]int, s.m)
	s.binv = make([][]float64, s.m)
	s.xb = append([]float64(nil), s.b...)
	s.y = make([]float64, s.m) // all-slack basis has c_B = 0
	s.slackInBasis = make([]bool, s.m)
	for i := 0; i < s.m; i++ {
		s.basis[i] = -(i + 1)
		s.binv[i] = make([]float64, s.m)
		s.binv[i][i] = 1
		s.slackInBasis[i] = true
	}
	s.inBasis = make([]bool, len(s.col))
	s.basisRowOf = make([]int, len(s.col))
	for j := range s.basisRowOf {
		s.basisRowOf[j] = -1
	}
	s.solved = false
}

// NumRows returns the number of rows.
func (s *PackingSolver) NumRows() int { return s.m }

// Pivots returns the total simplex pivots performed across all Solve calls
// — the direct measure of how much work a warm-started re-solve skipped.
func (s *PackingSolver) Pivots() int { return s.pivots }

// NumCols returns the number of structural columns.
func (s *PackingSolver) NumCols() int { return len(s.col) }

// AddColumn appends a sparse column with the given objective coefficient
// and returns its index. Entries must reference valid rows; duplicate rows
// are summed. Adding a column never invalidates the current basis.
func (s *PackingSolver) AddColumn(obj float64, entries []Entry) (int, error) {
	if math.IsNaN(obj) || math.IsInf(obj, 0) {
		return 0, errors.New("lp: non-finite objective coefficient")
	}
	for _, e := range entries {
		if e.Index < 0 || e.Index >= s.m {
			return 0, fmt.Errorf("lp: column entry row %d out of range [0,%d)", e.Index, s.m)
		}
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return 0, fmt.Errorf("lp: non-finite coefficient in row %d", e.Index)
		}
	}
	// Merge duplicate rows without a per-call map: stable-sort a scratch
	// copy by row, then sum runs left-to-right — the same per-row addition
	// order as input order, so merged values are bit-identical to the old
	// map-based merge.
	buf := append(s.colBuf[:0], entries...)
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].Index < buf[j].Index })
	es := make([]Entry, 0, len(buf))
	for i := 0; i < len(buf); {
		r := buf[i].Index
		v := buf[i].Value
		for i++; i < len(buf) && buf[i].Index == r; i++ {
			v += buf[i].Value
		}
		if v != 0 {
			es = append(es, Entry{Index: r, Value: v})
		}
	}
	s.colBuf = buf
	s.col = append(s.col, packedColumn{obj: obj, entries: es})
	s.inBasis = append(s.inBasis, false)
	s.basisRowOf = append(s.basisRowOf, -1)
	return len(s.col) - 1, nil
}

// Duals returns the dual variable of each row from the last optimal solve.
// For packing LPs the duals are ≥ 0 (up to tolerance).
func (s *PackingSolver) Duals() []float64 {
	y := append([]float64(nil), s.y...)
	for j := range y {
		if y[j] < 0 && y[j] > -1e-7 {
			y[j] = 0
		}
	}
	return y
}

// computeDuals recomputes c_B·B⁻¹ from the basis definition into s.y,
// discarding the incrementally maintained values (refactorization and
// drift tests).
func (s *PackingSolver) computeDuals() {
	for j := range s.y {
		s.y[j] = 0
	}
	for i := 0; i < s.m; i++ {
		cb := s.objOf(s.basis[i])
		if cb == 0 {
			continue
		}
		row := s.binv[i]
		for j := 0; j < s.m; j++ {
			s.y[j] += cb * row[j]
		}
	}
}

// Objective returns the current objective value.
func (s *PackingSolver) Objective() float64 {
	var v float64
	for i, bi := range s.basis {
		v += s.objOf(bi) * s.xb[i]
	}
	return v
}

// Primal returns the value of structural column j in the current basic
// solution.
func (s *PackingSolver) Primal(j int) float64 {
	if j < 0 || j >= len(s.col) {
		return 0
	}
	if r := s.basisRowOf[j]; r >= 0 {
		return s.xb[r]
	}
	return 0
}

// Primals returns all structural values as a slice.
func (s *PackingSolver) Primals() []float64 {
	x := make([]float64, len(s.col))
	for i, bi := range s.basis {
		if bi >= 0 {
			x[bi] = s.xb[i]
		}
	}
	return x
}

// ReducedCost computes c_j − yᵀA_j for a hypothetical column without adding
// it; y must come from Duals().
func ReducedCost(obj float64, entries []Entry, y []float64) float64 {
	rc := obj
	for _, e := range entries {
		rc -= y[e.Index] * e.Value
	}
	return rc
}

func (s *PackingSolver) objOf(basisID int) float64 {
	if basisID >= 0 {
		return s.col[basisID].obj
	}
	return 0 // slack
}

// columnInto writes B⁻¹·A_j for basis entry id into out.
func (s *PackingSolver) columnInto(basisID int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if basisID >= 0 {
		for _, e := range s.col[basisID].entries {
			v := e.Value
			if v == 0 {
				continue
			}
			for i := 0; i < s.m; i++ {
				out[i] += s.binv[i][e.Index] * v
			}
		}
		return
	}
	r := -basisID - 1
	for i := 0; i < s.m; i++ {
		out[i] = s.binv[i][r]
	}
}

// Solve optimizes from the current basis and returns the status. After
// StatusOptimal, Duals/Primal/Objective describe the optimum. The packing
// form cannot be infeasible, and with finite b it cannot be unbounded unless
// a column has no positive entries and positive objective.
func (s *PackingSolver) Solve() (Status, error) {
	return s.SolveCtx(nil)
}

// SolveCtx is Solve bounded by a context (nil = never cancelled). The
// deadline is polled every ctxCheckStride pivots — cheap relative to the
// O(m) pricing pass — and a cancelled solve returns ctx.Err() with the
// basis left in the valid (suboptimal) state of the last completed pivot,
// so a later Solve can resume from it.
func (s *PackingSolver) SolveCtx(ctx context.Context) (Status, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	maxIter := s.MaxIter
	if maxIter <= 0 {
		maxIter = 500*(s.m+1) + 50*len(s.col)
		if maxIter < 20000 {
			maxIter = 20000
		}
	}
	if len(s.dirBuf) != s.m {
		s.dirBuf = make([]float64, s.m)
	}
	dir := s.dirBuf
	stall := 0
	for iter := 0; iter < maxIter; iter++ {
		if done != nil && iter%ctxCheckStride == 0 {
			select {
			case <-done:
				return 0, ctx.Err()
			default:
			}
		}
		// s.y holds the duals of the current basis, maintained across
		// pivots in O(m); pricing reads it directly.
		y := s.y
		useBland := stall > 2*s.m+100
		entering := -1
		enterRC := 0.0
		best := tol
		for j, c := range s.col {
			if s.inBasis[j] {
				continue
			}
			rc := c.obj
			for _, e := range c.entries {
				rc -= y[e.Index] * e.Value
			}
			if rc > best {
				entering = j
				enterRC = rc
				if useBland {
					break
				}
				best = rc
			}
		}
		if entering == -1 {
			// Also consider slack re-entry (possible when duals go
			// negative due to degeneracy); slack j has rc = −y_j.
			for r := 0; r < s.m; r++ {
				if s.slackInBasis[r] {
					continue
				}
				if -y[r] > best {
					entering = -(r + 1)
					enterRC = -y[r]
					if useBland {
						break
					}
					best = -y[r]
				}
			}
		}
		if entering == -1 && best <= tol {
			s.solved = true
			return StatusOptimal, nil
		}

		s.columnInto(entering, dir)
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < s.m; i++ {
			if dir[i] > pivotTol {
				ratio := s.xb[i] / dir[i]
				if ratio < bestRatio-tol ||
					(ratio < bestRatio+tol && (leave == -1 || s.basis[i] < s.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return StatusUnbounded, nil
		}
		if bestRatio < tol {
			stall++
		} else {
			stall = 0
		}
		s.pivot(leave, entering, dir, bestRatio, enterRC)
	}
	return StatusIterLimit, nil
}

func (s *PackingSolver) pivot(leave, entering int, dir []float64, theta, rc float64) {
	old := s.basis[leave]
	if old >= 0 {
		s.inBasis[old] = false
		s.basisRowOf[old] = -1
	} else {
		s.slackInBasis[-old-1] = false
	}
	if entering >= 0 {
		s.inBasis[entering] = true
		s.basisRowOf[entering] = leave
	} else {
		s.slackInBasis[-entering-1] = true
	}
	s.basis[leave] = entering

	// Update basic solution.
	for i := range s.xb {
		if i == leave {
			continue
		}
		s.xb[i] -= theta * dir[i]
		if s.xb[i] < 0 && s.xb[i] > -1e-9 {
			s.xb[i] = 0
		}
	}
	s.xb[leave] = theta

	// Elementary row transformation of B⁻¹, restricted to the nonzero
	// support of the pivot row: zero pr[j] entries contribute f·0 = 0 to
	// every row, so skipping them leaves the arithmetic bit-identical
	// while basis inverses stay sparse (slack-heavy packing bases mostly
	// are). The support values are packed into a dense companion slice so
	// the per-row update streams (index, value) pairs from contiguous
	// memory instead of re-gathering pr[j] across the m-wide pivot row
	// once per basis row — same multiplies, same order, same bits.
	pr := s.binv[leave]
	inv := 1 / dir[leave]
	sup := s.supBuf[:0]
	val := s.supVal[:0]
	for j, v := range pr {
		if v != 0 {
			v *= inv
			pr[j] = v
			sup = append(sup, int32(j))
			val = append(val, v)
		}
	}
	s.supBuf = sup
	s.supVal = val
	for i := range s.binv {
		if i == leave {
			continue
		}
		f := dir[i]
		if f == 0 {
			continue
		}
		row := s.binv[i]
		for k, j := range sup {
			row[j] -= f * val[k]
		}
	}
	// Dual update: with entering reduced cost rc and pivot element d_r,
	// y' = y + (rc/d_r)·(B⁻¹)_r = y + rc·(B'⁻¹)_r — pr already holds the
	// transformed row, so the O(m²) from-scratch product is unnecessary.
	if rc != 0 {
		for k, j := range sup {
			s.y[j] += rc * val[k]
		}
	}
	s.pivots++
	if s.pivots%2000 == 0 {
		s.refactorize()
	}
}

// refactorize rebuilds B⁻¹ and x_B from the basis definition to wash out
// accumulated floating-point drift. It is O(m³).
func (s *PackingSolver) refactorize() {
	m := s.m
	// Build B augmented with identity, Gauss-Jordan to invert. The m×2m
	// workspace is retained across refactorizations (every 2000 pivots)
	// and zeroed explicitly, matching a fresh allocation bit-for-bit.
	if len(s.refacBuf) != m {
		s.refacBuf = make([][]float64, m)
		for i := range s.refacBuf {
			s.refacBuf[i] = make([]float64, 2*m)
		}
	}
	bmat := s.refacBuf
	for i := 0; i < m; i++ {
		row := bmat[i]
		for j := range row {
			row[j] = 0
		}
		row[m+i] = 1
	}
	for k, id := range s.basis {
		if id >= 0 {
			for _, e := range s.col[id].entries {
				bmat[e.Index][k] = e.Value
			}
		} else {
			bmat[-id-1][k] = 1
		}
	}
	for c := 0; c < m; c++ {
		// Partial pivoting.
		p := c
		for r := c + 1; r < m; r++ {
			if math.Abs(bmat[r][c]) > math.Abs(bmat[p][c]) {
				p = r
			}
		}
		if math.Abs(bmat[p][c]) < 1e-12 {
			// Numerically singular basis; fall back to a fresh slack
			// basis (correct, loses warm start).
			s.resetBasis()
			return
		}
		bmat[c], bmat[p] = bmat[p], bmat[c]
		inv := 1 / bmat[c][c]
		for j := c; j < 2*m; j++ {
			bmat[c][j] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := bmat[r][c]
			if f == 0 {
				continue
			}
			for j := c; j < 2*m; j++ {
				bmat[r][j] -= f * bmat[c][j]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i], bmat[i][m:])
	}
	// x_B = B⁻¹ b.
	for i := 0; i < m; i++ {
		var v float64
		for j := 0; j < m; j++ {
			v += s.binv[i][j] * s.b[j]
		}
		if v < 0 && v > -1e-7 {
			v = 0
		}
		s.xb[i] = v
	}
	// Wash the incremental duals along with B⁻¹: they accumulate the same
	// floating-point drift.
	s.computeDuals()
}
