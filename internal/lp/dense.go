package lp

import (
	"errors"
	"fmt"
	"math"
)

// DenseProblem is a small general LP: maximize cᵀx subject to rows of any
// sense, x ≥ 0. It is solved with a two-phase tableau simplex. Intended for
// models up to a few hundred rows/columns (unit tests, the motivation
// example, cross-validation of the column-generation stack).
type DenseProblem struct {
	numVars int
	obj     []float64
	rows    [][]Entry
	senses  []Sense
	rhs     []float64
	// MaxIter caps simplex pivots per phase; 0 means an automatic cap.
	MaxIter int
}

// DenseSolution is the result of DenseProblem.Solve.
type DenseSolution struct {
	Status    Status
	Objective float64
	X         []float64
}

// NewDense returns an empty problem with n non-negative variables.
func NewDense(n int) *DenseProblem {
	return &DenseProblem{numVars: n, obj: make([]float64, n)}
}

// NumVars returns the number of variables.
func (p *DenseProblem) NumVars() int { return p.numVars }

// NumRows returns the number of constraints added so far.
func (p *DenseProblem) NumRows() int { return len(p.rows) }

// SetObjective sets the (maximization) objective coefficient of variable j.
func (p *DenseProblem) SetObjective(j int, c float64) error {
	if j < 0 || j >= p.numVars {
		return fmt.Errorf("lp: objective index %d out of range [0,%d)", j, p.numVars)
	}
	p.obj[j] = c
	return nil
}

// AddConstraint appends a row Σ coeffs·x (sense) rhs. Entries may repeat a
// variable; coefficients are summed.
func (p *DenseProblem) AddConstraint(coeffs []Entry, sense Sense, rhs float64) error {
	if sense != LE && sense != GE && sense != EQ {
		return fmt.Errorf("lp: invalid sense %v", sense)
	}
	for _, e := range coeffs {
		if e.Index < 0 || e.Index >= p.numVars {
			return fmt.Errorf("lp: constraint index %d out of range [0,%d)", e.Index, p.numVars)
		}
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return fmt.Errorf("lp: non-finite coefficient for variable %d", e.Index)
		}
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return errors.New("lp: non-finite rhs")
	}
	p.rows = append(p.rows, append([]Entry(nil), coeffs...))
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	return nil
}

// Solve runs the two-phase simplex and returns the solution. The problem is
// not mutated and can be re-solved after adding constraints.
func (p *DenseProblem) Solve() (*DenseSolution, error) {
	m := len(p.rows)
	n := p.numVars

	// Normalize rows so rhs ≥ 0, flipping senses as needed.
	senses := append([]Sense(nil), p.senses...)
	rhs := append([]float64(nil), p.rhs...)
	dense := make([][]float64, m)
	for i, row := range p.rows {
		dense[i] = make([]float64, n)
		for _, e := range row {
			dense[i][e.Index] += e.Value
		}
		if rhs[i] < 0 {
			rhs[i] = -rhs[i]
			for j := range dense[i] {
				dense[i][j] = -dense[i][j]
			}
			switch senses[i] {
			case LE:
				senses[i] = GE
			case GE:
				senses[i] = LE
			}
		}
	}

	// Column layout: [structural n][slack/surplus per row][artificial per
	// row as needed][rhs].
	numSlack := 0
	slackCol := make([]int, m)
	for i, s := range senses {
		if s == LE || s == GE {
			slackCol[i] = n + numSlack
			numSlack++
		} else {
			slackCol[i] = -1
		}
	}
	numArt := 0
	artCol := make([]int, m)
	artBase := n + numSlack
	for i, s := range senses {
		if s == GE || s == EQ {
			artCol[i] = artBase + numArt
			numArt++
		} else {
			artCol[i] = -1
		}
	}
	total := n + numSlack + numArt
	width := total + 1 // + rhs

	tab := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, width)
		copy(tab[i], dense[i])
		switch senses[i] {
		case LE:
			tab[i][slackCol[i]] = 1
			basis[i] = slackCol[i]
		case GE:
			tab[i][slackCol[i]] = -1
			tab[i][artCol[i]] = 1
			basis[i] = artCol[i]
		case EQ:
			tab[i][artCol[i]] = 1
			basis[i] = artCol[i]
		}
		tab[i][total] = rhs[i]
	}

	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 200 * (m + total + 10)
	}

	if numArt > 0 {
		// Phase 1: maximize −Σ artificials.
		phase1 := make([]float64, total)
		for i := 0; i < m; i++ {
			if artCol[i] >= 0 {
				phase1[artCol[i]] = -1
			}
		}
		status := runSimplex(tab, basis, phase1, total, maxIter, artBase)
		if status == StatusIterLimit {
			return &DenseSolution{Status: StatusIterLimit}, nil
		}
		// Phase-1 objective value = −Σ artificial values.
		var artSum float64
		for i, b := range basis {
			if b >= artBase {
				artSum += tab[i][total]
			}
		}
		if artSum > 1e-7 {
			return &DenseSolution{Status: StatusInfeasible}, nil
		}
		// Drive remaining degenerate artificials out of the basis.
		for i, b := range basis {
			if b < artBase {
				continue
			}
			pivoted := false
			for j := 0; j < artBase; j++ {
				if math.Abs(tab[i][j]) > pivotTol {
					pivot(tab, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it cannot interfere.
				for j := 0; j <= total; j++ {
					tab[i][j] = 0
				}
				basis[i] = -1
			}
		}
	}

	// Phase 2: original objective; artificial columns are barred.
	phase2 := make([]float64, total)
	copy(phase2, p.obj)
	status := runSimplex(tab, basis, phase2, total, maxIter, artBase)
	if status != StatusOptimal {
		return &DenseSolution{Status: status}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = tab[i][total]
		}
	}
	var objVal float64
	for j, c := range p.obj {
		objVal += c * x[j]
	}
	return &DenseSolution{Status: StatusOptimal, Objective: objVal, X: x}, nil
}

// runSimplex maximizes objᵀx over the current tableau. Columns with index
// ≥ artBar are never allowed to (re-)enter the basis. It mutates tab/basis.
func runSimplex(tab [][]float64, basis []int, obj []float64, rhsCol, maxIter, artBar int) Status {
	m := len(tab)
	stall := 0
	for iter := 0; iter < maxIter; iter++ {
		// Reduced costs: rc_j = obj_j − Σ_i obj_{basis[i]} tab[i][j].
		// Compute multipliers lazily: cb_i = obj[basis[i]].
		cb := make([]float64, m)
		for i, b := range basis {
			if b >= 0 {
				cb[i] = obj[b]
			}
		}
		entering := -1
		bestRC := tol
		useBland := stall > 2*m+50
		for j := 0; j < rhsCol; j++ {
			if j >= artBar {
				break // artificial columns barred from entering
			}
			if isBasic(basis, j) {
				continue
			}
			rc := obj[j]
			for i := 0; i < m; i++ {
				if cb[i] != 0 {
					rc -= cb[i] * tab[i][j]
				}
			}
			if rc > bestRC {
				entering = j
				if useBland {
					break // Bland: first improving index
				}
				bestRC = rc
			}
		}
		if entering == -1 {
			return StatusOptimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][entering]
			if a > pivotTol {
				ratio := tab[i][rhsCol] / a
				if ratio < bestRatio-tol ||
					(ratio < bestRatio+tol && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return StatusUnbounded
		}
		if bestRatio < tol {
			stall++
		} else {
			stall = 0
		}
		pivot(tab, basis, leave, entering, rhsCol)
	}
	return StatusIterLimit
}

func pivot(tab [][]float64, basis []int, row, col, rhsCol int) {
	pv := tab[row][col]
	inv := 1 / pv
	for j := 0; j <= rhsCol; j++ {
		tab[row][j] *= inv
	}
	tab[row][col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= rhsCol; j++ {
			tab[i][j] -= f * tab[row][j]
		}
		tab[i][col] = 0 // exact
	}
	basis[row] = col
}

func isBasic(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}
