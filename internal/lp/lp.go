// Package lp implements the linear-programming substrate: a dense two-phase
// primal simplex for small general models (any mix of ≤/=/≥ rows) and a
// revised simplex for packing LPs (max cᵀx, Ax ≤ b, x ≥ 0) that supports
// incremental column addition, which makes it the natural master problem for
// column generation.
//
// The paper's evaluation used PuLP/CBC; this package replaces it with
// stdlib-only solvers (see DESIGN.md §2 for the substitution argument).
package lp

import "fmt"

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota + 1
	// StatusInfeasible means no feasible point exists.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded above.
	StatusUnbounded
	// StatusIterLimit means the iteration cap was hit before convergence.
	StatusIterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Sense is a constraint direction.
type Sense int

const (
	// LE is ≤.
	LE Sense = iota + 1
	// GE is ≥.
	GE
	// EQ is =.
	EQ
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("sense(%d)", int(s))
	}
}

// Entry is one nonzero coefficient of a sparse column or row.
type Entry struct {
	Index int // row index in a column, or variable index in a row
	Value float64
}

const (
	// tol is the general feasibility/optimality tolerance.
	tol = 1e-9
	// pivotTol rejects pivots that would divide by a tiny element.
	pivotTol = 1e-10
)
