package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
	if math.Abs(s.CI95-1.96*wantStd/2) > 1e-12 {
		t.Fatalf("ci = %v", s.CI95)
	}
	if s.MedianApprox != 3 {
		t.Fatalf("median = %v", s.MedianApprox)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary must have N=0")
	}
	if got := Summarize([]float64{5}); got.Std != 0 || got.CI95 != 0 || got.Mean != 5 {
		t.Fatalf("single sample summary = %+v", got)
	}
	if s.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.9, 0.75}, {3, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if NewCDF(nil).At(1) != 0 {
		t.Fatal("empty CDF must be 0 everywhere")
	}
	if c.Table() == "" {
		t.Fatal("Table() empty")
	}
}

// Property: a CDF is monotone non-decreasing, starts > 0 at its minimum and
// reaches exactly 1 at its maximum.
func TestCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		prev := 0.0
		for i := range c.Xs {
			if i > 0 && c.Xs[i] <= c.Xs[i-1] {
				return false
			}
			if c.Ps[i] < prev {
				return false
			}
			prev = c.Ps[i]
		}
		if math.Abs(c.Ps[len(c.Ps)-1]-1) > 1e-12 {
			return false
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return c.At(sorted[0]) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex([]float64{1, 1, 1}) != 1 {
		t.Fatal("equal allocation must have index 1")
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("one-of-four allocation index = %v, want 0.25", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("degenerate inputs must be 1")
	}
}

// Property: Jain's index lies in [1/n, 1] for non-negative allocations with
// at least one positive entry.
func TestJainIndexRange(t *testing.T) {
	f := func(raw []float64) bool {
		anyPos := false
		for i := range raw {
			raw[i] = math.Abs(raw[i])
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
			if raw[i] > 0 {
				anyPos = true
			}
		}
		if len(raw) == 0 || !anyPos {
			return true
		}
		j := JainIndex(raw)
		return j >= 1/float64(len(raw))-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioImprovement(t *testing.T) {
	if got := RatioImprovement(2, 1); got != 100 {
		t.Fatalf("RatioImprovement(2,1) = %v", got)
	}
	if got := RatioImprovement(1, 2); got != -50 {
		t.Fatalf("RatioImprovement(1,2) = %v", got)
	}
	if RatioImprovement(5, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}
