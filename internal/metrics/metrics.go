// Package metrics provides the statistics used by the evaluation harness:
// summary statistics with confidence intervals, empirical CDFs (the per-SD-
// pair throughput distributions of Figs. 3–7 (b)(c)), and Jain's fairness
// index for the fairness goal ESC pursues.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments of a sample.
type Summary struct {
	N            int
	Mean         float64
	Std          float64
	CI95         float64 // half-width of the normal-approximation 95% CI
	Min, Max     float64
	MedianApprox float64
}

// Summarize computes summary statistics. Empty input yields a zero Summary.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range samples {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(n)
	if n > 1 {
		var ss float64
		for _, x := range samples {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(n))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.MedianApprox = sorted[n/2]
	return s
}

// String renders "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.CI95, s.N)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	// Xs are the sorted distinct sample values; Ps[i] = P(X <= Xs[i]).
	Xs []float64
	Ps []float64
	n  int
}

// NewCDF builds the empirical CDF of the samples.
func NewCDF(samples []float64) CDF {
	n := len(samples)
	if n == 0 {
		return CDF{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var c CDF
	c.n = n
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		c.Xs = append(c.Xs, sorted[i])
		c.Ps = append(c.Ps, float64(j)/float64(n))
		i = j
	}
	return c
}

// At returns P(X ≤ x).
func (c CDF) At(x float64) float64 {
	if len(c.Xs) == 0 {
		return 0
	}
	// Find the last Xs[i] <= x.
	i := sort.SearchFloat64s(c.Xs, x)
	if i < len(c.Xs) && c.Xs[i] == x {
		return c.Ps[i]
	}
	if i == 0 {
		return 0
	}
	return c.Ps[i-1]
}

// N returns the sample count.
func (c CDF) N() int { return c.n }

// Table renders "x p" rows for plotting (gnuplot-style).
func (c CDF) Table() string {
	var b strings.Builder
	for i := range c.Xs {
		fmt.Fprintf(&b, "%g\t%.4f\n", c.Xs[i], c.Ps[i])
	}
	return b.String()
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) for non-negative
// allocations. It returns 1 for empty or all-zero input (vacuous fairness).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	// Normalize by the maximum to avoid overflow on extreme inputs; the
	// index is scale-invariant.
	var maxX float64
	for _, x := range xs {
		if x > maxX {
			maxX = x
		}
	}
	if maxX == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		v := x / maxX
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// RatioImprovement returns (a−b)/b as a percentage, or 0 when b is 0.
func RatioImprovement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}
