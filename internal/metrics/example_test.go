package metrics_test

import (
	"fmt"

	"see/internal/metrics"
)

// Summaries power every throughput table in the evaluation.
func ExampleSummarize() {
	s := metrics.Summarize([]float64{18, 20, 22, 24})
	fmt.Printf("mean=%.0f n=%d\n", s.Mean, s.N)
	// Output: mean=21 n=4
}

// The empirical CDF reproduces the paper's per-SD-pair subplots.
func ExampleNewCDF() {
	cdf := metrics.NewCDF([]float64{0, 1, 1, 2})
	fmt.Printf("P(x<=0)=%.2f P(x<=1)=%.2f P(x<=2)=%.2f\n",
		cdf.At(0), cdf.At(1), cdf.At(2))
	// Output: P(x<=0)=0.25 P(x<=1)=0.75 P(x<=2)=1.00
}

// Jain's index quantifies the fairness goal of ESC's round-robin ordering.
func ExampleJainIndex() {
	fmt.Printf("equal=%.2f skewed=%.2f\n",
		metrics.JainIndex([]float64{2, 2, 2, 2}),
		metrics.JainIndex([]float64{8, 0, 0, 0}))
	// Output: equal=1.00 skewed=0.25
}
