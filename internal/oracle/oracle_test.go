package oracle_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"see/internal/oracle"
	"see/internal/topo"
)

// load parses a hand-written edge list with deterministic link
// probabilities (Delta 0, so success probability is exactly e^{-αl}).
func load(t *testing.T, text string, res topo.ResourceDefaults) *topo.Network {
	t.Helper()
	if res.Alpha == 0 {
		res.Alpha = 0.0002
	}
	net, err := topo.LoadEdgeList(strings.NewReader(text), res)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBoundsLine(t *testing.T) {
	// One link, 3 channels, ample memory: the channel count is the cut.
	net := load(t, `
node 0 0 0
node 1 100 0
link 0 1 100 3
`, topo.ResourceDefaults{Memory: 5})
	pairs := []topo.SDPair{{S: 0, D: 1}}
	bounds := oracle.ComputeBounds(net, pairs)
	if bounds[0].Hard != 3 {
		t.Fatalf("Hard = %d, want 3 (channel min-cut)", bounds[0].Hard)
	}
	want := 3 * math.Exp(-0.0002*100)
	if math.Abs(bounds[0].Expected-want) > 1e-5 {
		t.Fatalf("Expected = %v, want %v (3·e^{-αl})", bounds[0].Expected, want)
	}
	if bounds[0].Expected > float64(bounds[0].Hard) {
		t.Fatalf("Expected %v above Hard %d", bounds[0].Expected, bounds[0].Hard)
	}
}

func TestBoundsMemoryClamp(t *testing.T) {
	// Same line, but the source holds only 2 qubits: memory, not the
	// channel cut, is the binding constraint.
	net := load(t, `
node 0 0 0 2
node 1 100 0 5
link 0 1 100 3
`, topo.ResourceDefaults{Memory: 5})
	bounds := oracle.ComputeBounds(net, []topo.SDPair{{S: 0, D: 1}})
	if bounds[0].Hard != 2 {
		t.Fatalf("Hard = %d, want 2 (endpoint memory clamp)", bounds[0].Hard)
	}
	if bounds[0].Expected > 2 {
		t.Fatalf("Expected %v above memory-clamped Hard 2", bounds[0].Expected)
	}
}

func TestBoundsDiamond(t *testing.T) {
	// Two disjoint 2-hop routes of 2 channels each: min-cut 4, and the
	// relay nodes' memories do not clamp it (only endpoints pin qubits for
	// the whole slot).
	net := load(t, `
node 0 0 0 8
node 1 100 100 2
node 2 100 -100 2
node 3 200 0 8
link 0 1 100 2
link 0 2 100 2
link 1 3 100 2
link 2 3 100 2
`, topo.ResourceDefaults{})
	bounds := oracle.ComputeBounds(net, []topo.SDPair{{S: 0, D: 3}})
	if bounds[0].Hard != 4 {
		t.Fatalf("Hard = %d, want 4 (two disjoint 2-channel routes)", bounds[0].Hard)
	}
	if bounds[0].Expected <= 0 || bounds[0].Expected > 4 {
		t.Fatalf("Expected = %v, want (0, 4]", bounds[0].Expected)
	}
}

func TestBoundsDisconnected(t *testing.T) {
	// Two separate components: the cross-component pair has zero capacity.
	net := load(t, `
node 0 0 0
node 1 100 0
node 2 500 0
node 3 600 0
link 0 1 100 3
link 2 3 100 3
`, topo.ResourceDefaults{Memory: 5})
	bounds := oracle.ComputeBounds(net, []topo.SDPair{{S: 0, D: 3}, {S: 2, D: 3}})
	if bounds[0].Hard != 0 || bounds[0].Expected != 0 {
		t.Fatalf("disconnected pair bound = %+v, want zero", bounds[0])
	}
	if bounds[1].Hard != 3 {
		t.Fatalf("intra-component pair Hard = %d, want 3", bounds[1].Hard)
	}
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := oracle.NewEngine(nil, nil, nil); err == nil {
		t.Error("nil network accepted")
	}
	net := load(t, "node 0 0 0\nnode 1 100 0\nlink 0 1 100 1\n", topo.ResourceDefaults{})
	if _, err := oracle.NewEngine(net, []topo.SDPair{{S: 0, D: 9}}, nil); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := oracle.NewEngine(net, []topo.SDPair{{S: -1, D: 1}}, nil); err == nil {
		t.Error("negative pair accepted")
	}
}

func TestEngineSlotContract(t *testing.T) {
	net := load(t, `
node 0 0 0
node 1 100 0
node 2 200 0
link 0 1 100 2
link 1 2 100 2
`, topo.ResourceDefaults{Memory: 4})
	pairs := []topo.SDPair{{S: 0, D: 2}, {S: 0, D: 1}}
	eng, err := oracle.NewEngine(net, pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := eng.Bounds()
	if len(bounds) != len(pairs) {
		t.Fatalf("Bounds() has %d entries for %d pairs", len(bounds), len(pairs))
	}
	sum := 0.0
	for i, b := range bounds {
		if b.Pair != pairs[i] {
			t.Errorf("bound %d is for pair %+v, want %+v (demand order)", i, b.Pair, pairs[i])
		}
		sum += b.Expected
	}
	if math.Abs(eng.UpperBound()-sum) > 1e-12 {
		t.Errorf("UpperBound %v != summed Expected %v", eng.UpperBound(), sum)
	}

	// RunSlot delivers nothing, reports the bound as the LP objective, and
	// leaves the rng exactly where it was — a twin rng must stay in
	// lockstep after the slot.
	rng := rand.New(rand.NewSource(7))
	twin := rand.New(rand.NewSource(7))
	res, err := eng.RunSlot(rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Established != 0 || res.Attempts != 0 || len(res.Connections) != 0 {
		t.Errorf("oracle slot delivered something: %+v", res)
	}
	if len(res.PerPair) != len(pairs) {
		t.Errorf("PerPair has %d entries for %d pairs", len(res.PerPair), len(pairs))
	}
	if math.Abs(res.LPObjective-eng.UpperBound()) > 1e-12 {
		t.Errorf("LPObjective %v != UpperBound %v", res.LPObjective, eng.UpperBound())
	}
	if rng.Int63() != twin.Int63() {
		t.Error("RunSlot consumed randomness")
	}
}
