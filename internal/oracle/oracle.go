// Package oracle computes per-pair entanglement-capacity upper bounds from
// the topology alone. It is registered as a pseudo-engine (sched.Oracle) so
// sweeps can run it alongside the real schemes and report every engine's
// delivered throughput as a fraction of what the network could
// theoretically deliver — but it establishes nothing, consumes no
// randomness and ignores faults.
//
// Two bounds are computed per SD pair:
//
//   - Hard: the structural per-slot ceiling. Every established connection
//     routes through the physical topology consuming at least one quantum
//     channel on every link it crosses, so the s-t min-cut over channel
//     counts bounds the per-slot deliveries; so do the endpoint memories
//     (each connection pins one qubit at the source and one at the
//     destination for the slot). Hard = min(min-cut(channels), mem_S,
//     mem_D) holds slot by slot for any memoryless scheduler and any fault
//     plan. Under a carry-over bank the channel-cut argument applies to
//     segment creations rather than deliveries (a banked segment crossed
//     the cut in the slot that created it), so the bound then holds
//     cumulatively: no run of T slots starting from an empty bank delivers
//     more than T·Hard connections for the pair.
//
//   - Expected: the statistical rate ceiling. Scaling each link's channel
//     count by its single-hop entanglement success probability before the
//     min-cut bounds the expected number of usable channel crossings per
//     slot. It is an expectation, not a per-slot guarantee — lucky slots
//     can exceed it — so invariant tests pin Hard and reports quote
//     Expected.
package oracle

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"see/internal/graph"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/topo"
)

// rateScale converts fractional expected-rate capacities to the integer
// capacities graph.MaxFlow works in: six decimal digits of rate resolution,
// far below the one-connection granularity anything downstream compares
// against.
const rateScale = 1e6

// Bound is the capacity ceiling of one SD pair.
type Bound struct {
	// Pair is the demand the bound applies to.
	Pair topo.SDPair
	// Hard is the structural per-slot ceiling: no scheduler can establish
	// more than Hard connections for this pair in any single slot.
	Hard int
	// Expected is the statistical rate ceiling in connections per slot,
	// never above Hard. Zero-probability links contribute nothing, so a
	// pair cut off by dead fibre has Expected 0 even when Hard is positive.
	Expected float64
}

// ComputeBounds evaluates both bounds for every pair. Each min-cut runs on
// a fresh flow network (graph.MaxFlow is consumable), so the cost is
// O(pairs · Dinic) — negligible next to an LP solve.
func ComputeBounds(net *topo.Network, pairs []topo.SDPair) []Bound {
	out := make([]Bound, len(pairs))
	for i, p := range pairs {
		hard := minCut(net, p, func(id int, _, _ int) int { return net.Channels[id] })
		if m := net.Memory[p.S]; m < hard {
			hard = m
		}
		if m := net.Memory[p.D]; m < hard {
			hard = m
		}
		scaled := minCut(net, p, func(id int, u, v int) int {
			prob := net.SegmentSuccessProb(graph.Path{u, v})
			return int(math.Round(rateScale * float64(net.Channels[id]) * prob))
		})
		expected := float64(scaled) / rateScale
		if expected > float64(hard) {
			expected = float64(hard)
		}
		out[i] = Bound{Pair: p, Hard: hard, Expected: expected}
	}
	return out
}

// minCut computes the s-t max-flow (= min-cut) over the physical topology
// with per-link capacities from capOf(edgeID, u, v). Both arcs of a link
// share an edge ID, so each undirected link is added once, from its
// lower-numbered endpoint's adjacency list.
func minCut(net *topo.Network, p topo.SDPair, capOf func(id, u, v int) int) int {
	mf := graph.NewMaxFlow(net.NumNodes())
	for u := 0; u < net.NumNodes(); u++ {
		for _, e := range net.G.Neighbors(u) {
			if u < e.To {
				mf.AddUndirected(u, e.To, capOf(e.ID, u, e.To))
			}
		}
	}
	return mf.Solve(p.S, p.D)
}

// Engine is the oracle pseudo-engine. RunSlot delivers nothing and draws
// nothing from the rng; its SlotResult carries the summed Expected bound as
// the LP-objective field so sweep reports can print capacity next to real
// engines' throughput.
type Engine struct {
	net    *topo.Network
	pairs  []topo.SDPair
	bounds []Bound
	total  float64
	bank   *state.Bank
	tracer sched.Tracer
}

var (
	_ sched.Stateful       = (*Engine)(nil)
	_ sched.Checkpointable = (*Engine)(nil)
)

// NewEngine validates the network and computes the bounds eagerly; there is
// no per-slot work left afterwards. The tracer (nil = none) observes only
// slot boundaries: the oracle plans no paths, reserves no attempts and
// assembles no connections, so no other callback ever fires.
func NewEngine(net *topo.Network, pairs []topo.SDPair, tr sched.Tracer) (*Engine, error) {
	if net == nil {
		return nil, errors.New("oracle: nil network")
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	for _, p := range pairs {
		if p.S < 0 || p.D < 0 || p.S >= net.NumNodes() || p.D >= net.NumNodes() {
			return nil, fmt.Errorf("oracle: pair (%d,%d) outside network", p.S, p.D)
		}
	}
	e := &Engine{net: net, pairs: pairs, bounds: ComputeBounds(net, pairs), tracer: sched.OrNop(tr)}
	for _, b := range e.bounds {
		e.total += b.Expected
	}
	return e, nil
}

// Bounds returns the per-pair capacity bounds, in demand order.
func (e *Engine) Bounds() []Bound { return e.bounds }

// Algorithm implements sched.Engine.
func (e *Engine) Algorithm() sched.Algorithm { return sched.Oracle }

// UpperBound implements sched.Engine: the summed Expected bound.
func (e *Engine) UpperBound() float64 { return e.total }

// RunSlot implements sched.Engine. The rng is deliberately untouched — an
// oracle that consumed randomness would perturb seeded comparisons run in
// the same sweep.
func (e *Engine) RunSlot(*rand.Rand) (*sched.SlotResult, error) {
	e.tracer.SlotStart(sched.Oracle)
	res := &sched.SlotResult{
		LPObjective: e.total,
		PerPair:     make([]int, len(e.pairs)),
	}
	e.tracer.SlotEnd(res)
	return res, nil
}

// AttachBank implements sched.Stateful. The oracle holds the bank without
// ever depositing or withdrawing: capacity bounds are properties of the
// topology, not of banked inventory.
func (e *Engine) AttachBank(b *state.Bank) { e.bank = b }

// Bank implements sched.Stateful.
func (e *Engine) Bank() *state.Bank { return e.bank }

// EngineState implements sched.Checkpointable. The oracle's only
// cross-slot state is the (never-touched) bank, captured so kill/resume
// round-trips through the shared harness stay uniform across engines.
func (e *Engine) EngineState() (*sched.EngineState, error) {
	return &sched.EngineState{
		Algorithm: e.Algorithm(),
		Bank:      e.bank.State(),
	}, nil
}

// RestoreEngineState implements sched.Checkpointable.
func (e *Engine) RestoreEngineState(st *sched.EngineState) error {
	if err := sched.CheckRestoreAlgorithm(e.Algorithm(), st); err != nil {
		return err
	}
	var bankSt *state.BankState
	if st != nil {
		bankSt = st.Bank
	}
	if err := e.bank.Restore(bankSt, nil); err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	return nil
}
