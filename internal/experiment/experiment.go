// Package experiment is the benchmark harness that regenerates the paper's
// evaluation (Figs. 2–7): parameter sweeps over link capacity, segment
// success probability, swap success probability, network scale and
// workload, with throughput means across trials and per-SD-pair CDFs.
//
// Every trial draws its own topology and SD pairs from the trial seed, runs
// one time slot of each scheduler on the *same* instance (paired
// comparison), and records the established connections.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"see/internal/core"
	"see/internal/e2e"
	"see/internal/metrics"
	"see/internal/reps"
	"see/internal/topo"
	"see/internal/xrand"
)

// Algorithm selects a scheduler.
type Algorithm int

// The three schemes compared in the paper.
const (
	SEE Algorithm = iota
	REPS
	E2E
)

// Algorithms lists all schemes in display order.
var Algorithms = []Algorithm{SEE, REPS, E2E}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SEE:
		return "SEE"
	case REPS:
		return "REPS"
	case E2E:
		return "E2E"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Params describes one simulation configuration (defaults follow §IV-A).
type Params struct {
	Nodes    int
	SDPairs  int
	Channels int
	Memory   int
	SwapProb float64
	Alpha    float64
	Delta    float64

	// Trials per data point (paper: 100).
	Trials int
	// BaseSeed drives all randomness; trial t uses xrand.ForTrial.
	BaseSeed int64

	// KPaths and MaxSegmentHops tune candidate enumeration for SEE.
	KPaths         int
	MaxSegmentHops int
	// StrictProvisioning switches SEE's ESC to the paper-literal mode.
	StrictProvisioning bool
	// Workers bounds the goroutines running trials concurrently; 0 means
	// GOMAXPROCS. Trials are seeded independently, so the results are
	// identical to a serial run regardless of scheduling.
	Workers int
}

// DefaultParams returns the paper's default setting.
func DefaultParams() Params {
	return Params{
		Nodes:          200,
		SDPairs:        20,
		Channels:       3,
		Memory:         10,
		SwapProb:       0.9,
		Alpha:          2e-4,
		Delta:          0.05,
		Trials:         100,
		BaseSeed:       20220101,
		KPaths:         5,
		MaxSegmentHops: 10,
	}
}

func (p Params) topoConfig() topo.Config {
	cfg := topo.DefaultConfig()
	cfg.Nodes = p.Nodes
	cfg.Channels = p.Channels
	cfg.Memory = p.Memory
	cfg.SwapProb = p.SwapProb
	cfg.Alpha = p.Alpha
	cfg.Delta = p.Delta
	return cfg
}

// scheduler is the minimal per-slot interface the harness needs.
type scheduler interface {
	run(rng *rand.Rand) (established int, perPair []int, err error)
}

type seeSched struct{ e *core.Engine }

func (s seeSched) run(rng *rand.Rand) (int, []int, error) {
	res, err := s.e.RunSlot(rng)
	if err != nil {
		return 0, nil, err
	}
	return res.Established, res.PerPair, nil
}

type repsSched struct{ e *reps.Engine }

func (s repsSched) run(rng *rand.Rand) (int, []int, error) {
	res, err := s.e.RunSlot(rng)
	if err != nil {
		return 0, nil, err
	}
	return res.Established, res.PerPair, nil
}

type e2eSched struct{ e *e2e.Engine }

func (s e2eSched) run(rng *rand.Rand) (int, []int, error) {
	res, err := s.e.RunSlot(rng)
	if err != nil {
		return 0, nil, err
	}
	return res.Established, res.PerPair, nil
}

func (p Params) build(alg Algorithm, net *topo.Network, pairs []topo.SDPair) (scheduler, error) {
	switch alg {
	case SEE:
		opts := core.DefaultOptions()
		opts.Segment.KPaths = p.KPaths
		opts.Segment.MaxSegmentHops = p.MaxSegmentHops
		opts.StrictProvisioning = p.StrictProvisioning
		e, err := core.NewEngine(net, pairs, opts)
		if err != nil {
			return nil, err
		}
		return seeSched{e}, nil
	case REPS:
		e, err := reps.NewEngine(net, pairs, reps.Options{KPaths: p.KPaths})
		if err != nil {
			return nil, err
		}
		return repsSched{e}, nil
	case E2E:
		e, err := e2e.NewEngine(net, pairs, e2e.Options{KPaths: p.KPaths})
		if err != nil {
			return nil, err
		}
		return e2eSched{e}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown algorithm %v", alg)
	}
}

// PointResult aggregates one (configuration, algorithm) data point.
type PointResult struct {
	// Throughput summarizes established connections per slot over trials
	// (the y-axis of every (a) subplot).
	Throughput metrics.Summary
	// PerPairCDF is the per-SD-pair throughput distribution of the first
	// trial, as in the paper's (b)/(c) subplots.
	PerPairCDF metrics.CDF
	// Jain is the mean Jain fairness index over trials.
	Jain float64
}

// trialOutcome is one trial's result for every algorithm.
type trialOutcome struct {
	established map[Algorithm]float64
	perPair     map[Algorithm][]float64
	err         error
}

// RunPoint simulates all algorithms on the same instances and returns one
// PointResult per algorithm. Trials run on a bounded worker pool; every
// trial derives all of its randomness from its own seed, so the output is
// byte-identical to a serial run.
func RunPoint(p Params) (map[Algorithm]PointResult, error) {
	if p.Trials <= 0 {
		return nil, fmt.Errorf("experiment: Trials must be positive, got %d", p.Trials)
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.Trials {
		workers = p.Trials
	}

	outcomes := make([]trialOutcome, p.Trials)
	var wg sync.WaitGroup
	trialCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range trialCh {
				outcomes[trial] = p.runTrial(trial)
			}
		}()
	}
	for trial := 0; trial < p.Trials; trial++ {
		trialCh <- trial
	}
	close(trialCh)
	wg.Wait()

	samples := make(map[Algorithm][]float64, len(Algorithms))
	jains := make(map[Algorithm][]float64, len(Algorithms))
	firstTrialPerPair := make(map[Algorithm][]float64, len(Algorithms))
	for trial, oc := range outcomes {
		if oc.err != nil {
			return nil, fmt.Errorf("experiment: trial %d: %w", trial, oc.err)
		}
		for _, alg := range Algorithms {
			samples[alg] = append(samples[alg], oc.established[alg])
			jains[alg] = append(jains[alg], metrics.JainIndex(oc.perPair[alg]))
			if trial == 0 {
				firstTrialPerPair[alg] = oc.perPair[alg]
			}
		}
	}

	out := make(map[Algorithm]PointResult, len(Algorithms))
	for _, alg := range Algorithms {
		out[alg] = PointResult{
			Throughput: metrics.Summarize(samples[alg]),
			PerPairCDF: metrics.NewCDF(firstTrialPerPair[alg]),
			Jain:       metrics.Summarize(jains[alg]).Mean,
		}
	}
	return out, nil
}

// runTrial draws one instance and runs every algorithm's slot on it.
func (p Params) runTrial(trial int) trialOutcome {
	oc := trialOutcome{
		established: make(map[Algorithm]float64, len(Algorithms)),
		perPair:     make(map[Algorithm][]float64, len(Algorithms)),
	}
	rng := xrand.ForTrial(p.BaseSeed, trial)
	topoRng := xrand.Split(rng)
	pairRng := xrand.Split(rng)
	net, err := topo.Generate(p.topoConfig(), topoRng)
	if err != nil {
		oc.err = err
		return oc
	}
	pairs := topo.ChooseSDPairs(net, p.SDPairs, pairRng)
	for _, alg := range Algorithms {
		slotRng := xrand.Split(rng)
		sched, err := p.build(alg, net, pairs)
		if err != nil {
			oc.err = fmt.Errorf("%v: %w", alg, err)
			return oc
		}
		established, perPair, err := sched.run(slotRng)
		if err != nil {
			oc.err = fmt.Errorf("%v: %w", alg, err)
			return oc
		}
		oc.established[alg] = float64(established)
		pp := make([]float64, len(perPair))
		for i, c := range perPair {
			pp[i] = float64(c)
		}
		oc.perPair[alg] = pp
	}
	return oc
}
