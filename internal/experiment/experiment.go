// Package experiment is the benchmark harness that regenerates the paper's
// evaluation (Figs. 2–7): parameter sweeps over link capacity, segment
// success probability, swap success probability, network scale and
// workload, with throughput means across trials and per-SD-pair CDFs.
//
// Every trial draws its own topology and SD pairs from the trial seed, runs
// each scheduler on the *same* instance (paired comparison), and records the
// established connections. A trial runs Params.Slots consecutive time slots
// per scheduler (default 1, the paper's setting) and reports per-slot
// throughput; Params.CarryOver additionally banks unconsumed segments across
// those slots (see internal/state).
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"see/internal/chaos"
	"see/internal/engines"
	"see/internal/metrics"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/xrand"
)

// Algorithm selects a scheduler; it is the canonical sched.Algorithm.
type Algorithm = sched.Algorithm

// The three schemes compared in the paper.
const (
	SEE  = sched.SEE
	REPS = sched.REPS
	E2E  = sched.E2E
)

// Algorithms lists all schemes in display order.
var Algorithms = sched.Algorithms

// Params describes one simulation configuration (defaults follow §IV-A).
type Params struct {
	Nodes    int
	SDPairs  int
	Channels int
	Memory   int
	SwapProb float64
	Alpha    float64
	Delta    float64

	// Trials per data point (paper: 100).
	Trials int
	// BaseSeed drives all randomness; trial t uses xrand.ForTrial.
	BaseSeed int64

	// KPaths and MaxSegmentHops tune candidate enumeration for SEE.
	KPaths         int
	MaxSegmentHops int
	// StrictProvisioning switches SEE's ESC to the paper-literal mode.
	StrictProvisioning bool
	// Workers bounds the goroutines running trials concurrently and, inside
	// each trial, the goroutines of every engine's LP pricing rounds; 0
	// means GOMAXPROCS. Trials are seeded independently and the pricing
	// parallelism is deterministic, so the results are byte-identical to a
	// serial run regardless of scheduling or worker count.
	Workers int
	// Tracer observes every engine's slot pipeline across all trials and
	// algorithms. Trials run concurrently, so the implementation must be
	// safe for concurrent use (sched.CountingTracer is). nil disables
	// instrumentation.
	Tracer sched.Tracer
	// Faults is a deterministic fault schedule applied to every trial.
	// Each engine gets its own injector built from this plan (injectors
	// hold per-slot state and are not safe to share), so trials stay
	// independently seeded and byte-identical across worker counts. nil
	// disables fault injection.
	Faults *chaos.FaultPlan
	// SlotBudget bounds each engine's LP solve; on timeout or failure the
	// slot degrades to the greedy fallback (see engines.NewResilient).
	// Zero means no budget.
	SlotBudget time.Duration
	// Slots is the number of consecutive time slots each trial runs per
	// algorithm (default 1, the paper's single-slot evaluation). The
	// reported throughput is established connections per slot, so
	// single-slot and multi-slot points are directly comparable.
	Slots int
	// CarryOver attaches a cross-slot state bank to every engine (see
	// internal/state): realized-but-unconsumed segments survive slot
	// boundaries within node memories. Only meaningful with Slots > 1.
	CarryOver bool
	// DecoherenceSlots is the bank's age window (default 1); see
	// state.Policy.CarrySlots.
	DecoherenceSlots int
	// Algorithms selects the schemes each trial runs and compares. nil
	// means the paper's trio (SEE, REPS, E2E); extend it with sched.Greedy
	// or sched.Contend to sweep the repo-grown baselines on the same
	// instances.
	Algorithms []Algorithm
	// FidelityFloors enforces per-request minimum delivered fidelity in
	// every engine's stitch phase (see qnet.FloorSpec); nil or all-zero
	// disables enforcement and keeps trials byte-identical to the
	// pre-floor pipeline.
	FidelityFloors *qnet.FloorSpec
	// SwapOrder selects the junction-swap sampling order (path order by
	// default; see qnet.SwapOrder).
	SwapOrder qnet.SwapOrder
	// CarryAwareLP re-prices the provisioning LP on slots that withdrew
	// banked segments (only meaningful with CarryOver).
	CarryAwareLP bool
}

// DefaultParams returns the paper's default setting.
func DefaultParams() Params {
	return Params{
		Nodes:          200,
		SDPairs:        20,
		Channels:       3,
		Memory:         10,
		SwapProb:       0.9,
		Alpha:          2e-4,
		Delta:          0.05,
		Trials:         100,
		BaseSeed:       20220101,
		KPaths:         5,
		MaxSegmentHops: 10,
	}
}

// Validate checks the parameter set before any trial spends work. It is
// called by RunPoint (and therefore by every figure sweep), so a typo'd
// configuration — a negative slot count, an unregistered algorithm — fails
// fast with a named field instead of panicking mid-sweep or silently
// producing a degenerate run.
func (p Params) Validate() error {
	switch {
	case p.Trials <= 0:
		return fmt.Errorf("experiment: Trials must be positive, got %d", p.Trials)
	case p.Slots < 0:
		return fmt.Errorf("experiment: negative Slots %d", p.Slots)
	case p.Workers < 0:
		return fmt.Errorf("experiment: negative Workers %d (0 selects GOMAXPROCS)", p.Workers)
	case p.Nodes <= 0:
		return fmt.Errorf("experiment: Nodes must be positive, got %d", p.Nodes)
	case p.SDPairs < 0:
		return fmt.Errorf("experiment: negative SDPairs %d", p.SDPairs)
	case p.Channels <= 0:
		return fmt.Errorf("experiment: Channels must be positive, got %d", p.Channels)
	case p.Memory <= 0:
		return fmt.Errorf("experiment: Memory must be positive, got %d", p.Memory)
	case p.SwapProb < 0 || p.SwapProb > 1:
		return fmt.Errorf("experiment: SwapProb %v outside [0,1]", p.SwapProb)
	case p.Alpha < 0:
		return fmt.Errorf("experiment: negative Alpha %v", p.Alpha)
	case p.Delta < 0:
		return fmt.Errorf("experiment: negative Delta %v", p.Delta)
	case p.KPaths < 0:
		return fmt.Errorf("experiment: negative KPaths %d", p.KPaths)
	case p.MaxSegmentHops < 0:
		return fmt.Errorf("experiment: negative MaxSegmentHops %d", p.MaxSegmentHops)
	case p.SlotBudget < 0:
		return fmt.Errorf("experiment: negative SlotBudget %v", p.SlotBudget)
	case p.DecoherenceSlots < 0:
		return fmt.Errorf("experiment: negative DecoherenceSlots %d", p.DecoherenceSlots)
	}
	for _, alg := range p.Algorithms {
		if !engines.Registered(alg) {
			return fmt.Errorf("experiment: unknown algorithm %v", alg)
		}
	}
	if f := p.FidelityFloors; f != nil {
		if f.Default < 0 || f.Default > 1 {
			return fmt.Errorf("experiment: fidelity floor %v outside [0,1]", f.Default)
		}
		for pair, v := range f.PerPair {
			if v < 0 || v > 1 {
				return fmt.Errorf("experiment: fidelity floor %v for pair %d outside [0,1]", v, pair)
			}
		}
	}
	switch p.SwapOrder {
	case qnet.SwapOrderPath, qnet.SwapOrderGreedy:
	default:
		return fmt.Errorf("experiment: unknown SwapOrder %v", p.SwapOrder)
	}
	return nil
}

// algorithms returns the schemes this run compares (the paper trio when
// Params.Algorithms is nil).
func (p Params) algorithms() []Algorithm {
	if len(p.Algorithms) > 0 {
		return p.Algorithms
	}
	return Algorithms
}

func (p Params) topoConfig() topo.Config {
	cfg := topo.DefaultConfig()
	cfg.Nodes = p.Nodes
	cfg.Channels = p.Channels
	cfg.Memory = p.Memory
	cfg.SwapProb = p.SwapProb
	cfg.Alpha = p.Alpha
	cfg.Delta = p.Delta
	return cfg
}

// engineConfig translates the harness parameters into the shared engine
// configuration; the same config drives all three schemes, so every trial
// builds its engines through the one internal/engines factory.
func (p Params) engineConfig() engines.Config {
	return engines.Config{
		KPaths:             p.KPaths,
		MaxSegmentHops:     p.MaxSegmentHops,
		StrictProvisioning: p.StrictProvisioning,
		Workers:            p.Workers,
		Tracer:             p.Tracer,
		FidelityFloors:     p.FidelityFloors,
		SwapOrder:          p.SwapOrder,
		CarryAwareLP:       p.CarryAwareLP,
	}
}

// PointResult aggregates one (configuration, algorithm) data point.
type PointResult struct {
	// Throughput summarizes established connections per slot over trials
	// (the y-axis of every (a) subplot).
	Throughput metrics.Summary
	// PerPairCDF is the per-SD-pair throughput distribution of the first
	// trial, as in the paper's (b)/(c) subplots.
	PerPairCDF metrics.CDF
	// Jain is the mean Jain fairness index over trials.
	Jain float64
}

// trialOutcome is one trial's result for every algorithm.
type trialOutcome struct {
	established map[Algorithm]float64
	perPair     map[Algorithm][]float64
	err         error
}

// RunPoint simulates all algorithms on the same instances and returns one
// PointResult per algorithm. Trials run on a bounded worker pool; every
// trial derives all of its randomness from its own seed, so the output is
// byte-identical to a serial run.
func RunPoint(p Params) (map[Algorithm]PointResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.Trials {
		workers = p.Trials
	}

	outcomes := make([]trialOutcome, p.Trials)
	var wg sync.WaitGroup
	trialCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range trialCh {
				outcomes[trial] = p.runTrial(trial)
			}
		}()
	}
	for trial := 0; trial < p.Trials; trial++ {
		trialCh <- trial
	}
	close(trialCh)
	wg.Wait()

	algs := p.algorithms()
	samples := make(map[Algorithm][]float64, len(algs))
	jains := make(map[Algorithm][]float64, len(algs))
	firstTrialPerPair := make(map[Algorithm][]float64, len(algs))
	for trial, oc := range outcomes {
		if oc.err != nil {
			return nil, fmt.Errorf("experiment: trial %d: %w", trial, oc.err)
		}
		for _, alg := range algs {
			samples[alg] = append(samples[alg], oc.established[alg])
			jains[alg] = append(jains[alg], metrics.JainIndex(oc.perPair[alg]))
			if trial == 0 {
				firstTrialPerPair[alg] = oc.perPair[alg]
			}
		}
	}

	out := make(map[Algorithm]PointResult, len(algs))
	for _, alg := range algs {
		out[alg] = PointResult{
			Throughput: metrics.Summarize(samples[alg]),
			PerPairCDF: metrics.NewCDF(firstTrialPerPair[alg]),
			Jain:       metrics.Summarize(jains[alg]).Mean,
		}
	}
	return out, nil
}

// buildEngine constructs one scheme's engine, wrapping it in the
// degradation ladder when a slot budget is set.
func buildEngine(alg Algorithm, net *topo.Network, pairs []topo.SDPair, cfg engines.Config, budget time.Duration) (sched.Engine, error) {
	if budget > 0 {
		return engines.NewResilient(alg, net, pairs, cfg, budget)
	}
	return engines.New(alg, net, pairs, cfg)
}

// runTrial draws one instance and runs every algorithm's slot on it.
func (p Params) runTrial(trial int) trialOutcome {
	algs := p.algorithms()
	oc := trialOutcome{
		established: make(map[Algorithm]float64, len(algs)),
		perPair:     make(map[Algorithm][]float64, len(algs)),
	}
	rng := xrand.ForTrial(p.BaseSeed, trial)
	topoRng := xrand.Split(rng)
	pairRng := xrand.Split(rng)
	net, err := topo.Generate(p.topoConfig(), topoRng)
	if err != nil {
		oc.err = err
		return oc
	}
	pairs := topo.ChooseSDPairs(net, p.SDPairs, pairRng)
	for _, alg := range algs {
		slotRng := xrand.Split(rng)
		// Each engine needs its own injector: injectors track per-slot
		// state, so sharing one across engines (or trials) would couple
		// their fault streams.
		cfg := p.engineConfig()
		if p.Faults != nil {
			inj, err := chaos.NewInjector(p.Faults, net)
			if err != nil {
				oc.err = fmt.Errorf("%v: %w", alg, err)
				return oc
			}
			cfg.Chaos = inj
		}
		eng, err := buildEngine(alg, net, pairs, cfg, p.SlotBudget)
		if err != nil {
			oc.err = fmt.Errorf("%v: %w", alg, err)
			return oc
		}
		if p.CarryOver {
			st, ok := eng.(sched.Stateful)
			if !ok {
				oc.err = fmt.Errorf("%v: engine does not support carry-over", alg)
				return oc
			}
			pol := state.Policy{CarrySlots: p.DecoherenceSlots}
			if p.Faults != nil {
				pol.Decoherence = p.Faults.Decoherence
				pol.Seed = p.Faults.Seed
			}
			st.AttachBank(state.NewBank(net, pol))
		}
		slots := p.Slots
		if slots <= 0 {
			slots = 1
		}
		total := 0
		perPairTotals := make([]int, len(pairs))
		for s := 0; s < slots; s++ {
			res, err := eng.RunSlot(slotRng)
			if err != nil {
				oc.err = fmt.Errorf("%v: %w", alg, err)
				return oc
			}
			total += res.Established
			for i, c := range res.PerPair {
				perPairTotals[i] += c
			}
		}
		// Per-slot averages; with the default Slots=1 the division is by
		// 1.0, so single-slot points stay bit-identical to the pre-Slots
		// harness.
		oc.established[alg] = float64(total) / float64(slots)
		pp := make([]float64, len(perPairTotals))
		for i, c := range perPairTotals {
			pp[i] = float64(c) / float64(slots)
		}
		oc.perPair[alg] = pp
	}
	return oc
}
