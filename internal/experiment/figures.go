package experiment

import (
	"fmt"
	"strings"

	"see/internal/graph"
	"see/internal/topo"
)

// SweepPoint is one x-value of a figure with all algorithms' results.
type SweepPoint struct {
	X       float64
	Results map[Algorithm]PointResult
}

// Sweep holds a whole figure.
type Sweep struct {
	// Name identifies the figure (e.g. "fig3-link-capacity").
	Name string
	// XLabel names the sweep variable.
	XLabel string
	Points []SweepPoint
}

// runSweep evaluates RunPoint over mutations of the base parameters.
func runSweep(name, xlabel string, base Params, xs []float64, apply func(*Params, float64)) (*Sweep, error) {
	sw := &Sweep{Name: name, XLabel: xlabel}
	for _, x := range xs {
		p := base
		apply(&p, x)
		res, err := RunPoint(p)
		if err != nil {
			return nil, fmt.Errorf("%s at %v: %w", name, x, err)
		}
		sw.Points = append(sw.Points, SweepPoint{X: x, Results: res})
	}
	return sw, nil
}

// Fig3LinkCapacity sweeps channels per link over 2..7 (Fig. 3(a)); the
// CDFs of the capacity-2 and capacity-7 points are Figs. 3(b)(c).
func Fig3LinkCapacity(base Params) (*Sweep, error) {
	return runSweep("fig3-link-capacity", "link capacity", base,
		[]float64{2, 3, 4, 5, 6, 7},
		func(p *Params, x float64) { p.Channels = int(x) })
}

// Fig4Alpha sweeps the attenuation parameter α over {1..5}×10⁻⁴
// (Fig. 4(a)); CDFs at 1e-4 and 5e-4 are Figs. 4(b)(c).
func Fig4Alpha(base Params) (*Sweep, error) {
	return runSweep("fig4-alpha", "alpha (1e-4)", base,
		[]float64{1, 2, 3, 4, 5},
		func(p *Params, x float64) { p.Alpha = x * 1e-4 })
}

// Fig5SwapProb sweeps the quantum-swapping success probability over
// 0.5..1.0 (Fig. 5(a)); CDFs at 0.5 and 1.0 are Figs. 5(b)(c).
func Fig5SwapProb(base Params) (*Sweep, error) {
	return runSweep("fig5-swap-prob", "swap success probability", base,
		[]float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		func(p *Params, x float64) { p.SwapProb = x })
}

// Fig6Nodes sweeps the network scale over 100..500 nodes (Fig. 6(a));
// CDFs at 100 and 500 are Figs. 6(b)(c).
func Fig6Nodes(base Params) (*Sweep, error) {
	return runSweep("fig6-nodes", "# of nodes", base,
		[]float64{100, 200, 300, 400, 500},
		func(p *Params, x float64) { p.Nodes = int(x) })
}

// Fig7SDPairs sweeps the workload over 10..50 SD pairs (Fig. 7(a)); CDFs
// at 20 and 50 are Figs. 7(b)(c).
func Fig7SDPairs(base Params) (*Sweep, error) {
	return runSweep("fig7-sd-pairs", "# of SD pairs", base,
		[]float64{10, 20, 30, 40, 50},
		func(p *Params, x float64) { p.SDPairs = int(x) })
}

// Table renders the sweep as tab-separated columns:
// x, SEE mean, REPS mean, E2E mean (gnuplot-compatible).
func (s *Sweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# %s\tSEE\tREPS\tE2E\n", s.Name, s.XLabel)
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%g", pt.X)
		for _, alg := range Algorithms {
			fmt.Fprintf(&b, "\t%.3f", pt.Results[alg].Throughput.Mean)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// MotivationResult reports the Fig. 2 example: analytic expected
// connections of the conventional solution (Fig. 2(c)) and the SEE
// solution (Fig. 2(d)), computed from the fixture's probabilities.
type MotivationResult struct {
	Conventional float64 // expected 0.729
	SEE          float64 // expected 1.489
}

// Motivation evaluates the two hand-constructed plans of Fig. 2.
func Motivation() MotivationResult {
	net, _ := topo.Motivation()
	pLink := func(a, b int) float64 { return net.SegmentSuccessProb(graph.Path{a, b}) }
	q := func(u int) float64 { return net.SwapProb[u] }

	// Fig. 2(c): entanglement links s2—r1 and r1—d2 joined by a swap at
	// r1. Memory at r1 is exhausted, so (s1,d1) gets nothing.
	conventional := pLink(topo.MotivS2, topo.MotivR1) *
		pLink(topo.MotivR1, topo.MotivD2) *
		q(topo.MotivR1)

	// Fig. 2(d): the all-optical segment s2→r1→d2 frees r1's memory for
	// (s1,d1): link s1—r1 plus segment r1→r2→d1, swapped at r1.
	segS2D2 := net.SegmentSuccessProb(graph.Path{topo.MotivS2, topo.MotivR1, topo.MotivD2})
	segR1D1 := net.SegmentSuccessProb(graph.Path{topo.MotivR1, topo.MotivR2, topo.MotivD1})
	see := segS2D2 + pLink(topo.MotivS1, topo.MotivR1)*segR1D1*q(topo.MotivR1)

	return MotivationResult{Conventional: conventional, SEE: see}
}
