package experiment

import (
	"math"
	"strings"
	"testing"
	"time"

	"see/internal/sched"
)

// smallParams keeps tests fast while exercising the full pipeline.
func smallParams() Params {
	p := DefaultParams()
	p.Nodes = 40
	p.SDPairs = 4
	p.Trials = 3
	return p
}

func TestRunPointShape(t *testing.T) {
	res, err := RunPoint(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Algorithms) {
		t.Fatalf("got %d algorithms", len(res))
	}
	for _, alg := range Algorithms {
		pr := res[alg]
		if pr.Throughput.N != 3 {
			t.Fatalf("%v: N = %d, want 3", alg, pr.Throughput.N)
		}
		if pr.Throughput.Mean < 0 {
			t.Fatalf("%v: negative mean", alg)
		}
		if pr.Jain < 0 || pr.Jain > 1+1e-9 {
			t.Fatalf("%v: Jain = %v", alg, pr.Jain)
		}
	}
}

func TestRunPointDeterministic(t *testing.T) {
	a, err := RunPoint(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPoint(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if math.Abs(a[alg].Throughput.Mean-b[alg].Throughput.Mean) > 1e-12 {
			t.Fatalf("%v: non-deterministic mean", alg)
		}
	}
}

func TestRunPointRejectsZeroTrials(t *testing.T) {
	p := smallParams()
	p.Trials = 0
	if _, err := RunPoint(p); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestSweepRunnerAndTable(t *testing.T) {
	base := smallParams()
	sw, err := runSweep("test-sweep", "x", base, []float64{2, 3},
		func(p *Params, x float64) { p.Channels = int(x) })
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 || sw.Points[0].X != 2 || sw.Points[1].X != 3 {
		t.Fatalf("sweep points wrong: %+v", sw.Points)
	}
	table := sw.Table()
	if !strings.Contains(table, "test-sweep") || !strings.Contains(table, "SEE\tREPS\tE2E") {
		t.Fatalf("table header missing:\n%s", table)
	}
	if len(strings.Split(strings.TrimSpace(table), "\n")) != 4 {
		t.Fatalf("table should have 2 header + 2 data rows:\n%s", table)
	}
}

func TestMotivationValues(t *testing.T) {
	r := Motivation()
	if math.Abs(r.Conventional-0.729) > 1e-9 {
		t.Fatalf("conventional = %v, want 0.729", r.Conventional)
	}
	if math.Abs(r.SEE-1.4885) > 1e-9 {
		t.Fatalf("SEE = %v, want 1.4885", r.SEE)
	}
	if r.SEE/r.Conventional < 2 {
		t.Fatal("the paper's 2x claim must hold on the fixture")
	}
}

func TestAlgorithmString(t *testing.T) {
	if SEE.String() != "SEE" || REPS.String() != "REPS" || E2E.String() != "E2E" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm must stringify")
	}
}

// Integration: on a modest instance, the paper's headline ordering holds
// (SEE >= both baselines) when averaged over a few trials.
func TestOrderingHoldsOnAverage(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 60
	p.SDPairs = 8
	p.Trials = 6
	res, err := RunPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	seeMean := res[SEE].Throughput.Mean
	if seeMean < res[REPS].Throughput.Mean*0.9 {
		t.Fatalf("SEE (%v) clearly below REPS (%v)", seeMean, res[REPS].Throughput.Mean)
	}
	if seeMean < res[E2E].Throughput.Mean*0.9 {
		t.Fatalf("SEE (%v) clearly below E2E (%v)", seeMean, res[E2E].Throughput.Mean)
	}
}

// Figure runners accept a tiny base without error; full-scale runs are the
// benchmarks' job.
func TestFigureRunnersSmoke(t *testing.T) {
	base := smallParams()
	base.Trials = 1
	type runner struct {
		name string
		run  func(Params) (*Sweep, error)
	}
	for _, r := range []runner{
		{"fig3", Fig3LinkCapacity},
		{"fig5", Fig5SwapProb},
	} {
		sw, err := r.run(base)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if len(sw.Points) < 2 {
			t.Fatalf("%s: too few points", r.name)
		}
	}
}

// A tracer shared across the harness's trial workers must survive the race
// detector and see every algorithm's slots, without perturbing results.
func TestRunPointSharedTracer(t *testing.T) {
	p := smallParams()
	p.Trials = 6
	p.Workers = 4
	bare, err := RunPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := sched.NewCountingTracer()
	p.Tracer = tr
	traced, err := RunPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if bare[alg].Throughput.Mean != traced[alg].Throughput.Mean {
			t.Fatalf("%v: tracer changed results: %v vs %v",
				alg, bare[alg].Throughput.Mean, traced[alg].Throughput.Mean)
		}
	}
	c := tr.Counts()
	if want := p.Trials * len(Algorithms); c.Slots != want {
		t.Fatalf("Slots = %d, want %d", c.Slots, want)
	}
	if c.AttemptsResolved == 0 || c.AttemptsReserved != c.AttemptsResolved {
		t.Fatalf("attempt events inconsistent: %+v", c)
	}
}

// Parallel trial execution must be byte-identical to a serial run.
func TestRunPointParallelMatchesSerial(t *testing.T) {
	p := smallParams()
	p.Trials = 6
	p.Workers = 1
	serial, err := RunPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	parallel, err := RunPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if serial[alg].Throughput.Mean != parallel[alg].Throughput.Mean ||
			serial[alg].Jain != parallel[alg].Jain {
			t.Fatalf("%v: serial %+v != parallel %+v", alg, serial[alg], parallel[alg])
		}
	}
}

// TestRunPointDeterministicAcrossWorkerCounts pins the end-to-end
// determinism contract: Params.Workers now also bounds the goroutines of
// every engine's LP pricing rounds, and results must stay byte-identical
// at any count. Every summary field and the per-pair CDF are compared with
// ==; run under -race this also exercises the pricing fan-out for data
// races.
func TestRunPointDeterministicAcrossWorkerCounts(t *testing.T) {
	p := smallParams()
	p.Trials = 4
	p.Workers = 1
	base, err := RunPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		p.Workers = workers
		got, err := RunPoint(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, alg := range Algorithms {
			b, g := base[alg], got[alg]
			if g.Throughput != b.Throughput {
				t.Fatalf("%v workers=%d: throughput %+v != %+v", alg, workers, g.Throughput, b.Throughput)
			}
			if g.Jain != b.Jain {
				t.Fatalf("%v workers=%d: jain %v != %v", alg, workers, g.Jain, b.Jain)
			}
			if len(g.PerPairCDF.Xs) != len(b.PerPairCDF.Xs) {
				t.Fatalf("%v workers=%d: CDF size mismatch", alg, workers)
			}
			for i := range b.PerPairCDF.Xs {
				if g.PerPairCDF.Xs[i] != b.PerPairCDF.Xs[i] || g.PerPairCDF.Ps[i] != b.PerPairCDF.Ps[i] {
					t.Fatalf("%v workers=%d: CDF point %d differs", alg, workers, i)
				}
			}
		}
	}
}

// TestParamsValidate covers the fail-fast configuration guard RunPoint
// (and through it every figure sweep) applies.
func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero trials", func(p *Params) { p.Trials = 0 }},
		{"negative trials", func(p *Params) { p.Trials = -3 }},
		{"negative slots", func(p *Params) { p.Slots = -1 }},
		{"negative workers", func(p *Params) { p.Workers = -2 }},
		{"zero nodes", func(p *Params) { p.Nodes = 0 }},
		{"negative pairs", func(p *Params) { p.SDPairs = -1 }},
		{"zero channels", func(p *Params) { p.Channels = 0 }},
		{"zero memory", func(p *Params) { p.Memory = 0 }},
		{"swap above one", func(p *Params) { p.SwapProb = 1.5 }},
		{"negative swap", func(p *Params) { p.SwapProb = -0.1 }},
		{"negative alpha", func(p *Params) { p.Alpha = -1e-4 }},
		{"negative delta", func(p *Params) { p.Delta = -0.05 }},
		{"negative kpaths", func(p *Params) { p.KPaths = -1 }},
		{"negative hops", func(p *Params) { p.MaxSegmentHops = -1 }},
		{"negative budget", func(p *Params) { p.SlotBudget = -time.Second }},
		{"negative decoherence", func(p *Params) { p.DecoherenceSlots = -1 }},
		{"unknown algorithm", func(p *Params) { p.Algorithms = []Algorithm{Algorithm(99)} }},
	}
	for _, tc := range cases {
		p := DefaultParams()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if _, err := RunPoint(p); err == nil {
			t.Errorf("%s: RunPoint accepted", tc.name)
		}
	}
	// Registered repo-grown baselines pass.
	p := DefaultParams()
	p.Algorithms = []Algorithm{sched.Greedy, sched.Contend}
	if err := p.Validate(); err != nil {
		t.Errorf("registered baselines rejected: %v", err)
	}
}
