package greedy

import (
	"reflect"
	"testing"

	"see/internal/sched"
	"see/internal/topo"
	"see/internal/xrand"
)

func TestRunSlotInvariants(t *testing.T) {
	net, pairs := topo.Motivation()
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if got := eng.Algorithm(); got != sched.Greedy {
		t.Errorf("Algorithm() = %v, want Greedy", got)
	}
	if eng.UpperBound() <= 0 {
		t.Errorf("UpperBound() = %v, want > 0", eng.UpperBound())
	}
	rng := xrand.New(7)
	total := 0
	for s := 0; s < 30; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
		if res.PlannedPaths == 0 || res.Attempts == 0 {
			t.Errorf("slot %d: planned %d paths, %d attempts; want both > 0",
				s, res.PlannedPaths, res.Attempts)
		}
		if res.SegmentsCreated > res.Attempts {
			t.Errorf("created %d > attempts %d", res.SegmentsCreated, res.Attempts)
		}
		if res.Established > res.Assembled {
			t.Errorf("established %d > assembled %d", res.Established, res.Assembled)
		}
		sum := 0
		for _, c := range res.PerPair {
			sum += c
		}
		if sum != res.Established {
			t.Errorf("PerPair sum %d != Established %d", sum, res.Established)
		}
		total += res.Established
	}
	// The greedy plan must actually establish connections on the tiny
	// motivation fixture over 30 slots.
	if total == 0 {
		t.Error("no connections established in 30 slots")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	net, pairs := topo.Motivation()
	run := func() []sched.SlotResult {
		eng, err := NewEngine(net, pairs, DefaultOptions())
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		rng := xrand.New(42)
		var out []sched.SlotResult
		for s := 0; s < 10; s++ {
			res, err := eng.RunSlot(rng)
			if err != nil {
				t.Fatalf("RunSlot: %v", err)
			}
			out = append(out, *res)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different runs")
	}
}

// TestRespectsResources runs greedy on a generated network and checks the
// reservation never overshoots: attempts per slot are bounded by total
// channel capacity and by memory (each attempt pins a memory unit at both
// segment endpoints).
func TestRespectsResources(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 30
	net, err := topo.Generate(cfg, xrand.New(3))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pairs := topo.ChooseSDPairs(net, 8, xrand.New(4))
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	capTotal := 0
	for l := 0; l < net.NumLinks(); l++ {
		capTotal += net.Channels[l]
	}
	res, err := eng.RunSlot(xrand.New(5))
	if err != nil {
		t.Fatalf("RunSlot: %v", err)
	}
	if res.Attempts > capTotal {
		t.Errorf("attempts %d exceed total channel capacity %d", res.Attempts, capTotal)
	}
}
