package greedy

import (
	"fmt"

	"see/internal/chaos"
	"see/internal/sched"
	"see/internal/state"
)

var _ sched.Checkpointable = (*Engine)(nil)

// EngineState implements sched.Checkpointable: the engine's only cross-slot
// state is the chaos injector's phase and the segment bank's contents (the
// provisioning plan is deterministic from construction).
func (e *Engine) EngineState() (*sched.EngineState, error) {
	return &sched.EngineState{
		Algorithm: e.Algorithm(),
		Chaos:     e.opts.Chaos.State(),
		Bank:      e.bank.State(),
	}, nil
}

// RestoreEngineState implements sched.Checkpointable, re-linking restored
// banked segments to this engine's candidate catalogue.
func (e *Engine) RestoreEngineState(st *sched.EngineState) error {
	if err := sched.CheckRestoreAlgorithm(e.Algorithm(), st); err != nil {
		return err
	}
	var chaosSt *chaos.InjectorState
	var bankSt *state.BankState
	if st != nil {
		chaosSt, bankSt = st.Chaos, st.Bank
	}
	if err := e.opts.Chaos.Restore(chaosSt); err != nil {
		return fmt.Errorf("greedy: %w", err)
	}
	if err := e.bank.Restore(bankSt, e.Set.CandidateFor); err != nil {
		return fmt.Errorf("greedy: %w", err)
	}
	return nil
}
