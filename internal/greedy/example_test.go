package greedy_test

import (
	"fmt"

	"see/internal/greedy"
	"see/internal/topo"
	"see/internal/xrand"
)

// Example runs the non-LP baseline on the paper's Fig. 2 fixture. Planning
// is deterministic at construction; the rng drives only the physical phase
// and the swaps, so a fixed seed reproduces the slot exactly.
func Example() {
	net, pairs := topo.Motivation()
	eng, err := greedy.NewEngine(net, pairs, greedy.DefaultOptions())
	if err != nil {
		panic(err)
	}
	res, err := eng.RunSlot(xrand.New(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", eng.Algorithm())
	fmt.Printf("planned=%d provisioned=%d established=%d\n",
		res.PlannedPaths, res.ProvisionedPaths, res.Established)
	// Output:
	// algorithm: Greedy
	// planned=2 provisioned=2 established=2
}
