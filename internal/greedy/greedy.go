// Package greedy implements a non-LP baseline scheduler in the spirit of
// greedy entanglement-routing heuristics (cf. the NIST swapping-order
// greedy): paths are chosen by repeated shortest-path on the segment graph
// under an expected-attempt-cost metric, and channels/memory are reserved
// first-come-first-served until the network is saturated. No linear program
// is solved anywhere, so construction is fast and deadline-proof — which is
// why internal/engines uses this engine as the degradation target when an
// LP-based engine blows its slot budget (ISSUE: graceful LP degradation).
//
// Like the LP engines, planning depends only on the static topology and
// happens once at construction, with no randomness: RunSlot consumes the
// rng only for the physical phase and the swaps, so a fixed rng state
// reproduces the slot exactly.
package greedy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"see/internal/chaos"
	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/segment"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
)

// Pricing constants for the planning shortest path: infeasible edges get a
// prohibitive weight, and any path that crosses one is rejected (same
// pattern as ECE's auxiliary-graph weights).
const (
	infeasibleWeight = 1e12
	rejectThreshold  = 1e11
)

// Options tunes the greedy engine.
type Options struct {
	// Segment tunes candidate enumeration; the zero value uses the SEE
	// defaults (hop cap 10) so the greedy plans over the same segment
	// catalogue as the engine it substitutes for.
	Segment segment.Options
	// Algorithm is the scheme label reported through Engine.Algorithm and
	// the Tracer; the zero value is sched.Greedy.
	Algorithm sched.Algorithm
	// Tracer observes the slot pipeline; nil means no instrumentation.
	Tracer sched.Tracer
	// Chaos injects deterministic faults into the physical phase; see the
	// matching field in core.Options.
	Chaos *chaos.Injector
	// Warm, when non-nil, memoizes the segment-candidate set across engine
	// (re)builds over the same network (see internal/warm). The engine
	// solves no LP, so the candidate build is the only cacheable stage.
	Warm *warm.Cache
	// FidelityFloors is the per-request minimum delivered end-to-end
	// fidelity; the stitch loop never attempts an assembly whose predicted
	// fidelity misses its pair's floor (see qnet.FloorPolicy and the
	// matching field in core.Options). Nil or all-zero disables it.
	FidelityFloors *qnet.FloorSpec
	// SwapOrder selects the stitch phase's swap schedule; the zero value
	// (qnet.SwapOrderPath) is the historical left-to-right order.
	SwapOrder qnet.SwapOrder
}

// DefaultOptions returns the greedy defaults.
func DefaultOptions() Options {
	seg := segment.DefaultOptions()
	seg.MaxSegmentHops = 10
	return Options{Segment: seg, Algorithm: sched.Greedy}
}

// hop is one planned segment: the endpoint pair, the physical realization
// reserved for it and the number of creation attempts.
type hop struct {
	pair     segment.PairKey
	cand     *segment.Candidate
	attempts int
}

// plannedPath is one greedy-selected entanglement path.
type plannedPath struct {
	commodity int
	nodes     graph.Path
	hops      []hop
}

// Engine runs greedy time slots over a fixed network and workload.
type Engine struct {
	Net   *topo.Network
	Pairs []topo.SDPair
	Set   *segment.Set
	// ConnCap is the per-pair connection cap.
	ConnCap []int

	paths    []plannedPath
	plan     qnet.AttemptPlan
	expected float64

	opts   Options
	tracer sched.Tracer
	// bank is the optional cross-slot segment bank; nil keeps the engine
	// memoryless (see the matching field in core.Engine).
	bank *state.Bank
	// slot is the reusable per-slot scratch (attempt ordering, segment
	// pool, per-pair counters); the same lifetime rule as core.slotScratch
	// applies — nothing in it may outlive the slot.
	slot *slotScratch
}

// slotScratch holds the greedy engine's per-slot reusable buffers.
type slotScratch struct {
	att     qnet.AttemptScratch
	pool    *qnet.Pool
	perPair []int
}

// scratch returns the engine's slot scratch, creating it on first use.
func (e *Engine) scratch() *slotScratch {
	if e.slot == nil {
		e.slot = &slotScratch{perPair: make([]int, len(e.Pairs))}
	}
	return e.slot
}

var _ sched.Stateful = (*Engine)(nil)

// NewEngine enumerates candidates and fixes the greedy plan. It never
// solves an LP, so unlike the other engines it needs no context/budget
// variant: construction cost is one Yen enumeration plus a handful of
// Dijkstra runs.
func NewEngine(net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	if net == nil {
		return nil, errors.New("greedy: nil network")
	}
	if len(pairs) == 0 {
		return nil, errors.New("greedy: no SD pairs")
	}
	if opts.Segment.KPaths == 0 && opts.Segment.MaxSegmentHops == 0 {
		d := DefaultOptions()
		opts.Segment = d.Segment
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = sched.Greedy
	}
	var set *segment.Set
	var err error
	if opts.Warm != nil {
		set, err = opts.Warm.SegmentSet(net, pairs, opts.Segment)
	} else {
		set, err = segment.Build(net, pairs, opts.Segment)
	}
	if err != nil {
		return nil, fmt.Errorf("greedy: building candidates: %w", err)
	}
	connCap := make([]int, len(pairs))
	for i, sd := range pairs {
		connCap[i] = min(net.Memory[sd.S], net.Memory[sd.D])
	}
	e := &Engine{
		Net:     net,
		Pairs:   pairs,
		Set:     set,
		ConnCap: connCap,
		opts:    opts,
		tracer:  sched.OrNop(opts.Tracer),
	}
	e.buildPlan()
	return e, nil
}

// buildPlan selects paths round-robin over SD pairs and reserves resources
// first-come-first-served. Each round routes every unsaturated pair on the
// segment graph, pricing each segment edge at the expected-attempt cost
// 1/(p·√(q_u·q_v)) of its cheapest still-feasible realization, with node
// weight −ln q (junctions must survive their swap). A selected path
// reserves up to ⌈1/p⌉ attempts per hop — enough for one expected created
// segment — bounded by the residual channels and memory. Rounds repeat
// until no pair can be routed.
func (e *Engine) buildPlan() {
	channels := append([]int(nil), e.Net.Channels...)
	memory := append([]int(nil), e.Net.Memory...)
	e.plan = make(qnet.AttemptPlan)

	// cheapestFeasible returns the lowest-cost realization of the edge's
	// pair that fits at least one attempt in the residual resources.
	cheapestFeasible := func(pk segment.PairKey) (*segment.Candidate, float64) {
		var best *segment.Candidate
		bestCost := math.Inf(1)
		for _, c := range e.Set.ByPair[pk] {
			fits := memory[pk.U] >= 1 && memory[pk.V] >= 1
			for _, id := range c.EdgeIDs {
				if channels[id] < 1 {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			cost := attemptCost(e.Net, c)
			if cost < bestCost {
				best, bestCost = c, cost
			}
		}
		return best, bestCost
	}

	nodeWeight := func(u int) float64 {
		q := e.Net.SwapProb[u]
		if q <= 0 {
			return infeasibleWeight
		}
		return -math.Log(q)
	}
	edgeWeight := func(id int, _ float64) float64 {
		if _, cost := cheapestFeasible(e.Set.EdgePairs[id]); !math.IsInf(cost, 1) {
			return cost
		}
		return infeasibleWeight
	}

	planned := make([]int, len(e.Pairs))
	for {
		progress := false
		for i, sd := range e.Pairs {
			if planned[i] >= e.ConnCap[i] {
				continue
			}
			path, dist := graph.ShortestPath(e.Set.SegGraph, sd.S, sd.D, graph.DijkstraOptions{
				NodeWeight: nodeWeight,
				EdgeWeight: edgeWeight,
			})
			if path == nil || dist >= rejectThreshold {
				continue
			}
			pp := plannedPath{commodity: i, nodes: path}
			ok := true
			for h := 0; h+1 < len(path); h++ {
				pk := segment.MakePairKey(path[h], path[h+1])
				cand, cost := cheapestFeasible(pk)
				if cand == nil || math.IsInf(cost, 1) {
					ok = false
					break
				}
				// One expected created segment per hop: n ≈ 1/p attempts,
				// bounded by what the residual resources actually fit.
				n := int(math.Ceil(1 / cand.Prob))
				if n < 1 {
					n = 1
				}
				for _, id := range cand.EdgeIDs {
					if channels[id] < n {
						n = channels[id]
					}
				}
				if memory[pk.U] < n {
					n = memory[pk.U]
				}
				if memory[pk.V] < n {
					n = memory[pk.V]
				}
				if n < 1 {
					ok = false
					break
				}
				for _, id := range cand.EdgeIDs {
					channels[id] -= n
				}
				memory[pk.U] -= n
				memory[pk.V] -= n
				pp.hops = append(pp.hops, hop{pair: pk, cand: cand, attempts: n})
			}
			if !ok {
				// Roll back this path's partial reservations.
				for _, h := range pp.hops {
					for _, id := range h.cand.EdgeIDs {
						channels[id] += h.attempts
					}
					memory[h.pair.U] += h.attempts
					memory[h.pair.V] += h.attempts
				}
				continue
			}
			for _, h := range pp.hops {
				e.plan[h.cand] += h.attempts
			}
			e.paths = append(e.paths, pp)
			planned[i]++
			progress = true
		}
		if !progress {
			break
		}
	}
	e.expected = e.expectedEstablished()
}

// attemptCost is the expected number of attempts a unit of flow costs on
// the candidate: 1/(p·√(q_u·q_v)), the same metric the LP prices columns
// with (+Inf when the realization cannot support flow).
func attemptCost(net *topo.Network, c *segment.Candidate) float64 {
	qu := net.SwapProb[c.Path[0]]
	qv := net.SwapProb[c.Path[len(c.Path)-1]]
	den := c.Prob * math.Sqrt(qu*qv)
	if den <= 1e-12 {
		return math.Inf(1)
	}
	return 1 / den
}

// expectedEstablished is the heuristic value of the plan: per path, the
// probability every hop realizes at least one segment times the junction
// swap survival.
func (e *Engine) expectedEstablished() float64 {
	var total float64
	for _, pp := range e.paths {
		p := 1.0
		for _, h := range pp.hops {
			p *= 1 - math.Pow(1-h.cand.Prob, float64(h.attempts))
		}
		for j := 1; j+1 < len(pp.nodes); j++ {
			p *= e.Net.SwapProb[pp.nodes[j]]
		}
		total += p
	}
	return total
}

// RunSlot simulates one time slot: attempt the fixed plan, then assemble
// the planned paths from realized segments (repeating while redundant
// segments allow retries, like ECE's provisioned pass).
func (e *Engine) RunSlot(rng *rand.Rand) (*sched.SlotResult, error) {
	tr := e.tracer
	traced := !sched.IsNop(tr)
	tr.SlotStart(e.opts.Algorithm)
	res := &sched.SlotResult{
		LPObjective:      e.expected,
		PlannedPaths:     len(e.paths),
		ProvisionedPaths: len(e.paths),
		PerPair:          make([]int, len(e.Pairs)),
	}

	var fm qnet.FaultModel
	faultsBefore := 0
	var countsBefore chaos.Counts
	if e.opts.Chaos.Active() {
		countsBefore = e.opts.Chaos.Counts()
		e.opts.Chaos.BeginSlot()
		faultsBefore = e.opts.Chaos.Counts().Total()
		fm = e.opts.Chaos
	}

	// Cross-slot state: withdraw surviving carried segments and trim their
	// endpoint pairs out of the fixed plan (the cached e.plan is never
	// mutated). With no bank, plan aliases e.plan and the slot is
	// byte-identical to the memoryless path.
	plan := e.plan
	var withdrawn []*qnet.Segment
	if e.bank != nil {
		if expired, decohered := e.bank.BeginSlot(); expired+decohered > 0 {
			tr.Incident(sched.IncidentBankDecohered, expired+decohered)
		}
		if withdrawn = e.bank.WithdrawAll(); len(withdrawn) > 0 {
			tr.Incident(sched.IncidentBankWithdraw, len(withdrawn))
		}
		plan, _ = e.bank.TrimPlan(plan, withdrawn)
	}
	res.Attempts = plan.TotalAttempts()

	t0 := time.Now()
	if traced {
		for _, pp := range e.paths {
			tr.PathPlanned(pp.commodity, len(pp.hops))
		}
	}
	tr.PhaseDone(sched.PhasePlan, time.Since(t0))

	t0 = time.Now()
	if traced {
		for _, pp := range e.paths {
			tr.PathProvisioned(pp.commodity)
		}
		for _, c := range plan.SortedCandidates() {
			tr.AttemptReserved(c.U(), c.V(), plan[c])
		}
	}
	tr.PhaseDone(sched.PhaseReserve, time.Since(t0))

	t0 = time.Now()
	var attemptObs qnet.AttemptObserver
	if traced {
		attemptObs = func(c *segment.Candidate, ok bool) {
			tr.AttemptResolved(c.U(), c.V(), ok)
		}
	}
	sc := e.scratch()
	created := qnet.AttemptAllFaultyScratch(plan, rng, fm, attemptObs, &sc.att)
	res.SegmentsCreated = len(created)
	created, _ = qnet.ApplyDecoherence(created, fm)
	if fm != nil {
		// Brownout denials and flap downs get their own incident kinds; the
		// rest stays IncidentFault (see the matching block in internal/core).
		da := e.opts.Chaos.Counts().Sub(countsBefore)
		if d := e.opts.Chaos.Counts().Total() - faultsBefore - da.BrownoutAttemptsLost; d > 0 {
			tr.Incident(sched.IncidentFault, d)
		}
		if da.FlapSlotsDown > 0 {
			tr.Incident(sched.IncidentFlap, da.FlapSlotsDown)
		}
		if da.BrownoutAttemptsLost > 0 {
			tr.Incident(sched.IncidentBrownout, da.BrownoutAttemptsLost)
		}
	}
	tr.PhaseDone(sched.PhasePhysical, time.Since(t0))

	// Withdrawn carried segments join the pool ahead of the fresh ones so
	// the oldest photons are consumed preferentially.
	t0 = time.Now()
	slotSegs := append(withdrawn, created...)
	if sc.pool == nil {
		sc.pool = qnet.NewPool(slotSegs)
	} else {
		sc.pool.Reset(slotSegs)
	}
	pool := sc.pool
	swapObs := qnet.SwapObserver(tr.SwapResolved)
	perPair := sc.perPair
	clear(perPair)
	fp := qnet.NewFloorPolicy(e.opts.FidelityFloors, e.Net)
	var floorDead []bool // planned paths proven unable to meet their floor
	for {
		progress := false
		for ppi, pp := range e.paths {
			if perPair[pp.commodity] >= e.ConnCap[pp.commodity] {
				continue
			}
			if floorDead != nil && floorDead[ppi] {
				continue
			}
			ok := true
			for _, h := range pp.hops {
				if pool.Available(h.pair) < 1 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			conn := &qnet.Connection{Pair: pp.commodity, Nodes: pp.nodes}
			for _, h := range pp.hops {
				conn.Segments = append(conn.Segments, fp.Take(pool, pp.commodity, h.pair))
			}
			if fp.Rejects(pp.commodity, conn.Segments) {
				for _, s := range conn.Segments {
					pool.Return(s)
				}
				if floorDead == nil {
					floorDead = make([]bool, len(e.paths))
				}
				floorDead[ppi] = true
				res.FloorRejected++
				tr.Incident(sched.IncidentFloorReject, 1)
				continue
			}
			res.Assembled++
			progress = true
			ok = conn.EstablishOrderedObserved(e.Net, pool, rng, swapObs, e.opts.SwapOrder)
			tr.ConnectionAssembled(pp.commodity, ok)
			if ok {
				if err := conn.Validate(); err != nil {
					return nil, fmt.Errorf("greedy: invalid connection: %w", err)
				}
				res.Established++
				res.PerPair[pp.commodity]++
				res.Connections = append(res.Connections, conn)
				perPair[pp.commodity]++
			}
		}
		if !progress {
			break
		}
	}
	// Cross-slot state: bank the slot's unconsumed leftovers for the next
	// slot, within each node's memory budget.
	if e.bank != nil {
		if accepted := e.bank.Deposit(pool.Unconsumed()); accepted > 0 {
			tr.Incident(sched.IncidentBankDeposit, accepted)
		}
	}
	tr.PhaseDone(sched.PhaseStitch, time.Since(t0))
	tr.SlotEnd(res)
	return res, nil
}

// Algorithm identifies the scheme.
func (e *Engine) Algorithm() sched.Algorithm { return e.opts.Algorithm }

// UpperBound returns the heuristic expected established count of the fixed
// plan (not an LP bound — the greedy solves none).
func (e *Engine) UpperBound() float64 { return e.expected }

// AttachBank implements sched.Stateful: it installs the cross-slot segment
// bank (nil detaches, restoring memoryless behavior).
func (e *Engine) AttachBank(b *state.Bank) { e.bank = b }

// Bank implements sched.Stateful.
func (e *Engine) Bank() *state.Bank { return e.bank }
