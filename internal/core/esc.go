package core

import (
	"sort"

	"see/internal/qnet"
	"see/internal/segment"
)

// createSegmentsPlan implements Algorithm 2 (ESC): it orders the planned
// entanglement paths, then reserves the minimum quantum resources so that
// for every segment ⟨u,v⟩ the expected number of created segments
// Σ_k p^k_uv·x^k_uv covers the number of provisioned paths using it.
// High-probability physical realizations are reserved first; a path whose
// demand cannot be covered releases everything reserved on its behalf.
//
// It returns the attempt plan {x^k_uv} and the provisioned path set D.
func (e *Engine) createSegmentsPlan(planned []PlannedPath) (qnet.AttemptPlan, []PlannedPath, error) {
	ordered := orderPaths(planned)

	// Fault-aware planning reserves against the forecast-shrunk capacities
	// (nil overrides keep the network tables).
	ledger := qnet.NewLedgerWithCapacities(e.Net, e.opts.PlanChannels, e.opts.PlanMemory)
	plan := make(qnet.AttemptPlan)
	// expected[pk] = Σ_k p^k·x^k currently reserved for the pair;
	// demand[pk] = paths in D using the pair;
	// attempts[pk] = Σ_k x^k currently reserved for the pair.
	expected := make(map[segment.PairKey]float64)
	demand := make(map[segment.PairKey]int)
	attempts := make(map[segment.PairKey]int)

	var provisioned []PlannedPath
	for _, p := range ordered {
		// Attempts added on behalf of this path, for rollback, and how
		// many hops had their demand counted before a failure.
		var added []*segment.Candidate
		counted := 0
		ok := true
		for _, hop := range p.Hops {
			demand[hop.Pair]++
			counted++
			for expected[hop.Pair] < float64(demand[hop.Pair]) {
				cand := e.bestReservable(hop.Pair, ledger)
				if cand == nil {
					// Out of resources for redundancy. In strict mode
					// (Algorithm 2 verbatim) the path is released. By
					// default we keep it as long as each demanded segment
					// has at least one dedicated attempt — without this,
					// a 1-channel network could never provision anything
					// (see the Fig. 2 fixture) even though creating
					// segments without redundancy is clearly preferable
					// to idling.
					if e.opts.StrictProvisioning || attempts[hop.Pair] < demand[hop.Pair] {
						ok = false
					}
					break
				}
				if err := ledger.Reserve(cand); err != nil {
					return nil, nil, err
				}
				plan[cand]++
				expected[hop.Pair] += cand.Prob
				attempts[hop.Pair]++
				added = append(added, cand)
			}
			if !ok {
				break
			}
		}
		if ok {
			provisioned = append(provisioned, p)
			continue
		}
		// Rollback: release the attempts added for p and drop its demand.
		for _, cand := range added {
			if err := ledger.Release(cand); err != nil {
				return nil, nil, err
			}
			plan[cand]--
			if plan[cand] == 0 {
				delete(plan, cand)
			}
			pk := segment.MakePairKey(cand.Path[0], cand.Path[len(cand.Path)-1])
			expected[pk] -= cand.Prob
			attempts[pk]--
		}
		for _, hop := range p.Hops[:counted] {
			demand[hop.Pair]--
		}
	}

	// Backup provisioning (§II-F: SEE "provisions redundant entanglement
	// ... some of these entanglement segments will be used as backups"):
	// saturate leftover channels and memory with extra attempts on the
	// segments the provisioned paths demand, topping up the least-covered
	// segments first so availability is equalized.
	if len(provisioned) > 0 {
		keys := make([]segment.PairKey, 0, len(demand))
		for pk, d := range demand {
			if d > 0 {
				keys = append(keys, pk)
			}
		}
		for {
			sort.Slice(keys, func(i, j int) bool {
				ci := expected[keys[i]] / float64(demand[keys[i]])
				cj := expected[keys[j]] / float64(demand[keys[j]])
				if ci != cj {
					return ci < cj
				}
				if keys[i].U != keys[j].U {
					return keys[i].U < keys[j].U
				}
				return keys[i].V < keys[j].V
			})
			reserved := 0
			for _, pk := range keys {
				cand := e.bestReservable(pk, ledger)
				if cand == nil {
					continue
				}
				if err := ledger.Reserve(cand); err != nil {
					return nil, nil, err
				}
				plan[cand]++
				expected[pk] += cand.Prob
				attempts[pk]++
				reserved++
			}
			if reserved == 0 {
				break
			}
		}
	}

	if err := ledger.Validate(); err != nil {
		return nil, nil, err
	}
	return plan, provisioned, nil
}

// bestReservable returns the highest-probability candidate for the pair
// that the ledger can still accommodate, or nil.
func (e *Engine) bestReservable(pk segment.PairKey, ledger *qnet.Ledger) *segment.Candidate {
	for _, cand := range e.Set.ByPair[pk] {
		if ledger.CanReserve(cand) {
			return cand
		}
	}
	return nil
}

// orderPaths implements ESC's ordering: increasing path length (segment
// count, then physical hop count), with round-robin across SD pairs inside
// each equal-length class to preserve fairness.
func orderPaths(planned []PlannedPath) []PlannedPath {
	idx := make([]int, len(planned))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := planned[idx[a]], planned[idx[b]]
		if len(pa.Hops) != len(pb.Hops) {
			return len(pa.Hops) < len(pb.Hops)
		}
		return pa.PhysHops < pb.PhysHops
	})
	// Round-robin inside equal (segments, physHops) classes.
	ordered := make([]PlannedPath, 0, len(planned))
	for start := 0; start < len(idx); {
		end := start
		key := func(i int) [2]int {
			return [2]int{len(planned[idx[i]].Hops), planned[idx[i]].PhysHops}
		}
		for end < len(idx) && key(end) == key(start) {
			end++
		}
		ordered = append(ordered, roundRobin(planned, idx[start:end])...)
		start = end
	}
	return ordered
}

// roundRobin interleaves the paths of a class by commodity: first one path
// of each SD pair, then the second of each, and so on.
func roundRobin(planned []PlannedPath, idx []int) []PlannedPath {
	byCommodity := make(map[int][]PlannedPath)
	var commodities []int
	for _, i := range idx {
		c := planned[i].Commodity
		if _, seen := byCommodity[c]; !seen {
			commodities = append(commodities, c)
		}
		byCommodity[c] = append(byCommodity[c], planned[i])
	}
	sort.Ints(commodities)
	out := make([]PlannedPath, 0, len(idx))
	for round := 0; len(out) < len(idx); round++ {
		for _, c := range commodities {
			if round < len(byCommodity[c]) {
				out = append(out, byCommodity[c][round])
			}
		}
	}
	return out
}
