package core

import (
	"sort"

	"see/internal/par"
	"see/internal/qnet"
	"see/internal/segment"
)

// escParallelThreshold is the minimum number of active segment pairs
// before a backup-provisioning round fans its reservation scans out to
// the parallel precompute; below it the coordination cost outweighs the
// scan work.
const escParallelThreshold = 16

// createSegmentsPlan implements Algorithm 2 (ESC): it orders the planned
// entanglement paths, then reserves the minimum quantum resources so that
// for every segment ⟨u,v⟩ the expected number of created segments
// Σ_k p^k_uv·x^k_uv covers the number of provisioned paths using it.
// High-probability physical realizations are reserved first; a path whose
// demand cannot be covered releases everything reserved on its behalf.
//
// It returns the attempt plan {x^k_uv} and the provisioned path set D.
// Everything it returns is freshly allocated — PlanSlot hands the plan to
// the protocol layer, where it outlives the slot.
func (e *Engine) createSegmentsPlan(planned []PlannedPath) (qnet.AttemptPlan, []PlannedPath, error) {
	return e.createSegmentsPlanScratch(planned, nil)
}

// createSegmentsPlanScratch is createSegmentsPlan over an optional slot
// scratch. With a non-nil scratch the ledger, the attempt plan and the
// coverage tables are recycled from the previous slot (the returned plan
// aliases sc.plan, so it is only valid until the next slot — RunSlot
// consumes it in-slot); with nil everything is allocated fresh. Both paths
// run the identical reservation sequence.
func (e *Engine) createSegmentsPlanScratch(planned []PlannedPath, sc *slotScratch) (qnet.AttemptPlan, []PlannedPath, error) {
	ordered := orderPaths(planned)

	// Fault-aware planning reserves against the forecast-shrunk capacities
	// (nil overrides keep the network tables).
	var ledger *qnet.Ledger
	var plan qnet.AttemptPlan
	// expected[pk] = Σ_k p^k·x^k currently reserved for the pair;
	// demand[pk] = paths in D using the pair;
	// attempts[pk] = Σ_k x^k currently reserved for the pair.
	var expected map[segment.PairKey]float64
	var demand, attempts map[segment.PairKey]int
	if sc != nil {
		ledger = sc.ledger
		ledger.Reset()
		plan, expected, demand, attempts = sc.plan, sc.expected, sc.demand, sc.attempts
		clear(plan)
		clear(expected)
		clear(demand)
		clear(attempts)
	} else {
		ledger = qnet.NewLedgerWithCapacities(e.Net, e.opts.PlanChannels, e.opts.PlanMemory)
		plan = make(qnet.AttemptPlan)
		expected = make(map[segment.PairKey]float64)
		demand = make(map[segment.PairKey]int)
		attempts = make(map[segment.PairKey]int)
	}

	var provisioned []PlannedPath
	for _, p := range ordered {
		// Attempts added on behalf of this path, for rollback, and how
		// many hops had their demand counted before a failure.
		var added []*segment.Candidate
		counted := 0
		ok := true
		for _, hop := range p.Hops {
			demand[hop.Pair]++
			counted++
			for expected[hop.Pair] < float64(demand[hop.Pair]) {
				cand := e.bestReservable(hop.Pair, ledger)
				if cand == nil {
					// Out of resources for redundancy. In strict mode
					// (Algorithm 2 verbatim) the path is released. By
					// default we keep it as long as each demanded segment
					// has at least one dedicated attempt — without this,
					// a 1-channel network could never provision anything
					// (see the Fig. 2 fixture) even though creating
					// segments without redundancy is clearly preferable
					// to idling.
					if e.opts.StrictProvisioning || attempts[hop.Pair] < demand[hop.Pair] {
						ok = false
					}
					break
				}
				if err := ledger.Reserve(cand); err != nil {
					return nil, nil, err
				}
				plan[cand]++
				expected[hop.Pair] += cand.Prob
				attempts[hop.Pair]++
				added = append(added, cand)
			}
			if !ok {
				break
			}
		}
		if ok {
			provisioned = append(provisioned, p)
			continue
		}
		// Rollback: release the attempts added for p and drop its demand.
		for _, cand := range added {
			if err := ledger.Release(cand); err != nil {
				return nil, nil, err
			}
			plan[cand]--
			if plan[cand] == 0 {
				delete(plan, cand)
			}
			pk := segment.MakePairKey(cand.Path[0], cand.Path[len(cand.Path)-1])
			expected[pk] -= cand.Prob
			attempts[pk]--
		}
		for _, hop := range p.Hops[:counted] {
			demand[hop.Pair]--
		}
	}

	// Backup provisioning (§II-F: SEE "provisions redundant entanglement
	// ... some of these entanglement segments will be used as backups"):
	// saturate leftover channels and memory with extra attempts on the
	// segments the provisioned paths demand, topping up the least-covered
	// segments first so availability is equalized.
	if len(provisioned) > 0 {
		var keys []segment.PairKey
		if sc != nil {
			keys = sc.keys[:0]
		}
		for pk, d := range demand {
			if d > 0 {
				keys = append(keys, pk)
			}
		}
		if sc != nil {
			sc.keys = keys
		}
		for {
			sort.Slice(keys, func(i, j int) bool {
				ci := expected[keys[i]] / float64(demand[keys[i]])
				cj := expected[keys[j]] / float64(demand[keys[j]])
				if ci != cj {
					return ci < cj
				}
				if keys[i].U != keys[j].U {
					return keys[i].U < keys[j].U
				}
				return keys[i].V < keys[j].V
			})
			reserved, err := e.backupRound(keys, ledger, plan, expected, attempts, sc)
			if err != nil {
				return nil, nil, err
			}
			if reserved == 0 {
				break
			}
		}
	}

	if err := ledger.Validate(); err != nil {
		return nil, nil, err
	}
	return plan, provisioned, nil
}

// backupRound performs one backup-provisioning pass over the sorted pair
// keys: for each pair, reserve its best reservable candidate (if any).
//
// When the engine is configured for parallel pricing and the pair set is
// large enough, the per-pair candidate scans — the round's dominant cost,
// each a read-only walk over Set.ByPair — are precomputed in parallel
// against the ledger state frozen at round start, then applied serially in
// key order. The outcome is provably the serial one: resources only shrink
// during the apply, so a pair whose precomputed scan found nothing still
// finds nothing (skip), a precomputed candidate that is still reservable
// is exactly the serial choice (all earlier candidates were unreservable
// at round start and remain so), and a precomputed candidate that is no
// longer reservable restarts the serial scan at the next index.
func (e *Engine) backupRound(keys []segment.PairKey, ledger *qnet.Ledger,
	plan qnet.AttemptPlan, expected map[segment.PairKey]float64,
	attempts map[segment.PairKey]int, sc *slotScratch) (int, error) {

	parallel := sc != nil && e.opts.Flow.Workers != 1 && len(keys) >= escParallelThreshold
	var pre []escCandidate
	if parallel {
		if cap(sc.escPre) < len(keys) {
			sc.escPre = make([]escCandidate, len(keys))
		}
		pre = sc.escPre[:len(keys)]
		par.For(e.opts.Flow.Workers, len(keys), func(i int) {
			cand, idx := e.bestReservableFrom(keys[i], ledger, 0)
			pre[i] = escCandidate{cand: cand, idx: idx}
		})
	}

	reserved := 0
	for i, pk := range keys {
		var cand *segment.Candidate
		if parallel {
			p := pre[i]
			if p.cand == nil {
				continue
			}
			cand = p.cand
			if !ledger.CanReserve(cand) {
				cand, _ = e.bestReservableFrom(pk, ledger, p.idx+1)
			}
		} else {
			cand = e.bestReservable(pk, ledger)
		}
		if cand == nil {
			continue
		}
		if err := ledger.Reserve(cand); err != nil {
			return 0, err
		}
		plan[cand]++
		expected[pk] += cand.Prob
		attempts[pk]++
		reserved++
	}
	return reserved, nil
}

// bestReservable returns the highest-probability candidate for the pair
// that the ledger can still accommodate, or nil.
func (e *Engine) bestReservable(pk segment.PairKey, ledger *qnet.Ledger) *segment.Candidate {
	cand, _ := e.bestReservableFrom(pk, ledger, 0)
	return cand
}

// bestReservableFrom is bestReservable starting the scan at index from in
// the pair's candidate list, also returning the winning index (len of the
// list when nothing is reservable).
func (e *Engine) bestReservableFrom(pk segment.PairKey, ledger *qnet.Ledger, from int) (*segment.Candidate, int) {
	cands := e.Set.ByPair[pk]
	for i := from; i < len(cands); i++ {
		if ledger.CanReserve(cands[i]) {
			return cands[i], i
		}
	}
	return nil, len(cands)
}

// orderPaths implements ESC's ordering: increasing path length (segment
// count, then physical hop count), with round-robin across SD pairs inside
// each equal-length class to preserve fairness.
func orderPaths(planned []PlannedPath) []PlannedPath {
	idx := make([]int, len(planned))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := planned[idx[a]], planned[idx[b]]
		if len(pa.Hops) != len(pb.Hops) {
			return len(pa.Hops) < len(pb.Hops)
		}
		return pa.PhysHops < pb.PhysHops
	})
	// Round-robin inside equal (segments, physHops) classes.
	ordered := make([]PlannedPath, 0, len(planned))
	for start := 0; start < len(idx); {
		end := start
		key := func(i int) [2]int {
			return [2]int{len(planned[idx[i]].Hops), planned[idx[i]].PhysHops}
		}
		for end < len(idx) && key(end) == key(start) {
			end++
		}
		ordered = append(ordered, roundRobin(planned, idx[start:end])...)
		start = end
	}
	return ordered
}

// roundRobin interleaves the paths of a class by commodity: first one path
// of each SD pair, then the second of each, and so on.
func roundRobin(planned []PlannedPath, idx []int) []PlannedPath {
	byCommodity := make(map[int][]PlannedPath)
	var commodities []int
	for _, i := range idx {
		c := planned[i].Commodity
		if _, seen := byCommodity[c]; !seen {
			commodities = append(commodities, c)
		}
		byCommodity[c] = append(byCommodity[c], planned[i])
	}
	sort.Ints(commodities)
	out := make([]PlannedPath, 0, len(idx))
	for round := 0; len(out) < len(idx); round++ {
		for _, c := range commodities {
			if round < len(byCommodity[c]) {
				out = append(out, byCommodity[c][round])
			}
		}
	}
	return out
}
