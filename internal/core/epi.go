package core

import (
	"math"
	"math/rand"

	"see/internal/flow"
	"see/internal/graph"
	"see/internal/xrand"
)

// PlannedPath is one entanglement path chosen by EPI's randomized rounding:
// the n-th connection attempt of an SD pair, routed over concrete segments.
type PlannedPath struct {
	Commodity int
	Nodes     graph.Path
	Hops      []flow.SegHop
	// physHops is the total physical hop count under the candidates chosen
	// by the LP column (ESC's secondary sort key).
	PhysHops int
}

// identifyPaths implements Algorithm 1 (EPI) on the aggregated LP solution.
//
// The paper rounds each t^n_i to 1 with probability t̃^n_i and then samples
// the connection's path proportionally to the flow split. Summed over n,
// the number of planned connections for pair i is a random variable with
// mean T_i = Σ_n t̃^n_i; we draw it as ⌊T_i⌋ + Bernoulli(frac(T_i)) — the
// same expectation, so Theorem 2's Chernoff argument carries over — and
// sample each connection's path with probability flow(P)/T_i, exactly
// Algorithm 1's second rounding.
func (e *Engine) identifyPaths(rng *rand.Rand) []PlannedPath {
	return e.identifyPathsLP(e.LP, rng)
}

// identifyPathsLP is identifyPaths over an explicit LP solution. Rounding
// over the engine's fixed LP uses the cached EPI tables; a slot-local
// solution (the carry-aware re-solve) derives its own tables for the slot.
func (e *Engine) identifyPathsLP(sol *flow.Solution, rng *rand.Rand) []PlannedPath {
	// The per-commodity grouping and sampling weights are pure functions of
	// the LP solution, derived once per solution instead of per slot.
	var perCommodity [][]flow.PathFlow
	var allWeights [][]float64
	if sol == e.LP {
		perCommodity, allWeights = e.epiTables()
	} else {
		perCommodity, allWeights = deriveEpiTables(len(e.Pairs), sol)
	}
	var out []PlannedPath
	for i, paths := range perCommodity {
		if len(paths) == 0 {
			continue
		}
		total := sol.PerCommodity[i]
		if total <= 1e-9 {
			continue
		}
		count := int(math.Floor(total))
		if xrand.Bernoulli(rng, total-math.Floor(total)) {
			count++
		}
		if count > e.ConnCap[i] {
			count = e.ConnCap[i]
		}
		weights := allWeights[i]
		for n := 0; n < count; n++ {
			j := xrand.WeightedIndex(rng, weights)
			if j < 0 {
				break
			}
			out = append(out, PlannedPath{
				Commodity: i,
				Nodes:     paths[j].Nodes,
				Hops:      paths[j].Hops,
				PhysHops:  physicalHops(paths[j].Hops),
			})
		}
	}
	return out
}

func physicalHops(hops []flow.SegHop) int {
	total := 0
	for _, h := range hops {
		total += h.Cand.Hops()
	}
	return total
}
