// Package core implements the paper's contribution — the SEE scheduler:
//
//   - EPI (Algorithm 1): Entanglement Path Identification — LP relaxation
//     of formulation (1), solved via internal/flow, followed by randomized
//     rounding into concrete entanglement paths.
//   - ESC (Algorithm 2): Entanglement Segment Creation — ordered, fair
//     reservation of channels and memory so that the expected number of
//     created segments covers every provisioned path, preferring
//     high-probability physical realizations.
//   - ECE (Algorithm 3): Entanglement Connection Establishment — assignment
//     of realized segments to provisioned paths, then opportunistic
//     shortest-path construction of extra connections from leftovers on the
//     auxiliary graph with node weight −ln q_u.
//
// The Engine glues the three to the stochastic physical phase (segment
// creation attempts, quantum swapping) to simulate one time slot of a QDN.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"see/internal/chaos"
	"see/internal/flow"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/segment"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
)

// Options configures a SEE engine.
type Options struct {
	// Segment tunes candidate enumeration (hop cap, K paths, pruning).
	Segment segment.Options
	// Flow tunes the LP relaxation solve.
	Flow flow.Options
	// StrictProvisioning makes ESC follow Algorithm 2 verbatim: a path is
	// provisioned only if the *expected* number of created segments covers
	// its demand on every hop. The default (false) additionally keeps
	// paths whose segments each received at least one attempt, which is
	// strictly better in resource-starved networks.
	StrictProvisioning bool
	// Algorithm is the scheme label the engine reports through
	// Engine.Algorithm and the Tracer. The zero value is sched.SEE;
	// restricted variants built on this engine (internal/e2e) override it.
	Algorithm sched.Algorithm
	// Tracer observes the slot pipeline; nil means no instrumentation.
	Tracer sched.Tracer
	// Chaos injects deterministic faults into the physical phase (blocked
	// routes, memory decoherence); nil or a zero-plan injector leaves the
	// engine byte-identical to a run without any chaos layer. The
	// controller stays unaware of outages: planning and reservation are
	// untouched, attempts over down routes simply fail — unless the
	// fault-aware fields below are set.
	Chaos *chaos.Injector
	// PlanChannels / PlanMemory, when non-nil, replace the network's
	// capacity tables in every planning decision — LP right-hand sides,
	// connection caps and the ESC reservation ledger — while the physical
	// phase keeps the true topology. The fault-aware builder (see-aware in
	// internal/engines) derives them from chaos.Forecast, so planning on
	// the full topology with announced outages is byte-identical to
	// planning on the equivalent pre-shrunk topology.
	PlanChannels []int
	PlanMemory   []int
	// ForecastAvoided is the number of announced elements the planner
	// routes around; when positive it is reported every slot as
	// sched.IncidentForecastAvoid.
	ForecastAvoided int
	// Warm, when non-nil, memoizes segment sets and LP solutions across
	// engine (re)builds over the same network (see internal/warm). Replayed
	// artifacts are byte-identical to cold builds; the cache is bypassed
	// entirely for budgeted construction (non-nil ctx) so degradation
	// behavior is cache-independent.
	Warm *warm.Cache
	// FidelityFloors is the per-request minimum delivered end-to-end
	// fidelity. ECE never attempts an assembly whose predicted fidelity
	// (qnet.FidelityModel.PredictFidelity over the exact segments it would
	// consume) misses the pair's floor; for floored pairs it picks the
	// highest-fidelity available segment per hop, so a rejection proves no
	// composition can pass and the path (phase A) or pair (phase B) is
	// floor-dead for the rest of the slot. Nil or all-zero disables
	// enforcement and is byte-identical to pre-floor behavior.
	FidelityFloors *qnet.FloorSpec
	// SwapOrder selects the stitch phase's swap schedule; the zero value
	// (qnet.SwapOrderPath) is the historical left-to-right order.
	SwapOrder qnet.SwapOrder
	// CarryAwareLP re-prices the LP at the start of any slot that
	// withdrew banked segments, dividing each segment edge's pricing cost
	// by a weight grown with the banked inventory covering it (see
	// flow.Options.CarryWeights), so EPI's rounding tables prefer paths
	// that can stitch through already-realized, high-fidelity carried
	// segments. Slots with an empty bank — and engines without a bank —
	// plan on the construction-time LP unchanged.
	CarryAwareLP bool
}

// DefaultOptions returns the SEE defaults: paper §III-D candidate pruning
// and the swap-survival-weighted LP objective (see flow.Options).
func DefaultOptions() Options {
	seg := segment.DefaultOptions()
	seg.MaxSegmentHops = 10
	return Options{
		Segment: seg,
		Flow:    flow.Options{SwapWeightedObjective: true},
	}
}

// Engine runs SEE time slots over a fixed network and SD-pair workload.
// The LP relaxation depends only on the (static) topology, so it is solved
// once at construction; each slot performs randomized rounding, resource
// reservation, the stochastic physical phase and connection establishment.
type Engine struct {
	Net   *topo.Network
	Pairs []topo.SDPair
	Set   *segment.Set
	// LP is the cached fractional optimum (an upper bound on per-slot
	// expected throughput).
	LP *flow.Solution
	// ConnCap is the per-pair connection cap N_i.
	ConnCap []int

	opts   Options
	tracer sched.Tracer
	// bank is the optional cross-slot segment bank; nil (the default)
	// keeps the engine memoryless and byte-identical to pre-carry-over
	// behavior.
	bank *state.Bank
	// slot is the reusable per-slot scratch (see scratch.go); epiPaths and
	// epiWeights are the lazily derived EPI tables of the fixed LP.
	slot       *slotScratch
	epiPaths   [][]flow.PathFlow
	epiWeights [][]float64
	// carryArena carries the dual-independent pricing tables across the
	// carry-aware per-slot LP re-solves (Options.CarryAwareLP); the
	// re-solve bypasses the warm cache because its inputs change with the
	// slot's banked inventory.
	carryArena flow.Arena
}

var _ sched.Stateful = (*Engine)(nil)

// NewEngine builds the candidate set and solves the LP relaxation.
func NewEngine(net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	return NewEngineCtx(nil, net, pairs, opts)
}

// NewEngineCtx is NewEngine with the LP relaxation solve bounded by a
// context (nil = never cancelled). An expired deadline aborts construction
// with an error wrapping ctx.Err(); the degradation ladder in
// internal/engines uses this to fall back to the greedy engine when the
// solve blows its slot budget.
func NewEngineCtx(ctx context.Context, net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	if net == nil {
		return nil, errors.New("core: nil network")
	}
	if len(pairs) == 0 {
		return nil, errors.New("core: no SD pairs")
	}
	// Budgeted construction (non-nil ctx) bypasses the warm cache so
	// timeout behavior never depends on what some earlier build memoized.
	useWarm := opts.Warm != nil && ctx == nil
	var set *segment.Set
	var err error
	if useWarm {
		set, err = opts.Warm.SegmentSet(net, pairs, opts.Segment)
	} else {
		set, err = segment.Build(net, pairs, opts.Segment)
	}
	if err != nil {
		return nil, fmt.Errorf("core: building candidates: %w", err)
	}
	// Fault-aware planning: the forecast-shrunk capacity tables feed the
	// LP (capacity overrides and, via ConnCap below, the per-pair caps);
	// with both nil the solve sees the network tables unchanged.
	if opts.PlanChannels != nil {
		opts.Flow.Channels = opts.PlanChannels
	}
	if opts.PlanMemory != nil {
		opts.Flow.Memory = opts.PlanMemory
	}
	connCap := opts.Flow.ConnCap
	if connCap == nil {
		mem := net.Memory
		if opts.PlanMemory != nil {
			mem = opts.PlanMemory
		}
		connCap = make([]int, len(pairs))
		for i, sd := range pairs {
			connCap[i] = min(mem[sd.S], mem[sd.D])
		}
		opts.Flow.ConnCap = connCap
	}
	var sol *flow.Solution
	if useWarm {
		sol, err = opts.Warm.Solve(set, opts.Flow)
	} else {
		sol, err = flow.SolveCtx(ctx, set, opts.Flow)
	}
	if err != nil {
		return nil, fmt.Errorf("core: solving LP relaxation: %w", err)
	}
	return &Engine{
		Net:     net,
		Pairs:   pairs,
		Set:     set,
		LP:      sol,
		ConnCap: connCap,
		opts:    opts,
		tracer:  sched.OrNop(opts.Tracer),
	}, nil
}

// SlotPlan is the controller's decision for one time slot (steps i–ii of
// §II-F): which entanglement paths to pursue and how many creation attempts
// to reserve on each physical segment.
type SlotPlan struct {
	// Planned are the entanglement paths identified by EPI.
	Planned []PlannedPath
	// Provisioned is the subset D for which ESC reserved full resources.
	Provisioned []PlannedPath
	// Attempts is the creation plan {x^k_uv}.
	Attempts qnet.AttemptPlan
}

// PlanSlot runs EPI + ESC and returns the slot plan. The protocol layer
// uses it to drive the distributed execution; RunSlot uses it directly.
func (e *Engine) PlanSlot(rng *rand.Rand) (*SlotPlan, error) {
	planned := e.identifyPaths(rng)
	plan, provisioned, err := e.createSegmentsPlan(planned)
	if err != nil {
		return nil, err
	}
	return &SlotPlan{Planned: planned, Provisioned: provisioned, Attempts: plan}, nil
}

// RunSlot simulates one time slot. The rng drives EPI rounding, the
// physical phase and swapping; a fixed rng state reproduces the slot
// exactly (tracers observe outcomes but never consume randomness).
func (e *Engine) RunSlot(rng *rand.Rand) (*sched.SlotResult, error) {
	tr := e.tracer
	// Tracer-only work (per-event callbacks and the sort feeding the
	// reservation events) is skipped entirely under a no-op tracer; the
	// rng stream is identical either way, so traced and bare runs of the
	// same seed produce the same slot.
	traced := !sched.IsNop(tr)
	tr.SlotStart(e.opts.Algorithm)
	res := &sched.SlotResult{
		LPObjective: e.LP.Objective,
		PerPair:     make([]int, len(e.Pairs)),
	}

	// Chaos: advance the injector's slot clock. With a nil or zero-plan
	// injector fm stays nil and every fault check below short-circuits, so
	// the slot is byte-identical to a run without the chaos layer.
	var fm qnet.FaultModel
	faultsBefore := 0
	var countsBefore chaos.Counts
	if e.opts.Chaos.Active() {
		countsBefore = e.opts.Chaos.Counts()
		e.opts.Chaos.BeginSlot()
		faultsBefore = e.opts.Chaos.Counts().Total()
		fm = e.opts.Chaos
	}
	if e.opts.ForecastAvoided > 0 {
		tr.Incident(sched.IncidentForecastAvoid, e.opts.ForecastAvoided)
	}

	// Cross-slot state: age out banked segments, then withdraw the
	// survivors for this slot. Every bank interaction is gated on the bank
	// being attached, so the disabled path is untouched.
	var withdrawn []*qnet.Segment
	if e.bank != nil {
		if expired, decohered := e.bank.BeginSlot(); expired+decohered > 0 {
			tr.Incident(sched.IncidentBankDecohered, expired+decohered)
		}
		if withdrawn = e.bank.WithdrawAll(); len(withdrawn) > 0 {
			tr.Incident(sched.IncidentBankWithdraw, len(withdrawn))
		}
	}

	// Step i: EPI identifies entanglement paths. With carry-aware pricing
	// enabled and banked inventory in hand, the slot rounds over a
	// re-priced LP whose columns prefer the carried segments; otherwise it
	// rounds over the construction-time optimum as always.
	t0 := time.Now()
	lp := e.LP
	if e.opts.CarryAwareLP && len(withdrawn) > 0 {
		if sol := e.carryAwareSolve(withdrawn); sol != nil {
			lp = sol
		}
	}
	planned := e.identifyPathsLP(lp, rng)
	res.PlannedPaths = len(planned)
	if traced {
		for _, p := range planned {
			tr.PathPlanned(p.Commodity, len(p.Hops))
		}
	}
	tr.PhaseDone(sched.PhasePlan, time.Since(t0))

	// Step ii: ESC reserves the segment-creation attempts. RunSlot reuses
	// the engine's slot scratch (ledger, coverage tables, attempt plan);
	// PlanSlot allocates fresh because its plan escapes to the caller.
	t0 = time.Now()
	sc := e.scratch()
	plan, provisioned, err := e.createSegmentsPlanScratch(planned, sc)
	if err != nil {
		return nil, err
	}
	res.ProvisionedPaths = len(provisioned)
	// Carried segments substitute for planned creation attempts on their
	// endpoint pair, shrinking this slot's reservation demand; the bank's
	// policy can refuse substitution by segments decayed below its
	// minimum Werner scale.
	plan, _ = e.bank.TrimPlan(plan, withdrawn)
	res.Attempts = plan.TotalAttempts()
	if traced {
		for _, p := range provisioned {
			tr.PathProvisioned(p.Commodity)
		}
		for _, c := range plan.SortedCandidates() {
			tr.AttemptReserved(c.U(), c.V(), plan[c])
		}
	}
	tr.PhaseDone(sched.PhaseReserve, time.Since(t0))

	// Physical phase — attempts succeed i.i.d.
	t0 = time.Now()
	var attemptObs qnet.AttemptObserver
	if traced {
		attemptObs = func(c *segment.Candidate, ok bool) {
			tr.AttemptResolved(c.U(), c.V(), ok)
		}
	}
	created := qnet.AttemptAllFaultyScratch(plan, rng, fm, attemptObs, &sc.att)
	res.SegmentsCreated = len(created)
	// Memory decoherence loses realized segments before the stitch phase;
	// SegmentsCreated still reconciles with the created=true attempt
	// events, the survivors are what ECE gets to work with.
	created, _ = qnet.ApplyDecoherence(created, fm)
	if fm != nil {
		// Attribute the slot's damage: brownout denials and flap downs get
		// their own incident kinds, the rest of the physical-phase delta
		// stays IncidentFault (flap downs are counted by BeginSlot, before
		// the faultsBefore snapshot, so they never leak into it).
		da := e.opts.Chaos.Counts().Sub(countsBefore)
		if d := e.opts.Chaos.Counts().Total() - faultsBefore - da.BrownoutAttemptsLost; d > 0 {
			tr.Incident(sched.IncidentFault, d)
		}
		if da.FlapSlotsDown > 0 {
			tr.Incident(sched.IncidentFlap, da.FlapSlotsDown)
		}
		if da.BrownoutAttemptsLost > 0 {
			tr.Incident(sched.IncidentBrownout, da.BrownoutAttemptsLost)
		}
	}
	tr.PhaseDone(sched.PhasePhysical, time.Since(t0))

	// Steps iii–iv: ECE assembles connections from realized segments,
	// sampling swaps as it goes; failed swaps consume segments but spare
	// (redundant) segments allow further attempts. Withdrawn carried
	// segments join the pool ahead of the fresh ones so the oldest photons
	// are consumed preferentially.
	t0 = time.Now()
	slotSegs := append(withdrawn, created...)
	if sc.pool == nil {
		sc.pool = qnet.NewPool(slotSegs)
	} else {
		sc.pool.Reset(slotSegs)
	}
	pool := sc.pool
	conns, attempts, floorRejected := e.establishFromPoolScratch(provisioned, pool, rng, sc)
	res.Assembled = attempts
	res.FloorRejected = floorRejected

	for _, c := range conns {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("core: invalid connection assembled: %w", err)
		}
		res.Established++
		res.PerPair[c.Pair]++
		res.Connections = append(res.Connections, c)
	}
	// Cross-slot state: bank the slot's unconsumed leftovers (fresh and
	// re-deposited carried segments alike) for the next slot, within each
	// node's memory budget.
	if e.bank != nil {
		if accepted := e.bank.Deposit(pool.Unconsumed()); accepted > 0 {
			tr.Incident(sched.IncidentBankDeposit, accepted)
		}
	}
	tr.PhaseDone(sched.PhaseStitch, time.Since(t0))
	tr.SlotEnd(res)
	return res, nil
}

// carryAwareSolve re-prices the LP with the slot's banked inventory folded
// into column pricing: every withdrawn segment adds its decayed Werner
// quality to its endpoint pair's edge weight, so pricing sees segment
// edges already covered by high-fidelity carried photons as cheaper (see
// flow.Options.CarryWeights). A failed solve falls back to the
// construction-time LP rather than failing the slot.
func (e *Engine) carryAwareSolve(withdrawn []*qnet.Segment) *flow.Solution {
	weights := make([]float64, len(e.Set.EdgePairs))
	for i := range weights {
		weights[i] = 1
	}
	any := false
	for _, s := range withdrawn {
		id, ok := e.Set.EdgeOf[segment.MakePairKey(s.A, s.B)]
		if !ok {
			continue
		}
		weights[id] += s.WernerScale()
		any = true
	}
	if !any {
		return nil
	}
	fo := e.opts.Flow
	fo.CarryWeights = weights
	fo.Arena = &e.carryArena
	sol, err := flow.SolveCtx(nil, e.Set, fo)
	if err != nil {
		return nil
	}
	return sol
}

// AttachBank implements sched.Stateful: it installs the cross-slot segment
// bank (nil detaches, restoring memoryless behavior).
func (e *Engine) AttachBank(b *state.Bank) { e.bank = b }

// Bank implements sched.Stateful.
func (e *Engine) Bank() *state.Bank { return e.bank }

// Algorithm returns the scheme label (sched.SEE unless overridden by
// Options.Algorithm, e.g. by the E2E restriction).
func (e *Engine) Algorithm() sched.Algorithm { return e.opts.Algorithm }

// UpperBound returns the LP objective, an upper bound on the expected
// number of connections SEE can establish per slot.
func (e *Engine) UpperBound() float64 { return e.LP.Objective }
