package core

import (
	"math"
	"math/rand"

	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/segment"
)

// Auxiliary-graph weights from Algorithm 3.
const (
	eceAvailableWeight = 1e-5
	eceMissingWeight   = 1e9
	// eceRejectThreshold rejects any path that traverses a missing
	// segment: a usable path costs at most hops·1e-5 + Σ(−ln q), far
	// below 1e8 for any q the simulator produces.
	eceRejectThreshold = 1e8
)

// establishConnections implements Algorithm 3 (ECE) with in-slot swap
// sampling. First it satisfies provisioned paths whose segments all
// realized; then it greedily builds extra connections for under-served SD
// pairs from leftover segments via repeated shortest path on the auxiliary
// graph (node weight −ln q_u, edge weight 1e-5 when a segment is available,
// 1e9 otherwise).
//
// Swapping is sampled as each connection is assembled: a failed swap
// consumes the connection's segments but leaves the SD pair eligible, so
// redundant segments — which the provisioning LP paid for through the
// √(q_u·q_v) apportioning of constraint (1d) — back up swap failures. This
// is what makes redundant provisioning compensate swapping losses (and it
// is the only reading under which the paper's Fig. 5 scaling and the
// SEE→E2E convergence at low q are reproducible).
//
// It returns the established connections and the number of assembly
// attempts (established + swap-failed).
func (e *Engine) establishConnections(provisioned []PlannedPath, created []*qnet.Segment, rng *rand.Rand) (established []*qnet.Connection, attempts int) {
	established, attempts, _ = e.establishFromPoolScratch(provisioned, qnet.NewPool(created), rng, nil)
	return established, attempts
}

// establishFromPool is establishConnections over a caller-built pool. The
// carry-over path uses it so the pool can mix withdrawn (carried) segments
// with the slot's fresh ones and so the engine can deposit the pool's
// unconsumed leftovers into the state bank afterwards.
func (e *Engine) establishFromPool(provisioned []PlannedPath, pool *qnet.Pool, rng *rand.Rand) (established []*qnet.Connection, attempts int) {
	established, attempts, _ = e.establishFromPoolScratch(provisioned, pool, rng, nil)
	return established, attempts
}

// establishFromPoolScratch is establishFromPool over an optional slot
// scratch: the per-pair counters, the auxiliary stitch graph and the
// Dijkstra buffers are recycled across slots, and the per-pair queries run
// the early-stop targeted Dijkstra (identical result, less work). The
// established connections are always freshly allocated — they outlive the
// slot.
func (e *Engine) establishFromPoolScratch(provisioned []PlannedPath, pool *qnet.Pool, rng *rand.Rand, sc *slotScratch) (established []*qnet.Connection, attempts, floorRejected int) {
	var perPair []int
	if sc != nil {
		perPair = sc.perPair
		clear(perPair)
	} else {
		perPair = make([]int, len(e.Pairs))
	}
	var out []*qnet.Connection
	tr := e.tracer
	swapObs := qnet.SwapObserver(tr.SwapResolved)
	fp := qnet.NewFloorPolicy(e.opts.FidelityFloors, e.Net)
	var floorDead []bool // provisioned paths proven unable to meet their floor

	// Lines 2–6: assign realized segments to provisioned paths. The pass
	// repeats while it makes progress so that redundant segments retry a
	// path whose swap failed (or establish a second connection over it).
	for {
		phaseAProgress := false
		for pi, p := range provisioned {
			if perPair[p.Commodity] >= e.ConnCap[p.Commodity] {
				continue
			}
			if floorDead != nil && floorDead[pi] {
				continue
			}
			ok := true
			for _, hop := range p.Hops {
				if pool.Available(hop.Pair) < 1 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			conn := &qnet.Connection{Pair: p.Commodity, Nodes: p.Nodes}
			for _, hop := range p.Hops {
				seg := fp.Take(pool, p.Commodity, hop.Pair)
				conn.Segments = append(conn.Segments, seg)
			}
			if fp.Rejects(p.Commodity, conn.Segments) {
				for _, s := range conn.Segments {
					pool.Return(s)
				}
				if floorDead == nil {
					floorDead = make([]bool, len(provisioned))
				}
				floorDead[pi] = true
				floorRejected++
				tr.Incident(sched.IncidentFloorReject, 1)
				continue
			}
			attempts++
			phaseAProgress = true
			ok = conn.EstablishOrderedObserved(e.Net, pool, rng, swapObs, e.opts.SwapOrder)
			tr.ConnectionAssembled(p.Commodity, ok)
			if ok {
				out = append(out, conn)
				perPair[p.Commodity]++
			}
		}
		if !phaseAProgress {
			break
		}
	}

	// Lines 7–15: auxiliary graph over realized segments.
	aux, auxPairs := e.buildAuxGraph(pool, sc)
	nodeWeight := func(u int) float64 {
		q := e.Net.SwapProb[u]
		if q <= 0 {
			return eceMissingWeight
		}
		return -math.Log(q)
	}
	edgeWeight := func(id int, _ float64) float64 {
		if pool.Available(auxPairs[id]) >= 1 {
			return eceAvailableWeight
		}
		return eceMissingWeight
	}
	var dij *graph.DijkstraScratch
	if sc != nil {
		dij = &sc.dij
	}

	var floorDeadPair []bool // pairs whose best aux route missed the floor
	for {
		progress := false
		for i, sd := range e.Pairs {
			if perPair[i] >= e.ConnCap[i] {
				continue
			}
			if floorDeadPair != nil && floorDeadPair[i] {
				continue
			}
			path, dist := graph.ShortestPathTarget(aux, sd.S, sd.D, graph.DijkstraOptions{
				NodeWeight: nodeWeight,
				EdgeWeight: edgeWeight,
			}, dij)
			if path == nil || dist >= eceRejectThreshold {
				continue
			}
			conn := &qnet.Connection{Pair: i, Nodes: path}
			for h := 0; h+1 < len(path); h++ {
				seg := fp.Take(pool, i, segment.MakePairKey(path[h], path[h+1]))
				if seg == nil {
					// Unreachable if weights are consistent; roll back.
					for _, s := range conn.Segments {
						pool.Return(s)
					}
					conn = nil
					break
				}
				conn.Segments = append(conn.Segments, seg)
			}
			if conn == nil {
				continue
			}
			if fp.Rejects(i, conn.Segments) {
				for _, s := range conn.Segments {
					pool.Return(s)
				}
				if floorDeadPair == nil {
					floorDeadPair = make([]bool, len(e.Pairs))
				}
				floorDeadPair[i] = true
				floorRejected++
				tr.Incident(sched.IncidentFloorReject, 1)
				continue
			}
			attempts++
			progress = true
			ok := conn.EstablishOrderedObserved(e.Net, pool, rng, swapObs, e.opts.SwapOrder)
			tr.ConnectionAssembled(i, ok)
			if ok {
				out = append(out, conn)
				perPair[i]++
			}
		}
		if !progress {
			return out, attempts, floorRejected
		}
	}
}

// buildAuxGraph returns a graph with one edge per endpoint pair that has at
// least one realized segment, plus the pair keyed by edge ID. With a
// non-nil scratch the graph and the pair table are rebuilt in place over
// the previous slot's backing arrays.
func (e *Engine) buildAuxGraph(pool *qnet.Pool, sc *slotScratch) (*graph.Graph, []segment.PairKey) {
	var g *graph.Graph
	var auxPairs []segment.PairKey
	if sc != nil {
		g = sc.aux
		g.Reset()
		auxPairs = sc.auxPairs[:0]
	} else {
		g = graph.New(e.Net.NumNodes())
	}
	pairs := pool.Pairs()
	if auxPairs == nil {
		auxPairs = make([]segment.PairKey, 0, len(pairs))
	}
	for _, pk := range pairs {
		g.AddEdge(pk.U, pk.V, eceAvailableWeight)
		auxPairs = append(auxPairs, pk)
	}
	if sc != nil {
		sc.auxPairs = auxPairs
	}
	return g, auxPairs
}
