package core

import (
	"fmt"
	"math"
	"testing"

	"see/internal/flow"
	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

func motivationEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	net, pairs := topo.Motivation()
	e, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	net, pairs := topo.Motivation()
	if _, err := NewEngine(nil, pairs, DefaultOptions()); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewEngine(net, nil, DefaultOptions()); err == nil {
		t.Fatal("empty pairs accepted")
	}
}

func TestEngineSolvesLPOnce(t *testing.T) {
	e := motivationEngine(t, DefaultOptions())
	if e.LP.Objective <= 0 {
		t.Fatalf("LP objective = %v, want > 0", e.LP.Objective)
	}
	if e.UpperBound() != e.LP.Objective {
		t.Fatal("UpperBound must return the LP objective")
	}
	if len(e.ConnCap) != 2 || e.ConnCap[0] != 1 || e.ConnCap[1] != 1 {
		t.Fatalf("ConnCap = %v, want [1 1] (min endpoint memory)", e.ConnCap)
	}
}

func TestRunSlotDeterministicPerSeed(t *testing.T) {
	e := motivationEngine(t, DefaultOptions())
	a, err := e.RunSlot(xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunSlot(xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Established != b.Established || a.SegmentsCreated != b.SegmentsCreated ||
		a.PlannedPaths != b.PlannedPaths || a.Attempts != b.Attempts {
		t.Fatalf("slot not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunSlotInvariants(t *testing.T) {
	e := motivationEngine(t, DefaultOptions())
	for seed := int64(0); seed < 200; seed++ {
		res, err := e.RunSlot(xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Established > res.Assembled {
			t.Fatal("established > assembled")
		}
		if res.ProvisionedPaths > res.PlannedPaths {
			t.Fatal("provisioned > planned")
		}
		if res.SegmentsCreated > res.Attempts {
			t.Fatal("created > attempts")
		}
		sum := 0
		for i, c := range res.PerPair {
			if c > e.ConnCap[i] {
				t.Fatalf("pair %d exceeded ConnCap: %d > %d", i, c, e.ConnCap[i])
			}
			sum += c
		}
		if sum != res.Established {
			t.Fatal("PerPair does not sum to Established")
		}
		for _, conn := range res.Connections {
			if err := conn.Validate(); err != nil {
				t.Fatal(err)
			}
			sd := e.Pairs[conn.Pair]
			if conn.Nodes[0] != sd.S || conn.Nodes[len(conn.Nodes)-1] != sd.D {
				t.Fatalf("connection endpoints %v for pair %+v", conn.Nodes, sd)
			}
		}
	}
}

// Each realized segment must be consumed by at most one connection.
func TestRunSlotNoSegmentDoubleUse(t *testing.T) {
	e := motivationEngine(t, DefaultOptions())
	for seed := int64(0); seed < 100; seed++ {
		res, err := e.RunSlot(xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[*qnet.Segment]bool)
		for _, conn := range res.Connections {
			for _, s := range conn.Segments {
				if seen[s] {
					t.Fatal("segment used by two connections")
				}
				seen[s] = true
			}
		}
	}
}

// The motivation fixture: mean throughput must clearly beat the
// conventional optimum (0.729) and stay below the SEE plan's ideal 1.489.
func TestMotivationThroughputBand(t *testing.T) {
	e := motivationEngine(t, DefaultOptions())
	rng := xrand.New(42)
	const slots = 4000
	total := 0
	for i := 0; i < slots; i++ {
		res, err := e.RunSlot(rng)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Established
	}
	mean := float64(total) / slots
	if mean < 0.85 {
		t.Fatalf("mean throughput %.3f; want > 0.85 (conventional optimum is 0.729)", mean)
	}
	if mean > 1.489+1e-9 {
		t.Fatalf("mean throughput %.3f exceeds the ideal plan value 1.489", mean)
	}
}

func TestStrictProvisioningDropsUncoverablePaths(t *testing.T) {
	// With 1 channel per link and p < 1, strict ESC can never reach
	// expected coverage >= 1, so nothing is provisioned.
	opts := DefaultOptions()
	opts.StrictProvisioning = true
	e := motivationEngine(t, opts)
	res, err := e.RunSlot(xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvisionedPaths != 0 || res.Attempts != 0 {
		t.Fatalf("strict mode provisioned %d paths with %d attempts on a 1-channel fixture",
			res.ProvisionedPaths, res.Attempts)
	}
}

func TestOrderPaths(t *testing.T) {
	mk := func(commodity, segs, phys int) PlannedPath {
		hops := make([]flow.SegHop, segs)
		return PlannedPath{Commodity: commodity, Hops: hops, PhysHops: phys}
	}
	in := []PlannedPath{
		mk(1, 2, 4), mk(0, 1, 3), mk(1, 1, 2), mk(0, 1, 2), mk(0, 1, 2),
	}
	got := orderPaths(in)
	// Class (1 seg, 2 hops): round robin over commodities 0,1 ->
	// c0, c1, c0. Then (1,3): c0. Then (2,4): c1.
	wantSegs := []int{1, 1, 1, 1, 2}
	wantComm := []int{0, 1, 0, 0, 1}
	for i := range got {
		if len(got[i].Hops) != wantSegs[i] || got[i].Commodity != wantComm[i] {
			t.Fatalf("position %d: got commodity %d with %d segs; want %d/%d",
				i, got[i].Commodity, len(got[i].Hops), wantComm[i], wantSegs[i])
		}
	}
}

// A perfect network (p = q = 1) with ample resources must deterministically
// establish the ConnCap for the single pair.
func TestRunSlotPerfectNetwork(t *testing.T) {
	net := perfectLine(5, 4, 8)
	pairs := []topo.SDPair{{S: 0, D: 4}}
	e, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunSlot(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Established != 4 {
		t.Fatalf("established = %d, want 4 (channel bound) — result %+v", res.Established, res)
	}
}

// perfectLine builds a line network with p = q = 1.
func perfectLine(n, channels, memory int) *topo.Network {
	net := &topo.Network{
		G:        graph.New(n),
		Pos:      make([][2]float64, n),
		Memory:   make([]int, n),
		SwapProb: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		net.Pos[i] = [2]float64{float64(i) * 100, 0}
		net.Memory[i] = memory
		net.SwapProb[i] = 1
	}
	for i := 0; i+1 < n; i++ {
		net.G.AddEdge(i, i+1, 100)
		net.LinkLen = append(net.LinkLen, 100)
		net.Channels = append(net.Channels, channels)
	}
	net.SetProber(topo.ExpProber{Alpha: 0})
	return net
}

// Failure injection: a node with zero memory on the only route blocks
// provisioning entirely.
func TestRunSlotZeroMemoryEndpoint(t *testing.T) {
	net := perfectLine(3, 2, 4)
	net.Memory[0] = 0 // source cannot store its Bell photon
	pairs := []topo.SDPair{{S: 0, D: 2}}
	e, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunSlot(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Established != 0 || res.Attempts != 0 {
		t.Fatalf("zero-memory source still established %d with %d attempts", res.Established, res.Attempts)
	}
}

func TestRunSlotRandomNetworkInvariants(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 40
	net, err := topo.Generate(cfg, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 5, xrand.New(12))
	opts := DefaultOptions()
	opts.Segment.KPaths = 3
	e, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(13)
	var totalEstablished int
	for slot := 0; slot < 30; slot++ {
		res, err := e.RunSlot(rng)
		if err != nil {
			t.Fatal(err)
		}
		totalEstablished += res.Established
		// Established count is bounded by the LP value only in
		// expectation, but it can never exceed the total planned paths
		// plus opportunistic extras bounded by ConnCap.
		capSum := 0
		for _, c := range e.ConnCap {
			capSum += c
		}
		if res.Established > capSum {
			t.Fatalf("established %d > ConnCap sum %d", res.Established, capSum)
		}
	}
	if totalEstablished == 0 {
		t.Fatal("40-node network established nothing in 30 slots")
	}
}

// ESC must never overdraw resources even under adversarial candidate
// overlap; run many seeds and rely on ledger.Validate inside the engine.
func TestESCLedgerNeverOverdraws(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 30
	cfg.Channels = 2
	cfg.Memory = 3
	net, err := topo.Generate(cfg, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 6, xrand.New(22))
	e, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 60; seed++ {
		planned := e.identifyPaths(xrand.New(seed))
		plan, provisioned, err := e.createSegmentsPlan(planned)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Recompute usage from the plan and check against raw capacity.
		chanUse := make(map[int]int)
		memUse := make(map[int]int)
		for cand, n := range plan {
			for _, eid := range cand.EdgeIDs {
				chanUse[eid] += n
			}
			memUse[cand.Path[0]] += n
			memUse[cand.Path[len(cand.Path)-1]] += n
		}
		for eid, u := range chanUse {
			if u > net.Channels[eid] {
				t.Fatalf("seed %d: link %d overdrawn %d > %d", seed, eid, u, net.Channels[eid])
			}
		}
		for node, u := range memUse {
			if u > net.Memory[node] {
				t.Fatalf("seed %d: node %d memory overdrawn %d > %d", seed, node, u, net.Memory[node])
			}
		}
		if len(provisioned) > len(planned) {
			t.Fatal("provisioned more than planned")
		}
	}
}

func TestFullPathOnlyEngineActsAsE2E(t *testing.T) {
	opts := DefaultOptions()
	opts.Segment.FullPathOnly = true
	e := motivationEngine(t, opts)
	for seed := int64(0); seed < 50; seed++ {
		res, err := e.RunSlot(xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, conn := range res.Connections {
			if len(conn.Segments) != 1 {
				t.Fatalf("E2E-style engine assembled a multi-segment connection: %v", conn.Nodes)
			}
		}
	}
}

func TestEstablishConnectionsUsesLeftovers(t *testing.T) {
	// No provisioned paths, but realized segments exist: phase B must
	// still build connections.
	e := motivationEngine(t, DefaultOptions())
	s2d2 := e.Set.Best(topo.MotivS2, topo.MotivD2)
	segs := []*qnet.Segment{{A: s2d2.U(), B: s2d2.V(), Cand: s2d2}}
	conns, attempts := e.establishConnections(nil, segs, xrand.New(1))
	if len(conns) != 1 || attempts != 1 {
		t.Fatalf("assembled %d connections from leftovers, want 1", len(conns))
	}
	if conns[0].Pair != 1 {
		t.Fatalf("connection assigned to pair %d, want 1 (s2,d2)", conns[0].Pair)
	}
}

func TestEstablishConnectionsPrefersHighSwapJunctions(t *testing.T) {
	// Diamond: s can reach d via junction a (higher q) or junction b
	// (lower q). With one segment each, the ECE shortest path must pick a
	// first. Swap probabilities are kept ≈1 so the in-slot swap sampling
	// cannot make the outcome flaky while −ln q still orders the routes.
	net := &topo.Network{
		G:        graph.New(4),
		Pos:      make([][2]float64, 4),
		Memory:   []int{4, 4, 4, 4},
		SwapProb: []float64{1, 1 - 1e-9, 1 - 1e-6, 1}, // s, a, b, d
	}
	for _, l := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		net.G.AddEdge(l[0], l[1], 100)
		net.LinkLen = append(net.LinkLen, 100)
		net.Channels = append(net.Channels, 2)
	}
	net.SetProber(topo.ExpProber{Alpha: 0})
	pairs := []topo.SDPair{{S: 0, D: 3}}
	e, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(a, b int) *qnet.Segment {
		c := e.Set.Best(a, b)
		if c == nil {
			t.Fatalf("no candidate %d-%d", a, b)
		}
		return &qnet.Segment{A: c.U(), B: c.V(), Cand: c}
	}
	segs := []*qnet.Segment{mk(0, 1), mk(1, 3), mk(0, 2), mk(2, 3)}
	conns, attempts := e.establishConnections(nil, segs, xrand.New(5))
	// ConnCap is 4, so ECE keeps going: first the high-q route, then the
	// low-q leftovers.
	if len(conns) != 2 || attempts != 2 {
		t.Fatalf("assembled %d connections in %d attempts, want 2/2", len(conns), attempts)
	}
	if !conns[0].Nodes.Equal(graph.Path{0, 1, 3}) {
		t.Fatalf("ECE chose %v first, want the high-q junction path [0 1 3]", conns[0].Nodes)
	}
	if math.Abs(conns[0].SuccessProb(net)-(1-1e-9)) > 1e-12 {
		t.Fatalf("success prob = %v, want ~1", conns[0].SuccessProb(net))
	}
	if !conns[1].Nodes.Equal(graph.Path{0, 2, 3}) {
		t.Fatalf("second connection %v, want [0 2 3]", conns[1].Nodes)
	}
}

func TestSegmentSetRespectsOptionsThroughEngine(t *testing.T) {
	opts := DefaultOptions()
	opts.Segment.MaxSegmentHops = 1
	e := motivationEngine(t, opts)
	for _, list := range e.Set.ByPair {
		for _, c := range list {
			if c.Hops() != 1 {
				t.Fatal("hop cap leaked through engine options")
			}
		}
	}
	_ = segment.DefaultOptions()
}

// Theorem 2's premise: EPI's rounding preserves the LP expectation —
// E[#planned connections for pair i] = T_i.
func TestEPIPlannedExpectationMatchesLP(t *testing.T) {
	e := motivationEngine(t, DefaultOptions())
	const rounds = 30000
	counts := make([]float64, len(e.Pairs))
	rng := xrand.New(99)
	for r := 0; r < rounds; r++ {
		for _, p := range e.identifyPaths(rng) {
			counts[p.Commodity]++
		}
	}
	for i := range e.Pairs {
		got := counts[i] / rounds
		want := e.LP.PerCommodity[i]
		if math.Abs(got-want) > 0.02+0.05*want {
			t.Fatalf("pair %d: mean planned %.4f, LP flow %.4f", i, got, want)
		}
	}
}

// EPI paths must be sampled proportionally to LP path flows: every LP path
// with meaningful flow should eventually appear.
func TestEPISamplesAllPositiveFlowPaths(t *testing.T) {
	e := motivationEngine(t, DefaultOptions())
	seen := make(map[string]bool)
	rng := xrand.New(5)
	for r := 0; r < 5000; r++ {
		for _, p := range e.identifyPaths(rng) {
			seen[fmt.Sprintf("%d:%v", p.Commodity, p.Nodes)] = true
		}
	}
	for _, pf := range e.LP.Paths {
		if pf.Flow < 0.05 {
			continue
		}
		key := fmt.Sprintf("%d:%v", pf.Commodity, pf.Nodes)
		if !seen[key] {
			t.Fatalf("LP path %s with flow %.3f never sampled", key, pf.Flow)
		}
	}
}

// ESC invariant: in default (best-effort) mode, every provisioned path's
// hop has at least as many attempts as its demand; in strict mode the
// expected coverage must also reach the demand.
func TestESCCoverageInvariant(t *testing.T) {
	for _, strict := range []bool{false, true} {
		cfg := topo.DefaultConfig()
		cfg.Nodes = 40
		net, err := topo.Generate(cfg, xrand.New(31))
		if err != nil {
			t.Fatal(err)
		}
		pairs := topo.ChooseSDPairs(net, 6, xrand.New(32))
		opts := DefaultOptions()
		opts.StrictProvisioning = strict
		e, err := NewEngine(net, pairs, opts)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 20; seed++ {
			planned := e.identifyPaths(xrand.New(seed))
			plan, provisioned, err := e.createSegmentsPlan(planned)
			if err != nil {
				t.Fatal(err)
			}
			demand := map[segment.PairKey]int{}
			for _, p := range provisioned {
				for _, hop := range p.Hops {
					demand[hop.Pair]++
				}
			}
			attempts := map[segment.PairKey]int{}
			expected := map[segment.PairKey]float64{}
			for cand, n := range plan {
				pk := segment.MakePairKey(cand.Path[0], cand.Path[len(cand.Path)-1])
				attempts[pk] += n
				expected[pk] += float64(n) * cand.Prob
			}
			for pk, d := range demand {
				if attempts[pk] < d {
					t.Fatalf("strict=%v seed %d: pair %+v has %d attempts for demand %d",
						strict, seed, pk, attempts[pk], d)
				}
				if strict && expected[pk] < float64(d)-1e-9 {
					t.Fatalf("strict seed %d: pair %+v expected coverage %.3f < demand %d",
						seed, pk, expected[pk], d)
				}
			}
		}
	}
}

// At q = 1 with ample redundancy, SEE's established count should track the
// LP bound closely on average (the LP is exact when nothing fails).
func TestSEETracksLPBoundAtQ1(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 50
	cfg.SwapProb = 1
	cfg.Alpha = 1e-9 // p ~= 1 (plus noise)
	cfg.Delta = 0
	net, err := topo.Generate(cfg, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 5, xrand.New(42))
	e, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(43)
	total := 0
	const slots = 50
	for s := 0; s < slots; s++ {
		res, err := e.RunSlot(rng)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Established
	}
	mean := float64(total) / slots
	if mean < 0.85*e.LP.Objective {
		t.Fatalf("perfect network mean %.2f far below LP bound %.2f", mean, e.LP.Objective)
	}
}

// Diagnostic: for a single SD pair at q = 1, the connections ECE assembles
// are bounded by the max flow of the realized-segment availability graph,
// and greedy shortest-path selection should reach a solid fraction of it.
func TestECEAgainstMaxFlowBound(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 30
	cfg.SwapProb = 1
	net, err := topo.Generate(cfg, xrand.New(51))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 1, xrand.New(52))
	e, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	achievedTotal, boundTotal := 0, 0
	for seed := int64(0); seed < 25; seed++ {
		rng := xrand.New(seed)
		planned := e.identifyPaths(rng)
		plan, provisioned, err := e.createSegmentsPlan(planned)
		if err != nil {
			t.Fatal(err)
		}
		created := qnet.AttemptAll(plan, rng)
		// Max-flow bound over realized segment multiplicities.
		counts := map[segment.PairKey]int{}
		for _, s := range created {
			counts[s.Pair()]++
		}
		mf := graph.NewMaxFlow(net.NumNodes())
		for pk, c := range counts {
			mf.AddUndirected(pk.U, pk.V, c)
		}
		bound := mf.Solve(pairs[0].S, pairs[0].D)
		if bound > e.ConnCap[0] {
			bound = e.ConnCap[0]
		}
		conns, attempts := e.establishConnections(provisioned, created, rng)
		if attempts > 0 && len(conns) != attempts {
			t.Fatalf("seed %d: q=1 but %d of %d assemblies failed", seed, attempts-len(conns), attempts)
		}
		if len(conns) > bound {
			t.Fatalf("seed %d: ECE assembled %d > max-flow bound %d", seed, len(conns), bound)
		}
		achievedTotal += len(conns)
		boundTotal += bound
	}
	if boundTotal == 0 {
		t.Skip("no realized segments across seeds")
	}
	if frac := float64(achievedTotal) / float64(boundTotal); frac < 0.6 {
		t.Fatalf("ECE achieved only %.0f%% of the max-flow bound on average", frac*100)
	}
}
