package core

import (
	"see/internal/flow"
	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/segment"
)

// slotScratch holds the per-slot reusable buffers of the RunSlot pipeline.
// One instance lives on the Engine and is recycled every slot, so the
// steady-state slot loop performs no ledger/map/graph re-allocation. The
// arena lifetime rule (DESIGN.md §9): scratch may only hold state that is
// dead by slot end — anything that can outlive the slot (realized
// segments, connections, the attempt plan handed out by PlanSlot) is
// allocated fresh. PlanSlot therefore runs with a nil scratch.
type slotScratch struct {
	// ESC: reservation ledger (Reset per slot) and coverage tables.
	ledger   *qnet.Ledger
	plan     qnet.AttemptPlan
	expected map[segment.PairKey]float64
	demand   map[segment.PairKey]int
	attempts map[segment.PairKey]int
	keys     []segment.PairKey
	escPre   []escCandidate

	// Physical phase: candidate ordering buffer.
	att qnet.AttemptScratch

	// ECE: segment pool, per-pair counters, auxiliary stitch graph and the
	// targeted-Dijkstra buffers.
	pool     *qnet.Pool
	perPair  []int
	aux      *graph.Graph
	auxPairs []segment.PairKey
	dij      graph.DijkstraScratch
}

// escCandidate is one precomputed backup-provisioning choice: the best
// reservable candidate for a pair at round start and its index in the
// ByPair list (the optimistic parallel scan's serial-fallback start).
type escCandidate struct {
	cand *segment.Candidate
	idx  int
}

// scratch returns the engine's slot scratch, creating it on first use.
func (e *Engine) scratch() *slotScratch {
	if e.slot == nil {
		e.slot = &slotScratch{
			ledger:   qnet.NewLedgerWithCapacities(e.Net, e.opts.PlanChannels, e.opts.PlanMemory),
			plan:     make(qnet.AttemptPlan),
			expected: make(map[segment.PairKey]float64),
			demand:   make(map[segment.PairKey]int),
			attempts: make(map[segment.PairKey]int),
			perPair:  make([]int, len(e.Pairs)),
			aux:      graph.New(e.Net.NumNodes()),
		}
	}
	return e.slot
}

// epiTables returns the per-commodity path lists and sampling weights of
// the fixed LP solution, derived once on first use: the solution never
// changes after construction, so re-deriving them every slot (the old
// behavior) was pure allocation churn.
func (e *Engine) epiTables() ([][]flow.PathFlow, [][]float64) {
	if e.epiPaths == nil {
		e.epiPaths, e.epiWeights = deriveEpiTables(len(e.Pairs), e.LP)
	}
	return e.epiPaths, e.epiWeights
}

// deriveEpiTables groups a solution's paths by commodity and extracts the
// flow sampling weights. The fixed construction LP caches the result (see
// epiTables); the carry-aware per-slot re-solve derives slot-local tables.
func deriveEpiTables(numPairs int, sol *flow.Solution) ([][]flow.PathFlow, [][]float64) {
	paths := make([][]flow.PathFlow, numPairs)
	for _, pf := range sol.Paths {
		paths[pf.Commodity] = append(paths[pf.Commodity], pf)
	}
	weights := make([][]float64, numPairs)
	for i, list := range paths {
		if len(list) == 0 {
			continue
		}
		w := make([]float64, len(list))
		for j, pf := range list {
			w[j] = pf.Flow
		}
		weights[i] = w
	}
	return paths, weights
}
