package topo

import (
	"hash/fnv"
	"math"
)

// Fingerprint hashes the controller-visible content of a network — the
// adjacency structure plus every quantum resource and probability field —
// into a 64-bit FNV-1a digest. Two networks with equal fingerprints are,
// for planning purposes, the same network; any in-place mutation (a link
// re-provisioned, a node's memory resized, a swap probability recalibrated)
// changes the digest.
//
// The warm-start cache (internal/warm) records the fingerprint when it
// memoizes planning artifacts for a *Network and re-verifies it on every
// lookup, so mutating a network between scheduler builds forces a cold
// rebuild instead of silently replaying stale plans.
func Fingerprint(n *Network) uint64 {
	h := fnv.New64a()
	var buf [8]byte

	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	u64(uint64(n.G.N()))
	u64(uint64(n.G.NumEdgeIDs()))
	// Adjacency: every arc (u, e.To, e.ID, e.W) in deterministic order.
	for u := 0; u < n.G.N(); u++ {
		for _, e := range n.G.Neighbors(u) {
			u64(uint64(u))
			u64(uint64(e.To))
			u64(uint64(e.ID))
			f64(e.Weight)
		}
	}
	for _, p := range n.Pos {
		f64(p[0])
		f64(p[1])
	}
	for _, l := range n.LinkLen {
		f64(l)
	}
	for _, c := range n.Channels {
		u64(uint64(int64(c)))
	}
	for _, m := range n.Memory {
		u64(uint64(int64(m)))
	}
	for _, q := range n.SwapProb {
		f64(q)
	}
	return h.Sum64()
}
