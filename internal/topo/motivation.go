package topo

import (
	"math"

	"see/internal/graph"
)

// Node labels of the Fig. 2 motivation fixture.
const (
	MotivS1 = 0
	MotivS2 = 1
	MotivR1 = 2
	MotivR2 = 3
	MotivD1 = 4
	MotivD2 = 5
)

// MotivationAlpha is the attenuation parameter used by the fixture; link
// lengths are chosen so every single link has success probability 0.9.
const MotivationAlpha = 2e-4

// Motivation builds the Fig. 2 example network:
//
//	s1 ─ r1 ─ d2      links: (s1,r1) (s2,r1) (r1,d2) (r1,r2) (r2,d2) (r2,d1)
//	s2 ─ r1 ─ r2 ─ d1
//
// r1 and r2 have 2 units of memory, the other four nodes 1; every link has
// one channel; every link succeeds with probability 0.9 and every node swaps
// with probability 0.9. Multi-hop segment probabilities follow Fig. 2(b):
// the 2-hop segment s2→r1→d2 has probability 0.8, other 2-hop segments
// 0.85, 3-hop segments 0.75. The conventional optimum establishes
// 0.9³ = 0.729 expected connections; SEE establishes
// 0.8 + 0.9·0.85·0.9 = 1.489.
func Motivation() (*Network, []SDPair) {
	linkLen := -math.Log(0.9) / MotivationAlpha
	net := &Network{
		G:        graph.New(6),
		Pos:      make([][2]float64, 6),
		Memory:   []int{1, 1, 2, 2, 1, 1},
		SwapProb: []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.9},
	}
	// Rough layout for visualization only.
	net.Pos = [][2]float64{
		{0, 1000}, {0, 0}, {1000, 500}, {2000, 500}, {3000, 0}, {3000, 1000},
	}
	links := [][2]int{
		{MotivS1, MotivR1},
		{MotivS2, MotivR1},
		{MotivR1, MotivD2},
		{MotivR1, MotivR2},
		{MotivR2, MotivD2},
		{MotivR2, MotivD1},
	}
	for _, l := range links {
		net.G.AddEdge(l[0], l[1], linkLen)
		net.LinkLen = append(net.LinkLen, linkLen)
		net.Channels = append(net.Channels, 1)
	}
	table := map[string]float64{
		// 2-hop segments (Fig. 2(b)).
		Key(graph.Path{MotivS2, MotivR1, MotivD2}): 0.80,
		Key(graph.Path{MotivR1, MotivR2, MotivD1}): 0.85,
		Key(graph.Path{MotivR1, MotivR2, MotivD2}): 0.85,
		Key(graph.Path{MotivS2, MotivR1, MotivR2}): 0.85,
		Key(graph.Path{MotivS1, MotivR1, MotivR2}): 0.85,
		Key(graph.Path{MotivS1, MotivR1, MotivD2}): 0.85,
		Key(graph.Path{MotivS2, MotivR1, MotivD2}): 0.80,
		// 3-hop segments.
		Key(graph.Path{MotivS2, MotivR1, MotivR2, MotivD2}): 0.75,
		Key(graph.Path{MotivS2, MotivR1, MotivR2, MotivD1}): 0.75,
		Key(graph.Path{MotivS1, MotivR1, MotivR2, MotivD2}): 0.75,
		Key(graph.Path{MotivS1, MotivR1, MotivR2, MotivD1}): 0.75,
	}
	net.prober = TableProber{
		Table:    table,
		Fallback: ExpProber{Alpha: MotivationAlpha, Delta: 0},
	}
	pairs := []SDPair{
		{S: MotivS1, D: MotivD1},
		{S: MotivS2, D: MotivD2},
	}
	return net, pairs
}
