package topo

import (
	"strings"
	"testing"
)

// FuzzLoadEdgeList checks the edge-list parser on arbitrary input: it must
// never panic, and any network it accepts must satisfy the structural
// invariants (attribute table sizes, probability ranges, resource
// non-negativity) checked by Network.Validate.
func FuzzLoadEdgeList(f *testing.F) {
	for _, seed := range []string{
		"",
		"node 0 0 0\nnode 1 10 0\nlink 0 1\n",
		"node 0 0 0 5 0.8\nnode 1 3 4 7 0.9\nlink 0 1 5 2\n",
		"# comment\n\nnode 0 0 0\nnode 1 1 1 # trailing\nlink 0 1\n",
		"node 0 0 0\nlink 0 0\n",
		"node 1 0 0\n",
		"link 0 1\n",
		"node 0 0 0\nnode 1 0 0\nlink 0 1 -5\n",
		"node 0 0 0\nnode 1 0 0\nlink 0 2\n",
		"node 0 x y\n",
		"node 0 0 0 -1\n",
		"frob 1 2 3\n",
		"node 0 0 0 3 1.5\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		net, err := LoadEdgeList(strings.NewReader(data), ResourceDefaults{})
		if err != nil {
			return
		}
		if net == nil {
			t.Fatalf("LoadEdgeList accepted %q but returned nil network", data)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted network fails Validate: %v\ninput: %q", err, data)
		}
	})
}
