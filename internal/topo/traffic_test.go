package topo

import (
	"testing"

	"see/internal/xrand"
)

func trafficNet(t *testing.T) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 60
	net, err := Generate(cfg, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func assertDistinctPairs(t *testing.T, pairs []SDPair, want int) {
	t.Helper()
	if len(pairs) != want {
		t.Fatalf("got %d pairs, want %d", len(pairs), want)
	}
	seen := map[[2]int]struct{}{}
	for _, p := range pairs {
		if p.S == p.D {
			t.Fatal("degenerate pair")
		}
		key := [2]int{min(p.S, p.D), max(p.S, p.D)}
		if _, dup := seen[key]; dup {
			t.Fatal("duplicate pair")
		}
		seen[key] = struct{}{}
	}
}

func TestTrafficUniformDelegates(t *testing.T) {
	net := trafficNet(t)
	pairs := ChooseSDPairsWithTraffic(net, 10, TrafficConfig{}, xrand.New(1))
	assertDistinctPairs(t, pairs, 10)
}

func TestTrafficHotspot(t *testing.T) {
	net := trafficNet(t)
	cfg := TrafficConfig{Pattern: TrafficHotspot, HotspotFraction: 0.5, Hub: -1}
	pairs := ChooseSDPairsWithTraffic(net, 12, cfg, xrand.New(2))
	assertDistinctPairs(t, pairs, 12)
	// Find the auto-selected hub (highest degree) and count its pairs.
	hub := 0
	for u := 1; u < net.NumNodes(); u++ {
		if net.G.Degree(u) > net.G.Degree(hub) {
			hub = u
		}
	}
	hubCount := 0
	for _, p := range pairs {
		if p.S == hub || p.D == hub {
			hubCount++
		}
	}
	if hubCount < 6 {
		t.Fatalf("hub anchors only %d of 12 pairs, want >= 6", hubCount)
	}
	// Explicit hub respected.
	cfg.Hub = 3
	pairs = ChooseSDPairsWithTraffic(net, 8, cfg, xrand.New(3))
	anchored := 0
	for _, p := range pairs {
		if p.S == 3 || p.D == 3 {
			anchored++
		}
	}
	if anchored < 4 {
		t.Fatalf("explicit hub anchors %d of 8", anchored)
	}
}

func TestTrafficHotspotBudgetCap(t *testing.T) {
	// Tiny network: hub budget must cap at n-1 distinct hub pairs.
	net, _ := Motivation()
	cfg := TrafficConfig{Pattern: TrafficHotspot, HotspotFraction: 1.0, Hub: topo_MotivR1}
	pairs := ChooseSDPairsWithTraffic(net, 10, cfg, xrand.New(4))
	assertDistinctPairs(t, pairs, 10) // 6 nodes -> 15 possible pairs
}

// alias to keep the test readable without an import cycle.
const topo_MotivR1 = MotivR1

func TestTrafficGravityPrefersClosePairs(t *testing.T) {
	net := trafficNet(t)
	rng := xrand.New(5)
	gravity := ChooseSDPairsWithTraffic(net, 15,
		TrafficConfig{Pattern: TrafficGravity, GravityScaleKM: 800}, rng)
	assertDistinctPairs(t, gravity, 15)
	uniform := ChooseSDPairs(net, 15, xrand.New(6))
	mean := func(pairs []SDPair) float64 {
		var s float64
		for _, p := range pairs {
			s += dist(net.Pos[p.S], net.Pos[p.D])
		}
		return s / float64(len(pairs))
	}
	if mean(gravity) >= mean(uniform) {
		t.Fatalf("gravity mean distance %.0f not below uniform %.0f",
			mean(gravity), mean(uniform))
	}
}

func TestTrafficPatternString(t *testing.T) {
	if TrafficUniform.String() != "uniform" || TrafficHotspot.String() != "hotspot" ||
		TrafficGravity.String() != "gravity" || TrafficPattern(9).String() == "" {
		t.Fatal("pattern names wrong")
	}
}

func TestTrafficDegenerate(t *testing.T) {
	tiny := &Network{G: newGraph(1), Pos: make([][2]float64, 1),
		Memory: []int{1}, SwapProb: []float64{1}}
	if got := chooseHotspot(tiny, 5, TrafficConfig{}, xrand.New(1)); got != nil {
		t.Fatal("1-node hotspot must be nil")
	}
	if got := chooseGravity(tiny, 5, TrafficConfig{}, xrand.New(1)); got != nil {
		t.Fatal("1-node gravity must be nil")
	}
}
