package topo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"see/internal/graph"
)

// Config describes a randomly generated network in the style of the paper's
// evaluation (§IV-A): nodes placed uniformly in a square area, links drawn
// from the Waxman model, uniform per-link channel counts and per-node
// memory/swap probability, and the e^{−αl}+δ segment success model.
type Config struct {
	// Nodes is the node count (paper default: 200).
	Nodes int
	// AreaKM is the square side length in km (paper: 10,000).
	AreaKM float64
	// WaxmanBeta scales overall link probability (0 < β ≤ 1).
	WaxmanBeta float64
	// WaxmanGamma scales the link-length decay relative to the maximum
	// node distance: P(u,v) = β·exp(−d/(γ·L_max)).
	WaxmanGamma float64
	// Channels per link (paper default: 3).
	Channels int
	// Memory units per node (paper default: 10).
	Memory int
	// SwapProb q per node (paper default: 0.9).
	SwapProb float64
	// Alpha is the attenuation parameter in p = e^{−αl}+δ (paper default:
	// 2e-4, giving ≈0.8 mean single-link success).
	Alpha float64
	// Delta is the half-width of the uniform noise δ (paper: 0.05).
	Delta float64
	// EnsureConnected joins components with extra shortest links so every
	// SD pair is routable (the paper implicitly assumes routable pairs).
	EnsureConnected bool

	// Heterogeneity extensions (the paper uses uniform resources; these
	// draw per-element values uniformly from [X−Jitter, X+Jitter]).
	MemoryJitter   int
	ChannelJitter  int
	SwapProbJitter float64
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{
		Nodes:           200,
		AreaKM:          10000,
		WaxmanBeta:      0.90,
		WaxmanGamma:     0.045,
		Channels:        3,
		Memory:          10,
		SwapProb:        0.9,
		Alpha:           2e-4,
		Delta:           0.05,
		EnsureConnected: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return errors.New("topo: need at least 2 nodes")
	case c.AreaKM <= 0:
		return errors.New("topo: AreaKM must be positive")
	case c.WaxmanBeta <= 0 || c.WaxmanBeta > 1:
		return fmt.Errorf("topo: WaxmanBeta %v out of (0,1]", c.WaxmanBeta)
	case c.WaxmanGamma <= 0:
		return errors.New("topo: WaxmanGamma must be positive")
	case c.Channels < 1:
		return errors.New("topo: Channels must be >= 1")
	case c.Memory < 1:
		return errors.New("topo: Memory must be >= 1")
	case c.SwapProb < 0 || c.SwapProb > 1:
		return fmt.Errorf("topo: SwapProb %v out of [0,1]", c.SwapProb)
	case c.Alpha < 0:
		return errors.New("topo: Alpha must be >= 0")
	case c.Delta < 0:
		return errors.New("topo: Delta must be >= 0")
	}
	if c.MemoryJitter < 0 || c.MemoryJitter >= c.Memory {
		if c.MemoryJitter != 0 {
			return fmt.Errorf("topo: MemoryJitter %d out of [0,%d)", c.MemoryJitter, c.Memory)
		}
	}
	if c.ChannelJitter < 0 || c.ChannelJitter >= c.Channels {
		if c.ChannelJitter != 0 {
			return fmt.Errorf("topo: ChannelJitter %d out of [0,%d)", c.ChannelJitter, c.Channels)
		}
	}
	if c.SwapProbJitter != 0 &&
		(c.SwapProbJitter < 0 || c.SwapProb+c.SwapProbJitter > 1 || c.SwapProb-c.SwapProbJitter < 0) {
		return fmt.Errorf("topo: SwapProbJitter %v pushes q outside [0,1]", c.SwapProbJitter)
	}
	return nil
}

// jitterInt draws uniformly from [base−j, base+j].
func jitterInt(rng *rand.Rand, base, j int) int {
	if j <= 0 {
		return base
	}
	return base - j + rng.Intn(2*j+1)
}

// jitterFloat draws uniformly from [base−j, base+j].
func jitterFloat(rng *rand.Rand, base, j float64) float64 {
	if j <= 0 {
		return base
	}
	return base + (rng.Float64()*2-1)*j
}

// Generate builds a random Waxman network. The result is deterministic in
// (cfg, rng state).
func Generate(cfg Config, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Nodes
	net := &Network{
		G:        graph.New(n),
		Pos:      make([][2]float64, n),
		Memory:   make([]int, n),
		SwapProb: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		net.Pos[i] = [2]float64{rng.Float64() * cfg.AreaKM, rng.Float64() * cfg.AreaKM}
		net.Memory[i] = jitterInt(rng, cfg.Memory, cfg.MemoryJitter)
		net.SwapProb[i] = jitterFloat(rng, cfg.SwapProb, cfg.SwapProbJitter)
	}
	lmax := cfg.AreaKM * math.Sqrt2
	scale := cfg.WaxmanGamma * lmax
	addLink := func(u, v int) {
		d := dist(net.Pos[u], net.Pos[v])
		if d <= 0 {
			d = 1e-6 // coincident points: nominal 1 m of fibre
		}
		net.G.AddEdge(u, v, d)
		net.LinkLen = append(net.LinkLen, d)
		net.Channels = append(net.Channels, jitterInt(rng, cfg.Channels, cfg.ChannelJitter))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := dist(net.Pos[u], net.Pos[v])
			if rng.Float64() < cfg.WaxmanBeta*math.Exp(-d/scale) {
				addLink(u, v)
			}
		}
	}
	if cfg.EnsureConnected {
		augmentConnectivity(net, addLink)
	}
	net.prober = ExpProber{Alpha: cfg.Alpha, Delta: cfg.Delta, Seed: rng.Int63()}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("topo: generated network invalid: %w", err)
	}
	return net, nil
}

// augmentConnectivity repeatedly joins the two geometrically closest nodes
// in different components until the graph is connected. This mirrors how
// evaluation testbeds discard unroutable SD pairs while keeping generation
// deterministic.
func augmentConnectivity(net *Network, addLink func(u, v int)) {
	for {
		label, count := graph.Components(net.G)
		if count <= 1 {
			return
		}
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for u := 0; u < net.G.N(); u++ {
			for v := u + 1; v < net.G.N(); v++ {
				if label[u] == label[v] {
					continue
				}
				if d := dist(net.Pos[u], net.Pos[v]); d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		addLink(bestU, bestV)
	}
}

func dist(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return math.Sqrt(dx*dx + dy*dy)
}

// ChooseSDPairs samples count SD pairs with distinct endpoints (s ≠ d) from
// the network, without repeating an unordered pair. If the network has too
// few distinct pairs, it returns as many as exist.
func ChooseSDPairs(net *Network, count int, rng *rand.Rand) []SDPair {
	n := net.NumNodes()
	maxPairs := n * (n - 1) / 2
	if count > maxPairs {
		count = maxPairs
	}
	pairs := make([]SDPair, 0, count)
	used := make(map[[2]int]struct{}, count)
	for len(pairs) < count {
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			continue
		}
		key := [2]int{min(s, d), max(s, d)}
		if _, dup := used[key]; dup {
			continue
		}
		used[key] = struct{}{}
		pairs = append(pairs, SDPair{S: s, D: d})
	}
	return pairs
}

// Stats summarizes a topology for calibration and the seetopo CLI.
type Stats struct {
	Nodes, Links  int
	AvgDegree     float64
	MeanLinkKM    float64
	MedianLinkKM  float64
	MeanLinkProb  float64
	Components    int
	ChannelsTotal int
	MemoryTotal   int
}

// Summarize computes topology statistics. Mean link probability uses the
// network's prober over single links.
func Summarize(net *Network) Stats {
	st := Stats{Nodes: net.NumNodes(), Links: net.NumLinks()}
	if st.Nodes > 0 {
		st.AvgDegree = 2 * float64(st.Links) / float64(st.Nodes)
	}
	_, st.Components = graph.Components(net.G)
	lens := append([]float64(nil), net.LinkLen...)
	sort.Float64s(lens)
	for _, l := range lens {
		st.MeanLinkKM += l
	}
	if len(lens) > 0 {
		st.MeanLinkKM /= float64(len(lens))
		st.MedianLinkKM = lens[len(lens)/2]
	}
	var probSum float64
	var probCount int
	for u := 0; u < net.G.N(); u++ {
		for _, e := range net.G.Neighbors(u) {
			if u < e.To {
				probSum += net.SegmentSuccessProb(graph.Path{u, e.To})
				probCount++
			}
		}
	}
	if probCount > 0 {
		st.MeanLinkProb = probSum / float64(probCount)
	}
	for _, c := range net.Channels {
		st.ChannelsTotal += c
	}
	for _, m := range net.Memory {
		st.MemoryTotal += m
	}
	return st
}
