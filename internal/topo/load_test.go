package topo

import (
	"strings"
	"testing"

	"see/internal/graph"
)

func TestLoadEdgeListBasic(t *testing.T) {
	spec := `
# tiny triangle
node 0 0 0
node 1 1000 0 7 0.8
node 2 0 1000
link 0 1
link 1 2 2500
link 0 2 1400 5
`
	net, err := LoadEdgeList(strings.NewReader(spec), ResourceDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 3 || net.NumLinks() != 3 {
		t.Fatalf("loaded %d nodes, %d links", net.NumNodes(), net.NumLinks())
	}
	d := DefaultConfig()
	if net.Memory[0] != d.Memory || net.Memory[1] != 7 {
		t.Fatalf("memory = %v", net.Memory)
	}
	if net.SwapProb[1] != 0.8 || net.SwapProb[0] != d.SwapProb {
		t.Fatalf("swap = %v", net.SwapProb)
	}
	// Link 0: implicit Euclidean length.
	if net.LinkLen[0] != 1000 {
		t.Fatalf("implicit length = %v, want 1000", net.LinkLen[0])
	}
	if net.LinkLen[1] != 2500 {
		t.Fatalf("explicit length = %v", net.LinkLen[1])
	}
	if net.Channels[2] != 5 || net.Channels[0] != d.Channels {
		t.Fatalf("channels = %v", net.Channels)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, spec string
	}{
		{"unknown decl", "frob 1 2 3\n"},
		{"short node", "node 0 1\n"},
		{"non-dense id", "node 1 0 0\n"},
		{"bad coord", "node 0 x 0\n"},
		{"bad memory", "node 0 0 0 -3\n"},
		{"bad swap", "node 0 0 0 5 1.5\n"},
		{"short link", "node 0 0 0\nnode 1 1 1\nlink 0\n"},
		{"self link", "node 0 0 0\nnode 1 1 1\nlink 0 0\n"},
		{"out of range", "node 0 0 0\nnode 1 1 1\nlink 0 9\n"},
		{"bad length", "node 0 0 0\nnode 1 1 1\nlink 0 1 -5\n"},
		{"bad channels", "node 0 0 0\nnode 1 1 1\nlink 0 1 5 x\n"},
		{"too few nodes", "node 0 0 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadEdgeList(strings.NewReader(tc.spec), ResourceDefaults{}); err == nil {
				t.Fatalf("spec accepted:\n%s", tc.spec)
			}
		})
	}
}

func TestNSFNet(t *testing.T) {
	net, err := NSFNet(ResourceDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 14 {
		t.Fatalf("NSFNET has %d nodes, want 14", net.NumNodes())
	}
	if net.NumLinks() != 21 {
		t.Fatalf("NSFNET has %d links, want 21", net.NumLinks())
	}
	if !graph.Connected(net.G) {
		t.Fatal("NSFNET must be connected")
	}
	st := Summarize(net)
	if st.AvgDegree < 2.5 || st.AvgDegree > 3.5 {
		t.Fatalf("NSFNET degree = %.2f, want 3", st.AvgDegree)
	}
	// Every link success probability must be usable under defaults.
	for u := 0; u < net.NumNodes(); u++ {
		for _, e := range net.G.Neighbors(u) {
			if u > e.To {
				continue
			}
			p := net.SegmentSuccessProb(graph.Path{u, e.To})
			if p < 0.5 || p > 1 {
				t.Fatalf("link %d-%d success probability %v out of band", u, e.To, p)
			}
		}
	}
	// Custom resources flow through.
	net2, err := NSFNet(ResourceDefaults{Memory: 4, Channels: 2, SwapProb: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if net2.Memory[0] != 4 || net2.Channels[0] != 2 || net2.SwapProb[0] != 0.7 {
		t.Fatal("resource defaults ignored")
	}
}
