package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadEdgeList parses a network from a simple text format, one declaration
// per line:
//
//	node <id> <x-km> <y-km> [memory] [swap-prob]
//	link <u> <v> [length-km] [channels]
//	# comments and blank lines are ignored
//
// Node IDs must be dense integers starting at 0 and declared before use.
// Omitted link lengths default to the Euclidean node distance; omitted
// memory/channels/swap default to the res parameters. The prober is the
// paper's e^{−αl}+δ model with the given alpha/delta (delta noise is
// seeded by seed).
func LoadEdgeList(r io.Reader, res ResourceDefaults) (*Network, error) {
	type nodeDecl struct {
		x, y float64
		mem  int
		swap float64
	}
	var nodes []nodeDecl
	type linkDecl struct {
		u, v     int
		length   float64
		channels int
	}
	var links []linkDecl

	res = res.withDefaults()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i] // trailing comments allowed
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 4 {
				return nil, fmt.Errorf("topo: line %d: node needs id x y", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(nodes) {
				return nil, fmt.Errorf("topo: line %d: node IDs must be dense and ordered (got %q, want %d)",
					lineNo, fields[1], len(nodes))
			}
			x, errX := strconv.ParseFloat(fields[2], 64)
			y, errY := strconv.ParseFloat(fields[3], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("topo: line %d: bad coordinates", lineNo)
			}
			nd := nodeDecl{x: x, y: y, mem: res.Memory, swap: res.SwapProb}
			if len(fields) > 4 {
				if nd.mem, err = strconv.Atoi(fields[4]); err != nil || nd.mem < 0 {
					return nil, fmt.Errorf("topo: line %d: bad memory %q", lineNo, fields[4])
				}
			}
			if len(fields) > 5 {
				if nd.swap, err = strconv.ParseFloat(fields[5], 64); err != nil || nd.swap < 0 || nd.swap > 1 {
					return nil, fmt.Errorf("topo: line %d: bad swap probability %q", lineNo, fields[5])
				}
			}
			nodes = append(nodes, nd)
		case "link":
			if len(fields) < 3 {
				return nil, fmt.Errorf("topo: line %d: link needs u v", lineNo)
			}
			u, errU := strconv.Atoi(fields[1])
			v, errV := strconv.Atoi(fields[2])
			if errU != nil || errV != nil || u < 0 || v < 0 || u >= len(nodes) || v >= len(nodes) || u == v {
				return nil, fmt.Errorf("topo: line %d: bad link endpoints", lineNo)
			}
			ld := linkDecl{u: u, v: v, channels: res.Channels}
			var err error
			if len(fields) > 3 {
				if ld.length, err = strconv.ParseFloat(fields[3], 64); err != nil || ld.length <= 0 {
					return nil, fmt.Errorf("topo: line %d: bad length %q", lineNo, fields[3])
				}
			}
			if len(fields) > 4 {
				if ld.channels, err = strconv.Atoi(fields[4]); err != nil || ld.channels < 0 {
					return nil, fmt.Errorf("topo: line %d: bad channels %q", lineNo, fields[4])
				}
			}
			links = append(links, ld)
		default:
			return nil, fmt.Errorf("topo: line %d: unknown declaration %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topo: reading edge list: %w", err)
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("topo: edge list declares %d nodes, need at least 2", len(nodes))
	}

	net := &Network{
		G:        NewTopologyGraph(len(nodes)),
		Pos:      make([][2]float64, len(nodes)),
		Memory:   make([]int, len(nodes)),
		SwapProb: make([]float64, len(nodes)),
	}
	for i, nd := range nodes {
		net.Pos[i] = [2]float64{nd.x, nd.y}
		net.Memory[i] = nd.mem
		net.SwapProb[i] = nd.swap
	}
	for _, ld := range links {
		length := ld.length
		if length == 0 {
			length = dist(net.Pos[ld.u], net.Pos[ld.v])
			if length <= 0 {
				length = 1e-6
			}
		}
		net.G.AddEdge(ld.u, ld.v, length)
		net.LinkLen = append(net.LinkLen, length)
		net.Channels = append(net.Channels, ld.channels)
	}
	net.prober = ExpProber{Alpha: res.Alpha, Delta: res.Delta, Seed: res.Seed}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("topo: loaded network invalid: %w", err)
	}
	return net, nil
}

// ResourceDefaults supplies the quantum resources for loaded topologies.
type ResourceDefaults struct {
	Memory   int
	Channels int
	SwapProb float64
	Alpha    float64
	Delta    float64
	Seed     int64
}

func (r ResourceDefaults) withDefaults() ResourceDefaults {
	d := DefaultConfig()
	if r.Memory <= 0 {
		r.Memory = d.Memory
	}
	if r.Channels <= 0 {
		r.Channels = d.Channels
	}
	if r.SwapProb <= 0 {
		r.SwapProb = d.SwapProb
	}
	if r.Alpha <= 0 {
		r.Alpha = d.Alpha
	}
	if r.Delta < 0 {
		r.Delta = 0
	}
	return r
}

// NSFNet returns the classic 14-node NSFNET backbone, a standard reference
// topology in quantum-network evaluations, with approximate continental-US
// coordinates scaled to kilometres and the given resource defaults.
func NSFNet(res ResourceDefaults) (*Network, error) {
	const spec = `
# NSFNET T1 backbone (14 nodes, 21 links); coordinates approximate, km.
node 0  600 1500   # Seattle
node 1  300  900   # Palo Alto
node 2  600  300   # San Diego
node 3 1500 1000   # Salt Lake City
node 4 2200  600   # Boulder
node 5 2800  500   # Houston
node 6 3200 1100   # Lincoln
node 7 3600  700   # Champaign
node 8 4200  900   # Pittsburgh
node 9 4000  300   # Atlanta
node 10 4300 1400  # Ann Arbor
node 11 4700 1300  # Ithaca
node 12 4900 1000  # Princeton
node 13 4800  700  # College Park
link 0 1
link 0 2
link 0 3
link 1 2
link 1 3
link 2 4
link 3 6
link 4 5
link 4 6
link 5 7
link 5 9
link 6 7
link 7 8
link 8 9
link 8 11
link 8 12
link 9 13
link 10 11
link 10 13
link 11 12
link 12 13
`
	return LoadEdgeList(strings.NewReader(spec), res)
}

// NewTopologyGraph is a small indirection so load.go does not import the
// graph package twice under different names.
func NewTopologyGraph(n int) *Topology {
	return newGraph(n)
}
