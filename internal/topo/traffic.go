package topo

import (
	"math"
	"math/rand"

	"see/internal/xrand"
)

// TrafficPattern selects how SD pairs are drawn from a topology. The paper
// samples uniformly; the other patterns model workloads its introduction
// motivates (quantum data centres, metro clusters) and are used by the
// workload extension.
type TrafficPattern int

// Supported patterns.
const (
	// TrafficUniform draws endpoints uniformly (the paper's setting).
	TrafficUniform TrafficPattern = iota
	// TrafficHotspot routes a fraction of the demand to one hub node
	// (a quantum data centre serving many clients).
	TrafficHotspot
	// TrafficGravity prefers geographically close pairs with probability
	// ∝ e^{−d/scale} (metro-area clustering).
	TrafficGravity
)

// String implements fmt.Stringer.
func (t TrafficPattern) String() string {
	switch t {
	case TrafficUniform:
		return "uniform"
	case TrafficHotspot:
		return "hotspot"
	case TrafficGravity:
		return "gravity"
	default:
		return "traffic(?)"
	}
}

// TrafficConfig tunes non-uniform patterns.
type TrafficConfig struct {
	Pattern TrafficPattern
	// HotspotFraction of pairs that terminate at the hub (default 0.5);
	// only for TrafficHotspot.
	HotspotFraction float64
	// Hub is the hub node; -1 picks the highest-degree node.
	Hub int
	// GravityScaleKM is the decay length (default: a quarter of the
	// network diameter); only for TrafficGravity.
	GravityScaleKM float64
}

// ChooseSDPairsWithTraffic draws count distinct SD pairs under the pattern.
func ChooseSDPairsWithTraffic(net *Network, count int, cfg TrafficConfig, rng *rand.Rand) []SDPair {
	switch cfg.Pattern {
	case TrafficHotspot:
		return chooseHotspot(net, count, cfg, rng)
	case TrafficGravity:
		return chooseGravity(net, count, cfg, rng)
	default:
		return ChooseSDPairs(net, count, rng)
	}
}

func chooseHotspot(net *Network, count int, cfg TrafficConfig, rng *rand.Rand) []SDPair {
	n := net.NumNodes()
	if n < 2 {
		return nil
	}
	hub := cfg.Hub
	if hub < 0 || hub >= n {
		hub = 0
		for u := 1; u < n; u++ {
			if net.G.Degree(u) > net.G.Degree(hub) {
				hub = u
			}
		}
	}
	frac := cfg.HotspotFraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	maxPairs := n * (n - 1) / 2
	if count > maxPairs {
		count = maxPairs
	}
	used := make(map[[2]int]struct{}, count)
	pairs := make([]SDPair, 0, count)
	hubBudget := int(math.Round(frac * float64(count)))
	// The hub can anchor at most n−1 distinct pairs.
	if hubBudget > n-1 {
		hubBudget = n - 1
	}
	guard := 0
	for len(pairs) < count && guard < 100000 {
		guard++
		var s, d int
		if len(pairs) < hubBudget {
			s, d = hub, rng.Intn(n)
		} else {
			s, d = rng.Intn(n), rng.Intn(n)
		}
		if s == d {
			continue
		}
		key := [2]int{min(s, d), max(s, d)}
		if _, dup := used[key]; dup {
			continue
		}
		used[key] = struct{}{}
		pairs = append(pairs, SDPair{S: s, D: d})
	}
	return pairs
}

func chooseGravity(net *Network, count int, cfg TrafficConfig, rng *rand.Rand) []SDPair {
	n := net.NumNodes()
	if n < 2 {
		return nil
	}
	scale := cfg.GravityScaleKM
	if scale <= 0 {
		// Default: a quarter of the bounding-box diagonal.
		var maxX, maxY float64
		for _, p := range net.Pos {
			maxX = math.Max(maxX, p[0])
			maxY = math.Max(maxY, p[1])
		}
		scale = math.Hypot(maxX, maxY) / 4
		if scale <= 0 {
			scale = 1
		}
	}
	type pair struct {
		sd SDPair
		w  float64
	}
	all := make([]pair, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := dist(net.Pos[u], net.Pos[v])
			all = append(all, pair{sd: SDPair{S: u, D: v}, w: math.Exp(-d / scale)})
		}
	}
	if count > len(all) {
		count = len(all)
	}
	pairs := make([]SDPair, 0, count)
	weights := make([]float64, len(all))
	for i, p := range all {
		weights[i] = p.w
	}
	for len(pairs) < count {
		i := xrand.WeightedIndex(rng, weights)
		if i < 0 {
			break
		}
		pairs = append(pairs, all[i].sd)
		weights[i] = 0 // without replacement
	}
	return pairs
}
