// Package topo builds and describes quantum data network topologies: the
// Waxman random networks used in the paper's evaluation (§IV-A), the Fig. 2
// motivation fixture, per-node/per-link quantum resources, and the
// entanglement-segment success-probability model p = e^{−αl} + δ.
package topo

import (
	"fmt"
	"math"

	"see/internal/graph"
)

// Network is a quantum data network: an undirected physical topology plus
// the quantum resources and probability model the controller knows (paper
// §II-F).
type Network struct {
	// G is the physical topology. Edge IDs index LinkLen and Channels.
	G *Topology
	// Pos holds node coordinates in kilometres.
	Pos [][2]float64
	// LinkLen is the fibre length of each link in km, by edge ID.
	LinkLen []float64
	// Channels is the number of quantum channels per link, by edge ID.
	Channels []int
	// Memory is the quantum memory size of each node (units of qubits).
	Memory []int
	// SwapProb is the quantum-swapping success probability q_u per node.
	SwapProb []float64

	prober SegmentProber
}

// Topology aliases the graph type used for physical topologies.
type Topology = graph.Graph

// newGraph constructs an empty physical topology with n nodes.
func newGraph(n int) *Topology { return graph.New(n) }

// SegmentProber computes the success probability of creating one
// entanglement segment over a concrete physical segment in one time slot.
type SegmentProber interface {
	SegmentProb(path graph.Path, lengthKM float64) float64
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return n.G.N() }

// NumLinks returns the physical link count.
func (n *Network) NumLinks() int { return n.G.NumEdgeIDs() }

// PathLengthKM sums link lengths along a physical path, choosing the
// shortest parallel link between consecutive nodes. It returns +Inf for
// non-adjacent hops.
func (n *Network) PathLengthKM(p graph.Path) float64 {
	var total float64
	for i := 0; i+1 < len(p); i++ {
		best := math.Inf(1)
		for _, e := range n.G.Neighbors(p[i]) {
			if e.To == p[i+1] && n.LinkLen[e.ID] < best {
				best = n.LinkLen[e.ID]
			}
		}
		if math.IsInf(best, 1) {
			return best
		}
		total += best
	}
	return total
}

// PathEdgeIDs returns the edge IDs along a physical path (shortest parallel
// link per hop) or an error for non-adjacent hops.
func (n *Network) PathEdgeIDs(p graph.Path) ([]int, error) {
	ids := make([]int, 0, len(p))
	for i := 0; i+1 < len(p); i++ {
		bestID := -1
		best := math.Inf(1)
		for _, e := range n.G.Neighbors(p[i]) {
			if e.To == p[i+1] && n.LinkLen[e.ID] < best {
				best = n.LinkLen[e.ID]
				bestID = e.ID
			}
		}
		if bestID == -1 {
			return nil, fmt.Errorf("topo: nodes %d and %d are not adjacent", p[i], p[i+1])
		}
		ids = append(ids, bestID)
	}
	return ids, nil
}

// SegmentSuccessProb returns the one-slot success probability of creating an
// entanglement segment over the given physical segment, clamped to [0, 1].
// Single-node paths (no transmission) have probability 1.
func (n *Network) SegmentSuccessProb(p graph.Path) float64 {
	if len(p) <= 1 {
		return 1
	}
	l := n.PathLengthKM(p)
	if math.IsInf(l, 1) {
		return 0
	}
	prob := n.prober.SegmentProb(p, l)
	if prob < 0 {
		return 0
	}
	if prob > 1 {
		return 1
	}
	return prob
}

// SetProber replaces the probability model (used by fixtures and tests).
func (n *Network) SetProber(p SegmentProber) { n.prober = p }

// IncidentLinks returns the edge IDs of every link incident to node v
// (parallel links included, each ID once). The fault injector uses it to
// take a crashed node's links down with the node.
func (n *Network) IncidentLinks(v int) []int {
	edges := n.G.Neighbors(v)
	ids := make([]int, 0, len(edges))
	for _, e := range edges {
		ids = append(ids, e.ID)
	}
	return ids
}

// Validate checks structural invariants: attribute table sizes, positive
// lengths, non-negative resources, probabilities in [0, 1].
func (n *Network) Validate() error {
	if err := n.G.Validate(); err != nil {
		return err
	}
	if len(n.Pos) != n.G.N() || len(n.Memory) != n.G.N() || len(n.SwapProb) != n.G.N() {
		return fmt.Errorf("topo: node table sizes (%d,%d,%d) != N=%d",
			len(n.Pos), len(n.Memory), len(n.SwapProb), n.G.N())
	}
	if len(n.LinkLen) != n.G.NumEdgeIDs() || len(n.Channels) != n.G.NumEdgeIDs() {
		return fmt.Errorf("topo: link table sizes (%d,%d) != E=%d",
			len(n.LinkLen), len(n.Channels), n.G.NumEdgeIDs())
	}
	for i, l := range n.LinkLen {
		if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("topo: link %d has invalid length %v", i, l)
		}
		if n.Channels[i] < 0 {
			return fmt.Errorf("topo: link %d has negative channels", i)
		}
	}
	for u := range n.Memory {
		if n.Memory[u] < 0 {
			return fmt.Errorf("topo: node %d has negative memory", u)
		}
		if n.SwapProb[u] < 0 || n.SwapProb[u] > 1 || math.IsNaN(n.SwapProb[u]) {
			return fmt.Errorf("topo: node %d has invalid swap probability %v", u, n.SwapProb[u])
		}
	}
	if n.prober == nil {
		return fmt.Errorf("topo: nil segment prober")
	}
	return nil
}

// SDPair is a source-destination demand.
type SDPair struct {
	S, D int
}

// ExpProber is the paper's probability model p = e^{−αl} + δ with
// δ ~ U[−Delta, +Delta]. The noise term is a deterministic function of the
// segment's node sequence and the Seed, so a given physical segment has one
// fixed probability per network — matching the paper's setting where the
// controller knows each segment's success probability.
type ExpProber struct {
	Alpha float64
	Delta float64
	Seed  int64
}

// SegmentProb implements SegmentProber.
func (e ExpProber) SegmentProb(path graph.Path, lengthKM float64) float64 {
	p := math.Exp(-e.Alpha * lengthKM)
	if e.Delta > 0 {
		p += (hash01(path, e.Seed)*2 - 1) * e.Delta
	}
	return p
}

// hash01 maps (path, seed) to a uniform-ish value in [0, 1).
func hash01(path graph.Path, seed int64) float64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, v := range path {
		h ^= uint64(uint32(v)) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return float64(h>>11) / float64(1<<53)
}

// TableProber returns fixed probabilities for listed segments and falls
// back to an ExpProber elsewhere. Fixtures use it to pin exact paper values.
type TableProber struct {
	Table    map[string]float64
	Fallback SegmentProber
}

// Key builds the canonical lookup key for a node path. Both directions of a
// segment share a key.
func Key(path graph.Path) string {
	if len(path) > 1 && path[0] > path[len(path)-1] {
		rev := make(graph.Path, len(path))
		for i, v := range path {
			rev[len(path)-1-i] = v
		}
		path = rev
	}
	b := make([]byte, 0, len(path)*4)
	for _, v := range path {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), '.')
	}
	return string(b)
}

// SegmentProb implements SegmentProber.
func (t TableProber) SegmentProb(path graph.Path, lengthKM float64) float64 {
	if p, ok := t.Table[Key(path)]; ok {
		return p
	}
	if t.Fallback != nil {
		return t.Fallback.SegmentProb(path, lengthKM)
	}
	return 0
}
