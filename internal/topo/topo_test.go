package topo

import (
	"math"
	"testing"

	"see/internal/graph"
	"see/internal/xrand"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few nodes", func(c *Config) { c.Nodes = 1 }},
		{"zero area", func(c *Config) { c.AreaKM = 0 }},
		{"beta zero", func(c *Config) { c.WaxmanBeta = 0 }},
		{"beta over one", func(c *Config) { c.WaxmanBeta = 1.5 }},
		{"gamma zero", func(c *Config) { c.WaxmanGamma = 0 }},
		{"channels zero", func(c *Config) { c.Channels = 0 }},
		{"memory zero", func(c *Config) { c.Memory = 0 }},
		{"swap negative", func(c *Config) { c.SwapProb = -0.1 }},
		{"swap over one", func(c *Config) { c.SwapProb = 1.1 }},
		{"alpha negative", func(c *Config) { c.Alpha = -1 }},
		{"delta negative", func(c *Config) { c.Delta = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
			if _, err := Generate(cfg, xrand.New(1)); err == nil {
				t.Fatal("Generate accepted invalid config")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 60
	a, err := Generate(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() || a.NumNodes() != b.NumNodes() {
		t.Fatal("same seed produced different topologies")
	}
	for i := range a.LinkLen {
		if a.LinkLen[i] != b.LinkLen[i] {
			t.Fatal("same seed produced different link lengths")
		}
	}
}

func TestGenerateConnectedAndValid(t *testing.T) {
	cfg := DefaultConfig()
	for _, n := range []int{20, 100, 200} {
		cfg.Nodes = n
		net, err := Generate(cfg, xrand.New(int64(n)))
		if err != nil {
			t.Fatalf("Generate(%d): %v", n, err)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("Validate(%d): %v", n, err)
		}
		if !graph.Connected(net.G) {
			t.Fatalf("network with %d nodes not connected", n)
		}
		for u := 0; u < n; u++ {
			if net.Memory[u] != cfg.Memory {
				t.Fatalf("memory[%d] = %d", u, net.Memory[u])
			}
			if net.SwapProb[u] != cfg.SwapProb {
				t.Fatalf("swap[%d] = %v", u, net.SwapProb[u])
			}
		}
	}
}

func TestGenerateCalibration(t *testing.T) {
	// Paper: at α=2e-4 the average single-link success probability is
	// about 0.8, implying mean link length around 1100 km. Allow a broad
	// band; the point is the operating regime, not an exact constant.
	cfg := DefaultConfig()
	net, err := Generate(cfg, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(net)
	if st.MeanLinkProb < 0.70 || st.MeanLinkProb > 0.90 {
		t.Fatalf("mean link success probability %.3f outside [0.70, 0.90]", st.MeanLinkProb)
	}
	if st.AvgDegree < 2.5 || st.AvgDegree > 16 {
		t.Fatalf("average degree %.2f outside sane band", st.AvgDegree)
	}
	if st.Components != 1 {
		t.Fatalf("components = %d", st.Components)
	}
}

func TestSegmentSuccessProb(t *testing.T) {
	net, _ := Motivation()
	if p := net.SegmentSuccessProb(graph.Path{MotivS1}); p != 1 {
		t.Fatalf("single-node segment prob = %v, want 1", p)
	}
	if p := net.SegmentSuccessProb(graph.Path{MotivS1, MotivR1}); math.Abs(p-0.9) > 1e-9 {
		t.Fatalf("link prob = %v, want 0.9", p)
	}
	if p := net.SegmentSuccessProb(graph.Path{MotivS2, MotivR1, MotivD2}); p != 0.8 {
		t.Fatalf("s2-r1-d2 prob = %v, want 0.8", p)
	}
	if p := net.SegmentSuccessProb(graph.Path{MotivR1, MotivR2, MotivD1}); p != 0.85 {
		t.Fatalf("r1-r2-d1 prob = %v, want 0.85", p)
	}
	// Non-adjacent path has zero probability.
	if p := net.SegmentSuccessProb(graph.Path{MotivS1, MotivD1}); p != 0 {
		t.Fatalf("non-adjacent segment prob = %v, want 0", p)
	}
}

func TestPathLengthAndEdgeIDs(t *testing.T) {
	net, _ := Motivation()
	p := graph.Path{MotivS2, MotivR1, MotivD2}
	l := net.PathLengthKM(p)
	want := 2 * -math.Log(0.9) / MotivationAlpha
	if math.Abs(l-want) > 1e-6 {
		t.Fatalf("path length = %v, want %v", l, want)
	}
	ids, err := net.PathEdgeIDs(p)
	if err != nil || len(ids) != 2 {
		t.Fatalf("PathEdgeIDs = %v, %v", ids, err)
	}
	if _, err := net.PathEdgeIDs(graph.Path{MotivS1, MotivD2}); err == nil {
		t.Fatal("non-adjacent path must error")
	}
	if !math.IsInf(net.PathLengthKM(graph.Path{MotivS1, MotivD2}), 1) {
		t.Fatal("non-adjacent path length must be +Inf")
	}
}

func TestMotivationFixtureShape(t *testing.T) {
	net, pairs := Motivation()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 6 || net.NumLinks() != 6 {
		t.Fatalf("fixture has %d nodes, %d links; want 6, 6", net.NumNodes(), net.NumLinks())
	}
	if net.Memory[MotivR1] != 2 || net.Memory[MotivR2] != 2 || net.Memory[MotivS1] != 1 {
		t.Fatal("fixture memory wrong")
	}
	if len(pairs) != 2 || pairs[0] != (SDPair{MotivS1, MotivD1}) || pairs[1] != (SDPair{MotivS2, MotivD2}) {
		t.Fatalf("fixture pairs wrong: %v", pairs)
	}
	for _, c := range net.Channels {
		if c != 1 {
			t.Fatal("fixture channels must all be 1")
		}
	}
}

func TestExpProberDeterministicNoise(t *testing.T) {
	e := ExpProber{Alpha: 2e-4, Delta: 0.05, Seed: 9}
	p1 := e.SegmentProb(graph.Path{1, 2, 3}, 1000)
	p2 := e.SegmentProb(graph.Path{1, 2, 3}, 1000)
	if p1 != p2 {
		t.Fatal("noise must be deterministic per path")
	}
	base := math.Exp(-2e-4 * 1000)
	if math.Abs(p1-base) > 0.05+1e-12 {
		t.Fatalf("noise exceeded ±Delta: %v vs %v", p1, base)
	}
	q := e.SegmentProb(graph.Path{1, 2, 4}, 1000)
	if q == p1 {
		t.Fatal("different paths should (generically) get different noise")
	}
}

func TestKeySymmetric(t *testing.T) {
	a := Key(graph.Path{1, 2, 3})
	b := Key(graph.Path{3, 2, 1})
	if a != b {
		t.Fatal("Key must be direction-independent")
	}
	if Key(graph.Path{1, 2, 3}) == Key(graph.Path{1, 3, 2}) {
		t.Fatal("different interior order must produce different keys")
	}
}

func TestChooseSDPairs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	net, err := Generate(cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	pairs := ChooseSDPairs(net, 10, rng)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs, want 10", len(pairs))
	}
	seen := map[[2]int]struct{}{}
	for _, p := range pairs {
		if p.S == p.D {
			t.Fatal("degenerate SD pair")
		}
		key := [2]int{min(p.S, p.D), max(p.S, p.D)}
		if _, dup := seen[key]; dup {
			t.Fatal("duplicate SD pair")
		}
		seen[key] = struct{}{}
	}
	// Requesting more pairs than exist must cap out.
	tiny := &Network{G: graph.New(3), Pos: make([][2]float64, 3),
		Memory: []int{1, 1, 1}, SwapProb: []float64{1, 1, 1}}
	got := ChooseSDPairs(tiny, 100, rng)
	if len(got) != 3 {
		t.Fatalf("capped pairs = %d, want 3", len(got))
	}
}

func TestSummarize(t *testing.T) {
	net, _ := Motivation()
	st := Summarize(net)
	if st.Nodes != 6 || st.Links != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.MeanLinkProb-0.9) > 1e-9 {
		t.Fatalf("mean link prob = %v, want 0.9", st.MeanLinkProb)
	}
	if st.ChannelsTotal != 6 || st.MemoryTotal != 8 {
		t.Fatalf("resources = %d channels, %d memory", st.ChannelsTotal, st.MemoryTotal)
	}
	if st.AvgDegree != 2 {
		t.Fatalf("avg degree = %v, want 2", st.AvgDegree)
	}
}

func TestGenerateHeterogeneousResources(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 80
	cfg.MemoryJitter = 4
	cfg.ChannelJitter = 2
	cfg.SwapProbJitter = 0.05
	net, err := Generate(cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	sawMemVariation, sawChanVariation := false, false
	for _, m := range net.Memory {
		if m < cfg.Memory-4 || m > cfg.Memory+4 {
			t.Fatalf("memory %d outside jitter band", m)
		}
		if m != cfg.Memory {
			sawMemVariation = true
		}
	}
	for _, c := range net.Channels {
		if c < cfg.Channels-2 || c > cfg.Channels+2 {
			t.Fatalf("channels %d outside jitter band", c)
		}
		if c != cfg.Channels {
			sawChanVariation = true
		}
	}
	for _, q := range net.SwapProb {
		if q < cfg.SwapProb-0.05-1e-12 || q > cfg.SwapProb+0.05+1e-12 {
			t.Fatalf("swap prob %v outside jitter band", q)
		}
	}
	if !sawMemVariation || !sawChanVariation {
		t.Fatal("jitter produced no variation")
	}
}

func TestJitterValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryJitter = cfg.Memory // would allow zero memory
	if err := cfg.Validate(); err == nil {
		t.Fatal("memory jitter >= memory accepted")
	}
	cfg = DefaultConfig()
	cfg.ChannelJitter = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative channel jitter accepted")
	}
	cfg = DefaultConfig()
	cfg.SwapProbJitter = 0.2 // 0.9 + 0.2 > 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("swap jitter pushing q over 1 accepted")
	}
}
