package topo

import (
	"testing"

	"see/internal/xrand"
)

func TestFingerprintStable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	a, err := Generate(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("same seed, different fingerprints: %x vs %x", Fingerprint(a), Fingerprint(b))
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Fatal("fingerprint not deterministic on one network")
	}
}

func TestFingerprintDetectsMutation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	net, err := Generate(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	base := Fingerprint(net)

	mutations := []struct {
		name string
		do   func()
		undo func()
	}{
		{"channel", func() { net.Channels[0]++ }, func() { net.Channels[0]-- }},
		{"memory", func() { net.Memory[2]++ }, func() { net.Memory[2]-- }},
		{"swap", func() { net.SwapProb[1] *= 0.5 }, func() { net.SwapProb[1] *= 2 }},
		{"linklen", func() { net.LinkLen[0] += 1 }, func() { net.LinkLen[0] -= 1 }},
	}
	for _, m := range mutations {
		m.do()
		if Fingerprint(net) == base {
			t.Errorf("%s mutation not reflected in fingerprint", m.name)
		}
		m.undo()
		if Fingerprint(net) != base {
			t.Errorf("%s undo did not restore fingerprint", m.name)
		}
	}
}

func TestFingerprintDifferentSeeds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	a, err := Generate(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("different topologies hashed equal (collision in tiny test is a bug in the hash wiring)")
	}
}
