package qnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"see/internal/graph"
	"see/internal/topo"
)

func TestSegmentFidelityLimits(t *testing.T) {
	m := DefaultFidelityModel()
	if got := m.SegmentFidelity(0); math.Abs(got-m.F0) > 1e-12 {
		t.Fatalf("zero-distance fidelity = %v, want F0 = %v", got, m.F0)
	}
	// Fidelity decays monotonically toward 1/4 (maximally mixed).
	prev := m.SegmentFidelity(0)
	for _, l := range []float64{100, 1000, 10000, 1e6, 1e9} {
		f := m.SegmentFidelity(l)
		if f > prev+1e-15 {
			t.Fatalf("fidelity increased with distance at %v km", l)
		}
		prev = f
	}
	if math.Abs(m.SegmentFidelity(1e12)-0.25) > 1e-6 {
		t.Fatalf("asymptotic fidelity = %v, want 0.25", m.SegmentFidelity(1e12))
	}
}

func TestSwapFidelityComposition(t *testing.T) {
	perfect := FidelityModel{F0: 1, DecayKM: math.Inf(1), SwapF0: 1}
	// Perfect swap of perfect pairs stays perfect.
	if got := perfect.SwapFidelity(1, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect swap = %v", got)
	}
	// Swapping with a maximally mixed state yields maximally mixed.
	if got := perfect.SwapFidelity(1, 0.25); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mixed swap = %v, want 0.25", got)
	}
	// Werner parameters multiply: symmetric and order-independent.
	m := DefaultFidelityModel()
	a, b, c := 0.95, 0.9, 0.85
	left := m.SwapFidelity(m.SwapFidelity(a, b), c)
	right := m.SwapFidelity(a, m.SwapFidelity(b, c))
	if math.Abs(left-right) > 1e-12 {
		t.Fatalf("swap composition not associative: %v vs %v", left, right)
	}
}

// Property: composed fidelity is within [1/4, min(f1, f2)] for valid
// Werner inputs.
func TestSwapFidelityRange(t *testing.T) {
	m := DefaultFidelityModel()
	f := func(a, b float64) bool {
		f1 := 0.25 + math.Mod(math.Abs(a), 0.75)
		f2 := 0.25 + math.Mod(math.Abs(b), 0.75)
		got := m.SwapFidelity(f1, f2)
		return got >= 0.25-1e-12 && got <= math.Min(f1, f2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionFidelity(t *testing.T) {
	set, net := motivationSet(t)
	m := DefaultFidelityModel()
	lengthOf := func(s *Segment) float64 { return net.PathLengthKM(s.Cand.Path) }

	// Single-segment (E2E-style) connection: fidelity is the segment's.
	cSeg := set.Best(topo.MotivS2, topo.MotivD2)
	direct := &Connection{
		Pair:     1,
		Nodes:    graph.Path{topo.MotivS2, topo.MotivD2},
		Segments: []*Segment{{A: cSeg.U(), B: cSeg.V(), Cand: cSeg}},
	}
	wantDirect := m.SegmentFidelity(net.PathLengthKM(cSeg.Path))
	if got := m.ConnectionFidelity(direct, lengthOf); math.Abs(got-wantDirect) > 1e-12 {
		t.Fatalf("direct fidelity = %v, want %v", got, wantDirect)
	}

	// Two-segment connection must be strictly worse than either segment
	// (an extra swap and more fibre).
	cl := set.Best(topo.MotivS1, topo.MotivR1)
	cs := set.Best(topo.MotivR1, topo.MotivD1)
	twoSeg := &Connection{
		Pair:  0,
		Nodes: graph.Path{topo.MotivS1, topo.MotivR1, topo.MotivD1},
		Segments: []*Segment{
			{A: cl.U(), B: cl.V(), Cand: cl},
			{A: cs.U(), B: cs.V(), Cand: cs},
		},
	}
	got := m.ConnectionFidelity(twoSeg, lengthOf)
	f1 := m.SegmentFidelity(net.PathLengthKM(cl.Path))
	f2 := m.SegmentFidelity(net.PathLengthKM(cs.Path))
	if got >= math.Min(f1, f2) {
		t.Fatalf("swapped fidelity %v not below min segment fidelity %v", got, math.Min(f1, f2))
	}
	if got < 0.25 {
		t.Fatalf("fidelity below maximally mixed: %v", got)
	}
	if m.ConnectionFidelity(&Connection{}, lengthOf) != 0 {
		t.Fatal("empty connection must have zero fidelity")
	}
}

// Werner parameter and fidelity are inverse affine maps of each other; the
// algebra below (floors, decay, swap composition) silently assumes the
// round-trip is exact.
func TestWernerFidelityRoundTrip(t *testing.T) {
	for _, f := range []float64{0.25, 0.3, 0.5, 0.75, 0.9, 0.99, 1} {
		if got := fidelityOf(wernerOf(f)); math.Abs(got-f) > 1e-12 {
			t.Errorf("fidelityOf(wernerOf(%v)) = %v", f, got)
		}
	}
	for _, w := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := wernerOf(fidelityOf(w)); math.Abs(got-w) > 1e-12 {
			t.Errorf("wernerOf(fidelityOf(%v)) = %v", w, got)
		}
	}
	// Endpoints: w=0 is maximally mixed (F=1/4), w=1 is a perfect pair.
	if got := fidelityOf(0); got != 0.25 {
		t.Errorf("fidelityOf(0) = %v, want 0.25", got)
	}
	if got := fidelityOf(1); got != 1 {
		t.Errorf("fidelityOf(1) = %v, want 1", got)
	}
}

// Swap composition is commutative in the Werner parameter — together with
// associativity (tested above) this is what makes delivered fidelity
// independent of the junction swap order, which the SwapOrderGreedy policy
// relies on.
func TestSwapFidelityCommutative(t *testing.T) {
	m := DefaultFidelityModel()
	f := func(a, b float64) bool {
		f1 := 0.25 + math.Mod(math.Abs(a), 0.75)
		f2 := 0.25 + math.Mod(math.Abs(b), 0.75)
		return math.Abs(m.SwapFidelity(f1, f2)-m.SwapFidelity(f2, f1)) <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// PredictFidelity must agree with the left-to-right pairwise fold for
// pristine segments, stay invariant under any permutation of the chain
// (swap-order independence), never exceed any single segment's fidelity,
// and decrease when a segment carries banked age decay. Randomized sweep
// over chain lengths, span lengths and decay scales, fixed seed.
func TestPredictFidelityProperties(t *testing.T) {
	m := DefaultFidelityModel()
	rng := rand.New(rand.NewSource(20220406))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		segs := make([]*Segment, n)
		lengths := make(map[*Segment]float64, n)
		for i := range segs {
			segs[i] = &Segment{A: i, B: i + 1}
			lengths[segs[i]] = rng.Float64() * 4000
		}
		lengthOf := func(s *Segment) float64 { return lengths[s] }

		got := m.PredictFidelity(segs, lengthOf)
		want := m.SegmentFidelity(lengthOf(segs[0]))
		for _, s := range segs[1:] {
			want = m.SwapFidelity(want, m.SegmentFidelity(lengthOf(s)))
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: PredictFidelity = %v, pairwise fold = %v", trial, got, want)
		}
		for _, s := range segs {
			if seg := m.SegmentFidelity(lengthOf(s)); got > seg+1e-12 {
				t.Fatalf("trial %d: composed fidelity %v exceeds segment fidelity %v", trial, got, seg)
			}
		}

		perm := rng.Perm(n)
		shuffled := make([]*Segment, n)
		for i, j := range perm {
			shuffled[i] = segs[j]
		}
		if shuf := m.PredictFidelity(shuffled, lengthOf); math.Abs(shuf-got) > 1e-12 {
			t.Fatalf("trial %d: permutation changed fidelity: %v vs %v", trial, shuf, got)
		}

		// Age decay on any one segment strictly degrades the chain.
		k := rng.Intn(n)
		segs[k].SetWernerScale(0.5 + rng.Float64()*0.4)
		if aged := m.PredictFidelity(segs, lengthOf); aged >= got {
			t.Fatalf("trial %d: aged chain fidelity %v not below pristine %v", trial, aged, got)
		}
		segs[k].SetWernerScale(1)
	}
}

// The core trade-off the extension exposes: over the same physical route,
// one long all-optical segment beats a chain of swapped links when swaps
// are imperfect, and loses when transmission decay dominates.
func TestFidelityTradeoff(t *testing.T) {
	const totalKM = 3000
	// Imperfect swaps, slow decay: the single segment wins.
	m := FidelityModel{F0: 0.99, DecayKM: 50000, SwapF0: 0.95}
	single := m.SegmentFidelity(totalKM)
	chain := m.SegmentFidelity(totalKM / 3)
	chain = m.SwapFidelity(chain, m.SegmentFidelity(totalKM/3))
	chain = m.SwapFidelity(chain, m.SegmentFidelity(totalKM/3))
	if single <= chain {
		t.Fatalf("slow decay: single %v should beat chain %v", single, chain)
	}
	// Perfect swaps, fast decay: fidelity is length-determined; chain and
	// single tie exactly (Werner parameters multiply over distance), so
	// with even infinitesimally imperfect links the chain's extra swap
	// scaling is the only difference. Verify the tie at SwapF0 = 1.
	m2 := FidelityModel{F0: 1, DecayKM: 1000, SwapF0: 1}
	single2 := m2.SegmentFidelity(totalKM)
	chain2 := m2.SwapFidelity(m2.SegmentFidelity(totalKM/2), m2.SegmentFidelity(totalKM/2))
	if math.Abs(single2-chain2) > 1e-12 {
		t.Fatalf("with perfect ops, distance alone must determine fidelity: %v vs %v", single2, chain2)
	}
}
