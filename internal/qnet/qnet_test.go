package qnet

import (
	"math"
	"testing"

	"see/internal/graph"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

func motivationSet(t *testing.T) (*segment.Set, *topo.Network) {
	t.Helper()
	net, pairs := topo.Motivation()
	set, err := segment.Build(net, pairs, segment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return set, net
}

func TestLedgerReserveRelease(t *testing.T) {
	set, net := motivationSet(t)
	l := NewLedger(net)
	c := set.Best(topo.MotivS2, topo.MotivD2) // 2-hop, endpoints s2, d2
	if c == nil {
		t.Fatal("missing candidate")
	}
	if !l.CanReserve(c) {
		t.Fatal("fresh ledger must allow reservation")
	}
	if err := l.Reserve(c); err != nil {
		t.Fatal(err)
	}
	if l.FreeMemory(topo.MotivS2) != 0 || l.FreeMemory(topo.MotivD2) != 0 {
		t.Fatal("endpoint memory not consumed")
	}
	if l.FreeMemory(topo.MotivR1) != 2 {
		t.Fatal("interior node memory must not be consumed (all-optical switching)")
	}
	for _, e := range c.EdgeIDs {
		if l.FreeChannels(e) != 0 {
			t.Fatal("channel not consumed")
		}
	}
	if l.UsedChannels() != 2 || l.UsedMemory() != 2 {
		t.Fatalf("used = %d channels, %d memory; want 2, 2", l.UsedChannels(), l.UsedMemory())
	}
	// Channel exhausted: same candidate cannot be reserved again.
	if l.CanReserve(c) {
		t.Fatal("reservation must fail once channels are gone")
	}
	if err := l.Reserve(c); err == nil {
		t.Fatal("Reserve must error when resources are missing")
	}
	if err := l.Release(c); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Double release overflows capacity.
	if err := l.Release(c); err == nil {
		t.Fatal("over-release must error")
	}
}

func TestLedgerValidateDetectsCorruption(t *testing.T) {
	_, net := motivationSet(t)
	l := NewLedger(net)
	l.chanFree[0] = -1
	if err := l.Validate(); err == nil {
		t.Fatal("negative channel balance accepted")
	}
	l.chanFree[0] = 0
	l.memFree[0] = net.Memory[0] + 1
	if err := l.Validate(); err == nil {
		t.Fatal("over-capacity memory accepted")
	}
}

func TestAttemptPlanAccounting(t *testing.T) {
	set, _ := motivationSet(t)
	c1 := set.Best(topo.MotivS1, topo.MotivR1)
	c2 := set.Best(topo.MotivS2, topo.MotivD2)
	plan := AttemptPlan{c1: 2, c2: 3}
	if plan.TotalAttempts() != 5 {
		t.Fatalf("TotalAttempts = %d, want 5", plan.TotalAttempts())
	}
	want := 2*0.9 + 3*0.8
	if math.Abs(plan.ExpectedSegments()-want) > 1e-12 {
		t.Fatalf("ExpectedSegments = %v, want %v", plan.ExpectedSegments(), want)
	}
}

func TestAttemptAllDeterministicAndDistributed(t *testing.T) {
	set, _ := motivationSet(t)
	c := set.Best(topo.MotivS1, topo.MotivR1) // p = 0.9
	plan := AttemptPlan{c: 1000}
	a := AttemptAll(plan, xrand.New(5))
	b := AttemptAll(plan, xrand.New(5))
	if len(a) != len(b) {
		t.Fatal("AttemptAll not deterministic for a fixed seed")
	}
	rate := float64(len(a)) / 1000
	if math.Abs(rate-0.9) > 0.04 {
		t.Fatalf("success rate %v, want ~0.9", rate)
	}
	for _, s := range a {
		if s.Pair() != segment.MakePairKey(topo.MotivS1, topo.MotivR1) {
			t.Fatal("segment endpoints wrong")
		}
		if s.Consumed() {
			t.Fatal("fresh segment must not be consumed")
		}
	}
}

func TestPoolTakeReturn(t *testing.T) {
	set, _ := motivationSet(t)
	c := set.Best(topo.MotivS1, topo.MotivR1)
	pk := segment.MakePairKey(topo.MotivS1, topo.MotivR1)
	pool := NewPool([]*Segment{
		{A: pk.U, B: pk.V, Cand: c},
		{A: pk.U, B: pk.V, Cand: c},
	})
	if pool.Available(pk) != 2 {
		t.Fatalf("Available = %d, want 2", pool.Available(pk))
	}
	s1 := pool.Take(pk)
	if s1 == nil || pool.Available(pk) != 1 {
		t.Fatal("Take failed")
	}
	s2 := pool.Take(pk)
	if s2 == nil || pool.Take(pk) != nil {
		t.Fatal("pool must exhaust after two takes")
	}
	pool.Return(s1)
	if pool.Available(pk) != 1 {
		t.Fatal("Return did not restore availability")
	}
	if got := pool.Pairs(); len(got) != 1 || got[0] != pk {
		t.Fatalf("Pairs = %v", got)
	}
	pool.Take(pk)
	if got := pool.Pairs(); len(got) != 0 {
		t.Fatalf("exhausted pool Pairs = %v", got)
	}
}

func buildConnection(t *testing.T, set *segment.Set) *Connection {
	t.Helper()
	cl := set.Best(topo.MotivS1, topo.MotivR1)
	cs := set.Best(topo.MotivR1, topo.MotivD1)
	conn := &Connection{
		Pair:  0,
		Nodes: graph.Path{topo.MotivS1, topo.MotivR1, topo.MotivD1},
		Segments: []*Segment{
			{A: cl.U(), B: cl.V(), Cand: cl},
			{A: cs.U(), B: cs.V(), Cand: cs},
		},
	}
	if err := conn.Validate(); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestConnectionJunctionsAndSwap(t *testing.T) {
	set, net := motivationSet(t)
	conn := buildConnection(t, set)
	j := conn.Junctions()
	if len(j) != 1 || j[0] != topo.MotivR1 {
		t.Fatalf("junctions = %v, want [r1]", j)
	}
	if math.Abs(conn.SuccessProb(net)-0.9) > 1e-12 {
		t.Fatalf("SuccessProb = %v, want 0.9", conn.SuccessProb(net))
	}
	// Monte-Carlo swap matches the analytic probability.
	rng := xrand.New(12)
	ok := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if conn.Swap(net, rng) {
			ok++
		}
	}
	if rate := float64(ok) / n; math.Abs(rate-0.9) > 0.01 {
		t.Fatalf("swap success rate = %v, want ~0.9", rate)
	}
	// Direct (single-segment) connection needs no swap.
	direct := &Connection{
		Pair:     1,
		Nodes:    graph.Path{topo.MotivS2, topo.MotivD2},
		Segments: []*Segment{{A: topo.MotivS2, B: topo.MotivD2, Cand: set.Best(topo.MotivS2, topo.MotivD2)}},
	}
	if len(direct.Junctions()) != 0 {
		t.Fatal("direct connection must have no junctions")
	}
	if direct.SuccessProb(net) != 1 {
		t.Fatal("direct connection succeeds with probability 1")
	}
}

func TestConnectionValidate(t *testing.T) {
	set, _ := motivationSet(t)
	conn := buildConnection(t, set)
	conn.Nodes = graph.Path{topo.MotivS1}
	if err := conn.Validate(); err == nil {
		t.Fatal("1-node connection accepted")
	}
	conn = buildConnection(t, set)
	conn.Segments = conn.Segments[:1]
	if err := conn.Validate(); err == nil {
		t.Fatal("segment/node count mismatch accepted")
	}
	conn = buildConnection(t, set)
	conn.Segments[0], conn.Segments[1] = conn.Segments[1], conn.Segments[0]
	if err := conn.Validate(); err == nil {
		t.Fatal("mis-ordered segments accepted")
	}
}

func TestQubitNormalizationAndFidelity(t *testing.T) {
	q := NewQubit(complex(3, 0), complex(4, 0))
	norm := real(q.Alpha)*real(q.Alpha) + real(q.Beta)*real(q.Beta)
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("norm = %v, want 1", norm)
	}
	if NewQubit(0, 0).Alpha != 1 {
		t.Fatal("zero vector must normalize to |0>")
	}
	a := NewQubit(1, 0)
	b := NewQubit(0, 1)
	if Fidelity(a, a) < 1-1e-12 || Fidelity(a, b) > 1e-12 {
		t.Fatal("fidelity of identical/orthogonal states wrong")
	}
	if Fidelity(nil, a) != 0 {
		t.Fatal("nil fidelity must be 0")
	}
}

func TestRandomQubitNormalized(t *testing.T) {
	rng := xrand.New(3)
	for i := 0; i < 100; i++ {
		q := RandomQubit(rng)
		n := Fidelity(q, q)
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("random qubit not normalized: %v", n)
		}
	}
}

func TestTeleportMovesState(t *testing.T) {
	set, _ := motivationSet(t)
	conn := buildConnection(t, set)
	rng := xrand.New(9)
	data := RandomQubit(rng)
	ref := NewQubit(data.Alpha, data.Beta)
	out := Teleport(conn, data)
	if out == nil {
		t.Fatal("teleport returned nil")
	}
	if Fidelity(out, ref) < 1-1e-12 {
		t.Fatal("state not transferred faithfully")
	}
	if !data.Collapsed() {
		t.Fatal("source qubit must collapse (no-cloning)")
	}
	if Fidelity(data, ref) != 0 {
		t.Fatal("collapsed qubit must have zero fidelity")
	}
	for _, s := range conn.Segments {
		if !s.Consumed() {
			t.Fatal("teleport must consume the connection's segments")
		}
	}
	// A collapsed qubit cannot be teleported again.
	if Teleport(conn, data) != nil {
		t.Fatal("teleporting a collapsed qubit must fail")
	}
	if Teleport(conn, nil) != nil {
		t.Fatal("teleporting nil must fail")
	}
}

func TestEstablishWithRetriesNoJunctions(t *testing.T) {
	set, net := motivationSet(t)
	c := set.Best(topo.MotivS2, topo.MotivD2)
	conn := &Connection{
		Pair:     1,
		Nodes:    graph.Path{topo.MotivS2, topo.MotivD2},
		Segments: []*Segment{{A: c.U(), B: c.V(), Cand: c}},
	}
	pool := NewPool(nil)
	if !conn.EstablishWithRetries(net, pool, xrand.New(1)) {
		t.Fatal("junction-free connection must always establish")
	}
	if len(conn.Spares) != 0 {
		t.Fatal("junction-free connection must not consume spares")
	}
}

func TestEstablishWithRetriesConsumesSpares(t *testing.T) {
	set, net := motivationSet(t)
	// Force the junction swap to fail often: set q very low and give the
	// pool plenty of spares; establishment must eventually succeed and
	// consume spares.
	net.SwapProb[topo.MotivR1] = 0.2
	cl := set.Best(topo.MotivS1, topo.MotivR1)
	cs := set.Best(topo.MotivR1, topo.MotivD1)
	mk := func(c *segment.Candidate) *Segment { return &Segment{A: c.U(), B: c.V(), Cand: c} }
	var spares []*Segment
	for i := 0; i < 200; i++ {
		spares = append(spares, mk(cl), mk(cs))
	}
	pool := NewPool(spares)
	conn := &Connection{
		Pair:     0,
		Nodes:    graph.Path{topo.MotivS1, topo.MotivR1, topo.MotivD1},
		Segments: []*Segment{mk(cl), mk(cs)},
	}
	rng := xrand.New(7)
	if !conn.EstablishWithRetries(net, pool, rng) {
		t.Fatal("establishment with 200 spares at q=0.2 should succeed")
	}
	if len(conn.Spares) == 0 {
		t.Fatal("expected some spares to be consumed at q=0.2 (seed-dependent but overwhelmingly likely)")
	}
	if len(conn.Spares)%2 != 0 {
		t.Fatal("spares must be consumed in left/right pairs")
	}
	for _, s := range conn.Spares {
		if !s.Consumed() {
			t.Fatal("consumed spare not marked consumed")
		}
	}
}

func TestEstablishWithRetriesFailsWithoutSpares(t *testing.T) {
	set, net := motivationSet(t)
	net.SwapProb[topo.MotivR1] = 0 // swap can never succeed
	cl := set.Best(topo.MotivS1, topo.MotivR1)
	cs := set.Best(topo.MotivR1, topo.MotivD1)
	mk := func(c *segment.Candidate) *Segment { return &Segment{A: c.U(), B: c.V(), Cand: c} }
	pool := NewPool(nil)
	conn := &Connection{
		Pair:     0,
		Nodes:    graph.Path{topo.MotivS1, topo.MotivR1, topo.MotivD1},
		Segments: []*Segment{mk(cl), mk(cs)},
	}
	if conn.EstablishWithRetries(net, pool, xrand.New(3)) {
		t.Fatal("q=0 with empty pool must fail")
	}
}

// Retry statistics: with q = 0.5 and unlimited spares, the expected number
// of retries per junction is 1; verify the empirical mean.
func TestEstablishWithRetriesGeometric(t *testing.T) {
	set, net := motivationSet(t)
	net.SwapProb[topo.MotivR1] = 0.5
	cl := set.Best(topo.MotivS1, topo.MotivR1)
	cs := set.Best(topo.MotivR1, topo.MotivD1)
	mk := func(c *segment.Candidate) *Segment { return &Segment{A: c.U(), B: c.V(), Cand: c} }
	rng := xrand.New(11)
	totalSpares := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		var inventory []*Segment
		for k := 0; k < 100; k++ {
			inventory = append(inventory, mk(cl), mk(cs))
		}
		pool := NewPool(inventory)
		conn := &Connection{
			Pair:     0,
			Nodes:    graph.Path{topo.MotivS1, topo.MotivR1, topo.MotivD1},
			Segments: []*Segment{mk(cl), mk(cs)},
		}
		if !conn.EstablishWithRetries(net, pool, rng) {
			t.Fatal("establishment with 100 spares at q=0.5 failed")
		}
		totalSpares += len(conn.Spares)
	}
	// E[retries] = (1-q)/q = 1, each consuming 2 spares.
	mean := float64(totalSpares) / trials
	if math.Abs(mean-2) > 0.15 {
		t.Fatalf("mean spares consumed = %.3f, want ~2", mean)
	}
}
