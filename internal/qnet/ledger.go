// Package qnet models the quantum-network runtime state inside one time
// slot: channel/memory ledgers with overdraft protection, entanglement
// segments and connections, the stochastic physical phase (segment creation
// attempts, quantum swapping) and qubit teleportation.
package qnet

import (
	"fmt"

	"see/internal/segment"
	"see/internal/topo"
)

// Ledger tracks the free quantum channels per link and free quantum memory
// per node during resource reservation. All mutations are checked: the
// ledger never goes negative and releases never exceed capacity.
type Ledger struct {
	chanCap  []int
	memCap   []int
	chanFree []int
	memFree  []int
}

// NewLedger returns a full ledger for the network.
func NewLedger(net *topo.Network) *Ledger {
	return NewLedgerWithCapacities(net, nil, nil)
}

// NewLedgerWithCapacities returns a full ledger with explicit per-link
// channel and per-node memory capacities overriding the network's tables
// (nil keeps the network values). Fault-aware engines reserve against the
// forecast-shrunk capacities this way, so planning on a full topology with
// announced outages is indistinguishable from planning on the pre-shrunk
// topology itself.
func NewLedgerWithCapacities(net *topo.Network, channels, memory []int) *Ledger {
	if channels == nil {
		channels = net.Channels
	}
	if memory == nil {
		memory = net.Memory
	}
	l := &Ledger{
		chanCap:  channels,
		memCap:   memory,
		chanFree: make([]int, net.NumLinks()),
		memFree:  make([]int, net.NumNodes()),
	}
	copy(l.chanFree, channels)
	copy(l.memFree, memory)
	return l
}

// Reset refills the ledger to its capacities, releasing every reservation
// at once. Engines keep one ledger per instance and Reset it at slot start
// instead of allocating a fresh one (the capacity tables never change
// within an engine's lifetime).
func (l *Ledger) Reset() {
	copy(l.chanFree, l.chanCap)
	copy(l.memFree, l.memCap)
}

// FreeChannels returns the free channel count of a link.
func (l *Ledger) FreeChannels(link int) int { return l.chanFree[link] }

// FreeMemory returns the free memory of a node.
func (l *Ledger) FreeMemory(u int) int { return l.memFree[u] }

// CanReserve reports whether one attempt over the candidate fits: one
// channel on each link of the route and one memory unit at each endpoint.
// Interior nodes of the route use all-optical switching and consume no
// memory (the paper's core observation).
func (l *Ledger) CanReserve(c *segment.Candidate) bool {
	for _, e := range c.EdgeIDs {
		if l.chanFree[e] < 1 {
			return false
		}
	}
	u, v := c.Path[0], c.Path[len(c.Path)-1]
	if u == v {
		return l.memFree[u] >= 2
	}
	return l.memFree[u] >= 1 && l.memFree[v] >= 1
}

// Reserve commits one attempt over the candidate.
func (l *Ledger) Reserve(c *segment.Candidate) error {
	if !l.CanReserve(c) {
		return fmt.Errorf("qnet: insufficient resources for segment %v", c.Path)
	}
	for _, e := range c.EdgeIDs {
		l.chanFree[e]--
	}
	l.memFree[c.Path[0]]--
	l.memFree[c.Path[len(c.Path)-1]]--
	return nil
}

// Release returns one attempt's resources to the ledger.
func (l *Ledger) Release(c *segment.Candidate) error {
	for _, e := range c.EdgeIDs {
		if l.chanFree[e]+1 > l.chanCap[e] {
			return fmt.Errorf("qnet: channel over-release on link %d", e)
		}
	}
	u, v := c.Path[0], c.Path[len(c.Path)-1]
	if l.memFree[u]+1 > l.memCap[u] || l.memFree[v]+1 > l.memCap[v] {
		return fmt.Errorf("qnet: memory over-release at segment %v", c.Path)
	}
	for _, e := range c.EdgeIDs {
		l.chanFree[e]++
	}
	l.memFree[u]++
	l.memFree[v]++
	return nil
}

// Validate checks the ledger invariants 0 ≤ free ≤ capacity.
func (l *Ledger) Validate() error {
	for e, f := range l.chanFree {
		if f < 0 || f > l.chanCap[e] {
			return fmt.Errorf("qnet: link %d free channels %d outside [0,%d]", e, f, l.chanCap[e])
		}
	}
	for u, f := range l.memFree {
		if f < 0 || f > l.memCap[u] {
			return fmt.Errorf("qnet: node %d free memory %d outside [0,%d]", u, f, l.memCap[u])
		}
	}
	return nil
}

// UsedChannels returns total channels currently reserved.
func (l *Ledger) UsedChannels() int {
	total := 0
	for e, f := range l.chanFree {
		total += l.chanCap[e] - f
	}
	return total
}

// UsedMemory returns total memory currently reserved.
func (l *Ledger) UsedMemory() int {
	total := 0
	for u, f := range l.memFree {
		total += l.memCap[u] - f
	}
	return total
}
