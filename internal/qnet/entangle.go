package qnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"see/internal/graph"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

// Segment is a successfully created entanglement segment: a Bell pair whose
// photons are stored at nodes A and B.
type Segment struct {
	// A < B are the endpoint nodes holding the entangled photons.
	A, B int
	// Cand is the physical realization the segment was created over.
	Cand *segment.Candidate
	// consumed marks the segment as used by a connection.
	consumed bool
	// wernerScale is the age-decay multiplier on the segment's Werner
	// parameter (0 means the zero-value default of 1: a fresh segment).
	// The state bank stamps it at withdrawal from the segment's banked
	// age, so carried segments arrive degraded.
	wernerScale float64
}

// Pair returns the endpoint pair key.
func (s *Segment) Pair() segment.PairKey { return segment.MakePairKey(s.A, s.B) }

// Consumed reports whether the segment has been assigned to a connection.
func (s *Segment) Consumed() bool { return s.consumed }

// WernerScale returns the age-decay multiplier applied to the segment's
// Werner parameter on top of its creation fidelity (1 for fresh segments).
func (s *Segment) WernerScale() float64 {
	if s.wernerScale == 0 {
		return 1
	}
	return s.wernerScale
}

// SetWernerScale stamps the age-decay multiplier (the state bank calls it
// at withdrawal; values are clamped to [0,1] by construction there).
func (s *Segment) SetWernerScale(w float64) { s.wernerScale = w }

// AttemptPlan maps each candidate realization to the number of creation
// attempts reserved for it (the x^k_uv of the paper).
type AttemptPlan map[*segment.Candidate]int

// TotalAttempts sums the attempts in the plan.
func (p AttemptPlan) TotalAttempts() int {
	total := 0
	for _, n := range p {
		total += n
	}
	return total
}

// ExpectedSegments returns Σ x^k_uv · p^k_uv over the plan.
func (p AttemptPlan) ExpectedSegments() float64 {
	var total float64
	for c, n := range p {
		total += float64(n) * c.Prob
	}
	return total
}

// SortedCandidates returns the plan's candidates in the deterministic
// order the physical phase resolves them: by endpoint pair, then candidate
// path.
func (p AttemptPlan) SortedCandidates() []*segment.Candidate {
	return p.SortedCandidatesInto(nil)
}

// SortedCandidatesInto is SortedCandidates writing into buf's backing
// array (grown as needed) so per-slot callers can reuse one scratch slice
// across slots instead of allocating per call.
func (p AttemptPlan) SortedCandidatesInto(buf []*segment.Candidate) []*segment.Candidate {
	cands := buf[:0]
	for c := range p {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.U() != b.U() {
			return a.U() < b.U()
		}
		if a.V() != b.V() {
			return a.V() < b.V()
		}
		return topo.Key(a.Path) < topo.Key(b.Path)
	})
	return cands
}

// AttemptObserver is notified of each physical creation attempt's outcome.
type AttemptObserver func(c *segment.Candidate, created bool)

// FaultModel is the chaos hook the physical phase consults (implemented by
// chaos.Injector). Implementations must be deterministic and must never
// consume the engine's rng: CandidateBlocked decides whether an attempt's
// physical route is down this slot (the attempt fails without an rng draw,
// keeping faulty runs reproducible from the fault plan alone), and
// SegmentDecohered decides, per realized segment in creation order, whether
// quantum memory lost it before the stitch phase.
type FaultModel interface {
	CandidateBlocked(c *segment.Candidate) bool
	SegmentDecohered() bool
}

// CapacityModel is the optional brownout extension a FaultModel may also
// implement (chaos.Injector does): CapAttempts bounds the attempts actually
// fired for a candidate by the per-slot channel budgets of browned-out
// links on its route, charging what it grants. Like blocked candidates,
// denied attempts fail without consuming rng, so brownout damage is a pure
// function of the fault plan.
type CapacityModel interface {
	CapAttempts(c *segment.Candidate, want int) int
}

// AttemptAll performs the physical phase: every reserved attempt succeeds
// independently with its candidate's probability. The result is sorted
// deterministically (by endpoint pair, then candidate path) so a fixed rng
// yields a fixed outcome regardless of map iteration order.
func AttemptAll(plan AttemptPlan, rng *rand.Rand) []*Segment {
	return AttemptAllObserved(plan, rng, nil)
}

// AttemptAllObserved is AttemptAll with a per-attempt observer (may be
// nil). The observer sees attempts in the same deterministic order and
// does not affect the rng stream.
func AttemptAllObserved(plan AttemptPlan, rng *rand.Rand, obs AttemptObserver) []*Segment {
	return AttemptAllFaulty(plan, rng, nil, obs)
}

// AttemptAllFaulty is AttemptAllObserved under a fault model (may be nil):
// attempts whose candidate is blocked fail deterministically, consuming no
// randomness, so the rng stream of the surviving attempts — and with it the
// whole slot — is a pure function of (engine seed, fault plan).
func AttemptAllFaulty(plan AttemptPlan, rng *rand.Rand, fm FaultModel, obs AttemptObserver) []*Segment {
	return AttemptAllFaultyScratch(plan, rng, fm, obs, nil)
}

// AttemptScratch holds the reusable per-slot buffers of the physical
// phase. Only the candidate ordering buffer lives here: realized segments
// themselves are slab-allocated fresh each call, because banked segments
// outlive the slot that created them (see the state bank) and must never
// be overwritten by a later slot's attempts.
type AttemptScratch struct {
	cands []*segment.Candidate
}

// AttemptAllFaultyScratch is AttemptAllFaulty reusing sc's buffers (nil
// behaves like AttemptAllFaulty). Identical rng consumption and results.
func AttemptAllFaultyScratch(plan AttemptPlan, rng *rand.Rand, fm FaultModel, obs AttemptObserver, sc *AttemptScratch) []*Segment {
	cm, _ := fm.(CapacityModel)
	var sorted []*segment.Candidate
	if sc != nil {
		sorted = plan.SortedCandidatesInto(sc.cands)
		sc.cands = sorted
	} else {
		sorted = plan.SortedCandidates()
	}
	// One slab allocation for every possible success this slot: successes
	// never exceed attempts, so append never regrows and pointers into the
	// slab stay valid for as long as any segment is referenced.
	slab := make([]Segment, 0, plan.TotalAttempts())
	out := make([]*Segment, 0, plan.TotalAttempts())
	for _, c := range sorted {
		if fm != nil && fm.CandidateBlocked(c) {
			if obs != nil {
				for k := 0; k < plan[c]; k++ {
					obs(c, false)
				}
			}
			continue
		}
		// Brownouts cap the attempts the route's channels can carry this
		// slot; the remainder fails deterministically, rng untouched.
		granted := plan[c]
		if cm != nil {
			granted = cm.CapAttempts(c, granted)
		}
		for k := 0; k < granted; k++ {
			created := xrand.Bernoulli(rng, c.Prob)
			if created {
				slab = append(slab, Segment{A: c.U(), B: c.V(), Cand: c})
				out = append(out, &slab[len(slab)-1])
			}
			if obs != nil {
				obs(c, created)
			}
		}
		if obs != nil {
			for k := granted; k < plan[c]; k++ {
				obs(c, false)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ApplyDecoherence filters realized segments through the fault model's
// memory-decoherence stream (in creation order) and returns the survivors
// plus the number lost. A nil model keeps everything.
func ApplyDecoherence(segs []*Segment, fm FaultModel) ([]*Segment, int) {
	if fm == nil {
		return segs, 0
	}
	kept := segs[:0]
	lost := 0
	for _, s := range segs {
		if fm.SegmentDecohered() {
			lost++
			continue
		}
		kept = append(kept, s)
	}
	return kept, lost
}

// Pool indexes realized segments by endpoint pair and hands them out to
// connections.
type Pool struct {
	byPair map[segment.PairKey][]*Segment
}

// NewPool builds a pool over realized segments.
func NewPool(segs []*Segment) *Pool {
	p := &Pool{byPair: make(map[segment.PairKey][]*Segment)}
	p.fill(segs)
	return p
}

// Reset repopulates the pool in place with a new slot's segments, reusing
// the index map (and its per-pair buckets' backing arrays where possible)
// instead of allocating a fresh pool every slot.
func (p *Pool) Reset(segs []*Segment) {
	for pk, bucket := range p.byPair {
		p.byPair[pk] = bucket[:0]
	}
	p.fill(segs)
	// Drop pairs that received nothing this slot so Pairs/Available see
	// exactly the same key set a fresh pool would.
	for pk, bucket := range p.byPair {
		if len(bucket) == 0 {
			delete(p.byPair, pk)
		}
	}
}

func (p *Pool) fill(segs []*Segment) {
	for _, s := range segs {
		p.byPair[s.Pair()] = append(p.byPair[s.Pair()], s)
	}
}

// Available returns how many unconsumed segments remain for a pair.
func (p *Pool) Available(pk segment.PairKey) int {
	n := 0
	for _, s := range p.byPair[pk] {
		if !s.consumed {
			n++
		}
	}
	return n
}

// Take consumes one segment for the pair, or returns nil if none remain.
func (p *Pool) Take(pk segment.PairKey) *Segment {
	for _, s := range p.byPair[pk] {
		if !s.consumed {
			s.consumed = true
			return s
		}
	}
	return nil
}

// Return un-consumes a segment (used when a partially assembled connection
// is rolled back).
func (p *Pool) Return(s *Segment) {
	s.consumed = false
}

// TakeBest consumes the pair's unconsumed segment maximizing score (first
// wins on ties, so the choice is deterministic), or returns nil if none
// remain. Floor-enforcing engines use it so a rejected assembly proves no
// segment combination for the path could have met the floor.
func (p *Pool) TakeBest(pk segment.PairKey, score func(s *Segment) float64) *Segment {
	var best *Segment
	bestScore := math.Inf(-1)
	for _, s := range p.byPair[pk] {
		if s.consumed {
			continue
		}
		if sc := score(s); sc > bestScore {
			best, bestScore = s, sc
		}
	}
	if best != nil {
		best.consumed = true
	}
	return best
}

// Pairs returns the endpoint pairs with at least one unconsumed segment,
// sorted.
func (p *Pool) Pairs() []segment.PairKey {
	keys := make([]segment.PairKey, 0, len(p.byPair))
	for pk := range p.byPair {
		if p.Available(pk) > 0 {
			keys = append(keys, pk)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	return keys
}

// Unconsumed returns every segment no connection consumed, in deterministic
// order (sorted endpoint pairs, then insertion order within a pair). The
// cross-slot state bank deposits from this list, so the set of banked
// segments is a pure function of the slot's outcome.
func (p *Pool) Unconsumed() []*Segment {
	var out []*Segment
	for _, pk := range p.Pairs() {
		for _, s := range p.byPair[pk] {
			if !s.consumed {
				out = append(out, s)
			}
		}
	}
	return out
}

// Connection is an end-to-end entanglement connection assembled from
// segments, pending its swap operations.
type Connection struct {
	// Pair indexes the SD pair the connection serves.
	Pair int
	// Nodes is the junction sequence s, j₁, …, d.
	Nodes graph.Path
	// Segments are the entanglement segments between consecutive junction
	// nodes.
	Segments []*Segment
	// Spares are extra segments consumed by junction-level swap retries
	// (see EstablishWithRetries).
	Spares []*Segment
	// Fidelity is the delivered end-to-end fidelity under the default
	// Werner model, recorded when the connection is established (0 until
	// then). It is computed by the same PredictFidelity the floor checks
	// use, over Segments only — spares replace measured photons, they do
	// not change the delivered pair count or composition length.
	Fidelity float64
}

// Junctions returns the intermediate nodes that must perform quantum
// swapping.
func (c *Connection) Junctions() []int {
	if len(c.Nodes) <= 2 {
		return nil
	}
	return c.Nodes[1 : len(c.Nodes)-1]
}

// Validate checks the connection's structural invariants.
func (c *Connection) Validate() error {
	if len(c.Nodes) < 2 {
		return fmt.Errorf("qnet: connection with %d nodes", len(c.Nodes))
	}
	if len(c.Segments) != len(c.Nodes)-1 {
		return fmt.Errorf("qnet: %d segments for %d nodes", len(c.Segments), len(c.Nodes))
	}
	for i, s := range c.Segments {
		want := segment.MakePairKey(c.Nodes[i], c.Nodes[i+1])
		if s.Pair() != want {
			return fmt.Errorf("qnet: segment %d spans %+v, want %+v", i, s.Pair(), want)
		}
	}
	return nil
}

// Swap performs the quantum swapping at every junction; the connection is
// established only if all swaps succeed (paper step iv).
func (c *Connection) Swap(net *topo.Network, rng *rand.Rand) bool {
	for _, u := range c.Junctions() {
		if !xrand.Bernoulli(rng, net.SwapProb[u]) {
			return false
		}
	}
	return true
}

// SuccessProb returns the analytic probability that all junction swaps
// succeed in a single pass (no retries).
func (c *Connection) SuccessProb(net *topo.Network) float64 {
	p := 1.0
	for _, u := range c.Junctions() {
		p *= net.SwapProb[u]
	}
	return p
}

// EstablishWithRetries performs the connection's junction swaps with
// segment-level retries: when the swap at a junction fails, the two photons
// it measured are lost, but if the pool still holds a spare segment for
// each of the junction's incident hops, the junction re-creates its local
// pair state and retries. This is exactly the failure mode the provisioning
// LP budgets for when constraint (1d) apportions √(q_u·q_v) of the swap
// success onto each incident segment — redundant segments convert swap
// failures into extra resource consumption instead of lost connections.
//
// Consumed spares are recorded in c.Spares. The return value reports
// whether every junction eventually succeeded; on failure all consumed
// segments stay consumed (the photons are gone either way).
func (c *Connection) EstablishWithRetries(net *topo.Network, pool *Pool, rng *rand.Rand) bool {
	return c.EstablishWithRetriesObserved(net, pool, rng, nil)
}

// SwapObserver is notified of each sampled quantum swap's outcome.
type SwapObserver func(junction int, ok bool)

// EstablishWithRetriesObserved is EstablishWithRetries with a per-swap
// observer (may be nil); the observer does not affect the rng stream.
func (c *Connection) EstablishWithRetriesObserved(net *topo.Network, pool *Pool, rng *rand.Rand, obs SwapObserver) bool {
	return c.EstablishOrderedObserved(net, pool, rng, obs, SwapOrderPath)
}

// EstablishOrderedObserved is EstablishWithRetriesObserved under an
// explicit swap-order policy. SwapOrderPath consumes the rng stream
// byte-identically to the historical source-to-destination loop;
// SwapOrderGreedy visits junctions in ascending swap probability (ties by
// path position), so connections doomed by an unreliable junction fail
// before reliable junctions burn rng draws and spare segments. On success
// the delivered Fidelity is recorded from the connection's segments —
// swap-order-independent by the Werner algebra's commutativity.
func (c *Connection) EstablishOrderedObserved(net *topo.Network, pool *Pool, rng *rand.Rand, obs SwapObserver, order SwapOrder) bool {
	established := true
	if order == SwapOrderGreedy && len(c.Nodes) > 3 {
		idx := make([]int, 0, len(c.Nodes)-2)
		for i := 1; i+1 < len(c.Nodes); i++ {
			idx = append(idx, i)
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return net.SwapProb[c.Nodes[idx[a]]] < net.SwapProb[c.Nodes[idx[b]]]
		})
		for _, i := range idx {
			if !c.swapAtJunction(net, pool, rng, obs, i) {
				established = false
				break
			}
		}
	} else {
		for i := 1; i+1 < len(c.Nodes); i++ {
			if !c.swapAtJunction(net, pool, rng, obs, i) {
				established = false
				break
			}
		}
	}
	if established {
		c.Fidelity = DefaultFidelityModel().PredictFidelity(c.Segments, func(s *Segment) float64 {
			if s.Cand == nil {
				return 0
			}
			return net.PathLengthKM(s.Cand.Path)
		})
	}
	return established
}

// swapAtJunction samples the swap at junction index i of the path,
// retrying on spare segments of the junction's two incident hops while the
// pool holds a spare on each side.
func (c *Connection) swapAtJunction(net *topo.Network, pool *Pool, rng *rand.Rand, obs SwapObserver, i int) bool {
	junction := c.Nodes[i]
	left := segment.MakePairKey(c.Nodes[i-1], c.Nodes[i])
	right := segment.MakePairKey(c.Nodes[i], c.Nodes[i+1])
	for {
		ok := xrand.Bernoulli(rng, net.SwapProb[junction])
		if obs != nil {
			obs(junction, ok)
		}
		if ok {
			return true
		}
		// Swap failed: the segments on both sides of the junction are
		// destroyed. Retry only if spares exist on both sides.
		if pool.Available(left) < 1 || pool.Available(right) < 1 {
			return false
		}
		c.Spares = append(c.Spares, pool.Take(left), pool.Take(right))
	}
}
