package qnet

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Qubit is a single-qubit pure state α|0⟩ + β|1⟩. It is the payload of
// teleportation in the protocol layer; the simulator does not track full
// multi-qubit density matrices — entanglement bookkeeping lives in Segment
// and Connection — but carrying real amplitudes lets tests verify that
// teleportation moves the state rather than copying it (no-cloning).
type Qubit struct {
	Alpha, Beta complex128
	// collapsed marks a qubit whose state was destroyed by measurement.
	collapsed bool
}

// NewQubit returns the normalized state (α, β). Zero vectors normalize to
// |0⟩.
func NewQubit(alpha, beta complex128) *Qubit {
	n := math.Sqrt(real(alpha*cmplx.Conj(alpha) + beta*cmplx.Conj(beta)))
	if n == 0 {
		return &Qubit{Alpha: 1}
	}
	return &Qubit{Alpha: alpha / complex(n, 0), Beta: beta / complex(n, 0)}
}

// RandomQubit draws a Haar-ish random pure state.
func RandomQubit(rng *rand.Rand) *Qubit {
	theta := rng.Float64() * math.Pi
	phi := rng.Float64() * 2 * math.Pi
	return NewQubit(
		complex(math.Cos(theta/2), 0),
		cmplx.Exp(complex(0, phi))*complex(math.Sin(theta/2), 0),
	)
}

// Collapsed reports whether the qubit's state has been destroyed.
func (q *Qubit) Collapsed() bool { return q.collapsed }

// Fidelity returns |⟨a|b⟩|² for two pure states, or 0 if either has
// collapsed.
func Fidelity(a, b *Qubit) float64 {
	if a == nil || b == nil || a.collapsed || b.collapsed {
		return 0
	}
	ip := cmplx.Conj(a.Alpha)*b.Alpha + cmplx.Conj(a.Beta)*b.Beta
	return real(ip * cmplx.Conj(ip))
}

// Teleport transfers the data qubit's state over an established
// entanglement connection. The source qubit collapses (it was measured
// jointly with the local Bell photon) and each segment of the connection is
// consumed; the returned qubit holds the state at the destination. The
// caller is responsible for having verified that all swaps succeeded — the
// paper's step iv reports swap results before sources teleport.
func Teleport(conn *Connection, data *Qubit) *Qubit {
	if data == nil || data.collapsed {
		return nil
	}
	out := &Qubit{Alpha: data.Alpha, Beta: data.Beta}
	// The Bell measurement destroys the source state (no-cloning) and the
	// classical-correction step leaves the destination photon in the data
	// state. An entanglement connection teleports one and only one qubit.
	data.collapsed = true
	data.Alpha, data.Beta = 0, 0
	for _, s := range conn.Segments {
		s.consumed = true
	}
	return out
}
