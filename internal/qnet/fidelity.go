package qnet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"see/internal/segment"
	"see/internal/topo"
)

// FidelityModel estimates end-to-end entanglement fidelity under a
// Werner-state noise model. The paper optimizes throughput only and leaves
// fidelity to future work; this extension makes the SEE-vs-REPS fidelity
// trade-off measurable: segmented establishment crosses each fibre span in
// one optical shot (fewer noisy swap operations) but its photons travel
// farther before detection (more transmission depolarization).
type FidelityModel struct {
	// F0 is the fidelity of a freshly created Bell pair over zero
	// distance (detector/source imperfections only). Typical: 0.99.
	F0 float64
	// DecayKM is the depolarization length: transmission over l km scales
	// the Werner parameter by e^(−l/DecayKM). Typical: 20,000 km for
	// purified links (the simulator's default keeps fidelity secondary to
	// throughput, as in the paper).
	DecayKM float64
	// SwapF0 scales the Werner parameter at every swap operation,
	// modelling imperfect Bell-state measurement. Typical: 0.98.
	SwapF0 float64
}

// DefaultFidelityModel returns plausible near-term parameters.
func DefaultFidelityModel() FidelityModel {
	return FidelityModel{F0: 0.99, DecayKM: 20000, SwapF0: 0.98}
}

// wernerOf converts fidelity F to the Werner parameter w = (4F−1)/3.
func wernerOf(f float64) float64 { return (4*f - 1) / 3 }

// fidelityOf converts a Werner parameter back to fidelity.
func fidelityOf(w float64) float64 { return (3*w + 1) / 4 }

// SegmentFidelity is the fidelity of one entanglement segment created over
// lengthKM of fibre.
func (m FidelityModel) SegmentFidelity(lengthKM float64) float64 {
	w := wernerOf(m.F0) * math.Exp(-lengthKM/m.DecayKM)
	return fidelityOf(w)
}

// SwapFidelity composes two Werner states joined by an (imperfect) swap:
// Werner parameters multiply, scaled by the measurement quality.
func (m FidelityModel) SwapFidelity(f1, f2 float64) float64 {
	w := wernerOf(f1) * wernerOf(f2) * wernerOf(m.SwapF0)
	return fidelityOf(w)
}

// ConnectionFidelity folds a connection's segments left to right through
// the swap composition. Segments use their realization's physical length.
func (m FidelityModel) ConnectionFidelity(c *Connection, lengthOf func(s *Segment) float64) float64 {
	if len(c.Segments) == 0 {
		return 0
	}
	f := m.SegmentFidelity(lengthOf(c.Segments[0]))
	for _, s := range c.Segments[1:] {
		f = m.SwapFidelity(f, m.SegmentFidelity(lengthOf(s)))
	}
	return f
}

// PredictFidelity is the end-to-end fidelity of a connection assembled from
// segs, including each segment's age-decay Werner scale (see
// Segment.WernerScale). The Werner composition is associative and
// commutative, so the value is independent of the swap order: it is both
// the decision-time prediction the fidelity floors gate on and the
// report-time value recorded on established connections — one function, so
// the two can never drift.
func (m FidelityModel) PredictFidelity(segs []*Segment, lengthOf func(s *Segment) float64) float64 {
	if len(segs) == 0 {
		return 0
	}
	w := 1.0
	for _, s := range segs {
		w *= wernerOf(m.F0) * math.Exp(-lengthOf(s)/m.DecayKM) * s.WernerScale()
	}
	sw := wernerOf(m.SwapF0)
	for i := 1; i < len(segs); i++ {
		w *= sw
	}
	return fidelityOf(w)
}

// FloorSpec is a per-request fidelity-floor table: Default applies to every
// SD pair without an explicit entry, PerPair overrides it by pair index. A
// nil spec (or one with all-zero floors) disables floor enforcement.
type FloorSpec struct {
	// Default is the floor applied to pairs without a PerPair entry.
	Default float64
	// PerPair maps SD-pair index to its floor, overriding Default.
	PerPair map[int]float64
}

// Floor returns the fidelity floor of the SD pair (0 = unconstrained).
// A nil spec floors nothing.
func (f *FloorSpec) Floor(pair int) float64 {
	if f == nil {
		return 0
	}
	if v, ok := f.PerPair[pair]; ok {
		return v
	}
	return f.Default
}

// IsZero reports whether the spec constrains nothing.
func (f *FloorSpec) IsZero() bool {
	if f == nil {
		return true
	}
	if f.Default != 0 {
		return false
	}
	for _, v := range f.PerPair {
		if v != 0 {
			return false
		}
	}
	return true
}

// String renders the spec in the canonical form ParseFloorSpec accepts:
// the default floor (omitted when zero and per-pair entries exist),
// followed by pair=floor entries in ascending pair order.
func (f *FloorSpec) String() string {
	if f == nil {
		return ""
	}
	var parts []string
	if f.Default != 0 || len(f.PerPair) == 0 {
		parts = append(parts, strconv.FormatFloat(f.Default, 'g', -1, 64))
	}
	idx := make([]int, 0, len(f.PerPair))
	for i := range f.PerPair {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		parts = append(parts, fmt.Sprintf("%d=%s", i, strconv.FormatFloat(f.PerPair[i], 'g', -1, 64)))
	}
	return strings.Join(parts, ";")
}

// ParseFloorSpec parses a compact fidelity-floor spec: ';'-separated items,
// each either a bare floor in [0,1] (the default floor, at most once) or
// pair=floor for one SD pair. NaN, infinite and out-of-range floors are
// rejected with precise errors, as are duplicate entries.
//
//	0.8          every pair needs fidelity ≥ 0.8
//	0.8;3=0.95   pair 3 needs 0.95, everyone else 0.8
//	2=0.9        only pair 2 is floored
func ParseFloorSpec(s string) (*FloorSpec, error) {
	if s == "" {
		return nil, fmt.Errorf("qnet: empty fidelity-floor spec")
	}
	spec := &FloorSpec{}
	haveDefault := false
	for _, item := range strings.Split(s, ";") {
		if item == "" {
			return nil, fmt.Errorf("qnet: empty item in fidelity-floor spec %q", s)
		}
		if k, v, ok := strings.Cut(item, "="); ok {
			pair, err := strconv.Atoi(k)
			if err != nil {
				return nil, fmt.Errorf("qnet: bad pair index %q in fidelity-floor spec: %v", k, err)
			}
			if pair < 0 {
				return nil, fmt.Errorf("qnet: negative pair index %d in fidelity-floor spec", pair)
			}
			floor, err := parseFloor(v)
			if err != nil {
				return nil, err
			}
			if _, dup := spec.PerPair[pair]; dup {
				return nil, fmt.Errorf("qnet: duplicate floor for pair %d", pair)
			}
			if spec.PerPair == nil {
				spec.PerPair = make(map[int]float64)
			}
			spec.PerPair[pair] = floor
			continue
		}
		floor, err := parseFloor(item)
		if err != nil {
			return nil, err
		}
		if haveDefault {
			return nil, fmt.Errorf("qnet: duplicate default floor %q", item)
		}
		haveDefault = true
		spec.Default = floor
	}
	return spec, nil
}

func parseFloor(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("qnet: bad floor %q: %v", s, err)
	}
	if math.IsNaN(v) {
		return 0, fmt.Errorf("qnet: floor %q is NaN", s)
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("qnet: floor %v out of range [0,1]", v)
	}
	return v, nil
}

// FloorPolicy is the fidelity-floor decision logic shared by every
// engine's stitch phase. For floored pairs segments are taken best-first
// by their Werner contribution, so one predicted-fidelity miss proves the
// pool cannot serve the floor over that route: callers mark the candidate
// floor-dead for the rest of the slot, which is sound because available
// inventory only shrinks as the stitch pass proceeds.
type FloorPolicy struct {
	floors *FloorSpec
	model  FidelityModel
	net    *topo.Network
}

// NewFloorPolicy builds the policy under the default fidelity model; a nil
// or all-zero spec yields an inactive policy whose Take degenerates to
// Pool.Take, keeping floor-disabled stitch loops byte-identical to
// pre-floor behavior.
func NewFloorPolicy(floors *FloorSpec, net *topo.Network) FloorPolicy {
	return FloorPolicy{floors: floors, model: DefaultFidelityModel(), net: net}
}

// Active reports whether any pair has a nonzero floor.
func (f FloorPolicy) Active() bool { return !f.floors.IsZero() }

// LengthOf is the physical fibre length of a segment's realization
// (candidate-less segments decay nothing).
func (f FloorPolicy) LengthOf(s *Segment) float64 {
	if s.Cand == nil {
		return 0
	}
	return f.net.PathLengthKM(s.Cand.Path)
}

// Score orders a pair's available segments by their contribution to the
// composed Werner parameter (decayed by fibre length and banked age), so
// TakeBest maximizes the predicted end-to-end fidelity.
func (f FloorPolicy) Score(s *Segment) float64 {
	return s.WernerScale() * math.Exp(-f.LengthOf(s)/f.model.DecayKM)
}

// Take draws a segment for the given commodity: best-first for floored
// pairs, historical FIFO order otherwise.
func (f FloorPolicy) Take(pool *Pool, commodity int, pk segment.PairKey) *Segment {
	if f.floors.Floor(commodity) > 0 {
		return pool.TakeBest(pk, f.Score)
	}
	return pool.Take(pk)
}

// Rejects reports whether the assembled segments' predicted fidelity
// misses the commodity's floor.
func (f FloorPolicy) Rejects(commodity int, segs []*Segment) bool {
	floor := f.floors.Floor(commodity)
	return floor > 0 && f.model.PredictFidelity(segs, f.LengthOf) < floor
}

// SwapOrder selects the order the stitch phase performs a connection's
// junction swaps in. Werner fidelity is swap-order-independent (the algebra
// is associative and commutative), but the order changes which connections
// survive and how many spare segments failed swaps burn.
type SwapOrder int

const (
	// SwapOrderPath swaps junctions in path order, source to destination
	// (the default; byte-identical to the pre-policy behavior).
	SwapOrderPath SwapOrder = iota
	// SwapOrderGreedy swaps the least reliable junction first (ascending
	// swap probability, ties by path position), the greedy order of the
	// NIST path-graph swapping study: doomed connections fail before their
	// reliable junctions consume rng draws and spare segments.
	SwapOrderGreedy
)

// String renders the order in the form ParseSwapOrder accepts.
func (o SwapOrder) String() string {
	switch o {
	case SwapOrderPath:
		return "path"
	case SwapOrderGreedy:
		return "greedy"
	}
	return fmt.Sprintf("SwapOrder(%d)", int(o))
}

// ParseSwapOrder parses a swap-order policy name.
func ParseSwapOrder(s string) (SwapOrder, error) {
	switch s {
	case "path":
		return SwapOrderPath, nil
	case "greedy":
		return SwapOrderGreedy, nil
	}
	return 0, fmt.Errorf("qnet: unknown swap order %q (want path or greedy)", s)
}
