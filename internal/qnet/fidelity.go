package qnet

import "math"

// FidelityModel estimates end-to-end entanglement fidelity under a
// Werner-state noise model. The paper optimizes throughput only and leaves
// fidelity to future work; this extension makes the SEE-vs-REPS fidelity
// trade-off measurable: segmented establishment crosses each fibre span in
// one optical shot (fewer noisy swap operations) but its photons travel
// farther before detection (more transmission depolarization).
type FidelityModel struct {
	// F0 is the fidelity of a freshly created Bell pair over zero
	// distance (detector/source imperfections only). Typical: 0.99.
	F0 float64
	// DecayKM is the depolarization length: transmission over l km scales
	// the Werner parameter by e^(−l/DecayKM). Typical: 20,000 km for
	// purified links (the simulator's default keeps fidelity secondary to
	// throughput, as in the paper).
	DecayKM float64
	// SwapF0 scales the Werner parameter at every swap operation,
	// modelling imperfect Bell-state measurement. Typical: 0.98.
	SwapF0 float64
}

// DefaultFidelityModel returns plausible near-term parameters.
func DefaultFidelityModel() FidelityModel {
	return FidelityModel{F0: 0.99, DecayKM: 20000, SwapF0: 0.98}
}

// wernerOf converts fidelity F to the Werner parameter w = (4F−1)/3.
func wernerOf(f float64) float64 { return (4*f - 1) / 3 }

// fidelityOf converts a Werner parameter back to fidelity.
func fidelityOf(w float64) float64 { return (3*w + 1) / 4 }

// SegmentFidelity is the fidelity of one entanglement segment created over
// lengthKM of fibre.
func (m FidelityModel) SegmentFidelity(lengthKM float64) float64 {
	w := wernerOf(m.F0) * math.Exp(-lengthKM/m.DecayKM)
	return fidelityOf(w)
}

// SwapFidelity composes two Werner states joined by an (imperfect) swap:
// Werner parameters multiply, scaled by the measurement quality.
func (m FidelityModel) SwapFidelity(f1, f2 float64) float64 {
	w := wernerOf(f1) * wernerOf(f2) * wernerOf(m.SwapF0)
	return fidelityOf(w)
}

// ConnectionFidelity folds a connection's segments left to right through
// the swap composition. Segments use their realization's physical length.
func (m FidelityModel) ConnectionFidelity(c *Connection, lengthOf func(s *Segment) float64) float64 {
	if len(c.Segments) == 0 {
		return 0
	}
	f := m.SegmentFidelity(lengthOf(c.Segments[0]))
	for _, s := range c.Segments[1:] {
		f = m.SwapFidelity(f, m.SegmentFidelity(lengthOf(s)))
	}
	return f
}
