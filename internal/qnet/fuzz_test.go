package qnet

import (
	"reflect"
	"testing"
)

// FuzzParseFloorSpec checks the fidelity-floor parser on arbitrary input:
// it must never panic, reject NaN and out-of-range floors, and any spec it
// accepts must round-trip through the canonical String rendering —
// re-parsing the rendering succeeds, yields an equal spec, and renders to
// the same string (String is a fixed point after one canonicalization).
func FuzzParseFloorSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"0.8",
		"0",
		"1",
		"0.8;3=0.95",
		"2=0.9",
		"0.5;0=0.6;1=0.7;2=0.8",
		"0.8;0.9",
		"3=0.9;3=0.95",
		"-0.1",
		"1.5",
		"NaN",
		"+Inf",
		"-1=0.5",
		"x=0.5",
		"3=",
		"=0.5",
		";;",
		"0.8;",
		"1e-3",
		"9999999=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseFloorSpec(s)
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatalf("ParseFloorSpec(%q) returned nil spec and nil error", s)
		}
		if spec.Default < 0 || spec.Default > 1 {
			t.Fatalf("accepted out-of-range default floor %v from %q", spec.Default, s)
		}
		for pair, v := range spec.PerPair {
			if pair < 0 || v < 0 || v > 1 {
				t.Fatalf("accepted out-of-range entry %d=%v from %q", pair, v, s)
			}
		}
		canon := spec.String()
		again, err := ParseFloorSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round-trip changed the spec: %q gave %+v, canonical %q gave %+v", s, spec, canon, again)
		}
		if fixed := again.String(); fixed != canon {
			t.Fatalf("String is not canonical: %q then %q", canon, fixed)
		}
	})
}
