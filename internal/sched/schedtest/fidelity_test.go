package schedtest

import (
	"reflect"
	"testing"

	"see/internal/engines"
	"see/internal/oracle"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/state"
)

// TestOracleBoundsDeliveries pins the capacity oracle's central promise
// against the whole registry: no engine ever delivers more connections for
// a pair than the oracle's Hard bound allows. Without a bank the bound is
// per-slot. With a carry-over bank a banked segment crossed the channel
// cut in the slot that created it, so the per-slot form does not apply —
// the bound holds cumulatively instead: T slots from an empty bank deliver
// at most T·Hard.
func TestOracleBoundsDeliveries(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+9)
	if err != nil {
		t.Fatal(err)
	}
	bounds := oracle.ComputeBounds(net, pairs)
	for i, b := range bounds {
		if b.Hard < 0 {
			t.Fatalf("pair %d: negative Hard bound %d", i, b.Hard)
		}
		if b.Expected < 0 || b.Expected > float64(b.Hard) {
			t.Fatalf("pair %d: Expected %v outside [0, Hard=%d]", i, b.Expected, b.Hard)
		}
	}
	const slots = 6
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		for _, carry := range []bool{false, true} {
			name := "memoryless"
			if carry {
				name = "carry"
			}
			t.Run(name, func(t *testing.T) {
				eng, err := engines.New(alg, net, pairs, engines.Config{})
				if err != nil {
					t.Fatal(err)
				}
				if carry {
					st, ok := eng.(sched.Stateful)
					if !ok {
						t.Fatalf("%v does not implement sched.Stateful", alg)
					}
					st.AttachBank(state.NewBank(net, state.Policy{CarrySlots: 2}))
				}
				rng := NewRng(41)
				total := make([]int, len(pairs))
				for s := 0; s < slots; s++ {
					res, err := eng.RunSlot(rng)
					if err != nil {
						t.Fatalf("slot %d: %v", s, err)
					}
					for i, n := range res.PerPair {
						total[i] += n
						if !carry && n > bounds[i].Hard {
							t.Errorf("slot %d pair %d: delivered %d > Hard bound %d", s, i, n, bounds[i].Hard)
						}
					}
				}
				for i := range pairs {
					if total[i] > slots*bounds[i].Hard {
						t.Errorf("pair %d: delivered %d over %d slots > cumulative bound %d",
							i, total[i], slots, slots*bounds[i].Hard)
					}
				}
			})
		}
	})
}

// TestFidelityMatchesRecompute checks that with floors disabled the
// fidelity stamped on every delivered connection is exactly what the
// default model recomputes from the connection's own segments — the same
// function with the same lengthOf, so equality is exact, not approximate.
// Recomputation happens inside the slot loop because segment arenas may be
// recycled across slots.
func TestFidelityMatchesRecompute(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+10)
	if err != nil {
		t.Fatal(err)
	}
	model := qnet.DefaultFidelityModel()
	lengthOf := func(s *qnet.Segment) float64 {
		if s.Cand == nil {
			return 0
		}
		return net.PathLengthKM(s.Cand.Path)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		eng, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rng := NewRng(43)
		checked := 0
		for s := 0; s < testSlots; s++ {
			res, err := eng.RunSlot(rng)
			if err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			for ci, c := range res.Connections {
				want := model.PredictFidelity(c.Segments, lengthOf)
				if c.Fidelity != want {
					t.Errorf("slot %d connection %d: Fidelity %v, recomputed %v", s, ci, c.Fidelity, want)
				}
				checked++
			}
		}
		if checked == 0 && alg != sched.Oracle {
			t.Errorf("%v delivered no connections to check", alg)
		}
	})
}

// TestFloorsEnforced runs every engine under a tight fidelity floor and
// checks the enforcement contract: nothing below the floor is ever
// delivered, and (across the registry as a whole) the floor both rejects
// candidates and still lets compliant connections through — the floor is
// neither vacuous nor a total outage on this instance.
func TestFloorsEnforced(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+11)
	if err != nil {
		t.Fatal(err)
	}
	floors := &qnet.FloorSpec{Default: 0.8}
	delivered, rejected := 0, 0
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		eng, err := engines.New(alg, net, pairs, engines.Config{FidelityFloors: floors})
		if err != nil {
			t.Fatal(err)
		}
		rng := NewRng(47)
		for s := 0; s < testSlots; s++ {
			res, err := eng.RunSlot(rng)
			if err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			if res.FloorRejected < 0 {
				t.Fatalf("slot %d: negative FloorRejected %d", s, res.FloorRejected)
			}
			rejected += res.FloorRejected
			for ci, c := range res.Connections {
				if floor := floors.Floor(c.Pair); c.Fidelity < floor {
					t.Errorf("slot %d connection %d: delivered fidelity %v below floor %v", s, ci, c.Fidelity, floor)
				}
				delivered++
			}
		}
	})
	if delivered == 0 {
		t.Error("floor 0.8 delivered nothing across the whole registry; floor too tight to test enforcement")
	}
	if rejected == 0 {
		t.Error("floor 0.8 rejected nothing across the whole registry; floor too loose to test enforcement")
	}
}

// TestDisabledFidelityKnobsByteIdentical pins the disabled paths of every
// knob this layer added: an all-zero floor spec, the explicit path swap
// order (the zero value), and carry-aware LP pricing without a bank must
// all leave every engine byte-identical to a plain build.
func TestDisabledFidelityKnobsByteIdentical(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+12)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		plain, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		knobbed, err := engines.New(alg, net, pairs, engines.Config{
			FidelityFloors: &qnet.FloorSpec{},
			SwapOrder:      qnet.SwapOrderPath,
			CarryAwareLP:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(plain, 53, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(knobbed, 53, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("disabled fidelity knobs changed the run")
		}
	})
}
