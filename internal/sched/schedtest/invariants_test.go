package schedtest

import (
	"reflect"
	"testing"

	"see/internal/chaos"
	"see/internal/engines"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/topo"
)

// testNodes/testPairs/testSlots size every invariant run: big enough for
// multi-hop paths and contention, small enough for the LP engines under
// -race.
const (
	testNodes = 40
	testPairs = 8
	testSlots = 3
	testSeed  = 20220406
)

// TestRegistryComplete pins the engine registry: the paper trio, the
// repo-grown baselines, the Q-PASS-style offline contrast, the fault-aware
// variants and the capacity-bound oracle, in enum order. A new engine must
// be added here deliberately — and by being registered it automatically
// enters every other test in this package.
func TestRegistryComplete(t *testing.T) {
	want := []sched.Algorithm{
		sched.SEE, sched.REPS, sched.E2E, sched.Greedy, sched.Contend,
		sched.QPass, sched.ContendAware, sched.SEEAware, sched.Oracle,
	}
	if got := engines.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("engines.List() = %v, want %v", got, want)
	}
}

// forEachEngine runs the check as a subtest per registered algorithm.
func forEachEngine(t *testing.T, fn func(t *testing.T, alg sched.Algorithm)) {
	for _, alg := range engines.List() {
		t.Run(alg.String(), func(t *testing.T) { fn(t, alg) })
	}
}

// TestDeterministicAcrossWorkers checks the strongest cross-engine
// contract: the same instance and rng seed produce reflect.DeepEqual slot
// results at every worker count. The LP engines parallelize their pricing
// rounds across workers, so this catches any scheduling-dependent
// reduction order; the non-LP engines ignore Workers and must stay
// deterministic too. Run under -race (make verify does) this also shakes
// out data races in the pricing pools.
func TestDeterministicAcrossWorkers(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		var base []sched.SlotResult
		for _, workers := range []int{1, 4, 8} {
			eng, err := engines.New(alg, net, pairs, engines.Config{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			got, err := Run(eng, 7, testSlots)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if base == nil {
				base = got
				continue
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("workers=%d diverged from workers=1", workers)
			}
		}
		// A second engine over the same instance and seed must reproduce
		// the run exactly (no hidden construction-order state).
		eng, err := engines.New(alg, net, pairs, engines.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		again, err := Run(eng, 7, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, again) {
			t.Error("rebuilt engine diverged on the same seed")
		}
	})
}

// TestSlotResultInvariants checks every engine's per-slot counters and
// connections against the shared contract (CheckSlotResult).
func TestSlotResultInvariants(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		eng, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		results, err := Run(eng, 11, 6)
		if err != nil {
			t.Fatal(err)
		}
		for s, res := range results {
			if err := CheckSlotResult(net, pairs, res); err != nil {
				t.Errorf("slot %d: %v", s, err)
			}
		}
	})
}

// TestReservationConservation reconciles the tracer's AttemptReserved
// stream with the slot results and the network's memory capacities: event
// sums must equal SlotResult.Attempts and no node may hold more reserved
// attempts than memory units.
func TestReservationConservation(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+2)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		tr := &RecordingTracer{}
		eng, err := engines.New(alg, net, pairs, engines.Config{Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		results, err := Run(eng, 13, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Slots) != len(results) {
			t.Fatalf("tracer saw %d slots, engine ran %d", len(tr.Slots), len(results))
		}
		for s, res := range results {
			if err := CheckReservations(net, tr.Slots[s], res); err != nil {
				t.Errorf("slot %d: %v", s, err)
			}
		}
	})
}

// TestZeroChaosIsByteIdentical checks the chaos layer's disabled path: an
// injector built from a zero-value fault plan must leave every engine
// byte-identical to a run with no injector at all.
func TestZeroChaosIsByteIdentical(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+3)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		plain, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := chaos.NewInjector(&chaos.FaultPlan{}, net)
		if err != nil {
			t.Fatal(err)
		}
		chaotic, err := engines.New(alg, net, pairs, engines.Config{Chaos: inj})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(plain, 17, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(chaotic, 17, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("zero-value fault plan changed the run")
		}
	})
}

// forecastPlan builds an all-announced fault plan whose windows lie far
// beyond the slots the tests run, so the forecast is non-trivial but zero
// faults ever realize. The disc cut is aimed at node 5's first incident
// link so it is guaranteed non-empty.
func forecastPlan(t *testing.T, net *topo.Network) *chaos.FaultPlan {
	t.Helper()
	e := net.G.Neighbors(5)[0]
	mx := (net.Pos[5][0] + net.Pos[e.To][0]) / 2
	my := (net.Pos[5][1] + net.Pos[e.To][1]) / 2
	p := &chaos.FaultPlan{
		Seed:        testSeed,
		NodeOutages: []chaos.Window{{ID: 2, From: 100, To: 200}},
		LinkOutages: []chaos.Window{{ID: 1, From: 100, To: 200}},
		DiscCuts:    []chaos.DiscCut{{X: mx, Y: my, R: 1, From: 100, To: 200}},
		Brownouts:   []chaos.Brownout{{Link: 3, Frac: 0.5, From: 100, To: 200}},
		Flaps:       []chaos.Flap{{Link: 4, Period: 4, Duty: 0.5, From: 100, To: 200}},
	}
	if err := p.Validate(net.NumNodes(), net.NumLinks()); err != nil {
		t.Fatal(err)
	}
	if len(chaos.DiscLinks(net, mx, my, 1)) == 0 {
		t.Fatal("disc cut covers no links; fixture is trivial")
	}
	return p
}

// shrinkNet applies the plan's forecast to the capacity tables directly:
// the returned network shares the graph but has forecast-dead elements
// zeroed and browned/flapping links derated — what a fault-aware planner
// is supposed to plan against.
func shrinkNet(t *testing.T, net *topo.Network, p *chaos.FaultPlan) *topo.Network {
	t.Helper()
	fc := p.Forecast(net)
	if fc.IsZero() {
		t.Fatal("forecast is zero; fixture is trivial")
	}
	n2 := *net
	n2.Channels = make([]int, net.NumLinks())
	for id := range n2.Channels {
		n2.Channels[id] = fc.Channels(id, net.Channels[id])
	}
	n2.Memory = make([]int, net.NumNodes())
	for v := range n2.Memory {
		n2.Memory[v] = fc.Memory(v, net.Memory[v])
	}
	return &n2
}

// TestForecastContract pins the announced-fault planning semantics for
// every registered engine. With an all-announced plan whose windows never
// realize inside the run:
//
//   - a fault-aware engine planning on the full topology (forecast
//     subtraction on) must be byte-identical to the same engine planning on
//     the pre-shrunk topology with no injector at all — forecast
//     application is exactly a capacity-table substitution, nothing more;
//   - a fault-blind engine must ignore the announcements entirely and stay
//     byte-identical to its no-chaos run on the full topology.
func TestForecastContract(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+6)
	if err != nil {
		t.Fatal(err)
	}
	plan := forecastPlan(t, net)
	shrunk := shrinkNet(t, net, plan)
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		inj, err := chaos.NewInjector(plan, net)
		if err != nil {
			t.Fatal(err)
		}
		announced, err := engines.New(alg, net, pairs, engines.Config{Chaos: inj})
		if err != nil {
			t.Fatal(err)
		}
		refNet := net
		if alg.FaultAware() {
			refNet = shrunk
		}
		ref, err := engines.New(alg, refNet, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(announced, 29, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(ref, 29, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("announced-but-unrealized plan diverged from the reference run")
		}
	})
}

// TestAwareTwinsMatchBlindWithoutChaos pins the other zero-fault identity:
// with no injector at all, the fault-aware variants are their fault-blind
// twins, byte for byte.
func TestAwareTwinsMatchBlindWithoutChaos(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ aware, blind sched.Algorithm }{
		{sched.SEEAware, sched.SEE},
		{sched.ContendAware, sched.Contend},
	} {
		t.Run(tc.aware.String(), func(t *testing.T) {
			ea, err := engines.New(tc.aware, net, pairs, engines.Config{})
			if err != nil {
				t.Fatal(err)
			}
			eb, err := engines.New(tc.blind, net, pairs, engines.Config{})
			if err != nil {
				t.Fatal(err)
			}
			a, err := Run(ea, 31, testSlots)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(eb, 31, testSlots)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Error("fault-aware variant diverged from its blind twin without chaos")
			}
		})
	}
}

// TestNilBankIsByteIdentical checks the carry-over layer's disabled path:
// every engine implements sched.Stateful, and attaching a nil bank must
// leave it byte-identical to never touching the capability.
func TestNilBankIsByteIdentical(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+4)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		plain, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		banked, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		st, ok := banked.(sched.Stateful)
		if !ok {
			t.Fatalf("%v does not implement sched.Stateful", alg)
		}
		st.AttachBank(nil)
		if st.Bank() != nil {
			t.Fatal("Bank() non-nil after attaching nil")
		}
		a, err := Run(plain, 19, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(banked, 19, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("nil bank changed the run")
		}
	})
}

// TestCarryOverContract runs every engine with a real bank attached and
// checks the cross-slot accounting: conservation after every slot and a
// non-trivial carry (deposits happen over enough slots on a dense
// instance).
func TestCarryOverContract(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+5)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		eng, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		st, ok := eng.(sched.Stateful)
		if !ok {
			t.Fatalf("%v does not implement sched.Stateful", alg)
		}
		bank := state.NewBank(net, state.Policy{CarrySlots: 2})
		st.AttachBank(bank)
		rng := NewRng(23)
		for s := 0; s < 8; s++ {
			res, err := eng.RunSlot(rng)
			if err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			if err := bank.CheckConservation(); err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			if err := CheckSlotResult(net, pairs, *res); err != nil {
				t.Errorf("slot %d: %v", s, err)
			}
		}
		// E2E attempts whole end-to-end segments, and a realized one is
		// immediately consumable as a connection — surplus segments are
		// rare by construction. The oracle holds the bank without ever
		// touching it. So the deposit assertion applies only to the
		// segmented engines.
		if alg != sched.E2E && alg != sched.Oracle && bank.Stats().Deposited == 0 {
			t.Errorf("%v never deposited into the bank over 8 slots", alg)
		}
	})
}
