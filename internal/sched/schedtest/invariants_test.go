package schedtest

import (
	"reflect"
	"testing"

	"see/internal/chaos"
	"see/internal/engines"
	"see/internal/sched"
	"see/internal/state"
)

// testNodes/testPairs/testSlots size every invariant run: big enough for
// multi-hop paths and contention, small enough for the LP engines under
// -race.
const (
	testNodes = 40
	testPairs = 8
	testSlots = 3
	testSeed  = 20220406
)

// TestRegistryComplete pins the engine registry: the paper trio plus the
// two repo-grown baselines, in enum order. A new engine must be added here
// deliberately — and by being registered it automatically enters every
// other test in this package.
func TestRegistryComplete(t *testing.T) {
	want := []sched.Algorithm{sched.SEE, sched.REPS, sched.E2E, sched.Greedy, sched.Contend}
	if got := engines.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("engines.List() = %v, want %v", got, want)
	}
}

// forEachEngine runs the check as a subtest per registered algorithm.
func forEachEngine(t *testing.T, fn func(t *testing.T, alg sched.Algorithm)) {
	for _, alg := range engines.List() {
		t.Run(alg.String(), func(t *testing.T) { fn(t, alg) })
	}
}

// TestDeterministicAcrossWorkers checks the strongest cross-engine
// contract: the same instance and rng seed produce reflect.DeepEqual slot
// results at every worker count. The LP engines parallelize their pricing
// rounds across workers, so this catches any scheduling-dependent
// reduction order; the non-LP engines ignore Workers and must stay
// deterministic too. Run under -race (make verify does) this also shakes
// out data races in the pricing pools.
func TestDeterministicAcrossWorkers(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		var base []sched.SlotResult
		for _, workers := range []int{1, 4, 8} {
			eng, err := engines.New(alg, net, pairs, engines.Config{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			got, err := Run(eng, 7, testSlots)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if base == nil {
				base = got
				continue
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("workers=%d diverged from workers=1", workers)
			}
		}
		// A second engine over the same instance and seed must reproduce
		// the run exactly (no hidden construction-order state).
		eng, err := engines.New(alg, net, pairs, engines.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		again, err := Run(eng, 7, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, again) {
			t.Error("rebuilt engine diverged on the same seed")
		}
	})
}

// TestSlotResultInvariants checks every engine's per-slot counters and
// connections against the shared contract (CheckSlotResult).
func TestSlotResultInvariants(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		eng, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		results, err := Run(eng, 11, 6)
		if err != nil {
			t.Fatal(err)
		}
		for s, res := range results {
			if err := CheckSlotResult(net, pairs, res); err != nil {
				t.Errorf("slot %d: %v", s, err)
			}
		}
	})
}

// TestReservationConservation reconciles the tracer's AttemptReserved
// stream with the slot results and the network's memory capacities: event
// sums must equal SlotResult.Attempts and no node may hold more reserved
// attempts than memory units.
func TestReservationConservation(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+2)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		tr := &RecordingTracer{}
		eng, err := engines.New(alg, net, pairs, engines.Config{Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		results, err := Run(eng, 13, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Slots) != len(results) {
			t.Fatalf("tracer saw %d slots, engine ran %d", len(tr.Slots), len(results))
		}
		for s, res := range results {
			if err := CheckReservations(net, tr.Slots[s], res); err != nil {
				t.Errorf("slot %d: %v", s, err)
			}
		}
	})
}

// TestZeroChaosIsByteIdentical checks the chaos layer's disabled path: an
// injector built from a zero-value fault plan must leave every engine
// byte-identical to a run with no injector at all.
func TestZeroChaosIsByteIdentical(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+3)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		plain, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := chaos.NewInjector(&chaos.FaultPlan{}, net)
		if err != nil {
			t.Fatal(err)
		}
		chaotic, err := engines.New(alg, net, pairs, engines.Config{Chaos: inj})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(plain, 17, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(chaotic, 17, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("zero-value fault plan changed the run")
		}
	})
}

// TestNilBankIsByteIdentical checks the carry-over layer's disabled path:
// every engine implements sched.Stateful, and attaching a nil bank must
// leave it byte-identical to never touching the capability.
func TestNilBankIsByteIdentical(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+4)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		plain, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		banked, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		st, ok := banked.(sched.Stateful)
		if !ok {
			t.Fatalf("%v does not implement sched.Stateful", alg)
		}
		st.AttachBank(nil)
		if st.Bank() != nil {
			t.Fatal("Bank() non-nil after attaching nil")
		}
		a, err := Run(plain, 19, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(banked, 19, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("nil bank changed the run")
		}
	})
}

// TestCarryOverContract runs every engine with a real bank attached and
// checks the cross-slot accounting: conservation after every slot and a
// non-trivial carry (deposits happen over enough slots on a dense
// instance).
func TestCarryOverContract(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+5)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		eng, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		st, ok := eng.(sched.Stateful)
		if !ok {
			t.Fatalf("%v does not implement sched.Stateful", alg)
		}
		bank := state.NewBank(net, state.Policy{CarrySlots: 2})
		st.AttachBank(bank)
		rng := NewRng(23)
		for s := 0; s < 8; s++ {
			res, err := eng.RunSlot(rng)
			if err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			if err := bank.CheckConservation(); err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			if err := CheckSlotResult(net, pairs, *res); err != nil {
				t.Errorf("slot %d: %v", s, err)
			}
		}
		// E2E attempts whole end-to-end segments, and a realized one is
		// immediately consumable as a connection — surplus segments are
		// rare by construction, so the deposit assertion applies only to
		// the segmented engines.
		if alg != sched.E2E && bank.Stats().Deposited == 0 {
			t.Errorf("%v never deposited into the bank over 8 slots", alg)
		}
	})
}
