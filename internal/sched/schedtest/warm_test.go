package schedtest

import (
	"reflect"
	"testing"

	"see/internal/engines"
	"see/internal/sched"
	"see/internal/warm"
)

// TestWarmEqualsColdByteIdentical is the warm-start contract for the whole
// registry: at every worker count, an engine built through a warm cache —
// once to populate it and once again to replay it — produces slot results
// reflect.DeepEqual to a cold build's. Run under -race (make verify does)
// this also exercises the cache's locking against the parallel pricing
// rounds.
func TestWarmEqualsColdByteIdentical(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+8)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		if alg == sched.Oracle {
			t.Skip("the oracle has no segment build or LP solve to cache")
		}
		for _, workers := range []int{1, 4, 8} {
			cold, err := engines.New(alg, net, pairs, engines.Config{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			want, err := Run(cold, 37, testSlots)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}

			cache := warm.New()
			// First build populates the cache, second replays it; both must
			// match the cold run byte for byte.
			for pass := 0; pass < 2; pass++ {
				eng, err := engines.New(alg, net, pairs, engines.Config{Workers: workers, Warm: cache})
				if err != nil {
					t.Fatalf("workers=%d pass=%d: %v", workers, pass, err)
				}
				got, err := Run(eng, 37, testSlots)
				if err != nil {
					t.Fatalf("workers=%d pass=%d: %v", workers, pass, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d pass=%d: warm run diverged from cold", workers, pass)
				}
			}
			st := cache.Stats()
			if st.SetMisses == 0 {
				t.Errorf("workers=%d: cache never saw a cold segment build", workers)
			}
			if st.SetHits == 0 {
				t.Errorf("workers=%d: rebuild never hit the segment cache (stats %+v)", workers, st)
			}
			if st.Invalidations != 0 {
				t.Errorf("workers=%d: unexpected invalidations: %+v", workers, st)
			}
		}
	})
}

// TestWarmChurnForcesColdRebuild pins the invalidation trigger: mutating
// the network in place between builds changes its content fingerprint, so
// the cache must refuse to replay the stale plan — and the rebuilt engine
// must match a cold build over the mutated network exactly.
func TestWarmChurnForcesColdRebuild(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+9)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		if alg == sched.Oracle {
			t.Skip("the oracle has no segment build or LP solve to cache")
		}
		cache := warm.New()
		if _, err := engines.New(alg, net, pairs, engines.Config{Warm: cache}); err != nil {
			t.Fatal(err)
		}

		// Churn: derate one link in place. Same pointer, new content.
		net.Channels[0]++
		defer func() { net.Channels[0]-- }()

		warmEng, err := engines.New(alg, net, pairs, engines.Config{Warm: cache})
		if err != nil {
			t.Fatal(err)
		}
		st := cache.Stats()
		if st.Invalidations == 0 {
			t.Fatalf("in-place mutation did not invalidate the cache: %+v", st)
		}
		if st.SetHits != 0 {
			t.Fatalf("stale entry was replayed after mutation: %+v", st)
		}

		cold, err := engines.New(alg, net, pairs, engines.Config{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(cold, 41, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(warmEng, 41, testSlots)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Error("post-churn warm run diverged from a cold build over the mutated network")
		}

		// The mutated network is now cached; a further rebuild replays it.
		if _, err := engines.New(alg, net, pairs, engines.Config{Warm: cache}); err != nil {
			t.Fatal(err)
		}
		if st := cache.Stats(); st.SetHits == 0 {
			t.Errorf("rebuild over the mutated network never hit the refreshed cache: %+v", st)
		}
	})
}
