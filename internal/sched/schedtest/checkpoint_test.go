package schedtest

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"see/internal/chaos"
	"see/internal/engines"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/xrand"
)

// checkpointPlan exercises outages and decoherence so the snapshot carries
// non-trivial chaos phase.
func checkpointPlan() *chaos.FaultPlan {
	return &chaos.FaultPlan{
		Seed:        31,
		NodeOutages: []chaos.Window{{ID: 3, From: 2, To: 5}},
		Decoherence: 0.1,
	}
}

// jsonRoundTrip forces the snapshot through a serialize/deserialize cycle
// so a restore can never lean on live objects shared with the original
// engine — the situation a real kill/resume is in.
func jsonRoundTrip(t *testing.T, st *sched.EngineState) *sched.EngineState {
	t.Helper()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	out := &sched.EngineState{}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// runCheckpointProtocol runs the kill/resume invariant for one engine
// builder: run `slots` slots; at `split`, snapshot the engine state and the
// rng cursor; then restore both into a freshly built engine and assert the
// remaining slots are byte-identical to the uninterrupted run.
func runCheckpointProtocol(t *testing.T, build func(t *testing.T) sched.Checkpointable, seed int64, slots, split int) {
	t.Helper()
	ref := build(t)
	stream := xrand.NewStream(seed)
	var want []sched.SlotResult
	var snap *sched.EngineState
	var cur xrand.Cursor
	for s := 0; s < slots; s++ {
		if s == split {
			st, err := ref.EngineState()
			if err != nil {
				t.Fatalf("snapshot at slot %d: %v", s, err)
			}
			snap = st
			cur = stream.Cursor()
		}
		res, err := ref.RunSlot(stream.Rand())
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		if s >= split {
			want = append(want, *res)
		}
	}

	resumed := build(t)
	if err := resumed.RestoreEngineState(jsonRoundTrip(t, snap)); err != nil {
		t.Fatalf("restore at slot %d: %v", split, err)
	}
	rstream := xrand.Restore(cur)
	for s := split; s < slots; s++ {
		res, err := resumed.RunSlot(rstream.Rand())
		if err != nil {
			t.Fatalf("resumed slot %d: %v", s, err)
		}
		if !reflect.DeepEqual(*res, want[s-split]) {
			t.Fatalf("resumed slot %d diverged from the uninterrupted run:\n got %+v\nwant %+v",
				s, *res, want[s-split])
		}
	}
	if rstream.Pos() != stream.Pos() {
		t.Errorf("resumed rng consumed %d draws, uninterrupted %d", rstream.Pos(), stream.Pos())
	}
}

// TestCheckpointRestoreByteIdentical is the kill/resume invariant for every
// registered engine, with chaos and carry-over live so the snapshot carries
// every state dimension. Splits cover the pre-first-slot snapshot and a
// mid-run one.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+6)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, alg sched.Algorithm) {
		build := func(t *testing.T) sched.Checkpointable {
			t.Helper()
			inj, err := chaos.NewInjector(checkpointPlan(), net)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := engines.New(alg, net, pairs, engines.Config{Chaos: inj})
			if err != nil {
				t.Fatal(err)
			}
			eng.(sched.Stateful).AttachBank(state.NewBank(net, state.Policy{
				CarrySlots:  2,
				Decoherence: checkpointPlan().Decoherence,
				Seed:        checkpointPlan().Seed,
			}))
			ck, ok := eng.(sched.Checkpointable)
			if !ok {
				t.Fatalf("%v does not implement sched.Checkpointable", alg)
			}
			return ck
		}
		for _, split := range []int{0, 3} {
			t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
				runCheckpointProtocol(t, build, 29, 7, split)
			})
		}
	})
}

// TestResilientCheckpointRestore runs the same invariant for the sixth
// engine — the degradation-ladder wrapper — whose snapshot additionally
// carries the ladder position and whose restore rebuilds the primary
// without a wall-clock budget.
func TestResilientCheckpointRestore(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+7)
	if err != nil {
		t.Fatal(err)
	}
	build := func(t *testing.T) sched.Checkpointable {
		t.Helper()
		inj, err := chaos.NewInjector(checkpointPlan(), net)
		if err != nil {
			t.Fatal(err)
		}
		r, err := engines.NewResilient(sched.SEE, net, pairs, engines.Config{Chaos: inj}, 0)
		if err != nil {
			t.Fatal(err)
		}
		r.AttachBank(state.NewBank(net, state.Policy{CarrySlots: 2, Seed: 31}))
		return r
	}
	for _, split := range []int{0, 3} {
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			runCheckpointProtocol(t, build, 37, 6, split)
		})
	}
}

// TestCheckpointAlgorithmMismatch pins the configuration guard: state from
// one scheme must not restore into another.
func TestCheckpointAlgorithmMismatch(t *testing.T) {
	net, pairs, err := Instance(testNodes, testPairs, testSeed+8)
	if err != nil {
		t.Fatal(err)
	}
	see, err := engines.New(sched.SEE, net, pairs, engines.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := see.(sched.Checkpointable).EngineState()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := engines.New(sched.Greedy, net, pairs, engines.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.(sched.Checkpointable).RestoreEngineState(st); err == nil {
		t.Fatal("Greedy engine accepted SEE state")
	}
}
