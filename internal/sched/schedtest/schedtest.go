// Package schedtest is the cross-engine invariant harness for the slot
// pipeline: helpers that run every registered algorithm (engines.List)
// through the same instances and verify the contracts shared by all
// engines — determinism per seed and worker count, resource bounds,
// tracer reconciliation, and byte-identical disabled paths for the chaos
// and carry-over layers.
//
// The checks live here rather than in each engine's own test file so a
// newly registered engine is subjected to the shared contract
// automatically: the tests iterate the registry, not a hand-kept list.
package schedtest

import (
	"fmt"
	"math/rand"
	"time"

	"see/internal/sched"
	"see/internal/topo"
	"see/internal/xrand"
)

// Instance draws a reproducible test network and demand set. The sizes are
// chosen small enough for the LP engines to solve quickly under -race.
func Instance(nodes, pairs int, seed int64) (*topo.Network, []topo.SDPair, error) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = nodes
	net, err := topo.Generate(cfg, xrand.New(seed))
	if err != nil {
		return nil, nil, err
	}
	return net, topo.ChooseSDPairs(net, pairs, xrand.New(seed+1)), nil
}

// Run executes slots consecutive time slots from a fresh seeded rng and
// returns the dereferenced results (safe for reflect.DeepEqual between
// runs).
func Run(eng sched.Engine, seed int64, slots int) ([]sched.SlotResult, error) {
	rng := xrand.New(seed)
	out := make([]sched.SlotResult, 0, slots)
	for s := 0; s < slots; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			return nil, fmt.Errorf("slot %d: %w", s, err)
		}
		out = append(out, *res)
	}
	return out, nil
}

// Reservation is one AttemptReserved event: count creation attempts on the
// segment endpoint pair ⟨u, v⟩.
type Reservation struct {
	U, V, Count int
}

// SlotRecord collects the per-slot tracer events the invariant checks
// consume.
type SlotRecord struct {
	Reservations []Reservation
	Created      int
}

// RecordingTracer captures AttemptReserved and AttemptResolved events per
// slot so tests can reconcile them against SlotResult counters and the
// network's resource capacities. It is not safe for concurrent use; attach
// one per engine.
type RecordingTracer struct {
	Slots   []SlotRecord
	current *SlotRecord
}

var _ sched.Tracer = (*RecordingTracer)(nil)

// SlotStart implements sched.Tracer.
func (t *RecordingTracer) SlotStart(sched.Algorithm) {
	t.Slots = append(t.Slots, SlotRecord{})
	t.current = &t.Slots[len(t.Slots)-1]
}

// AttemptReserved implements sched.Tracer.
func (t *RecordingTracer) AttemptReserved(u, v, count int) {
	if t.current != nil {
		t.current.Reservations = append(t.current.Reservations, Reservation{U: u, V: v, Count: count})
	}
}

// AttemptResolved implements sched.Tracer.
func (t *RecordingTracer) AttemptResolved(_, _ int, created bool) {
	if t.current != nil && created {
		t.current.Created++
	}
}

// PathPlanned implements sched.Tracer.
func (t *RecordingTracer) PathPlanned(int, int) {}

// PathProvisioned implements sched.Tracer.
func (t *RecordingTracer) PathProvisioned(int) {}

// SwapResolved implements sched.Tracer.
func (t *RecordingTracer) SwapResolved(int, bool) {}

// ConnectionAssembled implements sched.Tracer.
func (t *RecordingTracer) ConnectionAssembled(int, bool) {}

// PhaseDone implements sched.Tracer.
func (t *RecordingTracer) PhaseDone(sched.Phase, time.Duration) {}

// Incident implements sched.Tracer.
func (t *RecordingTracer) Incident(sched.Incident, int) {}

// SlotEnd implements sched.Tracer.
func (t *RecordingTracer) SlotEnd(*sched.SlotResult) {}

// CheckSlotResult verifies the counter relationships every engine's
// SlotResult must satisfy on the given demand set:
//
//   - SegmentsCreated ≤ Attempts (an attempt yields at most one segment),
//   - Established ≤ Assembled (swaps only lose assembled connections),
//   - PerPair sums to Established and matches len(Connections),
//   - PerPair[i] ≤ min(m_s, m_d): a pair's throughput cannot exceed the
//     entangled-photon capacity of its own endpoints, and
//   - every connection validates structurally.
func CheckSlotResult(net *topo.Network, pairs []topo.SDPair, res sched.SlotResult) error {
	if res.SegmentsCreated > res.Attempts {
		return fmt.Errorf("SegmentsCreated %d > Attempts %d", res.SegmentsCreated, res.Attempts)
	}
	if res.Established > res.Assembled {
		return fmt.Errorf("Established %d > Assembled %d", res.Established, res.Assembled)
	}
	if len(res.PerPair) != len(pairs) {
		return fmt.Errorf("PerPair has %d entries for %d pairs", len(res.PerPair), len(pairs))
	}
	sum := 0
	for i, c := range res.PerPair {
		if c < 0 {
			return fmt.Errorf("PerPair[%d] = %d is negative", i, c)
		}
		cap := min(net.Memory[pairs[i].S], net.Memory[pairs[i].D])
		if c > cap {
			return fmt.Errorf("PerPair[%d] = %d exceeds endpoint memory cap %d", i, c, cap)
		}
		sum += c
	}
	if sum != res.Established {
		return fmt.Errorf("PerPair sums to %d, Established is %d", sum, res.Established)
	}
	if len(res.Connections) != res.Established {
		return fmt.Errorf("%d connections for Established %d", len(res.Connections), res.Established)
	}
	for i, c := range res.Connections {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("connection %d: %w", i, err)
		}
	}
	return nil
}

// CheckReservations reconciles one slot's AttemptReserved events against
// the slot result and the network's memory capacities: the event counts
// must sum to SlotResult.Attempts, and no node may have more reserved
// attempts than memory units m_u (each attempt pins one photon at each
// endpoint of its segment).
func CheckReservations(net *topo.Network, rec SlotRecord, res sched.SlotResult) error {
	total := 0
	perNode := make([]int, net.NumNodes())
	for _, r := range rec.Reservations {
		if r.Count <= 0 {
			return fmt.Errorf("reservation ⟨%d,%d⟩ has non-positive count %d", r.U, r.V, r.Count)
		}
		total += r.Count
		perNode[r.U] += r.Count
		perNode[r.V] += r.Count
	}
	if total != res.Attempts {
		return fmt.Errorf("reservation events sum to %d, SlotResult.Attempts is %d", total, res.Attempts)
	}
	if rec.Created != res.SegmentsCreated {
		return fmt.Errorf("resolved-created events sum to %d, SlotResult.SegmentsCreated is %d",
			rec.Created, res.SegmentsCreated)
	}
	for u, n := range perNode {
		if n > net.Memory[u] {
			return fmt.Errorf("node %d has %d reserved attempts, memory size is %d", u, n, net.Memory[u])
		}
	}
	return nil
}

// NewRng returns a fresh engine rng for the seed (a convenience alias so
// invariant tests do not import xrand directly).
func NewRng(seed int64) *rand.Rand { return xrand.New(seed) }
