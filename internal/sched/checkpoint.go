package sched

import (
	"fmt"

	"see/internal/chaos"
	"see/internal/state"
)

// EngineState is the serializable cross-slot state of an engine: everything
// a fresh, identically configured engine needs to continue a run
// byte-identically. Engines rebuild their candidate catalogues, LP
// solutions and cached plans deterministically from configuration, so only
// the genuinely mutable pieces appear here — the chaos injector's phase,
// the segment bank's contents, and (for the resilient wrapper) the
// degradation ladder's position plus the wrapped engine's state.
//
// Fields an engine does not use stay nil, and a freshly constructed engine
// produces exactly the state a restore expects before the first slot
// (nil chaos phase, nil bank contents), so "snapshot at slot 0" and "no
// snapshot" are interchangeable.
type EngineState struct {
	// Algorithm guards against restoring into a differently configured
	// engine; Restore rejects a mismatch.
	Algorithm Algorithm `json:"algorithm"`
	// Chaos is the fault injector's phase (nil when chaos is inert).
	Chaos *chaos.InjectorState `json:"chaos,omitempty"`
	// Bank is the cross-slot segment bank (nil when carry-over is off).
	Bank *state.BankState `json:"bank,omitempty"`
	// Ladder is the resilient wrapper's degradation position (nil for bare
	// engines).
	Ladder *LadderState `json:"ladder,omitempty"`
	// Inner is the wrapped engine's state (resilient wrapper only).
	Inner *EngineState `json:"inner,omitempty"`
}

// LadderState is the degradation ladder's serializable position (see
// engines.Resilient): how many budgeted constructions have failed and which
// engines exist. Restore rebuilds the same engines — the primary without a
// wall-clock budget, since its LP construction is deterministic and already
// succeeded once.
type LadderState struct {
	Failures      int  `json:"failures"`
	PrimaryBuilt  bool `json:"primary_built"`
	FallbackBuilt bool `json:"fallback_built"`
}

// Checkpointable is the optional snapshot/restore capability, the
// checkpoint sibling of Stateful. An engine implementing it can export its
// cross-slot state between slots and later have an identically configured
// fresh engine resume from it, producing byte-identical remaining slots
// (the engine rng is checkpointed separately, as an xrand cursor, by the
// layer that owns it).
//
// Both methods are valid only at slot boundaries — never mid-RunSlot. All
// registered engines plus the resilient wrapper implement the interface.
type Checkpointable interface {
	Engine
	// EngineState snapshots the engine's cross-slot state.
	EngineState() (*EngineState, error)
	// RestoreEngineState rewinds the engine to a snapshot taken from an
	// identically configured engine. Restoring nil resets to the
	// pre-first-slot state.
	RestoreEngineState(*EngineState) error
}

// CheckRestoreAlgorithm is the shared guard engines call first in
// RestoreEngineState: a snapshot from a different scheme is a configuration
// mismatch, never a silent reinterpretation.
func CheckRestoreAlgorithm(got Algorithm, st *EngineState) error {
	if st != nil && st.Algorithm != got {
		return fmt.Errorf("sched: restoring %v state into a %v engine", st.Algorithm, got)
	}
	return nil
}
