package sched

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"see/internal/metrics"
)

// Phase names one stage of the slot pipeline.
type Phase int

// The four pipeline phases, in execution order.
const (
	// PhasePlan covers entanglement-path identification and rounding
	// (EPI / Algorithm 1 for SEE).
	PhasePlan Phase = iota
	// PhaseReserve covers resource reservation for creation attempts
	// (ESC / Algorithm 2 for SEE, the provisioning plan for REPS).
	PhaseReserve
	// PhasePhysical covers the stochastic segment-creation attempts.
	PhasePhysical
	// PhaseStitch covers connection assembly and quantum swapping
	// (ECE / Algorithm 3 for SEE, EPS for REPS).
	PhaseStitch
)

// NumPhases is the number of pipeline phases.
const NumPhases = 4

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhasePlan:
		return "plan"
	case PhaseReserve:
		return "reserve"
	case PhasePhysical:
		return "physical"
	case PhaseStitch:
		return "stitch"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Incident classifies an out-of-band robustness event observed by the
// pipeline: injected faults, degradations and retries that are not part of
// the paper's ideal slot model.
type Incident int

// The incident kinds reported through Tracer.Incident.
const (
	// IncidentFault counts injected chaos events that bit: attempts or
	// routes blocked by node/link outages, segments lost to memory
	// decoherence (see internal/chaos).
	IncidentFault Incident = iota
	// IncidentDegraded counts slots the scheduler served with the greedy
	// fallback because the LP-based primary was unavailable (solve budget
	// exceeded or numerical failure).
	IncidentDegraded
	// IncidentRetry counts retries of a previously failed LP construction.
	IncidentRetry
	// IncidentMessageDrop counts controller↔node messages dropped by the
	// protocol bus.
	IncidentMessageDrop
	// IncidentMessageRetry counts bus redeliveries of dropped messages.
	IncidentMessageRetry
	// IncidentBankWithdraw counts carried segments withdrawn from the
	// cross-slot state bank at slot start (see internal/state).
	IncidentBankWithdraw
	// IncidentBankDeposit counts surplus realized segments deposited into
	// the state bank at slot end.
	IncidentBankDeposit
	// IncidentBankDecohered counts banked segments lost at a slot boundary
	// to the age window or the stochastic decoherence hazard.
	IncidentBankDecohered
	// IncidentRecovery counts recovery-path creation attempts the
	// contention-aware engine fired after a primary segment attempt
	// failed in the physical phase (see internal/contend).
	IncidentRecovery
	// IncidentBrownout counts segment-creation attempts denied because a
	// browned-out link's reduced per-slot channel budget was exhausted
	// (see internal/chaos Brownout).
	IncidentBrownout
	// IncidentFlap counts (link, slot) down pairs injected by link
	// flapping (see internal/chaos Flap).
	IncidentFlap
	// IncidentForecastAvoid counts the announced network elements (nodes,
	// links) a fault-aware planner excluded or de-rated this slot because
	// the fault plan scheduled their outage in advance (see
	// chaos.Forecast); it fires every slot the forecast is non-empty.
	IncidentForecastAvoid
	// IncidentFloorReject counts candidate connection assemblies the
	// stitch phase rolled back because their predicted end-to-end fidelity
	// missed the request's floor (see qnet.FloorSpec); it never fires with
	// floors disabled.
	IncidentFloorReject
)

// NumIncidents is the number of incident kinds.
const NumIncidents = 13

// String implements fmt.Stringer.
func (i Incident) String() string {
	switch i {
	case IncidentFault:
		return "fault"
	case IncidentDegraded:
		return "degraded"
	case IncidentRetry:
		return "retry"
	case IncidentMessageDrop:
		return "msg_drop"
	case IncidentMessageRetry:
		return "msg_retry"
	case IncidentBankWithdraw:
		return "bank_withdraw"
	case IncidentBankDeposit:
		return "bank_deposit"
	case IncidentBankDecohered:
		return "bank_decohere"
	case IncidentRecovery:
		return "recovery"
	case IncidentBrownout:
		return "brownout"
	case IncidentFlap:
		return "flap"
	case IncidentForecastAvoid:
		return "forecast_avoid"
	case IncidentFloorReject:
		return "floor_reject"
	default:
		return fmt.Sprintf("Incident(%d)", int(i))
	}
}

// Tracer observes the slot pipeline. Engines invoke the callbacks on hot
// paths, so implementations must be cheap; implementations shared across
// goroutines (e.g. by the parallel experiment harness) must be safe for
// concurrent use. Tracers observe outcomes only — they must not influence
// the engine's randomness or decisions.
type Tracer interface {
	// SlotStart marks the beginning of a slot for the given scheme.
	SlotStart(alg Algorithm)
	// PathPlanned fires once per entanglement path identified in the plan
	// phase, with the path's SD-pair index and segment count.
	PathPlanned(commodity, segments int)
	// PathProvisioned fires once per path fully provisioned in the
	// reserve phase.
	PathProvisioned(commodity int)
	// AttemptReserved fires once per segment endpoint pair ⟨u,v⟩ that had
	// creation attempts reserved, with the attempt count. Summed over a
	// slot, counts reconcile with SlotResult.Attempts.
	AttemptReserved(u, v, count int)
	// AttemptResolved fires once per physical creation attempt; created
	// reports whether the attempt yielded a segment. The number of
	// created=true events per slot equals SlotResult.SegmentsCreated.
	AttemptResolved(u, v int, created bool)
	// SwapResolved fires once per sampled quantum swap at a junction.
	SwapResolved(junction int, ok bool)
	// ConnectionAssembled fires once per connection-assembly attempt in
	// the stitch phase; established reports whether every swap survived.
	ConnectionAssembled(commodity int, established bool)
	// PhaseDone fires after each pipeline phase the engine ran this slot,
	// with its wall-clock duration.
	PhaseDone(ph Phase, d time.Duration)
	// Incident reports n occurrences of a robustness event (injected
	// fault, degraded slot, retry). With faults disabled and no slot
	// budget it never fires.
	Incident(kind Incident, n int)
	// SlotEnd delivers the slot's final result.
	SlotEnd(res *SlotResult)
}

// NopTracer is a Tracer that ignores every event.
type NopTracer struct{}

var _ Tracer = NopTracer{}

func (NopTracer) SlotStart(Algorithm)            {}
func (NopTracer) PathPlanned(int, int)           {}
func (NopTracer) PathProvisioned(int)            {}
func (NopTracer) AttemptReserved(int, int, int)  {}
func (NopTracer) AttemptResolved(int, int, bool) {}
func (NopTracer) SwapResolved(int, bool)         {}
func (NopTracer) ConnectionAssembled(int, bool)  {}
func (NopTracer) PhaseDone(Phase, time.Duration) {}
func (NopTracer) Incident(Incident, int)         {}
func (NopTracer) SlotEnd(*SlotResult)            {}

// OrNop normalizes a possibly-nil tracer to a usable one.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return NopTracer{}
	}
	return t
}

// IsNop reports whether t observes nothing (nil or NopTracer). Engines use
// it to skip work that exists only to feed tracer callbacks — e.g. sorting
// the attempt plan for the per-reservation events — so bare runs do not pay
// for instrumentation they did not ask for.
func IsNop(t Tracer) bool {
	if t == nil {
		return true
	}
	_, ok := t.(NopTracer)
	return ok
}

// TracerCounts is a snapshot of a CountingTracer's event tallies.
type TracerCounts struct {
	// Slots counts completed slots (SlotEnd events).
	Slots int
	// PathsPlanned / PathsProvisioned count plan and reserve path events.
	PathsPlanned     int
	PathsProvisioned int
	// AttemptsReserved sums the reservation counts; AttemptsResolved
	// counts physical attempts, splitting into SegmentsCreated and
	// AttemptsFailed.
	AttemptsReserved int
	AttemptsResolved int
	SegmentsCreated  int
	AttemptsFailed   int
	// SwapsResolved counts sampled swaps; SwapsSucceeded the successes.
	SwapsResolved  int
	SwapsSucceeded int
	// ConnectionsAssembled counts assembly attempts;
	// ConnectionsEstablished those whose swaps all survived.
	ConnectionsAssembled   int
	ConnectionsEstablished int
	// Established accumulates SlotResult.Established over SlotEnd events.
	Established int
	// Incidents tallies robustness events by kind (indexed by Incident).
	Incidents [NumIncidents]int
}

// Incidents returns the tally for one incident kind (0 for out-of-range
// kinds).
func (c TracerCounts) IncidentCount(kind Incident) int {
	if kind < 0 || kind >= NumIncidents {
		return 0
	}
	return c.Incidents[kind]
}

// CountingTracer tallies pipeline events and per-phase latencies. The zero
// value is ready to use; all methods are safe for concurrent use, so one
// tracer may be shared across the experiment harness's trial workers.
type CountingTracer struct {
	mu     sync.Mutex
	counts TracerCounts
	// latency[ph] collects phase durations in seconds.
	latency [NumPhases][]float64
}

var _ Tracer = (*CountingTracer)(nil)

// NewCountingTracer returns an empty counting tracer.
func NewCountingTracer() *CountingTracer { return &CountingTracer{} }

// SlotStart implements Tracer.
func (t *CountingTracer) SlotStart(Algorithm) {}

// PathPlanned implements Tracer.
func (t *CountingTracer) PathPlanned(int, int) {
	t.mu.Lock()
	t.counts.PathsPlanned++
	t.mu.Unlock()
}

// PathProvisioned implements Tracer.
func (t *CountingTracer) PathProvisioned(int) {
	t.mu.Lock()
	t.counts.PathsProvisioned++
	t.mu.Unlock()
}

// AttemptReserved implements Tracer.
func (t *CountingTracer) AttemptReserved(_, _, count int) {
	t.mu.Lock()
	t.counts.AttemptsReserved += count
	t.mu.Unlock()
}

// AttemptResolved implements Tracer.
func (t *CountingTracer) AttemptResolved(_, _ int, created bool) {
	t.mu.Lock()
	t.counts.AttemptsResolved++
	if created {
		t.counts.SegmentsCreated++
	} else {
		t.counts.AttemptsFailed++
	}
	t.mu.Unlock()
}

// SwapResolved implements Tracer.
func (t *CountingTracer) SwapResolved(_ int, ok bool) {
	t.mu.Lock()
	t.counts.SwapsResolved++
	if ok {
		t.counts.SwapsSucceeded++
	}
	t.mu.Unlock()
}

// ConnectionAssembled implements Tracer.
func (t *CountingTracer) ConnectionAssembled(_ int, established bool) {
	t.mu.Lock()
	t.counts.ConnectionsAssembled++
	if established {
		t.counts.ConnectionsEstablished++
	}
	t.mu.Unlock()
}

// PhaseDone implements Tracer.
func (t *CountingTracer) PhaseDone(ph Phase, d time.Duration) {
	if ph < 0 || ph >= NumPhases {
		return
	}
	t.mu.Lock()
	t.latency[ph] = append(t.latency[ph], d.Seconds())
	t.mu.Unlock()
}

// Incident implements Tracer.
func (t *CountingTracer) Incident(kind Incident, n int) {
	if kind < 0 || kind >= NumIncidents {
		return
	}
	t.mu.Lock()
	t.counts.Incidents[kind] += n
	t.mu.Unlock()
}

// SlotEnd implements Tracer.
func (t *CountingTracer) SlotEnd(res *SlotResult) {
	t.mu.Lock()
	t.counts.Slots++
	if res != nil {
		t.counts.Established += res.Established
	}
	t.mu.Unlock()
}

// Counts returns a snapshot of the event tallies.
func (t *CountingTracer) Counts() TracerCounts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// PhaseLatency summarizes the recorded durations (in seconds) of one phase.
func (t *CountingTracer) PhaseLatency(ph Phase) metrics.Summary {
	if ph < 0 || ph >= NumPhases {
		return metrics.Summary{}
	}
	t.mu.Lock()
	samples := append([]float64(nil), t.latency[ph]...)
	t.mu.Unlock()
	return metrics.Summarize(samples)
}

// RestoreCounts overwrites the tallies with a checkpointed snapshot, so a
// resumed run's tracer continues from the interrupted run's offsets. Phase
// latencies are wall-clock observations, not replayable state; they reset.
func (t *CountingTracer) RestoreCounts(c TracerCounts) {
	t.mu.Lock()
	t.counts = c
	t.latency = [NumPhases][]float64{}
	t.mu.Unlock()
}

// Reset clears all tallies and latencies.
func (t *CountingTracer) Reset() {
	t.mu.Lock()
	t.counts = TracerCounts{}
	t.latency = [NumPhases][]float64{}
	t.mu.Unlock()
}

// String renders the throughput funnel: reserved → created → swapped →
// established, with per-phase mean latencies.
func (t *CountingTracer) String() string {
	c := t.Counts()
	var b strings.Builder
	fmt.Fprintf(&b, "slots=%d planned=%d provisioned=%d attempts=%d created=%d swaps=%d/%d assembled=%d established=%d",
		c.Slots, c.PathsPlanned, c.PathsProvisioned, c.AttemptsReserved,
		c.SegmentsCreated, c.SwapsSucceeded, c.SwapsResolved,
		c.ConnectionsAssembled, c.ConnectionsEstablished)
	for ph := Phase(0); ph < NumPhases; ph++ {
		if s := t.PhaseLatency(ph); s.N > 0 {
			fmt.Fprintf(&b, " %s=%.3gms", ph, s.Mean*1e3)
		}
	}
	for kind := Incident(0); kind < NumIncidents; kind++ {
		if n := c.Incidents[kind]; n > 0 {
			fmt.Fprintf(&b, " %s=%d", kind, n)
		}
	}
	return b.String()
}
