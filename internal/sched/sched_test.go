package sched

import (
	"testing"
	"time"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"see": SEE, "SEE": SEE, "See": SEE,
		"reps": REPS, "REPS": REPS,
		"e2e": E2E, "E2E": E2E,
		"qpass": QPass, "contend-aware": ContendAware, "see-aware": SEEAware,
	}
	for in, want := range cases {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "qcast", "all"} {
		if _, err := ParseAlgorithm(bad); err == nil {
			t.Errorf("ParseAlgorithm(%q) accepted", bad)
		}
	}
	for _, a := range []Algorithm{SEE, REPS, E2E, Greedy, Contend, QPass, ContendAware, SEEAware} {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v -> %q -> %v, %v", a, a.String(), back, err)
		}
	}
}

func TestFaultAwareVariant(t *testing.T) {
	cases := []struct {
		in   Algorithm
		want Algorithm
		ok   bool
	}{
		{SEE, SEEAware, true},
		{Contend, ContendAware, true},
		{SEEAware, SEEAware, true},
		{ContendAware, ContendAware, true},
		{REPS, REPS, false},
		{E2E, E2E, false},
		{Greedy, Greedy, false},
		{QPass, QPass, false},
	}
	for _, c := range cases {
		got, ok := c.in.FaultAwareVariant()
		if got != c.want || ok != c.ok {
			t.Errorf("%v.FaultAwareVariant() = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	for _, a := range []Algorithm{SEEAware, ContendAware} {
		if !a.FaultAware() {
			t.Errorf("%v.FaultAware() = false", a)
		}
	}
	for _, a := range []Algorithm{SEE, REPS, E2E, Greedy, Contend, QPass} {
		if a.FaultAware() {
			t.Errorf("%v.FaultAware() = true", a)
		}
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhasePlan: "plan", PhaseReserve: "reserve",
		PhasePhysical: "physical", PhaseStitch: "stitch",
	}
	if len(want) != NumPhases {
		t.Fatalf("test covers %d phases, NumPhases = %d", len(want), NumPhases)
	}
	for ph, s := range want {
		if ph.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(ph), ph.String(), s)
		}
	}
}

func TestCountingTracer(t *testing.T) {
	var tr CountingTracer // zero value must be usable
	tr.SlotStart(SEE)
	tr.PathPlanned(0, 2)
	tr.PathPlanned(1, 1)
	tr.PathProvisioned(0)
	tr.AttemptReserved(0, 1, 3)
	tr.AttemptResolved(0, 1, true)
	tr.AttemptResolved(0, 1, false)
	tr.SwapResolved(1, true)
	tr.ConnectionAssembled(0, true)
	tr.PhaseDone(PhasePlan, 2*time.Millisecond)
	tr.SlotEnd(&SlotResult{Established: 1})

	c := tr.Counts()
	if c.Slots != 1 || c.PathsPlanned != 2 || c.PathsProvisioned != 1 {
		t.Errorf("path counts wrong: %+v", c)
	}
	if c.AttemptsReserved != 3 || c.AttemptsResolved != 2 ||
		c.SegmentsCreated != 1 || c.AttemptsFailed != 1 {
		t.Errorf("attempt counts wrong: %+v", c)
	}
	if c.SwapsResolved != 1 || c.SwapsSucceeded != 1 ||
		c.ConnectionsAssembled != 1 || c.ConnectionsEstablished != 1 ||
		c.Established != 1 {
		t.Errorf("stitch counts wrong: %+v", c)
	}
	if s := tr.PhaseLatency(PhasePlan); s.N != 1 {
		t.Errorf("PhaseLatency(plan).N = %d, want 1", s.N)
	}
	if tr.String() == "" {
		t.Error("String() empty")
	}
	tr.Reset()
	if c := tr.Counts(); c != (TracerCounts{}) {
		t.Errorf("Reset left counts %+v", c)
	}
	if s := tr.PhaseLatency(PhasePlan); s.N != 0 {
		t.Error("Reset left latency samples")
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(NopTracer); !ok {
		t.Error("OrNop(nil) is not NopTracer")
	}
	ct := NewCountingTracer()
	if OrNop(ct) != Tracer(ct) {
		t.Error("OrNop must pass through non-nil tracers")
	}
}
