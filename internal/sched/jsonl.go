package sched

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"
)

// JSONLTracer streams pipeline events as JSON Lines (one object per event)
// to a writer, for offline analysis of large sweeps. Events carry an "ev"
// discriminator; the schema is flat so standard line-oriented tools (jq,
// awk) can slice it without a reader library.
//
// The tracer buffers writes and latches the first write error (inspect with
// Err); call Flush or Close before reading the output. All methods are safe
// for concurrent use, but events from concurrently traced engines
// interleave — writers that need attribution should run one tracer per
// engine or rely on the slot_start alg field.
type JSONLTracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

var _ Tracer = (*JSONLTracer)(nil)

// NewJSONLTracer wraps a writer in a streaming JSONL tracer. If w also
// implements io.Closer, Close closes it.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	t := &JSONLTracer{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// emit appends one line; it latches the first error and drops later events.
func (t *JSONLTracer) emit(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := fmt.Fprintf(t.w, format+"\n", args...); err != nil {
		t.err = err
	}
}

// SlotStart implements Tracer.
func (t *JSONLTracer) SlotStart(alg Algorithm) {
	t.emit(`{"ev":"slot_start","alg":%q}`, alg.String())
}

// PathPlanned implements Tracer.
func (t *JSONLTracer) PathPlanned(commodity, segments int) {
	t.emit(`{"ev":"path_planned","commodity":%d,"segments":%d}`, commodity, segments)
}

// PathProvisioned implements Tracer.
func (t *JSONLTracer) PathProvisioned(commodity int) {
	t.emit(`{"ev":"path_provisioned","commodity":%d}`, commodity)
}

// AttemptReserved implements Tracer.
func (t *JSONLTracer) AttemptReserved(u, v, count int) {
	t.emit(`{"ev":"attempt_reserved","u":%d,"v":%d,"count":%d}`, u, v, count)
}

// AttemptResolved implements Tracer.
func (t *JSONLTracer) AttemptResolved(u, v int, created bool) {
	t.emit(`{"ev":"attempt_resolved","u":%d,"v":%d,"created":%t}`, u, v, created)
}

// SwapResolved implements Tracer.
func (t *JSONLTracer) SwapResolved(junction int, ok bool) {
	t.emit(`{"ev":"swap","junction":%d,"ok":%t}`, junction, ok)
}

// ConnectionAssembled implements Tracer.
func (t *JSONLTracer) ConnectionAssembled(commodity int, established bool) {
	t.emit(`{"ev":"conn","commodity":%d,"established":%t}`, commodity, established)
}

// PhaseDone implements Tracer.
func (t *JSONLTracer) PhaseDone(ph Phase, d time.Duration) {
	t.emit(`{"ev":"phase","phase":%q,"us":%d}`, ph.String(), d.Microseconds())
}

// Incident implements Tracer.
func (t *JSONLTracer) Incident(kind Incident, n int) {
	t.emit(`{"ev":"incident","kind":%q,"n":%d}`, kind.String(), n)
}

// SlotEnd implements Tracer.
func (t *JSONLTracer) SlotEnd(res *SlotResult) {
	if res == nil {
		t.emit(`{"ev":"slot_end"}`)
		return
	}
	t.emit(`{"ev":"slot_end","planned":%d,"provisioned":%d,"attempts":%d,"created":%d,"assembled":%d,"established":%d}`,
		res.PlannedPaths, res.ProvisionedPaths, res.Attempts,
		res.SegmentsCreated, res.Assembled, res.Established)
}

// Flush writes buffered events through to the underlying writer.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.w.Flush()
	}
	return t.err
}

// Err returns the first write error, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes and, if the underlying writer is a Closer, closes it.
func (t *JSONLTracer) Close() error {
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// multiTracer fans every event out to several tracers in order.
type multiTracer []Tracer

var _ Tracer = multiTracer(nil)

// Multi combines tracers into one. Nil and no-op entries are dropped; the
// result is NopTracer for an effectively empty list and the tracer itself
// when only one remains, so engines' IsNop fast path still works.
func Multi(ts ...Tracer) Tracer {
	kept := make(multiTracer, 0, len(ts))
	for _, t := range ts {
		if !IsNop(t) {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return NopTracer{}
	case 1:
		return kept[0]
	default:
		return kept
	}
}

func (m multiTracer) SlotStart(alg Algorithm) {
	for _, t := range m {
		t.SlotStart(alg)
	}
}

func (m multiTracer) PathPlanned(commodity, segments int) {
	for _, t := range m {
		t.PathPlanned(commodity, segments)
	}
}

func (m multiTracer) PathProvisioned(commodity int) {
	for _, t := range m {
		t.PathProvisioned(commodity)
	}
}

func (m multiTracer) AttemptReserved(u, v, count int) {
	for _, t := range m {
		t.AttemptReserved(u, v, count)
	}
}

func (m multiTracer) AttemptResolved(u, v int, created bool) {
	for _, t := range m {
		t.AttemptResolved(u, v, created)
	}
}

func (m multiTracer) SwapResolved(junction int, ok bool) {
	for _, t := range m {
		t.SwapResolved(junction, ok)
	}
}

func (m multiTracer) ConnectionAssembled(commodity int, established bool) {
	for _, t := range m {
		t.ConnectionAssembled(commodity, established)
	}
}

func (m multiTracer) PhaseDone(ph Phase, d time.Duration) {
	for _, t := range m {
		t.PhaseDone(ph, d)
	}
}

func (m multiTracer) Incident(kind Incident, n int) {
	for _, t := range m {
		t.Incident(kind, n)
	}
}

func (m multiTracer) SlotEnd(res *SlotResult) {
	for _, t := range m {
		t.SlotEnd(res)
	}
}
