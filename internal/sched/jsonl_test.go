package sched

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// driveAll fires every tracer event once.
func driveAll(t Tracer) {
	t.SlotStart(SEE)
	t.PathPlanned(1, 3)
	t.PathProvisioned(1)
	t.AttemptReserved(2, 5, 4)
	t.AttemptResolved(2, 5, true)
	t.AttemptResolved(2, 5, false)
	t.SwapResolved(3, true)
	t.ConnectionAssembled(1, true)
	t.PhaseDone(PhasePlan, 1500*time.Microsecond)
	t.Incident(IncidentFault, 2)
	t.SlotEnd(&SlotResult{PlannedPaths: 1, ProvisionedPaths: 1, Attempts: 4,
		SegmentsCreated: 1, Assembled: 1, Established: 1, PerPair: []int{1}})
}

func TestJSONLTracerEmitsValidLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	driveAll(tr)
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want 11:\n%s", len(lines), buf.String())
	}
	evs := make([]string, 0, len(lines))
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		ev, ok := obj["ev"].(string)
		if !ok {
			t.Fatalf("line %d missing ev discriminator: %s", i, line)
		}
		evs = append(evs, ev)
	}
	want := []string{"slot_start", "path_planned", "path_provisioned",
		"attempt_reserved", "attempt_resolved", "attempt_resolved",
		"swap", "conn", "phase", "incident", "slot_end"}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event order %v, want %v", evs, want)
		}
	}
	// Spot-check one payload.
	var slotEnd map[string]any
	if err := json.Unmarshal([]byte(lines[10]), &slotEnd); err != nil {
		t.Fatal(err)
	}
	if slotEnd["established"].(float64) != 1 || slotEnd["attempts"].(float64) != 4 {
		t.Errorf("slot_end payload wrong: %v", slotEnd)
	}
}

// failingWriter always errors to exercise error latching.
type failingWriter struct{}

func (w *failingWriter) Write(p []byte) (int, error) {
	return 0, errors.New("disk full")
}

func TestJSONLTracerLatchesFirstError(t *testing.T) {
	tr := NewJSONLTracer(&failingWriter{})
	driveAll(tr)
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush did not surface write error")
	}
	if tr.Err() == nil {
		t.Fatal("Err() nil after failed write")
	}
	// Later events must be dropped silently, not panic.
	tr.SlotStart(REPS)
}

func TestMulti(t *testing.T) {
	if _, ok := Multi().(NopTracer); !ok {
		t.Error("Multi() is not NopTracer")
	}
	if _, ok := Multi(nil, NopTracer{}).(NopTracer); !ok {
		t.Error("Multi(nil, nop) is not NopTracer")
	}
	ct := NewCountingTracer()
	if got := Multi(nil, ct); got != Tracer(ct) {
		t.Error("Multi with one live tracer should return it unchanged")
	}
	// Fan-out: both sinks see every event.
	var buf bytes.Buffer
	jt := NewJSONLTracer(&buf)
	m := Multi(ct, jt)
	driveAll(m)
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}
	if c := ct.Counts(); c.Slots != 1 || c.AttemptsReserved != 4 || c.IncidentCount(IncidentFault) != 2 {
		t.Errorf("counting sink missed events: %+v", c)
	}
	if n := strings.Count(buf.String(), "\n"); n != 11 {
		t.Errorf("jsonl sink got %d lines, want 11", n)
	}
}
