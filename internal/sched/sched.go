// Package sched defines the common slot pipeline shared by every
// entanglement-establishment engine in the repository. All three schemes
// of the paper's evaluation (SEE, REPS, E2E) run the same four conceptual
// phases each time slot:
//
//	plan     — identify entanglement paths (EPI / LP rounding)
//	reserve  — reserve channels and memory for creation attempts (ESC /
//	           REPS provisioning)
//	physical — perform the stochastic segment-creation attempts
//	stitch   — assemble realized segments into connections and sample the
//	           quantum swaps (ECE / EPS)
//
// The package gives them one Engine interface, one canonical SlotResult,
// and a Tracer hook with per-phase callbacks so callers can observe where
// throughput is lost (attempts reserved vs. segments created vs. swaps
// survived) without reaching into engine internals. Engines live in
// internal/core, internal/reps and internal/e2e; the factory that builds
// one by Algorithm is internal/engines.
package sched

import (
	"fmt"
	"math/rand"
	"strings"

	"see/internal/qnet"
	"see/internal/state"
)

// Algorithm identifies an entanglement-establishment scheme.
type Algorithm int

// The schemes compared in the paper's evaluation (§IV).
const (
	// SEE integrates all-optical switching with quantum swapping (the
	// paper's contribution).
	SEE Algorithm = iota
	// REPS uses entanglement links only (Zhao & Qiao, INFOCOM 2021).
	REPS
	// E2E uses all-optical switching only: one segment per connection.
	E2E
	// Greedy is the non-LP baseline (NIST-style greedy provisioning): it
	// plans paths by repeated shortest-path on the segment graph and
	// reserves resources first-come-first-served, with no optimization.
	// It doubles as the degradation target when an LP solve blows its
	// slot budget (see internal/engines.NewResilient).
	Greedy
	// Contend is the contention-aware routing baseline in the Q-CAST
	// spirit (Shi & Qian, SIGCOMM 2020): per-pair candidate paths are
	// scored by an expected-throughput metric and selected best-first
	// with explicit contention accounting against residual channels and
	// memory, plus recovery-path fallback in the physical phase (see
	// internal/contend).
	Contend
	// QPass is the offline-routing contrast baseline in the Q-PASS spirit
	// (Shi & Qian, SIGCOMM 2020): candidate paths are fixed against the
	// fault-free topology, scored offline, and provisioned with per-hop
	// recovery attempts reserved up front; the plan never adapts to
	// residual capacities or to the fault forecast (see internal/contend's
	// offline mode).
	QPass
	// ContendAware is Contend with fault-forecast subtraction: announced
	// outages zero and announced brownouts shrink the residual channel and
	// memory capacities before candidate paths are scored (see
	// chaos.Forecast and DESIGN.md §5c).
	ContendAware
	// SEEAware is SEE with fault-forecast subtraction: forecast-dead links
	// are dropped from LP column pricing and announced capacity reductions
	// shrink the provisioning tables.
	SEEAware
	// Oracle is the capacity-bound oracle: it establishes nothing and
	// consumes no randomness, instead computing per-pair entanglement-
	// capacity upper bounds from the topology (min-cut over channel
	// capacities and expected link rates; see internal/oracle) so sweeps
	// can report every engine's throughput as a fraction of what the
	// network could theoretically deliver.
	Oracle
)

// Algorithms lists the paper's schemes in display order. Greedy and
// Contend are repo-grown baselines, selectable by name but not part of
// the paper's evaluation trio.
var Algorithms = []Algorithm{SEE, REPS, E2E}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SEE:
		return "SEE"
	case REPS:
		return "REPS"
	case E2E:
		return "E2E"
	case Greedy:
		return "Greedy"
	case Contend:
		return "Contend"
	case QPass:
		return "QPass"
	case ContendAware:
		return "Contend-Aware"
	case SEEAware:
		return "SEE-Aware"
	case Oracle:
		return "Oracle"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a case-insensitive scheme name ("see", "reps",
// "e2e", "greedy", "contend", "qpass", "contend-aware", "see-aware",
// "oracle") to its Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "see":
		return SEE, nil
	case "reps":
		return REPS, nil
	case "e2e":
		return E2E, nil
	case "greedy":
		return Greedy, nil
	case "contend":
		return Contend, nil
	case "qpass":
		return QPass, nil
	case "contend-aware":
		return ContendAware, nil
	case "see-aware":
		return SEEAware, nil
	case "oracle":
		return Oracle, nil
	default:
		return 0, fmt.Errorf("sched: unknown algorithm %q (want see, reps, e2e, greedy, contend, qpass, contend-aware, see-aware or oracle)", s)
	}
}

// FaultAware reports whether the scheme subtracts the announced fault
// forecast from its planning capacities.
func (a Algorithm) FaultAware() bool { return a == SEEAware || a == ContendAware }

// FaultAwareVariant returns the forecast-aware twin of a scheme and true,
// or the scheme unchanged and false when no aware variant is registered
// (REPS, E2E, Greedy and QPass plan fault-blind by design).
func (a Algorithm) FaultAwareVariant() (Algorithm, bool) {
	switch a {
	case SEE:
		return SEEAware, true
	case Contend:
		return ContendAware, true
	case SEEAware, ContendAware:
		return a, true
	}
	return a, false
}

// SlotResult is the canonical report of one simulated time slot, shared by
// every engine. Phases an engine does not run per slot leave their fields
// zero (REPS provisions once at construction, so it reports
// PlannedPaths = ProvisionedPaths = 0).
type SlotResult struct {
	// LPObjective is the engine's fractional planning optimum (identical
	// across slots; also exposed as Engine.UpperBound).
	LPObjective float64
	// PlannedPaths is |T|: entanglement paths identified by the plan phase.
	PlannedPaths int
	// ProvisionedPaths is |D|: paths for which the reserve phase secured
	// full resources.
	ProvisionedPaths int
	// Attempts is the total number of segment-creation attempts reserved.
	Attempts int
	// SegmentsCreated is how many attempts succeeded in the physical phase
	// (for REPS these are entanglement links, i.e. single-hop segments).
	SegmentsCreated int
	// Assembled counts connection-assembly attempts in the stitch phase
	// (each consumes one realized segment per hop; swap failures make
	// Assembled > Established).
	Assembled int
	// Established is the throughput: connections whose swaps all succeeded.
	Established int
	// FloorRejected counts candidate assemblies the stitch phase refused
	// because their predicted end-to-end fidelity missed the request's
	// floor (zero when no fidelity floors are configured).
	FloorRejected int
	// PerPair is the established count per SD pair.
	PerPair []int
	// Connections lists the established connections.
	Connections []*qnet.Connection
}

// Engine runs time slots of one entanglement-establishment scheme over a
// fixed network and demand set. All engines are deterministic functions of
// the rng state passed to RunSlot.
type Engine interface {
	// Algorithm identifies the scheme.
	Algorithm() Algorithm
	// RunSlot simulates one time slot; the rng drives all stochastic
	// outcomes, so a fixed generator state reproduces the slot.
	RunSlot(rng *rand.Rand) (*SlotResult, error)
	// UpperBound returns the engine's LP planning value. For the default
	// swap-survival-weighted objective this bounds the expected
	// single-pass throughput; retry-based establishment (backed by
	// redundant segments) can deliver somewhat more.
	UpperBound() float64
}

// Stateful is the optional cross-slot state capability (see internal/state
// and DESIGN.md §6). An engine implementing it can carry
// realized-but-unconsumed entanglement segments across slot boundaries
// through an attached state.Bank: it withdraws surviving segments before
// planning each slot (reducing that slot's reservation demand) and
// deposits the slot's surplus at the end.
//
// The capability is strictly opt-in: with no bank attached (Bank() == nil)
// a Stateful engine must be byte-identical to one without the capability,
// the same contract zero fault plans honor. Attach a bank before the first
// RunSlot and never swap it mid-run; all four engines plus the resilient
// wrapper in internal/engines implement the interface.
type Stateful interface {
	Engine
	// AttachBank installs the cross-slot segment bank (nil detaches).
	AttachBank(b *state.Bank)
	// Bank returns the attached bank, or nil when carry-over is disabled.
	Bank() *state.Bank
}
