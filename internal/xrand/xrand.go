// Package xrand provides deterministic random-number utilities shared by the
// simulator. Every stochastic component of the system receives an explicit
// *rand.Rand so that trials are reproducible from a single base seed.
package xrand

import "math/rand"

// New returns a new deterministic generator for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent generator from rng. The derived stream is a
// pure function of rng's current state, so a fixed seeding order yields a
// fixed set of streams. Use it to give subsystems (topology generation,
// physical-phase sampling, rounding) their own streams so that adding draws
// to one subsystem does not perturb the others.
func Split(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}

// ForTrial derives the canonical per-trial generator: trial t of an
// experiment with base seed s is always seeded identically, regardless of
// how many trials run or in which order. ForTrialStream is the
// position-tracking variant used by checkpointing layers.
func ForTrial(baseSeed int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(TrialSeed(baseSeed, trial)))
}

// Bernoulli returns true with probability p. Probabilities outside [0, 1]
// are clamped.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// WeightedIndex draws an index proportionally to the non-negative weights.
// It returns -1 when the total weight is zero or the slice is empty.
func WeightedIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// Shuffle permutes the first n indices, calling swap as rand.Shuffle does.
func Shuffle(rng *rand.Rand, n int, swap func(i, j int)) {
	rng.Shuffle(n, swap)
}
