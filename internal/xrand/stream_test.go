package xrand

import (
	"testing"
)

// TestStreamMatchesNew asserts the byte-compatibility contract: a Stream
// yields exactly the values of a plain New(seed) generator.
func TestStreamMatchesNew(t *testing.T) {
	s := NewStream(42)
	plain := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := s.Rand().Int63(), plain.Int63(); got != want {
			t.Fatalf("draw %d: stream %d, plain %d", i, got, want)
		}
	}
	if s.Pos() != 1000 {
		t.Fatalf("Pos() = %d after 1000 draws", s.Pos())
	}
}

// TestForTrialStreamMatchesForTrial pins the trial-seed derivation.
func TestForTrialStreamMatchesForTrial(t *testing.T) {
	s := ForTrialStream(20220101, 7)
	plain := ForTrial(20220101, 7)
	for i := 0; i < 100; i++ {
		if got, want := s.Rand().Float64(), plain.Float64(); got != want {
			t.Fatalf("draw %d: stream %v, plain %v", i, got, want)
		}
	}
}

// TestCursorRestore asserts the replay contract at arbitrary split points:
// restoring a cursor reproduces the remaining stream exactly, for every
// rand.Rand entry point engines use.
func TestCursorRestore(t *testing.T) {
	for _, split := range []int{0, 1, 17, 256} {
		ref := NewStream(9)
		// Mix of draw kinds, including the variable-consumption ones.
		burn := func(rng *Stream, n int) []float64 {
			var out []float64
			for i := 0; i < n; i++ {
				out = append(out, rng.Rand().Float64())
				out = append(out, float64(rng.Rand().Intn(7)))
				if i%3 == 0 {
					out = append(out, rng.Rand().NormFloat64())
				}
			}
			return out
		}
		burn(ref, split)
		cur := ref.Cursor()
		want := burn(ref, 50)

		resumed := Restore(cur)
		if resumed.Pos() != cur.Pos {
			t.Fatalf("split %d: restored Pos %d, want %d", split, resumed.Pos(), cur.Pos)
		}
		got := burn(resumed, 50)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("split %d: draw %d diverged: got %v, want %v", split, i, got[i], want[i])
			}
		}
	}
}

// TestStreamReseed checks that Seed resets the stream to a fresh state.
func TestStreamReseed(t *testing.T) {
	s := NewStream(3)
	s.Rand().Int63()
	s.Seed(11)
	if s.Pos() != 0 || s.SeedValue() != 11 {
		t.Fatalf("after Seed(11): pos=%d seed=%d", s.Pos(), s.SeedValue())
	}
	if got, want := s.Rand().Int63(), New(11).Int63(); got != want {
		t.Fatalf("reseeded stream %d, fresh generator %d", got, want)
	}
}

// TestSkip checks Skip advances the position identically to discarding
// draws.
func TestSkip(t *testing.T) {
	a, b := NewStream(5), NewStream(5)
	for i := 0; i < 33; i++ {
		a.Rand().Int63()
	}
	b.Skip(33)
	if a.Pos() != b.Pos() {
		t.Fatalf("pos mismatch: %d vs %d", a.Pos(), b.Pos())
	}
	if x, y := a.Rand().Int63(), b.Rand().Int63(); x != y {
		t.Fatalf("post-skip draw mismatch: %d vs %d", x, y)
	}
}
