package xrand

import (
	"fmt"
	"math/rand"
)

// Cursor pins the exact position of a Stream: the seed that created it and
// the number of low-level draws consumed since seeding. A cursor is the
// serializable identity of an rng state — checkpoints store cursors, and
// Restore reconstructs the stream so the next draw is exactly the draw the
// original stream would have produced.
type Cursor struct {
	Seed int64  `json:"seed"`
	Pos  uint64 `json:"pos"`
}

// Stream is a deterministic random stream with an explicit position. It
// wraps the same generator New returns — a Stream and a plain New(seed)
// produce byte-identical values — but counts every low-level draw, so the
// stream can be snapshotted (Cursor) and reconstructed (Restore) at any
// point between draws.
//
// Stream implements rand.Source64; engines consume it through Rand(),
// which returns a *rand.Rand backed by the counting source. Do not mix
// draws from Rand() with direct Int63/Uint64 calls on the same Stream
// unless you account for both in replay order (both advance the one
// position).
type Stream struct {
	seed int64
	pos  uint64
	src  rand.Source64
	rng  *rand.Rand
}

var _ rand.Source64 = (*Stream)(nil)

// NewStream returns a position-tracking stream for the seed. The values it
// yields are identical to New(seed)'s.
func NewStream(seed int64) *Stream {
	s := &Stream{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
	s.rng = rand.New(s)
	return s
}

// ForTrialStream is ForTrial with an explicit position: it derives the
// canonical per-trial seed and wraps it in a Stream. ForTrial(base, t) and
// ForTrialStream(base, t).Rand() produce byte-identical values.
func ForTrialStream(baseSeed int64, trial int) *Stream {
	return NewStream(TrialSeed(baseSeed, trial))
}

// Rand returns the generator backed by this stream. Every draw through it
// advances the stream's position by the number of low-level source steps it
// consumes.
func (s *Stream) Rand() *rand.Rand { return s.rng }

// SeedValue returns the seed the stream was created from.
func (s *Stream) SeedValue() int64 { return s.seed }

// Pos returns the number of low-level draws consumed so far.
func (s *Stream) Pos() uint64 { return s.pos }

// Cursor snapshots the stream's position. Valid only between draws (i.e.
// between RunSlot calls, not mid-slot): restoring a cursor reproduces the
// remaining stream exactly.
func (s *Stream) Cursor() Cursor { return Cursor{Seed: s.seed, Pos: s.pos} }

// Int63 implements rand.Source, counting the draw.
func (s *Stream) Int63() int64 {
	s.pos++
	return s.src.Int63()
}

// Uint64 implements rand.Source64, counting the draw.
func (s *Stream) Uint64() uint64 {
	s.pos++
	return s.src.Uint64()
}

// Seed reseeds the stream and resets its position, preserving the
// cursor-replay contract: a reseeded stream is indistinguishable from
// NewStream(seed).
func (s *Stream) Seed(seed int64) {
	s.seed = seed
	s.pos = 0
	s.src.Seed(seed)
}

// Restore reconstructs the stream a cursor was taken from by reseeding and
// fast-forwarding: the next draw equals the original stream's next draw.
// The cost is linear in Pos (one source step per consumed draw, roughly
// 5·10⁸ steps per second), which keeps restore O(history) but checkpoint
// O(1) — the trade that preserves byte-compatibility with every existing
// xrand stream. Restores are rare (one per process resume), so linear
// replay is the right side of that trade.
func Restore(c Cursor) *Stream {
	s := NewStream(c.Seed)
	s.Skip(c.Pos)
	return s
}

// Skip discards n low-level draws, advancing the position without
// producing values.
func (s *Stream) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.pos += n
}

// String renders the stream position for diagnostics.
func (s *Stream) String() string {
	return fmt.Sprintf("xrand.Stream{seed: %d, pos: %d}", s.seed, s.pos)
}

// TrialSeed derives the canonical per-trial seed used by ForTrial: a
// SplitMix-style mix of (baseSeed, trial) that keeps nearby pairs
// decorrelated. Exposed so checkpointing layers can name the seed of a
// trial stream without holding the stream itself.
func TrialSeed(baseSeed int64, trial int) int64 {
	z := uint64(baseSeed) + 0x9e3779b97f4a7c15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
