package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("generators with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSplitIndependent(t *testing.T) {
	rng := New(7)
	a := Split(rng)
	b := Split(rng)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d/64 equal draws", same)
	}
}

func TestForTrialStable(t *testing.T) {
	x := ForTrial(123, 5).Int63()
	y := ForTrial(123, 5).Int63()
	if x != y {
		t.Fatalf("ForTrial not stable: %d vs %d", x, y)
	}
	if ForTrial(123, 5).Int63() == ForTrial(123, 6).Int63() {
		t.Fatal("adjacent trials produced identical first draw")
	}
	if ForTrial(123, 5).Int63() == ForTrial(124, 5).Int63() {
		t.Fatal("adjacent seeds produced identical first draw")
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := New(1)
	for i := 0; i < 100; i++ {
		if Bernoulli(rng, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(rng, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if Bernoulli(rng, -0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !Bernoulli(rng, 1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	rng := New(99)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %.4f, want ~0.30", got)
	}
}

func TestWeightedIndexDegenerate(t *testing.T) {
	rng := New(3)
	if got := WeightedIndex(rng, nil); got != -1 {
		t.Fatalf("empty weights: got %d, want -1", got)
	}
	if got := WeightedIndex(rng, []float64{0, 0, 0}); got != -1 {
		t.Fatalf("zero weights: got %d, want -1", got)
	}
	if got := WeightedIndex(rng, []float64{0, 5, 0}); got != 1 {
		t.Fatalf("single positive weight: got %d, want 1", got)
	}
	if got := WeightedIndex(rng, []float64{-1, 0, 2}); got != 2 {
		t.Fatalf("negative weights must be ignored: got %d, want 2", got)
	}
}

func TestWeightedIndexProportions(t *testing.T) {
	rng := New(8)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[WeightedIndex(rng, weights)]++
	}
	want := []float64{0.1, 0.3, 0.6}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Fatalf("index %d frequency = %.4f, want ~%.2f", i, got, want[i])
		}
	}
}

func TestWeightedIndexAlwaysValid(t *testing.T) {
	rng := New(17)
	f := func(raw []float64) bool {
		anyPositive := false
		for i := range raw {
			raw[i] = math.Abs(raw[i])
			if raw[i] > 0 && !math.IsInf(raw[i], 0) && !math.IsNaN(raw[i]) {
				anyPositive = true
			} else {
				raw[i] = 0
			}
		}
		idx := WeightedIndex(rng, raw)
		if !anyPositive {
			return idx == -1
		}
		return idx >= 0 && idx < len(raw) && raw[idx] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
