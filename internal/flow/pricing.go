package flow

import (
	"math"

	"see/internal/graph"
)

// priceScratch holds the reusable buffers of one worker's layered pricing
// DP. Each parallel pricing worker owns exactly one (see model.price), so
// the DP never shares state across goroutines; its zero value is ready and
// grows on first use.
type priceScratch struct {
	dist       []float64
	logq       []float64
	prevNode   []int32
	prevEdge   []int32
	frontier   []int
	inFrontier []bool
}

func (ps *priceScratch) resize(layers, n int) {
	if len(ps.dist) != layers*n {
		ps.dist = make([]float64, layers*n)
		ps.logq = make([]float64, layers*n)
		ps.prevNode = make([]int32, layers*n)
		ps.prevEdge = make([]int32, layers*n)
	}
	if len(ps.inFrontier) != n {
		ps.inFrontier = make([]bool, n)
	}
	ps.frontier = ps.frontier[:0]
}

// layeredPrice is the pricing oracle for the swap-weighted objective: it
// finds, over all hop counts h ≤ MaxJunctions+1, the s→d path of exactly h
// segment hops minimizing resource cost, and returns the one maximizing
//
//	w(path) − dualI − cost,   w = Π_{junctions} q_j,
//
// if that exceeds eps. Because a path with h hops has exactly h−1
// junctions, hop count is a DAG layer: dist_h[v] = min over arcs (u,v) of
// dist_{h−1}[u] + cost(u,v), a pure dynamic program with no priority queue.
// For networks with uniform swap probability (the paper's setting) the
// layer fixes w exactly; for heterogeneous q the survival of the stored
// min-cost path is used, a conservative approximation.
//
// Min-cost fixed-hop walks may in principle revisit nodes; such walks are
// strictly dominated (positive arc costs, weights ≤ 1), so loopy
// reconstructions are skipped and a dominating simple path at another
// layer wins instead.
//
// It returns (nil, nil, 0) when no path qualifies.
func (m *model) layeredPrice(ps *priceScratch, i int, dualI, eps float64) (graph.Path, []int, float64) {
	sd := m.set.Pairs[i]
	g := m.set.SegGraph
	n := g.N()
	maxHops := m.opts.MaxJunctions + 1

	ps.resize(maxHops+1, n)
	dist, logq := ps.dist, ps.logq
	prevNode, prevEdge := ps.prevNode, ps.prevEdge
	// Only dist needs resetting: prevNode/prevEdge are read exclusively at
	// entries whose dist was written this call (reconstruct follows layers
	// h…1 of a finite-dist path), so stale values are never observed.
	for k := range dist {
		dist[k] = math.Inf(1)
	}
	idx := func(h, v int) int { return h*n + v }
	dist[idx(0, sd.S)] = 0

	// frontier of nodes reachable at the previous layer.
	frontier := append(ps.frontier, sd.S)
	inFrontier := ps.inFrontier
	for h := 1; h <= maxHops && len(frontier) > 0; h++ {
		next := frontier[:0:0]
		for i2 := range inFrontier {
			inFrontier[i2] = false
		}
		for _, u := range frontier {
			du := dist[idx(h-1, u)]
			base := du
			var addLogq float64
			if u != sd.S {
				addLogq = m.negLogQ[u]
				if math.IsInf(addLogq, 1) {
					continue
				}
			}
			lq := logq[idx(h-1, u)] + addLogq
			for _, e := range g.Neighbors(u) {
				w := m.bestCost[e.ID]
				if math.IsInf(w, 1) {
					continue
				}
				to := idx(h, e.To)
				if nd := base + w; nd < dist[to] {
					dist[to] = nd
					logq[to] = lq
					prevNode[to] = int32(u)
					prevEdge[to] = int32(e.ID)
					if !inFrontier[e.To] {
						inFrontier[e.To] = true
						next = append(next, e.To)
					}
				}
			}
		}
		frontier = next
	}

	// Rank layers by reduced cost; seeding (dualI = −Inf) accepts the best
	// finite layer unconditionally.
	effDual := dualI
	minRC := eps
	if math.IsInf(dualI, -1) {
		effDual = 0
		minRC = math.Inf(-1)
	}
	type cand struct {
		h  int
		rc float64
		w  float64
	}
	var cands []cand
	for h := 1; h <= maxHops; h++ {
		st := idx(h, sd.D)
		if math.IsInf(dist[st], 1) {
			continue
		}
		w := math.Exp(-logq[st])
		if rc := w - effDual - dist[st]; rc > minRC {
			cands = append(cands, cand{h: h, rc: rc, w: w})
		}
	}
	// Try candidates from best reduced cost down, skipping loopy walks.
	for len(cands) > 0 {
		best := 0
		for k := 1; k < len(cands); k++ {
			if cands[k].rc > cands[best].rc {
				best = k
			}
		}
		nodes, edges := reconstruct(prevNode, prevEdge, n, cands[best].h, sd.D)
		if nodes.Loopless() {
			return nodes, edges, cands[best].w
		}
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return nil, nil, 0
}

func reconstruct(prevNode, prevEdge []int32, n, h, dst int) (graph.Path, []int) {
	nodes := make(graph.Path, h+1)
	edges := make([]int, h)
	v := dst
	for layer := h; layer > 0; layer-- {
		nodes[layer] = v
		edges[layer-1] = int(prevEdge[layer*n+v])
		v = int(prevNode[layer*n+v])
	}
	nodes[0] = v
	return nodes, edges
}
