// Package flow solves the LP relaxation of the paper's throughput
// maximization (formulation (1)) in path form via column generation.
//
// Aggregating formulation (1) over the per-connection index n (valid for
// the relaxation: the t^n_i are interchangeable and constraint (1g) only
// breaks symmetry), the LP becomes a packing problem over entanglement
// paths. A column is a path for SD pair i through the segment graph with a
// concrete physical realization chosen per segment; one unit of flow on the
// column provides one (expected) entanglement connection and consumes
//
//	1/(p^k_uv · √(q_u·q_v))
//
// attempts on segment (u,v) realized over physical segment k — which in
// turn consume one channel on each physical link of the realization and one
// unit of memory at each segment endpoint, exactly constraints (1d)–(1f).
//
// The master problem is the revised simplex in internal/lp; the pricing
// oracle is a Dijkstra run per SD pair on the segment graph, where each
// segment-arc is priced at its cheapest realization under the current
// duals. Pricing is exact (any non-minimal realization has no better
// reduced cost), so on convergence the solution is LP-optimal over the
// whole exponential column space.
//
// Both pricing stages parallelize deterministically (Options.Workers): the
// per-segment-edge realization scan and the per-commodity path searches
// write only per-index output slots, and the priced columns are inserted
// into the master in commodity order, so the column sequence — and with it
// the simplex basis trajectory and the returned Solution — is byte-identical
// at any worker count.
package flow

import (
	"context"
	"errors"
	"fmt"
	"math"

	"see/internal/graph"
	"see/internal/lp"
	"see/internal/par"
	"see/internal/segment"
)

// SegHop is one segment of an entanglement path: the endpoint pair plus the
// physical realization chosen when the column was priced.
type SegHop struct {
	Pair segment.PairKey
	Cand *segment.Candidate
}

// PathFlow is one path column with positive flow in the LP optimum.
type PathFlow struct {
	// Commodity indexes the SD pair.
	Commodity int
	// Hops lists the segments from source to destination.
	Hops []SegHop
	// Nodes is the junction sequence s, …, d of the entanglement path.
	Nodes graph.Path
	// Flow is the fractional number of connections carried.
	Flow float64
}

// Solution is the LP optimum in path form.
type Solution struct {
	Status lp.Status
	// Objective is the LP value (upper bound on expected connections).
	Objective float64
	// PerCommodity is T_i = Σ flow of commodity i's paths.
	PerCommodity []float64
	// Paths lists all columns with positive flow.
	Paths []PathFlow
	// Rounds is the number of column-generation rounds used.
	Rounds int
	// Columns is the total number of columns generated.
	Columns int
}

// Options tunes the solve.
type Options struct {
	// MaxRounds caps column-generation rounds (default 120).
	MaxRounds int
	// ConnCap is the per-pair cap N_i; nil derives min(mem_s, mem_d).
	ConnCap []int
	// Epsilon is the reduced-cost threshold for adding a column
	// (default 1e-7).
	Epsilon float64
	// Channels, when non-nil, overrides the per-link channel capacities
	// (REPS's progressive rounding re-solves the LP on residual
	// capacities).
	Channels []int
	// Memory, when non-nil, overrides the per-node memory capacities.
	Memory []int
	// DropDeadLinks removes candidates crossing a link with zero effective
	// channel capacity — or ending at a node with zero effective memory —
	// from column pricing entirely (their attempt factor becomes +Inf)
	// instead of merely giving them a zero-capacity row. Fault-aware
	// engines enable it so forecast-dead elements never enter the column
	// space; because "effective" means the Channels/Memory override when
	// present and the network tables otherwise, the pricing trajectory on
	// a full topology with forecast overrides is byte-identical to the one
	// on the equivalent pre-shrunk topology with no overrides.
	DropDeadLinks bool
	// SwapWeightedObjective weights each path column by its junction swap
	// survival Π q_j instead of 1, so the LP maximizes *expected
	// established* connections rather than planned ones. Formulation (1)
	// uses weight 1 and only prices swapping into capacity (the √(q_u·q_v)
	// apportioning), which over-plans junction-heavy paths as q drops;
	// with this flag SEE's planning degrades gracefully toward the pure
	// all-optical solution at low q, matching the paper's Fig. 5.
	// Pricing stays exact via a junction-layered Dijkstra.
	SwapWeightedObjective bool
	// MaxJunctions bounds the junction count considered by the layered
	// pricing (default 14); only used with SwapWeightedObjective.
	MaxJunctions int
	// Workers bounds the goroutines used by each pricing round (the
	// per-segment-edge realization scan and the per-commodity path
	// searches). 0 means GOMAXPROCS, 1 is fully serial. The solve is
	// deterministic: the same inputs yield a byte-identical Solution at
	// any worker count.
	Workers int
	// CarryWeights, when non-nil, divides each segment edge's priced
	// realization cost by its weight (indexed by segment-graph edge ID;
	// weights are ≥ 1, with 1 meaning no bias). The carry-aware SEE
	// engine derives the weights from its banked inventory so column
	// generation prefers paths that can stitch through already-realized,
	// high-fidelity carried segments. The bias steers only which columns
	// pricing proposes — every generated column keeps its true
	// coefficients, so the returned Solution is a valid LP optimum over
	// the generated column set. Nil leaves pricing untouched.
	CarryWeights []float64
	// Arena, when non-nil, carries the dual-independent candidate tables
	// and per-worker pricing scratch across sequential solves over the
	// same segment set (REPS's progressive rounding re-solves the LP up
	// to six times per engine build). Reuse never alters results: the
	// tables are pure functions of (set, options) and the arena is
	// bypassed whenever those inputs differ. An Arena must not be shared
	// by concurrent solves.
	Arena *Arena
}

// Arena is the reusable column-pool state of Options.Arena. Its zero value
// is ready; see DESIGN.md §9 for the arena lifetime rules.
type Arena struct {
	set      *segment.Set
	dropDead bool
	// channels/memory are the capacity overrides in effect when the tables
	// were built; they only affect the tables when dropDead is set (dead
	// candidates are excluded from the column space), so they are only
	// compared then.
	channels []int
	memory   []int

	factors      [][]float64
	candLinkRows [][][]int32
	pairMemRows  [][2]int32
	negLogQ      []float64
	hasNegLogQ   bool
	price        []*priceScratch
}

// tablesValid reports whether the arena's cached candidate tables were
// built from exactly the inputs the current solve would use.
func (a *Arena) tablesValid(set *segment.Set, opts Options) bool {
	if a.set != set || a.factors == nil || a.dropDead != opts.DropDeadLinks {
		return false
	}
	if !a.dropDead {
		return true
	}
	return intSlicesEqual(a.channels, opts.Channels) && intSlicesEqual(a.memory, opts.Memory)
}

func intSlicesEqual(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (o Options) withDefaults(set *segment.Set) Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 120
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-7
	}
	if o.MaxJunctions <= 0 {
		o.MaxJunctions = 14
	}
	if o.ConnCap == nil {
		o.ConnCap = make([]int, len(set.Pairs))
		for i, sd := range set.Pairs {
			o.ConnCap[i] = min(set.Net.Memory[sd.S], set.Net.Memory[sd.D])
		}
	}
	return o
}

// model holds the row layout shared by pricing and column construction.
type model struct {
	set     *segment.Set
	opts    Options
	linkRow map[int]int // physical link ID -> row
	memRow  map[int]int // node -> row
	numRows int
	solver  *lp.PackingSolver

	// Dual-independent per-candidate data, computed once at model build
	// (aligned with set.ByPair[set.EdgePairs[edgeID]]):
	// factors[edgeID][k] is the attempt factor 1/(p·√(q_u·q_v)) and
	// candLinkRows[edgeID][k] the master rows of the candidate's physical
	// links. pairMemRows[edgeID] holds the memory rows of the edge's two
	// endpoints. Pricing rounds touch no maps and recompute no factors.
	factors      [][]float64
	candLinkRows [][][]int32
	pairMemRows  [][2]int32
	// negLogQ[v] caches −ln(SwapProb[v]) for the layered pricing DP
	// (+Inf at q ≤ 0); the log was previously recomputed per frontier
	// node per layer per commodity per round.
	negLogQ []float64

	// Per segment edge, recomputed each round: the cheapest realization
	// under current duals, its cost, its attempt factor and its index in
	// the ByPair list (the compact column-key component).
	bestCost    []float64
	bestCand    []*segment.Candidate
	bestCandIdx []int32
	bestFactor  []float64

	colKeys colKeySet
	columns []column

	// Per-worker scratch of the layered pricing DP (index = worker id from
	// par.ForWorker, so no two goroutines share a buffer).
	price []*priceScratch
}

type column struct {
	commodity int
	hops      []SegHop
	nodes     graph.Path
}

// pricedPath is one commodity's pricing result for a round, produced in a
// per-commodity slot by the parallel phase and inserted serially.
type pricedPath struct {
	nodes   graph.Path
	edgeIDs []int
	weight  float64
	ok      bool
}

// colKeySet deduplicates generated columns by their identity key — the
// commodity followed by (edge ID, realization index) per hop — stored as
// compact integer slices hashed with FNV-1a (the previous implementation
// built throwaway fmt.Fprintf strings per candidate per round).
type colKeySet struct {
	buckets map[uint64][][]int32
}

// add inserts the key and reports whether it was new.
func (s *colKeySet) add(k []int32) bool {
	if s.buckets == nil {
		s.buckets = make(map[uint64][][]int32)
	}
	h := uint64(14695981039346656037)
	for _, v := range k {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	for _, ex := range s.buckets[h] {
		if len(ex) != len(k) {
			continue
		}
		same := true
		for i := range ex {
			if ex[i] != k[i] {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], k)
	return true
}

// Solve runs column generation to LP optimality (or MaxRounds).
func Solve(set *segment.Set, opts Options) (*Solution, error) {
	return SolveCtx(nil, set, opts)
}

// SolveCtx is Solve bounded by a context (nil = never cancelled). The
// deadline is honored at every stage of the column-generation loop — master
// pivots (lp.SolveCtx), realization pricing and path pricing (par.*Ctx) —
// so an expired slot budget aborts the solve promptly with ctx.Err()
// instead of finishing the round. A cancelled solve returns no Solution;
// the degradation ladder in internal/engines falls back to the greedy
// engine when that happens.
func SolveCtx(ctx context.Context, set *segment.Set, opts Options) (*Solution, error) {
	if set == nil {
		return nil, errors.New("flow: nil segment set")
	}
	opts = opts.withDefaults(set)
	if len(opts.ConnCap) != len(set.Pairs) {
		return nil, fmt.Errorf("flow: ConnCap has %d entries for %d pairs", len(opts.ConnCap), len(set.Pairs))
	}

	m := &model{set: set, opts: opts}
	m.layoutRows()
	m.buildCandidateTables()
	var err error
	m.solver, err = lp.NewPacking(m.rhs())
	if err != nil {
		return nil, fmt.Errorf("flow: building master: %w", err)
	}

	priced := make([]pricedPath, len(set.Pairs))

	// Seed with resource-greedy columns: price under uniform unit duals so
	// initial paths already prefer cheap, reliable segments.
	if err := m.priceRealizations(ctx, unitDuals(m.numRows)); err != nil {
		return nil, fmt.Errorf("flow: seed pricing: %w", err)
	}
	if err := m.priceColumns(ctx, nil, opts.Epsilon, priced); err != nil {
		return nil, fmt.Errorf("flow: seed pricing: %w", err)
	}
	for i := range set.Pairs {
		m.insertColumn(i, &priced[i])
	}

	rounds := 0
	for ; rounds < opts.MaxRounds; rounds++ {
		status, err := m.solver.SolveCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("flow: master solve: %w", err)
		}
		if status != lp.StatusOptimal {
			return m.extract(status, rounds), nil
		}
		duals := m.solver.Duals()
		if err := m.priceRealizations(ctx, duals); err != nil {
			return nil, fmt.Errorf("flow: pricing round %d: %w", rounds, err)
		}
		if err := m.priceColumns(ctx, duals, opts.Epsilon, priced); err != nil {
			return nil, fmt.Errorf("flow: pricing round %d: %w", rounds, err)
		}
		added := 0
		for i := range set.Pairs {
			// Add the path iff its reduced cost w_P − dual_i − cost > ε.
			if m.insertColumn(i, &priced[i]) {
				added++
			}
		}
		if added == 0 {
			return m.extract(lp.StatusOptimal, rounds+1), nil
		}
	}
	// Ran out of rounds: return the incumbent as a near-optimal solution.
	return m.extract(lp.StatusIterLimit, rounds), nil
}

// layoutRows assigns row indices: commodities, used links, used endpoints.
func (m *model) layoutRows() {
	m.linkRow = make(map[int]int)
	m.memRow = make(map[int]int)
	row := len(m.set.Pairs)
	for _, id := range m.set.UsedLinks() {
		m.linkRow[id] = row
		row++
	}
	for _, u := range m.set.UsedEndpoints() {
		m.memRow[u] = row
		row++
	}
	m.numRows = row
}

// buildCandidateTables precomputes the dual-independent per-candidate data:
// attempt factors and master-row indices. The pricing loop runs every round
// under fresh duals, but these never change, so they are resolved exactly
// once here.
func (m *model) buildCandidateTables() {
	n := len(m.set.EdgePairs)
	m.bestCost = make([]float64, n)
	m.bestCand = make([]*segment.Candidate, n)
	m.bestCandIdx = make([]int32, n)
	m.bestFactor = make([]float64, n)
	if a := m.opts.Arena; a != nil && a.tablesValid(m.set, m.opts) {
		// The tables are pure functions of (set, DropDeadLinks overrides):
		// replaying them is bit-identical to rebuilding.
		m.factors = a.factors
		m.candLinkRows = a.candLinkRows
		m.pairMemRows = a.pairMemRows
		if m.opts.SwapWeightedObjective && a.hasNegLogQ {
			m.negLogQ = a.negLogQ
		} else if m.opts.SwapWeightedObjective {
			m.buildNegLogQ()
			a.negLogQ, a.hasNegLogQ = m.negLogQ, true
		}
		m.price = a.price
		return
	}
	m.factors = make([][]float64, n)
	m.candLinkRows = make([][][]int32, n)
	m.pairMemRows = make([][2]int32, n)
	dead := func(c *segment.Candidate) bool { return false }
	if m.opts.DropDeadLinks {
		channels := m.opts.Channels
		if channels == nil {
			channels = m.set.Net.Channels
		}
		memory := m.opts.Memory
		if memory == nil {
			memory = m.set.Net.Memory
		}
		dead = func(c *segment.Candidate) bool {
			for _, e := range c.EdgeIDs {
				if channels[e] <= 0 {
					return true
				}
			}
			return memory[c.Path[0]] <= 0 || memory[c.Path[len(c.Path)-1]] <= 0
		}
	}
	for id, pk := range m.set.EdgePairs {
		list := m.set.ByPair[pk]
		fs := make([]float64, len(list))
		rows := make([][]int32, len(list))
		for k, c := range list {
			if dead(c) {
				// Forecast-dead realization: excluded from the column space.
				fs[k] = math.Inf(1)
			} else {
				fs[k] = attemptFactor(m.set, c)
			}
			lr := make([]int32, len(c.EdgeIDs))
			for h, e := range c.EdgeIDs {
				lr[h] = int32(m.linkRow[e])
			}
			rows[k] = lr
		}
		m.factors[id] = fs
		m.candLinkRows[id] = rows
		m.pairMemRows[id] = [2]int32{int32(m.memRow[pk.U]), int32(m.memRow[pk.V])}
	}
	if m.opts.SwapWeightedObjective {
		m.buildNegLogQ()
	}
	if a := m.opts.Arena; a != nil {
		a.set = m.set
		a.dropDead = m.opts.DropDeadLinks
		a.channels = append(a.channels[:0], m.opts.Channels...)
		a.memory = append(a.memory[:0], m.opts.Memory...)
		if m.opts.Channels == nil {
			a.channels = nil
		}
		if m.opts.Memory == nil {
			a.memory = nil
		}
		a.factors = m.factors
		a.candLinkRows = m.candLinkRows
		a.pairMemRows = m.pairMemRows
		a.negLogQ, a.hasNegLogQ = m.negLogQ, m.opts.SwapWeightedObjective
		m.price = a.price
	}
}

func (m *model) buildNegLogQ() {
	m.negLogQ = make([]float64, m.set.Net.NumNodes())
	for v, q := range m.set.Net.SwapProb {
		if q <= 0 {
			m.negLogQ[v] = math.Inf(1)
		} else {
			m.negLogQ[v] = -math.Log(q)
		}
	}
}

func (m *model) rhs() []float64 {
	channels := m.opts.Channels
	if channels == nil {
		channels = m.set.Net.Channels
	}
	memory := m.opts.Memory
	if memory == nil {
		memory = m.set.Net.Memory
	}
	b := make([]float64, m.numRows)
	for i, cap := range m.opts.ConnCap {
		b[i] = float64(cap)
	}
	for id, row := range m.linkRow {
		b[row] = maxf(0, float64(channels[id]))
	}
	for u, row := range m.memRow {
		b[row] = maxf(0, float64(memory[u]))
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func unitDuals(n int) []float64 {
	y := make([]float64, n)
	for i := range y {
		y[i] = 1
	}
	return y
}

// attemptFactor is 1/(p·√(q_u q_v)); +Inf when the realization cannot
// support flow.
func attemptFactor(set *segment.Set, c *segment.Candidate) float64 {
	qu := set.Net.SwapProb[c.Path[0]]
	qv := set.Net.SwapProb[c.Path[len(c.Path)-1]]
	den := c.Prob * math.Sqrt(qu*qv)
	if den <= 1e-12 {
		return math.Inf(1)
	}
	return 1 / den
}

// priceRealizations computes, per segment edge, the cheapest realization
// cost under the duals: factor · (Σ link duals + endpoint memory duals).
// Edges are priced in parallel; each index writes only its own slots, so
// the result is independent of the worker count. A cancelled ctx aborts
// the scan and returns ctx.Err(); the partially written slots are
// discarded by the caller.
func (m *model) priceRealizations(ctx context.Context, duals []float64) error {
	return par.ForCtx(ctx, m.opts.Workers, len(m.set.EdgePairs), func(id int) {
		best := math.Inf(1)
		bestK := -1
		mr := m.pairMemRows[id]
		memDual := duals[mr[0]] + duals[mr[1]]
		fs := m.factors[id]
		for k, rows := range m.candLinkRows[id] {
			f := fs[k]
			if math.IsInf(f, 1) {
				continue
			}
			sum := memDual
			for _, r := range rows {
				sum += duals[r]
			}
			// A tiny per-segment epsilon keeps degenerate all-zero-dual
			// rounds from returning needlessly long paths.
			cost := f * (sum + 1e-9)
			if cost < best {
				best = cost
				bestK = k
			}
		}
		// Carry-aware bias: edges covered by banked inventory price
		// cheaper (both the plain Dijkstra and the layered DP read
		// bestCost, so this is the single application point).
		if cw := m.opts.CarryWeights; id < len(cw) && cw[id] > 1 {
			best /= cw[id]
		}
		m.bestCost[id] = best
		m.bestCandIdx[id] = int32(bestK)
		if bestK >= 0 {
			m.bestCand[id] = m.set.ByPair[m.set.EdgePairs[id]][bestK]
			m.bestFactor[id] = fs[bestK]
		} else {
			m.bestCand[id] = nil
			m.bestFactor[id] = math.Inf(1)
		}
	})
}

// priceColumns runs the per-commodity pricing oracle for every SD pair into
// the per-commodity slots of out. duals == nil is the seeding round (every
// finite path qualifies). Commodities are priced in parallel; each worker
// uses its own layered-DP scratch and writes only its commodity's slot.
// A cancelled ctx aborts the pricing and returns ctx.Err().
func (m *model) priceColumns(ctx context.Context, duals []float64, eps float64, out []pricedPath) error {
	n := len(m.set.Pairs)
	if need := par.Resolve(m.opts.Workers, n); len(m.price) < need {
		// May hold a shorter arena-carried slice from a solve with fewer
		// workers; keep the existing scratches and grow.
		m.price = append(m.price, make([]*priceScratch, need-len(m.price))...)
		if a := m.opts.Arena; a != nil {
			a.price = m.price
		}
	}
	return par.ForWorkerCtx(ctx, m.opts.Workers, n, func(w, i int) {
		dualI := math.Inf(-1)
		if duals != nil {
			dualI = duals[i]
		}
		out[i] = m.pricePath(w, i, dualI, eps)
	})
}

// pricePath finds commodity i's best path under the current edge prices.
// dualI = −Inf forces seeding (any finite-cost path qualifies).
func (m *model) pricePath(w, i int, dualI, eps float64) pricedPath {
	if m.opts.SwapWeightedObjective {
		if m.price[w] == nil {
			m.price[w] = &priceScratch{}
		}
		nodes, edgeIDs, weight := m.layeredPrice(m.price[w], i, dualI, eps)
		return pricedPath{nodes: nodes, edgeIDs: edgeIDs, weight: weight, ok: nodes != nil}
	}
	sd := m.set.Pairs[i]
	res := graph.Dijkstra(m.set.SegGraph, sd.S, graph.DijkstraOptions{
		EdgeWeight: func(id int, _ float64) float64 { return m.bestCost[id] },
	})
	if res.Dist[sd.D] == graph.Unreachable || 1-dualI-res.Dist[sd.D] <= eps {
		return pricedPath{}
	}
	return pricedPath{nodes: res.PathTo(sd.D), edgeIDs: res.EdgesTo(sd.D), weight: 1, ok: true}
}

// insertColumn adds commodity i's priced path to the master unless it is a
// duplicate or unusable. Insertion runs serially in commodity order, so the
// master's column sequence does not depend on the pricing worker count.
func (m *model) insertColumn(i int, pp *pricedPath) bool {
	if !pp.ok || pp.nodes == nil {
		return false
	}
	hops := make([]SegHop, len(pp.edgeIDs))
	key := make([]int32, 0, 1+2*len(pp.edgeIDs))
	key = append(key, int32(i))
	for h, id := range pp.edgeIDs {
		cand := m.bestCand[id]
		if cand == nil {
			return false
		}
		hops[h] = SegHop{Pair: m.set.EdgePairs[id], Cand: cand}
		key = append(key, int32(id), m.bestCandIdx[id])
	}
	if !m.colKeys.add(key) {
		return false
	}

	entries := m.columnEntries(i, pp.edgeIDs)
	if entries == nil {
		return false
	}
	if _, err := m.solver.AddColumn(pp.weight, entries); err != nil {
		return false
	}
	m.columns = append(m.columns, column{commodity: i, hops: hops, nodes: pp.nodes})
	return true
}

// columnEntries builds the sparse resource footprint of a path column from
// the cached per-candidate rows and factors of the round's best
// realizations.
func (m *model) columnEntries(i int, edgeIDs []int) []lp.Entry {
	acc := make(map[int]float64, 2+3*len(edgeIDs))
	acc[i] = 1
	for _, id := range edgeIDs {
		f := m.bestFactor[id]
		if math.IsInf(f, 1) {
			return nil
		}
		for _, r := range m.candLinkRows[id][m.bestCandIdx[id]] {
			acc[int(r)] += f
		}
		mr := m.pairMemRows[id]
		acc[int(mr[0])] += f
		acc[int(mr[1])] += f
	}
	entries := make([]lp.Entry, 0, len(acc))
	for row, v := range acc {
		entries = append(entries, lp.Entry{Index: row, Value: v})
	}
	return entries
}

func (m *model) extract(status lp.Status, rounds int) *Solution {
	sol := &Solution{
		Status:       status,
		Objective:    m.solver.Objective(),
		PerCommodity: make([]float64, len(m.set.Pairs)),
		Rounds:       rounds,
		Columns:      len(m.columns),
	}
	primals := m.solver.Primals()
	for j, v := range primals {
		if v <= 1e-9 {
			continue
		}
		col := m.columns[j]
		sol.PerCommodity[col.commodity] += v
		sol.Paths = append(sol.Paths, PathFlow{
			Commodity: col.commodity,
			Hops:      col.hops,
			Nodes:     col.nodes,
			Flow:      v,
		})
	}
	return sol
}
