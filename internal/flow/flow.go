// Package flow solves the LP relaxation of the paper's throughput
// maximization (formulation (1)) in path form via column generation.
//
// Aggregating formulation (1) over the per-connection index n (valid for
// the relaxation: the t^n_i are interchangeable and constraint (1g) only
// breaks symmetry), the LP becomes a packing problem over entanglement
// paths. A column is a path for SD pair i through the segment graph with a
// concrete physical realization chosen per segment; one unit of flow on the
// column provides one (expected) entanglement connection and consumes
//
//	1/(p^k_uv · √(q_u·q_v))
//
// attempts on segment (u,v) realized over physical segment k — which in
// turn consume one channel on each physical link of the realization and one
// unit of memory at each segment endpoint, exactly constraints (1d)–(1f).
//
// The master problem is the revised simplex in internal/lp; the pricing
// oracle is a Dijkstra run per SD pair on the segment graph, where each
// segment-arc is priced at its cheapest realization under the current
// duals. Pricing is exact (any non-minimal realization has no better
// reduced cost), so on convergence the solution is LP-optimal over the
// whole exponential column space.
package flow

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"see/internal/graph"
	"see/internal/lp"
	"see/internal/segment"
)

// SegHop is one segment of an entanglement path: the endpoint pair plus the
// physical realization chosen when the column was priced.
type SegHop struct {
	Pair segment.PairKey
	Cand *segment.Candidate
}

// PathFlow is one path column with positive flow in the LP optimum.
type PathFlow struct {
	// Commodity indexes the SD pair.
	Commodity int
	// Hops lists the segments from source to destination.
	Hops []SegHop
	// Nodes is the junction sequence s, …, d of the entanglement path.
	Nodes graph.Path
	// Flow is the fractional number of connections carried.
	Flow float64
}

// Solution is the LP optimum in path form.
type Solution struct {
	Status lp.Status
	// Objective is the LP value (upper bound on expected connections).
	Objective float64
	// PerCommodity is T_i = Σ flow of commodity i's paths.
	PerCommodity []float64
	// Paths lists all columns with positive flow.
	Paths []PathFlow
	// Rounds is the number of column-generation rounds used.
	Rounds int
	// Columns is the total number of columns generated.
	Columns int
}

// Options tunes the solve.
type Options struct {
	// MaxRounds caps column-generation rounds (default 120).
	MaxRounds int
	// ConnCap is the per-pair cap N_i; nil derives min(mem_s, mem_d).
	ConnCap []int
	// Epsilon is the reduced-cost threshold for adding a column
	// (default 1e-7).
	Epsilon float64
	// Channels, when non-nil, overrides the per-link channel capacities
	// (REPS's progressive rounding re-solves the LP on residual
	// capacities).
	Channels []int
	// Memory, when non-nil, overrides the per-node memory capacities.
	Memory []int
	// SwapWeightedObjective weights each path column by its junction swap
	// survival Π q_j instead of 1, so the LP maximizes *expected
	// established* connections rather than planned ones. Formulation (1)
	// uses weight 1 and only prices swapping into capacity (the √(q_u·q_v)
	// apportioning), which over-plans junction-heavy paths as q drops;
	// with this flag SEE's planning degrades gracefully toward the pure
	// all-optical solution at low q, matching the paper's Fig. 5.
	// Pricing stays exact via a junction-layered Dijkstra.
	SwapWeightedObjective bool
	// MaxJunctions bounds the junction count considered by the layered
	// pricing (default 14); only used with SwapWeightedObjective.
	MaxJunctions int
}

func (o Options) withDefaults(set *segment.Set) Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 120
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-7
	}
	if o.MaxJunctions <= 0 {
		o.MaxJunctions = 14
	}
	if o.ConnCap == nil {
		o.ConnCap = make([]int, len(set.Pairs))
		for i, sd := range set.Pairs {
			o.ConnCap[i] = min(set.Net.Memory[sd.S], set.Net.Memory[sd.D])
		}
	}
	return o
}

// model holds the row layout shared by pricing and column construction.
type model struct {
	set     *segment.Set
	opts    Options
	linkRow map[int]int // physical link ID -> row
	memRow  map[int]int // node -> row
	numRows int
	solver  *lp.PackingSolver

	// usage[pairEdgeID] is recomputed each round: the cheapest realization
	// of each segment edge under current duals and its cost.
	bestCost []float64
	bestCand []*segment.Candidate

	colKeys map[string]struct{}
	columns []column

	// Reusable buffers of the layered pricing DP.
	priceDist     []float64
	priceLogq     []float64
	pricePrevNode []int32
	pricePrevEdge []int32
}

type column struct {
	commodity int
	hops      []SegHop
	nodes     graph.Path
}

// Solve runs column generation to LP optimality (or MaxRounds).
func Solve(set *segment.Set, opts Options) (*Solution, error) {
	if set == nil {
		return nil, errors.New("flow: nil segment set")
	}
	opts = opts.withDefaults(set)
	if len(opts.ConnCap) != len(set.Pairs) {
		return nil, fmt.Errorf("flow: ConnCap has %d entries for %d pairs", len(opts.ConnCap), len(set.Pairs))
	}

	m := &model{set: set, opts: opts, colKeys: make(map[string]struct{})}
	m.layoutRows()
	var err error
	m.solver, err = lp.NewPacking(m.rhs())
	if err != nil {
		return nil, fmt.Errorf("flow: building master: %w", err)
	}

	// Seed with resource-greedy columns: price under uniform unit duals so
	// initial paths already prefer cheap, reliable segments.
	m.priceRealizations(unitDuals(m.numRows))
	for i := range set.Pairs {
		m.addPricedColumn(i, math.Inf(-1), opts.Epsilon)
	}

	rounds := 0
	for ; rounds < opts.MaxRounds; rounds++ {
		status, err := m.solver.Solve()
		if err != nil {
			return nil, fmt.Errorf("flow: master solve: %w", err)
		}
		if status != lp.StatusOptimal {
			return m.extract(status, rounds), nil
		}
		duals := m.solver.Duals()
		m.priceRealizations(duals)
		added := 0
		for i := range set.Pairs {
			// Add the path iff its reduced cost w_P − dual_i − cost > ε.
			if m.addPricedColumn(i, duals[i], opts.Epsilon) {
				added++
			}
		}
		if added == 0 {
			return m.extract(lp.StatusOptimal, rounds+1), nil
		}
	}
	// Ran out of rounds: return the incumbent as a near-optimal solution.
	return m.extract(lp.StatusIterLimit, rounds), nil
}

// layoutRows assigns row indices: commodities, used links, used endpoints.
func (m *model) layoutRows() {
	m.linkRow = make(map[int]int)
	m.memRow = make(map[int]int)
	row := len(m.set.Pairs)
	for _, id := range m.set.UsedLinks() {
		m.linkRow[id] = row
		row++
	}
	for _, u := range m.set.UsedEndpoints() {
		m.memRow[u] = row
		row++
	}
	m.numRows = row
}

func (m *model) rhs() []float64 {
	channels := m.opts.Channels
	if channels == nil {
		channels = m.set.Net.Channels
	}
	memory := m.opts.Memory
	if memory == nil {
		memory = m.set.Net.Memory
	}
	b := make([]float64, m.numRows)
	for i, cap := range m.opts.ConnCap {
		b[i] = float64(cap)
	}
	for id, row := range m.linkRow {
		b[row] = maxf(0, float64(channels[id]))
	}
	for u, row := range m.memRow {
		b[row] = maxf(0, float64(memory[u]))
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func unitDuals(n int) []float64 {
	y := make([]float64, n)
	for i := range y {
		y[i] = 1
	}
	return y
}

// attemptFactor is 1/(p·√(q_u q_v)); +Inf when the realization cannot
// support flow.
func (m *model) attemptFactor(c *segment.Candidate) float64 {
	qu := m.set.Net.SwapProb[c.Path[0]]
	qv := m.set.Net.SwapProb[c.Path[len(c.Path)-1]]
	den := c.Prob * math.Sqrt(qu*qv)
	if den <= 1e-12 {
		return math.Inf(1)
	}
	return 1 / den
}

// priceRealizations computes, per segment edge, the cheapest realization
// cost under the duals: factor · (Σ link duals + endpoint memory duals).
func (m *model) priceRealizations(duals []float64) {
	n := len(m.set.EdgePairs)
	if m.bestCost == nil {
		m.bestCost = make([]float64, n)
		m.bestCand = make([]*segment.Candidate, n)
	}
	for id, pk := range m.set.EdgePairs {
		best := math.Inf(1)
		var bestC *segment.Candidate
		memDual := duals[m.memRow[pk.U]] + duals[m.memRow[pk.V]]
		for _, c := range m.set.ByPair[pk] {
			f := m.attemptFactor(c)
			if math.IsInf(f, 1) {
				continue
			}
			sum := memDual
			for _, e := range c.EdgeIDs {
				sum += duals[m.linkRow[e]]
			}
			// A tiny per-segment epsilon keeps degenerate all-zero-dual
			// rounds from returning needlessly long paths.
			cost := f * (sum + 1e-9)
			if cost < best {
				best = cost
				bestC = c
			}
		}
		m.bestCost[id] = best
		m.bestCand[id] = bestC
	}
}

// addPricedColumn prices one commodity and adds the best path column if
// its reduced cost w_P − dualI − cost exceeds eps (dualI = −Inf forces
// seeding). Returns whether a new column was added.
func (m *model) addPricedColumn(i int, dualI, eps float64) bool {
	var nodes graph.Path
	var edgeIDs []int
	var weight float64
	if m.opts.SwapWeightedObjective {
		nodes, edgeIDs, weight = m.layeredPrice(i, dualI, eps)
	} else {
		sd := m.set.Pairs[i]
		res := graph.Dijkstra(m.set.SegGraph, sd.S, graph.DijkstraOptions{
			EdgeWeight: func(id int, _ float64) float64 { return m.bestCost[id] },
		})
		if res.Dist[sd.D] == graph.Unreachable || 1-dualI-res.Dist[sd.D] <= eps {
			return false
		}
		nodes = res.PathTo(sd.D)
		edgeIDs = res.EdgesTo(sd.D)
		weight = 1
	}
	if nodes == nil {
		return false
	}
	hops := make([]SegHop, len(edgeIDs))
	var key strings.Builder
	fmt.Fprintf(&key, "c%d", i)
	for h, id := range edgeIDs {
		cand := m.bestCand[id]
		if cand == nil {
			return false
		}
		hops[h] = SegHop{Pair: m.set.EdgePairs[id], Cand: cand}
		fmt.Fprintf(&key, "|%d:%s", id, candKey(cand))
	}
	if _, dup := m.colKeys[key.String()]; dup {
		return false
	}
	m.colKeys[key.String()] = struct{}{}

	entries := m.columnEntries(i, hops)
	if entries == nil {
		return false
	}
	if _, err := m.solver.AddColumn(weight, entries); err != nil {
		return false
	}
	m.columns = append(m.columns, column{commodity: i, hops: hops, nodes: nodes})
	return true
}

func candKey(c *segment.Candidate) string {
	var b strings.Builder
	for _, v := range c.Path {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// columnEntries builds the sparse resource footprint of a path column.
func (m *model) columnEntries(i int, hops []SegHop) []lp.Entry {
	acc := make(map[int]float64, 2+3*len(hops))
	acc[i] = 1
	for _, h := range hops {
		f := m.attemptFactor(h.Cand)
		if math.IsInf(f, 1) {
			return nil
		}
		for _, e := range h.Cand.EdgeIDs {
			acc[m.linkRow[e]] += f
		}
		acc[m.memRow[h.Pair.U]] += f
		acc[m.memRow[h.Pair.V]] += f
	}
	entries := make([]lp.Entry, 0, len(acc))
	for row, v := range acc {
		entries = append(entries, lp.Entry{Index: row, Value: v})
	}
	return entries
}

func (m *model) extract(status lp.Status, rounds int) *Solution {
	sol := &Solution{
		Status:       status,
		Objective:    m.solver.Objective(),
		PerCommodity: make([]float64, len(m.set.Pairs)),
		Rounds:       rounds,
		Columns:      len(m.columns),
	}
	primals := m.solver.Primals()
	for j, v := range primals {
		if v <= 1e-9 {
			continue
		}
		col := m.columns[j]
		sol.PerCommodity[col.commodity] += v
		sol.Paths = append(sol.Paths, PathFlow{
			Commodity: col.commodity,
			Hops:      col.hops,
			Nodes:     col.nodes,
			Flow:      v,
		})
	}
	return sol
}
