package flow_test

import (
	"fmt"
	"log"
	"reflect"

	"see/internal/flow"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

// ExampleSolve_arena shows column-pool reuse across solves: REPS's
// progressive rounding re-solves the LP on residual capacities up to six
// times over the same segment set, and an Arena carries the
// dual-independent candidate tables (attempt factors, master-row indices)
// and pricing scratch between those solves instead of rebuilding them.
// Reuse is observationally transparent — the arena-backed solution is
// byte-identical to a cold one, because the pooled tables are pure
// functions of the segment set.
func ExampleSolve_arena() {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 24
	net, err := topo.Generate(cfg, xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 3, xrand.New(4))
	set, err := segment.Build(net, pairs, segment.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	cold, err := flow.Solve(set, flow.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Two sequential solves sharing one arena: the second reuses the
	// pooled tables the first built.
	arena := &flow.Arena{}
	first, err := flow.Solve(set, flow.Options{Arena: arena})
	if err != nil {
		log.Fatal(err)
	}
	second, err := flow.Solve(set, flow.Options{Arena: arena})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("arena solve matches cold: %v\n", reflect.DeepEqual(first, cold))
	fmt.Printf("arena re-solve matches cold: %v\n", reflect.DeepEqual(second, cold))
	// Output:
	// arena solve matches cold: true
	// arena re-solve matches cold: true
}
