package flow

import (
	"fmt"
	"math"
	"testing"

	"see/internal/graph"
	"see/internal/lp"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

// lineNetwork builds a chain 0-1-…-n with uniform link length, channels,
// memory and swap probability, and a zero-noise exponential prober.
func lineNetwork(n int, linkKM float64, channels, memory int, q, alpha float64) *topo.Network {
	net := &topo.Network{
		G:        graph.New(n),
		Pos:      make([][2]float64, n),
		Memory:   make([]int, n),
		SwapProb: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		net.Pos[i] = [2]float64{float64(i) * linkKM, 0}
		net.Memory[i] = memory
		net.SwapProb[i] = q
	}
	for i := 0; i+1 < n; i++ {
		net.G.AddEdge(i, i+1, linkKM)
		net.LinkLen = append(net.LinkLen, linkKM)
		net.Channels = append(net.Channels, channels)
	}
	net.SetProber(topo.ExpProber{Alpha: alpha})
	return net
}

func buildSet(t *testing.T, net *topo.Network, pairs []topo.SDPair, opts segment.Options) *segment.Set {
	t.Helper()
	set, err := segment.Build(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestSolvePerfectChain(t *testing.T) {
	// p = 1 and q = 1 everywhere: the only binding resource is the channel
	// count, so the LP optimum is exactly the channel capacity.
	net := lineNetwork(4, 100, 3, 10, 1, 0)
	pairs := []topo.SDPair{{S: 0, D: 3}}
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	sol, err := Solve(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("objective = %v, want 3 (channel-bound)", sol.Objective)
	}
	if math.Abs(sol.PerCommodity[0]-3) > 1e-6 {
		t.Fatalf("T_0 = %v, want 3", sol.PerCommodity[0])
	}
}

func TestSolveMemoryBound(t *testing.T) {
	// Endpoint memory 2 beats channel capacity 5.
	net := lineNetwork(3, 100, 5, 2, 1, 0)
	pairs := []topo.SDPair{{S: 0, D: 2}}
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	sol, err := Solve(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2 (memory-bound)", sol.Objective)
	}
}

func TestSolveConnCap(t *testing.T) {
	net := lineNetwork(3, 100, 5, 10, 1, 0)
	pairs := []topo.SDPair{{S: 0, D: 2}}
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	sol, err := Solve(set, Options{ConnCap: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Fatalf("objective = %v, want 1 (ConnCap)", sol.Objective)
	}
	if _, err := Solve(set, Options{ConnCap: []int{1, 2}}); err == nil {
		t.Fatal("mismatched ConnCap length accepted")
	}
}

func TestSolveUnroutablePair(t *testing.T) {
	// Two disconnected line components.
	net := &topo.Network{
		G:        graph.New(4),
		Pos:      make([][2]float64, 4),
		Memory:   []int{5, 5, 5, 5},
		SwapProb: []float64{1, 1, 1, 1},
	}
	net.G.AddEdge(0, 1, 100)
	net.LinkLen = []float64{100}
	net.Channels = []int{3}
	net.G.AddEdge(2, 3, 100)
	net.LinkLen = append(net.LinkLen, 100)
	net.Channels = append(net.Channels, 3)
	net.SetProber(topo.ExpProber{Alpha: 0})
	set := buildSet(t, net, []topo.SDPair{{S: 0, D: 3}, {S: 0, D: 1}}, segment.DefaultOptions())
	sol, err := Solve(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PerCommodity[0] != 0 {
		t.Fatalf("unroutable pair got flow %v", sol.PerCommodity[0])
	}
	if sol.PerCommodity[1] <= 0 {
		t.Fatal("routable pair got no flow")
	}
}

func TestSolveNilSet(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Fatal("nil set accepted")
	}
}

// verifyFeasibility recomputes resource usage from the returned paths and
// asserts all capacities hold.
func verifyFeasibility(t *testing.T, set *segment.Set, sol *Solution, caps []int) {
	t.Helper()
	linkUse := make(map[int]float64)
	memUse := make(map[int]float64)
	perC := make([]float64, len(set.Pairs))
	for _, pf := range sol.Paths {
		perC[pf.Commodity] += pf.Flow
		if pf.Nodes[0] != set.Pairs[pf.Commodity].S || pf.Nodes[len(pf.Nodes)-1] != set.Pairs[pf.Commodity].D {
			t.Fatalf("path endpoints %v do not match pair %+v", pf.Nodes, set.Pairs[pf.Commodity])
		}
		for h, hop := range pf.Hops {
			if hop.Cand == nil {
				t.Fatal("hop without candidate")
			}
			pk := segment.MakePairKey(pf.Nodes[h], pf.Nodes[h+1])
			if hop.Pair != pk {
				t.Fatalf("hop %d pair %+v != node sequence %+v", h, hop.Pair, pk)
			}
			qu := set.Net.SwapProb[hop.Cand.Path[0]]
			qv := set.Net.SwapProb[hop.Cand.Path[len(hop.Cand.Path)-1]]
			f := pf.Flow / (hop.Cand.Prob * math.Sqrt(qu*qv))
			for _, e := range hop.Cand.EdgeIDs {
				linkUse[e] += f
			}
			memUse[hop.Pair.U] += f
			memUse[hop.Pair.V] += f
		}
	}
	const eps = 1e-6
	for e, use := range linkUse {
		if use > float64(set.Net.Channels[e])+eps {
			t.Fatalf("link %d overdrawn: %v > %d", e, use, set.Net.Channels[e])
		}
	}
	for u, use := range memUse {
		if use > float64(set.Net.Memory[u])+eps {
			t.Fatalf("memory %d overdrawn: %v > %d", u, use, set.Net.Memory[u])
		}
	}
	for i, v := range perC {
		if caps != nil && v > float64(caps[i])+eps {
			t.Fatalf("commodity %d exceeds cap: %v > %d", i, v, caps[i])
		}
		if math.Abs(v-sol.PerCommodity[i]) > eps {
			t.Fatalf("PerCommodity[%d] = %v, recomputed %v", i, sol.PerCommodity[i], v)
		}
	}
}

func TestSolveMotivationFeasibleAndPositive(t *testing.T) {
	net, pairs := topo.Motivation()
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	sol, err := Solve(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective <= 0.5 || sol.Objective > 2+1e-9 {
		t.Fatalf("objective = %v outside (0.5, 2]", sol.Objective)
	}
	verifyFeasibility(t, set, sol, nil)
}

// denseEquivalent builds the arc-form LP of formulation (1) (aggregated
// over n) with the dense solver, as an oracle for the column-generation
// stack.
func denseEquivalent(t *testing.T, set *segment.Set, connCap []int) float64 {
	t.Helper()
	type arc struct{ from, to, edgeID int }
	var arcs []arc
	for id, pk := range set.EdgePairs {
		arcs = append(arcs, arc{pk.U, pk.V, id}, arc{pk.V, pk.U, id})
	}
	numPairs := len(set.Pairs)
	// Variables: f[i][a] per commodity per arc, x[pair][cand], T[i].
	fBase := 0
	numF := numPairs * len(arcs)
	xIndex := make(map[*segment.Candidate]int)
	next := fBase + numF
	for _, pk := range set.EdgePairs {
		for _, c := range set.ByPair[pk] {
			xIndex[c] = next
			next++
		}
	}
	tBase := next
	next += numPairs
	p := lp.NewDense(next)
	for i := 0; i < numPairs; i++ {
		p.SetObjective(tBase+i, 1)
	}
	fVar := func(i, a int) int { return fBase + i*len(arcs) + a }
	// Flow conservation.
	for i, sd := range set.Pairs {
		for u := 0; u < set.Net.NumNodes(); u++ {
			var row []lp.Entry
			for a, ar := range arcs {
				if ar.from == u {
					row = append(row, lp.Entry{Index: fVar(i, a), Value: 1})
				}
				if ar.to == u {
					row = append(row, lp.Entry{Index: fVar(i, a), Value: -1})
				}
			}
			switch u {
			case sd.S:
				row = append(row, lp.Entry{Index: tBase + i, Value: -1})
			case sd.D:
				row = append(row, lp.Entry{Index: tBase + i, Value: 1})
			}
			if len(row) == 0 {
				continue
			}
			p.AddConstraint(row, lp.EQ, 0)
		}
	}
	// (1d): flow across a pair <= sum p x sqrt(qu qv).
	for id, pk := range set.EdgePairs {
		var row []lp.Entry
		for i := 0; i < numPairs; i++ {
			for a, ar := range arcs {
				if ar.edgeID == id {
					row = append(row, lp.Entry{Index: fVar(i, a), Value: 1})
				}
			}
		}
		qs := math.Sqrt(set.Net.SwapProb[pk.U] * set.Net.SwapProb[pk.V])
		for _, c := range set.ByPair[pk] {
			row = append(row, lp.Entry{Index: xIndex[c], Value: -c.Prob * qs})
		}
		p.AddConstraint(row, lp.LE, 0)
	}
	// (1e): channel capacity.
	for _, linkID := range set.UsedLinks() {
		var row []lp.Entry
		for _, pk := range set.EdgePairs {
			for _, c := range set.ByPair[pk] {
				for _, e := range c.EdgeIDs {
					if e == linkID {
						row = append(row, lp.Entry{Index: xIndex[c], Value: 1})
					}
				}
			}
		}
		p.AddConstraint(row, lp.LE, float64(set.Net.Channels[linkID]))
	}
	// (1f): memory.
	for _, u := range set.UsedEndpoints() {
		var row []lp.Entry
		for _, pk := range set.EdgePairs {
			if pk.U != u && pk.V != u {
				continue
			}
			for _, c := range set.ByPair[pk] {
				row = append(row, lp.Entry{Index: xIndex[c], Value: 1})
			}
		}
		p.AddConstraint(row, lp.LE, float64(set.Net.Memory[u]))
	}
	// T_i caps.
	for i := range set.Pairs {
		cap := connCap[i]
		p.AddConstraint([]lp.Entry{{Index: tBase + i, Value: 1}}, lp.LE, float64(cap))
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("dense oracle status = %v", sol.Status)
	}
	return sol.Objective
}

// Property: column generation matches the dense arc-form LP on the
// motivation fixture and small random networks.
func TestSolveMatchesDenseOracle(t *testing.T) {
	check := func(name string, set *segment.Set) {
		connCap := make([]int, len(set.Pairs))
		for i, sd := range set.Pairs {
			connCap[i] = min(set.Net.Memory[sd.S], set.Net.Memory[sd.D])
		}
		sol, err := Solve(set, Options{ConnCap: connCap})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := denseEquivalent(t, set, connCap)
		if math.Abs(sol.Objective-want) > 1e-5*(1+want) {
			t.Fatalf("%s: colgen %v != dense %v", name, sol.Objective, want)
		}
		verifyFeasibility(t, set, sol, connCap)
	}

	net, pairs := topo.Motivation()
	check("motivation", buildSet(t, net, pairs, segment.DefaultOptions()))

	for seed := int64(0); seed < 4; seed++ {
		cfg := topo.DefaultConfig()
		cfg.Nodes = 14
		rnet, err := topo.Generate(cfg, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		rpairs := topo.ChooseSDPairs(rnet, 3, xrand.New(seed+100))
		opts := segment.DefaultOptions()
		opts.KPaths = 3
		opts.MaxSegmentHops = 3
		check("random", buildSet(t, rnet, rpairs, opts))
	}
}

func TestSolveZeroSwapProbability(t *testing.T) {
	// q = 0 at every node: no segment can support flow (the √(q_u q_v)
	// apportioning zeroes capacity), so the LP optimum is 0 and no columns
	// are usable.
	net := lineNetwork(3, 100, 3, 10, 0, 0)
	pairs := []topo.SDPair{{S: 0, D: 2}}
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	sol, err := Solve(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Fatalf("objective = %v, want 0", sol.Objective)
	}
}

// With the swap-weighted objective on a perfect network (q = 1) the optimum
// is unchanged: every path has weight 1.
func TestSwapWeightedMatchesPlainAtQ1(t *testing.T) {
	net := lineNetwork(5, 100, 3, 10, 1, 0)
	pairs := []topo.SDPair{{S: 0, D: 4}}
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	plain, err := Solve(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Solve(set, Options{SwapWeightedObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Objective-weighted.Objective) > 1e-6 {
		t.Fatalf("q=1: plain %v != weighted %v", plain.Objective, weighted.Objective)
	}
}

// At low swap probability the weighted objective must choose junction-light
// paths: on a 3-node line with a 2-hop candidate, all flow should ride the
// direct segment rather than two links joined by a swap.
func TestSwapWeightedPrefersFewJunctions(t *testing.T) {
	net := lineNetwork(3, 100, 4, 10, 0.5, 0) // q = 0.5, p = 1 (alpha 0)
	pairs := []topo.SDPair{{S: 0, D: 2}}
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	sol, err := Solve(set, Options{SwapWeightedObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	for _, pf := range sol.Paths {
		if pf.Flow > 1e-6 && len(pf.Hops) != 1 {
			t.Fatalf("weighted LP put flow %v on a %d-junction path at q=0.5", pf.Flow, len(pf.Hops)-1)
		}
	}
}

// The weighted objective value is Σ w_P·y_P with w_P = q^junctions; verify
// on a controlled instance. Line 0-1-2 with q = 0.8 everywhere, p = 1,
// channels 2, memory 10: the direct segment 0-2 uses both links with
// factor 1/(1·0.8) = 1.25; capacity 2 per link allows 1.6 units of direct
// flow with weight 1 -> objective 1.6. The link-pair alternative wastes
// memory at node 1 and has weight 0.8 with identical channel cost, so the
// optimum is the direct segment.
func TestSwapWeightedObjectiveValue(t *testing.T) {
	net := lineNetwork(3, 100, 2, 10, 0.8, 0)
	pairs := []topo.SDPair{{S: 0, D: 2}}
	set := buildSet(t, net, pairs, segment.DefaultOptions())
	sol, err := Solve(set, Options{SwapWeightedObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1.6) > 1e-6 {
		t.Fatalf("objective = %v, want 1.6", sol.Objective)
	}
}

// Weighted objective can never exceed the unweighted optimum (weights <= 1)
// and both must remain feasible; property-checked on random networks.
func TestSwapWeightedBoundedByPlain(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := topo.DefaultConfig()
		cfg.Nodes = 16
		cfg.SwapProb = 0.7
		net, err := topo.Generate(cfg, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		pairs := topo.ChooseSDPairs(net, 3, xrand.New(seed+50))
		opts := segment.DefaultOptions()
		opts.KPaths = 3
		set := buildSet(t, net, pairs, opts)
		plain, err := Solve(set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := Solve(set, Options{SwapWeightedObjective: true})
		if err != nil {
			t.Fatal(err)
		}
		if weighted.Objective > plain.Objective+1e-6 {
			t.Fatalf("seed %d: weighted %v > plain %v", seed, weighted.Objective, plain.Objective)
		}
		verifyFeasibility(t, set, weighted, nil)
	}
}

// TestSolveParallelPricingDeterministic checks the deterministic-parallelism
// contract of the pricing rounds: Solve must return byte-identical results
// at every worker count, because each pricing goroutine writes only its own
// output slot and columns are inserted in commodity order on the caller's
// goroutine (see internal/par). Floats are compared with ==, not a
// tolerance — any divergence in the basis trajectory is a bug.
func TestSolveParallelPricingDeterministic(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 80
	net, err := topo.Generate(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 12, xrand.New(8))
	segOpts := segment.DefaultOptions()
	segOpts.MaxSegmentHops = 10
	set := buildSet(t, net, pairs, segOpts)

	for _, weighted := range []bool{false, true} {
		base, err := Solve(set, Options{SwapWeightedObjective: weighted, Workers: 1})
		if err != nil {
			t.Fatalf("weighted=%v workers=1: %v", weighted, err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := Solve(set, Options{SwapWeightedObjective: weighted, Workers: workers})
			if err != nil {
				t.Fatalf("weighted=%v workers=%d: %v", weighted, workers, err)
			}
			ctx := fmt.Sprintf("weighted=%v", weighted)
			if got.Objective != base.Objective {
				t.Fatalf("%s workers=%d: objective %v != %v", ctx, workers, got.Objective, base.Objective)
			}
			if got.Rounds != base.Rounds || got.Columns != base.Columns {
				t.Fatalf("%s workers=%d: rounds/columns (%d,%d) != (%d,%d)",
					ctx, workers, got.Rounds, got.Columns, base.Rounds, base.Columns)
			}
			if len(got.PerCommodity) != len(base.PerCommodity) {
				t.Fatalf("%s workers=%d: PerCommodity length mismatch", ctx, workers)
			}
			for i := range base.PerCommodity {
				if got.PerCommodity[i] != base.PerCommodity[i] {
					t.Fatalf("%s workers=%d: PerCommodity[%d] %v != %v",
						ctx, workers, i, got.PerCommodity[i], base.PerCommodity[i])
				}
			}
			if len(got.Paths) != len(base.Paths) {
				t.Fatalf("%s workers=%d: %d paths != %d", ctx, workers, len(got.Paths), len(base.Paths))
			}
			for i := range base.Paths {
				bp, gp := base.Paths[i], got.Paths[i]
				if gp.Commodity != bp.Commodity || gp.Flow != bp.Flow {
					t.Fatalf("%s workers=%d: path %d (commodity,flow) (%d,%v) != (%d,%v)",
						ctx, workers, i, gp.Commodity, gp.Flow, bp.Commodity, bp.Flow)
				}
				if len(gp.Nodes) != len(bp.Nodes) {
					t.Fatalf("%s workers=%d: path %d node count mismatch", ctx, workers, i)
				}
				for j := range bp.Nodes {
					if gp.Nodes[j] != bp.Nodes[j] {
						t.Fatalf("%s workers=%d: path %d node %d differs", ctx, workers, i, j)
					}
				}
				if len(gp.Hops) != len(bp.Hops) {
					t.Fatalf("%s workers=%d: path %d hop count mismatch", ctx, workers, i)
				}
				for j := range bp.Hops {
					if gp.Hops[j].Pair != bp.Hops[j].Pair || gp.Hops[j].Cand != bp.Hops[j].Cand {
						t.Fatalf("%s workers=%d: path %d hop %d differs", ctx, workers, i, j)
					}
				}
			}
		}
	}
}
