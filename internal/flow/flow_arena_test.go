package flow

import (
	"reflect"
	"testing"

	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

func arenaTestSet(t *testing.T) *segment.Set {
	t.Helper()
	cfg := topo.DefaultConfig()
	cfg.Nodes = 24
	net, err := topo.Generate(cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 3, xrand.New(4))
	set, err := segment.Build(net, pairs, segment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestArenaResidualSolvesIdentical mimics REPS's progressive rounding: a
// sequence of solves over the same set with shrinking residual capacities,
// sharing one arena, must match the cold sequence exactly.
func TestArenaResidualSolvesIdentical(t *testing.T) {
	set := arenaTestSet(t)
	net := set.Net

	residualOpts := func(round int) Options {
		ch := make([]int, net.NumLinks())
		for i := range ch {
			ch[i] = max(0, net.Channels[i]-round)
		}
		mem := make([]int, net.NumNodes())
		for i := range mem {
			mem[i] = max(0, net.Memory[i]-round)
		}
		return Options{Channels: ch, Memory: mem}
	}

	arena := &Arena{}
	for round := 0; round < 3; round++ {
		cold, err := Solve(set, residualOpts(round))
		if err != nil {
			t.Fatal(err)
		}
		opts := residualOpts(round)
		opts.Arena = arena
		warm, err := Solve(set, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("round %d: arena solve differs from cold solve", round)
		}
	}
}

// TestArenaDropDeadLinksInvalidation: the candidate tables depend on the
// capacity overrides when DropDeadLinks is set, so an arena built under one
// override must not be replayed under another.
func TestArenaDropDeadLinksInvalidation(t *testing.T) {
	set := arenaTestSet(t)
	net := set.Net

	full := make([]int, net.NumLinks())
	copy(full, net.Channels)
	crippled := make([]int, net.NumLinks())
	copy(crippled, net.Channels)
	// Kill enough links that the dead-marking visibly changes the tables.
	for i := 0; i < len(crippled)/2; i++ {
		crippled[i] = 0
	}

	arena := &Arena{}
	if _, err := Solve(set, Options{DropDeadLinks: true, Channels: full, Arena: arena}); err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(set, Options{DropDeadLinks: true, Channels: crippled, Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(set, Options{DropDeadLinks: true, Channels: crippled})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("stale arena tables replayed across a DropDeadLinks capacity change")
	}
}

// TestArenaWorkerGrowth: an arena carried from a serial solve must grow its
// per-worker pricing scratch when a later solve uses more workers.
func TestArenaWorkerGrowth(t *testing.T) {
	set := arenaTestSet(t)
	arena := &Arena{}
	cold, err := Solve(set, Options{SwapWeightedObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(set, Options{SwapWeightedObjective: true, Workers: 1, Arena: arena}); err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(set, Options{SwapWeightedObjective: true, Workers: 3, Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("arena solve at higher worker count differs from cold solve")
	}
}
