// Package reps implements the REPS baseline (Zhao & Qiao, "Redundant
// Entanglement Provisioning and Selection for Throughput Maximization in
// Quantum Networks", INFOCOM 2021) as used for comparison in the SEE paper:
// entanglement links only (single-hop segments), redundant provisioning via
// an LP with progressive rounding, and post-realization path selection with
// round-robin fairness.
//
// The provisioning LP is the same formulation-(1) relaxation solved by
// internal/flow, restricted to single-hop candidates. Progressive rounding
// re-solves the LP on residual capacities a bounded number of times (the
// SEE paper itself criticizes REPS's one-LP-per-variable schedule as too
// slow; see DESIGN.md §2 for the substitution note).
package reps

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"see/internal/chaos"
	"see/internal/flow"
	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/segment"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
)

// Options tunes REPS.
type Options struct {
	// KPaths is the Yen path budget per SD pair (default 5).
	KPaths int
	// RoundingSolves caps the LP re-solves of progressive rounding
	// (default 6).
	RoundingSolves int
	// Flow tunes the underlying LP solves.
	Flow flow.Options
	// Tracer observes the slot pipeline; nil means no instrumentation.
	Tracer sched.Tracer
	// Chaos injects deterministic faults into the physical phase; nil or a
	// zero-plan injector leaves the engine byte-identical to a run without
	// any chaos layer (see the matching field in core.Options).
	Chaos *chaos.Injector
	// Warm, when non-nil, memoizes the link-candidate set and every
	// progressive-rounding LP solution across engine (re)builds over the
	// same network (see internal/warm and the matching field in
	// core.Options). Bypassed for budgeted construction (non-nil ctx).
	Warm *warm.Cache
	// FidelityFloors is the per-request minimum delivered end-to-end
	// fidelity; EPS never attempts an assembly whose predicted fidelity
	// misses its pair's floor (see qnet.FloorPolicy and the matching field
	// in core.Options). Nil or all-zero disables enforcement.
	FidelityFloors *qnet.FloorSpec
	// SwapOrder selects the stitch phase's swap schedule; the zero value
	// (qnet.SwapOrderPath) is the historical left-to-right order.
	SwapOrder qnet.SwapOrder
}

func (o Options) withDefaults() Options {
	if o.KPaths <= 0 {
		o.KPaths = 5
	}
	if o.RoundingSolves <= 0 {
		o.RoundingSolves = 6
	}
	return o
}

// Engine runs REPS time slots over a fixed network and workload. Like the
// SEE engine, provisioning depends only on the static topology and is
// computed once.
type Engine struct {
	Net   *topo.Network
	Pairs []topo.SDPair
	Set   *segment.Set
	// Plan is the provisioning result: integer entanglement-link creation
	// attempts per link (x̂ in the REPS paper).
	Plan qnet.AttemptPlan
	// LPObjective is the fractional ELP optimum.
	LPObjective float64
	// ConnCap is the per-pair connection cap.
	ConnCap []int

	opts   Options
	tracer sched.Tracer
	// bank is the optional cross-slot segment bank; nil keeps the engine
	// memoryless (see the matching field in core.Engine).
	bank *state.Bank
	// slot is the reusable per-slot scratch: attempt ordering, the segment
	// pool, EPS's per-pair counters and auxiliary graph, and the targeted
	// Dijkstra buffers. Only RunSlot uses it; the exported SelectPaths
	// entry points allocate fresh.
	slot *slotScratch
}

// slotScratch holds REPS's per-slot reusable buffers; the same lifetime
// rule as core.slotScratch applies — nothing in it may outlive the slot.
type slotScratch struct {
	att      qnet.AttemptScratch
	pool     *qnet.Pool
	perPair  []int
	aux      *graph.Graph
	auxPairs []segment.PairKey
	dij      graph.DijkstraScratch
}

// scratch returns the engine's slot scratch, creating it on first use.
func (e *Engine) scratch() *slotScratch {
	if e.slot == nil {
		e.slot = &slotScratch{
			perPair: make([]int, len(e.Pairs)),
			aux:     graph.New(e.Net.NumNodes()),
		}
	}
	return e.slot
}

var _ sched.Stateful = (*Engine)(nil)

// NewEngine provisions entanglement links for the workload.
func NewEngine(net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	return NewEngineCtx(nil, net, pairs, opts)
}

// NewEngineCtx is NewEngine with the provisioning LP solves bounded by a
// context (nil = never cancelled); see core.NewEngineCtx.
func NewEngineCtx(ctx context.Context, net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	if net == nil {
		return nil, errors.New("reps: nil network")
	}
	if len(pairs) == 0 {
		return nil, errors.New("reps: no SD pairs")
	}
	opts = opts.withDefaults()
	segOpts := segment.DefaultOptions()
	segOpts.KPaths = opts.KPaths
	segOpts.MaxSegmentHops = 1 // entanglement links only
	segOpts.MinProb = 0
	// Budgeted construction bypasses the warm cache (see core.NewEngineCtx).
	useWarm := opts.Warm != nil && ctx == nil
	var set *segment.Set
	var err error
	if useWarm {
		set, err = opts.Warm.SegmentSet(net, pairs, segOpts)
	} else {
		set, err = segment.Build(net, pairs, segOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("reps: building link candidates: %w", err)
	}
	connCap := opts.Flow.ConnCap
	if connCap == nil {
		connCap = make([]int, len(pairs))
		for i, sd := range pairs {
			connCap[i] = min(net.Memory[sd.S], net.Memory[sd.D])
		}
	}
	e := &Engine{Net: net, Pairs: pairs, Set: set, ConnCap: connCap, opts: opts, tracer: sched.OrNop(opts.Tracer)}
	if err := e.provision(ctx); err != nil {
		return nil, err
	}
	return e, nil
}

// provision runs the ELP + progressive rounding to fix the attempt plan.
func (e *Engine) provision(ctx context.Context) error {
	plan := make(qnet.AttemptPlan)
	channels := append([]int(nil), e.Net.Channels...)
	memory := append([]int(nil), e.Net.Memory...)
	// The rounding rounds re-solve over the same candidate set with only
	// the residual capacities changing, so one arena carries the solver's
	// capacity-independent tables across all of them; a warm cache
	// additionally replays whole solutions across engine rebuilds.
	useWarm := e.opts.Warm != nil && ctx == nil
	arena := &flow.Arena{}

	// commit reserves up to n attempts over c (as many as the residual
	// capacities fit) and returns how many were committed.
	commit := func(c *segment.Candidate, n int) int {
		if n <= 0 {
			return 0
		}
		for _, eid := range c.EdgeIDs {
			if channels[eid] < n {
				n = channels[eid]
			}
		}
		u, v := c.Path[0], c.Path[len(c.Path)-1]
		if memory[u] < n {
			n = memory[u]
		}
		if memory[v] < n {
			n = memory[v]
		}
		if n <= 0 {
			return 0
		}
		for _, eid := range c.EdgeIDs {
			channels[eid] -= n
		}
		memory[u] -= n
		memory[v] -= n
		plan[c] += n
		return n
	}

	for round := 0; round < e.opts.RoundingSolves; round++ {
		fopts := e.opts.Flow
		fopts.ConnCap = e.ConnCap
		fopts.Channels = channels
		fopts.Memory = memory
		fopts.Arena = arena
		var sol *flow.Solution
		var err error
		if useWarm {
			sol, err = e.opts.Warm.Solve(e.Set, fopts)
		} else {
			sol, err = flow.SolveCtx(ctx, e.Set, fopts)
		}
		if err != nil {
			return fmt.Errorf("reps: provisioning LP: %w", err)
		}
		if round == 0 {
			e.LPObjective = sol.Objective
		}
		if sol.Objective < 1e-6 {
			break
		}
		frac := fractionalAttempts(e.Net, sol)
		committed := 0
		// Commit the integral parts of every variable first.
		for _, fa := range frac {
			committed += commit(fa.cand, int(math.Floor(fa.x+1e-9)))
		}
		if committed == 0 {
			// Nothing integral left: round the largest fractional up,
			// one variable per LP solve, as in REPS.
			rounded := false
			for _, fa := range frac {
				if fa.x > 1e-6 && commit(fa.cand, 1) == 1 {
					rounded = true
					break
				}
			}
			if !rounded {
				break
			}
		}
	}

	// Redundant provisioning — the "R" in REPS: saturate the residual
	// channels and memory with extra attempts on the links the LP used,
	// so that individual link failures do not break whole paths. Links
	// with the fewest attempts are topped up first: availability
	// 1−(1−p)^x has strongly diminishing returns in x, so equalizing x
	// maximizes the probability that whole paths survive.
	if len(plan) > 0 {
		used := make([]*segment.Candidate, 0, len(plan))
		for c := range plan {
			used = append(used, c)
		}
		for {
			sort.Slice(used, func(i, j int) bool {
				if plan[used[i]] != plan[used[j]] {
					return plan[used[i]] < plan[used[j]]
				}
				return topo.Key(used[i].Path) < topo.Key(used[j].Path)
			})
			committed := 0
			for _, c := range used {
				committed += commit(c, 1)
			}
			if committed == 0 {
				break
			}
		}
	}
	e.Plan = plan
	return nil
}

type fracAttempt struct {
	cand *segment.Candidate
	x    float64
}

// fractionalAttempts converts LP path flows into fractional per-link
// attempt counts x, sorted by decreasing fractional part (rounding
// priority).
func fractionalAttempts(net *topo.Network, sol *flow.Solution) []fracAttempt {
	acc := make(map[*segment.Candidate]float64)
	for _, pf := range sol.Paths {
		for _, hop := range pf.Hops {
			c := hop.Cand
			qu := net.SwapProb[c.Path[0]]
			qv := net.SwapProb[c.Path[len(c.Path)-1]]
			den := c.Prob * math.Sqrt(qu*qv)
			if den <= 1e-12 {
				continue
			}
			acc[c] += pf.Flow / den
		}
	}
	out := make([]fracAttempt, 0, len(acc))
	for c, x := range acc {
		out = append(out, fracAttempt{cand: c, x: x})
	}
	sort.Slice(out, func(i, j int) bool {
		fi := out[i].x - math.Floor(out[i].x)
		fj := out[j].x - math.Floor(out[j].x)
		if fi != fj {
			return fi > fj
		}
		if out[i].x != out[j].x {
			return out[i].x > out[j].x
		}
		return topo.Key(out[i].cand.Path) < topo.Key(out[j].cand.Path)
	})
	return out
}

// RunSlot simulates one time slot: attempt the provisioned links, then
// select entanglement paths on the realized link graph (EPS). The
// provisioning plan is fixed at construction, so the per-slot reserve
// phase just re-commits it (and reports it through the tracer);
// PlannedPaths and ProvisionedPaths stay zero — REPS plans links, not
// entanglement paths.
func (e *Engine) RunSlot(rng *rand.Rand) (*sched.SlotResult, error) {
	tr := e.tracer
	tr.SlotStart(sched.REPS)
	res := &sched.SlotResult{
		LPObjective: e.LPObjective,
		PerPair:     make([]int, len(e.Pairs)),
	}

	// Chaos slot clock; fm stays nil (and the slot byte-identical) without
	// an active injector.
	var fm qnet.FaultModel
	faultsBefore := 0
	var countsBefore chaos.Counts
	if e.opts.Chaos.Active() {
		countsBefore = e.opts.Chaos.Counts()
		e.opts.Chaos.BeginSlot()
		faultsBefore = e.opts.Chaos.Counts().Total()
		fm = e.opts.Chaos
	}

	// Cross-slot state: withdraw surviving carried links and trim their
	// endpoint pairs out of the provisioning plan (the cached e.Plan is
	// never mutated). With no bank attached, plan aliases e.Plan and the
	// slot is byte-identical to the memoryless path.
	plan := e.Plan
	var withdrawn []*qnet.Segment
	if e.bank != nil {
		if expired, decohered := e.bank.BeginSlot(); expired+decohered > 0 {
			tr.Incident(sched.IncidentBankDecohered, expired+decohered)
		}
		if withdrawn = e.bank.WithdrawAll(); len(withdrawn) > 0 {
			tr.Incident(sched.IncidentBankWithdraw, len(withdrawn))
		}
		plan, _ = e.bank.TrimPlan(plan, withdrawn)
	}
	res.Attempts = plan.TotalAttempts()

	// The reservation events (and the sort that orders them) exist only for
	// the tracer; skip them on bare runs. The rng stream is unaffected.
	traced := !sched.IsNop(tr)
	t0 := time.Now()
	if traced {
		for _, c := range plan.SortedCandidates() {
			tr.AttemptReserved(c.U(), c.V(), plan[c])
		}
	}
	tr.PhaseDone(sched.PhaseReserve, time.Since(t0))

	t0 = time.Now()
	var attemptObs qnet.AttemptObserver
	if traced {
		attemptObs = func(c *segment.Candidate, ok bool) {
			tr.AttemptResolved(c.U(), c.V(), ok)
		}
	}
	sc := e.scratch()
	created := qnet.AttemptAllFaultyScratch(plan, rng, fm, attemptObs, &sc.att)
	res.SegmentsCreated = len(created)
	created, _ = qnet.ApplyDecoherence(created, fm)
	if fm != nil {
		// Brownout denials and flap downs get their own incident kinds; the
		// rest stays IncidentFault (see the matching block in internal/core).
		da := e.opts.Chaos.Counts().Sub(countsBefore)
		if d := e.opts.Chaos.Counts().Total() - faultsBefore - da.BrownoutAttemptsLost; d > 0 {
			tr.Incident(sched.IncidentFault, d)
		}
		if da.FlapSlotsDown > 0 {
			tr.Incident(sched.IncidentFlap, da.FlapSlotsDown)
		}
		if da.BrownoutAttemptsLost > 0 {
			tr.Incident(sched.IncidentBrownout, da.BrownoutAttemptsLost)
		}
	}
	tr.PhaseDone(sched.PhasePhysical, time.Since(t0))

	// Withdrawn carried links join the pool ahead of the fresh ones so the
	// oldest photons are consumed preferentially.
	t0 = time.Now()
	slotSegs := append(withdrawn, created...)
	if sc.pool == nil {
		sc.pool = qnet.NewPool(slotSegs)
	} else {
		sc.pool.Reset(slotSegs)
	}
	pool := sc.pool
	conns, assembled, floorRejected := e.selectFromPoolScratch(pool, rng, sc)
	res.Assembled = assembled
	res.FloorRejected = floorRejected
	for _, c := range conns {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("reps: invalid connection: %w", err)
		}
		res.Established++
		res.PerPair[c.Pair]++
		res.Connections = append(res.Connections, c)
	}
	// Cross-slot state: bank the slot's unconsumed leftovers for the next
	// slot, within each node's memory budget.
	if e.bank != nil {
		if accepted := e.bank.Deposit(pool.Unconsumed()); accepted > 0 {
			tr.Incident(sched.IncidentBankDeposit, accepted)
		}
	}
	tr.PhaseDone(sched.PhaseStitch, time.Since(t0))
	tr.SlotEnd(res)
	return res, nil
}

// SelectPaths is REPS's EPS step: round-robin over SD pairs, repeatedly
// routing each on the realized entanglement links via shortest path with
// junction weight −ln q, until no pair can be served. Swapping is sampled
// per assembled connection; a failure consumes the links but the pair stays
// eligible, so redundant links back up failed swaps (see the matching note
// on ECE in internal/core).
func (e *Engine) SelectPaths(created []*qnet.Segment, rng *rand.Rand) []*qnet.Connection {
	conns, _ := e.selectPaths(created, rng)
	return conns
}

// selectPaths is SelectPaths plus the number of assembly attempts (each
// consumes one realized link per hop; swap failures make attempts exceed
// the established count).
func (e *Engine) selectPaths(created []*qnet.Segment, rng *rand.Rand) ([]*qnet.Connection, int) {
	return e.selectFromPool(qnet.NewPool(created), rng)
}

// selectFromPool is selectPaths over a caller-built pool; the carry-over
// path uses it so carried links mix with fresh ones and the leftovers can
// be banked afterwards.
func (e *Engine) selectFromPool(pool *qnet.Pool, rng *rand.Rand) ([]*qnet.Connection, int) {
	conns, attempts, _ := e.selectFromPoolScratch(pool, rng, nil)
	return conns, attempts
}

// selectFromPoolScratch is selectFromPool over an optional slot scratch
// (reused auxiliary graph, per-pair counters and Dijkstra buffers, plus
// the early-stop targeted queries); nil allocates fresh. Both paths
// produce identical connections.
func (e *Engine) selectFromPoolScratch(pool *qnet.Pool, rng *rand.Rand, sc *slotScratch) ([]*qnet.Connection, int, int) {
	tr := e.tracer
	swapObs := qnet.SwapObserver(tr.SwapResolved)
	attempts := 0
	floorRejected := 0
	fp := qnet.NewFloorPolicy(e.opts.FidelityFloors, e.Net)
	var floorDead []bool // pairs whose best route missed the floor
	var aux *graph.Graph
	var auxPairs []segment.PairKey
	var dij *graph.DijkstraScratch
	if sc != nil {
		aux = sc.aux
		aux.Reset()
		auxPairs = sc.auxPairs[:0]
		dij = &sc.dij
	} else {
		aux = graph.New(e.Net.NumNodes())
	}
	pairsWith := pool.Pairs()
	if auxPairs == nil {
		auxPairs = make([]segment.PairKey, 0, len(pairsWith))
	}
	for _, pk := range pairsWith {
		aux.AddEdge(pk.U, pk.V, 1)
		auxPairs = append(auxPairs, pk)
	}
	if sc != nil {
		sc.auxPairs = auxPairs
	}
	nodeWeight := func(u int) float64 {
		q := e.Net.SwapProb[u]
		if q <= 0 {
			return 1e9
		}
		return -math.Log(q)
	}
	edgeWeight := func(id int, _ float64) float64 {
		if pool.Available(auxPairs[id]) >= 1 {
			return 1e-5
		}
		return 1e9
	}
	var perPair []int
	if sc != nil {
		perPair = sc.perPair
		clear(perPair)
	} else {
		perPair = make([]int, len(e.Pairs))
	}
	var out []*qnet.Connection
	for {
		progress := false
		for i, sd := range e.Pairs {
			if perPair[i] >= e.ConnCap[i] {
				continue
			}
			if floorDead != nil && floorDead[i] {
				continue
			}
			path, dist := graph.ShortestPathTarget(aux, sd.S, sd.D, graph.DijkstraOptions{
				NodeWeight: nodeWeight,
				EdgeWeight: edgeWeight,
			}, dij)
			if path == nil || dist >= 1e8 {
				continue
			}
			conn := &qnet.Connection{Pair: i, Nodes: path}
			ok := true
			for h := 0; h+1 < len(path); h++ {
				seg := fp.Take(pool, i, segment.MakePairKey(path[h], path[h+1]))
				if seg == nil {
					ok = false
					break
				}
				conn.Segments = append(conn.Segments, seg)
			}
			if !ok {
				for _, s := range conn.Segments {
					pool.Return(s)
				}
				continue
			}
			if fp.Rejects(i, conn.Segments) {
				for _, s := range conn.Segments {
					pool.Return(s)
				}
				if floorDead == nil {
					floorDead = make([]bool, len(e.Pairs))
				}
				floorDead[i] = true
				floorRejected++
				tr.Incident(sched.IncidentFloorReject, 1)
				continue
			}
			progress = true
			attempts++
			ok = conn.EstablishOrderedObserved(e.Net, pool, rng, swapObs, e.opts.SwapOrder)
			tr.ConnectionAssembled(i, ok)
			if ok {
				out = append(out, conn)
				perPair[i]++
			}
		}
		if !progress {
			return out, attempts, floorRejected
		}
	}
}

// Algorithm identifies the scheme.
func (e *Engine) Algorithm() sched.Algorithm { return sched.REPS }

// UpperBound returns the provisioning LP optimum.
func (e *Engine) UpperBound() float64 { return e.LPObjective }

// AttachBank implements sched.Stateful: it installs the cross-slot segment
// bank (nil detaches, restoring memoryless behavior).
func (e *Engine) AttachBank(b *state.Bank) { e.bank = b }

// Bank implements sched.Stateful.
func (e *Engine) Bank() *state.Bank { return e.bank }
