package reps

import (
	"testing"

	"see/internal/graph"
	"see/internal/topo"
	"see/internal/xrand"
)

func TestNewEngineValidation(t *testing.T) {
	net, pairs := topo.Motivation()
	if _, err := NewEngine(nil, pairs, Options{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewEngine(net, nil, Options{}); err == nil {
		t.Fatal("empty pairs accepted")
	}
}

func TestProvisionUsesOnlyLinks(t *testing.T) {
	net, pairs := topo.Motivation()
	e, err := NewEngine(net, pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Plan) == 0 {
		t.Fatal("REPS provisioned nothing on the motivation fixture")
	}
	for c := range e.Plan {
		if c.Hops() != 1 {
			t.Fatalf("REPS provisioned a multi-hop segment: %v", c.Path)
		}
	}
}

func TestProvisionRespectsCapacities(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 40
	cfg.Channels = 2
	cfg.Memory = 4
	net, err := topo.Generate(cfg, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 6, xrand.New(5))
	e, err := NewEngine(net, pairs, Options{KPaths: 3})
	if err != nil {
		t.Fatal(err)
	}
	chanUse := make(map[int]int)
	memUse := make(map[int]int)
	for c, n := range e.Plan {
		if n <= 0 {
			t.Fatal("non-positive attempt count in plan")
		}
		for _, eid := range c.EdgeIDs {
			chanUse[eid] += n
		}
		memUse[c.Path[0]] += n
		memUse[c.Path[1]] += n
	}
	for eid, u := range chanUse {
		if u > net.Channels[eid] {
			t.Fatalf("link %d overdrawn: %d > %d", eid, u, net.Channels[eid])
		}
	}
	for node, u := range memUse {
		if u > net.Memory[node] {
			t.Fatalf("node %d memory overdrawn: %d > %d", node, u, net.Memory[node])
		}
	}
}

func TestRunSlotDeterministicAndSane(t *testing.T) {
	net, pairs := topo.Motivation()
	e, err := NewEngine(net, pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.RunSlot(xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunSlot(xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Established != b.Established || a.SegmentsCreated != b.SegmentsCreated {
		t.Fatal("REPS slot not deterministic")
	}
	if a.SegmentsCreated > a.Attempts {
		t.Fatal("created > attempts")
	}
	sum := 0
	for i, c := range a.PerPair {
		if c > e.ConnCap[i] {
			t.Fatalf("pair %d over cap", i)
		}
		sum += c
	}
	if sum != a.Established {
		t.Fatal("PerPair does not sum to Established")
	}
	for _, conn := range a.Connections {
		for _, s := range conn.Segments {
			if s.Cand.Hops() != 1 {
				t.Fatal("REPS connection uses a multi-hop segment")
			}
		}
	}
}

// On the motivation fixture the conventional (link-only) optimum is 0.729
// expected connections; REPS's mean throughput must be in that vicinity and
// strictly below the SEE ideal 1.489.
func TestMotivationThroughputBand(t *testing.T) {
	net, pairs := topo.Motivation()
	e, err := NewEngine(net, pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	const slots = 4000
	total := 0
	for i := 0; i < slots; i++ {
		res, err := e.RunSlot(rng)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Established
	}
	mean := float64(total) / slots
	if mean < 0.45 || mean > 0.95 {
		t.Fatalf("REPS mean throughput %.3f outside [0.45, 0.95] (ideal 0.729)", mean)
	}
}

func TestPerfectNetworkSaturatesChannels(t *testing.T) {
	// Line with p = q = 1: REPS should establish exactly the channel
	// capacity for the single pair.
	net := perfectLine(4, 3, 10)
	pairs := []topo.SDPair{{S: 0, D: 3}}
	e, err := NewEngine(net, pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunSlot(xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Established != 3 {
		t.Fatalf("established = %d, want 3", res.Established)
	}
}

// perfectLine builds a line network with p = q = 1.
func perfectLine(n, channels, memory int) *topo.Network {
	net := &topo.Network{
		G:        graph.New(n),
		Pos:      make([][2]float64, n),
		Memory:   make([]int, n),
		SwapProb: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		net.Pos[i] = [2]float64{float64(i) * 100, 0}
		net.Memory[i] = memory
		net.SwapProb[i] = 1
	}
	for i := 0; i+1 < n; i++ {
		net.G.AddEdge(i, i+1, 100)
		net.LinkLen = append(net.LinkLen, 100)
		net.Channels = append(net.Channels, channels)
	}
	net.SetProber(topo.ExpProber{Alpha: 0})
	return net
}
