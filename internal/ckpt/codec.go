// Package ckpt is the checkpoint/resume layer of the pipeline: a versioned,
// length-prefixed binary container (plus a JSON debug dump) holding the full
// serializable state of a run — engine state (bank contents, chaos phase,
// degradation ladder), rng cursors, tracer offsets and the service layer's
// arrival/queue state — so a killed server resumes byte-identical for its
// remaining slots.
//
// The package splits into three levels:
//
//   - Encoder/Decoder: hand-rolled varint primitives with latched errors,
//     the wire vocabulary every section payload is written in.
//   - Snapshot/Write/Read: the on-disk container — magic, format version,
//     named length-prefixed sections, CRC32 trailer, atomic replacement.
//   - EngineState/Cursor codecs: binary encodings of the sched-layer state
//     types, shared by every section that embeds them.
//
// Sections are named so readers skip what they do not understand and
// writers can add sections without a format-version bump; the version
// covers the container framing and the codecs of the known sections.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoder appends primitive values to a growing buffer. The zero value is
// ready to use. Integers use varint encoding; floats are fixed 8-byte
// little-endian IEEE 754 so every bit pattern round-trips exactly.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a signed (zig-zag) varint.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends the exact bit pattern of a float64 (8 bytes, little
// endian).
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Ints appends a length-prefixed int slice.
func (e *Encoder) Ints(v []int) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Decoder reads values written by Encoder, in the same order. The first
// malformed read latches an error; every later read returns zero values, so
// callers can decode a whole structure and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps an encoded buffer.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the latched decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish asserts the buffer was consumed exactly and returns the latched
// error, if any. Trailing bytes mean the payload was written by a different
// codec than the one reading it.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("ckpt: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: truncated or malformed %s at offset %d", what, d.off)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bool")
		return false
	}
	return b == 1
}

// Float64 reads an exact float64 bit pattern.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	return string(d.Blob())
}

// Blob reads a length-prefixed byte slice (a copy, safe to retain).
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("blob")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// Ints reads a length-prefixed int slice.
func (d *Decoder) Ints() []int {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	// Each int costs at least one byte, so a count beyond the remaining
	// bytes is corruption, not a huge allocation request.
	if n > uint64(len(d.buf)-d.off) {
		d.fail("int slice")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// errCorrupt is the sentinel wrapped by container-level validation errors.
var errCorrupt = errors.New("ckpt: corrupt checkpoint")

// IsCorrupt reports whether an error came from container validation (bad
// magic, version, framing or checksum) rather than I/O.
func IsCorrupt(err error) bool { return errors.Is(err, errCorrupt) }
