package ckpt

import (
	"fmt"

	"see/internal/chaos"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/xrand"
)

// AppendCursor encodes an rng cursor.
func AppendCursor(e *Encoder, c xrand.Cursor) {
	e.Varint(c.Seed)
	e.Uvarint(c.Pos)
}

// ReadCursor decodes an rng cursor.
func ReadCursor(d *Decoder) xrand.Cursor {
	return xrand.Cursor{Seed: d.Varint(), Pos: d.Uvarint()}
}

// AppendTracerCounts encodes a tracer-offset snapshot.
func AppendTracerCounts(e *Encoder, c sched.TracerCounts) {
	e.Int(c.Slots)
	e.Int(c.PathsPlanned)
	e.Int(c.PathsProvisioned)
	e.Int(c.AttemptsReserved)
	e.Int(c.AttemptsResolved)
	e.Int(c.SegmentsCreated)
	e.Int(c.AttemptsFailed)
	e.Int(c.SwapsResolved)
	e.Int(c.SwapsSucceeded)
	e.Int(c.ConnectionsAssembled)
	e.Int(c.ConnectionsEstablished)
	e.Int(c.Established)
	for i := range c.Incidents {
		e.Int(c.Incidents[i])
	}
}

// ReadTracerCounts decodes a tracer-offset snapshot.
func ReadTracerCounts(d *Decoder) sched.TracerCounts {
	var c sched.TracerCounts
	c.Slots = d.Int()
	c.PathsPlanned = d.Int()
	c.PathsProvisioned = d.Int()
	c.AttemptsReserved = d.Int()
	c.AttemptsResolved = d.Int()
	c.SegmentsCreated = d.Int()
	c.AttemptsFailed = d.Int()
	c.SwapsResolved = d.Int()
	c.SwapsSucceeded = d.Int()
	c.ConnectionsAssembled = d.Int()
	c.ConnectionsEstablished = d.Int()
	c.Established = d.Int()
	for i := range c.Incidents {
		c.Incidents[i] = d.Int()
	}
	return c
}

// AppendEngineState encodes a sched.EngineState tree (nil-safe; every
// optional component carries a presence flag).
func AppendEngineState(e *Encoder, st *sched.EngineState) {
	e.Bool(st != nil)
	if st == nil {
		return
	}
	e.Int(int(st.Algorithm))
	e.Bool(st.Chaos != nil)
	if st.Chaos != nil {
		e.Int(st.Chaos.Slot)
		c := st.Chaos.Counts
		e.Int(c.NodeSlotsDown)
		e.Int(c.LinkSlotsDown)
		e.Int(c.PathsBlocked)
		e.Int(c.RoutesBlocked)
		e.Int(c.SegmentsDecohered)
		e.Int(c.MessagesDropped)
		e.Int(c.CutLinkSlotsDown)
		e.Int(c.FlapSlotsDown)
		e.Int(c.BrownoutAttemptsLost)
	}
	e.Bool(st.Bank != nil)
	if st.Bank != nil {
		b := st.Bank
		e.Int(b.Slot)
		e.Int(b.Seq)
		e.Int(b.Stats.Deposited)
		e.Int(b.Stats.Rejected)
		e.Int(b.Stats.Withdrawn)
		e.Int(b.Stats.Expired)
		e.Int(b.Stats.Decohered)
		e.Uvarint(uint64(len(b.Entries)))
		for _, be := range b.Entries {
			e.Int(be.A)
			e.Int(be.B)
			e.Ints(be.Path)
			e.Int(be.Birth)
			e.Int(be.Seq)
		}
	}
	e.Bool(st.Ladder != nil)
	if st.Ladder != nil {
		e.Int(st.Ladder.Failures)
		e.Bool(st.Ladder.PrimaryBuilt)
		e.Bool(st.Ladder.FallbackBuilt)
	}
	AppendEngineState(e, st.Inner)
}

// ReadEngineState decodes a sched.EngineState tree written by
// AppendEngineState. Errors latch on the decoder; callers check Finish (or
// Err) after decoding the enclosing section.
func ReadEngineState(d *Decoder) *sched.EngineState {
	if !d.Bool() {
		return nil
	}
	st := &sched.EngineState{Algorithm: sched.Algorithm(d.Int())}
	if d.Bool() {
		cs := &chaos.InjectorState{Slot: d.Int()}
		cs.Counts.NodeSlotsDown = d.Int()
		cs.Counts.LinkSlotsDown = d.Int()
		cs.Counts.PathsBlocked = d.Int()
		cs.Counts.RoutesBlocked = d.Int()
		cs.Counts.SegmentsDecohered = d.Int()
		cs.Counts.MessagesDropped = d.Int()
		cs.Counts.CutLinkSlotsDown = d.Int()
		cs.Counts.FlapSlotsDown = d.Int()
		cs.Counts.BrownoutAttemptsLost = d.Int()
		st.Chaos = cs
	}
	if d.Bool() {
		bs := &state.BankState{Slot: d.Int(), Seq: d.Int()}
		bs.Stats.Deposited = d.Int()
		bs.Stats.Rejected = d.Int()
		bs.Stats.Withdrawn = d.Int()
		bs.Stats.Expired = d.Int()
		bs.Stats.Decohered = d.Int()
		n := d.Uvarint()
		if n > uint64(d.Remaining()) {
			d.fail("bank entry count")
			return nil
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			bs.Entries = append(bs.Entries, state.BankedSegment{
				A:     d.Int(),
				B:     d.Int(),
				Path:  d.Ints(),
				Birth: d.Int(),
				Seq:   d.Int(),
			})
		}
		st.Bank = bs
	}
	if d.Bool() {
		st.Ladder = &sched.LadderState{
			Failures:      d.Int(),
			PrimaryBuilt:  d.Bool(),
			FallbackBuilt: d.Bool(),
		}
	}
	st.Inner = ReadEngineState(d)
	return st
}

// EncodeEngineState renders an engine-state tree as a standalone section
// payload.
func EncodeEngineState(st *sched.EngineState) []byte {
	e := &Encoder{}
	AppendEngineState(e, st)
	return e.Bytes()
}

// DecodeEngineState parses a payload written by EncodeEngineState.
func DecodeEngineState(raw []byte) (*sched.EngineState, error) {
	d := NewDecoder(raw)
	st := ReadEngineState(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("ckpt: engine state: %w", err)
	}
	return st, nil
}
