package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint file; it doubles as a format sanity check
// (the trailing newline catches text-mode transfer mangling, the same trick
// PNG uses).
const Magic = "SEECKPT\n"

// Version is the container format version this build writes and the only
// one it reads. Bump it when the framing or a known section codec changes
// incompatibly; readers reject other versions outright rather than
// misinterpret state — a wrong resume is worse than no resume.
//
// History: 2 widened the chaos Counts codec with the correlated-fault
// counters (CutLinkSlotsDown, FlapSlotsDown, BrownoutAttemptsLost).
// 3 widened the tracer incident array with floor_reject and appended the
// floor-rejected counter to the service-state section (fidelity floors).
const Version = 3

// Section is one named, length-prefixed payload of a snapshot. Names keep
// payloads self-describing: a reader takes the sections it knows and can
// report exactly which ones it does not.
type Section struct {
	Name string
	Data []byte
}

// Snapshot is an in-memory checkpoint: an ordered list of named sections.
// The zero value is an empty snapshot ready for Add.
type Snapshot struct {
	sections []Section
}

// Add appends a section. Duplicate names are rejected at write time, not
// here, so builders stay infallible.
func (s *Snapshot) Add(name string, data []byte) {
	s.sections = append(s.sections, Section{Name: name, Data: data})
}

// Section returns the named payload and whether it exists.
func (s *Snapshot) Section(name string) ([]byte, bool) {
	for _, sec := range s.sections {
		if sec.Name == name {
			return sec.Data, true
		}
	}
	return nil, false
}

// Names lists the section names in order.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.sections))
	for i, sec := range s.sections {
		out[i] = sec.Name
	}
	return out
}

// encode renders the container: magic, version, section table, CRC32
// trailer over everything before it.
func (s *Snapshot) encode() ([]byte, error) {
	seen := make(map[string]bool, len(s.sections))
	e := &Encoder{}
	e.buf = append(e.buf, Magic...)
	e.Uvarint(Version)
	e.Uvarint(uint64(len(s.sections)))
	for _, sec := range s.sections {
		if sec.Name == "" {
			return nil, fmt.Errorf("ckpt: section with empty name")
		}
		if seen[sec.Name] {
			return nil, fmt.Errorf("ckpt: duplicate section %q", sec.Name)
		}
		seen[sec.Name] = true
		e.String(sec.Name)
		e.Blob(sec.Data)
	}
	sum := crc32.ChecksumIEEE(e.Bytes())
	e.buf = binary.LittleEndian.AppendUint32(e.buf, sum)
	return e.Bytes(), nil
}

// Decode parses a container produced by encode, validating magic, version,
// framing and checksum. Every validation failure wraps errCorrupt (see
// IsCorrupt) so callers can distinguish a damaged checkpoint from plain
// I/O trouble.
func Decode(raw []byte) (*Snapshot, error) {
	if len(raw) < len(Magic)+4 || string(raw[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", errCorrupt)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	d := NewDecoder(body[len(Magic):])
	if v := d.Uvarint(); d.Err() != nil || v != Version {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", errCorrupt, v, Version)
	}
	n := d.Uvarint()
	s := &Snapshot{}
	for i := uint64(0); i < n; i++ {
		name := d.String()
		data := d.Blob()
		if d.Err() != nil {
			break
		}
		s.Add(name, data)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return s, nil
}

// Write atomically replaces path with the snapshot: the container is
// written to a temporary file in the same directory, synced, and renamed
// over the target, so a crash mid-checkpoint leaves either the old
// checkpoint or the new one — never a torn file.
func Write(path string, s *Snapshot) error {
	raw, err := s.encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Read loads and validates a checkpoint file.
func Read(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}

// WriteDebugJSON writes an indented JSON rendering of v next to a binary
// checkpoint (same atomic replacement discipline). The dump is for humans
// and tools like jq — Restore never reads it, so its schema can evolve
// freely.
func WriteDebugJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: marshaling debug dump: %w", err)
	}
	raw = append(raw, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-json-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}
