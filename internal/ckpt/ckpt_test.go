package ckpt

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"see/internal/chaos"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/xrand"
)

// TestCodecRoundTrip drives every primitive through an encode/decode cycle.
func TestCodecRoundTrip(t *testing.T) {
	e := &Encoder{}
	e.Uvarint(0)
	e.Uvarint(1<<63 + 17)
	e.Varint(-1234567891011)
	e.Int(42)
	e.Bool(true)
	e.Bool(false)
	e.Float64(math.Pi)
	e.Float64(math.Inf(-1))
	e.String("hello, 世界")
	e.String("")
	e.Blob([]byte{0, 1, 2, 255})
	e.Ints([]int{-3, 0, 7})
	e.Ints(nil)

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint 0: got %d", got)
	}
	if got := d.Uvarint(); got != 1<<63+17 {
		t.Errorf("uvarint big: got %d", got)
	}
	if got := d.Varint(); got != -1234567891011 {
		t.Errorf("varint: got %d", got)
	}
	if got := d.Int(); got != 42 {
		t.Errorf("int: got %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bools did not round trip")
	}
	if got := d.Float64(); got != math.Pi {
		t.Errorf("float64: got %v", got)
	}
	if got := d.Float64(); !math.IsInf(got, -1) {
		t.Errorf("float64 -inf: got %v", got)
	}
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("string: got %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty string: got %q", got)
	}
	if got := d.Blob(); !reflect.DeepEqual(got, []byte{0, 1, 2, 255}) {
		t.Errorf("blob: got %v", got)
	}
	if got := d.Ints(); !reflect.DeepEqual(got, []int{-3, 0, 7}) {
		t.Errorf("ints: got %v", got)
	}
	if got := d.Ints(); got != nil {
		t.Errorf("nil ints: got %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderLatchesErrors checks truncated input fails once and stays
// failed.
func TestDecoderLatchesErrors(t *testing.T) {
	d := NewDecoder([]byte{0x80}) // unterminated varint
	d.Uvarint()
	if d.Err() == nil {
		t.Fatal("truncated uvarint accepted")
	}
	if got := d.Int(); got != 0 {
		t.Errorf("post-error read returned %d", got)
	}
	if d.Finish() == nil {
		t.Error("Finish cleared the latched error")
	}
}

// TestContainerRoundTrip writes and reloads a multi-section snapshot.
func TestContainerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := &Snapshot{}
	s.Add("alpha", []byte("payload-a"))
	s.Add("beta", nil)
	s.Add("gamma", []byte{1, 2, 3})
	if err := Write(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Names(), []string{"alpha", "beta", "gamma"}) {
		t.Fatalf("sections: %v", got.Names())
	}
	if data, ok := got.Section("alpha"); !ok || string(data) != "payload-a" {
		t.Fatalf("alpha = %q, %v", data, ok)
	}
	if _, ok := got.Section("missing"); ok {
		t.Fatal("found a section that was never written")
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after an atomic write", len(entries))
	}
}

// TestContainerRejectsCorruption flips bytes across the file and asserts
// every corruption is caught (magic, body, trailer).
func TestContainerRejectsCorruption(t *testing.T) {
	s := &Snapshot{}
	s.Add("only", []byte("data"))
	raw, err := s.encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(Magic) + 1, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d accepted", pos)
		} else if !IsCorrupt(err) {
			t.Errorf("corruption at byte %d: error %v is not IsCorrupt", pos, err)
		}
	}
	if _, err := Decode(raw[:len(raw)-6]); err == nil {
		t.Error("truncated container accepted")
	}
}

// TestContainerRejectsFutureVersion pins the refuse-don't-guess rule for
// version skew.
func TestContainerRejectsFutureVersion(t *testing.T) {
	s := &Snapshot{}
	raw, err := s.encode()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the version varint (Version encodes as one byte right
	// after the magic) and fix up the checksum.
	raw[len(Magic)] = Version + 1
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
	if _, err := Decode(raw); err == nil || !IsCorrupt(err) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v", err)
	}
}

// TestContainerRejectsVersion1 pins that checkpoints written before the
// correlated-fault counters widened the chaos Counts codec (container
// version 1) are rejected cleanly instead of misdecoded: a hand-encoded
// version-1 container with a valid checksum must fail with a version
// message, not a codec panic or silent garbage.
func TestContainerRejectsVersion1(t *testing.T) {
	e := &Encoder{}
	e.buf = append(e.buf, Magic...)
	e.Uvarint(1) // the pre-brownout format version
	e.Uvarint(0) // no sections
	raw := binary.LittleEndian.AppendUint32(e.Bytes(), crc32.ChecksumIEEE(e.Bytes()))
	if _, err := Decode(raw); err == nil || !IsCorrupt(err) || !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("version-1 container: %v", err)
	}
}

// TestWriteRejectsDuplicateSections checks container-level validation.
func TestWriteRejectsDuplicateSections(t *testing.T) {
	s := &Snapshot{}
	s.Add("dup", nil)
	s.Add("dup", nil)
	if err := Write(filepath.Join(t.TempDir(), "x.ckpt"), s); err == nil {
		t.Fatal("duplicate section accepted")
	}
	s2 := &Snapshot{}
	s2.Add("", nil)
	if err := Write(filepath.Join(t.TempDir(), "x.ckpt"), s2); err == nil {
		t.Fatal("empty section name accepted")
	}
}

// TestEngineStateRoundTrip round-trips a fully loaded engine-state tree —
// chaos, bank, ladder and a nested inner state.
func TestEngineStateRoundTrip(t *testing.T) {
	st := &sched.EngineState{
		Algorithm: sched.SEE,
		Ladder:    &sched.LadderState{Failures: 2, PrimaryBuilt: true, FallbackBuilt: true},
		Inner: &sched.EngineState{
			Algorithm: sched.SEE,
			Chaos: &chaos.InjectorState{
				Slot: 41,
				Counts: chaos.Counts{
					NodeSlotsDown: 3, SegmentsDecohered: 9, MessagesDropped: 1,
					CutLinkSlotsDown: 4, FlapSlotsDown: 2, BrownoutAttemptsLost: 7,
				},
			},
			Bank: &state.BankState{
				Slot:  41,
				Seq:   17,
				Stats: state.Stats{Deposited: 17, Rejected: 2, Withdrawn: 12, Expired: 3},
				Entries: []state.BankedSegment{
					{A: 1, B: 4, Path: []int{1, 2, 4}, Birth: 40, Seq: 15},
					{A: 0, B: 3, Path: nil, Birth: 41, Seq: 16},
				},
			},
		},
	}
	got, err := DecodeEngineState(EncodeEngineState(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, st)
	}
	// The nil tree round-trips too.
	if got, err := DecodeEngineState(EncodeEngineState(nil)); err != nil || got != nil {
		t.Fatalf("nil round trip: %v, %v", got, err)
	}
}

// TestCursorAndTracerCountsRoundTrip round-trips the remaining shared
// codecs.
func TestCursorAndTracerCountsRoundTrip(t *testing.T) {
	e := &Encoder{}
	cur := xrand.Cursor{Seed: -987654321, Pos: 1 << 40}
	AppendCursor(e, cur)
	var counts sched.TracerCounts
	counts.Slots = 100
	counts.Established = 250
	counts.Incidents[sched.IncidentFault] = 7
	counts.Incidents[sched.IncidentBankDeposit] = 31
	AppendTracerCounts(e, counts)

	d := NewDecoder(e.Bytes())
	if got := ReadCursor(d); got != cur {
		t.Errorf("cursor: got %+v", got)
	}
	if got := ReadTracerCounts(d); got != counts {
		t.Errorf("tracer counts: got %+v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteDebugJSON checks the debug dump is valid JSON-ish output written
// atomically.
func TestWriteDebugJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := WriteDebugJSON(path, map[string]int{"slot": 7}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"slot": 7`) {
		t.Fatalf("dump = %q", raw)
	}
}
