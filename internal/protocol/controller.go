package protocol

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"see/internal/core"
	"see/internal/graph"
	"see/internal/sched"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

// Controller is the central agent of §II-F. It plans a slot with the core
// engine, drives the nodes through the four protocol steps over the bus
// and tallies the outcome.
type Controller struct {
	engine *core.Engine
	bus    *Bus
	nodes  []*Node

	// Tracer, when non-nil, receives control-plane incidents (message
	// drops and retries on a lossy bus). Set it before the first slot.
	Tracer sched.Tracer

	// per-slot state
	attempts   map[int]*segment.Candidate // attempt ID -> candidate
	realized   map[segment.PairKey][]int  // unconsumed realized attempts
	reports    int
	swapState  map[int]*connState
	teleported map[int]float64
	nextConn   int
}

type connState struct {
	path     core.PlannedPath
	attempts []int // one realized attempt per hop
	pending  int   // junction swaps not yet reported
	failed   bool
}

// SlotOutcome summarizes one protocol-driven slot.
type SlotOutcome struct {
	AttemptsOrdered  int
	SegmentsRealized int
	Established      int
	PerPair          []int
	TeleportAcks     int
	Messages         int
}

// Session owns the agents for a sequence of protocol slots.
type Session struct {
	Net        *topo.Network
	Pairs      []topo.SDPair
	Engine     *core.Engine
	Bus        *Bus
	Nodes      []*Node
	Controller *Controller
}

// NewSession wires a controller and one agent per node onto a fresh bus.
func NewSession(net *topo.Network, pairs []topo.SDPair, opts core.Options, rng *rand.Rand) (*Session, error) {
	engine, err := core.NewEngine(net, pairs, opts)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	bus := NewBus()
	nodes := make([]*Node, net.NumNodes())
	for id := 0; id < net.NumNodes(); id++ {
		nodes[id] = NewNode(NodeID(id), net, bus, xrand.Split(rng))
	}
	c := &Controller{engine: engine, bus: bus, nodes: nodes}
	bus.Register(ControllerID, c.handle)
	return &Session{
		Net:        net,
		Pairs:      pairs,
		Engine:     engine,
		Bus:        bus,
		Nodes:      nodes,
		Controller: c,
	}, nil
}

// RunSlot executes one full protocol slot.
func (s *Session) RunSlot(rng *rand.Rand) (*SlotOutcome, error) {
	return s.Controller.runSlot(rng)
}

func (c *Controller) runSlot(rng *rand.Rand) (*SlotOutcome, error) {
	// Reset per-slot state; node photons from the previous slot have
	// decohered and their memory is free again.
	for _, n := range c.nodes {
		n.ResetSlot()
	}
	c.attempts = make(map[int]*segment.Candidate)
	c.realized = make(map[segment.PairKey][]int)
	c.swapState = make(map[int]*connState)
	c.teleported = make(map[int]float64)
	c.reports = 0
	dropped0, retried0 := c.bus.Dropped(), c.bus.Retried()

	plan, err := c.engine.PlanSlot(rng)
	if err != nil {
		return nil, err
	}
	out := &SlotOutcome{PerPair: make([]int, len(c.engine.Pairs))}

	// Step i/ii: order every creation attempt.
	cands := make([]*segment.Candidate, 0, len(plan.Attempts))
	for cand := range plan.Attempts {
		cands = append(cands, cand)
	}
	sort.Slice(cands, func(i, j int) bool {
		return topo.Key(cands[i].Path) < topo.Key(cands[j].Path)
	})
	nextAttempt := 0
	for _, cand := range cands {
		for k := 0; k < plan.Attempts[cand]; k++ {
			id := nextAttempt
			nextAttempt++
			c.attempts[id] = cand
			c.bus.Send(ControllerID, NodeID(cand.Path[0]), ReserveOrder{
				AttemptID: id,
				Route:     cand.Path,
				Prob:      cand.Prob,
			})
		}
	}
	out.AttemptsOrdered = nextAttempt
	if err := c.bus.Drain(); err != nil {
		return nil, err
	}
	out.SegmentsRealized = c.reports

	// Step iii: assign realized segments to provisioned paths, order swaps,
	// and keep retrying failed connections from spares until exhaustion.
	perPair := make([]int, len(c.engine.Pairs))
	for {
		progress := false
		for _, p := range plan.Provisioned {
			if perPair[p.Commodity] >= c.engine.ConnCap[p.Commodity] {
				continue
			}
			ids, ok := c.takeAttempts(p)
			if !ok {
				continue
			}
			progress = true
			connID := c.nextConn
			c.nextConn++
			st := &connState{path: p, attempts: ids}
			c.swapState[connID] = st
			for j := 1; j+1 < len(p.Nodes); j++ {
				st.pending++
				c.bus.Send(ControllerID, NodeID(p.Nodes[j]), SwapOrder{
					ConnectionID:  connID,
					LeftAttempt:   ids[j-1],
					RightAttempt:  ids[j],
					JunctionIndex: j,
				})
			}
			if err := c.bus.Drain(); err != nil {
				return nil, err
			}
			if !st.failed {
				// Step iv: teleport one data qubit over the connection.
				src := p.Nodes[0]
				dst := p.Nodes[len(p.Nodes)-1]
				c.bus.Send(ControllerID, NodeID(src), TeleportOrder{
					ConnectionID:  connID,
					Destination:   NodeID(dst),
					SourceAttempt: ids[0],
					DestAttempt:   ids[len(ids)-1],
				})
				if err := c.bus.Drain(); err != nil {
					return nil, err
				}
				if _, acked := c.teleported[connID]; !acked {
					// On a lossless bus a missing ack is a protocol bug; on
					// a lossy one it means the ack (or an order upstream of
					// it) was lost for good — the connection simply does
					// not count as established.
					if c.bus.Faults == nil {
						return nil, fmt.Errorf("protocol: connection %d teleport not acknowledged", connID)
					}
					continue
				}
				perPair[p.Commodity]++
				out.Established++
				out.PerPair[p.Commodity]++
			}
		}
		if !progress {
			break
		}
	}

	// Phase B of ECE over the control plane: stitch leftover realized
	// segments into extra connections via shortest path on the
	// availability graph (node weight −ln q).
	if err := c.phaseB(perPair, out); err != nil {
		return nil, err
	}

	out.TeleportAcks = len(c.teleported)
	out.Messages = c.bus.Delivered()
	if c.Tracer != nil {
		if d := c.bus.Dropped() - dropped0; d > 0 {
			c.Tracer.Incident(sched.IncidentMessageDrop, d)
		}
		if r := c.bus.Retried() - retried0; r > 0 {
			c.Tracer.Incident(sched.IncidentMessageRetry, r)
		}
	}

	for _, n := range c.nodes {
		if n.Err != nil {
			return nil, n.Err
		}
	}
	return out, nil
}

// phaseB builds extra connections from leftover realized segments, exactly
// like ECE's auxiliary-graph loop, but executing swaps and teleports via
// node messages.
func (c *Controller) phaseB(perPair []int, out *SlotOutcome) error {
	for {
		aux := graph.New(c.engine.Net.NumNodes())
		var auxPairs []segment.PairKey
		for pk, stock := range c.realized {
			if len(stock) > 0 {
				aux.AddEdge(pk.U, pk.V, 1)
				auxPairs = append(auxPairs, pk)
			}
		}
		if len(auxPairs) == 0 {
			return nil
		}
		nodeWeight := func(u int) float64 {
			q := c.engine.Net.SwapProb[u]
			if q <= 0 {
				return 1e9
			}
			return -math.Log(q)
		}
		progress := false
		for i, sd := range c.engine.Pairs {
			if perPair[i] >= c.engine.ConnCap[i] {
				continue
			}
			// The availability graph is rebuilt each round, so every edge
			// present has stock.
			path, dist := graph.ShortestPath(aux, sd.S, sd.D, graph.DijkstraOptions{
				NodeWeight: nodeWeight,
			})
			if path == nil || dist >= 1e8 {
				continue
			}
			// Check and pop one attempt per hop.
			ok := true
			for h := 0; h+1 < len(path); h++ {
				if len(c.realized[segment.MakePairKey(path[h], path[h+1])]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ids := make([]int, 0, len(path)-1)
			for h := 0; h+1 < len(path); h++ {
				pk := segment.MakePairKey(path[h], path[h+1])
				ids = append(ids, c.realized[pk][0])
				c.realized[pk] = c.realized[pk][1:]
			}
			progress = true
			connID := c.nextConn
			c.nextConn++
			st := &connState{attempts: ids}
			c.swapState[connID] = st
			for j := 1; j+1 < len(path); j++ {
				st.pending++
				c.bus.Send(ControllerID, NodeID(path[j]), SwapOrder{
					ConnectionID:  connID,
					LeftAttempt:   ids[j-1],
					RightAttempt:  ids[j],
					JunctionIndex: j,
				})
			}
			if err := c.bus.Drain(); err != nil {
				return err
			}
			if st.failed {
				continue
			}
			c.bus.Send(ControllerID, NodeID(path[0]), TeleportOrder{
				ConnectionID:  connID,
				Destination:   NodeID(path[len(path)-1]),
				SourceAttempt: ids[0],
				DestAttempt:   ids[len(ids)-1],
			})
			if err := c.bus.Drain(); err != nil {
				return err
			}
			if _, acked := c.teleported[connID]; !acked {
				if c.bus.Faults == nil {
					return fmt.Errorf("protocol: connection %d teleport not acknowledged", connID)
				}
				continue
			}
			perPair[i]++
			out.Established++
			out.PerPair[i]++
		}
		if !progress {
			return nil
		}
	}
}

// takeAttempts pops one realized attempt per hop of the path, or returns
// false (restoring nothing — pops only happen when all hops have stock).
func (c *Controller) takeAttempts(p core.PlannedPath) ([]int, bool) {
	for _, hop := range p.Hops {
		if len(c.realized[hop.Pair]) == 0 {
			return nil, false
		}
	}
	ids := make([]int, 0, len(p.Hops))
	for _, hop := range p.Hops {
		stock := c.realized[hop.Pair]
		ids = append(ids, stock[0])
		c.realized[hop.Pair] = stock[1:]
	}
	return ids, true
}

func (c *Controller) handle(env Envelope) {
	switch m := env.Msg.(type) {
	case CreationReport:
		if m.Success {
			cand := c.attempts[m.AttemptID]
			pk := segment.MakePairKey(cand.Path[0], cand.Path[len(cand.Path)-1])
			c.realized[pk] = append(c.realized[pk], m.AttemptID)
			c.reports++
		}
	case SwapReport:
		st := c.swapState[m.ConnectionID]
		if st == nil {
			return
		}
		st.pending--
		if !m.Success {
			st.failed = true
		}
	case TeleportAck:
		c.teleported[m.ConnectionID] = m.Fidelity
	}
}
