// Package protocol simulates the control plane of §II-F: a central
// controller and per-node agents exchanging typed messages over an
// in-memory, deterministic bus to execute one SEE time slot —
//
//	i.   the controller computes the slot plan (EPI + ESC via the core
//	     engine) and orders nodes to reserve memory, set up all-optical
//	     circuits and fire entanglement-segment creation attempts;
//	ii.  nodes perform the attempts and report which segments realized;
//	iii. the controller assigns realized segments to entanglement paths and
//	     orders junction nodes to swap; nodes report swap outcomes and the
//	     controller retries junctions from spare segments;
//	iv.  sources teleport one data qubit per established connection and
//	     destinations acknowledge with the received state.
//
// The package demonstrates the distributed execution of the scheduler's
// decisions; throughput experiments use the core engine directly.
package protocol

import (
	"fmt"

	"see/internal/graph"
	"see/internal/qnet"
)

// NodeID identifies a quantum node; ControllerID addresses the controller.
type NodeID int

// ControllerID is the bus address of the central controller.
const ControllerID NodeID = -1

// Message is the sum type carried by the bus.
type Message interface {
	message()
	// String is used in traces.
	fmt.Stringer
}

// ReserveOrder tells a segment's source endpoint to reserve one unit of
// memory, configure the all-optical circuit along Route, generate a Bell
// pair and send one photon to the far endpoint.
type ReserveOrder struct {
	// AttemptID identifies the creation attempt.
	AttemptID int
	// Route is the physical segment (source endpoint first).
	Route graph.Path
	// Prob is the attempt's one-slot success probability.
	Prob float64
}

func (ReserveOrder) message() {}

// String implements fmt.Stringer.
func (m ReserveOrder) String() string {
	return fmt.Sprintf("ReserveOrder{#%d route=%v}", m.AttemptID, m.Route)
}

// CircuitSetup asks an interior node to patch an all-optical cross-connect
// for the attempt (no memory, no detection — the paper's key saving).
type CircuitSetup struct {
	AttemptID int
	In, Out   int // neighbour node IDs being bridged
}

func (CircuitSetup) message() {}

// String implements fmt.Stringer.
func (m CircuitSetup) String() string {
	return fmt.Sprintf("CircuitSetup{#%d %d<->%d}", m.AttemptID, m.In, m.Out)
}

// PhotonArrival notifies the far endpoint that a Bell-pair photon is
// inbound; the endpoint detects it (or not) and stores it on success.
type PhotonArrival struct {
	AttemptID int
	From      NodeID
	Success   bool // sampled by the physical layer
}

func (PhotonArrival) message() {}

// String implements fmt.Stringer.
func (m PhotonArrival) String() string {
	return fmt.Sprintf("PhotonArrival{#%d from=%d ok=%v}", m.AttemptID, m.From, m.Success)
}

// CreationReport tells the controller whether an attempt realized a
// segment (step iii's input).
type CreationReport struct {
	AttemptID int
	Success   bool
}

func (CreationReport) message() {}

// String implements fmt.Stringer.
func (m CreationReport) String() string {
	return fmt.Sprintf("CreationReport{#%d ok=%v}", m.AttemptID, m.Success)
}

// SwapOrder tells a junction node to swap two stored photons, joining the
// segments identified by the two attempt IDs.
type SwapOrder struct {
	ConnectionID  int
	LeftAttempt   int
	RightAttempt  int
	JunctionIndex int // position along the connection, for bookkeeping
}

func (SwapOrder) message() {}

// String implements fmt.Stringer.
func (m SwapOrder) String() string {
	return fmt.Sprintf("SwapOrder{conn=%d left=#%d right=#%d}", m.ConnectionID, m.LeftAttempt, m.RightAttempt)
}

// SwapReport reports a junction outcome to the controller.
type SwapReport struct {
	ConnectionID  int
	JunctionIndex int
	Success       bool
}

func (SwapReport) message() {}

// String implements fmt.Stringer.
func (m SwapReport) String() string {
	return fmt.Sprintf("SwapReport{conn=%d j=%d ok=%v}", m.ConnectionID, m.JunctionIndex, m.Success)
}

// TeleportOrder tells a source that its end-to-end entanglement is ready;
// the source measures its data qubit with the Bell photon and sends the
// two classical correction bits to the destination.
type TeleportOrder struct {
	ConnectionID int
	Destination  NodeID
	// SourceAttempt / DestAttempt identify the Bell photons held at the
	// two ends of the established connection; teleportation consumes them.
	SourceAttempt int
	DestAttempt   int
}

func (TeleportOrder) message() {}

// String implements fmt.Stringer.
func (m TeleportOrder) String() string {
	return fmt.Sprintf("TeleportOrder{conn=%d dst=%d}", m.ConnectionID, m.Destination)
}

// ClassicalBits carries the teleportation correction bits plus (for the
// simulator's benefit) the teleported state so the destination can
// reconstruct it after applying the correction.
type ClassicalBits struct {
	ConnectionID int
	DestAttempt  int
	Bits         [2]bool
	State        *qnet.Qubit
}

func (ClassicalBits) message() {}

// String implements fmt.Stringer.
func (m ClassicalBits) String() string {
	return fmt.Sprintf("ClassicalBits{conn=%d bits=%v}", m.ConnectionID, m.Bits)
}

// TeleportAck closes the loop: the destination confirms state receipt.
type TeleportAck struct {
	ConnectionID int
	Fidelity     float64
}

func (TeleportAck) message() {}

// String implements fmt.Stringer.
func (m TeleportAck) String() string {
	return fmt.Sprintf("TeleportAck{conn=%d F=%.3f}", m.ConnectionID, m.Fidelity)
}
