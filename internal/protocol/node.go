package protocol

import (
	"fmt"
	"math/rand"

	"see/internal/qnet"
	"see/internal/topo"
	"see/internal/xrand"
)

// Node is a quantum node agent: it owns its local memory, stored Bell-pair
// photons and optical cross-connects, and answers controller orders over
// the bus. All randomness (photon survival, detection, swap outcomes) is
// sampled from the node's own stream.
type Node struct {
	ID  NodeID
	net *topo.Network
	bus *Bus
	rng *rand.Rand

	memFree int
	// photons maps attempt ID -> true while this node stores one photon of
	// the attempt's Bell pair.
	photons map[int]bool
	// circuits tracks the all-optical cross-connects patched this slot.
	circuits map[int]struct{}
	// dataQubits holds generated data qubits per connection (source side)
	// and received qubits (destination side).
	dataQubits map[int]*qnet.Qubit
	received   map[int]*qnet.Qubit
	// routes remembers, per attempt this node originated, the far endpoint
	// and success probability.
	pending map[int]ReserveOrder

	// Err records the first local invariant violation (memory overdraw,
	// swap without photons); the controller surfaces it after the slot.
	Err error
}

// NewNode builds the agent and registers it on the bus.
func NewNode(id NodeID, net *topo.Network, bus *Bus, rng *rand.Rand) *Node {
	n := &Node{
		ID:         id,
		net:        net,
		bus:        bus,
		rng:        rng,
		memFree:    net.Memory[id],
		photons:    make(map[int]bool),
		circuits:   make(map[int]struct{}),
		dataQubits: make(map[int]*qnet.Qubit),
		received:   make(map[int]*qnet.Qubit),
		pending:    make(map[int]ReserveOrder),
	}
	bus.Register(id, n.handle)
	return n
}

// ResetSlot releases all slot-scoped state: stored Bell photons decohere
// at the end of a time slot, freeing their memory, and optical
// cross-connects are torn down. Teleported-qubit records persist for
// inspection.
func (n *Node) ResetSlot() {
	n.photons = make(map[int]bool)
	n.circuits = make(map[int]struct{})
	n.pending = make(map[int]ReserveOrder)
	n.memFree = n.net.Memory[n.ID]
}

// MemFree returns the node's free memory (tests assert no overdraw).
func (n *Node) MemFree() int { return n.memFree }

// StoredPhotons returns how many Bell-pair photons the node holds.
func (n *Node) StoredPhotons() int { return len(n.photons) }

// ReceivedQubit returns the teleported state for a connection, if this node
// was its destination.
func (n *Node) ReceivedQubit(connID int) *qnet.Qubit { return n.received[connID] }

// Circuits returns how many optical cross-connects were patched this slot.
func (n *Node) Circuits() int { return len(n.circuits) }

func (n *Node) fail(err error) {
	if n.Err == nil {
		n.Err = err
	}
}

func (n *Node) handle(env Envelope) {
	switch m := env.Msg.(type) {
	case ReserveOrder:
		n.onReserve(m)
	case CircuitSetup:
		n.circuits[m.AttemptID] = struct{}{}
	case PhotonArrival:
		n.onPhoton(m)
	case SwapOrder:
		n.onSwap(m)
	case TeleportOrder:
		n.onTeleport(m)
	case ClassicalBits:
		n.onClassical(m)
	default:
		n.fail(fmt.Errorf("protocol: node %d got unexpected %T", n.ID, env.Msg))
	}
}

// onReserve: reserve memory for our Bell photon, patch interior circuits,
// generate the pair and launch the far photon. Whether it survives the
// fibre and is detected is sampled here and carried on the arrival message
// (the physical layer is not a separate agent).
func (n *Node) onReserve(m ReserveOrder) {
	if len(m.Route) < 2 || m.Route[0] != int(n.ID) {
		n.fail(fmt.Errorf("protocol: node %d got foreign ReserveOrder %v", n.ID, m.Route))
		return
	}
	if n.memFree < 1 {
		n.fail(fmt.Errorf("protocol: node %d memory overdraw on attempt %d", n.ID, m.AttemptID))
		return
	}
	n.memFree--
	n.photons[m.AttemptID] = true
	n.pending[m.AttemptID] = m
	for i := 1; i+1 < len(m.Route); i++ {
		n.bus.Send(n.ID, NodeID(m.Route[i]), CircuitSetup{
			AttemptID: m.AttemptID,
			In:        m.Route[i-1],
			Out:       m.Route[i+1],
		})
	}
	far := NodeID(m.Route[len(m.Route)-1])
	n.bus.Send(n.ID, far, PhotonArrival{
		AttemptID: m.AttemptID,
		From:      n.ID,
		Success:   xrand.Bernoulli(n.rng, m.Prob),
	})
}

func (n *Node) onPhoton(m PhotonArrival) {
	if !m.Success {
		n.bus.Send(n.ID, ControllerID, CreationReport{AttemptID: m.AttemptID, Success: false})
		return
	}
	if n.memFree < 1 {
		// No room to store the photon: the attempt fails despite arrival.
		n.bus.Send(n.ID, ControllerID, CreationReport{AttemptID: m.AttemptID, Success: false})
		return
	}
	n.memFree--
	n.photons[m.AttemptID] = true
	n.bus.Send(n.ID, ControllerID, CreationReport{AttemptID: m.AttemptID, Success: true})
}

// onSwap: measure the two stored photons; success extends the entanglement,
// failure destroys it. Either way both photons are consumed and the memory
// is freed.
func (n *Node) onSwap(m SwapOrder) {
	if !n.photons[m.LeftAttempt] || !n.photons[m.RightAttempt] {
		n.fail(fmt.Errorf("protocol: node %d asked to swap attempts %d/%d it does not hold",
			n.ID, m.LeftAttempt, m.RightAttempt))
		return
	}
	delete(n.photons, m.LeftAttempt)
	delete(n.photons, m.RightAttempt)
	n.memFree += 2
	ok := xrand.Bernoulli(n.rng, n.net.SwapProb[n.ID])
	n.bus.Send(n.ID, ControllerID, SwapReport{
		ConnectionID:  m.ConnectionID,
		JunctionIndex: m.JunctionIndex,
		Success:       ok,
	})
}

// onTeleport: generate a data qubit, measure it with the local Bell photon
// (collapsing both) and send the classical correction bits.
func (n *Node) onTeleport(m TeleportOrder) {
	if !n.photons[m.SourceAttempt] {
		n.fail(fmt.Errorf("protocol: node %d has no Bell photon for connection %d", n.ID, m.ConnectionID))
		return
	}
	delete(n.photons, m.SourceAttempt)
	n.memFree++
	data := qnet.RandomQubit(n.rng)
	n.dataQubits[m.ConnectionID] = qnet.NewQubit(data.Alpha, data.Beta) // reference copy
	state := qnet.NewQubit(data.Alpha, data.Beta)
	n.bus.Send(n.ID, m.Destination, ClassicalBits{
		ConnectionID: m.ConnectionID,
		DestAttempt:  m.DestAttempt,
		Bits:         [2]bool{n.rng.Intn(2) == 1, n.rng.Intn(2) == 1},
		State:        state,
	})
}

// SentQubit returns the reference copy of the data qubit teleported over a
// connection (source side), for fidelity checks.
func (n *Node) SentQubit(connID int) *qnet.Qubit { return n.dataQubits[connID] }

// onClassical: apply the unitary correction selected by the bits; the
// local Bell photon becomes the data qubit.
func (n *Node) onClassical(m ClassicalBits) {
	if !n.photons[m.DestAttempt] {
		n.fail(fmt.Errorf("protocol: node %d has no Bell photon for connection %d", n.ID, m.ConnectionID))
		return
	}
	delete(n.photons, m.DestAttempt)
	n.memFree++
	// The correction is deterministic given the bits; in this state-vector
	// model applying it yields exactly the sent state.
	n.received[m.ConnectionID] = m.State
	n.bus.Send(n.ID, ControllerID, TeleportAck{
		ConnectionID: m.ConnectionID,
		Fidelity:     1,
	})
}
