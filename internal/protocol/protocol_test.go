package protocol

import (
	"testing"

	"see/internal/chaos"
	"see/internal/core"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/topo"
	"see/internal/xrand"
)

func TestBusFIFOAndOrdering(t *testing.T) {
	b := NewBus()
	var got []int
	b.Register(1, func(env Envelope) { got = append(got, 100+env.Msg.(CreationReport).AttemptID) })
	b.Register(2, func(env Envelope) { got = append(got, 200+env.Msg.(CreationReport).AttemptID) })
	b.Send(0, 2, CreationReport{AttemptID: 1})
	b.Send(0, 1, CreationReport{AttemptID: 1})
	b.Send(0, 1, CreationReport{AttemptID: 2})
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	// Destinations drained in ascending ID order, FIFO within each.
	want := []int{101, 102, 201}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", got, want)
		}
	}
	if b.Delivered() != 3 {
		t.Fatalf("Delivered = %d, want 3", b.Delivered())
	}
}

func TestBusUnregisteredDestination(t *testing.T) {
	b := NewBus()
	b.Send(0, 9, CreationReport{})
	if err := b.Drain(); err == nil {
		t.Fatal("message to unregistered node must error")
	}
}

func TestBusLoopGuard(t *testing.T) {
	b := NewBus()
	b.MaxDeliveries = 10
	b.Register(1, func(env Envelope) { b.Send(1, 1, env.Msg) }) // infinite loop
	b.Send(0, 1, CreationReport{})
	if err := b.Drain(); err == nil {
		t.Fatal("loop guard must trip")
	}
}

func newMotivationSession(t *testing.T, seed int64) *Session {
	t.Helper()
	net, pairs := topo.Motivation()
	s, err := NewSession(net, pairs, core.DefaultOptions(), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionSlotInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		s := newMotivationSession(t, seed)
		out, err := s.RunSlot(xrand.New(seed + 1000))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.SegmentsRealized > out.AttemptsOrdered {
			t.Fatal("realized > ordered")
		}
		if out.Established > out.SegmentsRealized && out.AttemptsOrdered > 0 {
			t.Fatal("established > realized segments")
		}
		if out.TeleportAcks != out.Established {
			t.Fatalf("acks %d != established %d", out.TeleportAcks, out.Established)
		}
		sum := 0
		for _, c := range out.PerPair {
			sum += c
		}
		if sum != out.Established {
			t.Fatal("PerPair does not sum to Established")
		}
		if out.Messages == 0 && out.AttemptsOrdered > 0 {
			t.Fatal("no messages delivered despite orders")
		}
		// Node-local invariants: memory within capacity.
		for id, n := range s.Nodes {
			if n.Err != nil {
				t.Fatalf("node %d error: %v", id, n.Err)
			}
			if n.MemFree() < 0 || n.MemFree() > s.Net.Memory[id] {
				t.Fatalf("node %d memory out of range: %d", id, n.MemFree())
			}
		}
	}
}

func TestSessionTeleportFidelity(t *testing.T) {
	// Run slots until a connection establishes, then check the destination
	// received exactly the state the source sent (fidelity 1) and that the
	// source's copy collapsed is modeled by the reference copy mechanism.
	for seed := int64(0); seed < 50; seed++ {
		s := newMotivationSession(t, seed)
		out, err := s.RunSlot(xrand.New(seed + 77))
		if err != nil {
			t.Fatal(err)
		}
		if out.Established == 0 {
			continue
		}
		checked := 0
		for connID := 0; connID < out.Established+5; connID++ {
			for _, src := range s.Nodes {
				sent := src.SentQubit(connID)
				if sent == nil {
					continue
				}
				for _, dst := range s.Nodes {
					got := dst.ReceivedQubit(connID)
					if got == nil {
						continue
					}
					if f := qnet.Fidelity(sent, got); f < 1-1e-9 {
						t.Fatalf("teleport fidelity = %v, want 1", f)
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatal("established connections but found no sent/received qubit pair")
		}
		return
	}
	t.Fatal("no slot established a connection in 50 seeds")
}

func TestSessionDeterministic(t *testing.T) {
	a := newMotivationSession(t, 5)
	b := newMotivationSession(t, 5)
	ra, err := a.RunSlot(xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunSlot(xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Established != rb.Established || ra.Messages != rb.Messages ||
		ra.SegmentsRealized != rb.SegmentsRealized {
		t.Fatalf("sessions diverged: %+v vs %+v", ra, rb)
	}
}

func TestSessionInteriorNodesPatchCircuits(t *testing.T) {
	// On the motivation fixture the 2-hop segment s2-r1-d2 must make r1
	// patch an optical circuit (and spend no memory for it) in slots where
	// the plan includes it. Accumulate over seeds.
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		s := newMotivationSession(t, seed)
		if _, err := s.RunSlot(xrand.New(seed)); err != nil {
			t.Fatal(err)
		}
		if s.Nodes[topo.MotivR1].Circuits() > 0 || s.Nodes[topo.MotivR2].Circuits() > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no slot ever patched an all-optical circuit at a repeater")
	}
}

func TestSessionOnRandomNetwork(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 30
	net, err := topo.Generate(cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 4, xrand.New(3))
	opts := core.DefaultOptions()
	opts.Segment.KPaths = 3
	s, err := NewSession(net, pairs, opts, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for slot := 0; slot < 10; slot++ {
		out, err := s.RunSlot(xrand.New(int64(100 + slot)))
		if err != nil {
			t.Fatal(err)
		}
		total += out.Established
		for id, n := range s.Nodes {
			if n.MemFree() < 0 {
				t.Fatalf("node %d overdrawn", id)
			}
		}
	}
	if total == 0 {
		t.Fatal("protocol established nothing in 10 slots on a 30-node network")
	}
}

// Phase B: with no provisioned demand consuming them, leftover realized
// segments must still produce connections (parity with ECE's auxiliary
// graph loop). Compare against the core engine's slot on the same fixture:
// both should establish something over many seeds.
func TestSessionPhaseBUsesLeftovers(t *testing.T) {
	established := 0
	for seed := int64(0); seed < 20; seed++ {
		s := newMotivationSession(t, seed)
		out, err := s.RunSlot(xrand.New(seed + 500))
		if err != nil {
			t.Fatal(err)
		}
		established += out.Established
		if out.Established > out.SegmentsRealized {
			t.Fatal("established more connections than realized segments")
		}
	}
	if established == 0 {
		t.Fatal("protocol slots established nothing across 20 seeds")
	}
}

// TestBusRetryWithBackoff drops the first delivery attempt of one message
// and checks the bus redelivers it on a later round instead of losing it.
func TestBusRetryWithBackoff(t *testing.T) {
	b := NewBus()
	var got []int
	b.Register(1, func(env Envelope) { got = append(got, env.Msg.(CreationReport).AttemptID) })
	b.Faults = func(seq, attempt int) bool { return seq == 2 && attempt == 1 }
	b.Send(0, 1, CreationReport{AttemptID: 10})
	b.Send(0, 1, CreationReport{AttemptID: 20}) // seq 2: dropped once
	b.Send(0, 1, CreationReport{AttemptID: 30})
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %v, want all three", got)
	}
	if b.Dropped() != 1 || b.Retried() != 1 || b.Lost() != 0 {
		t.Fatalf("dropped=%d retried=%d lost=%d, want 1/1/0", b.Dropped(), b.Retried(), b.Lost())
	}
	if b.Delivered() != 3 {
		t.Fatalf("Delivered = %d, want 3", b.Delivered())
	}
}

// TestBusLostAfterMaxAttempts drops every attempt of one message: the bus
// must abandon it after MaxAttempts and still drain cleanly.
func TestBusLostAfterMaxAttempts(t *testing.T) {
	b := NewBus()
	b.MaxAttempts = 3
	var got []int
	b.Register(1, func(env Envelope) { got = append(got, env.Msg.(CreationReport).AttemptID) })
	b.Faults = func(seq, attempt int) bool { return seq == 1 }
	b.Send(0, 1, CreationReport{AttemptID: 10}) // always dropped
	b.Send(0, 1, CreationReport{AttemptID: 20})
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("delivered %v, want just 20", got)
	}
	if b.Lost() != 1 || b.Dropped() != 3 || b.Retried() != 2 {
		t.Fatalf("lost=%d dropped=%d retried=%d, want 1/3/2", b.Lost(), b.Dropped(), b.Retried())
	}
}

// TestSessionSingleDropDoesNotAbort is the robustness contract of the
// control plane: one dropped controller message must be absorbed by the
// retry machinery — the slot completes without error.
func TestSessionSingleDropDoesNotAbort(t *testing.T) {
	// Drop the first delivery attempt of every 7th message across many
	// seeds; each individual message is still redelivered within
	// MaxAttempts, so no slot may fail.
	for seed := int64(0); seed < 20; seed++ {
		s := newMotivationSession(t, seed)
		s.Bus.Faults = func(seq, attempt int) bool { return seq%7 == 0 && attempt == 1 }
		tr := sched.NewCountingTracer()
		s.Controller.Tracer = tr
		out, err := s.RunSlot(xrand.New(seed + 500))
		if err != nil {
			t.Fatalf("seed %d: slot aborted: %v", seed, err)
		}
		if s.Bus.Lost() != 0 {
			t.Fatalf("seed %d: %d messages lost despite single drops", seed, s.Bus.Lost())
		}
		if s.Bus.Dropped() > 0 {
			c := tr.Counts()
			if c.IncidentCount(sched.IncidentMessageDrop) != s.Bus.Dropped() {
				t.Fatalf("seed %d: tracer drops %d != bus drops %d",
					seed, c.IncidentCount(sched.IncidentMessageDrop), s.Bus.Dropped())
			}
			if c.IncidentCount(sched.IncidentMessageRetry) != s.Bus.Retried() {
				t.Fatalf("seed %d: tracer retries %d != bus retries %d",
					seed, c.IncidentCount(sched.IncidentMessageRetry), s.Bus.Retried())
			}
		}
		_ = out
	}
}

// TestSessionLossyDeterministic runs the same lossy slot twice with the
// chaos drop hook and expects identical outcomes.
func TestSessionLossyDeterministic(t *testing.T) {
	run := func() *SlotOutcome {
		net, _ := topo.Motivation()
		s := newMotivationSession(t, 11)
		inj, err := chaos.NewInjector(&chaos.FaultPlan{Seed: 9, MsgLoss: 0.2}, net)
		if err != nil {
			t.Fatal(err)
		}
		s.Bus.Faults = inj.DropDelivery
		out, err := s.RunSlot(xrand.New(123))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Established != b.Established || a.SegmentsRealized != b.SegmentsRealized ||
		a.AttemptsOrdered != b.AttemptsOrdered || a.Messages != b.Messages {
		t.Fatalf("lossy runs diverged: %+v vs %+v", a, b)
	}
}
