package protocol

import (
	"fmt"
	"sort"
)

// Envelope is a routed message.
type Envelope struct {
	From, To NodeID
	Msg      Message
}

// Bus is a deterministic in-memory message fabric: messages are queued per
// destination and delivered in FIFO order, destinations drained in
// ascending ID order. Handlers may send further messages while handling.
type Bus struct {
	queues  map[NodeID][]Envelope
	handler map[NodeID]func(Envelope)
	// Trace, when non-nil, receives every delivered envelope (examples and
	// tests use it to show the protocol).
	Trace func(Envelope)
	// delivered counts total deliveries (loop guard).
	delivered int
	// MaxDeliveries guards against protocol loops; 0 means 1e6.
	MaxDeliveries int
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		queues:  make(map[NodeID][]Envelope),
		handler: make(map[NodeID]func(Envelope)),
	}
}

// Register installs the handler for a destination. Registering twice
// replaces the handler.
func (b *Bus) Register(id NodeID, h func(Envelope)) {
	b.handler[id] = h
}

// Send enqueues a message.
func (b *Bus) Send(from, to NodeID, msg Message) {
	b.queues[to] = append(b.queues[to], Envelope{From: from, To: to, Msg: msg})
}

// Drain delivers messages until every queue is empty. It returns an error
// if a message targets an unregistered destination or the delivery guard
// trips.
func (b *Bus) Drain() error {
	limit := b.MaxDeliveries
	if limit <= 0 {
		limit = 1_000_000
	}
	for {
		ids := make([]NodeID, 0, len(b.queues))
		for id, q := range b.queues {
			if len(q) > 0 {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return nil
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			q := b.queues[id]
			b.queues[id] = nil
			h, ok := b.handler[id]
			if !ok {
				return fmt.Errorf("protocol: message for unregistered node %d: %v", id, q[0].Msg)
			}
			for _, env := range q {
				b.delivered++
				if b.delivered > limit {
					return fmt.Errorf("protocol: delivery guard tripped after %d messages", b.delivered)
				}
				if b.Trace != nil {
					b.Trace(env)
				}
				h(env)
			}
		}
	}
}

// Delivered returns the number of messages delivered so far.
func (b *Bus) Delivered() int { return b.delivered }
