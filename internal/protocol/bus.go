package protocol

import (
	"fmt"
	"sort"
)

// Envelope is a routed message.
type Envelope struct {
	From, To NodeID
	Msg      Message
}

// queued is an envelope in flight: its bus-wide sequence number (assigned
// at Send, the identity the fault hook keys on), how many delivery
// attempts have been made, and the earliest drain round it may be
// delivered in (the backoff clock).
type queued struct {
	env       Envelope
	seq       int
	attempts  int
	notBefore int
}

// Bus is a deterministic in-memory message fabric: messages are queued per
// destination and delivered in FIFO order, destinations drained in
// ascending ID order. Handlers may send further messages while handling.
//
// The Faults hook models a lossy control plane: when it reports a delivery
// dropped, the bus retries with exponential backoff (the message becomes
// deliverable again 2^(attempt−1) drain rounds later) up to MaxAttempts
// attempts, after which the message is lost for good. The hook is keyed on
// the message's send sequence number, so a deterministic implementation
// (chaos.Injector.DropDelivery) makes the whole lossy run reproducible.
type Bus struct {
	queues  map[NodeID][]queued
	handler map[NodeID]func(Envelope)
	// Trace, when non-nil, receives every delivered envelope (examples and
	// tests use it to show the protocol).
	Trace func(Envelope)
	// Faults, when non-nil, decides whether delivery attempt `attempt`
	// (1-based) of message `seq` is dropped. nil means lossless.
	Faults func(seq, attempt int) bool
	// MaxAttempts bounds delivery attempts per message; 0 means 4.
	MaxAttempts int
	// delivered counts total deliveries (loop guard).
	delivered int
	// MaxDeliveries guards against protocol loops; 0 means 1e6.
	MaxDeliveries int

	seq     int
	round   int
	dropped int
	retried int
	lost    int
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		queues:  make(map[NodeID][]queued),
		handler: make(map[NodeID]func(Envelope)),
	}
}

// Register installs the handler for a destination. Registering twice
// replaces the handler.
func (b *Bus) Register(id NodeID, h func(Envelope)) {
	b.handler[id] = h
}

// Send enqueues a message.
func (b *Bus) Send(from, to NodeID, msg Message) {
	b.seq++
	b.queues[to] = append(b.queues[to], queued{
		env: Envelope{From: from, To: to, Msg: msg},
		seq: b.seq,
	})
}

// Drain delivers messages until every queue is empty (messages waiting out
// a retry backoff are waited for). It returns an error if a message
// targets an unregistered destination or the delivery guard trips.
func (b *Bus) Drain() error {
	limit := b.MaxDeliveries
	if limit <= 0 {
		limit = 1_000_000
	}
	maxAttempts := b.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	for {
		ids := make([]NodeID, 0, len(b.queues))
		for id, q := range b.queues {
			if len(q) > 0 {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return nil
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		b.round++
		for _, id := range ids {
			q := b.queues[id]
			b.queues[id] = nil
			h, ok := b.handler[id]
			if !ok {
				return fmt.Errorf("protocol: message for unregistered node %d: %v", id, q[0].env.Msg)
			}
			var deferred []queued
			for _, qm := range q {
				if qm.notBefore > b.round {
					// Still backing off; carry into a later round.
					deferred = append(deferred, qm)
					continue
				}
				qm.attempts++
				if b.Faults != nil && b.Faults(qm.seq, qm.attempts) {
					b.dropped++
					if qm.attempts >= maxAttempts {
						b.lost++
						continue
					}
					b.retried++
					qm.notBefore = b.round + 1<<(qm.attempts-1)
					deferred = append(deferred, qm)
					continue
				}
				b.delivered++
				if b.delivered > limit {
					return fmt.Errorf("protocol: delivery guard tripped after %d messages", b.delivered)
				}
				if b.Trace != nil {
					b.Trace(qm.env)
				}
				h(qm.env)
			}
			// Handlers may have sent new messages to id while handling;
			// deferred retries go ahead of them (they are older sends, so
			// this keeps per-destination delivery closest to FIFO once
			// their backoff expires).
			b.queues[id] = append(deferred, b.queues[id]...)
		}
	}
}

// Delivered returns the number of messages delivered so far.
func (b *Bus) Delivered() int { return b.delivered }

// Dropped returns the number of delivery attempts the fault hook dropped.
func (b *Bus) Dropped() int { return b.dropped }

// Retried returns the number of redeliveries scheduled after drops.
func (b *Bus) Retried() int { return b.retried }

// Lost returns the number of messages abandoned after MaxAttempts drops.
func (b *Bus) Lost() int { return b.lost }
