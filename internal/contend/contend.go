// Package contend implements a contention-aware routing engine in the
// spirit of Q-CAST (Shi & Qian, SIGCOMM 2020): instead of the LP the paper
// solves, each SD pair gets a small catalogue of candidate entanglement
// paths on the segment graph, every candidate is scored by an
// expected-throughput metric E(ℓ) built from the paper's primitives —
// segment creation probability p^k_uv, swap success q_u and the attempt
// width the residual channels c_uv and memories m_u can still support —
// and paths are accepted best-score-first with explicit contention
// accounting: an accepted path decrements the residual channel capacity of
// every fibre link its realizations cross and the residual memory of every
// segment endpoint, so later candidates are scored against what is
// actually left.
//
// On top of the primary plan the engine reserves *recovery* attempts
// (Q-CAST's recovery paths, collapsed to the segment level): for each
// planned hop, one attempt on the next-best physical realization of the
// same endpoint pair. Recovery attempts fire only in the physical phase
// and only for hops whose primary attempts all failed, converting some
// single-hop bad luck into established connections instead of lost paths.
// Recovery activations are reported as sched.IncidentRecovery.
//
// Like the greedy engine, planning is deterministic and happens once at
// construction: RunSlot consumes the rng only for the physical phase,
// recovery attempts and swaps, so a fixed rng state reproduces the slot.
package contend

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"see/internal/chaos"
	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/segment"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
)

// Weights for the candidate-path enumeration on the segment graph, shared
// with the greedy engine's pricing: infeasible elements get a prohibitive
// weight and any path crossing one is rejected.
const (
	infeasibleWeight = 1e12
	rejectThreshold  = 1e11
)

// Options tunes the contention-aware engine.
type Options struct {
	// Segment tunes candidate enumeration; the zero value uses the SEE
	// defaults (hop cap 10) so the engine plans over the same segment
	// catalogue as the LP engines it is compared against.
	Segment segment.Options
	// PathsPerPair is the number of candidate entanglement paths scored
	// per SD pair (Yen on the segment graph; default 5).
	PathsPerPair int
	// RecoveryAttempts is the number of creation attempts reserved on the
	// recovery realization of each planned hop (default 1; 0 disables
	// recovery paths entirely).
	RecoveryAttempts int
	// Tracer observes the slot pipeline; nil means no instrumentation.
	Tracer sched.Tracer
	// Chaos injects deterministic faults into the physical phase; see the
	// matching field in core.Options.
	Chaos *chaos.Injector
	// Algorithm is the scheme label the engine reports through
	// Engine.Algorithm and the Tracer. The zero value is sched.Contend;
	// the fault-aware (sched.ContendAware) and offline (sched.QPass)
	// variants built in internal/engines override it.
	Algorithm sched.Algorithm
	// PlanChannels / PlanMemory, when non-nil, replace the network's
	// capacity tables as the starting residuals of the selection loop (and
	// the per-pair connection caps), so announced outages and brownouts
	// are subtracted from c_uv and m_u before any candidate is scored. The
	// physical phase keeps the true topology. See core.Options.
	PlanChannels []int
	PlanMemory   []int
	// ForecastAvoided is the number of announced elements the planner
	// routes around; when positive it is reported every slot as
	// sched.IncidentForecastAvoid.
	ForecastAvoided int
	// Warm, when non-nil, memoizes the segment-candidate set across engine
	// (re)builds over the same network (see internal/warm). The engine
	// solves no LP, so the candidate build is the only cacheable stage.
	Warm *warm.Cache
	// Offline switches planning to the Q-PASS-style offline mode: every
	// candidate path is scored once against the full fault-free topology
	// (no contention re-scoring), paths are provisioned in round-robin
	// sweeps over the SD pairs by static score with all-or-nothing
	// charging, and the forecast is never consulted. The contrast baseline
	// for the fault-aware variants.
	Offline bool
	// FidelityFloors is the per-request minimum delivered end-to-end
	// fidelity; the stitch loop never attempts an assembly whose predicted
	// fidelity misses its pair's floor (see qnet.FloorPolicy and the
	// matching field in core.Options). Nil or all-zero disables it.
	FidelityFloors *qnet.FloorSpec
	// SwapOrder selects the stitch phase's swap schedule; the zero value
	// (qnet.SwapOrderPath) is the historical left-to-right order.
	SwapOrder qnet.SwapOrder
}

// DefaultOptions returns the contention-aware defaults.
func DefaultOptions() Options {
	seg := segment.DefaultOptions()
	seg.MaxSegmentHops = 10
	return Options{Segment: seg, PathsPerPair: 5, RecoveryAttempts: 1}
}

// hop is one planned segment of a selected path: the endpoint pair, the
// primary realization with its attempt count, and the optional recovery
// realization fired only when every primary attempt fails.
type hop struct {
	pair     segment.PairKey
	cand     *segment.Candidate
	attempts int
	// recovery is the next-best realization of the same endpoint pair
	// (nil when none fits the residual resources); recAttempts is its
	// reserved attempt budget.
	recovery    *segment.Candidate
	recAttempts int
}

// plannedPath is one accepted entanglement path with its score at
// acceptance time.
type plannedPath struct {
	commodity int
	nodes     graph.Path
	hops      []hop
	score     float64
}

// Engine runs contention-aware time slots over a fixed network and
// workload.
type Engine struct {
	Net   *topo.Network
	Pairs []topo.SDPair
	Set   *segment.Set
	// ConnCap is the per-pair connection cap min(m_s, m_d).
	ConnCap []int

	paths    []plannedPath
	plan     qnet.AttemptPlan
	recovery qnet.AttemptPlan
	expected float64

	opts   Options
	tracer sched.Tracer
	// bank is the optional cross-slot segment bank; nil keeps the engine
	// memoryless (see the matching field in core.Engine).
	bank *state.Bank
	// slot is the reusable per-slot scratch (attempt ordering, segment
	// pool, availability and per-pair counters); the same lifetime rule as
	// core.slotScratch applies — nothing in it may outlive the slot.
	slot *slotScratch
}

// slotScratch holds the contention engine's per-slot reusable buffers.
type slotScratch struct {
	att     qnet.AttemptScratch
	pool    *qnet.Pool
	perPair []int
	avail   map[segment.PairKey]int
}

// scratch returns the engine's slot scratch, creating it on first use.
func (e *Engine) scratch() *slotScratch {
	if e.slot == nil {
		e.slot = &slotScratch{
			perPair: make([]int, len(e.Pairs)),
			avail:   make(map[segment.PairKey]int),
		}
	}
	return e.slot
}

var _ sched.Stateful = (*Engine)(nil)

// NewEngine enumerates candidate paths and fixes the contention-aware
// plan. Like the greedy engine it solves no LP, so construction needs no
// context/budget variant.
func NewEngine(net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	if net == nil {
		return nil, errors.New("contend: nil network")
	}
	if len(pairs) == 0 {
		return nil, errors.New("contend: no SD pairs")
	}
	if opts.Segment.KPaths == 0 && opts.Segment.MaxSegmentHops == 0 {
		opts.Segment = DefaultOptions().Segment
	}
	if opts.PathsPerPair <= 0 {
		opts.PathsPerPair = 5
	}
	if opts.RecoveryAttempts < 0 {
		opts.RecoveryAttempts = 0
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = sched.Contend
	}
	var set *segment.Set
	var err error
	if opts.Warm != nil {
		set, err = opts.Warm.SegmentSet(net, pairs, opts.Segment)
	} else {
		set, err = segment.Build(net, pairs, opts.Segment)
	}
	if err != nil {
		return nil, fmt.Errorf("contend: building candidates: %w", err)
	}
	planMem := net.Memory
	if opts.PlanMemory != nil {
		planMem = opts.PlanMemory
	}
	connCap := make([]int, len(pairs))
	for i, sd := range pairs {
		connCap[i] = min(planMem[sd.S], planMem[sd.D])
	}
	e := &Engine{
		Net:     net,
		Pairs:   pairs,
		Set:     set,
		ConnCap: connCap,
		opts:    opts,
		tracer:  sched.OrNop(opts.Tracer),
	}
	e.buildPlan()
	return e, nil
}

// attemptCost is the expected number of attempts a unit of flow costs on
// the candidate: 1/(p·√(q_u·q_v)), the metric the LP prices columns with
// (+Inf when the realization cannot support flow).
func attemptCost(net *topo.Network, c *segment.Candidate) float64 {
	qu := net.SwapProb[c.Path[0]]
	qv := net.SwapProb[c.Path[len(c.Path)-1]]
	den := c.Prob * math.Sqrt(qu*qv)
	if den <= 1e-12 {
		return math.Inf(1)
	}
	return 1 / den
}

// candidatePaths enumerates the per-pair candidate entanglement paths on
// the segment graph (Yen K shortest under the static attempt-cost metric
// with −ln q node weights, the same weights the greedy planner routes
// with).
func (e *Engine) candidatePaths() [][]graph.Path {
	nodeWeight := func(u int) float64 {
		q := e.Net.SwapProb[u]
		if q <= 0 {
			return infeasibleWeight
		}
		return -math.Log(q)
	}
	edgeWeight := func(id int, _ float64) float64 {
		best := math.Inf(1)
		for _, c := range e.Set.ByPair[e.Set.EdgePairs[id]] {
			if cost := attemptCost(e.Net, c); cost < best {
				best = cost
			}
		}
		if math.IsInf(best, 1) {
			return infeasibleWeight
		}
		return best
	}
	out := make([][]graph.Path, len(e.Pairs))
	for i, sd := range e.Pairs {
		out[i] = graph.YenKShortest(e.Set.SegGraph, sd.S, sd.D, e.opts.PathsPerPair, graph.DijkstraOptions{
			NodeWeight: nodeWeight,
			EdgeWeight: edgeWeight,
		})
	}
	return out
}

// residual tracks the contention state during plan construction.
type residual struct {
	channels []int
	memory   []int
}

// cheapestFeasible returns the lowest-attempt-cost realization of the pair
// that fits at least one attempt in the residual resources, skipping the
// realization `not` (used to pick a disjoint recovery realization).
func (e *Engine) cheapestFeasible(r *residual, pk segment.PairKey, not *segment.Candidate) (*segment.Candidate, float64) {
	var best *segment.Candidate
	bestCost := math.Inf(1)
	for _, c := range e.Set.ByPair[pk] {
		if c == not {
			continue
		}
		fits := r.memory[pk.U] >= 1 && r.memory[pk.V] >= 1
		for _, id := range c.EdgeIDs {
			if r.channels[id] < 1 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		if cost := attemptCost(e.Net, c); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best, bestCost
}

// widthFor bounds the attempt count of a realization by the residual
// channels along its route and the residual memories of its endpoints,
// starting from the requested width.
func widthFor(r *residual, c *segment.Candidate, pk segment.PairKey, want int) int {
	n := want
	for _, id := range c.EdgeIDs {
		if r.channels[id] < n {
			n = r.channels[id]
		}
	}
	if r.memory[pk.U] < n {
		n = r.memory[pk.U]
	}
	if r.memory[pk.V] < n {
		n = r.memory[pk.V]
	}
	return n
}

// scorePath evaluates the expected-throughput metric of a candidate path
// under the residual resources:
//
//	E(ℓ) = Π_hops (1 − (1 − p^k_uv)^{n_h}) · Π_junctions q_u
//
// where n_h = min(⌈1/p⌉, residual width) is the attempt budget hop h would
// get, with each hop priced on its cheapest still-feasible realization. It
// returns the score and the concrete hop plan (nil when any hop has no
// feasible realization).
func (e *Engine) scorePath(r *residual, nodes graph.Path) (float64, []hop) {
	score := 1.0
	hops := make([]hop, 0, len(nodes)-1)
	// Hop reservations within one path compound, so simulate them on a
	// scratch copy of the residual state (paths share endpoints with
	// themselves when they revisit a node's memory).
	scratch := &residual{
		channels: append([]int(nil), r.channels...),
		memory:   append([]int(nil), r.memory...),
	}
	for i := 0; i+1 < len(nodes); i++ {
		pk := segment.MakePairKey(nodes[i], nodes[i+1])
		cand, cost := e.cheapestFeasible(scratch, pk, nil)
		if cand == nil || math.IsInf(cost, 1) {
			return 0, nil
		}
		n := widthFor(scratch, cand, pk, int(math.Ceil(1/cand.Prob)))
		if n < 1 {
			return 0, nil
		}
		for _, id := range cand.EdgeIDs {
			scratch.channels[id] -= n
		}
		scratch.memory[pk.U] -= n
		scratch.memory[pk.V] -= n
		score *= 1 - math.Pow(1-cand.Prob, float64(n))
		hops = append(hops, hop{pair: pk, cand: cand, attempts: n})
	}
	for j := 1; j+1 < len(nodes); j++ {
		score *= e.Net.SwapProb[nodes[j]]
	}
	return score, hops
}

// buildPlan is the contention-aware selection loop: every unsaturated
// pair's candidate paths are re-scored against the residual resources, the
// globally best-scoring path is accepted, its hops (primary + recovery)
// are charged against the residuals, and the loop repeats until no
// candidate has positive score. Ties break deterministically on (pair
// index, candidate index).
func (e *Engine) buildPlan() {
	e.plan = make(qnet.AttemptPlan)
	e.recovery = make(qnet.AttemptPlan)
	if e.opts.Offline {
		e.buildPlanOffline()
		return
	}
	r := e.startingResidual()
	cands := e.candidatePaths()
	planned := make([]int, len(e.Pairs))
	for {
		bestScore := 0.0
		bestPair, bestIdx := -1, -1
		var bestHops []hop
		for i := range e.Pairs {
			if planned[i] >= e.ConnCap[i] {
				continue
			}
			for j, nodes := range cands[i] {
				score, hops := e.scorePath(r, nodes)
				if score > bestScore {
					bestScore, bestPair, bestIdx, bestHops = score, i, j, hops
				}
			}
		}
		if bestPair < 0 || bestScore <= 0 {
			break
		}
		// Charge the accepted path's primary reservations.
		for _, h := range bestHops {
			for _, id := range h.cand.EdgeIDs {
				r.channels[id] -= h.attempts
			}
			r.memory[h.pair.U] -= h.attempts
			r.memory[h.pair.V] -= h.attempts
		}
		// Reserve recovery attempts on the next-best disjoint realization
		// of each hop, within whatever resources remain.
		pp := plannedPath{commodity: bestPair, nodes: cands[bestPair][bestIdx], score: bestScore}
		for _, h := range bestHops {
			if e.opts.RecoveryAttempts > 0 {
				if rec, cost := e.cheapestFeasible(r, h.pair, h.cand); rec != nil && !math.IsInf(cost, 1) {
					if n := widthFor(r, rec, h.pair, e.opts.RecoveryAttempts); n >= 1 {
						for _, id := range rec.EdgeIDs {
							r.channels[id] -= n
						}
						r.memory[h.pair.U] -= n
						r.memory[h.pair.V] -= n
						h.recovery, h.recAttempts = rec, n
						e.recovery[rec] += n
					}
				}
			}
			pp.hops = append(pp.hops, h)
			e.plan[h.cand] += h.attempts
		}
		e.paths = append(e.paths, pp)
		planned[bestPair]++
	}
	for _, pp := range e.paths {
		e.expected += pp.score
	}
}

// startingResidual seeds the contention state from the planning capacity
// tables: the forecast-shrunk overrides when set, the network tables
// otherwise.
func (e *Engine) startingResidual() *residual {
	channels := e.Net.Channels
	if e.opts.PlanChannels != nil {
		channels = e.opts.PlanChannels
	}
	memory := e.Net.Memory
	if e.opts.PlanMemory != nil {
		memory = e.opts.PlanMemory
	}
	return &residual{
		channels: append([]int(nil), channels...),
		memory:   append([]int(nil), memory...),
	}
}

// buildPlanOffline fixes the Q-PASS-style offline plan. Candidate paths
// are scored exactly once against the full fault-free topology — the
// offline planner re-scores nothing against residual state — then
// provisioned in round-robin sweeps over the SD pairs (one path per
// unsaturated pair per sweep, best static score first). A path is accepted
// only if the residual resources still fit the pre-computed widths of all
// its hops (all-or-nothing), and per-hop recovery attempts are reserved up
// front like the online planner's. The fault forecast is deliberately
// ignored: this is the contrast baseline the fault-aware variants are
// measured against.
func (e *Engine) buildPlanOffline() {
	full := &residual{
		channels: append([]int(nil), e.Net.Channels...),
		memory:   append([]int(nil), e.Net.Memory...),
	}
	cands := e.candidatePaths()
	type offlinePath struct {
		nodes graph.Path
		hops  []hop
		score float64
	}
	scored := make([][]offlinePath, len(e.Pairs))
	for i := range e.Pairs {
		for _, nodes := range cands[i] {
			score, hops := e.scorePath(full, nodes)
			if score <= 0 {
				continue
			}
			scored[i] = append(scored[i], offlinePath{nodes: nodes, hops: hops, score: score})
		}
		list := scored[i]
		sort.SliceStable(list, func(a, b int) bool { return list[a].score > list[b].score })
	}

	r := &residual{
		channels: append([]int(nil), e.Net.Channels...),
		memory:   append([]int(nil), e.Net.Memory...),
	}
	// fits reports whether the residual covers every hop at its full
	// pre-computed width (hops of one path may share links and endpoints,
	// so charge a scratch copy).
	fits := func(hops []hop) bool {
		scratch := &residual{
			channels: append([]int(nil), r.channels...),
			memory:   append([]int(nil), r.memory...),
		}
		for _, h := range hops {
			for _, id := range h.cand.EdgeIDs {
				scratch.channels[id] -= h.attempts
				if scratch.channels[id] < 0 {
					return false
				}
			}
			scratch.memory[h.pair.U] -= h.attempts
			scratch.memory[h.pair.V] -= h.attempts
			if scratch.memory[h.pair.U] < 0 || scratch.memory[h.pair.V] < 0 {
				return false
			}
		}
		return true
	}
	planned := make([]int, len(e.Pairs))
	for {
		progress := false
		for i := range e.Pairs {
			if planned[i] >= e.ConnCap[i] {
				continue
			}
			accepted := -1
			for j, op := range scored[i] {
				if !fits(op.hops) {
					continue
				}
				accepted = j
				break
			}
			if accepted < 0 {
				continue
			}
			op := scored[i][accepted]
			pp := plannedPath{commodity: i, nodes: op.nodes, score: op.score}
			for _, h := range op.hops {
				for _, id := range h.cand.EdgeIDs {
					r.channels[id] -= h.attempts
				}
				r.memory[h.pair.U] -= h.attempts
				r.memory[h.pair.V] -= h.attempts
			}
			for _, h := range op.hops {
				if e.opts.RecoveryAttempts > 0 {
					if rec, cost := e.cheapestFeasible(r, h.pair, h.cand); rec != nil && !math.IsInf(cost, 1) {
						if n := widthFor(r, rec, h.pair, e.opts.RecoveryAttempts); n >= 1 {
							for _, id := range rec.EdgeIDs {
								r.channels[id] -= n
							}
							r.memory[h.pair.U] -= n
							r.memory[h.pair.V] -= n
							h.recovery, h.recAttempts = rec, n
							e.recovery[rec] += n
						}
					}
				}
				pp.hops = append(pp.hops, h)
				e.plan[h.cand] += h.attempts
			}
			e.paths = append(e.paths, pp)
			planned[i]++
			progress = true
		}
		if !progress {
			break
		}
	}
	for _, pp := range e.paths {
		e.expected += pp.score
	}
}

// RunSlot simulates one time slot: attempt the fixed primary plan, fire
// reserved recovery attempts for hops whose primaries all failed, then
// assemble the planned paths from realized segments (retrying on redundant
// segments like the other engines).
func (e *Engine) RunSlot(rng *rand.Rand) (*sched.SlotResult, error) {
	tr := e.tracer
	traced := !sched.IsNop(tr)
	tr.SlotStart(e.opts.Algorithm)
	res := &sched.SlotResult{
		LPObjective:      e.expected,
		PlannedPaths:     len(e.paths),
		ProvisionedPaths: len(e.paths),
		PerPair:          make([]int, len(e.Pairs)),
	}

	var fm qnet.FaultModel
	faultsBefore := 0
	var countsBefore chaos.Counts
	if e.opts.Chaos.Active() {
		countsBefore = e.opts.Chaos.Counts()
		e.opts.Chaos.BeginSlot()
		faultsBefore = e.opts.Chaos.Counts().Total()
		fm = e.opts.Chaos
	}
	if e.opts.ForecastAvoided > 0 {
		tr.Incident(sched.IncidentForecastAvoid, e.opts.ForecastAvoided)
	}

	// Cross-slot state: withdraw surviving carried segments and trim their
	// endpoint pairs out of the fixed primary plan (the cached e.plan is
	// never mutated). With no bank, plan aliases e.plan and the slot is
	// byte-identical to the memoryless path.
	plan := e.plan
	var withdrawn []*qnet.Segment
	if e.bank != nil {
		if expired, decohered := e.bank.BeginSlot(); expired+decohered > 0 {
			tr.Incident(sched.IncidentBankDecohered, expired+decohered)
		}
		if withdrawn = e.bank.WithdrawAll(); len(withdrawn) > 0 {
			tr.Incident(sched.IncidentBankWithdraw, len(withdrawn))
		}
		plan, _ = e.bank.TrimPlan(plan, withdrawn)
	}
	res.Attempts = plan.TotalAttempts() + e.recovery.TotalAttempts()

	t0 := time.Now()
	if traced {
		for _, pp := range e.paths {
			tr.PathPlanned(pp.commodity, len(pp.hops))
		}
	}
	tr.PhaseDone(sched.PhasePlan, time.Since(t0))

	t0 = time.Now()
	if traced {
		for _, pp := range e.paths {
			tr.PathProvisioned(pp.commodity)
		}
		for _, c := range plan.SortedCandidates() {
			tr.AttemptReserved(c.U(), c.V(), plan[c])
		}
		for _, c := range e.recovery.SortedCandidates() {
			tr.AttemptReserved(c.U(), c.V(), e.recovery[c])
		}
	}
	tr.PhaseDone(sched.PhaseReserve, time.Since(t0))

	t0 = time.Now()
	var attemptObs qnet.AttemptObserver
	if traced {
		attemptObs = func(c *segment.Candidate, ok bool) {
			tr.AttemptResolved(c.U(), c.V(), ok)
		}
	}
	sc := e.scratch()
	created := qnet.AttemptAllFaultyScratch(plan, rng, fm, attemptObs, &sc.att)
	res.SegmentsCreated = len(created)
	created, _ = qnet.ApplyDecoherence(created, fm)

	// Recovery pass: count the surviving segments per endpoint pair
	// (withdrawn carried segments count too) and fire the reserved
	// recovery attempts of hops left with nothing, in deterministic path
	// order. Recovery segments face the same decoherence stream.
	avail := sc.avail
	clear(avail)
	for _, s := range withdrawn {
		avail[s.Pair()]++
	}
	for _, s := range created {
		avail[s.Pair()]++
	}
	recoveryFired := 0
	for _, pp := range e.paths {
		for _, h := range pp.hops {
			if h.recovery == nil || avail[h.pair] > 0 {
				continue
			}
			recoveryFired += h.recAttempts
			recCreated := qnet.AttemptAllFaulty(qnet.AttemptPlan{h.recovery: h.recAttempts}, rng, fm, attemptObs)
			res.SegmentsCreated += len(recCreated)
			recCreated, _ = qnet.ApplyDecoherence(recCreated, fm)
			for _, s := range recCreated {
				avail[s.Pair()]++
			}
			created = append(created, recCreated...)
		}
	}
	if recoveryFired > 0 {
		tr.Incident(sched.IncidentRecovery, recoveryFired)
	}
	if fm != nil {
		// Attribute the slot's damage (see the matching block in
		// internal/core): brownout denials and flap downs get their own
		// incident kinds, the rest stays IncidentFault.
		da := e.opts.Chaos.Counts().Sub(countsBefore)
		if d := e.opts.Chaos.Counts().Total() - faultsBefore - da.BrownoutAttemptsLost; d > 0 {
			tr.Incident(sched.IncidentFault, d)
		}
		if da.FlapSlotsDown > 0 {
			tr.Incident(sched.IncidentFlap, da.FlapSlotsDown)
		}
		if da.BrownoutAttemptsLost > 0 {
			tr.Incident(sched.IncidentBrownout, da.BrownoutAttemptsLost)
		}
	}
	tr.PhaseDone(sched.PhasePhysical, time.Since(t0))

	// Stitch: withdrawn carried segments join the pool ahead of the fresh
	// ones so the oldest photons are consumed preferentially.
	t0 = time.Now()
	slotSegs := append(withdrawn, created...)
	if sc.pool == nil {
		sc.pool = qnet.NewPool(slotSegs)
	} else {
		sc.pool.Reset(slotSegs)
	}
	pool := sc.pool
	swapObs := qnet.SwapObserver(tr.SwapResolved)
	perPair := sc.perPair
	clear(perPair)
	fp := qnet.NewFloorPolicy(e.opts.FidelityFloors, e.Net)
	var floorDead []bool // planned paths proven unable to meet their floor
	for {
		progress := false
		for ppi, pp := range e.paths {
			if perPair[pp.commodity] >= e.ConnCap[pp.commodity] {
				continue
			}
			if floorDead != nil && floorDead[ppi] {
				continue
			}
			ok := true
			for _, h := range pp.hops {
				if pool.Available(h.pair) < 1 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			conn := &qnet.Connection{Pair: pp.commodity, Nodes: pp.nodes}
			for _, h := range pp.hops {
				conn.Segments = append(conn.Segments, fp.Take(pool, pp.commodity, h.pair))
			}
			if fp.Rejects(pp.commodity, conn.Segments) {
				for _, s := range conn.Segments {
					pool.Return(s)
				}
				if floorDead == nil {
					floorDead = make([]bool, len(e.paths))
				}
				floorDead[ppi] = true
				res.FloorRejected++
				tr.Incident(sched.IncidentFloorReject, 1)
				continue
			}
			res.Assembled++
			progress = true
			ok = conn.EstablishOrderedObserved(e.Net, pool, rng, swapObs, e.opts.SwapOrder)
			tr.ConnectionAssembled(pp.commodity, ok)
			if ok {
				if err := conn.Validate(); err != nil {
					return nil, fmt.Errorf("contend: invalid connection: %w", err)
				}
				res.Established++
				res.PerPair[pp.commodity]++
				res.Connections = append(res.Connections, conn)
				perPair[pp.commodity]++
			}
		}
		if !progress {
			break
		}
	}
	// Cross-slot state: bank the slot's unconsumed leftovers for the next
	// slot, within each node's memory budget.
	if e.bank != nil {
		if accepted := e.bank.Deposit(pool.Unconsumed()); accepted > 0 {
			tr.Incident(sched.IncidentBankDeposit, accepted)
		}
	}
	tr.PhaseDone(sched.PhaseStitch, time.Since(t0))
	tr.SlotEnd(res)
	return res, nil
}

// Algorithm identifies the scheme (sched.Contend unless overridden by
// Options.Algorithm for the fault-aware and offline variants).
func (e *Engine) Algorithm() sched.Algorithm { return e.opts.Algorithm }

// UpperBound returns the heuristic expected established count of the fixed
// plan (not an LP bound — the engine solves none).
func (e *Engine) UpperBound() float64 { return e.expected }

// AttachBank implements sched.Stateful: it installs the cross-slot segment
// bank (nil detaches, restoring memoryless behavior).
func (e *Engine) AttachBank(b *state.Bank) { e.bank = b }

// Bank implements sched.Stateful.
func (e *Engine) Bank() *state.Bank { return e.bank }

// PlannedPathCount reports how many entanglement paths the contention-aware
// selection accepted (diagnostics for tests and tools).
func (e *Engine) PlannedPathCount() int { return len(e.paths) }

// RecoveryReserved reports the total recovery attempts held in reserve per
// slot (diagnostics for tests and tools).
func (e *Engine) RecoveryReserved() int { return e.recovery.TotalAttempts() }
