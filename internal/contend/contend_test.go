package contend

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/xrand"
)

func buildInstance(t *testing.T, nodes, pairs int, seed int64) (*topo.Network, []topo.SDPair) {
	t.Helper()
	cfg := topo.DefaultConfig()
	cfg.Nodes = nodes
	return buildWith(t, cfg, pairs, seed)
}

func buildWith(t *testing.T, cfg topo.Config, pairs int, seed int64) (*topo.Network, []topo.SDPair) {
	t.Helper()
	net, err := topo.Generate(cfg, xrand.New(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return net, topo.ChooseSDPairs(net, pairs, xrand.New(seed+1))
}

func TestRunSlotInvariants(t *testing.T) {
	net, pairs := topo.Motivation()
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if got := eng.Algorithm(); got != sched.Contend {
		t.Errorf("Algorithm() = %v, want Contend", got)
	}
	if eng.UpperBound() <= 0 {
		t.Errorf("UpperBound() = %v, want > 0", eng.UpperBound())
	}
	rng := xrand.New(7)
	total := 0
	for s := 0; s < 30; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
		if res.PlannedPaths == 0 || res.Attempts == 0 {
			t.Errorf("slot %d: planned %d paths, %d attempts; want both > 0",
				s, res.PlannedPaths, res.Attempts)
		}
		if res.SegmentsCreated > res.Attempts {
			t.Errorf("created %d > attempts %d", res.SegmentsCreated, res.Attempts)
		}
		if res.Established > res.Assembled {
			t.Errorf("established %d > assembled %d", res.Established, res.Assembled)
		}
		sum := 0
		for _, c := range res.PerPair {
			sum += c
		}
		if sum != res.Established || len(res.Connections) != res.Established {
			t.Errorf("PerPair sum %d / %d connections != Established %d",
				sum, len(res.Connections), res.Established)
		}
		for _, c := range res.Connections {
			if err := c.Validate(); err != nil {
				t.Errorf("slot %d: invalid connection: %v", s, err)
			}
		}
		total += res.Established
	}
	if total == 0 {
		t.Error("no connections established in 30 slots")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	net, pairs := buildInstance(t, 40, 8, 11)
	run := func() []sched.SlotResult {
		eng, err := NewEngine(net, pairs, DefaultOptions())
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		rng := xrand.New(42)
		var out []sched.SlotResult
		for s := 0; s < 10; s++ {
			res, err := eng.RunSlot(rng)
			if err != nil {
				t.Fatalf("RunSlot: %v", err)
			}
			out = append(out, *res)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different runs")
	}
}

// TestPlanRespectsResources recounts the fixed plan — primary and recovery
// reservations together — against the network's channel and memory
// capacities: the contention accounting must never overshoot c_uv on any
// link or m_u at any node.
func TestPlanRespectsResources(t *testing.T) {
	net, pairs := buildInstance(t, 50, 10, 3)
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	channels := make([]int, net.NumLinks())
	memory := make([]int, net.NumNodes())
	for c, n := range eng.plan {
		for _, id := range c.EdgeIDs {
			channels[id] += n
		}
		memory[c.U()] += n
		memory[c.V()] += n
	}
	for c, n := range eng.recovery {
		for _, id := range c.EdgeIDs {
			channels[id] += n
		}
		memory[c.U()] += n
		memory[c.V()] += n
	}
	for id, used := range channels {
		if used > net.Channels[id] {
			t.Errorf("link %d: %d attempts reserved, capacity %d", id, used, net.Channels[id])
		}
	}
	for u, used := range memory {
		if used > net.Memory[u] {
			t.Errorf("node %d: %d memory units reserved, capacity %d", u, used, net.Memory[u])
		}
	}
}

// diamond builds a 4-node fixture where the pair (0, 3) has two
// edge-disjoint 2-hop realizations (via node 1 and via node 2), so a
// recovery reservation is always available disjointly from the primary.
// Link lengths put each realization at roughly 30% success so primary
// attempts fail whole slots often enough for recovery to fire.
func diamond() (*topo.Network, []topo.SDPair) {
	const linkLen = 3000.0 // αl = 0.6 per link → p(2 hops) = e^{−1.2} ≈ 0.30
	net := &topo.Network{
		G:        graph.New(4),
		Pos:      make([][2]float64, 4),
		Memory:   []int{10, 10, 10, 10},
		SwapProb: []float64{0.9, 0.9, 0.9, 0.9},
	}
	for _, l := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		net.G.AddEdge(l[0], l[1], linkLen)
		net.LinkLen = append(net.LinkLen, linkLen)
		net.Channels = append(net.Channels, 8)
	}
	net.SetProber(topo.ExpProber{Alpha: 2e-4, Delta: 0})
	return net, []topo.SDPair{{S: 0, D: 3}}
}

// TestRecoveryFires drives enough slots that some hop's primary attempts
// all fail while its reserved recovery realization succeeds; the engine
// must report the activations through IncidentRecovery.
func TestRecoveryFires(t *testing.T) {
	net, pairs := diamond()
	tr := sched.NewCountingTracer()
	opts := DefaultOptions()
	opts.Tracer = tr
	eng, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if eng.RecoveryReserved() == 0 {
		t.Fatal("no recovery attempts reserved on the diamond fixture")
	}
	rng := xrand.New(9)
	for s := 0; s < 40; s++ {
		if _, err := eng.RunSlot(rng); err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
	}
	if got := tr.Counts().IncidentCount(sched.IncidentRecovery); got == 0 {
		t.Error("recovery attempts never fired in 40 slots")
	}
}

// TestRecoveryDisabled checks RecoveryAttempts = 0 reserves nothing and
// still runs.
func TestRecoveryDisabled(t *testing.T) {
	net, pairs := buildInstance(t, 40, 8, 6)
	opts := DefaultOptions()
	opts.RecoveryAttempts = -1 // normalized to 0
	eng, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if eng.RecoveryReserved() != 0 {
		t.Errorf("RecoveryReserved() = %d with recovery disabled", eng.RecoveryReserved())
	}
	if _, err := eng.RunSlot(xrand.New(1)); err != nil {
		t.Fatalf("RunSlot: %v", err)
	}
}

// TestCarryOverConservation attaches a bank and checks the memory
// accounting invariant after every slot, plus that carried segments
// reduce the slot's primary attempt demand.
func TestCarryOverConservation(t *testing.T) {
	net, pairs := buildInstance(t, 40, 8, 8)
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	bank := state.NewBank(net, state.Policy{CarrySlots: 2})
	eng.AttachBank(bank)
	if eng.Bank() != bank {
		t.Fatal("Bank() did not return the attached bank")
	}
	rng := xrand.New(3)
	baseline := eng.plan.TotalAttempts() + eng.recovery.TotalAttempts()
	trimmed := false
	for s := 0; s < 20; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
		if err := bank.CheckConservation(); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		if res.Attempts < baseline {
			trimmed = true
		}
	}
	if bank.Stats().Deposited == 0 {
		t.Error("bank never accepted a deposit in 20 slots")
	}
	if !trimmed {
		t.Error("carried segments never trimmed the attempt plan")
	}
}

// planLinks collects every fibre link id charged by the primary or
// recovery plan.
func planLinks(e *Engine) map[int]bool {
	used := make(map[int]bool)
	for c := range e.plan {
		for _, id := range c.EdgeIDs {
			used[id] = true
		}
	}
	for c := range e.recovery {
		for _, id := range c.EdgeIDs {
			used[id] = true
		}
	}
	return used
}

// TestPlanCapacityOverrides checks that PlanChannels/PlanMemory replace
// the network tables as the selection loop's starting residuals: zeroing
// an announced link's planning capacity must push every reservation off
// that link, and shrinking an endpoint memory must cap the per-pair
// connection count, while the true topology tables stay untouched.
func TestPlanCapacityOverrides(t *testing.T) {
	net, pairs := buildInstance(t, 50, 10, 3)
	base, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var dead int
	for id := range planLinks(base) {
		dead = id
		break
	}
	opts := DefaultOptions()
	opts.Algorithm = sched.ContendAware
	opts.PlanChannels = append([]int(nil), net.Channels...)
	opts.PlanChannels[dead] = 0
	opts.PlanMemory = append([]int(nil), net.Memory...)
	opts.PlanMemory[pairs[0].S] = 1
	aware, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatalf("NewEngine(aware): %v", err)
	}
	if got := aware.Algorithm(); got != sched.ContendAware {
		t.Errorf("Algorithm() = %v, want ContendAware", got)
	}
	if planLinks(aware)[dead] {
		t.Errorf("plan reserves attempts on link %d despite zero planning capacity", dead)
	}
	if got := aware.ConnCap[0]; got != 1 {
		t.Errorf("ConnCap[0] = %d with planning memory 1, want 1", got)
	}
	if !reflect.DeepEqual(net.Channels[dead], base.Net.Channels[dead]) {
		t.Error("override mutated the network's channel table")
	}
}

// planSig renders an attempt plan in a pointer-free canonical form so
// plans built from different segment.Build calls (distinct Candidate
// pointers) can be compared.
func planSig(plan qnet.AttemptPlan) string {
	var sb strings.Builder
	for _, c := range plan.SortedCandidates() {
		fmt.Fprintf(&sb, "%v=%d;", c.Path, plan[c])
	}
	return sb.String()
}

// TestOfflinePlan locks the Q-PASS-style offline mode: it plans against
// the full fault-free topology (the capacity overrides are ignored), the
// fixed plan still respects the true resources, and construction is
// deterministic.
func TestOfflinePlan(t *testing.T) {
	net, pairs := buildInstance(t, 50, 10, 3)
	build := func() *Engine {
		opts := DefaultOptions()
		opts.Offline = true
		opts.Algorithm = sched.QPass
		eng, err := NewEngine(net, pairs, opts)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return eng
	}
	eng := build()
	if got := eng.Algorithm(); got != sched.QPass {
		t.Errorf("Algorithm() = %v, want QPass", got)
	}
	if eng.PlannedPathCount() == 0 {
		t.Fatal("offline planner accepted no paths")
	}
	channels := make([]int, net.NumLinks())
	memory := make([]int, net.NumNodes())
	charge := func(plan qnet.AttemptPlan) {
		for c, n := range plan {
			for _, id := range c.EdgeIDs {
				channels[id] += n
			}
			memory[c.U()] += n
			memory[c.V()] += n
		}
	}
	charge(eng.plan)
	charge(eng.recovery)
	for id, used := range channels {
		if used > net.Channels[id] {
			t.Errorf("link %d: %d attempts reserved, capacity %d", id, used, net.Channels[id])
		}
	}
	for u, used := range memory {
		if used > net.Memory[u] {
			t.Errorf("node %d: %d memory units reserved, capacity %d", u, used, net.Memory[u])
		}
	}
	// The offline contrast must ignore the forecast: a capacity override
	// that would reroute the online planner leaves the offline plan
	// byte-identical.
	opts := DefaultOptions()
	opts.Offline = true
	opts.Algorithm = sched.QPass
	opts.PlanChannels = make([]int, net.NumLinks()) // everything "announced dead"
	blind, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatalf("NewEngine(blind): %v", err)
	}
	if planSig(blind.plan) != planSig(eng.plan) || planSig(blind.recovery) != planSig(eng.recovery) {
		t.Error("offline plan consulted the capacity overrides")
	}
	if _, err := eng.RunSlot(xrand.New(5)); err != nil {
		t.Fatalf("RunSlot: %v", err)
	}
	again := build()
	if planSig(again.plan) != planSig(eng.plan) {
		t.Error("offline planning is not deterministic")
	}
}

// TestForecastAvoidedIncident checks that a positive ForecastAvoided
// count is reported through the tracer every slot.
func TestForecastAvoidedIncident(t *testing.T) {
	net, pairs := topo.Motivation()
	tr := sched.NewCountingTracer()
	opts := DefaultOptions()
	opts.Tracer = tr
	opts.ForecastAvoided = 3
	eng, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := xrand.New(2)
	for s := 0; s < 4; s++ {
		if _, err := eng.RunSlot(rng); err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
	}
	if got := tr.Counts().IncidentCount(sched.IncidentForecastAvoid); got != 12 {
		t.Errorf("IncidentForecastAvoid total = %d over 4 slots, want 12", got)
	}
}
