package contend

import (
	"reflect"
	"testing"

	"see/internal/graph"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/xrand"
)

func buildInstance(t *testing.T, nodes, pairs int, seed int64) (*topo.Network, []topo.SDPair) {
	t.Helper()
	cfg := topo.DefaultConfig()
	cfg.Nodes = nodes
	return buildWith(t, cfg, pairs, seed)
}

func buildWith(t *testing.T, cfg topo.Config, pairs int, seed int64) (*topo.Network, []topo.SDPair) {
	t.Helper()
	net, err := topo.Generate(cfg, xrand.New(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return net, topo.ChooseSDPairs(net, pairs, xrand.New(seed+1))
}

func TestRunSlotInvariants(t *testing.T) {
	net, pairs := topo.Motivation()
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if got := eng.Algorithm(); got != sched.Contend {
		t.Errorf("Algorithm() = %v, want Contend", got)
	}
	if eng.UpperBound() <= 0 {
		t.Errorf("UpperBound() = %v, want > 0", eng.UpperBound())
	}
	rng := xrand.New(7)
	total := 0
	for s := 0; s < 30; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
		if res.PlannedPaths == 0 || res.Attempts == 0 {
			t.Errorf("slot %d: planned %d paths, %d attempts; want both > 0",
				s, res.PlannedPaths, res.Attempts)
		}
		if res.SegmentsCreated > res.Attempts {
			t.Errorf("created %d > attempts %d", res.SegmentsCreated, res.Attempts)
		}
		if res.Established > res.Assembled {
			t.Errorf("established %d > assembled %d", res.Established, res.Assembled)
		}
		sum := 0
		for _, c := range res.PerPair {
			sum += c
		}
		if sum != res.Established || len(res.Connections) != res.Established {
			t.Errorf("PerPair sum %d / %d connections != Established %d",
				sum, len(res.Connections), res.Established)
		}
		for _, c := range res.Connections {
			if err := c.Validate(); err != nil {
				t.Errorf("slot %d: invalid connection: %v", s, err)
			}
		}
		total += res.Established
	}
	if total == 0 {
		t.Error("no connections established in 30 slots")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	net, pairs := buildInstance(t, 40, 8, 11)
	run := func() []sched.SlotResult {
		eng, err := NewEngine(net, pairs, DefaultOptions())
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		rng := xrand.New(42)
		var out []sched.SlotResult
		for s := 0; s < 10; s++ {
			res, err := eng.RunSlot(rng)
			if err != nil {
				t.Fatalf("RunSlot: %v", err)
			}
			out = append(out, *res)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different runs")
	}
}

// TestPlanRespectsResources recounts the fixed plan — primary and recovery
// reservations together — against the network's channel and memory
// capacities: the contention accounting must never overshoot c_uv on any
// link or m_u at any node.
func TestPlanRespectsResources(t *testing.T) {
	net, pairs := buildInstance(t, 50, 10, 3)
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	channels := make([]int, net.NumLinks())
	memory := make([]int, net.NumNodes())
	for c, n := range eng.plan {
		for _, id := range c.EdgeIDs {
			channels[id] += n
		}
		memory[c.U()] += n
		memory[c.V()] += n
	}
	for c, n := range eng.recovery {
		for _, id := range c.EdgeIDs {
			channels[id] += n
		}
		memory[c.U()] += n
		memory[c.V()] += n
	}
	for id, used := range channels {
		if used > net.Channels[id] {
			t.Errorf("link %d: %d attempts reserved, capacity %d", id, used, net.Channels[id])
		}
	}
	for u, used := range memory {
		if used > net.Memory[u] {
			t.Errorf("node %d: %d memory units reserved, capacity %d", u, used, net.Memory[u])
		}
	}
}

// diamond builds a 4-node fixture where the pair (0, 3) has two
// edge-disjoint 2-hop realizations (via node 1 and via node 2), so a
// recovery reservation is always available disjointly from the primary.
// Link lengths put each realization at roughly 30% success so primary
// attempts fail whole slots often enough for recovery to fire.
func diamond() (*topo.Network, []topo.SDPair) {
	const linkLen = 3000.0 // αl = 0.6 per link → p(2 hops) = e^{−1.2} ≈ 0.30
	net := &topo.Network{
		G:        graph.New(4),
		Pos:      make([][2]float64, 4),
		Memory:   []int{10, 10, 10, 10},
		SwapProb: []float64{0.9, 0.9, 0.9, 0.9},
	}
	for _, l := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		net.G.AddEdge(l[0], l[1], linkLen)
		net.LinkLen = append(net.LinkLen, linkLen)
		net.Channels = append(net.Channels, 8)
	}
	net.SetProber(topo.ExpProber{Alpha: 2e-4, Delta: 0})
	return net, []topo.SDPair{{S: 0, D: 3}}
}

// TestRecoveryFires drives enough slots that some hop's primary attempts
// all fail while its reserved recovery realization succeeds; the engine
// must report the activations through IncidentRecovery.
func TestRecoveryFires(t *testing.T) {
	net, pairs := diamond()
	tr := sched.NewCountingTracer()
	opts := DefaultOptions()
	opts.Tracer = tr
	eng, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if eng.RecoveryReserved() == 0 {
		t.Fatal("no recovery attempts reserved on the diamond fixture")
	}
	rng := xrand.New(9)
	for s := 0; s < 40; s++ {
		if _, err := eng.RunSlot(rng); err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
	}
	if got := tr.Counts().IncidentCount(sched.IncidentRecovery); got == 0 {
		t.Error("recovery attempts never fired in 40 slots")
	}
}

// TestRecoveryDisabled checks RecoveryAttempts = 0 reserves nothing and
// still runs.
func TestRecoveryDisabled(t *testing.T) {
	net, pairs := buildInstance(t, 40, 8, 6)
	opts := DefaultOptions()
	opts.RecoveryAttempts = -1 // normalized to 0
	eng, err := NewEngine(net, pairs, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if eng.RecoveryReserved() != 0 {
		t.Errorf("RecoveryReserved() = %d with recovery disabled", eng.RecoveryReserved())
	}
	if _, err := eng.RunSlot(xrand.New(1)); err != nil {
		t.Fatalf("RunSlot: %v", err)
	}
}

// TestCarryOverConservation attaches a bank and checks the memory
// accounting invariant after every slot, plus that carried segments
// reduce the slot's primary attempt demand.
func TestCarryOverConservation(t *testing.T) {
	net, pairs := buildInstance(t, 40, 8, 8)
	eng, err := NewEngine(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	bank := state.NewBank(net, state.Policy{CarrySlots: 2})
	eng.AttachBank(bank)
	if eng.Bank() != bank {
		t.Fatal("Bank() did not return the attached bank")
	}
	rng := xrand.New(3)
	baseline := eng.plan.TotalAttempts() + eng.recovery.TotalAttempts()
	trimmed := false
	for s := 0; s < 20; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			t.Fatalf("RunSlot: %v", err)
		}
		if err := bank.CheckConservation(); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		if res.Attempts < baseline {
			trimmed = true
		}
	}
	if bank.Stats().Deposited == 0 {
		t.Error("bank never accepted a deposit in 20 slots")
	}
	if !trimmed {
		t.Error("carried segments never trimmed the attempt plan")
	}
}
