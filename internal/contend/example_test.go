package contend_test

import (
	"fmt"

	"see/internal/contend"
	"see/internal/topo"
	"see/internal/xrand"
)

// Example runs the contention-aware engine on the paper's Fig. 2 fixture.
// Path selection and the contention accounting are deterministic at
// construction; the rng drives only segment attempts, recovery attempts
// and swaps, so a fixed seed reproduces the slot exactly.
func Example() {
	net, pairs := topo.Motivation()
	eng, err := contend.NewEngine(net, pairs, contend.DefaultOptions())
	if err != nil {
		panic(err)
	}
	res, err := eng.RunSlot(xrand.New(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", eng.Algorithm())
	fmt.Printf("planned=%d established=%d\n", res.PlannedPaths, res.Established)
	// Output:
	// algorithm: Contend
	// planned=2 established=2
}
