package e2e

import (
	"testing"

	"see/internal/topo"
	"see/internal/xrand"
)

func TestNewEngineValidation(t *testing.T) {
	net, pairs := topo.Motivation()
	if _, err := NewEngine(nil, pairs, Options{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewEngine(net, nil, Options{}); err == nil {
		t.Fatal("empty pairs accepted")
	}
}

func TestE2EConnectionsAreSingleSegment(t *testing.T) {
	net, pairs := topo.Motivation()
	e, err := NewEngine(net, pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	sawConnection := false
	for slot := 0; slot < 200; slot++ {
		res, err := e.RunSlot(rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, conn := range res.Connections {
			sawConnection = true
			if len(conn.Segments) != 1 {
				t.Fatalf("E2E built a %d-segment connection", len(conn.Segments))
			}
			if len(conn.Junctions()) != 0 {
				t.Fatal("E2E connection has swap junctions")
			}
			sd := e.Core().Pairs[conn.Pair]
			if conn.Nodes[0] != sd.S || conn.Nodes[len(conn.Nodes)-1] != sd.D {
				t.Fatal("E2E connection endpoints wrong")
			}
		}
	}
	if !sawConnection {
		t.Fatal("E2E never established anything on the motivation fixture")
	}
}

// E2E throughput on the motivation fixture: each pair's best full-path
// segment succeeds with probability 0.8 (s2-r1-d2) and 0.75 (s1-r1-r2-d1),
// but the two share channel s?—r1? No: they share no link, yet memory at
// the shared repeater is not needed. Mean throughput should sit near the
// sum of whichever plans EPI makes; just require a sane band strictly
// above zero and at most 2.
func TestE2EMotivationThroughputBand(t *testing.T) {
	net, pairs := topo.Motivation()
	e, err := NewEngine(net, pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	const slots = 3000
	total := 0
	for i := 0; i < slots; i++ {
		res, err := e.RunSlot(rng)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Established
	}
	mean := float64(total) / slots
	if mean <= 0.3 || mean > 2 {
		t.Fatalf("E2E mean throughput %.3f outside (0.3, 2]", mean)
	}
}

// E2E must degrade with SD-pair distance much faster than SEE: on a long
// line with realistic attenuation, the full-path success probability is
// tiny.
func TestE2ESuffersOnLongPaths(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 50
	net, err := topo.Generate(cfg, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 5, xrand.New(9))
	e, err := NewEngine(net, pairs, Options{KPaths: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(10)
	total := 0
	const slots = 50
	for i := 0; i < slots; i++ {
		res, err := e.RunSlot(rng)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Established
	}
	// Soft bound: with mean link prob ~0.8 and multi-hop SD pairs, E2E
	// cannot possibly saturate the per-pair caps; it usually establishes
	// only a few connections per slot.
	if float64(total)/slots > float64(len(pairs))*3 {
		t.Fatalf("E2E unexpectedly strong: %v per slot", float64(total)/slots)
	}
}
