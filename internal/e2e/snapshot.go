package e2e

import "see/internal/sched"

var _ sched.Checkpointable = (*Engine)(nil)

// EngineState implements sched.Checkpointable by delegating to the
// restricted SEE engine, which already reports sched.E2E as its scheme.
func (e *Engine) EngineState() (*sched.EngineState, error) {
	return e.inner.EngineState()
}

// RestoreEngineState implements sched.Checkpointable.
func (e *Engine) RestoreEngineState(st *sched.EngineState) error {
	return e.inner.RestoreEngineState(st)
}
