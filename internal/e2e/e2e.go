// Package e2e implements the all-optical-switching-only baseline from the
// paper's evaluation: every entanglement connection is a single entanglement
// segment spanning the whole physical path from source to destination, with
// no quantum swapping. It is the "only all-optical switching" extreme of
// SEE (§IV-A), so it reuses the SEE engine with candidates restricted to
// full SD paths.
package e2e

import (
	"context"
	"math/rand"

	"see/internal/chaos"
	"see/internal/core"
	"see/internal/qnet"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
)

// Options tunes the baseline.
type Options struct {
	// KPaths is the number of candidate physical routes per SD pair.
	// The default is 1: the paper's E2E strawman sends photons over the
	// shortest physical route only (larger values make E2E a noticeably
	// stronger scheme than the one the paper compares against; see the
	// ablation bench).
	KPaths int
	// Workers bounds the goroutines of the LP pricing rounds
	// (see flow.Options.Workers).
	Workers int
	// Tracer observes the slot pipeline; nil means no instrumentation.
	Tracer sched.Tracer
	// Chaos injects deterministic faults into the physical phase; see the
	// matching field in core.Options.
	Chaos *chaos.Injector
	// Warm memoizes candidate sets and LP solutions across rebuilds; see
	// the matching field in core.Options. E2E's restricted segment options
	// key its cache entries separately from full SEE's.
	Warm *warm.Cache
	// FidelityFloors is the per-request minimum delivered end-to-end
	// fidelity; see the matching field in core.Options. E2E connections
	// have no swaps, so only transmission depolarization (and banked age
	// decay) can miss a floor.
	FidelityFloors *qnet.FloorSpec
	// SwapOrder is accepted for configuration uniformity; E2E connections
	// have no junctions, so both orders are the same no-op.
	SwapOrder qnet.SwapOrder
}

// Engine runs E2E time slots.
type Engine struct {
	inner *core.Engine
}

var _ sched.Stateful = (*Engine)(nil)

// NewEngine builds the E2E baseline over the network.
func NewEngine(net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	return NewEngineCtx(nil, net, pairs, opts)
}

// NewEngineCtx is NewEngine with the LP solve bounded by a context
// (nil = never cancelled); see core.NewEngineCtx.
func NewEngineCtx(ctx context.Context, net *topo.Network, pairs []topo.SDPair, opts Options) (*Engine, error) {
	coreOpts := core.DefaultOptions()
	coreOpts.Segment.FullPathOnly = true
	coreOpts.Segment.MinProb = 0 // E2E keeps attempting even hopeless routes
	coreOpts.Segment.KPaths = 1
	if opts.KPaths > 0 {
		coreOpts.Segment.KPaths = opts.KPaths
	}
	coreOpts.Algorithm = sched.E2E
	coreOpts.Flow.Workers = opts.Workers
	coreOpts.Tracer = opts.Tracer
	coreOpts.Chaos = opts.Chaos
	coreOpts.Warm = opts.Warm
	coreOpts.FidelityFloors = opts.FidelityFloors
	coreOpts.SwapOrder = opts.SwapOrder
	inner, err := core.NewEngineCtx(ctx, net, pairs, coreOpts)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// RunSlot simulates one time slot.
func (e *Engine) RunSlot(rng *rand.Rand) (*sched.SlotResult, error) {
	return e.inner.RunSlot(rng)
}

// Algorithm identifies the scheme.
func (e *Engine) Algorithm() sched.Algorithm { return sched.E2E }

// UpperBound returns the LP bound of the restricted model.
func (e *Engine) UpperBound() float64 { return e.inner.UpperBound() }

// Core exposes the underlying engine for diagnostics.
func (e *Engine) Core() *core.Engine { return e.inner }

// AttachBank implements sched.Stateful by delegating to the restricted SEE
// engine (E2E's single-segment connections bank like any other).
func (e *Engine) AttachBank(b *state.Bank) { e.inner.AttachBank(b) }

// Bank implements sched.Stateful.
func (e *Engine) Bank() *state.Bank { return e.inner.Bank() }
