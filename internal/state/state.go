// Package state is the cross-slot entanglement-state subsystem: a Bank of
// realized-but-unconsumed entanglement segments that survive the slot
// boundary instead of being discarded when the slot ends.
//
// The paper's engines are memoryless across slots — every slot re-rounds
// from the cached LP and throws away realized segments that no connection
// consumed, even though the photons are still sitting in quantum memory.
// The Bank models that idle inter-slot storage:
//
//	realized ──deposit──► banked ──withdraw──► carried into the next slot
//	                         │
//	                         └──decohere──► lost (age window or hashed
//	                                        per-boundary survival draw)
//
// Lifecycle and accounting rules (see DESIGN.md §6 for the full state
// model):
//
//   - Deposit accepts a segment only while both endpoints have free banked
//     memory: the number of banked photons at node u never exceeds the
//     node's memory size m_u. Rejected segments are discarded (photons
//     released), never silently over-committed.
//   - BeginSlot advances the bank's slot clock. A banked segment survives
//     at most Policy.CarrySlots slot boundaries (its age window); past
//     that, its memory decoheres deterministically. While inside the
//     window it additionally survives each boundary with probability
//     1−Policy.Decoherence, decided by the same seeded hash scheme as
//     internal/chaos — never by an engine's rng — so carried runs stay
//     reproducible from (engine seed, fault plan, policy) alone.
//   - WithdrawAll hands every surviving segment to the engine for the new
//     slot and releases the banked memory. Withdrawn segments the slot
//     does not consume may be re-deposited; they keep their original
//     creation slot, so the age window measures true segment age and a
//     segment can never ride the bank forever.
//
// Engines expose the capability through sched.Stateful and gate every
// bank interaction on the bank being attached: a nil bank (carry-over
// disabled) leaves each engine byte-identical to the memoryless code
// path, the same discipline internal/chaos applies to zero fault plans.
package state

import (
	"fmt"
	"math"
	"sort"

	"see/internal/chaos"
	"see/internal/qnet"
	"see/internal/segment"
	"see/internal/topo"
)

// hashKindBank namespaces the bank's decoherence hash stream away from the
// chaos injector's streams (0xdec0 segment decoherence, 0x10e5 message
// loss).
const hashKindBank = 0xca44

// Policy tunes cross-slot carry-over.
type Policy struct {
	// CarrySlots is the decoherence window: the number of slot boundaries
	// a banked segment survives before its quantum memory decoheres
	// deterministically. 1 means a segment realized in slot t is usable
	// in slot t+1 but never t+2. Values <= 0 select the default window
	// of 1.
	CarrySlots int
	// Decoherence is the per-boundary stochastic hazard: inside the age
	// window, each banked segment is additionally lost at every slot
	// boundary with this probability. It is wired to the chaos fault
	// plan's decoherence knob — a zero (or absent) plan means zero, so
	// bank survival is then a pure function of the age window.
	Decoherence float64
	// Seed drives the stochastic survival hash stream (the fault plan's
	// seed when carry-over runs under a fault plan).
	Seed int64
	// WernerRetention, when in (0,1), is the per-boundary age decay of a
	// banked segment's Werner parameter: a segment withdrawn n slot
	// boundaries after its creation carries Werner scale retention^n
	// (qnet.Segment.WernerScale), so carried segments arrive degraded.
	// 0 (or >= 1) disables decay — withdrawn segments stay pristine and
	// the fidelity pipeline is byte-identical to the pre-decay behavior.
	WernerRetention float64
	// MinWernerScale is the substitution threshold of the bank's TrimPlan:
	// a withdrawn segment whose decayed Werner scale fell below it no
	// longer substitutes for planned creation attempts (the engine re-plans
	// fresh attempts instead of leaning on a degraded photon). 0 keeps
	// every withdrawn segment substituting, as before.
	MinWernerScale float64
}

func (p Policy) window() int {
	if p.CarrySlots <= 0 {
		return 1
	}
	return p.CarrySlots
}

// Stats tallies a bank's lifetime activity.
type Stats struct {
	// Deposited counts segments accepted into the bank.
	Deposited int
	// Rejected counts deposit candidates refused for lack of banked
	// memory at an endpoint.
	Rejected int
	// Withdrawn counts segments handed back to an engine at slot start.
	Withdrawn int
	// Expired counts banked segments lost to the age window.
	Expired int
	// Decohered counts banked segments lost to the stochastic
	// per-boundary hazard.
	Decohered int
}

// Lost sums the decoherence losses (age window + stochastic hazard).
func (s Stats) Lost() int { return s.Expired + s.Decohered }

// entry is one banked segment with its provenance.
type entry struct {
	seg *qnet.Segment
	// birth is the slot the segment was realized in (preserved across
	// re-deposits of a withdrawn-but-unconsumed segment).
	birth int
	// seq is the bank-global deposit sequence number driving the
	// stochastic survival hash.
	seq int
}

// Bank holds realized-but-unconsumed entanglement segments between slots,
// with per-entry age and memory-unit accounting against each node's m_u.
// It is not safe for concurrent use; attach one bank per engine (the same
// ownership rule as chaos.Injector). All read-only methods are safe on a
// nil receiver, which behaves as "carry-over disabled".
type Bank struct {
	net    *topo.Network
	policy Policy

	slot    int
	seq     int
	entries []entry
	// used is the banked memory units per node; invariant used[u] <= m_u.
	used []int
	// withdrawnBirth remembers, for the current slot only, the creation
	// slot of each withdrawn segment so an unconsumed re-deposit does not
	// reset its age.
	withdrawnBirth map[*qnet.Segment]int

	stats Stats
}

// NewBank builds an empty bank over the network's memory resources.
func NewBank(net *topo.Network, policy Policy) *Bank {
	return &Bank{
		net:    net,
		policy: policy,
		slot:   -1,
		used:   make([]int, net.NumNodes()),
	}
}

// Policy returns the bank's carry-over policy (with the window default
// resolved).
func (b *Bank) Policy() Policy {
	p := b.policy
	p.CarrySlots = p.window()
	return p
}

// Slot returns the current slot index (-1 before the first BeginSlot).
func (b *Bank) Slot() int {
	if b == nil {
		return -1
	}
	return b.slot
}

// Size returns the number of banked segments.
func (b *Bank) Size() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// MemoryUsed returns the banked memory units at node u.
func (b *Bank) MemoryUsed(u int) int {
	if b == nil {
		return 0
	}
	return b.used[u]
}

// Stats returns the lifetime tallies.
func (b *Bank) Stats() Stats {
	if b == nil {
		return Stats{}
	}
	return b.stats
}

// BeginSlot advances the slot clock and applies decoherence to the banked
// entries: segments older than the age window expire deterministically,
// and the survivors face the stochastic per-boundary hazard (hashed from
// (seed, slot, seq), never from an engine rng). It returns the number of
// segments lost at this boundary, split by cause. Engines call it at the
// top of RunSlot, before withdrawing.
func (b *Bank) BeginSlot() (expired, decohered int) {
	b.slot++
	b.withdrawnBirth = nil
	if len(b.entries) == 0 {
		return 0, 0
	}
	window := b.policy.window()
	kept := b.entries[:0]
	for _, e := range b.entries {
		switch {
		case b.slot-e.birth > window:
			expired++
			b.release(e.seg)
		case b.policy.Decoherence > 0 &&
			chaos.Hash01(b.policy.Seed, hashKindBank, b.slot, e.seq) < b.policy.Decoherence:
			decohered++
			b.release(e.seg)
		default:
			kept = append(kept, e)
		}
	}
	b.entries = kept
	b.stats.Expired += expired
	b.stats.Decohered += decohered
	return expired, decohered
}

// WithdrawAll removes every banked segment and returns them, oldest first
// (by creation slot, deposit sequence breaking ties — a re-deposited old
// segment outranks younger ones even though it re-entered the bank later),
// releasing their banked memory. The engine adds them to the slot's
// realized pool (and may shrink its attempt plan with TrimPlan); whatever
// the slot leaves unconsumed can be re-deposited with its age preserved.
func (b *Bank) WithdrawAll() []*qnet.Segment {
	if len(b.entries) == 0 {
		return nil
	}
	sort.SliceStable(b.entries, func(i, j int) bool {
		if b.entries[i].birth != b.entries[j].birth {
			return b.entries[i].birth < b.entries[j].birth
		}
		return b.entries[i].seq < b.entries[j].seq
	})
	out := make([]*qnet.Segment, len(b.entries))
	b.withdrawnBirth = make(map[*qnet.Segment]int, len(b.entries))
	decay := b.policy.WernerRetention > 0 && b.policy.WernerRetention < 1
	for i, e := range b.entries {
		if decay {
			// Recomputed from total age at every withdrawal (never
			// compounded on the stored scale), so a withdraw/re-deposit
			// cycle cannot double-apply a boundary.
			if age := b.slot - e.birth; age > 0 {
				e.seg.SetWernerScale(math.Pow(b.policy.WernerRetention, float64(age)))
			}
		}
		out[i] = e.seg
		b.withdrawnBirth[e.seg] = e.birth
		b.release(e.seg)
	}
	b.entries = b.entries[:0]
	b.stats.Withdrawn += len(out)
	return out
}

// Deposit banks the given segments, in order, while both endpoints of each
// have free banked memory; segments that do not fit are rejected (their
// photons are released, not stored). Consumed segments are skipped. It
// returns the number accepted. Callers pass segments in a deterministic
// order (qnet.Pool.Unconsumed) so the acceptance set is reproducible.
func (b *Bank) Deposit(segs []*qnet.Segment) int {
	accepted := 0
	for _, s := range segs {
		if s.Consumed() {
			continue
		}
		if b.used[s.A] >= b.net.Memory[s.A] || b.used[s.B] >= b.net.Memory[s.B] {
			b.stats.Rejected++
			continue
		}
		birth := b.slot
		if orig, ok := b.withdrawnBirth[s]; ok {
			birth = orig
		}
		b.used[s.A]++
		b.used[s.B]++
		b.entries = append(b.entries, entry{seg: s, birth: birth, seq: b.seq})
		b.seq++
		accepted++
	}
	b.stats.Deposited += accepted
	return accepted
}

// release frees the banked memory units of a segment leaving the bank.
func (b *Bank) release(s *qnet.Segment) {
	b.used[s.A]--
	b.used[s.B]--
}

// CheckConservation verifies the memory-accounting invariants: the per-node
// usage counters match the banked entries exactly and never exceed the
// node's memory size m_u. Tests call it after every slot of long
// fault-injected workloads.
func (b *Bank) CheckConservation() error {
	if b == nil {
		return nil
	}
	recount := make([]int, b.net.NumNodes())
	for _, e := range b.entries {
		recount[e.seg.A]++
		recount[e.seg.B]++
	}
	for u, n := range recount {
		if n != b.used[u] {
			return fmt.Errorf("state: node %d usage counter %d, entries say %d", u, b.used[u], n)
		}
		if n > b.net.Memory[u] {
			return fmt.Errorf("state: node %d banks %d units, memory size is %d", u, n, b.net.Memory[u])
		}
	}
	for u, n := range b.used {
		if recount[u] != n {
			return fmt.Errorf("state: node %d usage counter %d, entries say %d", u, n, recount[u])
		}
	}
	return nil
}

// TrimPlan reduces a slot's attempt plan by the withdrawn carried segments:
// each carried segment on endpoint pair ⟨u,v⟩ substitutes for one planned
// creation attempt on that pair (a certain segment strictly dominates a
// Bernoulli(p) attempt), so the reserve phase demands fewer channels and
// memory units. Candidates are trimmed in the plan's deterministic sorted
// order. The input plan is never mutated — engines cache their plans across
// slots — and is returned unchanged (same map) when nothing trims; the
// second result is the number of attempts removed.
func TrimPlan(plan qnet.AttemptPlan, withdrawn []*qnet.Segment) (qnet.AttemptPlan, int) {
	return TrimPlanMinScale(plan, withdrawn, 0)
}

// TrimPlanMinScale is TrimPlan with a substitution quality threshold:
// withdrawn segments whose decayed Werner scale (qnet.Segment.WernerScale)
// is below minScale do not substitute for planned attempts — a photon that
// degraded past the threshold is worth less than a fresh Bernoulli(p)
// attempt once delivered fidelity matters. minScale <= 0 keeps every
// withdrawn segment substituting (exactly TrimPlan).
func TrimPlanMinScale(plan qnet.AttemptPlan, withdrawn []*qnet.Segment, minScale float64) (qnet.AttemptPlan, int) {
	if len(withdrawn) == 0 || len(plan) == 0 {
		return plan, 0
	}
	avail := make(map[segment.PairKey]int, len(withdrawn))
	for _, s := range withdrawn {
		if minScale > 0 && s.WernerScale() < minScale {
			continue
		}
		avail[s.Pair()]++
	}
	var out qnet.AttemptPlan
	trimmed := 0
	for _, c := range plan.SortedCandidates() {
		pk := segment.MakePairKey(c.U(), c.V())
		w := avail[pk]
		if w == 0 {
			continue
		}
		cut := min(w, plan[c])
		if cut == 0 {
			continue
		}
		if out == nil {
			out = make(qnet.AttemptPlan, len(plan))
			for k, v := range plan {
				out[k] = v
			}
		}
		out[c] -= cut
		if out[c] == 0 {
			delete(out, c)
		}
		avail[pk] -= cut
		trimmed += cut
	}
	if out == nil {
		return plan, 0
	}
	return out, trimmed
}

// TrimPlan is the policy-aware trim engines call per slot: it applies
// Policy.MinWernerScale as the substitution threshold, so decayed carried
// segments stop displacing fresh creation attempts once the policy says
// they are too degraded. A nil bank (carry-over disabled) or a zero
// threshold behaves exactly like the free TrimPlan.
func (b *Bank) TrimPlan(plan qnet.AttemptPlan, withdrawn []*qnet.Segment) (qnet.AttemptPlan, int) {
	if b == nil {
		return TrimPlan(plan, withdrawn)
	}
	return TrimPlanMinScale(plan, withdrawn, b.policy.MinWernerScale)
}
