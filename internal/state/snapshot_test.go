package state

import (
	"reflect"
	"testing"

	"see/internal/qnet"
	"see/internal/segment"
	"see/internal/topo"
)

// bankFixture returns a bank with a stochastic hazard plus a candidate
// catalogue over the motivation network so restored segments can re-link.
func bankFixture(t *testing.T) (*Bank, *segment.Set, *topo.Network) {
	t.Helper()
	net := motivationNet(t)
	set, err := segment.Build(net, []topo.SDPair{{S: 0, D: 3}}, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBank(net, Policy{CarrySlots: 3, Decoherence: 0.25, Seed: 7})
	return b, set, net
}

// candSeg realizes a segment over the catalogue's best candidate for (a,b).
func candSeg(t *testing.T, set *segment.Set, a, b int) *qnet.Segment {
	t.Helper()
	c := set.Best(a, b)
	if c == nil {
		t.Fatalf("no candidate for ⟨%d,%d⟩", a, b)
	}
	return &qnet.Segment{A: min(a, b), B: max(a, b), Cand: c}
}

// TestBankStateRestoreRoundTrip asserts the kill/resume contract: a bank
// restored from a mid-run snapshot loses and withdraws exactly the same
// segments, in the same order, as the uninterrupted bank.
func TestBankStateRestoreRoundTrip(t *testing.T) {
	b, set, _ := bankFixture(t)
	b.BeginSlot() // slot 0
	b.Deposit([]*qnet.Segment{candSeg(t, set, 0, 2), candSeg(t, set, 2, 3)})
	b.BeginSlot() // slot 1
	b.Deposit([]*qnet.Segment{candSeg(t, set, 0, 2)})

	snap := b.State()
	if snap == nil || snap.Slot != 1 || len(snap.Entries) == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Uninterrupted continuation.
	var wantLost [2]int
	wantLost[0], wantLost[1] = b.BeginSlot()
	wantOrder := describe(b.WithdrawAll())
	wantStats := b.Stats()

	// Resumed continuation: fresh bank + fresh catalogue (as a restarted
	// process would rebuild), restore, then the same slot.
	fresh, freshSet, _ := bankFixture(t)
	if err := fresh.Restore(snap, freshSet.CandidateFor); err != nil {
		t.Fatal(err)
	}
	if fresh.Slot() != 1 || fresh.Size() != len(snap.Entries) {
		t.Fatalf("restored slot %d size %d, want 1 and %d", fresh.Slot(), fresh.Size(), len(snap.Entries))
	}
	var gotLost [2]int
	gotLost[0], gotLost[1] = fresh.BeginSlot()
	if gotLost != wantLost {
		t.Fatalf("boundary losses diverge: %v vs %v", gotLost, wantLost)
	}
	withdrawn := fresh.WithdrawAll()
	if got := describe(withdrawn); !reflect.DeepEqual(got, wantOrder) {
		t.Fatalf("withdraw order diverges:\n got %v\nwant %v", got, wantOrder)
	}
	if got := fresh.Stats(); got != wantStats {
		t.Fatalf("stats diverge: %+v vs %+v", got, wantStats)
	}
	// Candidates must be re-linked to the fresh catalogue's objects.
	for _, s := range withdrawn {
		if s.Cand == nil {
			t.Fatal("restored segment lost its candidate")
		}
		if freshSet.CandidateFor(s.A, s.B, s.Cand.Path) != s.Cand {
			t.Fatal("restored candidate is not the fresh catalogue's object")
		}
	}
}

func describe(segs []*qnet.Segment) [][2]int {
	out := make([][2]int, len(segs))
	for i, s := range segs {
		out[i] = [2]int{s.A, s.B}
	}
	return out
}

// TestBankRestoreMismatch checks configuration mismatches surface as
// errors rather than silent divergence.
func TestBankRestoreMismatch(t *testing.T) {
	b, set, _ := bankFixture(t)
	b.BeginSlot()
	b.Deposit([]*qnet.Segment{candSeg(t, set, 0, 2)})
	snap := b.State()

	var nilBank *Bank
	if err := nilBank.Restore(snap, set.CandidateFor); err == nil {
		t.Error("nil bank accepted a non-nil snapshot")
	}
	if err := nilBank.Restore(nil, nil); err != nil {
		t.Errorf("nil bank rejected nil snapshot: %v", err)
	}

	fresh, _, _ := bankFixture(t)
	if err := fresh.Restore(snap, func(a, b int, path []int) *segment.Candidate { return nil }); err == nil {
		t.Error("restore succeeded with an unresolvable candidate")
	}
	if err := fresh.Restore(snap, nil); err == nil {
		t.Error("restore succeeded without a resolver")
	}
}

// TestBankRestoreNilResets asserts Restore(nil, nil) rewinds to the empty
// pre-first-slot bank.
func TestBankRestoreNilResets(t *testing.T) {
	b, set, _ := bankFixture(t)
	b.BeginSlot()
	b.Deposit([]*qnet.Segment{candSeg(t, set, 0, 2)})
	if err := b.Restore(nil, nil); err != nil {
		t.Fatal(err)
	}
	if b.Slot() != -1 || b.Size() != 0 || b.Stats() != (Stats{}) {
		t.Fatalf("after reset: slot %d size %d stats %+v", b.Slot(), b.Size(), b.Stats())
	}
	if err := b.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestBankStateSeqSurvival pins that the deposit sequence counter (the
// stochastic-hazard input) survives the round trip: two resumes of the same
// snapshot make identical future survival draws.
func TestBankStateSeqSurvival(t *testing.T) {
	b, set, _ := bankFixture(t)
	b.BeginSlot()
	b.Deposit([]*qnet.Segment{candSeg(t, set, 0, 2), candSeg(t, set, 2, 3)})
	snap := b.State()
	if snap.Seq != 2 {
		t.Fatalf("snapshot seq %d, want 2", snap.Seq)
	}
	fresh, freshSet, _ := bankFixture(t)
	if err := fresh.Restore(snap, freshSet.CandidateFor); err != nil {
		t.Fatal(err)
	}
	// New deposits must continue the sequence, not restart it.
	fresh.Deposit([]*qnet.Segment{candSeg(t, freshSet, 0, 3)})
	if st := fresh.State(); st.Seq != 3 || st.Entries[2].Seq != 2 {
		t.Fatalf("post-restore deposit got seq %d (counter %d), want 2 (3)", st.Entries[2].Seq, st.Seq)
	}
}
