package state

import (
	"math/rand"
	"testing"

	"see/internal/qnet"
)

// TestBankProperties drives randomized deposit / withdraw / re-deposit /
// slot-boundary sequences against the bank and checks after every
// operation that
//
//   - CheckConservation holds (usage counters match entries, never exceed
//     memory sizes),
//   - no entry outlives the CarrySlots age window, and
//   - WithdrawAll returns segments oldest-first (creation slot
//     non-decreasing, even across re-deposits).
func TestBankProperties(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := motivationNet(t)
			window := 1 + rng.Intn(3)
			pol := Policy{CarrySlots: window, Seed: seed}
			if rng.Intn(2) == 0 {
				pol.Decoherence = 0.2
			}
			b := NewBank(net, pol)
			b.BeginSlot()

			check := func(stage string) {
				t.Helper()
				if err := b.CheckConservation(); err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
				for _, e := range b.entries {
					if age := b.slot - e.birth; age > window {
						t.Fatalf("%s: entry born slot %d still banked at slot %d (window %d)",
							stage, e.birth, b.slot, window)
					}
				}
			}

			var carried []*qnet.Segment
			for op := 0; op < 400; op++ {
				switch rng.Intn(3) {
				case 0: // deposit fresh segments
					n := 1 + rng.Intn(4)
					segs := make([]*qnet.Segment, 0, n)
					for i := 0; i < n; i++ {
						a := rng.Intn(net.NumNodes())
						c := rng.Intn(net.NumNodes() - 1)
						if c >= a {
							c++
						}
						segs = append(segs, seg(a, c))
					}
					b.Deposit(segs)
					check("deposit")
				case 1: // slot boundary
					sizeBefore := b.Size()
					expired, decohered := b.BeginSlot()
					if lost := expired + decohered; lost > sizeBefore {
						t.Fatalf("boundary lost %d of %d banked segments", lost, sizeBefore)
					}
					carried = nil
					check("begin-slot")
				case 2: // withdraw, maybe re-deposit an unconsumed subset
					size := b.Size()
					out := b.WithdrawAll()
					if len(out) != size {
						t.Fatalf("withdrew %d of %d banked segments", len(out), size)
					}
					if b.Size() != 0 {
						t.Fatalf("%d segments left after WithdrawAll", b.Size())
					}
					check("withdraw")
					carried = out
					if len(carried) > 0 && rng.Intn(2) == 0 {
						keep := carried[:rng.Intn(len(carried)+1)]
						b.Deposit(keep)
						check("re-deposit")
					}
				}
			}
			_ = carried
		})
	}
}

// TestWithdrawOldestFirst pins the ordering contract directly: a withdrawn
// old segment re-deposited after younger ones still comes out first.
func TestWithdrawOldestFirst(t *testing.T) {
	net := motivationNet(t)
	b := NewBank(net, Policy{CarrySlots: 3})
	b.BeginSlot() // slot 0
	old := seg(0, 1)
	b.Deposit([]*qnet.Segment{old})

	b.BeginSlot() // slot 1
	out := b.WithdrawAll()
	if len(out) != 1 || out[0] != old {
		t.Fatalf("withdraw returned %v, want the slot-0 segment", out)
	}
	young := seg(2, 3)
	// Deposit the young segment first, then re-deposit the old one: deposit
	// order now disagrees with age order.
	b.Deposit([]*qnet.Segment{young, old})

	b.BeginSlot() // slot 2
	out = b.WithdrawAll()
	if len(out) != 2 {
		t.Fatalf("withdrew %d segments, want 2", len(out))
	}
	if out[0] != old || out[1] != young {
		t.Error("WithdrawAll is not oldest-first across re-deposits")
	}
}

// TestWithdrawalAges asserts the ordering property over the randomized
// walk too: every WithdrawAll result has non-decreasing creation slots.
func TestWithdrawalAges(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := motivationNet(t)
	b := NewBank(net, Policy{CarrySlots: 4})
	b.BeginSlot()
	for op := 0; op < 200; op++ {
		if rng.Intn(3) == 0 {
			b.BeginSlot()
		}
		a := rng.Intn(net.NumNodes())
		c := rng.Intn(net.NumNodes() - 1)
		if c >= a {
			c++
		}
		b.Deposit([]*qnet.Segment{seg(a, c)})
		if rng.Intn(4) != 0 {
			continue
		}
		births := make(map[*qnet.Segment]int, len(b.entries))
		for _, e := range b.entries {
			births[e.seg] = e.birth
		}
		out := b.WithdrawAll()
		for i := 1; i < len(out); i++ {
			if births[out[i-1]] > births[out[i]] {
				t.Fatalf("op %d: withdrawal out of age order: %d after %d",
					op, births[out[i-1]], births[out[i]])
			}
		}
		// Re-deposit a random prefix so later withdrawals see mixed ages.
		b.Deposit(out[:rng.Intn(len(out)+1)])
	}
}
