package state_test

import (
	"fmt"

	"see/internal/qnet"
	"see/internal/state"
	"see/internal/topo"
)

// Example walks one segment through the bank lifecycle: deposited at the
// end of slot 0, surviving the boundary into slot 1, withdrawn for reuse.
func Example() {
	net, _ := topo.Motivation()
	b := state.NewBank(net, state.Policy{CarrySlots: 2})

	b.BeginSlot() // slot 0
	s := &qnet.Segment{A: 0, B: 2}
	accepted := b.Deposit([]*qnet.Segment{s})
	fmt.Printf("slot 0: banked %d segment(s), node 0 uses %d memory unit(s)\n",
		accepted, b.MemoryUsed(0))

	expired, decohered := b.BeginSlot() // slot 1 boundary
	fmt.Printf("boundary: expired=%d decohered=%d\n", expired, decohered)

	carried := b.WithdrawAll()
	fmt.Printf("slot 1: withdrew %d segment(s), bank now holds %d\n",
		len(carried), b.Size())
	// Output:
	// slot 0: banked 1 segment(s), node 0 uses 1 memory unit(s)
	// boundary: expired=0 decohered=0
	// slot 1: withdrew 1 segment(s), bank now holds 0
}
