package state

import (
	"testing"

	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/segment"
	"see/internal/topo"
)

// seg builds a realized segment between a and b (no physical route needed
// for bank accounting).
func seg(a, b int) *qnet.Segment {
	if a > b {
		a, b = b, a
	}
	return &qnet.Segment{A: a, B: b}
}

// motivationNet returns the Fig. 2 fixture with every memory raised to 4
// units so bank tests control scarcity explicitly (the fixture's own
// memories are 1–2 units).
func motivationNet(t *testing.T) *topo.Network {
	t.Helper()
	net, _ := topo.Motivation()
	for i := range net.Memory {
		net.Memory[i] = 4
	}
	return net
}

func TestDepositRespectsMemory(t *testing.T) {
	net := motivationNet(t)
	// The motivation fixture gives every node the same memory size; cap
	// node 0 at 2 units to exercise rejection.
	net.Memory[0] = 2
	b := NewBank(net, Policy{})
	b.BeginSlot()

	segs := []*qnet.Segment{seg(0, 1), seg(0, 2), seg(0, 3), seg(1, 2)}
	accepted := b.Deposit(segs)
	// seg(0,3) must be rejected: node 0 is full after the first two.
	if accepted != 3 {
		t.Fatalf("accepted %d segments, want 3", accepted)
	}
	if got := b.MemoryUsed(0); got != 2 {
		t.Errorf("node 0 banks %d units, want 2", got)
	}
	if st := b.Stats(); st.Rejected != 1 || st.Deposited != 3 {
		t.Errorf("stats = %+v, want 1 rejection, 3 deposits", st)
	}
	if err := b.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestDepositSkipsConsumed(t *testing.T) {
	net := motivationNet(t)
	b := NewBank(net, Policy{})
	b.BeginSlot()
	s := seg(0, 1)
	pool := qnet.NewPool([]*qnet.Segment{s})
	pool.Take(s.Pair())
	if got := b.Deposit([]*qnet.Segment{s}); got != 0 {
		t.Fatalf("banked a consumed segment (accepted %d)", got)
	}
}

func TestAgeWindowExpiry(t *testing.T) {
	net := motivationNet(t)
	b := NewBank(net, Policy{CarrySlots: 2})
	b.BeginSlot() // slot 0
	b.Deposit([]*qnet.Segment{seg(0, 1)})

	// Boundaries 1 and 2 are inside the window; boundary 3 expires it.
	for slot := 1; slot <= 2; slot++ {
		if expired, decohered := b.BeginSlot(); expired+decohered != 0 {
			t.Fatalf("slot %d: lost %d+%d segments inside the window", slot, expired, decohered)
		}
	}
	expired, decohered := b.BeginSlot()
	if expired != 1 || decohered != 0 {
		t.Fatalf("expiry boundary lost (%d,%d), want (1,0)", expired, decohered)
	}
	if b.Size() != 0 {
		t.Errorf("bank still holds %d segments", b.Size())
	}
	if got := b.MemoryUsed(0); got != 0 {
		t.Errorf("expired segment still occupies %d units at node 0", got)
	}
}

func TestStochasticDecoherenceIsSeededAndExhaustive(t *testing.T) {
	net := motivationNet(t)
	// Decoherence 1 kills every banked segment at the first boundary.
	b := NewBank(net, Policy{CarrySlots: 10, Decoherence: 1, Seed: 7})
	b.BeginSlot()
	b.Deposit([]*qnet.Segment{seg(0, 1), seg(1, 2)})
	expired, decohered := b.BeginSlot()
	if expired != 0 || decohered != 2 {
		t.Fatalf("boundary lost (%d,%d), want (0,2)", expired, decohered)
	}

	// A fixed seed yields a fixed survivor set at intermediate hazard.
	survivors := func(seed int64) int {
		b := NewBank(net, Policy{CarrySlots: 10, Decoherence: 0.5, Seed: seed})
		b.BeginSlot()
		var segs []*qnet.Segment
		for i := 0; i < 6; i++ {
			segs = append(segs, seg(i%4, i%4+1))
		}
		b.Deposit(segs)
		b.BeginSlot()
		return b.Size()
	}
	if survivors(3) != survivors(3) {
		t.Error("same seed, different survivor count")
	}
}

func TestWithdrawPreservesAgeOnRedeposit(t *testing.T) {
	net := motivationNet(t)
	b := NewBank(net, Policy{CarrySlots: 1})
	b.BeginSlot() // slot 0
	s := seg(0, 1)
	b.Deposit([]*qnet.Segment{s})

	b.BeginSlot() // slot 1: inside the window
	got := b.WithdrawAll()
	if len(got) != 1 || got[0] != s {
		t.Fatalf("withdrew %v, want the deposited segment", got)
	}
	if b.MemoryUsed(0) != 0 || b.MemoryUsed(1) != 0 {
		t.Fatal("withdrawal did not release banked memory")
	}
	// Unconsumed: re-deposit. Birth must stay slot 0, so the segment
	// expires at the next boundary instead of living another full window.
	b.Deposit([]*qnet.Segment{s})
	if expired, _ := b.BeginSlot(); expired != 1 {
		t.Fatalf("re-deposited segment kept riding the bank (expired=%d)", expired)
	}
	if st := b.Stats(); st.Withdrawn != 1 || st.Expired != 1 {
		t.Errorf("stats = %+v, want 1 withdrawal and 1 expiry", st)
	}
}

func TestTrimPlan(t *testing.T) {
	c01 := &segment.Candidate{Path: graph.Path{0, 1}, Prob: 0.5}
	c01b := &segment.Candidate{Path: graph.Path{0, 2, 1}, Prob: 0.4}
	c23 := &segment.Candidate{Path: graph.Path{2, 3}, Prob: 0.9}
	plan := qnet.AttemptPlan{c01: 2, c01b: 3, c23: 1}

	// No withdrawals: the same map comes back, untrimmed.
	if got, n := TrimPlan(plan, nil); n != 0 || len(got) != 3 {
		t.Fatalf("empty trim changed the plan (n=%d)", n)
	}

	// Three carried ⟨0,1⟩ segments: candidates trim in sorted order —
	// c01 (path 0-1) before c01b (path 0-2-1) — and the original plan is
	// untouched.
	withdrawn := []*qnet.Segment{seg(0, 1), seg(0, 1), seg(0, 1)}
	got, n := TrimPlan(plan, withdrawn)
	if n != 3 {
		t.Fatalf("trimmed %d attempts, want 3", n)
	}
	if plan[c01] != 2 || plan[c01b] != 3 || plan[c23] != 1 {
		t.Fatal("TrimPlan mutated the input plan")
	}
	if _, ok := got[c01]; ok {
		t.Error("c01 should be fully trimmed away")
	}
	if got[c01b] != 2 {
		t.Errorf("c01b = %d attempts, want 2", got[c01b])
	}
	if got[c23] != 1 {
		t.Errorf("c23 = %d attempts, want 1 (untouched)", got[c23])
	}

	// A carried segment on a pair the plan does not cover trims nothing.
	if same, n := TrimPlan(plan, []*qnet.Segment{seg(5, 6)}); n != 0 || len(same) != 3 {
		t.Errorf("foreign-pair trim removed %d attempts", n)
	}
}

func TestConservationAcrossChurn(t *testing.T) {
	net := motivationNet(t)
	b := NewBank(net, Policy{CarrySlots: 2, Decoherence: 0.3, Seed: 11})
	b.BeginSlot()
	for slot := 0; slot < 40; slot++ {
		// Deposit a rotating set of segments, some of which will be
		// rejected once memories fill.
		var segs []*qnet.Segment
		for i := 0; i < 5; i++ {
			u := (slot + i) % net.NumNodes()
			v := (u + 1 + i%2) % net.NumNodes()
			if u != v {
				segs = append(segs, seg(u, v))
			}
		}
		b.Deposit(segs)
		if err := b.CheckConservation(); err != nil {
			t.Fatalf("slot %d after deposit: %v", slot, err)
		}
		b.BeginSlot()
		if err := b.CheckConservation(); err != nil {
			t.Fatalf("slot %d after boundary: %v", slot, err)
		}
		if slot%3 == 0 {
			b.WithdrawAll()
			if err := b.CheckConservation(); err != nil {
				t.Fatalf("slot %d after withdraw: %v", slot, err)
			}
		}
	}
	st := b.Stats()
	if st.Deposited == 0 || st.Withdrawn == 0 || st.Lost() == 0 {
		t.Errorf("churn exercised too little of the bank: %+v", st)
	}
}

func TestNilBankIsInert(t *testing.T) {
	var b *Bank
	if b.Size() != 0 || b.Slot() != -1 || b.MemoryUsed(0) != 0 {
		t.Error("nil bank reported state")
	}
	if (b.Stats() != Stats{}) {
		t.Error("nil bank reported stats")
	}
	if err := b.CheckConservation(); err != nil {
		t.Error(err)
	}
}
