package state

import (
	"errors"
	"fmt"

	"see/internal/graph"
	"see/internal/qnet"
	"see/internal/segment"
)

// BankedSegment is the serializable form of one banked entanglement segment.
// The segment's candidate realization is stored as its physical route: the
// candidate catalogue is rebuilt deterministically from configuration on
// restore, so the route is enough to re-link the segment to the identical
// *segment.Candidate in the fresh catalogue (pointer identity matters —
// SlotResult connections are compared structurally across kill/resume runs).
type BankedSegment struct {
	A int `json:"a"`
	B int `json:"b"`
	// Path is the candidate's physical node sequence, in its original
	// orientation; empty when the segment carries no candidate.
	Path []int `json:"path,omitempty"`
	// Birth is the slot the segment was realized in.
	Birth int `json:"birth"`
	// Seq is the bank-global deposit sequence number (drives the stochastic
	// survival hash, so it must survive a restore exactly).
	Seq int `json:"seq"`
}

// BankState is the full serializable state of a Bank: the slot clock, the
// deposit sequence counter, the lifetime tallies and every banked entry.
// Policy and network are configuration, rebuilt on restore, not state.
// Snapshots are valid only at slot boundaries (between a slot's deposits
// and the next BeginSlot) — the withdrawn-birth scratch map is dead there
// and is deliberately not captured.
type BankState struct {
	Slot    int             `json:"slot"`
	Seq     int             `json:"seq"`
	Stats   Stats           `json:"stats"`
	Entries []BankedSegment `json:"entries,omitempty"`
}

// CandidateResolver maps a banked segment's endpoints and physical route
// back to the candidate object of a freshly built catalogue. It returns nil
// when the catalogue has no such candidate (a topology/configuration
// mismatch). segment.Set.CandidateFor is the canonical implementation.
type CandidateResolver func(a, b int, path []int) *segment.Candidate

// State snapshots the bank. Safe on a nil receiver (returns nil, the
// "carry-over disabled" snapshot).
func (b *Bank) State() *BankState {
	if b == nil {
		return nil
	}
	st := &BankState{Slot: b.slot, Seq: b.seq, Stats: b.stats}
	for _, e := range b.entries {
		bs := BankedSegment{A: e.seg.A, B: e.seg.B, Birth: e.birth, Seq: e.seq}
		if e.seg.Cand != nil {
			bs.Path = append([]int(nil), e.seg.Cand.Path...)
		}
		st.Entries = append(st.Entries, bs)
	}
	return st
}

// Restore rewinds the bank to a snapshot, rebuilding each banked segment
// and re-linking its candidate through the resolver. Restore(nil) resets
// the bank to empty pre-first-slot state. Restoring a non-nil state into a
// nil bank is a configuration mismatch (the original run had carry-over
// enabled) and errors; the memory-conservation invariants are re-checked
// after the rebuild.
func (b *Bank) Restore(st *BankState, resolve CandidateResolver) error {
	if b == nil {
		if st == nil {
			return nil
		}
		return errors.New("state: cannot restore bank state into a nil bank (carry-over mismatch)")
	}
	if st == nil {
		st = &BankState{Slot: -1}
	}
	b.slot = st.Slot
	b.seq = st.Seq
	b.stats = st.Stats
	b.withdrawnBirth = nil
	b.entries = b.entries[:0]
	for i := range b.used {
		b.used[i] = 0
	}
	for _, bs := range st.Entries {
		seg := &qnet.Segment{A: bs.A, B: bs.B}
		if len(bs.Path) > 0 {
			if resolve == nil {
				return errors.New("state: bank snapshot has candidate routes but no resolver")
			}
			c := resolve(bs.A, bs.B, bs.Path)
			if c == nil {
				return fmt.Errorf("state: no candidate for banked segment ⟨%d,%d⟩ route %v (catalogue mismatch)", bs.A, bs.B, graph.Path(bs.Path))
			}
			seg.Cand = c
		}
		if bs.A < 0 || bs.B < 0 || bs.A >= b.net.NumNodes() || bs.B >= b.net.NumNodes() {
			return fmt.Errorf("state: banked segment endpoints ⟨%d,%d⟩ outside network", bs.A, bs.B)
		}
		b.used[bs.A]++
		b.used[bs.B]++
		b.entries = append(b.entries, entry{seg: seg, birth: bs.Birth, seq: bs.Seq})
	}
	return b.CheckConservation()
}
