package serve

import (
	"fmt"

	"see/internal/ckpt"
	"see/internal/sched"
	"see/internal/warm"
	"see/internal/xrand"
)

// Checkpoint section names. Sections are independently framed so a future
// reader can report exactly which part of a checkpoint it cannot parse.
const (
	secMeta   = "meta"   // fingerprint + slot index
	secRNG    = "rng"    // xrand cursor
	secServe  = "serve"  // queues, counters, arrival phase
	secEngine = "engine" // sched.EngineState tree
	secTracer = "tracer" // CountingTracer offsets (optional)
	secWarm   = "warm"   // warm-cache hit/miss counters (optional)
)

// Snapshot captures the full server state at the current slot boundary:
// request queues, lifecycle counters, arrival-process phase, the rng
// cursor, the engine's state tree and (when configured) the tracer's
// incident offsets. The engine must implement sched.Checkpointable.
func (s *Server) Snapshot() (*ckpt.Snapshot, error) {
	ck, ok := s.eng.(sched.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("serve: engine %v does not support checkpointing", s.eng.Algorithm())
	}
	engState, err := ck.EngineState()
	if err != nil {
		return nil, fmt.Errorf("serve: engine snapshot: %w", err)
	}

	snap := &ckpt.Snapshot{}

	meta := &ckpt.Encoder{}
	meta.String(s.Fingerprint())
	meta.Int(s.slot)
	snap.Add(secMeta, meta.Bytes())

	rng := &ckpt.Encoder{}
	ckpt.AppendCursor(rng, s.stream.Cursor())
	snap.Add(secRNG, rng.Bytes())

	e := &ckpt.Encoder{}
	e.Int(s.nextID)
	e.Int(s.cfg.Process.Phase())
	e.Int(s.established)
	e.Int(s.floorRejected)
	e.Uvarint(uint64(s.pairs))
	for _, q := range s.queues {
		e.Uvarint(uint64(len(q)))
		for _, r := range q {
			e.Int(r.ID)
			e.Int(r.User)
			e.Int(int(r.Class))
			e.Int(r.Arrived)
			e.Int(r.Deadline)
		}
	}
	for c := range s.class {
		cc := s.class[c]
		e.Int(cc.Arrived)
		e.Int(cc.Admitted)
		e.Int(cc.Rejected)
		e.Int(cc.Expired)
		e.Int(cc.Served)
		e.Float64(cc.LatencySum)
	}
	e.Ints(s.userArrived)
	e.Ints(s.userServed)
	snap.Add(secServe, e.Bytes())

	snap.Add(secEngine, ckpt.EncodeEngineState(engState))

	if s.cfg.Tracer != nil {
		t := &ckpt.Encoder{}
		ckpt.AppendTracerCounts(t, s.cfg.Tracer.Counts())
		snap.Add(secTracer, t.Bytes())
	}

	// Warm-cache counters are observability state, not replay state: the
	// cached LP solutions and candidate sets rebuild byte-identically from
	// the topology, so only the lifetime hit/miss tallies are carried.
	if s.cfg.Warm != nil {
		w := &ckpt.Encoder{}
		ws := s.cfg.Warm.Stats()
		w.Uvarint(ws.SetHits)
		w.Uvarint(ws.SetMisses)
		w.Uvarint(ws.SolveHits)
		w.Uvarint(ws.SolveMisses)
		w.Uvarint(ws.Invalidations)
		snap.Add(secWarm, w.Bytes())
	}
	return snap, nil
}

// Restore rebuilds the server from a checkpoint taken by Snapshot on an
// identically configured server (same topology, algorithm, arrival config
// and seed — enforced via the fingerprint). After Restore the server
// produces byte-identical SlotStats to the uninterrupted original.
func (s *Server) Restore(snap *ckpt.Snapshot) error {
	ck, ok := s.eng.(sched.Checkpointable)
	if !ok {
		return fmt.Errorf("serve: engine %v does not support checkpointing", s.eng.Algorithm())
	}

	metaRaw, ok := snap.Section(secMeta)
	if !ok {
		return fmt.Errorf("serve: checkpoint has no %q section", secMeta)
	}
	md := ckpt.NewDecoder(metaRaw)
	fp := md.String()
	slot := md.Int()
	if err := md.Finish(); err != nil {
		return fmt.Errorf("serve: meta section: %w", err)
	}
	if want := s.Fingerprint(); fp != want {
		return fmt.Errorf("serve: checkpoint fingerprint mismatch:\n  checkpoint: %s\n  server:     %s", fp, want)
	}

	rngRaw, ok := snap.Section(secRNG)
	if !ok {
		return fmt.Errorf("serve: checkpoint has no %q section", secRNG)
	}
	rd := ckpt.NewDecoder(rngRaw)
	cursor := ckpt.ReadCursor(rd)
	if err := rd.Finish(); err != nil {
		return fmt.Errorf("serve: rng section: %w", err)
	}

	raw, ok := snap.Section(secServe)
	if !ok {
		return fmt.Errorf("serve: checkpoint has no %q section", secServe)
	}
	d := ckpt.NewDecoder(raw)
	nextID := d.Int()
	phase := d.Int()
	established := d.Int()
	floorRejected := d.Int()
	pairs := d.Uvarint()
	if d.Err() == nil && pairs != uint64(s.pairs) {
		return fmt.Errorf("serve: checkpoint has %d SD pairs, server has %d", pairs, s.pairs)
	}
	queues := make([][]Request, s.pairs)
	for i := 0; i < s.pairs && d.Err() == nil; i++ {
		n := d.Uvarint()
		if n > uint64(d.Remaining()) {
			return fmt.Errorf("serve: queue %d claims %d requests with %d bytes left", i, n, d.Remaining())
		}
		for k := uint64(0); k < n && d.Err() == nil; k++ {
			r := Request{
				ID:      d.Int(),
				User:    d.Int(),
				Class:   Class(d.Int()),
				Arrived: d.Int(),
				Pair:    i,
			}
			r.Deadline = d.Int()
			if d.Err() == nil && (r.Class < 0 || r.Class >= NumClasses) {
				return fmt.Errorf("serve: queued request %d has class %d", r.ID, r.Class)
			}
			queues[i] = append(queues[i], r)
		}
	}
	var class [NumClasses]ClassCounts
	for c := range class {
		class[c] = ClassCounts{
			Arrived:    d.Int(),
			Admitted:   d.Int(),
			Rejected:   d.Int(),
			Expired:    d.Int(),
			Served:     d.Int(),
			LatencySum: d.Float64(),
		}
	}
	userArrived := d.Ints()
	userServed := d.Ints()
	if err := d.Finish(); err != nil {
		return fmt.Errorf("serve: serve section: %w", err)
	}
	if len(userArrived) != s.cfg.Users || len(userServed) != s.cfg.Users {
		return fmt.Errorf("serve: checkpoint tracks %d/%d users, server has %d",
			len(userArrived), len(userServed), s.cfg.Users)
	}

	engRaw, ok := snap.Section(secEngine)
	if !ok {
		return fmt.Errorf("serve: checkpoint has no %q section", secEngine)
	}
	engState, err := ckpt.DecodeEngineState(engRaw)
	if err != nil {
		return err
	}

	tracerRaw, hasTracer := snap.Section(secTracer)
	if hasTracer != (s.cfg.Tracer != nil) {
		return fmt.Errorf("serve: checkpoint tracer presence (%v) does not match server (%v)",
			hasTracer, s.cfg.Tracer != nil)
	}
	var tracerCounts sched.TracerCounts
	if hasTracer {
		td := ckpt.NewDecoder(tracerRaw)
		tracerCounts = ckpt.ReadTracerCounts(td)
		if err := td.Finish(); err != nil {
			return fmt.Errorf("serve: tracer section: %w", err)
		}
	}

	// Warm counters are optional both ways: a checkpoint from a cold
	// server restores into a warm one (counters start fresh) and vice
	// versa — unlike the tracer, the cache changes no observable output,
	// so presence is not part of the replay contract.
	var warmStats warm.Stats
	warmRaw, hasWarm := snap.Section(secWarm)
	if hasWarm && s.cfg.Warm != nil {
		wd := ckpt.NewDecoder(warmRaw)
		warmStats.SetHits = wd.Uvarint()
		warmStats.SetMisses = wd.Uvarint()
		warmStats.SolveHits = wd.Uvarint()
		warmStats.SolveMisses = wd.Uvarint()
		warmStats.Invalidations = wd.Uvarint()
		if err := wd.Finish(); err != nil {
			return fmt.Errorf("serve: warm section: %w", err)
		}
	}

	// All sections parsed and validated — apply. Engine first: it is the
	// only restore that can still fail, and it leaves the server untouched
	// when it does.
	if err := ck.RestoreEngineState(engState); err != nil {
		return fmt.Errorf("serve: engine restore: %w", err)
	}
	if err := s.cfg.Process.SetPhase(phase); err != nil {
		return err
	}
	s.slot = slot
	s.nextID = nextID
	s.established = established
	s.floorRejected = floorRejected
	s.queues = queues
	s.class = class
	s.userArrived = userArrived
	s.userServed = userServed
	s.stream = xrand.Restore(cursor)
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.RestoreCounts(tracerCounts)
	}
	if hasWarm && s.cfg.Warm != nil {
		s.cfg.Warm.RestoreStats(warmStats)
	}
	return nil
}

// WriteCheckpoint snapshots the server and atomically writes the binary
// checkpoint to path plus a human-readable JSON dump to path+".json". The
// dump is diagnostic only; Restore never reads it.
func (s *Server) WriteCheckpoint(path string) error {
	snap, err := s.Snapshot()
	if err != nil {
		return err
	}
	if err := ckpt.Write(path, snap); err != nil {
		return err
	}
	return ckpt.WriteDebugJSON(path+".json", s.debugState())
}

// ResumeFrom loads the checkpoint file at path and restores the server
// from it.
func (s *Server) ResumeFrom(path string) error {
	snap, err := ckpt.Read(path)
	if err != nil {
		return err
	}
	return s.Restore(snap)
}

// debugState is the JSON debug-dump view of a checkpoint.
func (s *Server) debugState() any {
	type classView struct {
		Class    string  `json:"class"`
		Arrived  int     `json:"arrived"`
		Admitted int     `json:"admitted"`
		Rejected int     `json:"rejected"`
		Expired  int     `json:"expired"`
		Served   int     `json:"served"`
		Latency  float64 `json:"latency_sum"`
	}
	classes := make([]classView, NumClasses)
	for c := range s.class {
		cc := s.class[c]
		classes[c] = classView{
			Class:    Class(c).String(),
			Arrived:  cc.Arrived,
			Admitted: cc.Admitted,
			Rejected: cc.Rejected,
			Expired:  cc.Expired,
			Served:   cc.Served,
			Latency:  cc.LatencySum,
		}
	}
	queued := 0
	for i := range s.queues {
		queued += len(s.queues[i])
	}
	return map[string]any{
		"fingerprint":    s.Fingerprint(),
		"slot":           s.slot,
		"next_id":        s.nextID,
		"rng":            s.stream.Cursor(),
		"established":    s.established,
		"floor_rejected": s.floorRejected,
		"backlog":        queued,
		"arrival_kind":   s.cfg.Process.String(),
		"phase":          s.cfg.Process.Phase(),
		"classes":        classes,
	}
}
