package serve

import (
	"math"
	"strings"
	"testing"

	"see/internal/xrand"
)

func TestParseSpecDefaults(t *testing.T) {
	cfg, err := ParseSpec("poisson")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := cfg.Process.(*Poisson)
	if !ok || p.Rate != 1 {
		t.Fatalf("process = %v", cfg.Process)
	}
	if cfg.Users != 100 || cfg.MaxActive != 0 {
		t.Errorf("users=%d max-active=%d", cfg.Users, cfg.MaxActive)
	}
	if cfg.Deadline != [NumClasses]int{4, 8, 16} {
		t.Errorf("deadline = %v", cfg.Deadline)
	}
	if math.Abs(cfg.Mix[Gold]-0.2) > 1e-12 || math.Abs(cfg.Mix[Bronze]-0.5) > 1e-12 {
		t.Errorf("mix = %v", cfg.Mix)
	}
	if cfg.Spec != "poisson" {
		t.Errorf("spec = %q", cfg.Spec)
	}
}

func TestParseSpecFull(t *testing.T) {
	cfg, err := ParseSpec("poisson;rate=3;users=200;mix=1/1/2;deadline=2/4/8;max-active=64")
	if err != nil {
		t.Fatal(err)
	}
	if p := cfg.Process.(*Poisson); p.Rate != 3 {
		t.Errorf("rate = %v", p.Rate)
	}
	if cfg.Users != 200 || cfg.MaxActive != 64 {
		t.Errorf("users=%d max-active=%d", cfg.Users, cfg.MaxActive)
	}
	if cfg.Mix != [NumClasses]float64{0.25, 0.25, 0.5} {
		t.Errorf("mix = %v", cfg.Mix)
	}
	if cfg.Deadline != [NumClasses]int{2, 4, 8} {
		t.Errorf("deadline = %v", cfg.Deadline)
	}
}

func TestParseSpecProcesses(t *testing.T) {
	cfg, err := ParseSpec("diurnal;rate=2;amp=0.8;period=50")
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.Process.(*Diurnal)
	if d.Base != 2 || d.Amp != 0.8 || d.Period != 50 {
		t.Errorf("diurnal = %+v", d)
	}

	cfg, err = ParseSpec("bursty;rate=1.5")
	if err != nil {
		t.Fatal(err)
	}
	b := cfg.Process.(*Bursty)
	if b.Calm != 1.5 || b.Burst != 7.5 || b.Switch != 0.1 {
		t.Errorf("bursty defaults = %+v", b)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"mmpp",
		"poisson;rate=0",
		"poisson;rate=-2",
		"poisson;rate=9999",
		"poisson;rate",
		"poisson;users=0",
		"poisson;max-active=-1",
		"poisson;mix=1/2",
		"poisson;mix=0/0/0",
		"poisson;mix=-1/2/2",
		"poisson;deadline=0/1/1",
		"poisson;deadline=1.5/2/3",
		"poisson;frobnicate=1",
		"diurnal;amp=1.5",
		"diurnal;period=1",
		"bursty;switch=0",
		"bursty;rate=4;burst-rate=2",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := xrand.New(7)
	p := &Poisson{Rate: 3}
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Arrivals(rng, i)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("poisson(3) sample mean %v", mean)
	}
}

func TestDiurnalRate(t *testing.T) {
	d := &Diurnal{Base: 2, Amp: 1, Period: 40}
	lo, hi := math.Inf(1), math.Inf(-1)
	for s := 0; s < 40; s++ {
		r := d.RateAt(s)
		if r < 0 {
			t.Fatalf("negative rate %v at slot %d", r, s)
		}
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if hi < 3.5 || lo > 0.5 {
		t.Errorf("diurnal swing [%v,%v] too flat", lo, hi)
	}
	if d.RateAt(0) != d.RateAt(40) {
		t.Error("rate is not periodic")
	}
}

func TestBurstyPhase(t *testing.T) {
	b := &Bursty{Calm: 1, Burst: 8, Switch: 1} // toggles every slot
	rng := xrand.New(3)
	if b.Phase() != 0 {
		t.Fatalf("initial phase %d", b.Phase())
	}
	b.Arrivals(rng, 0)
	if b.Phase() != 1 {
		t.Fatal("switch=1 did not toggle to burst")
	}
	b.Arrivals(rng, 1)
	if b.Phase() != 0 {
		t.Fatal("switch=1 did not toggle back")
	}
	if err := b.SetPhase(1); err != nil || b.Phase() != 1 {
		t.Fatalf("SetPhase(1): %v, phase %d", err, b.Phase())
	}
	if err := b.SetPhase(2); err == nil {
		t.Error("bursty accepted phase 2")
	}
	if err := (&Poisson{Rate: 1}).SetPhase(1); err == nil {
		t.Error("poisson accepted phase 1")
	}
	if err := (&Diurnal{Base: 1, Period: 2}).SetPhase(1); err == nil {
		t.Error("diurnal accepted phase 1")
	}
}

// TestBurstyPhaseRestoreDeterminism pins the checkpoint property: rng
// cursor plus phase reproduces the remaining arrival sequence exactly.
func TestBurstyPhaseRestoreDeterminism(t *testing.T) {
	spec := "bursty;rate=1;burst-rate=10;switch=0.3"
	cfg, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	b := cfg.Process.(*Bursty)
	stream := xrand.NewStream(11)
	var want []int
	const split, slots = 25, 60
	var cur xrand.Cursor
	var phase int
	for s := 0; s < slots; s++ {
		if s == split {
			cur, phase = stream.Cursor(), b.Phase()
		}
		n := b.Arrivals(stream.Rand(), s)
		if s >= split {
			want = append(want, n)
		}
	}

	cfg2, _ := ParseSpec(spec)
	b2 := cfg2.Process.(*Bursty)
	if err := b2.SetPhase(phase); err != nil {
		t.Fatal(err)
	}
	rs := xrand.Restore(cur)
	for s := split; s < slots; s++ {
		if got := b2.Arrivals(rs.Rand(), s); got != want[s-split] {
			t.Fatalf("slot %d: resumed %d arrivals, want %d", s, got, want[s-split])
		}
	}
}

func TestProcessStrings(t *testing.T) {
	for _, spec := range []string{"poisson;rate=2", "diurnal;rate=2", "bursty;rate=2"} {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		kind := strings.Split(spec, ";")[0]
		if !strings.HasPrefix(cfg.Process.String(), kind+"(") {
			t.Errorf("%q String() = %q", spec, cfg.Process.String())
		}
	}
}
