package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"see/internal/chaos"
	"see/internal/ckpt"
	"see/internal/engines"
	"see/internal/sched"
	"see/internal/sched/schedtest"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
)

// serveFixture is everything needed to build identically configured
// servers repeatedly — the situation a process restart is in.
type serveFixture struct {
	net   *topo.Network
	pairs []topo.SDPair
	spec  string
	alg   sched.Algorithm
	seed  int64
}

func newServeFixture(t *testing.T, alg sched.Algorithm) *serveFixture {
	t.Helper()
	net, pairs, err := schedtest.Instance(12, 3, 91)
	if err != nil {
		t.Fatal(err)
	}
	return &serveFixture{
		net:   net,
		pairs: pairs,
		spec:  "bursty;rate=1;burst-rate=6;switch=0.3;users=20;max-active=30;deadline=3/6/12",
		alg:   alg,
		seed:  23,
	}
}

// build constructs a fresh server exactly as a restarted process would:
// new engine (with chaos + bank + tracer), new tracer, new arrival
// process.
func (f *serveFixture) build(t *testing.T) *Server {
	t.Helper()
	inj, err := chaos.NewInjector(&chaos.FaultPlan{
		Seed:        f.seed,
		NodeOutages: []chaos.Window{{ID: 2, From: 4, To: 8}},
		Decoherence: 0.1,
	}, f.net)
	if err != nil {
		t.Fatal(err)
	}
	tracer := sched.NewCountingTracer()
	eng, err := engines.New(f.alg, f.net, f.pairs, engines.Config{Chaos: inj, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	eng.(sched.Stateful).AttachBank(state.NewBank(f.net, state.Policy{
		CarrySlots:  2,
		Decoherence: 0.1,
		Seed:        f.seed,
	}))
	cfg, err := ParseSpec(f.spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = f.seed
	cfg.Tracer = tracer
	srv, err := New(eng, len(f.pairs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestServeCheckpointResume is the service-layer kill/resume invariant:
// run, checkpoint mid-way, rebuild everything from scratch, restore, and
// the remaining slots plus the final report are byte-identical.
func TestServeCheckpointResume(t *testing.T) {
	const slots, split = 24, 10
	f := newServeFixture(t, sched.Greedy)

	ref := f.build(t)
	var want []SlotStats
	if err := ref.Run(slots, func(st *SlotStats) error {
		want = append(want, *st)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wantReport := ref.Report()
	wantTracer := ref.cfg.Tracer.Counts()

	// The interrupted run: stop at split, checkpoint to disk, drop
	// everything.
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	first := f.build(t)
	if err := first.Run(split, nil); err != nil {
		t.Fatal(err)
	}
	if err := first.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".json"); err != nil {
		t.Errorf("debug dump missing: %v", err)
	}

	resumed := f.build(t)
	if err := resumed.ResumeFrom(path); err != nil {
		t.Fatal(err)
	}
	if resumed.Slot() != split {
		t.Fatalf("resumed at slot %d, want %d", resumed.Slot(), split)
	}
	var got []SlotStats
	if err := resumed.Run(slots-split, func(st *SlotStats) error {
		got = append(got, *st)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[split:]) {
		t.Errorf("resumed slots diverged:\n got %+v\nwant %+v", got, want[split:])
	}
	if gotRep := resumed.Report(); !reflect.DeepEqual(gotRep, wantReport) {
		t.Errorf("resumed report diverged:\n got %+v\nwant %+v", gotRep, wantReport)
	}
	if gotTr := resumed.cfg.Tracer.Counts(); gotTr != wantTracer {
		t.Errorf("resumed tracer counts diverged:\n got %+v\nwant %+v", gotTr, wantTracer)
	}
}

// TestServeCheckpointResumeSEE runs the same invariant through the full
// SEE pipeline (LP planning, banked carry-over, chaos).
func TestServeCheckpointResumeSEE(t *testing.T) {
	if testing.Short() {
		t.Skip("LP engine in -short mode")
	}
	const slots, split = 10, 4
	f := newServeFixture(t, sched.SEE)

	ref := f.build(t)
	var want []SlotStats
	if err := ref.Run(slots, func(st *SlotStats) error {
		want = append(want, *st)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "serve.ckpt")
	first := f.build(t)
	if err := first.Run(split, nil); err != nil {
		t.Fatal(err)
	}
	if err := first.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	resumed := f.build(t)
	if err := resumed.ResumeFrom(path); err != nil {
		t.Fatal(err)
	}
	var got []SlotStats
	if err := resumed.Run(slots-split, func(st *SlotStats) error {
		got = append(got, *st)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[split:]) {
		t.Errorf("resumed SEE slots diverged:\n got %+v\nwant %+v", got, want[split:])
	}
}

// TestRestoreFingerprintMismatch checks a checkpoint refuses to restore
// into a differently configured server.
func TestRestoreFingerprintMismatch(t *testing.T) {
	f := newServeFixture(t, sched.Greedy)
	srv := f.build(t)
	if err := srv.Run(3, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := newServeFixture(t, sched.Greedy)
	other.seed = 99
	if err := other.build(t).Restore(snap); err == nil {
		t.Fatal("checkpoint restored across a seed change")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestResumeRejectsCorruptFile checks on-disk corruption surfaces as a
// ckpt corruption error, not a wrong resume.
func TestResumeRejectsCorruptFile(t *testing.T) {
	f := newServeFixture(t, sched.Greedy)
	srv := f.build(t)
	if err := srv.Run(2, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = f.build(t).ResumeFrom(path)
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if !ckpt.IsCorrupt(err) {
		t.Fatalf("error %v is not IsCorrupt", err)
	}
}

// TestSnapshotRequiresCheckpointableEngine checks the capability gate.
func TestSnapshotRequiresCheckpointableEngine(t *testing.T) {
	cfg, err := ParseSpec("poisson")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(&fixedEngine{perPair: []int{0}}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Snapshot(); err == nil {
		t.Fatal("snapshot of a non-checkpointable engine succeeded")
	}
	if err := srv.Restore(&ckpt.Snapshot{}); err == nil {
		t.Fatal("restore into a non-checkpointable engine succeeded")
	}
}

// TestRestoreTracerPresenceMismatch checks tracer wiring must match across
// the restart.
func TestRestoreTracerPresenceMismatch(t *testing.T) {
	f := newServeFixture(t, sched.Greedy)
	srv := f.build(t)
	if err := srv.Run(2, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bare := f.build(t)
	bare.cfg.Tracer = nil
	if err := bare.Restore(snap); err == nil {
		t.Fatal("tracer-carrying checkpoint restored into a tracer-less server")
	}
}

// TestWarmStatsRoundTrip checks the optional "warm" checkpoint section:
// a warm-configured server's cache counters survive snapshot/restore, and
// — because the cache changes no observable output — presence is lenient
// in both directions, unlike the tracer.
func TestWarmStatsRoundTrip(t *testing.T) {
	f := newServeFixture(t, sched.Greedy)

	cache := warm.New()
	want := warm.Stats{SetHits: 3, SetMisses: 2, SolveHits: 5, SolveMisses: 1, Invalidations: 4}
	cache.RestoreStats(want)

	srv := f.build(t)
	srv.cfg.Warm = cache
	if err := srv.Run(2, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Section("warm"); !ok {
		t.Fatal("warm-configured server wrote no warm section")
	}

	fresh := f.build(t)
	fresh.cfg.Warm = warm.New()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := fresh.cfg.Warm.Stats(); got != want {
		t.Errorf("restored warm stats = %+v, want %+v", got, want)
	}

	// Lenient direction 1: a warm checkpoint restores into a cold server.
	cold := f.build(t)
	if err := cold.Restore(snap); err != nil {
		t.Errorf("warm checkpoint refused by a cold server: %v", err)
	}

	// Lenient direction 2: a cold checkpoint restores into a warm server,
	// whose counters then start fresh instead of being overwritten.
	coldSrc := f.build(t)
	if err := coldSrc.Run(2, nil); err != nil {
		t.Fatal(err)
	}
	coldSnap, err := coldSrc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := coldSnap.Section("warm"); ok {
		t.Fatal("cold server wrote a warm section")
	}
	warmDst := f.build(t)
	warmDst.cfg.Warm = warm.New()
	warmDst.cfg.Warm.RestoreStats(warm.Stats{SetMisses: 9})
	if err := warmDst.Restore(coldSnap); err != nil {
		t.Errorf("cold checkpoint refused by a warm server: %v", err)
	}
	if got := warmDst.cfg.Warm.Stats(); got != (warm.Stats{SetMisses: 9}) {
		t.Errorf("cold checkpoint clobbered warm counters: %+v", got)
	}
}
