package serve

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Process generates the per-slot request arrival count for the traffic
// server. Implementations are deterministic functions of the rng passed to
// Arrivals and their own phase, so a (cursor, phase) pair pins the whole
// future arrival sequence — the property checkpoint/resume leans on.
type Process interface {
	// String describes the process and its parameters. It feeds the resume
	// fingerprint, so two processes with equal strings must generate equal
	// arrival sequences from equal rng states.
	String() string
	// Arrivals draws the number of requests arriving in the given slot.
	Arrivals(rng *rand.Rand, slot int) int
	// Phase returns the serializable internal state (0 for memoryless
	// processes).
	Phase() int
	// SetPhase restores a phase captured by Phase.
	SetPhase(p int) error
}

// maxRate bounds every configured arrival rate: beyond it the Knuth
// sampler's exp(-λ) term loses precision and a "slot" stops being a
// meaningful batching unit anyway.
const maxRate = 500.0

// poissonDraw samples Poisson(λ) by Knuth's product method. The number of
// rng draws varies with the outcome, which is fine: the server's rng cursor
// counts draws, not slots.
func poissonDraw(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Poisson is a memoryless arrival process with a constant mean rate per
// slot.
type Poisson struct {
	// Rate is the mean number of request arrivals per slot.
	Rate float64
}

func (p *Poisson) String() string { return fmt.Sprintf("poisson(rate=%g)", p.Rate) }

// Arrivals draws Poisson(Rate).
func (p *Poisson) Arrivals(rng *rand.Rand, _ int) int { return poissonDraw(rng, p.Rate) }

// Phase returns 0: the process is memoryless.
func (p *Poisson) Phase() int { return 0 }

// SetPhase accepts only the memoryless phase 0.
func (p *Poisson) SetPhase(v int) error {
	if v != 0 {
		return fmt.Errorf("serve: poisson process has no phase %d", v)
	}
	return nil
}

// Diurnal modulates a Poisson process with a sinusoidal day/night cycle:
// the slot-s rate is Base·(1 + Amp·sin(2πs/Period)), floored at zero. The
// rate is a pure function of the slot index, so the process carries no
// phase of its own.
type Diurnal struct {
	// Base is the mean rate averaged over a full period.
	Base float64
	// Amp in [0,1] scales the swing around Base.
	Amp float64
	// Period is the cycle length in slots.
	Period int
}

func (d *Diurnal) String() string {
	return fmt.Sprintf("diurnal(rate=%g,amp=%g,period=%d)", d.Base, d.Amp, d.Period)
}

// RateAt returns the instantaneous mean rate for a slot.
func (d *Diurnal) RateAt(slot int) float64 {
	r := d.Base * (1 + d.Amp*math.Sin(2*math.Pi*float64(slot%d.Period)/float64(d.Period)))
	return math.Max(r, 0)
}

// Arrivals draws Poisson(RateAt(slot)).
func (d *Diurnal) Arrivals(rng *rand.Rand, slot int) int {
	return poissonDraw(rng, d.RateAt(slot))
}

// Phase returns 0: the slot index alone determines the rate.
func (d *Diurnal) Phase() int { return 0 }

// SetPhase accepts only phase 0.
func (d *Diurnal) SetPhase(v int) error {
	if v != 0 {
		return fmt.Errorf("serve: diurnal process has no phase %d", v)
	}
	return nil
}

// Bursty is a two-state Markov-modulated Poisson process: each slot it
// first flips between calm and burst mode with probability Switch, then
// draws from the mode's rate. The current mode is the one piece of state a
// checkpoint must carry.
type Bursty struct {
	// Calm is the mean rate in the quiet state.
	Calm float64
	// Burst is the mean rate in the burst state.
	Burst float64
	// Switch is the per-slot probability of toggling states.
	Switch float64

	burst bool
}

func (b *Bursty) String() string {
	return fmt.Sprintf("bursty(rate=%g,burst-rate=%g,switch=%g)", b.Calm, b.Burst, b.Switch)
}

// Arrivals advances the mode chain by one step and draws from the resulting
// mode's rate.
func (b *Bursty) Arrivals(rng *rand.Rand, _ int) int {
	if rng.Float64() < b.Switch {
		b.burst = !b.burst
	}
	rate := b.Calm
	if b.burst {
		rate = b.Burst
	}
	return poissonDraw(rng, rate)
}

// Phase returns the current mode: 0 calm, 1 burst.
func (b *Bursty) Phase() int {
	if b.burst {
		return 1
	}
	return 0
}

// SetPhase restores the mode.
func (b *Bursty) SetPhase(v int) error {
	if v != 0 && v != 1 {
		return fmt.Errorf("serve: bursty process has no phase %d", v)
	}
	b.burst = v == 1
	return nil
}

// ParseSpec parses an arrival specification of the form
//
//	kind;key=value;key=value;...
//
// where kind is poisson, diurnal or bursty. Shared keys: users=N (request
// population, default 100), mix=g/s/b (class proportions, default
// 0.2/0.3/0.5, normalized), deadline=g/s/b (per-class time-to-live in
// slots, default 4/8/16), max-active=K (admission bound on queued
// requests, default 0 = unbounded). Process keys: rate (all kinds,
// default 1), amp and period (diurnal, defaults 0.5 and 288), burst-rate
// and switch (bursty, defaults 5·rate and 0.1).
//
// The returned Config has Process set and Spec holding the input verbatim;
// the caller supplies Seed.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{
		Users:     100,
		Mix:       [NumClasses]float64{0.2, 0.3, 0.5},
		Deadline:  [NumClasses]int{4, 8, 16},
		MaxActive: 0,
		Spec:      spec,
	}
	fields := strings.Split(spec, ";")
	kind := strings.TrimSpace(fields[0])

	rate, amp, period := 1.0, 0.5, 288
	burstRate, burstSet, sw := 0.0, false, 0.1

	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return cfg, fmt.Errorf("serve: field %q is not key=value", f)
		}
		var err error
		switch key {
		case "rate":
			rate, err = parseRate(key, val)
		case "amp":
			if amp, err = strconv.ParseFloat(val, 64); err == nil && (amp < 0 || amp > 1) {
				err = fmt.Errorf("serve: amp=%v outside [0,1]", amp)
			}
		case "period":
			if period, err = strconv.Atoi(val); err == nil && period < 2 {
				err = fmt.Errorf("serve: period=%d must be at least 2", period)
			}
		case "burst-rate":
			burstRate, err = parseRate(key, val)
			burstSet = true
		case "switch":
			if sw, err = strconv.ParseFloat(val, 64); err == nil && (sw <= 0 || sw > 1) {
				err = fmt.Errorf("serve: switch=%v outside (0,1]", sw)
			}
		case "users":
			if cfg.Users, err = strconv.Atoi(val); err == nil && cfg.Users < 1 {
				err = fmt.Errorf("serve: users=%d must be positive", cfg.Users)
			}
		case "max-active":
			if cfg.MaxActive, err = strconv.Atoi(val); err == nil && cfg.MaxActive < 0 {
				err = fmt.Errorf("serve: max-active=%d is negative", cfg.MaxActive)
			}
		case "mix":
			cfg.Mix, err = parseTriple(val, "mix")
		case "deadline":
			var dl [NumClasses]float64
			if dl, err = parseTriple(val, "deadline"); err == nil {
				for c := range dl {
					if dl[c] < 1 || dl[c] != math.Trunc(dl[c]) {
						err = fmt.Errorf("serve: deadline %v is not a positive slot count", dl[c])
						break
					}
					cfg.Deadline[c] = int(dl[c])
				}
			}
		default:
			return cfg, fmt.Errorf("serve: unknown arrival key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("serve: parsing %q: %w", f, err)
		}
	}

	sum := cfg.Mix[Gold] + cfg.Mix[Silver] + cfg.Mix[Bronze]
	if sum <= 0 {
		return cfg, fmt.Errorf("serve: class mix %v sums to zero", cfg.Mix)
	}
	for c := range cfg.Mix {
		cfg.Mix[c] /= sum
	}

	switch kind {
	case "poisson":
		cfg.Process = &Poisson{Rate: rate}
	case "diurnal":
		cfg.Process = &Diurnal{Base: rate, Amp: amp, Period: period}
	case "bursty":
		if !burstSet {
			burstRate = 5 * rate
		}
		if burstRate > maxRate {
			return cfg, fmt.Errorf("serve: burst-rate=%v exceeds %v", burstRate, maxRate)
		}
		if burstRate < rate {
			return cfg, fmt.Errorf("serve: burst-rate=%v below base rate %v", burstRate, rate)
		}
		cfg.Process = &Bursty{Calm: rate, Burst: burstRate, Switch: sw}
	default:
		return cfg, fmt.Errorf("serve: unknown arrival process %q (want poisson, diurnal or bursty)", kind)
	}
	return cfg, nil
}

// parseRate parses a strictly positive, bounded arrival rate.
func parseRate(key, val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r <= 0 || r > maxRate || math.IsNaN(r) {
		return 0, fmt.Errorf("serve: %s=%v outside (0,%v]", key, r, maxRate)
	}
	return r, nil
}

// parseTriple parses a gold/silver/bronze triple of non-negative numbers.
func parseTriple(val, what string) ([NumClasses]float64, error) {
	var out [NumClasses]float64
	parts := strings.Split(val, "/")
	if len(parts) != NumClasses {
		return out, fmt.Errorf("serve: %s wants %d values, got %d", what, NumClasses, len(parts))
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return out, err
		}
		if v < 0 || math.IsNaN(v) {
			return out, fmt.Errorf("serve: %s value %v is negative", what, v)
		}
		out[i] = v
	}
	return out, nil
}
