package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"see/internal/engines"
	"see/internal/sched"
	"see/internal/sched/schedtest"
)

// fixedEngine returns a constant PerPair vector every slot — a service
// capacity dial for queueing-logic tests.
type fixedEngine struct{ perPair []int }

func (f *fixedEngine) Algorithm() sched.Algorithm { return sched.Greedy }

func (f *fixedEngine) RunSlot(*rand.Rand) (*sched.SlotResult, error) {
	est := 0
	for _, n := range f.perPair {
		est += n
	}
	return &sched.SlotResult{Established: est, PerPair: append([]int(nil), f.perPair...)}, nil
}

func (f *fixedEngine) UpperBound() float64 { return 0 }

// newGreedyServer builds a server over a real Greedy engine on a small
// random instance.
func newGreedyServer(t *testing.T, spec string, seed int64) *Server {
	t.Helper()
	net, pairs, err := schedtest.Instance(12, 3, 91)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engines.New(sched.Greedy, net, pairs, engines.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	srv, err := New(eng, len(pairs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestServerAccounting runs a real engine and checks the lifecycle
// conservation laws the report is built on.
func TestServerAccounting(t *testing.T) {
	srv := newGreedyServer(t, "poisson;rate=2;users=30;max-active=40", 5)
	var slots []SlotStats
	if err := srv.Run(40, func(st *SlotStats) error {
		slots = append(slots, *st)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rep := srv.Report()
	if rep.Slots != 40 || srv.Slot() != 40 {
		t.Fatalf("slots = %d/%d", rep.Slots, srv.Slot())
	}
	if rep.Arrived != rep.Admitted+rep.Rejected {
		t.Errorf("arrived %d != admitted %d + rejected %d", rep.Arrived, rep.Admitted, rep.Rejected)
	}
	if rep.Admitted != rep.Served+rep.Expired+rep.Backlog {
		t.Errorf("admitted %d != served %d + expired %d + backlog %d",
			rep.Admitted, rep.Served, rep.Expired, rep.Backlog)
	}
	if rep.Served > rep.Established {
		t.Errorf("served %d exceeds established %d", rep.Served, rep.Established)
	}
	if rep.Fairness <= 0 || rep.Fairness > 1 {
		t.Errorf("fairness = %v", rep.Fairness)
	}
	if want := float64(rep.Served) / 40; rep.Throughput != want {
		t.Errorf("throughput = %v, want %v", rep.Throughput, want)
	}
	var sum SlotStats
	for _, st := range slots {
		sum.Arrived += st.Arrived
		sum.Admitted += st.Admitted
		sum.Rejected += st.Rejected
		sum.Expired += st.Expired
		sum.Served += st.Served
		sum.Established += st.Established
	}
	if sum.Arrived != rep.Arrived || sum.Served != rep.Served ||
		sum.Expired != rep.Expired || sum.Established != rep.Established {
		t.Errorf("per-slot totals %+v disagree with report %+v", sum, rep)
	}
	if slots[len(slots)-1].Backlog != rep.Backlog {
		t.Errorf("final backlog %d != report backlog %d", slots[len(slots)-1].Backlog, rep.Backlog)
	}
	perClass := 0
	for c := range rep.PerClass {
		perClass += rep.PerClass[c].Arrived
		if r := rep.PerClass[c].ServiceRate; r < 0 || r > 1 {
			t.Errorf("%v service rate %v", Class(c), r)
		}
	}
	if perClass != rep.Arrived {
		t.Errorf("class arrivals %d != total %d", perClass, rep.Arrived)
	}
}

// TestServerDeterminism pins run-to-run reproducibility: same config, same
// seed, same per-slot statistics.
func TestServerDeterminism(t *testing.T) {
	const spec = "diurnal;rate=2;amp=0.6;period=16;users=25"
	run := func() ([]SlotStats, *Report) {
		srv := newGreedyServer(t, spec, 17)
		var out []SlotStats
		if err := srv.Run(30, func(st *SlotStats) error {
			out = append(out, *st)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out, srv.Report()
	}
	aSlots, aRep := run()
	bSlots, bRep := run()
	if !reflect.DeepEqual(aSlots, bSlots) {
		t.Error("identical configs produced different slot statistics")
	}
	if !reflect.DeepEqual(aRep, bRep) {
		t.Error("identical configs produced different reports")
	}
}

// TestClassPriority seeds a queue with mixed classes and checks service
// order: gold first, FIFO within a class.
func TestClassPriority(t *testing.T) {
	cfg, err := ParseSpec("poisson;rate=0.0001;users=4;deadline=100/100/100")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(&fixedEngine{perPair: []int{2}}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bronze arrived first, then silver, then two golds.
	srv.queues[0] = []Request{
		{ID: 0, User: 0, Class: Bronze, Arrived: 0, Deadline: 100},
		{ID: 1, User: 1, Class: Silver, Arrived: 0, Deadline: 100},
		{ID: 2, User: 2, Class: Gold, Arrived: 0, Deadline: 100},
		{ID: 3, User: 3, Class: Gold, Arrived: 0, Deadline: 100},
	}
	srv.class[Bronze].Admitted = 1
	srv.class[Silver].Admitted = 1
	srv.class[Gold].Admitted = 2

	st, err := srv.RunSlot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served < 2 {
		t.Fatalf("served %d of capacity 2", st.Served)
	}
	if srv.class[Gold].Served != 2 {
		t.Errorf("gold served %d, want 2 (priority)", srv.class[Gold].Served)
	}
	if srv.class[Bronze].Served != 0 {
		t.Errorf("bronze served %d before gold drained", srv.class[Bronze].Served)
	}
	// The survivors keep FIFO order: bronze 0, silver 1.
	var ids []int
	for _, r := range srv.queues[0] {
		ids = append(ids, r.ID)
	}
	if len(ids) < 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("queue after service = %v", ids)
	}
}

// TestAdmissionBound checks MaxActive rejects overflow arrivals and the
// backlog never exceeds the bound.
func TestAdmissionBound(t *testing.T) {
	cfg, err := ParseSpec("poisson;rate=10;users=8;max-active=5;deadline=100/100/100")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 3
	srv, err := New(&fixedEngine{perPair: []int{0}}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		st, err := srv.RunSlot()
		if err != nil {
			t.Fatal(err)
		}
		if st.Backlog > 5 {
			t.Fatalf("slot %d backlog %d exceeds max-active 5", k, st.Backlog)
		}
	}
	rep := srv.Report()
	if rep.Rejected == 0 {
		t.Error("rate 10 against max-active 5 rejected nothing")
	}
	if rep.Backlog != 5 {
		t.Errorf("final backlog %d, want 5", rep.Backlog)
	}
}

// TestDeadlineExpiry checks unserved requests die exactly at their
// class TTL.
func TestDeadlineExpiry(t *testing.T) {
	cfg, err := ParseSpec("poisson;rate=2;users=6;deadline=1/1/1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 9
	srv, err := New(&fixedEngine{perPair: []int{0}}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		if _, err := srv.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	rep := srv.Report()
	if rep.Served != 0 {
		t.Errorf("zero-capacity engine served %d", rep.Served)
	}
	// TTL 1: everything admitted before the last slot has expired; only the
	// final slot's admissions survive as backlog.
	if rep.Expired+rep.Backlog != rep.Admitted {
		t.Errorf("expired %d + backlog %d != admitted %d", rep.Expired, rep.Backlog, rep.Admitted)
	}
	if rep.Expired == 0 {
		t.Error("TTL 1 with no service expired nothing")
	}
}

// TestNewValidation covers constructor rejection paths.
func TestNewValidation(t *testing.T) {
	good, err := ParseSpec("poisson")
	if err != nil {
		t.Fatal(err)
	}
	eng := &fixedEngine{perPair: []int{0}}
	cases := []struct {
		name  string
		eng   sched.Engine
		pairs int
		mut   func(*Config)
	}{
		{"nil engine", nil, 1, nil},
		{"no pairs", eng, 0, nil},
		{"nil process", eng, 1, func(c *Config) { c.Process = nil }},
		{"no users", eng, 1, func(c *Config) { c.Users = 0 }},
		{"negative max-active", eng, 1, func(c *Config) { c.MaxActive = -1 }},
		{"zero mix", eng, 1, func(c *Config) { c.Mix = [NumClasses]float64{} }},
		{"negative mix", eng, 1, func(c *Config) { c.Mix[Gold] = -1 }},
		{"zero deadline", eng, 1, func(c *Config) { c.Deadline[Silver] = 0 }},
	}
	for _, tc := range cases {
		cfg := good
		if tc.mut != nil {
			tc.mut(&cfg)
		}
		if _, err := New(tc.eng, tc.pairs, cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New(eng, 1, good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestEnginePairMismatch checks the server rejects an engine whose PerPair
// width disagrees with its own pair count.
func TestEnginePairMismatch(t *testing.T) {
	cfg, err := ParseSpec("poisson")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(&fixedEngine{perPair: []int{0, 0}}, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RunSlot(); err == nil {
		t.Fatal("pair-width mismatch accepted")
	}
}
