// Package serve turns the slot pipeline into a long-lived entanglement
// traffic server: an arrival process (internal: Process) generates
// connection requests from a fixed user population, an admission controller
// bounds the active set, and each slot the underlying sched.Engine's
// established connections serve the queued requests of their SD pairs in
// QoS-class priority order. Requests that outlive their class deadline
// expire; per-user and per-class service statistics accumulate alongside
// raw throughput so fairness (Jain's index) is reported next to it.
//
// The server is a deterministic function of its Config and one rng stream:
// every stochastic decision — arrival counts, user and class draws, the
// engine's slot internals — consumes from the same xrand.Stream, so an rng
// cursor plus the serialized server state (see snapshot.go) pins the whole
// remaining run. That is the contract service-mode checkpointing relies on:
// kill the process, restore, and the per-slot statistics are byte-identical
// to the uninterrupted run.
package serve

import (
	"errors"
	"fmt"
	"math"

	"see/internal/metrics"
	"see/internal/sched"
	"see/internal/warm"
	"see/internal/xrand"
)

// Class is a request's QoS tier. Lower values are served first.
type Class int

// The three QoS tiers, in service-priority order.
const (
	Gold Class = iota
	Silver
	Bronze
	// NumClasses counts the tiers.
	NumClasses = 3
)

// String names the tier.
func (c Class) String() string {
	switch c {
	case Gold:
		return "gold"
	case Silver:
		return "silver"
	case Bronze:
		return "bronze"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Request is one admitted end-to-end entanglement request.
type Request struct {
	// ID is the admission-order sequence number (globally unique).
	ID int
	// User identifies the requester within the population.
	User int
	// Pair is the SD-pair index the user is statically bound to.
	Pair int
	// Class is the QoS tier.
	Class Class
	// Arrived is the slot the request arrived in.
	Arrived int
	// Deadline is the first slot the request is no longer serviceable in
	// (Arrived + its class TTL); it expires at the start of that slot.
	Deadline int
}

// Config parameterizes a traffic server. ParseSpec builds one from a
// command-line arrival spec; the zero value is not valid.
type Config struct {
	// Process generates per-slot arrival counts.
	Process Process
	// Users is the population size. Each user is statically bound to the
	// SD pair user mod pairs, so per-user service totals are comparable.
	Users int
	// Mix is the class distribution of arrivals (normalized by New).
	Mix [NumClasses]float64
	// Deadline is the per-class time-to-live in slots: a class-c request
	// arriving in slot s is serviceable in slots s..s+Deadline[c]-1.
	Deadline [NumClasses]int
	// MaxActive bounds the number of queued requests; arrivals beyond it
	// are rejected at admission (0 = unbounded).
	MaxActive int
	// Seed initializes the server's rng stream.
	Seed int64
	// Spec is the arrival spec the config was parsed from, if any; it is
	// informational (the resume fingerprint is built from the fields).
	Spec string
	// Tracer, when non-nil, is the pipeline tracer whose counters are
	// included in checkpoints and restored on resume. It must be the same
	// tracer wired into the engine's construction.
	Tracer *sched.CountingTracer
	// Warm, when non-nil, is the warm-start cache used to build the
	// server's engine. Its hit/miss counters ride along in checkpoints (an
	// optional section — older checkpoints restore fine without it) so a
	// resumed service reports cache effectiveness across restarts. The
	// cached artifacts themselves are never serialized: a restart rebuilds
	// them from the topology, byte-identically.
	Warm *warm.Cache
}

// ClassCounts accumulates one QoS tier's lifecycle counters.
type ClassCounts struct {
	// Arrived counts requests generated for this class.
	Arrived int
	// Admitted counts arrivals that passed admission.
	Admitted int
	// Rejected counts arrivals refused by the MaxActive bound.
	Rejected int
	// Expired counts admitted requests that outlived their deadline.
	Expired int
	// Served counts admitted requests delivered an end-to-end connection.
	Served int
	// LatencySum totals (service slot − arrival slot) over served
	// requests.
	LatencySum float64
}

// SlotStats reports one slot of service activity; seesim renders one
// deterministic output line per SlotStats.
type SlotStats struct {
	// Slot is the slot index.
	Slot int
	// Arrived is the number of requests generated this slot.
	Arrived int
	// Admitted / Rejected split Arrived at the admission controller.
	Admitted int
	Rejected int
	// Expired counts requests that hit their deadline at slot start.
	Expired int
	// Served counts requests delivered this slot.
	Served int
	// Established is the engine's raw connection count (≥ Served; the
	// excess found no queued request on its pair).
	Established int
	// Backlog is the number of requests still queued after the slot.
	Backlog int
}

// Server drives a sched.Engine as a long-lived traffic server. Build one
// with New; it is not safe for concurrent use.
type Server struct {
	eng    sched.Engine
	pairs  int
	cfg    Config
	stream *xrand.Stream

	slot          int         // next slot index
	nextID        int         // next request ID
	queues        [][]Request // admitted, per SD pair, in ID order
	class         [NumClasses]ClassCounts
	userArrived   []int
	userServed    []int
	established   int // engine connections over the whole run
	floorRejected int // stitch assemblies rolled back by fidelity floors
}

// New builds a traffic server over an engine serving `pairs` SD pairs.
func New(eng sched.Engine, pairs int, cfg Config) (*Server, error) {
	if eng == nil {
		return nil, errors.New("serve: nil engine")
	}
	if pairs <= 0 {
		return nil, fmt.Errorf("serve: %d SD pairs", pairs)
	}
	if cfg.Process == nil {
		return nil, errors.New("serve: nil arrival process")
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("serve: Users must be positive, got %d", cfg.Users)
	}
	if cfg.MaxActive < 0 {
		return nil, fmt.Errorf("serve: negative MaxActive %d", cfg.MaxActive)
	}
	sum := 0.0
	for c, m := range cfg.Mix {
		if m < 0 || math.IsNaN(m) {
			return nil, fmt.Errorf("serve: class mix %v has a negative share", cfg.Mix)
		}
		sum += m
		if cfg.Deadline[c] < 1 {
			return nil, fmt.Errorf("serve: %v deadline %d is not a positive slot count", Class(c), cfg.Deadline[c])
		}
	}
	if sum <= 0 {
		return nil, fmt.Errorf("serve: class mix %v sums to zero", cfg.Mix)
	}
	for c := range cfg.Mix {
		cfg.Mix[c] /= sum
	}
	return &Server{
		eng:         eng,
		pairs:       pairs,
		cfg:         cfg,
		stream:      xrand.NewStream(cfg.Seed),
		queues:      make([][]Request, pairs),
		userArrived: make([]int, cfg.Users),
		userServed:  make([]int, cfg.Users),
	}, nil
}

// Slot returns the next slot index (equal to the number of slots run).
func (s *Server) Slot() int { return s.slot }

// Fingerprint identifies the server configuration a checkpoint belongs to.
// Restore refuses state whose fingerprint differs: resuming under a changed
// topology, algorithm, population or arrival process would silently produce
// a run that matches neither the old nor a fresh one.
func (s *Server) Fingerprint() string {
	return fmt.Sprintf("serve/v1 alg=%s pairs=%d proc=%s users=%d mix=%g/%g/%g deadline=%d/%d/%d max-active=%d seed=%d",
		s.eng.Algorithm(), s.pairs, s.cfg.Process,
		s.cfg.Users, s.cfg.Mix[Gold], s.cfg.Mix[Silver], s.cfg.Mix[Bronze],
		s.cfg.Deadline[Gold], s.cfg.Deadline[Silver], s.cfg.Deadline[Bronze],
		s.cfg.MaxActive, s.cfg.Seed)
}

// RunSlot advances the server one slot: expire, admit arrivals, run the
// engine, serve queues in class-priority order.
func (s *Server) RunSlot() (*SlotStats, error) {
	slot := s.slot
	stats := &SlotStats{Slot: slot}

	// Expiry happens at slot start: a request whose deadline is this slot
	// had Deadline−Arrived full slots of service opportunity.
	for i := range s.queues {
		kept := s.queues[i][:0]
		for _, r := range s.queues[i] {
			if slot >= r.Deadline {
				s.class[r.Class].Expired++
				stats.Expired++
				continue
			}
			kept = append(kept, r)
		}
		s.queues[i] = kept
	}

	// Arrivals and admission. Draw order (count, then user and class per
	// request) is fixed; the rng cursor therefore pins the sequence.
	active := s.backlog()
	n := s.cfg.Process.Arrivals(s.stream.Rand(), slot)
	for k := 0; k < n; k++ {
		user := s.stream.Rand().Intn(s.cfg.Users)
		class := s.drawClass()
		stats.Arrived++
		s.class[class].Arrived++
		s.userArrived[user]++
		if s.cfg.MaxActive > 0 && active >= s.cfg.MaxActive {
			s.class[class].Rejected++
			stats.Rejected++
			continue
		}
		r := Request{
			ID:       s.nextID,
			User:     user,
			Pair:     user % s.pairs,
			Class:    class,
			Arrived:  slot,
			Deadline: slot + s.cfg.Deadline[class],
		}
		s.nextID++
		s.queues[r.Pair] = append(s.queues[r.Pair], r)
		s.class[class].Admitted++
		stats.Admitted++
		active++
	}

	// One pipeline slot; its connections are this slot's service capacity.
	res, err := s.eng.RunSlot(s.stream.Rand())
	if err != nil {
		return nil, fmt.Errorf("serve: slot %d: %w", slot, err)
	}
	if len(res.PerPair) != s.pairs {
		return nil, fmt.Errorf("serve: engine served %d pairs, server has %d", len(res.PerPair), s.pairs)
	}
	s.established += res.Established
	s.floorRejected += res.FloorRejected
	stats.Established = res.Established

	for i, conns := range res.PerPair {
		stats.Served += s.servePair(i, conns, slot)
	}
	stats.Backlog = s.backlog()
	s.slot++
	return stats, nil
}

// Run advances the server `slots` slots, invoking onSlot (if non-nil) after
// each. onSlot returning an error stops the run; the server remains at a
// clean slot boundary and can be checkpointed or continued.
func (s *Server) Run(slots int, onSlot func(*SlotStats) error) error {
	if slots < 0 {
		return fmt.Errorf("serve: negative slot count %d", slots)
	}
	for k := 0; k < slots; k++ {
		stats, err := s.RunSlot()
		if err != nil {
			return err
		}
		if onSlot != nil {
			if err := onSlot(stats); err != nil {
				return err
			}
		}
	}
	return nil
}

// drawClass samples the QoS tier from the configured mix.
func (s *Server) drawClass() Class {
	x := s.stream.Rand().Float64()
	acc := 0.0
	for c := Class(0); c < NumClasses-1; c++ {
		acc += s.cfg.Mix[c]
		if x < acc {
			return c
		}
	}
	return NumClasses - 1
}

// servePair delivers up to `conns` requests from pair i's queue, highest
// class first and FIFO within a class, and returns the number served.
func (s *Server) servePair(i, conns, slot int) int {
	q := s.queues[i]
	if conns <= 0 || len(q) == 0 {
		return 0
	}
	serve := make(map[int]bool, conns)
	for c := Class(0); c < NumClasses && len(serve) < conns; c++ {
		for j, r := range q {
			if len(serve) >= conns {
				break
			}
			if r.Class == c && !serve[j] {
				serve[j] = true
			}
		}
	}
	kept := q[:0]
	for j, r := range q {
		if !serve[j] {
			kept = append(kept, r)
			continue
		}
		s.class[r.Class].Served++
		s.class[r.Class].LatencySum += float64(slot - r.Arrived)
		s.userServed[r.User]++
	}
	s.queues[i] = kept
	return len(serve)
}

// backlog counts queued requests across all pairs.
func (s *Server) backlog() int {
	n := 0
	for i := range s.queues {
		n += len(s.queues[i])
	}
	return n
}

// ClassReport summarizes one QoS tier over a run.
type ClassReport struct {
	ClassCounts
	// ServiceRate is Served / Arrived (0 when nothing arrived).
	ServiceRate float64
	// MeanLatency is the average slots-to-service of served requests.
	MeanLatency float64
}

// Report summarizes a run. Every field derives from state a checkpoint
// carries, so a resumed server's final report equals the uninterrupted
// run's.
type Report struct {
	// Slots is the number of slots run.
	Slots int
	// Arrived, Admitted, Rejected, Expired, Served total the request
	// lifecycle across classes.
	Arrived  int
	Admitted int
	Rejected int
	Expired  int
	Served   int
	// Backlog is the number of requests still queued.
	Backlog int
	// Established is the engine's total connection count (service capacity
	// offered; Served is the part that met demand).
	Established int
	// FloorRejected is the engine's total count of candidate assemblies
	// rolled back because their predicted fidelity missed the request
	// floor (zero when no floors are configured).
	FloorRejected int
	// Throughput is Served per slot.
	Throughput float64
	// Fairness is Jain's index over per-user served counts, restricted to
	// users that generated at least one request (1.0 = perfectly even).
	Fairness float64
	// PerClass breaks the lifecycle down by QoS tier.
	PerClass [NumClasses]ClassReport
}

// Report summarizes the run so far.
func (s *Server) Report() *Report {
	r := &Report{Slots: s.slot, Backlog: s.backlog(), Established: s.established, FloorRejected: s.floorRejected}
	for c := range s.class {
		cc := s.class[c]
		cr := ClassReport{ClassCounts: cc}
		if cc.Arrived > 0 {
			cr.ServiceRate = float64(cc.Served) / float64(cc.Arrived)
		}
		if cc.Served > 0 {
			cr.MeanLatency = cc.LatencySum / float64(cc.Served)
		}
		r.PerClass[c] = cr
		r.Arrived += cc.Arrived
		r.Admitted += cc.Admitted
		r.Rejected += cc.Rejected
		r.Expired += cc.Expired
		r.Served += cc.Served
	}
	if s.slot > 0 {
		r.Throughput = float64(r.Served) / float64(s.slot)
	}
	var served []float64
	for u, n := range s.userArrived {
		if n > 0 {
			served = append(served, float64(s.userServed[u]))
		}
	}
	r.Fairness = metrics.JainIndex(served)
	return r
}
