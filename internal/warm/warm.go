// Package warm memoizes the expensive planning artifacts of engine
// construction — segment sets (segment.Build) and LP solutions
// (flow.SolveCtx) — across scheduler (re)builds over the same network.
//
// # Why a cache is the warm start
//
// Every engine in this codebase plans once, at construction: segment
// enumeration followed by column-generation LP solving. The per-slot loop
// never re-solves the LP, so the dominant cost of "the next slot" in any
// workload that rebuilds schedulers (benchmarks, service restarts, REPS's
// progressive re-rounding, resilience retries) is re-deriving planning
// artifacts that are pure functions of (network, pairs, options). Replaying
// the memoized artifact is therefore byte-identical to a cold build by
// construction — the strongest possible form of the warm≡cold invariant —
// whereas carrying a simplex basis between solves could land on a different
// optimal vertex and silently change downstream rounding. DESIGN.md §9
// documents this trade in full.
//
// # Keying and invalidation
//
// Entries are keyed by the *topo.Network pointer plus the full content of
// the pairs and options, and each entry records the network's content
// fingerprint (topo.Fingerprint) at build time. Lookups re-verify the
// fingerprint, so mutating a network in place between builds forces a cold
// rebuild — the cache can go stale in time but never in content. Lookup is
// a linear scan with full equality comparison; no hash is trusted for
// correctness.
//
// LP solutions are keyed by the *segment.Set pointer (sets themselves come
// from this cache, so the pointer is canonical) plus every option field
// that affects the solve. Workers is excluded: the solver is deterministic
// at any worker count. Arena is excluded: it is reusable scratch, not an
// input.
//
// # What is NOT cached
//
// Budgeted construction (a non-nil context) bypasses the cache entirely —
// no lookup, no insert — so degradation behavior under -slot-budget is
// exactly what it would be without a cache. Callers enforce this by only
// consulting the cache when their context is nil.
//
// All returned artifacts are shared and must be treated as immutable,
// which they already are everywhere in the engine layer.
package warm

import (
	"sync"

	"see/internal/flow"
	"see/internal/segment"
	"see/internal/topo"
)

// Stats counts cache traffic. Hits replay a memoized artifact; misses fall
// through to a cold build. The counters are plumbed into service-mode
// checkpoints (internal/serve) so a resumed run continues its totals.
type Stats struct {
	// SetHits / SetMisses count segment.Build memoization traffic.
	SetHits, SetMisses uint64
	// SolveHits / SolveMisses count flow.SolveCtx memoization traffic.
	SolveHits, SolveMisses uint64
	// Invalidations counts lookups rejected because the network's content
	// fingerprint changed since the entry was built (each also counts as
	// a miss).
	Invalidations uint64
}

// Cache memoizes segment sets and LP solutions. The zero value is NOT
// ready; use New. A Cache is safe for concurrent use; cold builds run
// outside the lock, so concurrent misses may build the same artifact twice
// (both results are identical, the first inserted wins and becomes
// canonical).
type Cache struct {
	mu     sync.Mutex
	sets   []setEntry
	solves []solveEntry
	stats  Stats
}

// New returns an empty cache.
func New() *Cache { return &Cache{} }

type setEntry struct {
	net   *topo.Network
	fp    uint64
	pairs []topo.SDPair
	opts  segment.Options
	set   *segment.Set
}

type solveEntry struct {
	set *segment.Set
	key solveKey
	sol *flow.Solution
}

// solveKey is the by-value copy of every flow.Options field that affects
// the solve result. Workers and Arena are deliberately absent (see the
// package comment).
type solveKey struct {
	maxRounds             int
	epsilon               float64
	dropDeadLinks         bool
	swapWeightedObjective bool
	maxJunctions          int
	connCap               []int
	channels              []int
	memory                []int
	carryWeights          []float64
}

func makeSolveKey(o flow.Options) solveKey {
	return solveKey{
		maxRounds:             o.MaxRounds,
		epsilon:               o.Epsilon,
		dropDeadLinks:         o.DropDeadLinks,
		swapWeightedObjective: o.SwapWeightedObjective,
		maxJunctions:          o.MaxJunctions,
		connCap:               cloneInts(o.ConnCap),
		channels:              cloneInts(o.Channels),
		memory:                cloneInts(o.Memory),
		carryWeights:          cloneFloats(o.CarryWeights),
	}
}

func (k solveKey) equal(o solveKey) bool {
	return k.maxRounds == o.maxRounds &&
		k.epsilon == o.epsilon &&
		k.dropDeadLinks == o.dropDeadLinks &&
		k.swapWeightedObjective == o.swapWeightedObjective &&
		k.maxJunctions == o.maxJunctions &&
		intsEqual(k.connCap, o.connCap) &&
		intsEqual(k.channels, o.channels) &&
		intsEqual(k.memory, o.memory) &&
		floatsEqual(k.carryWeights, o.carryWeights)
}

// cloneInts copies a capacity slice, preserving nilness: nil means "derive
// defaults" to the solver and must not collide with an explicit empty
// override.
func cloneInts(s []int) []int {
	if s == nil {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	return out
}

func intsEqual(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cloneFloats copies a weight slice, preserving nilness (nil disables the
// carry-aware pricing bias and must not collide with explicit weights).
func cloneFloats(s []float64) []float64 {
	if s == nil {
		return nil
	}
	out := make([]float64, len(s))
	copy(out, s)
	return out
}

func floatsEqual(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pairsEqual(a, b []topo.SDPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SegmentSet returns the memoized segment set for (net, pairs, opts),
// building it cold on a miss. The returned set is shared: callers must
// treat it as immutable (segment.Set already is after Build).
func (c *Cache) SegmentSet(net *topo.Network, pairs []topo.SDPair, opts segment.Options) (*segment.Set, error) {
	fp := topo.Fingerprint(net)

	c.mu.Lock()
	for i := range c.sets {
		e := &c.sets[i]
		if e.net != net || e.opts != opts || !pairsEqual(e.pairs, pairs) {
			continue
		}
		if e.fp != fp {
			// Same pointer, different content: the network was mutated in
			// place. Invalidate so the stale plan can never be replayed.
			c.stats.Invalidations++
			c.sets = append(c.sets[:i], c.sets[i+1:]...)
			break
		}
		c.stats.SetHits++
		set := e.set
		c.mu.Unlock()
		return set, nil
	}
	c.stats.SetMisses++
	c.mu.Unlock()

	set, err := segment.Build(net, pairs, opts)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check: a concurrent miss may have inserted the same entry while we
	// built. Return the existing set so the pointer stays canonical (the
	// LP-solution cache keys on it).
	for i := range c.sets {
		e := &c.sets[i]
		if e.net == net && e.fp == fp && e.opts == opts && pairsEqual(e.pairs, pairs) {
			return e.set, nil
		}
	}
	pcopy := make([]topo.SDPair, len(pairs))
	copy(pcopy, pairs)
	c.sets = append(c.sets, setEntry{net: net, fp: fp, pairs: pcopy, opts: opts, set: set})
	return set, nil
}

// Solve returns the memoized LP solution for (set, opts), solving cold on
// a miss. Callers must only use it with an unbudgeted (nil-context)
// construction — budgeted solves go straight to flow.SolveCtx so timeout
// behavior is cache-independent. The returned solution is shared and
// immutable.
func (c *Cache) Solve(set *segment.Set, opts flow.Options) (*flow.Solution, error) {
	key := makeSolveKey(opts)

	c.mu.Lock()
	for i := range c.solves {
		e := &c.solves[i]
		if e.set == set && e.key.equal(key) {
			c.stats.SolveHits++
			sol := e.sol
			c.mu.Unlock()
			return sol, nil
		}
	}
	c.stats.SolveMisses++
	c.mu.Unlock()

	sol, err := flow.SolveCtx(nil, set, opts)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.solves {
		e := &c.solves[i]
		if e.set == set && e.key.equal(key) {
			return e.sol, nil
		}
	}
	c.solves = append(c.solves, solveEntry{set: set, key: key, sol: sol})
	return sol, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RestoreStats overwrites the counters (checkpoint resume).
func (c *Cache) RestoreStats(s Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = s
}
