package warm

import (
	"testing"

	"see/internal/flow"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

func testInstance(t *testing.T) (*topo.Network, []topo.SDPair) {
	t.Helper()
	cfg := topo.DefaultConfig()
	cfg.Nodes = 24
	net, err := topo.Generate(cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 3, xrand.New(4))
	return net, pairs
}

func TestSegmentSetMemoized(t *testing.T) {
	net, pairs := testInstance(t)
	c := New()
	opts := segment.DefaultOptions()

	a, err := c.SegmentSet(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SegmentSet(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second lookup did not return the memoized set")
	}
	st := c.Stats()
	if st.SetMisses != 1 || st.SetHits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", st)
	}

	// Different options are a different entry.
	opts2 := opts
	opts2.KPaths = 2
	s2, err := c.SegmentSet(net, pairs, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == a {
		t.Fatal("different options returned the same memoized set")
	}
}

func TestSegmentSetInvalidatesOnMutation(t *testing.T) {
	net, pairs := testInstance(t)
	c := New()
	opts := segment.DefaultOptions()

	a, err := c.SegmentSet(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the network in place: same pointer, new content fingerprint.
	net.Channels[0]++
	b, err := c.SegmentSet(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("mutated network replayed the stale set")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation", st)
	}
	if st.SetMisses != 2 {
		t.Fatalf("stats = %+v, want 2 misses (initial + post-mutation)", st)
	}
}

func TestSolveMemoized(t *testing.T) {
	net, pairs := testInstance(t)
	c := New()
	set, err := c.SegmentSet(net, pairs, segment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	var fo flow.Options
	a, err := c.Solve(set, fo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Solve(set, fo)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second solve did not return the memoized solution")
	}

	// Workers must not affect the key: the solver is deterministic at any
	// worker count, so a worker-count change is still a hit.
	fo.Workers = 4
	w, err := c.Solve(set, fo)
	if err != nil {
		t.Fatal(err)
	}
	if w != a {
		t.Fatal("worker-count change missed the cache")
	}

	// A capacity override is a different solve.
	fo2 := flow.Options{Channels: make([]int, net.NumLinks())}
	for i := range fo2.Channels {
		fo2.Channels[i] = 1
	}
	s2, err := c.Solve(set, fo2)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == a {
		t.Fatal("channel override returned the unconstrained solution")
	}

	// The key copies the slices: mutating the caller's slice afterwards
	// must not corrupt the stored entry.
	fo2.Channels[0] = 99
	s3, err := c.Solve(set, flow.Options{Channels: fo2.Channels})
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s2 {
		t.Fatal("stored key aliased the caller's mutated slice")
	}

	st := c.Stats()
	if st.SolveHits != 2 || st.SolveMisses != 3 {
		t.Fatalf("stats = %+v, want 2 hits 3 misses", st)
	}
}

func TestStatsRestore(t *testing.T) {
	c := New()
	want := Stats{SetHits: 5, SetMisses: 2, SolveHits: 7, SolveMisses: 3, Invalidations: 1}
	c.RestoreStats(want)
	if got := c.Stats(); got != want {
		t.Fatalf("restored stats = %+v, want %+v", got, want)
	}
}
