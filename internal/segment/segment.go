// Package segment enumerates candidate physical segments — the multi-hop
// fibre routes over which entanglement segments can be created with
// all-optical switching — and assembles them into the segment graph used by
// the LP, the ESC reservation pass and the ECE auxiliary graph.
//
// Following §III-D of the paper, candidates are the contiguous sub-segments
// of K Yen shortest physical paths per SD pair, pruned by a hop cap and a
// minimum creation probability, keeping the best few physical realizations
// per endpoint pair.
package segment

import (
	"errors"
	"fmt"
	"sort"

	"see/internal/graph"
	"see/internal/topo"
)

// Candidate is one physical realization of an entanglement segment: the
// concrete fibre route between the segment's endpoints.
type Candidate struct {
	// Path is the physical node sequence; Path[0] and Path[len-1] are the
	// segment endpoints that will store the Bell-pair photons.
	Path graph.Path
	// EdgeIDs are the physical link IDs along Path; creating the segment
	// reserves one channel on each for the whole slot.
	EdgeIDs []int
	// Prob is the one-slot success probability of creating the segment
	// over this route (p^k_uv in the paper).
	Prob float64
}

// U returns the smaller endpoint of the candidate.
func (c *Candidate) U() int { return min(c.Path[0], c.Path[len(c.Path)-1]) }

// V returns the larger endpoint of the candidate.
func (c *Candidate) V() int { return max(c.Path[0], c.Path[len(c.Path)-1]) }

// Hops returns the number of physical links the candidate spans.
func (c *Candidate) Hops() int { return c.Path.Hops() }

// PairKey identifies an unordered segment endpoint pair (U < V).
type PairKey struct {
	U, V int
}

// MakePairKey normalizes an endpoint pair.
func MakePairKey(a, b int) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey{U: a, V: b}
}

// Other returns the endpoint opposite to node x, and false if x is not an
// endpoint.
func (k PairKey) Other(x int) (int, bool) {
	switch x {
	case k.U:
		return k.V, true
	case k.V:
		return k.U, true
	default:
		return -1, false
	}
}

// Options tunes candidate enumeration.
type Options struct {
	// KPaths is the number of Yen shortest physical paths per SD pair
	// (paper §III-D; default 5).
	KPaths int
	// MaxSegmentHops caps the physical hop count of a segment. 1
	// reproduces the entanglement-link-only setting (REPS); large values
	// approach pure all-optical switching. Default 4.
	MaxSegmentHops int
	// MinProb prunes candidates whose creation probability is below the
	// threshold (paper: segments "with a low probability ... will be
	// removed"). Default 0.05.
	MinProb float64
	// MaxCandidatesPerPair keeps only the top realizations per endpoint
	// pair, by probability. Default 3.
	MaxCandidatesPerPair int
	// FullPathOnly enumerates only whole SD paths as segments (the E2E
	// baseline); MaxSegmentHops is ignored and MinProb is not applied so
	// that E2E still attempts low-probability long segments, as the
	// paper's E2E curve does.
	FullPathOnly bool
}

// DefaultOptions returns the defaults described above.
func DefaultOptions() Options {
	return Options{
		KPaths:               5,
		MaxSegmentHops:       4,
		MinProb:              0.05,
		MaxCandidatesPerPair: 3,
	}
}

func (o Options) withDefaults() Options {
	if o.KPaths <= 0 {
		o.KPaths = 5
	}
	if o.MaxSegmentHops <= 0 {
		o.MaxSegmentHops = 4
	}
	if o.MaxCandidatesPerPair <= 0 {
		o.MaxCandidatesPerPair = 3
	}
	if o.MinProb < 0 {
		o.MinProb = 0
	}
	return o
}

// Set is the candidate catalogue for one (network, SD pairs) instance.
type Set struct {
	Net   *topo.Network
	Pairs []topo.SDPair
	// ByPair lists candidates per endpoint pair, sorted by decreasing
	// probability.
	ByPair map[PairKey][]*Candidate
	// SDPaths holds, per SD pair, the physical candidate paths it was
	// derived from (useful for diagnostics and the E2E baseline).
	SDPaths [][]graph.Path

	// SegGraph has one undirected edge per endpoint pair with at least one
	// candidate; edge IDs index EdgePairs.
	SegGraph  *graph.Graph
	EdgePairs []PairKey
	EdgeOf    map[PairKey]int

	opts Options
}

// Build enumerates candidates for every SD pair.
func Build(net *topo.Network, pairs []topo.SDPair, opts Options) (*Set, error) {
	if net == nil {
		return nil, errors.New("segment: nil network")
	}
	opts = opts.withDefaults()
	s := &Set{
		Net:     net,
		Pairs:   append([]topo.SDPair(nil), pairs...),
		ByPair:  make(map[PairKey][]*Candidate),
		SDPaths: make([][]graph.Path, len(pairs)),
		EdgeOf:  make(map[PairKey]int),
		opts:    opts,
	}
	seen := make(map[string]struct{})
	for i, sd := range pairs {
		if sd.S == sd.D || sd.S < 0 || sd.D < 0 || sd.S >= net.NumNodes() || sd.D >= net.NumNodes() {
			return nil, fmt.Errorf("segment: invalid SD pair %d: %+v", i, sd)
		}
		paths := graph.YenKShortest(net.G, sd.S, sd.D, opts.KPaths, graph.DijkstraOptions{})
		s.SDPaths[i] = paths
		for _, p := range paths {
			if opts.FullPathOnly {
				s.addCandidate(p, seen, true)
				continue
			}
			for a := 0; a < len(p); a++ {
				for b := a + 1; b < len(p) && b-a <= opts.MaxSegmentHops; b++ {
					s.addCandidate(p[a:b+1], seen, false)
				}
			}
		}
	}
	s.trimAndSort()
	s.buildSegGraph()
	return s, nil
}

func (s *Set) addCandidate(p graph.Path, seen map[string]struct{}, skipMinProb bool) {
	if len(p) < 2 {
		return
	}
	key := topo.Key(p)
	if _, dup := seen[key]; dup {
		return
	}
	seen[key] = struct{}{}
	prob := s.Net.SegmentSuccessProb(p)
	if prob <= 0 {
		return
	}
	if !skipMinProb && prob < s.opts.MinProb {
		return
	}
	ids, err := s.Net.PathEdgeIDs(p)
	if err != nil {
		return
	}
	c := &Candidate{
		Path:    append(graph.Path(nil), p...),
		EdgeIDs: ids,
		Prob:    prob,
	}
	pk := MakePairKey(c.Path[0], c.Path[len(c.Path)-1])
	s.ByPair[pk] = append(s.ByPair[pk], c)
}

func (s *Set) trimAndSort() {
	for pk, list := range s.ByPair {
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].Prob != list[j].Prob {
				return list[i].Prob > list[j].Prob
			}
			return list[i].Hops() < list[j].Hops()
		})
		if len(list) > s.opts.MaxCandidatesPerPair {
			list = list[:s.opts.MaxCandidatesPerPair]
		}
		s.ByPair[pk] = list
	}
}

func (s *Set) buildSegGraph() {
	s.SegGraph = graph.New(s.Net.NumNodes())
	keys := make([]PairKey, 0, len(s.ByPair))
	for pk := range s.ByPair {
		keys = append(keys, pk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	s.EdgePairs = make([]PairKey, 0, len(keys))
	for _, pk := range keys {
		id := s.SegGraph.AddEdge(pk.U, pk.V, 1)
		s.EdgePairs = append(s.EdgePairs, pk)
		s.EdgeOf[pk] = id
	}
}

// For returns the candidates for an endpoint pair, best first.
func (s *Set) For(a, b int) []*Candidate {
	return s.ByPair[MakePairKey(a, b)]
}

// CandidateFor returns the candidate with exactly the given physical route
// (same orientation), or nil. Checkpoint restore uses it to re-link
// deserialized segments to the catalogue's candidate objects, so pointer
// identity — which structural comparisons of slot results depend on — is
// re-established against the deterministically rebuilt catalogue.
func (s *Set) CandidateFor(a, b int, path []int) *Candidate {
	for _, c := range s.For(a, b) {
		if len(c.Path) != len(path) {
			continue
		}
		match := true
		for i, v := range c.Path {
			if v != path[i] {
				match = false
				break
			}
		}
		if match {
			return c
		}
	}
	return nil
}

// Best returns the highest-probability candidate for an endpoint pair, or
// nil.
func (s *Set) Best(a, b int) *Candidate {
	list := s.For(a, b)
	if len(list) == 0 {
		return nil
	}
	return list[0]
}

// NumPairsWithCandidates returns how many endpoint pairs have candidates.
func (s *Set) NumPairsWithCandidates() int { return len(s.ByPair) }

// NumCandidates returns the total candidate count.
func (s *Set) NumCandidates() int {
	n := 0
	for _, l := range s.ByPair {
		n += len(l)
	}
	return n
}

// UsedLinks returns the sorted set of physical link IDs referenced by any
// candidate (the links that need LP capacity rows).
func (s *Set) UsedLinks() []int {
	used := make(map[int]struct{})
	for _, list := range s.ByPair {
		for _, c := range list {
			for _, id := range c.EdgeIDs {
				used[id] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(used))
	for id := range used {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// UsedEndpoints returns the sorted set of nodes that appear as a candidate
// endpoint (the nodes that need LP memory rows).
func (s *Set) UsedEndpoints() []int {
	used := make(map[int]struct{})
	for pk := range s.ByPair {
		used[pk.U] = struct{}{}
		used[pk.V] = struct{}{}
	}
	out := make([]int, 0, len(used))
	for u := range used {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}
