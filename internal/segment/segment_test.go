package segment

import (
	"testing"

	"see/internal/graph"
	"see/internal/topo"
	"see/internal/xrand"
)

func motivationSet(t *testing.T, opts Options) (*Set, *topo.Network, []topo.SDPair) {
	t.Helper()
	net, pairs := topo.Motivation()
	s, err := Build(net, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, net, pairs
}

func TestBuildMotivationContainsKeySegments(t *testing.T) {
	s, _, _ := motivationSet(t, DefaultOptions())
	// Single links along SD paths must be present.
	if s.Best(topo.MotivS1, topo.MotivR1) == nil {
		t.Fatal("missing link candidate s1-r1")
	}
	// The famous 2-hop segment s2-r1-d2.
	c := s.Best(topo.MotivS2, topo.MotivD2)
	if c == nil {
		t.Fatal("missing segment s2..d2")
	}
	if c.Prob != 0.8 || c.Hops() != 2 {
		t.Fatalf("s2..d2 best candidate = %+v, want 2 hops prob 0.8", c)
	}
	// r1..d1 via r2 with probability 0.85.
	c = s.Best(topo.MotivR1, topo.MotivD1)
	if c == nil || c.Prob != 0.85 {
		t.Fatalf("r1..d1 best candidate = %+v, want prob 0.85", c)
	}
}

func TestBuildHopCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSegmentHops = 1
	s, _, _ := motivationSet(t, opts)
	for pk, list := range s.ByPair {
		for _, c := range list {
			if c.Hops() != 1 {
				t.Fatalf("hop cap 1 violated for %+v: %v", pk, c.Path)
			}
		}
	}
	// s2..d2 requires 2 hops, so it must be absent.
	if s.Best(topo.MotivS2, topo.MotivD2) != nil {
		t.Fatal("2-hop segment present despite hop cap 1")
	}
}

func TestBuildMinProbPrunes(t *testing.T) {
	opts := DefaultOptions()
	opts.MinProb = 0.82 // removes the 0.8 segment but keeps 0.85 and 0.9
	s, _, _ := motivationSet(t, opts)
	if got := s.Best(topo.MotivS2, topo.MotivD2); got != nil && got.Prob < 0.82 {
		t.Fatalf("pruned candidate survived: %+v", got)
	}
	if s.Best(topo.MotivS1, topo.MotivR1) == nil {
		t.Fatal("high-probability link wrongly pruned")
	}
}

func TestBuildFullPathOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.FullPathOnly = true
	s, _, pairs := motivationSet(t, opts)
	for pk, list := range s.ByPair {
		want1 := MakePairKey(pairs[0].S, pairs[0].D)
		want2 := MakePairKey(pairs[1].S, pairs[1].D)
		if pk != want1 && pk != want2 {
			t.Fatalf("full-path-only produced non-SD segment %+v", pk)
		}
		for _, c := range list {
			if c.Path[0] != pk.U && c.Path[0] != pk.V {
				t.Fatalf("candidate endpoints wrong: %v", c.Path)
			}
		}
	}
	if s.Best(pairs[1].S, pairs[1].D) == nil {
		t.Fatal("missing full-path candidate for pair 2")
	}
}

func TestCandidatesSortedAndTrimmed(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxCandidatesPerPair = 2
	s, _, _ := motivationSet(t, opts)
	for pk, list := range s.ByPair {
		if len(list) > 2 {
			t.Fatalf("pair %+v kept %d candidates, cap is 2", pk, len(list))
		}
		for i := 1; i < len(list); i++ {
			if list[i].Prob > list[i-1].Prob {
				t.Fatalf("pair %+v candidates not sorted by prob", pk)
			}
		}
	}
}

func TestSegGraphConsistent(t *testing.T) {
	s, _, _ := motivationSet(t, DefaultOptions())
	if s.SegGraph.N() != s.Net.NumNodes() {
		t.Fatal("segment graph node count mismatch")
	}
	if len(s.EdgePairs) != len(s.ByPair) {
		t.Fatalf("edge pairs %d != pair groups %d", len(s.EdgePairs), len(s.ByPair))
	}
	for pk, id := range s.EdgeOf {
		if s.EdgePairs[id] != pk {
			t.Fatalf("EdgeOf/EdgePairs inconsistent for %+v", pk)
		}
	}
}

func TestCandidateInvariants(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.Nodes = 60
	net, err := topo.Generate(cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.ChooseSDPairs(net, 8, xrand.New(10))
	s, err := Build(net, pairs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCandidates() == 0 {
		t.Fatal("no candidates on a connected 60-node network")
	}
	for pk, list := range s.ByPair {
		for _, c := range list {
			if !c.Path.Loopless() {
				t.Fatalf("loopy candidate %v", c.Path)
			}
			if c.Hops() > DefaultOptions().MaxSegmentHops {
				t.Fatalf("hop cap violated: %v", c.Path)
			}
			if c.Prob < DefaultOptions().MinProb || c.Prob > 1 {
				t.Fatalf("prob out of range: %v", c.Prob)
			}
			if len(c.EdgeIDs) != c.Hops() {
				t.Fatalf("edge IDs %d != hops %d", len(c.EdgeIDs), c.Hops())
			}
			if MakePairKey(c.Path[0], c.Path[len(c.Path)-1]) != pk {
				t.Fatalf("candidate endpoints %v filed under %+v", c.Path, pk)
			}
		}
	}
	// Every SD pair should be connected in the segment graph.
	for i, sd := range pairs {
		hops := graph.BFSHops(s.SegGraph, sd.S)
		if hops[sd.D] == -1 {
			t.Fatalf("SD pair %d (%+v) unroutable in segment graph", i, sd)
		}
	}
	// UsedLinks/UsedEndpoints must cover every candidate.
	links := map[int]struct{}{}
	for _, id := range s.UsedLinks() {
		links[id] = struct{}{}
	}
	ends := map[int]struct{}{}
	for _, u := range s.UsedEndpoints() {
		ends[u] = struct{}{}
	}
	for _, list := range s.ByPair {
		for _, c := range list {
			for _, id := range c.EdgeIDs {
				if _, ok := links[id]; !ok {
					t.Fatalf("link %d missing from UsedLinks", id)
				}
			}
			if _, ok := ends[c.Path[0]]; !ok {
				t.Fatal("endpoint missing from UsedEndpoints")
			}
			if _, ok := ends[c.Path[len(c.Path)-1]]; !ok {
				t.Fatal("endpoint missing from UsedEndpoints")
			}
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	net, _ := topo.Motivation()
	if _, err := Build(nil, nil, DefaultOptions()); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := Build(net, []topo.SDPair{{S: 0, D: 0}}, DefaultOptions()); err == nil {
		t.Fatal("degenerate pair accepted")
	}
	if _, err := Build(net, []topo.SDPair{{S: 0, D: 99}}, DefaultOptions()); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
}

func TestPairKey(t *testing.T) {
	pk := MakePairKey(7, 3)
	if pk.U != 3 || pk.V != 7 {
		t.Fatalf("MakePairKey not normalized: %+v", pk)
	}
	if o, ok := pk.Other(3); !ok || o != 7 {
		t.Fatal("Other(3) wrong")
	}
	if o, ok := pk.Other(7); !ok || o != 3 {
		t.Fatal("Other(7) wrong")
	}
	if _, ok := pk.Other(5); ok {
		t.Fatal("Other(non-endpoint) must be false")
	}
}
