package chaos

import "errors"

// InjectorState is the serializable phase of an Injector: the slot clock and
// the lifetime fault tallies. The down sets, the brownout channel budgets
// and the decoherence sequence are not stored — all are recomputed (the
// first two by Restore, the last by the next BeginSlot), because
// checkpoints are taken only at slot boundaries: the consumed part of a
// brownout budget is intra-slot state that the next BeginSlot resets
// anyway, so only the tallies need to round-trip. The plan itself is
// configuration, not state: a restored run rebuilds the injector from the
// same FaultPlan (disc-cut link sets included) and then applies the saved
// phase.
type InjectorState struct {
	Slot   int    `json:"slot"`
	Counts Counts `json:"counts"`
}

// State snapshots the injector's phase. It returns nil for an inert (nil or
// zero-plan) injector, preserving the discipline that an inert injector is
// indistinguishable from no injector at all — including in checkpoints.
func (in *Injector) State() *InjectorState {
	if !in.Active() {
		return nil
	}
	return &InjectorState{Slot: in.slot, Counts: in.counts}
}

// Restore rewinds the injector to a snapshotted phase: the slot clock and
// counts are set and the down sets recomputed for that slot, without
// re-incrementing the outage counters (the original BeginSlot already
// counted them). Restore(nil) resets the injector to its pre-first-slot
// state; restoring a non-nil state into an inert injector is a
// configuration mismatch and errors.
func (in *Injector) Restore(st *InjectorState) error {
	if !in.Active() {
		if st == nil {
			return nil
		}
		return errors.New("chaos: cannot restore fault state into an inert injector (fault plan mismatch)")
	}
	if st == nil {
		in.slot = -1
		in.counts = Counts{}
	} else {
		in.slot = st.Slot
		in.counts = st.Counts
	}
	in.decoSeq = 0
	// Rebuild the slot view — down sets and brownout budgets — without
	// re-incrementing the outage counters a past BeginSlot already counted.
	in.applyFaults(false)
	return nil
}
