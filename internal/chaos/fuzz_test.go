package chaos

import (
	"reflect"
	"testing"
)

// FuzzParseSpec checks the fault-spec parser on arbitrary input: it must
// never panic, and any spec it accepts must round-trip through the
// canonical String rendering — re-parsing the rendering succeeds, yields
// an equal plan, and renders to the same string (String is a fixed point
// after one canonicalization).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=7;node=3@2-5;link=10@1-;loss=0.05;decohere=0.02",
		"node=0",
		"node=3@2-5,link=1@4-4",
		"loss=1",
		"decohere=0",
		"seed=-1;node=2@0-",
		"seed=9223372036854775807",
		"node=3@five-6",
		"bogus=1",
		"node=",
		";;;",
		"loss=1.5",
		"decohere=NaN",
		"cut:100,200,50@2-5",
		"cut:!0,0,1000",
		"cut:1,2",
		"cut:1,2,-5",
		"cut:NaN,0,1",
		"brown:3,0.5@1-4",
		"brown:!2,0.25",
		"brown:1,1.5",
		"brown:1,NaN",
		"brown:1,0.5@1-3;brown:1,0.25@2-6",
		"flap:1,4,0.5@0-8",
		"flap:!0,3,0.75@2-",
		"flap:1,0,0.5",
		"flap:1,4,-1",
		"flap:2,4,0.5@0-;flap:2,2,0.5@9-",
		"seed=9;node=1@1-2;cut:10,20,5@1-3;brown:0,0.5@4-6;flap:2,2,0.5@1-;loss=0.1",
		"node=1@1-2,cut:1,2,3",
		"cut:",
		"brown:;flap:",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseSpec(s)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("ParseSpec(%q) returned nil plan and nil error", s)
		}
		canon := p.String()
		q, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round-trip changed the plan: %q gave %+v, canonical %q gave %+v", s, p, canon, q)
		}
		if again := q.String(); again != canon {
			t.Fatalf("String is not canonical: %q then %q", canon, again)
		}
	})
}
