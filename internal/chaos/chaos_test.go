package chaos

import (
	"strings"
	"testing"

	"see/internal/topo"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"seed=7;node=3@2-5;link=10@1-;loss=0.05;decohere=0.02",
		"node=0@0-1",
		"loss=0.5",
		"seed=42;decohere=1",
	}
	for _, s := range specs {
		p, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		q, err := ParseSpec(p.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", p.String(), s, err)
		}
		if p.String() != q.String() {
			t.Errorf("round trip: %q -> %q", p.String(), q.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"frob=1",         // unknown key
		"node=x@1-2",     // non-numeric id
		"loss=1.5",       // probability out of range
		"loss=abc",       // non-numeric probability
		"decohere=-0.1",  // negative probability
		"node=1@5-2",     // empty window
		"seed=notanint",  // bad seed
		"node=1@a-b",     // bad window bounds
		"link=2@3-3",     // empty window (To == From)
		";;node=1@@1-2;", // mangled separators
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestWindowCovers(t *testing.T) {
	w := Window{ID: 1, From: 2, To: 5}
	for slot, want := range map[int]bool{0: false, 1: false, 2: true, 4: true, 5: false, 9: false} {
		if got := w.Covers(slot); got != want {
			t.Errorf("Covers(%d) = %v, want %v", slot, got, want)
		}
	}
	open := Window{ID: 1, From: 3}
	if open.Covers(2) || !open.Covers(3) || !open.Covers(1000) {
		t.Error("open-ended window wrong")
	}
}

func TestValidateAgainstNetwork(t *testing.T) {
	net, _ := topo.Motivation()
	ok := &FaultPlan{NodeOutages: []Window{{ID: 0, From: 0}}, MsgLoss: 0.1}
	if err := ok.Validate(net.NumNodes(), net.NumLinks()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, p := range []*FaultPlan{
		{NodeOutages: []Window{{ID: net.NumNodes(), From: 0}}},
		{LinkOutages: []Window{{ID: -1, From: 0}}},
		{MsgLoss: 2},
		{Decoherence: -1},
	} {
		if err := p.Validate(net.NumNodes(), net.NumLinks()); err == nil {
			t.Errorf("invalid plan %v accepted", p)
		}
	}
	if _, err := NewInjector(&FaultPlan{NodeOutages: []Window{{ID: 99, From: 0}}}, net); err == nil {
		t.Error("NewInjector accepted out-of-range node")
	}
}

func TestZeroPlanIsInert(t *testing.T) {
	net, _ := topo.Motivation()
	for _, plan := range []*FaultPlan{nil, {}} {
		in, err := NewInjector(plan, net)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		if in.Active() {
			t.Fatal("zero plan active")
		}
		in.BeginSlot()
		if in.NodeDown(0) || in.LinkDown(0) || in.SegmentDecohered() || in.DropDelivery(1, 1) {
			t.Error("zero plan injected a fault")
		}
		if in.Counts().Total() != 0 {
			t.Errorf("zero plan counted faults: %+v", in.Counts())
		}
	}
	// A nil *Injector is safe everywhere (engines call it unconditionally).
	var nilIn *Injector
	if nilIn.Active() || nilIn.SegmentDecohered() || nilIn.DropDelivery(1, 1) {
		t.Error("nil injector injected a fault")
	}
}

func TestNodeCrashTakesIncidentLinksDown(t *testing.T) {
	net, _ := topo.Motivation()
	const victim = 1
	in, err := NewInjector(&FaultPlan{NodeOutages: []Window{{ID: victim, From: 1, To: 3}}}, net)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	links := net.IncidentLinks(victim)
	if len(links) == 0 {
		t.Fatal("victim has no links")
	}
	// Slot 0: before the window.
	in.BeginSlot()
	if in.NodeDown(victim) {
		t.Error("node down before window")
	}
	// Slots 1 and 2: inside.
	for s := 1; s <= 2; s++ {
		in.BeginSlot()
		if !in.NodeDown(victim) {
			t.Errorf("slot %d: node not down", s)
		}
		for _, l := range links {
			if !in.LinkDown(l) {
				t.Errorf("slot %d: incident link %d not down", s, l)
			}
		}
	}
	// Slot 3: recovered.
	in.BeginSlot()
	if in.NodeDown(victim) || in.LinkDown(links[0]) {
		t.Error("node or link still down after recovery")
	}
	if got := in.DownNodes(); len(got) != 0 {
		t.Errorf("DownNodes after recovery = %v", got)
	}
}

func TestHashStreamsDeterministicAndSeedSensitive(t *testing.T) {
	net, _ := topo.Motivation()
	run := func(seed int64) (drops, deco []bool) {
		in, err := NewInjector(&FaultPlan{Seed: seed, MsgLoss: 0.3, Decoherence: 0.3}, net)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		in.BeginSlot()
		for i := 0; i < 200; i++ {
			drops = append(drops, in.DropDelivery(i, 1))
			deco = append(deco, in.SegmentDecohered())
		}
		return drops, deco
	}
	d1, c1 := run(7)
	d2, c2 := run(7)
	d3, c3 := run(8)
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !same(d1, d2) || !same(c1, c2) {
		t.Fatal("same seed produced different fault streams")
	}
	if same(d1, d3) && same(c1, c3) {
		t.Fatal("different seeds produced identical fault streams (200 draws at p=0.3)")
	}
	count := func(a []bool) (n int) {
		for _, v := range a {
			if v {
				n++
			}
		}
		return
	}
	// 200 draws at p=0.3: expect roughly 60, allow a wide deterministic band.
	if n := count(d1); n < 30 || n > 90 {
		t.Errorf("drop rate off: %d/200 at p=0.3", n)
	}
}

func TestStringZeroPlan(t *testing.T) {
	var p *FaultPlan
	if s := p.String(); s != "" {
		t.Errorf("nil plan String() = %q", s)
	}
	if !p.IsZero() || !(&FaultPlan{Seed: 5}).IsZero() {
		t.Error("IsZero wrong")
	}
	got := (&FaultPlan{Seed: 3, MsgLoss: 0.25}).String()
	if !strings.Contains(got, "seed=3") || !strings.Contains(got, "loss=0.25") {
		t.Errorf("String() = %q", got)
	}
}
