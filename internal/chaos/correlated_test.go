package chaos

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"see/internal/segment"
	"see/internal/topo"
)

// motivNet returns the Motivation fixture with the channel tables widened
// so brownouts have something to take away (the seed fixture is 1 channel
// per link).
func motivNet(t *testing.T) *topo.Network {
	t.Helper()
	net, _ := topo.Motivation()
	for i := range net.Channels {
		net.Channels[i] = 4
	}
	return net
}

func TestCorrelatedSpecRoundTrip(t *testing.T) {
	specs := []string{
		"cut:100,200,50@2-5",
		"cut:!0,0,1000",
		"brown:3,0.5@1-4",
		"brown:!2,0.25",
		"flap:1,4,0.5@0-8",
		"flap:!0,3,0.75@2-",
		"seed=9;node=1@1-2;cut:10,20,5@1-3;brown:0,0.5@4-6;flap:2,2,0.5@1-;loss=0.1",
	}
	for _, s := range specs {
		p, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		q, err := ParseSpec(p.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", p.String(), s, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Errorf("round trip of %q diverged:\n got %+v\nwant %+v", s, q, p)
		}
		if p.String() != q.String() {
			t.Errorf("String not a fixed point: %q -> %q", p.String(), q.String())
		}
	}
}

func TestCorrelatedSpecErrors(t *testing.T) {
	bad := map[string]string{
		"cut:1,2@1-3":                      "want cut:x,y,r",
		"cut:a,b,c":                        "",
		"cut:1,2,-5":                       "radius",
		"cut:1,2,NaN":                      "",
		"brown:1":                          "want brown:link,frac",
		"brown:1,1.5":                      "fraction",
		"brown:1,-0.1":                     "fraction",
		"brown:1,NaN":                      "fraction",
		"brown:x,0.5":                      "",
		"flap:1,4":                         "want flap:link,period,duty",
		"flap:1,0,0.5":                     "period",
		"flap:1,4,1.5":                     "duty",
		"flap:1,4,NaN":                     "duty",
		"cut:1,2,3@5-2":                    "window",
		"brown:1,0.5@1-3;brown:1,0.25@2-6": "overlapping",
		"flap:2,4,0.5@0-;flap:2,2,0.5@9-":  "overlapping",
		"node=1@1-2,cut:1,2,3":             "separated by ';'",
	}
	for s, frag := range bad {
		_, err := ParseSpec(s)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
			continue
		}
		if frag != "" && !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseSpec(%q) error %q does not mention %q", s, err, frag)
		}
	}
	// Non-overlapping windows on the same link stay legal, as do
	// overlapping windows on different links.
	for _, s := range []string{
		"brown:1,0.5@1-3;brown:1,0.25@3-6",
		"brown:1,0.5@1-3;brown:2,0.25@2-6",
		"flap:1,4,0.5@0-4;flap:1,2,0.5@4-8",
	} {
		if _, err := ParseSpec(s); err != nil {
			t.Errorf("ParseSpec(%q): %v", s, err)
		}
	}
}

func TestDiscLinks(t *testing.T) {
	net, _ := topo.Motivation()
	// Link 0 is (0,2): midpoint (500, 750). A tight disc catches only it.
	got := DiscLinks(net, 500, 750, 10)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("tight disc = %v, want [0]", got)
	}
	// A disc covering the whole layout catches every link.
	got = DiscLinks(net, 1500, 500, 1e6)
	if len(got) != net.NumLinks() {
		t.Errorf("giant disc = %v, want all %d links", got, net.NumLinks())
	}
	// An empty region catches none.
	if got := DiscLinks(net, -9000, -9000, 10); len(got) != 0 {
		t.Errorf("remote disc = %v, want none", got)
	}
}

func TestDiscCutFailsLinksTogether(t *testing.T) {
	net := motivNet(t)
	// Disc around node 2's location (1000, 500) wide enough to cover the
	// midpoints of its incident links.
	cut := DiscCut{X: 1000, Y: 500, R: 600, From: 1, To: 3}
	links := DiscLinks(net, cut.X, cut.Y, cut.R)
	if len(links) < 2 {
		t.Fatalf("fixture disc covers %v, want >= 2 links", links)
	}
	in, err := NewInjector(&FaultPlan{DiscCuts: []DiscCut{cut}}, net)
	if err != nil {
		t.Fatal(err)
	}
	in.BeginSlot() // slot 0: before the window
	for _, id := range links {
		if in.LinkDown(id) {
			t.Errorf("slot 0: link %d down before the cut", id)
		}
	}
	in.BeginSlot() // slot 1: inside
	for _, id := range links {
		if !in.LinkDown(id) {
			t.Errorf("slot 1: link %d survived the cut", id)
		}
		if in.ChannelCap(id) != 0 {
			t.Errorf("slot 1: cut link %d has channels", id)
		}
	}
	if got := in.Counts().CutLinkSlotsDown; got != len(links) {
		t.Errorf("CutLinkSlotsDown = %d, want %d", got, len(links))
	}
	in.BeginSlot() // slot 2: still inside
	in.BeginSlot() // slot 3: recovered
	for _, id := range links {
		if in.LinkDown(id) {
			t.Errorf("slot 3: link %d still down", id)
		}
	}
	if got := in.Counts().CutLinkSlotsDown; got != 2*len(links) {
		t.Errorf("total CutLinkSlotsDown = %d, want %d", got, 2*len(links))
	}
}

func TestFlapSchedule(t *testing.T) {
	f := Flap{Link: 0, Period: 4, Duty: 0.5, From: 2, To: 10}
	// Duty 0.5 of period 4: up the first 2 slots of each cycle (counted
	// from the window start), down the last 2.
	want := map[int]bool{
		0: false, 1: false, // before the window
		2: false, 3: false, 4: true, 5: true, // first cycle
		6: false, 7: false, 8: true, 9: true, // second cycle
		10: false, 11: false, // after the window
	}
	for slot, down := range want {
		if got := f.DownAt(slot); got != down {
			t.Errorf("DownAt(%d) = %v, want %v", slot, got, down)
		}
	}
	// Duty 0 is always down inside the window; duty 1 never is.
	if !(Flap{Link: 0, Period: 3, Duty: 0, From: 0}).DownAt(5) {
		t.Error("duty-0 flap was up")
	}
	if (Flap{Link: 0, Period: 3, Duty: 1, From: 0}).DownAt(5) {
		t.Error("duty-1 flap was down")
	}

	net := motivNet(t)
	in, err := NewInjector(&FaultPlan{Flaps: []Flap{{Link: 0, Period: 2, Duty: 0.5, From: 0, To: 4}}}, net)
	if err != nil {
		t.Fatal(err)
	}
	downs := 0
	for slot := 0; slot < 6; slot++ {
		in.BeginSlot()
		if in.LinkDown(0) {
			downs++
		}
	}
	if downs != 2 {
		t.Errorf("flap produced %d down slots over 6, want 2", downs)
	}
	if got := in.Counts().FlapSlotsDown; got != 2 {
		t.Errorf("FlapSlotsDown = %d, want 2", got)
	}
}

func TestBrownoutChannelCapAndCapAttempts(t *testing.T) {
	net := motivNet(t) // 4 channels per link
	in, err := NewInjector(&FaultPlan{Brownouts: []Brownout{{Link: 1, Frac: 0.5, From: 1, To: 2}}}, net)
	if err != nil {
		t.Fatal(err)
	}
	in.BeginSlot() // slot 0: before the window
	if got := in.ChannelCap(1); got != 4 {
		t.Errorf("slot 0: ChannelCap = %d, want full 4", got)
	}
	in.BeginSlot() // slot 1: browned to 2 of 4
	if got := in.ChannelCap(1); got != 2 {
		t.Errorf("slot 1: ChannelCap = %d, want 2", got)
	}
	// A candidate crossing the browned link wants 4 attempts: 2 granted,
	// 2 denied; a later candidate finds the budget exhausted.
	browned := &segment.Candidate{EdgeIDs: []int{0, 1}}
	if got := in.CapAttempts(browned, 4); got != 2 {
		t.Errorf("CapAttempts = %d, want 2", got)
	}
	if got := in.CapAttempts(browned, 3); got != 0 {
		t.Errorf("second CapAttempts = %d, want 0 (budget spent)", got)
	}
	if got := in.Counts().BrownoutAttemptsLost; got != 2+3 {
		t.Errorf("BrownoutAttemptsLost = %d, want 5", got)
	}
	// Candidates avoiding the browned link are untouched and consume no
	// budget accounting.
	clean := &segment.Candidate{EdgeIDs: []int{3, 4}}
	if got := in.CapAttempts(clean, 7); got != 7 {
		t.Errorf("clean CapAttempts = %d, want 7", got)
	}
	in.BeginSlot() // slot 2: window over, budget reset to full
	if got := in.ChannelCap(1); got != 4 {
		t.Errorf("slot 2: ChannelCap = %d, want full 4", got)
	}
	// A nil injector never caps.
	var nilIn *Injector
	if got := nilIn.CapAttempts(browned, 9); got != 9 {
		t.Errorf("nil CapAttempts = %d, want 9", got)
	}
	if nilIn.ChannelCap(0) != math.MaxInt {
		t.Error("nil ChannelCap is not MaxInt")
	}
}

func TestForecastAnnouncedVsSurprise(t *testing.T) {
	net := motivNet(t)
	plan := &FaultPlan{
		NodeOutages: []Window{{ID: 4, From: 50, To: 60}},
		LinkOutages: []Window{{ID: 0, From: 10, To: 20, Surprise: true}},
		Brownouts:   []Brownout{{Link: 1, Frac: 0.5, From: 5, To: 9}},
		Flaps:       []Flap{{Link: 2, Period: 4, Duty: 0.75, From: 0, To: 100}},
	}
	fc := plan.Forecast(net)
	if fc.IsZero() {
		t.Fatal("forecast is zero")
	}
	if !fc.NodeDead(4) || fc.NodeDead(0) {
		t.Error("NodeDead wrong")
	}
	if fc.LinkDead(0) {
		t.Error("surprise link outage leaked into the forecast")
	}
	for _, id := range net.IncidentLinks(4) {
		if !fc.LinkDead(id) {
			t.Errorf("link %d incident to dead node 4 not dead", id)
		}
	}
	if got := fc.Channels(1, 4); got != 2 {
		t.Errorf("browned Channels(1, 4) = %d, want 2", got)
	}
	if got := fc.Channels(2, 4); got != 3 {
		t.Errorf("flapping Channels(2, 4) = %d, want 3 (duty 0.75)", got)
	}
	if got := fc.Memory(4, 5); got != 0 {
		t.Errorf("dead node Memory = %d, want 0", got)
	}
	if got := fc.Memory(0, 5); got != 5 {
		t.Errorf("healthy node Memory = %d, want 5", got)
	}
	// Avoided: node 4 + its incident links + browned link 1 + flapping
	// link 2 (minus any overlap with the incident set).
	if fc.Avoided() < 4 {
		t.Errorf("Avoided = %d, want >= 4", fc.Avoided())
	}

	// An all-surprise plan forecasts nothing.
	surprise := &FaultPlan{LinkOutages: []Window{{ID: 0, From: 1, To: 2, Surprise: true}}}
	if fc := surprise.Forecast(net); !fc.IsZero() {
		t.Error("all-surprise plan has a non-zero forecast")
	}
	// The nil forecast reports full capacity everywhere.
	var nilFc *Forecast
	if nilFc.NodeDead(0) || nilFc.LinkDead(0) || nilFc.Channels(0, 4) != 4 || nilFc.Memory(0, 3) != 3 || nilFc.Avoided() != 0 {
		t.Error("nil forecast is not the zero view")
	}
	// A zero up-cycle flap forecasts the link dead outright.
	dead := &FaultPlan{Flaps: []Flap{{Link: 3, Period: 5, Duty: 0, From: 0, To: 10}}}
	if fc := dead.Forecast(net); !fc.LinkDead(3) {
		t.Error("duty-0 flap not forecast dead")
	}
}

func TestInjectorForecastCached(t *testing.T) {
	net := motivNet(t)
	in, err := NewInjector(&FaultPlan{Brownouts: []Brownout{{Link: 0, Frac: 0.5, From: 0, To: 5}}}, net)
	if err != nil {
		t.Fatal(err)
	}
	if in.Forecast() == nil || in.Forecast() != in.Forecast() {
		t.Error("injector forecast not built or not cached")
	}
	inert, err := NewInjector(&FaultPlan{}, net)
	if err != nil {
		t.Fatal(err)
	}
	if inert.Forecast() != nil {
		t.Error("inert injector has a forecast")
	}
}
