package chaos

import "see/internal/topo"

// Forecast is the planner-visible subset of a FaultPlan: the announced
// items (scheduled maintenance), excluding everything marked surprise with
// the spec's '!'. It is deliberately time-invariant and conservative —
// planners build their path sets and LP tables once at construction, so an
// element announced as failing at *any* slot of the plan is avoided for the
// whole run:
//
//   - an announced node outage zeroes the node's memory and kills its
//     incident links;
//   - an announced link outage or disc cut kills the link;
//   - an announced brownout keeps frac of the link's channels;
//   - an announced flap keeps the duty-cycle fraction round(duty·period)/period
//     of the link's channels (a zero up-cycle kills it).
//
// Multiple announced reductions on one link compose multiplicatively. The
// zero view is represented as nil; every method is nil-safe and then
// reports full capacity, so fault-aware engines built without chaos (or
// with an all-surprise plan) behave byte-identically to their fault-blind
// twins.
type Forecast struct {
	deadNode []bool
	deadLink []bool
	// frac is the per-link surviving channel fraction in [0, 1] from
	// announced brownouts and flaps (1 = untouched).
	frac    []float64
	avoided int
}

// Forecast builds the announced-outage view of the plan over the network.
// It returns nil when nothing is announced (nil/zero plan, or every item a
// surprise).
func (p *FaultPlan) Forecast(net *topo.Network) *Forecast {
	if p.IsZero() {
		return nil
	}
	f := &Forecast{
		deadNode: make([]bool, net.NumNodes()),
		deadLink: make([]bool, net.NumLinks()),
		frac:     make([]float64, net.NumLinks()),
	}
	for i := range f.frac {
		f.frac[i] = 1
	}
	for _, w := range p.NodeOutages {
		if !w.Surprise {
			f.deadNode[w.ID] = true
		}
	}
	for _, w := range p.LinkOutages {
		if !w.Surprise {
			f.deadLink[w.ID] = true
		}
	}
	for _, d := range p.DiscCuts {
		if d.Surprise {
			continue
		}
		for _, id := range DiscLinks(net, d.X, d.Y, d.R) {
			f.deadLink[id] = true
		}
	}
	for _, b := range p.Brownouts {
		if !b.Surprise {
			f.frac[b.Link] *= b.Frac
		}
	}
	for _, fl := range p.Flaps {
		if !fl.Surprise {
			f.frac[fl.Link] *= float64(fl.upSlots()) / float64(fl.Period)
		}
	}
	for v, dead := range f.deadNode {
		if dead {
			for _, id := range net.IncidentLinks(v) {
				f.deadLink[id] = true
			}
		}
	}
	for id := range f.frac {
		if f.frac[id] == 0 {
			f.deadLink[id] = true
		}
	}
	for _, dead := range f.deadNode {
		if dead {
			f.avoided++
		}
	}
	for id, dead := range f.deadLink {
		if dead || f.frac[id] < 1 {
			f.avoided++
		}
	}
	if f.avoided == 0 {
		return nil
	}
	return f
}

// Forecast returns the injector's announced-outage view (nil for an inert
// injector or an all-surprise plan), built once and cached.
func (in *Injector) Forecast() *Forecast {
	if !in.Active() {
		return nil
	}
	if !in.fcBuilt {
		in.fc = in.plan.Forecast(in.net)
		in.fcBuilt = true
	}
	return in.fc
}

// IsZero reports whether the forecast announces nothing.
func (f *Forecast) IsZero() bool { return f == nil || f.avoided == 0 }

// NodeDead reports whether the node has an announced outage.
func (f *Forecast) NodeDead(v int) bool { return f != nil && f.deadNode[v] }

// LinkDead reports whether the link has an announced outage (directly, via
// a disc cut, via a dead endpoint, or via a zero surviving fraction).
func (f *Forecast) LinkDead(id int) bool { return f != nil && f.deadLink[id] }

// Channels maps a link's full channel count to its announced effective
// capacity: 0 when dead, floor(frac·full) when de-rated, full otherwise.
func (f *Forecast) Channels(id, full int) int {
	if f == nil {
		return full
	}
	if f.deadLink[id] {
		return 0
	}
	return int(float64(full) * f.frac[id])
}

// Memory maps a node's memory size to its announced effective capacity
// (0 when the node has an announced outage).
func (f *Forecast) Memory(v, full int) int {
	if f != nil && f.deadNode[v] {
		return 0
	}
	return full
}

// Avoided counts the announced elements a fault-aware planner routes
// around: dead nodes plus dead or de-rated links. Engines report it as
// sched.IncidentForecastAvoid.
func (f *Forecast) Avoided() int {
	if f == nil {
		return 0
	}
	return f.avoided
}
