package chaos

import (
	"reflect"
	"testing"

	"see/internal/segment"
	"see/internal/topo"
)

// snapshotPlan exercises every fault stream: outages, correlated cuts,
// brownouts, flaps, loss, decoherence.
func snapshotPlan() *FaultPlan {
	return &FaultPlan{
		Seed:        99,
		NodeOutages: []Window{{ID: 2, From: 3, To: 6}},
		LinkOutages: []Window{{ID: 1, From: 5, To: 8}},
		DiscCuts:    []DiscCut{{X: 1000, Y: 500, R: 600, From: 4, To: 7}},
		Brownouts:   []Brownout{{Link: 0, Frac: 0.5, From: 2, To: 9}},
		Flaps:       []Flap{{Link: 5, Period: 2, Duty: 0.5, From: 1, To: 10}},
		MsgLoss:     0.2,
		Decoherence: 0.3,
	}
}

// drive runs the injector through one slot's worth of fault queries,
// returning the decisions so runs can be compared decision-for-decision
// (booleans rendered as 0/1, channel capacities and attempt grants as
// themselves).
func drive(in *Injector) []int {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	var out []int
	in.BeginSlot()
	for v := 0; v < 4; v++ {
		out = append(out, b(in.NodeDown(v)))
	}
	for id := 0; id < 6; id++ {
		out = append(out, b(in.LinkDown(id)), in.ChannelCap(id))
	}
	// Consume brownout budget mid-slot; the grant sequence must reproduce.
	for k := 0; k < 3; k++ {
		out = append(out, in.CapAttempts(&segment.Candidate{EdgeIDs: []int{0}}, 1))
	}
	for k := 0; k < 5; k++ {
		out = append(out, b(in.SegmentDecohered()))
	}
	for m := 0; m < 5; m++ {
		out = append(out, b(in.DropDelivery(m, 0)))
	}
	return out
}

// TestInjectorStateRestore asserts the kill/resume contract: restoring a
// mid-run snapshot into a fresh injector reproduces the remaining slots'
// decisions and final counts exactly.
func TestInjectorStateRestore(t *testing.T) {
	net, _ := topo.Motivation()
	const slots, split = 10, 4

	ref, err := NewInjector(snapshotPlan(), net)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]int
	var snap *InjectorState
	for s := 0; s < slots; s++ {
		if s == split {
			snap = ref.State()
		}
		dec := drive(ref)
		if s >= split {
			want = append(want, dec)
		}
	}
	if snap == nil || snap.Slot != split-1 {
		t.Fatalf("snapshot = %+v, want slot %d", snap, split-1)
	}

	resumed, err := NewInjector(snapshotPlan(), net)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if resumed.Slot() != split-1 {
		t.Fatalf("restored slot %d, want %d", resumed.Slot(), split-1)
	}
	for i := 0; i < slots-split; i++ {
		if got := drive(resumed); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("resumed slot %d decisions diverge:\n got %v\nwant %v", split+i, got, want[i])
		}
	}
	if resumed.Counts() != ref.Counts() {
		t.Fatalf("final counts diverge: resumed %+v, uninterrupted %+v", resumed.Counts(), ref.Counts())
	}
}

// TestInjectorRestoreDownSets checks the restored view reflects the
// snapshot slot's outages without double-counting them.
func TestInjectorRestoreDownSets(t *testing.T) {
	net, _ := topo.Motivation()
	in, err := NewInjector(snapshotPlan(), net)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s <= 3; s++ { // slot 3 is inside node 2's outage window
		in.BeginSlot()
	}
	countsBefore := in.Counts()
	snap := in.State()

	fresh, err := NewInjector(snapshotPlan(), net)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !fresh.NodeDown(2) {
		t.Error("restored injector lost node 2's outage")
	}
	if fresh.Counts() != countsBefore {
		t.Errorf("restore changed counts: %+v vs %+v", fresh.Counts(), countsBefore)
	}
}

// TestInjectorStateInert pins the inert-injector discipline: no state out,
// nil state in is fine, real state in is a mismatch.
func TestInjectorStateInert(t *testing.T) {
	net, _ := topo.Motivation()
	in, err := NewInjector(nil, net)
	if err != nil {
		t.Fatal(err)
	}
	if st := in.State(); st != nil {
		t.Fatalf("inert injector exported state %+v", st)
	}
	if err := in.Restore(nil); err != nil {
		t.Fatalf("inert Restore(nil): %v", err)
	}
	if err := in.Restore(&InjectorState{Slot: 3}); err == nil {
		t.Fatal("inert injector accepted fault state")
	}
	var nilIn *Injector
	if st := nilIn.State(); st != nil {
		t.Fatalf("nil injector exported state %+v", st)
	}
}

// TestInjectorRestoreNilResets asserts Restore(nil) rewinds an active
// injector to its pre-first-slot state.
func TestInjectorRestoreNilResets(t *testing.T) {
	net, _ := topo.Motivation()
	in, err := NewInjector(snapshotPlan(), net)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		drive(in)
	}
	if err := in.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if in.Slot() != -1 || in.Counts().Total() != 0 {
		t.Fatalf("after Restore(nil): slot %d, counts %+v", in.Slot(), in.Counts())
	}
	fresh, _ := NewInjector(snapshotPlan(), net)
	for s := 0; s < 6; s++ {
		got, want := drive(in), drive(fresh)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("slot %d after reset diverges from fresh run", s)
		}
	}
}
