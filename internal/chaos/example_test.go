package chaos_test

import (
	"fmt"

	"see/internal/chaos"
)

// ExampleParseSpec shows the compact fault-spec grammar round-tripping
// through its parser: the String form is itself a valid spec.
func ExampleParseSpec() {
	plan, err := chaos.ParseSpec("seed=7;node=3@2-5;link=10@1-;loss=0.05;decohere=0.02")
	if err != nil {
		panic(err)
	}
	fmt.Println(plan)
	fmt.Println("zero plan:", plan.IsZero())

	again, err := chaos.ParseSpec(plan.String())
	if err != nil {
		panic(err)
	}
	fmt.Println("round-trips:", again.String() == plan.String())
	// Output:
	// seed=7;node=3@2-5;link=10@1-;loss=0.05;decohere=0.02
	// zero plan: false
	// round-trips: true
}
