// Package chaos is the deterministic fault-injection substrate of the
// simulator. A FaultPlan describes, from a single seed, every failure the
// run will experience — node crash/recover windows, link down windows,
// controller↔node message loss and quantum-memory decoherence — and an
// Injector evaluates the plan slot by slot for one engine.
//
// Determinism contract: every fault decision is a pure function of
// (plan, slot, event sequence number), computed by hashing rather than by
// drawing from the engines' rng streams. Consequently
//
//   - a faulty run is exactly reproducible from (engine seed, fault plan),
//     and
//   - an Injector built from a zero FaultPlan is inert: engines gate all
//     chaos work on Active(), so their output is byte-identical to a run
//     with no injector attached at all.
//
// Engines consult the injector through the qnet.FaultModel hooks
// (CandidateBlocked / SegmentDecohered) plus PathBlocked and NodeDown; the
// protocol bus consults DropDelivery. A crashed node takes its incident
// links down with it (its optical switch and detectors are offline), which
// the injector precomputes per slot from the network adjacency.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"see/internal/graph"
	"see/internal/segment"
	"see/internal/topo"
)

// Window is a half-open slot interval [From, To) during which one element
// (node or link) is down. To <= 0 means "down from From forever".
type Window struct {
	// ID is the node or link identifier.
	ID int
	// From is the first slot of the outage.
	From int
	// To is the first slot after recovery; <= 0 means no recovery.
	To int
	// Surprise excludes the outage from the announced Forecast (spec
	// marker '!'): the fault still happens, but planners are not told.
	Surprise bool
}

// Covers reports whether the window is down at the given slot.
func (w Window) Covers(slot int) bool {
	return coversAt(w.From, w.To, slot)
}

// coversAt is the shared half-open window test: [from, to), to <= 0 = ∞.
func coversAt(from, to, slot int) bool {
	return slot >= from && (to <= 0 || slot < to)
}

// windowsOverlap reports whether two half-open slot windows intersect
// (to <= 0 meaning "open-ended").
func windowsOverlap(f1, t1, f2, t2 int) bool {
	return (t2 <= 0 || f1 < t2) && (t1 <= 0 || f2 < t1)
}

// DiscCut is a correlated geographic failure: every link whose midpoint
// (the average of its endpoints' coordinates, in the same kilometre frame
// as topo.Network.Pos) lies inside the disc of radius R around (X, Y) is
// down for the window — the model of a fibre conduit cut severing every
// strand in a duct.
type DiscCut struct {
	// X, Y, R describe the disc in km. Boundary links (distance == R) are
	// inside.
	X, Y, R float64
	// From / To bound the outage window like Window.
	From, To int
	// Surprise excludes the cut from the announced Forecast.
	Surprise bool
}

// Covers reports whether the cut is active at the given slot.
func (d DiscCut) Covers(slot int) bool { return coversAt(d.From, d.To, slot) }

// Brownout is a partial-capacity failure: during the window the link keeps
// only Frac of its channels (floor of Frac × full capacity) per slot,
// surfaced through Injector.ChannelCap and enforced on the physical phase's
// creation attempts — the model of hardware degrading before it dies.
type Brownout struct {
	// Link is the affected link ID.
	Link int
	// Frac in [0, 1] is the surviving channel fraction.
	Frac float64
	// From / To bound the brownout window like Window.
	From, To int
	// Surprise excludes the brownout from the announced Forecast.
	Surprise bool
}

// Covers reports whether the brownout is active at the given slot.
func (b Brownout) Covers(slot int) bool { return coversAt(b.From, b.To, slot) }

// Flap is an oscillating link failure: within the window the link cycles
// deterministically with the given period, up for round(Duty·Period) slots
// then down for the rest of each cycle.
type Flap struct {
	// Link is the affected link ID.
	Link int
	// Period is the cycle length in slots (>= 1).
	Period int
	// Duty in [0, 1] is the up fraction of each cycle.
	Duty float64
	// From / To bound the flapping window like Window.
	From, To int
	// Surprise excludes the flap from the announced Forecast.
	Surprise bool
}

// Covers reports whether the flapping window is active at the given slot.
func (f Flap) Covers(slot int) bool { return coversAt(f.From, f.To, slot) }

// upSlots is the number of up slots per cycle.
func (f Flap) upSlots() int { return int(math.Round(f.Duty * float64(f.Period))) }

// DownAt reports whether the flap holds the link down at the given slot:
// the cycle phase is (slot − From) mod Period, up-first.
func (f Flap) DownAt(slot int) bool {
	if !f.Covers(slot) {
		return false
	}
	return (slot-f.From)%f.Period >= f.upSlots()
}

// FaultPlan is a complete, seeded failure schedule. The zero value injects
// nothing.
type FaultPlan struct {
	// Seed drives the message-loss and decoherence hash streams.
	Seed int64
	// NodeOutages lists node crash windows (a crashed node also takes its
	// incident links down).
	NodeOutages []Window
	// LinkOutages lists link down windows.
	LinkOutages []Window
	// DiscCuts lists correlated geographic link failures.
	DiscCuts []DiscCut
	// Brownouts lists partial-capacity link windows.
	Brownouts []Brownout
	// Flaps lists oscillating link failures.
	Flaps []Flap
	// MsgLoss is the per-delivery probability that the protocol bus drops
	// a message in transit.
	MsgLoss float64
	// Decoherence is the per-slot probability that a realized entanglement
	// segment decoheres before the stitch phase can use it.
	Decoherence float64
}

// IsZero reports whether the plan injects no faults at all.
func (p *FaultPlan) IsZero() bool {
	return p == nil ||
		(len(p.NodeOutages) == 0 && len(p.LinkOutages) == 0 &&
			len(p.DiscCuts) == 0 && len(p.Brownouts) == 0 && len(p.Flaps) == 0 &&
			p.MsgLoss == 0 && p.Decoherence == 0)
}

// Validate checks the plan against a network's node and link counts.
func (p *FaultPlan) Validate(numNodes, numLinks int) error {
	if p == nil {
		return nil
	}
	for _, w := range p.NodeOutages {
		if w.ID < 0 || w.ID >= numNodes {
			return fmt.Errorf("chaos: node outage id %d outside [0,%d)", w.ID, numNodes)
		}
		if w.To > 0 && w.To <= w.From {
			return fmt.Errorf("chaos: node %d outage window [%d,%d) is empty", w.ID, w.From, w.To)
		}
	}
	for _, w := range p.LinkOutages {
		if w.ID < 0 || w.ID >= numLinks {
			return fmt.Errorf("chaos: link outage id %d outside [0,%d)", w.ID, numLinks)
		}
		if w.To > 0 && w.To <= w.From {
			return fmt.Errorf("chaos: link %d outage window [%d,%d) is empty", w.ID, w.From, w.To)
		}
	}
	for _, b := range p.Brownouts {
		if b.Link < 0 || b.Link >= numLinks {
			return fmt.Errorf("chaos: brownout link id %d outside [0,%d)", b.Link, numLinks)
		}
	}
	for _, f := range p.Flaps {
		if f.Link < 0 || f.Link >= numLinks {
			return fmt.Errorf("chaos: flap link id %d outside [0,%d)", f.Link, numLinks)
		}
	}
	if p.MsgLoss < 0 || p.MsgLoss > 1 || math.IsNaN(p.MsgLoss) {
		return fmt.Errorf("chaos: message loss probability %v outside [0,1]", p.MsgLoss)
	}
	if p.Decoherence < 0 || p.Decoherence > 1 || math.IsNaN(p.Decoherence) {
		return fmt.Errorf("chaos: decoherence probability %v outside [0,1]", p.Decoherence)
	}
	return p.checkCorrelated()
}

// checkCorrelated validates the correlated generators without needing the
// network: finite disc geometry, fractions in [0,1], positive periods,
// non-empty windows, and — per element — non-overlapping windows of the
// same kind (two brownouts or two flaps on one link in the same slot would
// be ambiguous). Both ParseSpec and Validate run it, so a spec is rejected
// with a precise message before any engine is built.
func (p *FaultPlan) checkCorrelated() error {
	for _, d := range p.DiscCuts {
		if math.IsNaN(d.X) || math.IsInf(d.X, 0) || math.IsNaN(d.Y) || math.IsInf(d.Y, 0) {
			return fmt.Errorf("chaos: disc cut center (%v,%v) is not finite", d.X, d.Y)
		}
		if !(d.R >= 0) || math.IsInf(d.R, 0) {
			return fmt.Errorf("chaos: disc cut radius %v is negative or NaN", d.R)
		}
		if d.To > 0 && d.To <= d.From {
			return fmt.Errorf("chaos: disc cut window [%d,%d) is empty", d.From, d.To)
		}
	}
	for i, b := range p.Brownouts {
		if !(b.Frac >= 0 && b.Frac <= 1) {
			return fmt.Errorf("chaos: brownout on link %d has fraction %v outside [0,1]", b.Link, b.Frac)
		}
		if b.To > 0 && b.To <= b.From {
			return fmt.Errorf("chaos: link %d brownout window [%d,%d) is empty", b.Link, b.From, b.To)
		}
		for _, o := range p.Brownouts[:i] {
			if o.Link == b.Link && windowsOverlap(o.From, o.To, b.From, b.To) {
				return fmt.Errorf("chaos: link %d has overlapping brownout windows [%d,%s) and [%d,%s)",
					b.Link, o.From, windowEnd(o.To), b.From, windowEnd(b.To))
			}
		}
	}
	for i, f := range p.Flaps {
		if f.Period < 1 {
			return fmt.Errorf("chaos: flap on link %d has period %d (want >= 1)", f.Link, f.Period)
		}
		if !(f.Duty >= 0 && f.Duty <= 1) {
			return fmt.Errorf("chaos: flap on link %d has duty %v outside [0,1]", f.Link, f.Duty)
		}
		if f.To > 0 && f.To <= f.From {
			return fmt.Errorf("chaos: link %d flap window [%d,%d) is empty", f.Link, f.From, f.To)
		}
		for _, o := range p.Flaps[:i] {
			if o.Link == f.Link && windowsOverlap(o.From, o.To, f.From, f.To) {
				return fmt.Errorf("chaos: link %d has overlapping flap windows [%d,%s) and [%d,%s)",
					f.Link, o.From, windowEnd(o.To), f.From, windowEnd(f.To))
			}
		}
	}
	return nil
}

// windowEnd renders a window's end bound for error messages ("∞" when
// open-ended).
func windowEnd(to int) string {
	if to <= 0 {
		return "∞"
	}
	return strconv.Itoa(to)
}

// String renders the plan in the canonical spec grammar accepted by
// ParseSpec.
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, w := range p.NodeOutages {
		parts = append(parts, "node="+w.spec())
	}
	for _, w := range p.LinkOutages {
		parts = append(parts, "link="+w.spec())
	}
	for _, d := range p.DiscCuts {
		parts = append(parts, "cut:"+surpriseMark(d.Surprise)+
			fmt.Sprintf("%g,%g,%g", d.X, d.Y, d.R)+winSuffix(d.From, d.To))
	}
	for _, b := range p.Brownouts {
		parts = append(parts, "brown:"+surpriseMark(b.Surprise)+
			fmt.Sprintf("%d,%g", b.Link, b.Frac)+winSuffix(b.From, b.To))
	}
	for _, f := range p.Flaps {
		parts = append(parts, "flap:"+surpriseMark(f.Surprise)+
			fmt.Sprintf("%d,%d,%g", f.Link, f.Period, f.Duty)+winSuffix(f.From, f.To))
	}
	if p.MsgLoss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%g", p.MsgLoss))
	}
	if p.Decoherence > 0 {
		parts = append(parts, fmt.Sprintf("decohere=%g", p.Decoherence))
	}
	return strings.Join(parts, ";")
}

func surpriseMark(s bool) string {
	if s {
		return "!"
	}
	return ""
}

// winSuffix renders the optional "@from-to" slot window (empty for the
// whole-run window).
func winSuffix(from, to int) string {
	if from == 0 && to <= 0 {
		return ""
	}
	toStr := ""
	if to > 0 {
		toStr = strconv.Itoa(to)
	}
	return fmt.Sprintf("@%d-%s", from, toStr)
}

func (w Window) spec() string {
	return surpriseMark(w.Surprise) + strconv.Itoa(w.ID) + winSuffix(w.From, w.To)
}

// ParseSpec parses the compact fault-spec grammar used by the -faults flag:
//
//	seed=7;node=3@2-5;node=4;link=10@1-;cut:50,75,20@3-;brown:2,0.5@1-9;flap:4,6,0.5;loss=0.05;decohere=0.02
//
// key=value items are separated by ';' or ','; the correlated items
// (cut:x,y,r — disc cut in km coordinates; brown:link,frac — partial
// brownout; flap:link,period,duty — oscillating outage) carry commas in
// their values and therefore must be separated by ';'. Every outage item
// takes an optional slot window "@from-to"; omitting the window means
// "down for the whole run", omitting "to" means "down from <from> onward".
// A '!' immediately before an outage item's value marks it as a surprise —
// the fault still fires, but it is excluded from the announced Forecast
// (e.g. "node=!3@2-5", "cut:!50,75,20"). loss and decohere are
// probabilities in [0,1]. An empty string is the zero plan.
func ParseSpec(s string) (*FaultPlan, error) {
	p := &FaultPlan{}
	for _, chunk := range strings.Split(s, ";") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		if kind, val, ok := correlatedItem(chunk); ok {
			if err := p.parseCorrelated(kind, val); err != nil {
				return nil, err
			}
			continue
		}
		for _, item := range strings.Split(chunk, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			if kind, _, ok := correlatedItem(item); ok {
				return nil, fmt.Errorf("chaos: %s item %q must be separated by ';' (its value contains commas)", kind, item)
			}
			if err := p.parseKeyValue(item); err != nil {
				return nil, err
			}
		}
	}
	if err := p.checkCorrelated(); err != nil {
		return nil, err
	}
	return p, nil
}

// correlatedItem splits a "kind:value" correlated-fault item; ok is false
// for the key=value grammar.
func correlatedItem(item string) (kind, val string, ok bool) {
	for _, k := range [...]string{"cut", "brown", "flap"} {
		if rest, found := strings.CutPrefix(item, k+":"); found {
			return k, rest, true
		}
	}
	return "", "", false
}

// parseKeyValue handles one classic key=value spec item.
func (p *FaultPlan) parseKeyValue(item string) error {
	key, val, ok := strings.Cut(item, "=")
	if !ok {
		return fmt.Errorf("chaos: spec item %q is not key=value (correlated faults use cut:, brown: or flap:)", item)
	}
	switch key {
	case "seed":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("chaos: bad seed %q: %v", val, err)
		}
		p.Seed = v
	case "node", "link":
		w, err := parseWindow(val)
		if err != nil {
			return fmt.Errorf("chaos: bad %s spec %q: %v", key, val, err)
		}
		if key == "node" {
			p.NodeOutages = append(p.NodeOutages, w)
		} else {
			p.LinkOutages = append(p.LinkOutages, w)
		}
	case "loss", "decohere":
		v, err := strconv.ParseFloat(val, 64)
		// NaN slips through a plain range check (every comparison is
		// false), so reject it via the negated form.
		if err != nil || !(v >= 0 && v <= 1) {
			return fmt.Errorf("chaos: bad %s probability %q (want [0,1])", key, val)
		}
		if key == "loss" {
			p.MsgLoss = v
		} else {
			p.Decoherence = v
		}
	default:
		return fmt.Errorf("chaos: unknown spec key %q (want seed, node, link, loss or decohere)", key)
	}
	return nil
}

// parseCorrelated handles one cut:/brown:/flap: item body (the part after
// the kind prefix).
func (p *FaultPlan) parseCorrelated(kind, val string) error {
	spec := kind + ":" + val
	surprise := strings.HasPrefix(val, "!")
	if surprise {
		val = val[1:]
	}
	body, win, hasWin := strings.Cut(val, "@")
	var from, to int
	if hasWin {
		var err error
		if from, to, err = parseSlotWindow(win); err != nil {
			return fmt.Errorf("chaos: bad %s spec %q: %v", kind, spec, err)
		}
	}
	fields := strings.Split(body, ",")
	num := func(i int) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("chaos: bad %s spec %q: field %q is not a number", kind, spec, strings.TrimSpace(fields[i]))
		}
		return v, nil
	}
	linkID := func(i int) (int, error) {
		id, err := strconv.Atoi(strings.TrimSpace(fields[i]))
		if err != nil || id < 0 {
			return 0, fmt.Errorf("chaos: bad %s spec %q: bad link id %q", kind, spec, strings.TrimSpace(fields[i]))
		}
		return id, nil
	}
	switch kind {
	case "cut":
		if len(fields) != 3 {
			return fmt.Errorf("chaos: bad cut spec %q: want cut:x,y,r[@from-to]", spec)
		}
		x, err := num(0)
		if err != nil {
			return err
		}
		y, err := num(1)
		if err != nil {
			return err
		}
		r, err := num(2)
		if err != nil {
			return err
		}
		p.DiscCuts = append(p.DiscCuts, DiscCut{X: x, Y: y, R: r, From: from, To: to, Surprise: surprise})
	case "brown":
		if len(fields) != 2 {
			return fmt.Errorf("chaos: bad brown spec %q: want brown:link,frac[@from-to]", spec)
		}
		link, err := linkID(0)
		if err != nil {
			return err
		}
		frac, err := num(1)
		if err != nil {
			return err
		}
		p.Brownouts = append(p.Brownouts, Brownout{Link: link, Frac: frac, From: from, To: to, Surprise: surprise})
	case "flap":
		if len(fields) != 3 {
			return fmt.Errorf("chaos: bad flap spec %q: want flap:link,period,duty[@from-to]", spec)
		}
		link, err := linkID(0)
		if err != nil {
			return err
		}
		period, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return fmt.Errorf("chaos: bad flap spec %q: bad period %q", spec, strings.TrimSpace(fields[1]))
		}
		duty, err := num(2)
		if err != nil {
			return err
		}
		p.Flaps = append(p.Flaps, Flap{Link: link, Period: period, Duty: duty, From: from, To: to, Surprise: surprise})
	}
	return nil
}

func parseWindow(s string) (Window, error) {
	w := Window{}
	if strings.HasPrefix(s, "!") {
		w.Surprise = true
		s = s[1:]
	}
	idStr, win, hasWin := strings.Cut(s, "@")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 {
		return Window{}, fmt.Errorf("bad element id %q", idStr)
	}
	w.ID = id
	if !hasWin {
		return w, nil
	}
	if w.From, w.To, err = parseSlotWindow(win); err != nil {
		return Window{}, err
	}
	return w, nil
}

// parseSlotWindow parses the "from-to" window suffix (to empty =
// open-ended).
func parseSlotWindow(win string) (from, to int, err error) {
	fromStr, toStr, ok := strings.Cut(win, "-")
	if !ok {
		return 0, 0, fmt.Errorf("window %q is not from-to", win)
	}
	if from, err = strconv.Atoi(fromStr); err != nil || from < 0 {
		return 0, 0, fmt.Errorf("bad window start %q", fromStr)
	}
	if toStr != "" {
		if to, err = strconv.Atoi(toStr); err != nil || to <= from {
			return 0, 0, fmt.Errorf("bad window end %q (must exceed start)", toStr)
		}
	}
	return from, to, nil
}

// Counts tallies the faults an Injector has injected so far.
type Counts struct {
	// NodeSlotsDown / LinkSlotsDown accumulate (element, slot) outage
	// pairs over the slots begun so far.
	NodeSlotsDown int
	LinkSlotsDown int
	// PathsBlocked counts planned entanglement paths discarded because a
	// node on them was down.
	PathsBlocked int
	// RoutesBlocked counts candidate routes whose reserved creation
	// attempts all failed because a node or link on the route was down.
	RoutesBlocked int
	// SegmentsDecohered counts realized segments destroyed by memory
	// decoherence before the stitch phase.
	SegmentsDecohered int
	// MessagesDropped counts bus deliveries dropped in transit.
	MessagesDropped int
	// CutLinkSlotsDown accumulates (link, slot) outage pairs injected by
	// geographic disc cuts (links already down for another reason are not
	// re-counted).
	CutLinkSlotsDown int
	// FlapSlotsDown accumulates (link, slot) down pairs injected by link
	// flapping.
	FlapSlotsDown int
	// BrownoutAttemptsLost counts segment-creation attempts denied because
	// a browned-out link's per-slot channel budget was exhausted.
	BrownoutAttemptsLost int
}

// Total sums every injected-fault counter.
func (c Counts) Total() int {
	return c.NodeSlotsDown + c.LinkSlotsDown + c.PathsBlocked +
		c.RoutesBlocked + c.SegmentsDecohered + c.MessagesDropped +
		c.CutLinkSlotsDown + c.FlapSlotsDown + c.BrownoutAttemptsLost
}

// Sub returns the field-wise difference c − b. Engines snapshot the counts
// before BeginSlot and subtract after the physical phase to attribute a
// slot's brownout and flap damage to the right incident kinds.
func (c Counts) Sub(b Counts) Counts {
	return Counts{
		NodeSlotsDown:        c.NodeSlotsDown - b.NodeSlotsDown,
		LinkSlotsDown:        c.LinkSlotsDown - b.LinkSlotsDown,
		PathsBlocked:         c.PathsBlocked - b.PathsBlocked,
		RoutesBlocked:        c.RoutesBlocked - b.RoutesBlocked,
		SegmentsDecohered:    c.SegmentsDecohered - b.SegmentsDecohered,
		MessagesDropped:      c.MessagesDropped - b.MessagesDropped,
		CutLinkSlotsDown:     c.CutLinkSlotsDown - b.CutLinkSlotsDown,
		FlapSlotsDown:        c.FlapSlotsDown - b.FlapSlotsDown,
		BrownoutAttemptsLost: c.BrownoutAttemptsLost - b.BrownoutAttemptsLost,
	}
}

// Injector evaluates one FaultPlan for one engine, slot by slot. It is not
// safe for concurrent use; build one injector per engine (the experiment
// harness builds per-trial engines, so each trial owns its injectors).
// All methods are safe on a nil receiver, which behaves as "no faults".
type Injector struct {
	plan   FaultPlan
	net    *topo.Network
	active bool

	slot     int
	downNode []bool
	downLink []bool
	decoSeq  int
	counts   Counts

	// cutLinks caches, per DiscCut, the IDs of the links its disc covers.
	cutLinks [][]int
	// brownLeft is the per-link remaining attempt budget of the current
	// slot (−1 = uncapped); reset by BeginSlot, consumed by CapAttempts.
	brownLeft []int
	// fc caches the announced-outage Forecast (built on first use).
	fc      *Forecast
	fcBuilt bool
}

// NewInjector builds an injector for the plan over the network. A nil or
// zero plan yields an inert injector (Active() == false). The plan is
// validated against the network.
func NewInjector(plan *FaultPlan, net *topo.Network) (*Injector, error) {
	in := &Injector{slot: -1, net: net}
	if plan != nil {
		if err := plan.Validate(net.NumNodes(), net.NumLinks()); err != nil {
			return nil, err
		}
		in.plan = *plan
	}
	in.active = !in.plan.IsZero()
	in.downNode = make([]bool, net.NumNodes())
	in.downLink = make([]bool, net.NumLinks())
	in.brownLeft = make([]int, net.NumLinks())
	for i := range in.brownLeft {
		in.brownLeft[i] = -1
	}
	in.cutLinks = make([][]int, len(in.plan.DiscCuts))
	for i, d := range in.plan.DiscCuts {
		in.cutLinks[i] = DiscLinks(net, d.X, d.Y, d.R)
	}
	return in, nil
}

// DiscLinks returns, sorted ascending, the IDs of every link whose midpoint
// (average of its endpoints' coordinates) lies inside the disc of radius r
// around (x, y), boundary included. Both the injector (to realize disc
// cuts) and the Forecast (to tell planners about announced ones) resolve
// discs through it, so the two views agree link-for-link.
func DiscLinks(net *topo.Network, x, y, r float64) []int {
	var out []int
	for u := 0; u < net.NumNodes(); u++ {
		for _, e := range net.G.Neighbors(u) {
			if e.To <= u {
				continue // visit each undirected link once, from its lower endpoint
			}
			mx := (net.Pos[u][0] + net.Pos[e.To][0]) / 2
			my := (net.Pos[u][1] + net.Pos[e.To][1]) / 2
			if (mx-x)*(mx-x)+(my-y)*(my-y) <= r*r {
				out = append(out, e.ID)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Active reports whether the injector can ever inject a fault. Engines gate
// every chaos code path on it so inert injectors cost (and change) nothing.
func (in *Injector) Active() bool { return in != nil && in.active }

// Slot returns the current slot index (-1 before the first BeginSlot).
func (in *Injector) Slot() int {
	if in == nil {
		return -1
	}
	return in.slot
}

// BeginSlot advances to the next slot and recomputes the down sets. Engines
// call it at the top of RunSlot. It returns the new slot index.
func (in *Injector) BeginSlot() int {
	if in == nil {
		return -1
	}
	in.slot++
	in.decoSeq = 0
	if !in.active {
		return in.slot
	}
	in.applyFaults(true)
	return in.slot
}

// applyFaults rebuilds the down sets and brownout budgets for the current
// slot. BeginSlot counts the injected (element, slot) outage pairs; Restore
// replays the same computation with count=false because the original
// BeginSlot already accounted for them.
func (in *Injector) applyFaults(count bool) {
	for i := range in.downNode {
		in.downNode[i] = false
	}
	for i := range in.downLink {
		in.downLink[i] = false
	}
	for i := range in.brownLeft {
		in.brownLeft[i] = -1
	}
	if in.slot < 0 {
		return
	}
	for _, w := range in.plan.NodeOutages {
		if w.Covers(in.slot) && !in.downNode[w.ID] {
			in.downNode[w.ID] = true
			if count {
				in.counts.NodeSlotsDown++
			}
			// The crashed node's optical switch and detectors are offline,
			// so every incident link is unusable too.
			for _, id := range in.net.IncidentLinks(w.ID) {
				in.downLink[id] = true
			}
		}
	}
	for _, w := range in.plan.LinkOutages {
		if w.Covers(in.slot) && !in.downLink[w.ID] {
			in.downLink[w.ID] = true
			if count {
				in.counts.LinkSlotsDown++
			}
		}
	}
	for ci, d := range in.plan.DiscCuts {
		if !d.Covers(in.slot) {
			continue
		}
		for _, id := range in.cutLinks[ci] {
			if !in.downLink[id] {
				in.downLink[id] = true
				if count {
					in.counts.CutLinkSlotsDown++
				}
			}
		}
	}
	for _, f := range in.plan.Flaps {
		if f.DownAt(in.slot) && !in.downLink[f.Link] {
			in.downLink[f.Link] = true
			if count {
				in.counts.FlapSlotsDown++
			}
		}
	}
	for _, b := range in.plan.Brownouts {
		if b.Covers(in.slot) && !in.downLink[b.Link] {
			in.brownLeft[b.Link] = int(float64(in.net.Channels[b.Link]) * b.Frac)
		}
	}
}

// NodeDown reports whether a node is crashed in the current slot.
func (in *Injector) NodeDown(v int) bool {
	return in.Active() && in.downNode[v]
}

// LinkDown reports whether a link is down in the current slot (directly, or
// because an endpoint crashed).
func (in *Injector) LinkDown(id int) bool {
	return in.Active() && in.downLink[id]
}

// ChannelCap returns the number of channels link id can offer in the
// current slot: 0 when the link is down, the brownout budget when a
// brownout covers the slot, the full capacity otherwise. A nil injector
// reports math.MaxInt ("no cap"); querying mid-slot reflects the budget
// already consumed by CapAttempts.
func (in *Injector) ChannelCap(id int) int {
	if in == nil {
		return math.MaxInt
	}
	if !in.active {
		return in.net.Channels[id]
	}
	if in.downLink[id] {
		return 0
	}
	if in.brownLeft[id] >= 0 {
		return in.brownLeft[id]
	}
	return in.net.Channels[id]
}

// CapAttempts implements qnet.CapacityModel: it bounds a candidate's
// granted creation attempts by the remaining per-slot channel budget of
// every browned-out link on its route, charges the grant against those
// budgets, and counts the denied attempts. Routes crossing no browned-out
// link are granted everything untouched, so brownout-free plans keep runs
// byte-identical.
func (in *Injector) CapAttempts(c *segment.Candidate, want int) int {
	if !in.Active() || want <= 0 {
		return want
	}
	grant := want
	capped := false
	for _, id := range c.EdgeIDs {
		if in.brownLeft[id] >= 0 {
			capped = true
			if in.brownLeft[id] < grant {
				grant = in.brownLeft[id]
			}
		}
	}
	if !capped {
		return want
	}
	for _, id := range c.EdgeIDs {
		if in.brownLeft[id] >= 0 {
			in.brownLeft[id] -= grant
		}
	}
	if grant < want {
		in.counts.BrownoutAttemptsLost += want - grant
	}
	return grant
}

// PathBlocked reports whether any node of an entanglement path is down, and
// counts the blocked path.
func (in *Injector) PathBlocked(nodes graph.Path) bool {
	if !in.Active() {
		return false
	}
	for _, v := range nodes {
		if in.downNode[v] {
			in.counts.PathsBlocked++
			return true
		}
	}
	return false
}

// CandidateBlocked implements qnet.FaultModel: a creation attempt over the
// candidate fails outright when any physical node (endpoint or all-optical
// interior) or link of its route is down. Blocked attempts are counted.
func (in *Injector) CandidateBlocked(c *segment.Candidate) bool {
	if !in.Active() {
		return false
	}
	for _, v := range c.Path {
		if in.downNode[v] {
			in.counts.RoutesBlocked++
			return true
		}
	}
	for _, id := range c.EdgeIDs {
		if in.downLink[id] {
			in.counts.RoutesBlocked++
			return true
		}
	}
	return false
}

// SegmentDecohered implements qnet.FaultModel: realized segment number seq
// of the current slot decoheres with the plan's probability, decided by
// hashing (plan seed, slot, seq) — never by the engine's rng.
func (in *Injector) SegmentDecohered() bool {
	if !in.Active() || in.plan.Decoherence <= 0 {
		return false
	}
	seq := in.decoSeq
	in.decoSeq++
	if Hash01(in.plan.Seed, 0xdec0, in.slot, seq) < in.plan.Decoherence {
		in.counts.SegmentsDecohered++
		return true
	}
	return false
}

// DropDelivery reports whether the protocol bus drops delivery attempt
// `attempt` of message `seq` in the current slot. Deterministic in
// (plan seed, slot, seq, attempt); drops are counted.
func (in *Injector) DropDelivery(seq, attempt int) bool {
	if !in.Active() || in.plan.MsgLoss <= 0 {
		return false
	}
	if Hash01(in.plan.Seed, 0x10e5, in.slot, seq<<8|attempt&0xff) < in.plan.MsgLoss {
		in.counts.MessagesDropped++
		return true
	}
	return false
}

// Counts returns the injected-fault tallies so far.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}

// DownNodes returns the sorted nodes down in the current slot.
func (in *Injector) DownNodes() []int {
	if !in.Active() {
		return nil
	}
	var out []int
	for v, d := range in.downNode {
		if d {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Hash01 maps (seed, kind, slot, seq) to a uniform-ish value in [0, 1)
// with a SplitMix64-style finalizer. The kind argument namespaces
// independent decision streams (the injector uses 0xdec0 for segment
// decoherence and 0x10e5 for message loss); other deterministic subsystems
// — e.g. the cross-slot state bank in internal/state — share the scheme
// under their own kinds so every stochastic decision outside the engines'
// rng streams is reproducible from (seed, kind, slot, seq) alone.
func Hash01(seed int64, kind, slot, seq int) float64 {
	z := uint64(seed) ^ uint64(kind)<<48 ^ uint64(uint32(slot))<<16 ^ uint64(uint32(seq))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
