// Package chaos is the deterministic fault-injection substrate of the
// simulator. A FaultPlan describes, from a single seed, every failure the
// run will experience — node crash/recover windows, link down windows,
// controller↔node message loss and quantum-memory decoherence — and an
// Injector evaluates the plan slot by slot for one engine.
//
// Determinism contract: every fault decision is a pure function of
// (plan, slot, event sequence number), computed by hashing rather than by
// drawing from the engines' rng streams. Consequently
//
//   - a faulty run is exactly reproducible from (engine seed, fault plan),
//     and
//   - an Injector built from a zero FaultPlan is inert: engines gate all
//     chaos work on Active(), so their output is byte-identical to a run
//     with no injector attached at all.
//
// Engines consult the injector through the qnet.FaultModel hooks
// (CandidateBlocked / SegmentDecohered) plus PathBlocked and NodeDown; the
// protocol bus consults DropDelivery. A crashed node takes its incident
// links down with it (its optical switch and detectors are offline), which
// the injector precomputes per slot from the network adjacency.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"see/internal/graph"
	"see/internal/segment"
	"see/internal/topo"
)

// Window is a half-open slot interval [From, To) during which one element
// (node or link) is down. To <= 0 means "down from From forever".
type Window struct {
	// ID is the node or link identifier.
	ID int
	// From is the first slot of the outage.
	From int
	// To is the first slot after recovery; <= 0 means no recovery.
	To int
}

// Covers reports whether the window is down at the given slot.
func (w Window) Covers(slot int) bool {
	return slot >= w.From && (w.To <= 0 || slot < w.To)
}

// FaultPlan is a complete, seeded failure schedule. The zero value injects
// nothing.
type FaultPlan struct {
	// Seed drives the message-loss and decoherence hash streams.
	Seed int64
	// NodeOutages lists node crash windows (a crashed node also takes its
	// incident links down).
	NodeOutages []Window
	// LinkOutages lists link down windows.
	LinkOutages []Window
	// MsgLoss is the per-delivery probability that the protocol bus drops
	// a message in transit.
	MsgLoss float64
	// Decoherence is the per-slot probability that a realized entanglement
	// segment decoheres before the stitch phase can use it.
	Decoherence float64
}

// IsZero reports whether the plan injects no faults at all.
func (p *FaultPlan) IsZero() bool {
	return p == nil ||
		(len(p.NodeOutages) == 0 && len(p.LinkOutages) == 0 &&
			p.MsgLoss == 0 && p.Decoherence == 0)
}

// Validate checks the plan against a network's node and link counts.
func (p *FaultPlan) Validate(numNodes, numLinks int) error {
	if p == nil {
		return nil
	}
	for _, w := range p.NodeOutages {
		if w.ID < 0 || w.ID >= numNodes {
			return fmt.Errorf("chaos: node outage id %d outside [0,%d)", w.ID, numNodes)
		}
		if w.To > 0 && w.To <= w.From {
			return fmt.Errorf("chaos: node %d outage window [%d,%d) is empty", w.ID, w.From, w.To)
		}
	}
	for _, w := range p.LinkOutages {
		if w.ID < 0 || w.ID >= numLinks {
			return fmt.Errorf("chaos: link outage id %d outside [0,%d)", w.ID, numLinks)
		}
		if w.To > 0 && w.To <= w.From {
			return fmt.Errorf("chaos: link %d outage window [%d,%d) is empty", w.ID, w.From, w.To)
		}
	}
	if p.MsgLoss < 0 || p.MsgLoss > 1 || math.IsNaN(p.MsgLoss) {
		return fmt.Errorf("chaos: message loss probability %v outside [0,1]", p.MsgLoss)
	}
	if p.Decoherence < 0 || p.Decoherence > 1 || math.IsNaN(p.Decoherence) {
		return fmt.Errorf("chaos: decoherence probability %v outside [0,1]", p.Decoherence)
	}
	return nil
}

// String renders the plan in the canonical spec grammar accepted by
// ParseSpec.
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, w := range p.NodeOutages {
		parts = append(parts, "node="+w.spec())
	}
	for _, w := range p.LinkOutages {
		parts = append(parts, "link="+w.spec())
	}
	if p.MsgLoss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%g", p.MsgLoss))
	}
	if p.Decoherence > 0 {
		parts = append(parts, fmt.Sprintf("decohere=%g", p.Decoherence))
	}
	return strings.Join(parts, ";")
}

func (w Window) spec() string {
	if w.From == 0 && w.To <= 0 {
		return strconv.Itoa(w.ID)
	}
	to := ""
	if w.To > 0 {
		to = strconv.Itoa(w.To)
	}
	return fmt.Sprintf("%d@%d-%s", w.ID, w.From, to)
}

// ParseSpec parses the compact fault-spec grammar used by the -faults flag:
//
//	seed=7;node=3@2-5;node=4;link=10@1-;loss=0.05;decohere=0.02
//
// Items are separated by ';' or ','. node/link items take an element ID and
// an optional slot window "@from-to"; omitting the window means "down for
// the whole run", omitting "to" means "down from <from> onward". loss and
// decohere are probabilities in [0,1]. An empty string is the zero plan.
func ParseSpec(s string) (*FaultPlan, error) {
	p := &FaultPlan{}
	for _, item := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ',' }) {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: spec item %q is not key=value", item)
		}
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			p.Seed = v
		case "node", "link":
			w, err := parseWindow(val)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad %s spec %q: %v", key, val, err)
			}
			if key == "node" {
				p.NodeOutages = append(p.NodeOutages, w)
			} else {
				p.LinkOutages = append(p.LinkOutages, w)
			}
		case "loss", "decohere":
			v, err := strconv.ParseFloat(val, 64)
			// NaN slips through a plain range check (every comparison is
			// false), so reject it via the negated form.
			if err != nil || !(v >= 0 && v <= 1) {
				return nil, fmt.Errorf("chaos: bad %s probability %q (want [0,1])", key, val)
			}
			if key == "loss" {
				p.MsgLoss = v
			} else {
				p.Decoherence = v
			}
		default:
			return nil, fmt.Errorf("chaos: unknown spec key %q (want seed, node, link, loss or decohere)", key)
		}
	}
	return p, nil
}

func parseWindow(s string) (Window, error) {
	idStr, win, hasWin := strings.Cut(s, "@")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 {
		return Window{}, fmt.Errorf("bad element id %q", idStr)
	}
	w := Window{ID: id}
	if !hasWin {
		return w, nil
	}
	fromStr, toStr, ok := strings.Cut(win, "-")
	if !ok {
		return Window{}, fmt.Errorf("window %q is not from-to", win)
	}
	if w.From, err = strconv.Atoi(fromStr); err != nil || w.From < 0 {
		return Window{}, fmt.Errorf("bad window start %q", fromStr)
	}
	if toStr != "" {
		if w.To, err = strconv.Atoi(toStr); err != nil || w.To <= w.From {
			return Window{}, fmt.Errorf("bad window end %q (must exceed start)", toStr)
		}
	}
	return w, nil
}

// Counts tallies the faults an Injector has injected so far.
type Counts struct {
	// NodeSlotsDown / LinkSlotsDown accumulate (element, slot) outage
	// pairs over the slots begun so far.
	NodeSlotsDown int
	LinkSlotsDown int
	// PathsBlocked counts planned entanglement paths discarded because a
	// node on them was down.
	PathsBlocked int
	// RoutesBlocked counts candidate routes whose reserved creation
	// attempts all failed because a node or link on the route was down.
	RoutesBlocked int
	// SegmentsDecohered counts realized segments destroyed by memory
	// decoherence before the stitch phase.
	SegmentsDecohered int
	// MessagesDropped counts bus deliveries dropped in transit.
	MessagesDropped int
}

// Total sums every injected-fault counter.
func (c Counts) Total() int {
	return c.NodeSlotsDown + c.LinkSlotsDown + c.PathsBlocked +
		c.RoutesBlocked + c.SegmentsDecohered + c.MessagesDropped
}

// Injector evaluates one FaultPlan for one engine, slot by slot. It is not
// safe for concurrent use; build one injector per engine (the experiment
// harness builds per-trial engines, so each trial owns its injectors).
// All methods are safe on a nil receiver, which behaves as "no faults".
type Injector struct {
	plan   FaultPlan
	net    *topo.Network
	active bool

	slot     int
	downNode []bool
	downLink []bool
	decoSeq  int
	counts   Counts
}

// NewInjector builds an injector for the plan over the network. A nil or
// zero plan yields an inert injector (Active() == false). The plan is
// validated against the network.
func NewInjector(plan *FaultPlan, net *topo.Network) (*Injector, error) {
	in := &Injector{slot: -1, net: net}
	if plan != nil {
		if err := plan.Validate(net.NumNodes(), net.NumLinks()); err != nil {
			return nil, err
		}
		in.plan = *plan
	}
	in.active = !in.plan.IsZero()
	in.downNode = make([]bool, net.NumNodes())
	in.downLink = make([]bool, net.NumLinks())
	return in, nil
}

// Active reports whether the injector can ever inject a fault. Engines gate
// every chaos code path on it so inert injectors cost (and change) nothing.
func (in *Injector) Active() bool { return in != nil && in.active }

// Slot returns the current slot index (-1 before the first BeginSlot).
func (in *Injector) Slot() int {
	if in == nil {
		return -1
	}
	return in.slot
}

// BeginSlot advances to the next slot and recomputes the down sets. Engines
// call it at the top of RunSlot. It returns the new slot index.
func (in *Injector) BeginSlot() int {
	if in == nil {
		return -1
	}
	in.slot++
	in.decoSeq = 0
	if !in.active {
		return in.slot
	}
	for i := range in.downNode {
		in.downNode[i] = false
	}
	for i := range in.downLink {
		in.downLink[i] = false
	}
	for _, w := range in.plan.NodeOutages {
		if w.Covers(in.slot) && !in.downNode[w.ID] {
			in.downNode[w.ID] = true
			in.counts.NodeSlotsDown++
			// The crashed node's optical switch and detectors are offline,
			// so every incident link is unusable too.
			for _, id := range in.net.IncidentLinks(w.ID) {
				in.downLink[id] = true
			}
		}
	}
	for _, w := range in.plan.LinkOutages {
		if w.Covers(in.slot) && !in.downLink[w.ID] {
			in.downLink[w.ID] = true
			in.counts.LinkSlotsDown++
		}
	}
	return in.slot
}

// NodeDown reports whether a node is crashed in the current slot.
func (in *Injector) NodeDown(v int) bool {
	return in.Active() && in.downNode[v]
}

// LinkDown reports whether a link is down in the current slot (directly, or
// because an endpoint crashed).
func (in *Injector) LinkDown(id int) bool {
	return in.Active() && in.downLink[id]
}

// PathBlocked reports whether any node of an entanglement path is down, and
// counts the blocked path.
func (in *Injector) PathBlocked(nodes graph.Path) bool {
	if !in.Active() {
		return false
	}
	for _, v := range nodes {
		if in.downNode[v] {
			in.counts.PathsBlocked++
			return true
		}
	}
	return false
}

// CandidateBlocked implements qnet.FaultModel: a creation attempt over the
// candidate fails outright when any physical node (endpoint or all-optical
// interior) or link of its route is down. Blocked attempts are counted.
func (in *Injector) CandidateBlocked(c *segment.Candidate) bool {
	if !in.Active() {
		return false
	}
	for _, v := range c.Path {
		if in.downNode[v] {
			in.counts.RoutesBlocked++
			return true
		}
	}
	for _, id := range c.EdgeIDs {
		if in.downLink[id] {
			in.counts.RoutesBlocked++
			return true
		}
	}
	return false
}

// SegmentDecohered implements qnet.FaultModel: realized segment number seq
// of the current slot decoheres with the plan's probability, decided by
// hashing (plan seed, slot, seq) — never by the engine's rng.
func (in *Injector) SegmentDecohered() bool {
	if !in.Active() || in.plan.Decoherence <= 0 {
		return false
	}
	seq := in.decoSeq
	in.decoSeq++
	if Hash01(in.plan.Seed, 0xdec0, in.slot, seq) < in.plan.Decoherence {
		in.counts.SegmentsDecohered++
		return true
	}
	return false
}

// DropDelivery reports whether the protocol bus drops delivery attempt
// `attempt` of message `seq` in the current slot. Deterministic in
// (plan seed, slot, seq, attempt); drops are counted.
func (in *Injector) DropDelivery(seq, attempt int) bool {
	if !in.Active() || in.plan.MsgLoss <= 0 {
		return false
	}
	if Hash01(in.plan.Seed, 0x10e5, in.slot, seq<<8|attempt&0xff) < in.plan.MsgLoss {
		in.counts.MessagesDropped++
		return true
	}
	return false
}

// Counts returns the injected-fault tallies so far.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}

// DownNodes returns the sorted nodes down in the current slot.
func (in *Injector) DownNodes() []int {
	if !in.Active() {
		return nil
	}
	var out []int
	for v, d := range in.downNode {
		if d {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Hash01 maps (seed, kind, slot, seq) to a uniform-ish value in [0, 1)
// with a SplitMix64-style finalizer. The kind argument namespaces
// independent decision streams (the injector uses 0xdec0 for segment
// decoherence and 0x10e5 for message loss); other deterministic subsystems
// — e.g. the cross-slot state bank in internal/state — share the scheme
// under their own kinds so every stochastic decision outside the engines'
// rng streams is reproducible from (seed, kind, slot, seq) alone.
func Hash01(seed int64, kind, slot, seq int) float64 {
	z := uint64(seed) ^ uint64(kind)<<48 ^ uint64(uint32(slot))<<16 ^ uint64(uint32(seq))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
