package par

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(8, 3); got != 3 {
		t.Fatalf("Resolve(8, 3) = %d, want 3 (capped at n)", got)
	}
	if got := Resolve(8, 0); got != 1 {
		t.Fatalf("Resolve(8, 0) = %d, want 1", got)
	}
	if got := Resolve(5, 100); got != 5 {
		t.Fatalf("Resolve(5, 100) = %d, want 5", got)
	}
}

// TestForCoversEveryIndexOnce checks the exactly-once contract across worker
// counts, including workers > n and n == 0.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 0} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			counts := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestForDeterministicSlots runs a slot-writing workload at several worker
// counts and checks the output is identical to the serial run.
func TestForDeterministicSlots(t *testing.T) {
	const n = 1000
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = i*i + 7 })
	for _, workers := range []int{2, 4, 16, 0} {
		got := make([]int, n)
		For(workers, n, func(i int) { got[i] = i*i + 7 })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForWorkerScratchIsolation checks that the worker id is in range and
// that per-worker scratch never sees concurrent use: each worker bumps its
// own counter non-atomically and the total must come out exact.
func TestForWorkerScratchIsolation(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 2, 5, 0} {
		resolved := Resolve(workers, n)
		scratch := make([]int, resolved)
		ForWorker(workers, n, func(w, i int) {
			if w < 0 || w >= resolved {
				t.Errorf("worker id %d out of range [0,%d)", w, resolved)
			}
			scratch[w]++
		})
		total := 0
		for _, c := range scratch {
			total += c
		}
		if total != n {
			t.Fatalf("workers=%d: scratch total %d, want %d", workers, total, n)
		}
	}
}

// TestForWorkerBlocksAreContiguous verifies the contiguous block partition:
// the set of indices a worker sees must form one interval, so worker-local
// state evolves in index order within each block.
func TestForWorkerBlocksAreContiguous(t *testing.T) {
	const n, workers = 103, 4
	lo := make([]int, workers)
	hi := make([]int, workers)
	for w := range lo {
		lo[w], hi[w] = n, -1
	}
	seen := make([]int, n)
	ForWorker(workers, n, func(w, i int) {
		if i < lo[w] {
			lo[w] = i
		}
		if i > hi[w] {
			hi[w] = i
		}
		seen[i] = w
	})
	for w := 0; w < workers; w++ {
		for i := lo[w]; i <= hi[w]; i++ {
			if seen[i] != w {
				t.Fatalf("worker %d's range [%d,%d] contains index %d owned by %d", w, lo[w], hi[w], i, seen[i])
			}
		}
	}
}

func TestWorkerPanicReRaised(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic not re-raised")
		}
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", v)
		}
		if wp.Index != 13 {
			t.Errorf("Index = %d, want 13", wp.Index)
		}
		if wp.Value != "boom" {
			t.Errorf("Value = %v, want boom", wp.Value)
		}
		if len(wp.Stack) == 0 || !strings.Contains(string(wp.Stack), "par_test") {
			t.Errorf("stack missing worker frames:\n%s", wp.Stack)
		}
		if !strings.Contains(wp.Error(), "index 13") {
			t.Errorf("Error() = %q", wp.Error())
		}
	}()
	For(4, 64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestWorkerPanicUnwrapsError(t *testing.T) {
	sentinel := errors.New("sentinel")
	defer func() {
		v := recover()
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", v)
		}
		if !errors.Is(wp, sentinel) {
			t.Error("errors.Is does not see the wrapped error")
		}
	}()
	For(2, 8, func(i int) {
		if i == 5 {
			panic(sentinel)
		}
	})
}

func TestSerialPanicHasCallerStack(t *testing.T) {
	// workers=1 runs on the calling goroutine; the panic must arrive as the
	// original value, not wrapped.
	defer func() {
		if v := recover(); v != "serial" {
			t.Fatalf("recovered %v, want raw value", v)
		}
	}()
	For(1, 3, func(i int) {
		if i == 1 {
			panic("serial")
		}
	})
}

func TestForCtxCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForCtx(ctx, workers, 1000, func(i int) {
			if ran.Add(1) == 10 {
				cancel()
			}
		})
		cancel()
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Errorf("workers=%d: cancellation did not cut the loop (%d ran)", workers, n)
		}
	}
}

func TestForCtxNilAndComplete(t *testing.T) {
	var ran atomic.Int64
	if err := ForCtx(nil, 3, 100, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d, want 100", ran.Load())
	}
	ctx := context.Background()
	if err := ForWorkerCtx(ctx, 3, 50, func(w, i int) {}); err != nil {
		t.Fatalf("uncancelled ctx: %v", err)
	}
}
