package par_test

import (
	"fmt"

	"see/internal/par"
)

// ExampleFor demonstrates the determinism discipline: each iteration
// writes only its own output slot, so the reduction (reading the slots in
// index order afterwards) is identical at any worker count.
func ExampleFor() {
	squares := make([]int, 8)
	par.For(4, len(squares), func(i int) {
		squares[i] = i * i
	})
	fmt.Println(squares)

	serial := make([]int, 8)
	par.For(1, len(serial), func(i int) {
		serial[i] = i * i
	})
	fmt.Println("serial identical:", fmt.Sprint(serial) == fmt.Sprint(squares))
	// Output:
	// [0 1 4 9 16 25 36 49]
	// serial identical: true
}
