// Package par provides a bounded, deterministic parallel-for used by the
// planning hot paths (column-generation pricing in internal/flow).
//
// The determinism contract: For and ForWorker run f(i) exactly once for
// every index i in [0, n), and callers arrange for f(i) to write only to
// the i-th slot of pre-allocated output storage. Under that discipline the
// observable result is a pure function of the inputs — identical for any
// worker count and any goroutine schedule — so a parallel run is
// byte-identical to a serial one. The reduction (reading the slots in index
// order) happens on the caller's goroutine after For returns.
package par

import (
	"runtime"
	"sync"
)

// Resolve maps a Workers knob to a concrete worker count: values <= 0 mean
// runtime.GOMAXPROCS(0), anything else is used as given. The result is
// additionally capped at n (no point spawning idle workers) but never
// drops below 1.
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs f(i) for every i in [0, n), using at most `workers` goroutines
// (0 = GOMAXPROCS). f must confine its writes to per-index storage; see the
// package comment for the determinism contract. workers == 1 (or n <= 1)
// runs serially on the calling goroutine with no synchronization overhead.
func For(workers, n int, f func(i int)) {
	ForWorker(workers, n, func(_, i int) { f(i) })
}

// ForWorker is For with a worker identity: f(w, i) is guaranteed w ∈
// [0, Resolve(workers, n)), and no two calls with the same w run
// concurrently. Callers use w to index pre-allocated per-worker scratch
// buffers (e.g. the layered-pricing DP arrays) without locking. Indices are
// partitioned into contiguous blocks, one block per worker, so f still runs
// exactly once per index.
func ForWorker(workers, n int, f func(w, i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	// Contiguous block partition: worker w gets [w*q + min(w,r), ...) with
	// the first r blocks one element longer (q = n/workers, r = n%workers).
	q, r := n/workers, n%workers
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		size := q
		if w < r {
			size++
		}
		lo, hi := start, start+size
		start = hi
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(w, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}
