// Package par provides a bounded, deterministic parallel-for used by the
// planning hot paths (column-generation pricing in internal/flow).
//
// The determinism contract: For and ForWorker run f(i) exactly once for
// every index i in [0, n), and callers arrange for f(i) to write only to
// the i-th slot of pre-allocated output storage. Under that discipline the
// observable result is a pure function of the inputs — identical for any
// worker count and any goroutine schedule — so a parallel run is
// byte-identical to a serial one. The reduction (reading the slots in index
// order) happens on the caller's goroutine after For returns.
//
// Worker panics are recovered and re-raised on the caller's goroutine as a
// *WorkerPanic carrying the worker's stack, so a bug in f produces one
// attributable trace instead of killing the process from an anonymous
// goroutine. The context-aware variants (ForCtx, ForWorkerCtx) let callers
// bound a parallel loop with a deadline: cancellation is checked between
// indices, remaining indices are skipped, and the loop reports ctx.Err().
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic wraps a panic recovered from a worker goroutine. It is
// re-panicked on the caller, so deferred recovers up the caller's stack see
// the worker's failure exactly once, with the worker's stack attached.
type WorkerPanic struct {
	// Worker is the worker identity (the w of ForWorker's f).
	Worker int
	// Index is the loop index whose f call panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at the point of the panic.
	Stack []byte
}

// Error implements error so recovered values can flow through error paths.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker %d panicked at index %d: %v\n%s",
		p.Worker, p.Index, p.Value, p.Stack)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Resolve maps a Workers knob to a concrete worker count: values <= 0 mean
// runtime.GOMAXPROCS(0), anything else is used as given. The result is
// additionally capped at n (no point spawning idle workers) but never
// drops below 1.
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs f(i) for every i in [0, n), using at most `workers` goroutines
// (0 = GOMAXPROCS). f must confine its writes to per-index storage; see the
// package comment for the determinism contract. workers == 1 (or n <= 1)
// runs serially on the calling goroutine with no synchronization overhead.
func For(workers, n int, f func(i int)) {
	ForWorker(workers, n, func(_, i int) { f(i) })
}

// ForWorker is For with a worker identity: f(w, i) is guaranteed w ∈
// [0, Resolve(workers, n)), and no two calls with the same w run
// concurrently. Callers use w to index pre-allocated per-worker scratch
// buffers (e.g. the layered-pricing DP arrays) without locking. Indices are
// partitioned into contiguous blocks, one block per worker, so f still runs
// exactly once per index.
func ForWorker(workers, n int, f func(w, i int)) {
	// A nil context cannot be cancelled, so the only possible error is a
	// worker panic — and that re-panics instead of returning.
	_ = ForWorkerCtx(nil, workers, n, f) //nolint:staticcheck // nil ctx is the uncancellable fast path
}

// ForCtx is For bounded by a context: between indices each worker checks
// ctx and stops early once it is cancelled. It returns ctx.Err() if the
// loop was cut short (some f(i) skipped), nil if every index ran. The
// partial writes of a cancelled loop are well-defined — each produced slot
// is complete — but the set of produced slots is schedule-dependent, so
// callers must discard the output on a non-nil return.
func ForCtx(ctx context.Context, workers, n int, f func(i int)) error {
	return ForWorkerCtx(ctx, workers, n, func(_, i int) { f(i) })
}

// ForWorkerCtx is ForWorker bounded by a context (nil = never cancelled);
// see ForCtx for the cancellation contract. A worker panic cancels nothing
// by itself, but after all workers stop it is re-panicked on the caller as
// a *WorkerPanic carrying the worker's stack.
func ForWorkerCtx(ctx context.Context, workers, n int, f func(w, i int)) error {
	if n <= 0 {
		return nil
	}
	done := ctxDone(ctx)
	workers = Resolve(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if done != nil && canceled(done) {
				return ctx.Err()
			}
			runOne(0, i, f)
		}
		return nil
	}
	// Contiguous block partition: worker w gets [w*q + min(w,r), ...) with
	// the first r blocks one element longer (q = n/workers, r = n%workers).
	q, r := n/workers, n%workers
	var wg sync.WaitGroup
	var cut atomic.Bool
	var panicked atomic.Pointer[WorkerPanic]
	start := 0
	for w := 0; w < workers; w++ {
		size := q
		if w < r {
			size++
		}
		lo, hi := start, start+size
		start = hi
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if done != nil && canceled(done) {
					cut.Store(true)
					return
				}
				if wp := runOneRecover(w, i, f); wp != nil {
					// First panic wins; others are necessarily
					// concurrent duplicates of a broken f.
					panicked.CompareAndSwap(nil, wp)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if wp := panicked.Load(); wp != nil {
		panic(wp)
	}
	if cut.Load() {
		return ctx.Err()
	}
	return nil
}

// runOne runs f(w, i) on the caller's goroutine (serial path): a panic
// there already has the caller's stack, so it propagates untouched.
func runOne(w, i int, f func(w, i int)) {
	f(w, i)
}

// runOneRecover runs f(w, i) and converts a panic into a *WorkerPanic.
func runOneRecover(w, i int, f func(w, i int)) (wp *WorkerPanic) {
	defer func() {
		if v := recover(); v != nil {
			wp = &WorkerPanic{Worker: w, Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	f(w, i)
	return nil
}

// ctxDone returns ctx.Done() for a non-nil context, else nil (never fires).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// canceled polls a done channel without blocking.
func canceled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
