package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestDijkstraLine(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	res := Dijkstra(g, 0, DijkstraOptions{})
	want := []float64{0, 1, 3, 6}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Dist[v], d)
		}
	}
	if p := res.PathTo(3); !p.Equal(Path{0, 1, 2, 3}) {
		t.Fatalf("PathTo(3) = %v", p)
	}
	if ids := res.EdgesTo(3); len(ids) != 3 {
		t.Fatalf("EdgesTo(3) = %v, want 3 edges", ids)
	}
}

func TestDijkstraPrefersLighterPath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2, 10)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	p, d := ShortestPath(g, 0, 2, DijkstraOptions{})
	if d != 2 || !p.Equal(Path{0, 1, 2}) {
		t.Fatalf("got path %v length %v, want 0-1-2 length 2", p, d)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	res := Dijkstra(g, 0, DijkstraOptions{})
	if res.Dist[2] != Unreachable {
		t.Fatal("node 2 must be unreachable")
	}
	if res.PathTo(2) != nil {
		t.Fatal("PathTo(unreachable) must be nil")
	}
	if p, d := ShortestPath(g, 0, 2, DijkstraOptions{}); p != nil || d != Unreachable {
		t.Fatal("ShortestPath(unreachable) must be nil/Unreachable")
	}
}

func TestDijkstraNodeWeights(t *testing.T) {
	// 0-1-2 with heavy node 1 vs direct edge 0-2.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 4)
	nw := func(v int) float64 {
		if v == 1 {
			return 5
		}
		return 0
	}
	p, d := ShortestPath(g, 0, 2, DijkstraOptions{NodeWeight: nw})
	if !p.Equal(Path{0, 2}) || d != 4 {
		t.Fatalf("node weight ignored: path %v len %v", p, d)
	}
	// Endpoints never pay their own weight.
	heavyEnds := func(v int) float64 {
		if v == 0 || v == 2 {
			return 100
		}
		return 0
	}
	_, d = ShortestPath(g, 0, 2, DijkstraOptions{NodeWeight: heavyEnds})
	if d != 2 {
		t.Fatalf("endpoint weights must not be charged: len %v, want 2", d)
	}
}

func TestDijkstraForbidden(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 5)
	forbidden := func(v int) bool { return v == 1 }
	p, d := ShortestPath(g, 0, 3, DijkstraOptions{Forbidden: forbidden})
	if !p.Equal(Path{0, 2, 3}) || d != 6 {
		t.Fatalf("forbidden node traversed: %v len %v", p, d)
	}
}

func TestDijkstraForbiddenEdge(t *testing.T) {
	g := New(3)
	fast := g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	p, d := ShortestPath(g, 0, 2, DijkstraOptions{
		ForbiddenEdge: func(id int) bool { return id == fast },
	})
	if !p.Equal(Path{0, 1, 2}) || d != 2 {
		t.Fatalf("forbidden edge used: %v len %v", p, d)
	}
}

func TestDijkstraBadSource(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	res := Dijkstra(g, -1, DijkstraOptions{})
	for v := range res.Dist {
		if res.Dist[v] != Unreachable {
			t.Fatalf("invalid source must reach nothing; dist[%d]=%v", v, res.Dist[v])
		}
	}
}

func TestPathLength(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	nw := func(v int) float64 { return float64(v) }
	got := PathLength(g, Path{0, 1, 2}, DijkstraOptions{NodeWeight: nw})
	if got != 2+1+3 {
		t.Fatalf("PathLength = %v, want 6", got)
	}
	if PathLength(g, Path{0, 2}, DijkstraOptions{}) != Unreachable {
		t.Fatal("non-adjacent hop must be Unreachable")
	}
	if PathLength(g, Path{}, DijkstraOptions{}) != Unreachable {
		t.Fatal("empty path must be Unreachable")
	}
	if PathLength(g, Path{1}, DijkstraOptions{}) != 0 {
		t.Fatal("single-node path must cost 0")
	}
}

func TestPathLengthPicksCheapestParallelArc(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 7)
	g.AddEdge(0, 1, 3)
	if got := PathLength(g, Path{0, 1}, DijkstraOptions{}); got != 3 {
		t.Fatalf("PathLength = %v, want 3 (cheapest parallel arc)", got)
	}
}

// Property: Dijkstra distances equal Bellman-Ford distances on random
// graphs, with and without node weights.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(3*n))
		var nw func(int) float64
		if trial%2 == 1 {
			weights := make([]float64, n)
			for i := range weights {
				weights[i] = rng.Float64() * 3
			}
			nw = func(v int) float64 { return weights[v] }
		}
		opts := DijkstraOptions{NodeWeight: nw}
		src := rng.Intn(n)
		d1 := Dijkstra(g, src, opts).Dist
		d2, ok := BellmanFord(g, src, opts)
		if !ok {
			t.Fatal("unexpected negative cycle")
		}
		for v := range d1 {
			if math.Abs(d1[v]-d2[v]) > 1e-9 && !(d1[v] == Unreachable && d2[v] == Unreachable) {
				t.Fatalf("trial %d: dist[%d] dijkstra=%v bellman=%v", trial, v, d1[v], d2[v])
			}
		}
	}
}

// Property: the reconstructed path's recomputed length equals the reported
// distance.
func TestDijkstraPathLengthConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(2*n))
		src := rng.Intn(n)
		res := Dijkstra(g, src, DijkstraOptions{})
		for v := 0; v < n; v++ {
			p := res.PathTo(v)
			if p == nil {
				continue
			}
			if p[0] != src || p[len(p)-1] != v {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			if got := PathLength(g, p, DijkstraOptions{}); math.Abs(got-res.Dist[v]) > 1e-9 {
				t.Fatalf("path length %v != dist %v", got, res.Dist[v])
			}
		}
	}
}

func TestDijkstraEdgeWeightOverride(t *testing.T) {
	g := New(3)
	fast := g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	// Make the direct edge expensive via the override.
	override := func(id int, stored float64) float64 {
		if id == fast {
			return 100
		}
		return stored
	}
	p, d := ShortestPath(g, 0, 2, DijkstraOptions{EdgeWeight: override})
	if !p.Equal(Path{0, 1, 2}) || d != 2 {
		t.Fatalf("override ignored: %v len %v", p, d)
	}
	if got := PathLength(g, Path{0, 2}, DijkstraOptions{EdgeWeight: override}); got != 100 {
		t.Fatalf("PathLength override = %v, want 100", got)
	}
	d2, ok := BellmanFord(g, 0, DijkstraOptions{EdgeWeight: override})
	if !ok || d2[2] != 2 {
		t.Fatalf("BellmanFord override = %v, want 2", d2[2])
	}
}
