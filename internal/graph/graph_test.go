package graph

import (
	"math/rand"
	"testing"
)

func TestNewAndAdd(t *testing.T) {
	g := New(4)
	if g.N() != 4 {
		t.Fatalf("N() = %d, want 4", g.N())
	}
	id1 := g.AddEdge(0, 1, 2.5)
	id2 := g.AddArc(1, 2, 1.0)
	if id1 == id2 {
		t.Fatal("edge IDs must be distinct")
	}
	if g.NumEdgeIDs() != 2 {
		t.Fatalf("NumEdgeIDs = %d, want 2", g.NumEdgeIDs())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %d,%d,%d; want 1,2,0", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestUndirectedEdgeSharesID(t *testing.T) {
	g := New(2)
	id := g.AddEdge(0, 1, 1)
	if got := g.Neighbors(0)[0].ID; got != id {
		t.Fatalf("forward arc ID = %d, want %d", got, id)
	}
	if got := g.Neighbors(1)[0].ID; got != id {
		t.Fatalf("reverse arc ID = %d, want %d", got, id)
	}
}

func TestSetWeightByID(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 5)
	g.SetWeightByID(id, 9)
	if g.Neighbors(0)[0].Weight != 9 || g.Neighbors(1)[0].Weight != 9 {
		t.Fatal("SetWeightByID must update both arcs")
	}
	if g.Neighbors(1)[1].Weight != 5 {
		t.Fatal("SetWeightByID must not touch other edges")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(0, 1, 7)
	if g.Degree(0) != 1 {
		t.Fatal("mutating clone affected original")
	}
	if c.Degree(0) != 2 {
		t.Fatal("clone missing added edge")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{1, 2, 3}
	if p.Hops() != 2 {
		t.Fatalf("Hops = %d, want 2", p.Hops())
	}
	if !p.Loopless() {
		t.Fatal("1-2-3 must be loopless")
	}
	if (Path{1, 2, 1}).Loopless() {
		t.Fatal("1-2-1 must not be loopless")
	}
	if !p.Equal(Path{1, 2, 3}) || p.Equal(Path{1, 2}) || p.Equal(Path{1, 2, 4}) {
		t.Fatal("Equal misbehaved")
	}
	if (Path{}).Hops() != 0 {
		t.Fatal("empty path hops must be 0")
	}
}

// randomGraph builds a random connected-ish undirected graph for oracles.
func randomGraph(rng *rand.Rand, n int, extraEdges int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		g.AddEdge(u, v, 1+rng.Float64()*9)
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	return g
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.adj[0][0].To = 5
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range endpoint")
	}
	h := New(2)
	h.AddEdge(0, 1, 1)
	h.adj[0][0].ID = 3
	if err := h.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range edge ID")
	}
}
