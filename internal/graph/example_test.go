package graph_test

import (
	"fmt"

	"see/internal/graph"
)

// Shortest paths with combined edge and node weights (the ECE auxiliary
// graph uses node weight −ln q at junctions).
func ExampleDijkstra() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	// Junction 1 is expensive, junction 2 cheap.
	weight := func(v int) float64 {
		if v == 1 {
			return 5
		}
		return 0
	}
	path, dist := graph.ShortestPath(g, 0, 3, graph.DijkstraOptions{NodeWeight: weight})
	fmt.Println(path, dist)
	// Output: [0 2 3] 2
}

// Yen's algorithm enumerates loopless alternatives in length order — the
// candidate physical paths of §III-D.
func ExampleYenKShortest() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(0, 3, 5)
	for _, p := range graph.YenKShortest(g, 0, 3, 3, graph.DijkstraOptions{}) {
		fmt.Println(p)
	}
	// Output:
	// [0 1 3]
	// [0 2 3]
	// [0 3]
}

// Max flow bounds how many connections any selection can assemble from
// realized segments.
func ExampleMaxFlow() {
	m := graph.NewMaxFlow(4)
	m.AddUndirected(0, 1, 2) // two realized segments 0-1
	m.AddUndirected(1, 3, 1)
	m.AddUndirected(0, 2, 1)
	m.AddUndirected(2, 3, 1)
	fmt.Println(m.Solve(0, 3))
	// Output: 2
}
