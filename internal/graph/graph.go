// Package graph provides the graph substrate used throughout the simulator:
// adjacency structures, shortest-path algorithms (Dijkstra with combined
// edge and node weights, Bellman-Ford as a test oracle), Yen's K-shortest
// loopless paths, and connectivity utilities.
//
// Nodes are dense integers in [0, N). Edges carry a float64 weight and an
// opaque integer ID so that callers can attach attributes (lengths,
// capacities, success probabilities) in side tables.
package graph

import "fmt"

// Edge is a directed arc stored in an adjacency list.
type Edge struct {
	To     int
	Weight float64
	// ID identifies the underlying edge. For undirected graphs both arcs of
	// an edge share one ID, which callers use to index edge attribute
	// tables.
	ID int
}

// Graph is a directed multigraph with a fixed node count. The zero value is
// unusable; construct with New.
type Graph struct {
	adj      [][]Edge
	numEdges int
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// NumEdgeIDs returns the number of edge IDs allocated so far.
func (g *Graph) NumEdgeIDs() int { return g.numEdges }

// AddArc inserts a directed arc and returns its edge ID.
func (g *Graph) AddArc(from, to int, weight float64) int {
	id := g.numEdges
	g.numEdges++
	g.adj[from] = append(g.adj[from], Edge{To: to, Weight: weight, ID: id})
	return id
}

// AddEdge inserts an undirected edge (two arcs sharing one ID) and returns
// the ID.
func (g *Graph) AddEdge(u, v int, weight float64) int {
	id := g.numEdges
	g.numEdges++
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: weight, ID: id})
	g.adj[v] = append(g.adj[v], Edge{To: u, Weight: weight, ID: id})
	return id
}

// Reset empties the graph in place, keeping the node count and every
// adjacency list's backing array. Per-slot auxiliary graphs (the ECE
// stitch graph) are rebuilt through one retained Graph this way, so
// steady-state slots add edges into already-sized arrays instead of
// re-growing fresh lists.
func (g *Graph) Reset() {
	for u := range g.adj {
		g.adj[u] = g.adj[u][:0]
	}
	g.numEdges = 0
}

// Neighbors returns the adjacency list of u. The slice is owned by the
// graph; callers must not mutate it.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the out-degree of u (for undirected graphs, its degree).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// SetWeightByID updates the weight on every arc carrying the given edge ID.
// It is O(E); use it for small graphs or infrequent updates.
func (g *Graph) SetWeightByID(id int, weight float64) {
	for u := range g.adj {
		for i := range g.adj[u] {
			if g.adj[u][i].ID == id {
				g.adj[u][i].Weight = weight
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Edge, len(g.adj)), numEdges: g.numEdges}
	for u, es := range g.adj {
		c.adj[u] = append([]Edge(nil), es...)
	}
	return c
}

// Validate checks internal consistency (arc endpoints in range, non-negative
// IDs). It is intended for tests and debug assertions.
func (g *Graph) Validate() error {
	for u, es := range g.adj {
		for _, e := range es {
			if e.To < 0 || e.To >= len(g.adj) {
				return fmt.Errorf("graph: arc %d->%d out of range [0,%d)", u, e.To, len(g.adj))
			}
			if e.ID < 0 || e.ID >= g.numEdges {
				return fmt.Errorf("graph: arc %d->%d has invalid ID %d", u, e.To, e.ID)
			}
		}
	}
	return nil
}

// Path is a node sequence. A valid path has at least one node; a path with
// one node has zero hops.
type Path []int

// Hops returns the number of edges in the path.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Loopless reports whether the path visits each node at most once.
func (p Path) Loopless() bool {
	seen := make(map[int]struct{}, len(p))
	for _, v := range p {
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	return true
}

// Equal reports whether two paths are identical node sequences.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}
