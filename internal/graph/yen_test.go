package graph

import (
	"math/rand"
	"testing"
)

func TestYenSimpleDiamond(t *testing.T) {
	// 0-1-3 (len 2), 0-2-3 (len 3), 0-3 (len 4)
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 2)
	g.AddEdge(0, 3, 4)
	paths := YenKShortest(g, 0, 3, 3, DijkstraOptions{})
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	if !paths[0].Equal(Path{0, 1, 3}) {
		t.Fatalf("path[0] = %v", paths[0])
	}
	if !paths[1].Equal(Path{0, 2, 3}) {
		t.Fatalf("path[1] = %v", paths[1])
	}
	if !paths[2].Equal(Path{0, 3}) {
		t.Fatalf("path[2] = %v", paths[2])
	}
}

func TestYenFewerPathsThanK(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	paths := YenKShortest(g, 0, 2, 5, DijkstraOptions{})
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1 (line graph)", len(paths))
	}
}

func TestYenNoPath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if paths := YenKShortest(g, 0, 2, 3, DijkstraOptions{}); paths != nil {
		t.Fatalf("got %v, want nil for disconnected target", paths)
	}
}

func TestYenSourceEqualsTarget(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	paths := YenKShortest(g, 0, 0, 3, DijkstraOptions{})
	if len(paths) != 1 || !paths[0].Equal(Path{0}) {
		t.Fatalf("got %v, want single trivial path", paths)
	}
}

func TestYenInvalidArgs(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	if YenKShortest(g, 0, 1, 0, DijkstraOptions{}) != nil {
		t.Fatal("k=0 must return nil")
	}
	if YenKShortest(g, -1, 1, 2, DijkstraOptions{}) != nil {
		t.Fatal("bad source must return nil")
	}
	if YenKShortest(g, 0, 9, 2, DijkstraOptions{}) != nil {
		t.Fatal("bad target must return nil")
	}
}

func TestYenRespectsNodeWeights(t *testing.T) {
	// Through node 1 is shorter in edges but node 1 is expensive.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	nw := func(v int) float64 {
		if v == 1 {
			return 10
		}
		return 0
	}
	paths := YenKShortest(g, 0, 3, 2, DijkstraOptions{NodeWeight: nw})
	if len(paths) != 2 {
		t.Fatalf("got %d paths", len(paths))
	}
	if !paths[0].Equal(Path{0, 2, 3}) {
		t.Fatalf("first path should avoid heavy node: %v", paths[0])
	}
}

// Properties on random graphs: paths are loopless, distinct, sorted by
// length, start/end correctly, and the first path is the Dijkstra shortest.
func TestYenProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(16)
		g := randomGraph(rng, n, rng.Intn(2*n))
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			continue
		}
		k := 1 + rng.Intn(6)
		paths := YenKShortest(g, s, d, k, DijkstraOptions{})
		if len(paths) == 0 {
			t.Fatalf("random tree-based graph must connect %d-%d", s, d)
		}
		if len(paths) > k {
			t.Fatalf("returned %d > k=%d paths", len(paths), k)
		}
		_, want := ShortestPath(g, s, d, DijkstraOptions{})
		if got := PathLength(g, paths[0], DijkstraOptions{}); got > want+1e-9 {
			t.Fatalf("first Yen path length %v > Dijkstra %v", got, want)
		}
		seen := map[string]struct{}{}
		prevLen := -1.0
		for _, p := range paths {
			if p[0] != s || p[len(p)-1] != d {
				t.Fatalf("bad endpoints: %v", p)
			}
			if !p.Loopless() {
				t.Fatalf("loopy path: %v", p)
			}
			key := pathKey(p)
			if _, dup := seen[key]; dup {
				t.Fatalf("duplicate path: %v", p)
			}
			seen[key] = struct{}{}
			l := PathLength(g, p, DijkstraOptions{})
			if l < prevLen-1e-9 {
				t.Fatalf("paths not sorted by length: %v after %v", l, prevLen)
			}
			prevLen = l
		}
	}
}

func TestYenFindsAllSimplePathsInSmallGraph(t *testing.T) {
	// Complete graph K4 with unit weights has 5 simple paths 0→3:
	// direct, two 2-hop, two 3-hop.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v, 1)
		}
	}
	paths := YenKShortest(g, 0, 3, 10, DijkstraOptions{})
	if len(paths) != 5 {
		t.Fatalf("got %d paths, want 5: %v", len(paths), paths)
	}
}
