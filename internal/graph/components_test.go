package graph

import (
	"math/rand"
	"testing"
)

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	label, count := Components(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] || label[4] == label[0] || label[4] == label[2] {
		t.Fatalf("bad labels: %v", label)
	}
	if Connected(g) {
		t.Fatal("graph must not be connected")
	}
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	if !Connected(g) {
		t.Fatal("graph must be connected after joining")
	}
}

func TestConnectedEmpty(t *testing.T) {
	if !Connected(New(0)) {
		t.Fatal("empty graph is connected by convention")
	}
	if !Connected(New(1)) {
		t.Fatal("singleton graph is connected")
	}
}

func TestBFSHops(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 9)
	g.AddEdge(1, 2, 9)
	g.AddEdge(0, 3, 9)
	hops := BFSHops(g, 0)
	want := []int{0, 1, 2, 1, -1}
	for v, h := range want {
		if hops[v] != h {
			t.Fatalf("hops[%d] = %d, want %d", v, hops[v], h)
		}
	}
	for _, h := range BFSHops(g, -3) {
		if h != -1 {
			t.Fatal("invalid source must reach nothing")
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.SetCount() != 5 {
		t.Fatalf("SetCount = %d, want 5", uf.SetCount())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union must succeed")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union must report false")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Find(1) != uf.Find(2) {
		t.Fatal("1 and 2 must share a set")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("4 must remain separate")
	}
	if uf.SetCount() != 2 {
		t.Fatalf("SetCount = %d, want 2", uf.SetCount())
	}
}

// Property: Components agrees with UnionFind built from the same edges.
func TestComponentsMatchUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		uf := NewUnionFind(n)
		edges := rng.Intn(2 * n)
		for i := 0; i < edges; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(u, v, 1)
			uf.Union(u, v)
		}
		label, count := Components(g)
		if count != uf.SetCount() {
			t.Fatalf("component count %d != union-find %d", count, uf.SetCount())
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (label[u] == label[v]) != (uf.Find(u) == uf.Find(v)) {
					t.Fatalf("connectivity disagreement for %d,%d", u, v)
				}
			}
		}
	}
}
