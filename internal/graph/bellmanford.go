package graph

// BellmanFord computes single-source shortest path distances by edge
// relaxation. It is O(V·E) and exists primarily as a property-test oracle
// for Dijkstra; it supports the same intermediate-node weighting.
//
// The bool result is false if a negative cycle is reachable from the source.
func BellmanFord(g *Graph, source int, opts DijkstraOptions) ([]float64, bool) {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if source < 0 || source >= n {
		return dist, true
	}
	dist[source] = 0
	relaxAll := func() bool {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == Unreachable {
				continue
			}
			depart := dist[u]
			if opts.NodeWeight != nil && u != source {
				depart += opts.NodeWeight(u)
			}
			for _, e := range g.Neighbors(u) {
				if opts.Forbidden != nil && opts.Forbidden(e.To) {
					continue
				}
				if opts.ForbiddenEdge != nil && opts.ForbiddenEdge(e.ID) {
					continue
				}
				w := e.Weight
				if opts.EdgeWeight != nil {
					w = opts.EdgeWeight(e.ID, e.Weight)
				}
				if nd := depart + w; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		return changed
	}
	for i := 0; i < n-1; i++ {
		if !relaxAll() {
			return dist, true
		}
	}
	return dist, !relaxAll()
}
