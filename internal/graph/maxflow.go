package graph

// MaxFlow computes the maximum s→t flow with integer capacities using
// Dinic's algorithm. The evaluation harness uses it as an oracle: the
// number of connections any selection algorithm (ECE phase B, REPS's EPS)
// can assemble for one SD pair from realized segments is at most the max
// flow of the availability graph with unit node capacities relaxed.
type MaxFlow struct {
	n     int
	head  []int
	next  []int
	to    []int
	cap   []int
	level []int
	iter  []int
}

// NewMaxFlow creates a flow network with n nodes.
func NewMaxFlow(n int) *MaxFlow {
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &MaxFlow{n: n, head: head}
}

// AddEdge inserts a directed edge with the given capacity (and a residual
// reverse edge of capacity 0). It returns the edge index for FlowOn.
func (m *MaxFlow) AddEdge(from, to, capacity int) int {
	id := len(m.to)
	m.to = append(m.to, to)
	m.cap = append(m.cap, capacity)
	m.next = append(m.next, m.head[from])
	m.head[from] = id

	m.to = append(m.to, from)
	m.cap = append(m.cap, 0)
	m.next = append(m.next, m.head[to])
	m.head[to] = id + 1
	return id
}

// AddUndirected inserts an undirected unit-type edge: capacity in both
// directions.
func (m *MaxFlow) AddUndirected(a, b, capacity int) {
	id := len(m.to)
	m.to = append(m.to, b)
	m.cap = append(m.cap, capacity)
	m.next = append(m.next, m.head[a])
	m.head[a] = id

	m.to = append(m.to, a)
	m.cap = append(m.cap, capacity)
	m.next = append(m.next, m.head[b])
	m.head[b] = id + 1
}

func (m *MaxFlow) bfs(s, t int) bool {
	m.level = make([]int, m.n)
	for i := range m.level {
		m.level[i] = -1
	}
	queue := []int{s}
	m.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for e := m.head[v]; e != -1; e = m.next[e] {
			if m.cap[e] > 0 && m.level[m.to[e]] < 0 {
				m.level[m.to[e]] = m.level[v] + 1
				queue = append(queue, m.to[e])
			}
		}
	}
	return m.level[t] >= 0
}

func (m *MaxFlow) dfs(v, t, f int) int {
	if v == t {
		return f
	}
	for ; m.iter[v] != -1; m.iter[v] = m.next[m.iter[v]] {
		e := m.iter[v]
		u := m.to[e]
		if m.cap[e] > 0 && m.level[u] == m.level[v]+1 {
			d := m.dfs(u, t, min(f, m.cap[e]))
			if d > 0 {
				m.cap[e] -= d
				m.cap[e^1] += d
				return d
			}
		}
	}
	return 0
}

// Solve returns the maximum flow from s to t. It may be called once per
// network (capacities are consumed).
func (m *MaxFlow) Solve(s, t int) int {
	if s == t {
		return 0
	}
	flow := 0
	for m.bfs(s, t) {
		m.iter = append([]int(nil), m.head...)
		for {
			f := m.dfs(s, t, 1<<60)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}
