package graph

import "container/heap"

// DijkstraScratch holds the reusable per-call buffers of a targeted
// shortest-path query. Engines run thousands of small queries per slot
// (the ECE stitch loop, REPS's pool selection); keeping one scratch per
// engine turns the four O(n) allocations per query into zero. The zero
// value is ready and grows on first use. Not safe for concurrent queries.
type DijkstraScratch struct {
	dist     []float64
	prev     []int
	prevEdge []int
	done     []bool
	pq       priorityQueue
}

func (sc *DijkstraScratch) reset(n int) {
	if len(sc.dist) != n {
		sc.dist = make([]float64, n)
		sc.prev = make([]int, n)
		sc.prevEdge = make([]int, n)
		sc.done = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		sc.dist[i] = Unreachable
		sc.prev[i] = -1
		sc.prevEdge[i] = -1
		sc.done[i] = false
	}
	sc.pq = sc.pq[:0]
}

// ShortestPathTarget is ShortestPath with two observationally transparent
// optimizations: the search stops as soon as the target is settled (its
// distance and predecessor chain are final at pop time under non-negative
// weights, and the chain's nodes are all settled, so the reconstructed
// path is identical to the full run's), and all working storage comes from
// sc (nil allocates fresh buffers). Returns (nil, Unreachable) when no
// path exists.
func ShortestPathTarget(g *Graph, s, t int, opts DijkstraOptions, sc *DijkstraScratch) (Path, float64) {
	if sc == nil {
		sc = &DijkstraScratch{}
	}
	n := g.N()
	sc.reset(n)
	if s < 0 || s >= n || t < 0 || t >= n {
		return nil, Unreachable
	}
	sc.dist[s] = 0
	sc.pq = append(sc.pq, pqItem{node: s, dist: 0})
	pq := &sc.pq
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.node
		if sc.done[u] {
			continue
		}
		sc.done[u] = true
		if u == t {
			break
		}
		depart := it.dist
		if opts.NodeWeight != nil && u != s {
			depart += opts.NodeWeight(u)
		}
		for _, e := range g.Neighbors(u) {
			if sc.done[e.To] {
				continue
			}
			if opts.Forbidden != nil && opts.Forbidden(e.To) {
				continue
			}
			if opts.ForbiddenEdge != nil && opts.ForbiddenEdge(e.ID) {
				continue
			}
			w := e.Weight
			if opts.EdgeWeight != nil {
				w = opts.EdgeWeight(e.ID, e.Weight)
			}
			nd := depart + w
			if nd < sc.dist[e.To] {
				sc.dist[e.To] = nd
				sc.prev[e.To] = u
				sc.prevEdge[e.To] = e.ID
				heap.Push(pq, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if sc.dist[t] == Unreachable {
		return nil, Unreachable
	}
	// Reconstruct s→t. Every node on the chain is settled, so the path is
	// exactly what the full Dijkstra would return.
	length := 1
	for v := t; v != s; v = sc.prev[v] {
		length++
	}
	path := make(Path, length)
	for i, v := length-1, t; i >= 0; i, v = i-1, sc.prev[v] {
		path[i] = v
	}
	return path, sc.dist[t]
}
