package graph

import (
	"container/heap"
	"math"
)

// Unreachable is the distance reported for nodes with no path from the
// source.
const Unreachable = math.MaxFloat64

// DijkstraOptions controls a shortest-path run.
type DijkstraOptions struct {
	// NodeWeight, when non-nil, adds NodeWeight(v) every time the path
	// passes *through* v as an intermediate node (it is charged when
	// departing v, so neither the source nor the final destination pay
	// their own weight). This matches the auxiliary-graph construction in
	// the paper's ECE algorithm, where junction nodes cost −ln q_u.
	NodeWeight func(v int) float64
	// Forbidden, when non-nil, reports nodes that must not be traversed.
	// The source is always allowed.
	Forbidden func(v int) bool
	// ForbiddenEdge, when non-nil, reports edge IDs that must not be used.
	ForbiddenEdge func(id int) bool
	// EdgeWeight, when non-nil, overrides the stored weight of each edge.
	// Returning a negative value is invalid. It allows callers (e.g. the
	// column-generation pricing oracle) to re-weight a graph per query
	// without rebuilding it.
	EdgeWeight func(id int, stored float64) float64
}

// ShortestResult holds single-source shortest path output.
type ShortestResult struct {
	Dist []float64
	// prev[v] is the predecessor node on a shortest path, prevEdge[v] the
	// edge ID used to enter v; both are -1 for the source and unreachable
	// nodes.
	prev     []int
	prevEdge []int
	source   int
}

// PathTo reconstructs a shortest path from the source to t, or nil if t is
// unreachable.
func (r *ShortestResult) PathTo(t int) Path {
	if t < 0 || t >= len(r.Dist) || r.Dist[t] == Unreachable {
		return nil
	}
	var rev []int
	for v := t; v != -1; v = r.prev[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgesTo returns the edge IDs along the shortest path to t, or nil if
// unreachable.
func (r *ShortestResult) EdgesTo(t int) []int {
	if t < 0 || t >= len(r.Dist) || r.Dist[t] == Unreachable || t == r.source {
		return nil
	}
	var rev []int
	for v := t; r.prev[v] != -1; v = r.prev[v] {
		rev = append(rev, r.prevEdge[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type pqItem struct {
	node int
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths with non-negative edge
// weights, optionally adding node weights at intermediate nodes and
// honouring node/edge exclusions. Negative edge weights cause undefined
// results; use BellmanFord to detect them in tests.
func Dijkstra(g *Graph, source int, opts DijkstraOptions) *ShortestResult {
	n := g.N()
	res := &ShortestResult{
		Dist:     make([]float64, n),
		prev:     make([]int, n),
		prevEdge: make([]int, n),
		source:   source,
	}
	for i := range res.Dist {
		res.Dist[i] = Unreachable
		res.prev[i] = -1
		res.prevEdge[i] = -1
	}
	if source < 0 || source >= n {
		return res
	}
	res.Dist[source] = 0
	done := make([]bool, n)
	pq := priorityQueue{{node: source, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		// Departing u costs its node weight, unless u is the source.
		depart := it.dist
		if opts.NodeWeight != nil && u != source {
			depart += opts.NodeWeight(u)
		}
		for _, e := range g.Neighbors(u) {
			if done[e.To] {
				continue
			}
			if opts.Forbidden != nil && opts.Forbidden(e.To) {
				continue
			}
			if opts.ForbiddenEdge != nil && opts.ForbiddenEdge(e.ID) {
				continue
			}
			w := e.Weight
			if opts.EdgeWeight != nil {
				w = opts.EdgeWeight(e.ID, e.Weight)
			}
			nd := depart + w
			if nd < res.Dist[e.To] {
				res.Dist[e.To] = nd
				res.prev[e.To] = u
				res.prevEdge[e.To] = e.ID
				heap.Push(&pq, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return res
}

// ShortestPath is a convenience wrapper returning the path from s to t and
// its length. It returns (nil, Unreachable) when no path exists.
func ShortestPath(g *Graph, s, t int, opts DijkstraOptions) (Path, float64) {
	res := Dijkstra(g, s, opts)
	p := res.PathTo(t)
	if p == nil {
		return nil, Unreachable
	}
	return p, res.Dist[t]
}

// PathLength computes the total cost of a path under the same cost model as
// Dijkstra (edge weights plus node weights at intermediate nodes). The edge
// chosen between consecutive nodes is the minimum-weight parallel arc. It
// returns Unreachable if consecutive nodes are not adjacent.
func PathLength(g *Graph, p Path, opts DijkstraOptions) float64 {
	if len(p) == 0 {
		return Unreachable
	}
	var total float64
	for i := 0; i+1 < len(p); i++ {
		if i > 0 && opts.NodeWeight != nil {
			total += opts.NodeWeight(p[i])
		}
		best := Unreachable
		for _, e := range g.Neighbors(p[i]) {
			if e.To != p[i+1] {
				continue
			}
			if opts.ForbiddenEdge != nil && opts.ForbiddenEdge(e.ID) {
				continue
			}
			w := e.Weight
			if opts.EdgeWeight != nil {
				w = opts.EdgeWeight(e.ID, e.Weight)
			}
			if w < best {
				best = w
			}
		}
		if best == Unreachable {
			return Unreachable
		}
		total += best
	}
	return total
}
