package graph

// Components labels the connected components of the graph treating every
// arc as traversable in its stored direction (for undirected graphs this is
// ordinary connectivity). It returns the component ID of each node and the
// number of components.
func Components(g *Graph) (label []int, count int) {
	n := g.N()
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	var stack []int
	for v := 0; v < n; v++ {
		if label[v] != -1 {
			continue
		}
		label[v] = count
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Neighbors(u) {
				if label[e.To] == -1 {
					label[e.To] = count
					stack = append(stack, e.To)
				}
			}
		}
		count++
	}
	return label, count
}

// Connected reports whether the graph has exactly one connected component
// (empty graphs are considered connected).
func Connected(g *Graph) bool {
	_, c := Components(g)
	return c <= 1
}

// BFSHops returns the minimum hop count from source to every node
// (Unreachable-like -1 for unreachable nodes).
func BFSHops(g *Graph, source int) []int {
	n := g.N()
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	if source < 0 || source >= n {
		return hops
	}
	hops[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(u) {
			if hops[e.To] == -1 {
				hops[e.To] = hops[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return hops
}

// UnionFind is a disjoint-set structure with path compression and union by
// size.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning false if already joined.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// SetCount returns the number of disjoint sets remaining.
func (uf *UnionFind) SetCount() int {
	count := 0
	for i, p := range uf.parent {
		if i == p {
			count++
		}
	}
	return count
}
