package graph

import (
	"math/rand"
	"testing"
)

func TestMaxFlowLine(t *testing.T) {
	m := NewMaxFlow(3)
	m.AddEdge(0, 1, 5)
	m.AddEdge(1, 2, 3)
	if got := m.Solve(0, 2); got != 3 {
		t.Fatalf("flow = %d, want 3", got)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style example.
	m := NewMaxFlow(6)
	m.AddEdge(0, 1, 16)
	m.AddEdge(0, 2, 13)
	m.AddEdge(1, 2, 10)
	m.AddEdge(2, 1, 4)
	m.AddEdge(1, 3, 12)
	m.AddEdge(3, 2, 9)
	m.AddEdge(2, 4, 14)
	m.AddEdge(4, 3, 7)
	m.AddEdge(3, 5, 20)
	m.AddEdge(4, 5, 4)
	if got := m.Solve(0, 5); got != 23 {
		t.Fatalf("flow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	m := NewMaxFlow(4)
	m.AddEdge(0, 1, 9)
	m.AddEdge(2, 3, 9)
	if got := m.Solve(0, 3); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
	m2 := NewMaxFlow(2)
	if got := m2.Solve(0, 0); got != 0 {
		t.Fatal("s == t must have zero flow")
	}
}

func TestMaxFlowUndirected(t *testing.T) {
	// Two undirected parallel 2-paths between 0 and 3.
	m := NewMaxFlow(4)
	m.AddUndirected(0, 1, 1)
	m.AddUndirected(1, 3, 1)
	m.AddUndirected(0, 2, 1)
	m.AddUndirected(2, 3, 1)
	if got := m.Solve(0, 3); got != 2 {
		t.Fatalf("flow = %d, want 2", got)
	}
}

// Property: max flow equals min cut on random graphs — checked against a
// brute-force enumeration of s-t cuts on small instances.
func TestMaxFlowEqualsMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		type edge struct{ u, v, c int }
		var edges []edge
		m := NewMaxFlow(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					c := 1 + rng.Intn(5)
					edges = append(edges, edge{u, v, c})
					m.AddEdge(u, v, c)
				}
			}
		}
		s, t2 := 0, n-1
		flow := m.Solve(s, t2)
		// Min cut by enumerating subsets containing s but not t.
		minCut := 1 << 30
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<s) == 0 || mask&(1<<t2) != 0 {
				continue
			}
			cut := 0
			for _, e := range edges {
				if mask&(1<<e.u) != 0 && mask&(1<<e.v) == 0 {
					cut += e.c
				}
			}
			if cut < minCut {
				minCut = cut
			}
		}
		if flow != minCut {
			t.Fatalf("trial %d: flow %d != min cut %d", trial, flow, minCut)
		}
	}
}
