package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestShortestPathTargetMatchesFull: the early-stop targeted query must
// return exactly the full Dijkstra's path and distance, on random graphs,
// with and without node weights, reusing one scratch across queries.
func TestShortestPathTargetMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := &DijkstraScratch{}
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(40)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(u, v, 0.1+rng.Float64())
		}
		var opts DijkstraOptions
		if trial%2 == 1 {
			opts.NodeWeight = func(v int) float64 { return float64(v%3) * 0.01 }
		}
		for q := 0; q < 10; q++ {
			s, d := rng.Intn(n), rng.Intn(n)
			wantPath, wantDist := ShortestPath(g, s, d, opts)
			gotPath, gotDist := ShortestPathTarget(g, s, d, opts, sc)
			if gotDist != wantDist || !reflect.DeepEqual(gotPath, wantPath) {
				t.Fatalf("trial %d query %d→%d: target-stop (%v, %v) != full (%v, %v)",
					trial, s, d, gotPath, gotDist, wantPath, wantDist)
			}
		}
	}
}

func TestShortestPathTargetNilScratch(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	p, d := ShortestPathTarget(g, 0, 2, DijkstraOptions{}, nil)
	if d != 2 || !reflect.DeepEqual(p, Path{0, 1, 2}) {
		t.Fatalf("got (%v, %v)", p, d)
	}
	if p, d := ShortestPathTarget(g, 0, 0, DijkstraOptions{}, nil); d != 0 || !reflect.DeepEqual(p, Path{0}) {
		t.Fatalf("s==t: got (%v, %v)", p, d)
	}
}

func TestGraphReset(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.Reset()
	if g.N() != 4 || g.NumEdgeIDs() != 0 || g.Degree(1) != 0 {
		t.Fatalf("reset left n=%d edges=%d deg1=%d", g.N(), g.NumEdgeIDs(), g.Degree(1))
	}
	id := g.AddEdge(2, 3, 1)
	if id != 0 {
		t.Fatalf("edge IDs must restart at 0 after Reset, got %d", id)
	}
	if p, d := ShortestPathTarget(g, 2, 3, DijkstraOptions{}, nil); d != 1 || !reflect.DeepEqual(p, Path{2, 3}) {
		t.Fatalf("post-reset graph broken: (%v, %v)", p, d)
	}
}
