package graph

import "sort"

// YenKShortest returns up to k loopless shortest paths from s to t in
// non-decreasing order of length, using Yen's algorithm over Dijkstra.
// Node weights in opts apply to intermediate nodes exactly as in Dijkstra.
// It returns fewer than k paths when the graph does not contain them.
func YenKShortest(g *Graph, s, t, k int, opts DijkstraOptions) []Path {
	if k <= 0 || s < 0 || t < 0 || s >= g.N() || t >= g.N() {
		return nil
	}
	if s == t {
		return []Path{{s}}
	}
	first, firstLen := ShortestPath(g, s, t, opts)
	if first == nil {
		return nil
	}
	accepted := []Path{first}
	lengths := []float64{firstLen}

	type candidate struct {
		path Path
		len  float64
	}
	var candidates []candidate
	seen := map[string]struct{}{pathKey(first): {}}

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		// For each node in the previous accepted path except the last,
		// branch on a deviation ("spur") from that node.
		for i := 0; i+1 < len(prev); i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			// Edges to remove: for every accepted path sharing the root,
			// ban the arc it takes out of the spur node.
			banned := make(map[[2]int]struct{})
			for _, p := range accepted {
				if len(p) > i+1 && Path(p[:i+1]).Equal(rootPath) {
					banned[[2]int{p[i], p[i+1]}] = struct{}{}
				}
			}
			// Nodes on the root path (except the spur node) are forbidden
			// to keep paths loopless.
			rootSet := make(map[int]struct{}, i)
			for _, v := range rootPath[:i] {
				rootSet[v] = struct{}{}
			}

			spurOpts := opts
			baseForbidden := opts.Forbidden
			spurOpts.Forbidden = func(v int) bool {
				if _, ok := rootSet[v]; ok {
					return true
				}
				return baseForbidden != nil && baseForbidden(v)
			}
			spurRes := dijkstraWithArcBan(g, spurNode, spurOpts, banned)
			spurPath := spurRes.PathTo(t)
			if spurPath == nil {
				continue
			}
			total := append(append(Path{}, rootPath...), spurPath[1:]...)
			if !total.Loopless() {
				continue
			}
			key := pathKey(total)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			candidates = append(candidates, candidate{
				path: total,
				len:  PathLength(g, total, opts),
			})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			if candidates[a].len != candidates[b].len {
				return candidates[a].len < candidates[b].len
			}
			return lessPath(candidates[a].path, candidates[b].path)
		})
		best := candidates[0]
		candidates = candidates[1:]
		accepted = append(accepted, best.path)
		lengths = append(lengths, best.len)
	}
	_ = lengths
	return accepted
}

// dijkstraWithArcBan runs Dijkstra while skipping specific (from, to) arcs.
func dijkstraWithArcBan(g *Graph, source int, opts DijkstraOptions, banned map[[2]int]struct{}) *ShortestResult {
	if len(banned) == 0 {
		return Dijkstra(g, source, opts)
	}
	// Wrap the edge filter: identify banned arcs by scanning the adjacency
	// list. Arc identity is (from, to); parallel arcs are all banned, which
	// is the standard Yen treatment for multigraphs.
	// We implement the ban by building a filtered clone for correctness and
	// simplicity; Yen instances in this codebase are small (K ≤ ~8).
	h := New(g.N())
	h.numEdges = g.numEdges
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if _, bad := banned[[2]int{u, e.To}]; bad {
				continue
			}
			h.adj[u] = append(h.adj[u], e)
		}
	}
	return Dijkstra(h, source, opts)
}

func pathKey(p Path) string {
	b := make([]byte, 0, len(p)*3)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), ',')
	}
	return string(b)
}

func lessPath(a, b Path) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
