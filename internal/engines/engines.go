// Package engines is the single construction point for the slot-pipeline
// engines: it maps a sched.Algorithm to the package implementing it
// (internal/core, internal/reps, internal/e2e) and translates the shared
// Config into each engine's options. Both the public API (package see) and
// the experiment harness build engines here, so no algorithm type-switch
// exists anywhere else.
package engines

import (
	"errors"
	"fmt"

	"see/internal/core"
	"see/internal/e2e"
	"see/internal/reps"
	"see/internal/sched"
	"see/internal/topo"
)

// Config tunes an engine; the zero value selects paper defaults for every
// scheme.
type Config struct {
	// KPaths is the Yen candidate-path budget per SD pair (0 = default:
	// 5 for SEE/REPS, 1 for E2E).
	KPaths int
	// MaxSegmentHops caps physical hops per entanglement segment for SEE
	// (0 = default 10).
	MaxSegmentHops int
	// MinSegmentProb prunes low-probability candidate segments for SEE
	// (0 = default 0.05).
	MinSegmentProb float64
	// StrictProvisioning switches SEE's ESC to the paper-literal
	// Algorithm 2 (see core.Options).
	StrictProvisioning bool
	// PlainObjective disables the swap-survival weighting of the LP
	// objective (ablation; see flow.Options.SwapWeightedObjective).
	PlainObjective bool
	// Workers bounds the goroutines used by the LP pricing rounds of every
	// scheme (0 = GOMAXPROCS, 1 = serial; see flow.Options.Workers).
	// Results are byte-identical at any worker count.
	Workers int
	// Tracer observes the slot pipeline; nil means no instrumentation.
	Tracer sched.Tracer
}

// Builder constructs one scheme's engine.
type Builder func(net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error)

// builders is the algorithm registry.
var builders = map[sched.Algorithm]Builder{
	sched.SEE:  newSEE,
	sched.REPS: newREPS,
	sched.E2E:  newE2E,
}

// New builds the engine for the given algorithm.
func New(alg sched.Algorithm, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	if net == nil {
		return nil, errors.New("engines: nil network")
	}
	b, ok := builders[alg]
	if !ok {
		return nil, fmt.Errorf("engines: unknown algorithm %v", alg)
	}
	return b(net, pairs, cfg)
}

func newSEE(net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	co := core.DefaultOptions()
	if cfg.KPaths > 0 {
		co.Segment.KPaths = cfg.KPaths
	}
	if cfg.MaxSegmentHops > 0 {
		co.Segment.MaxSegmentHops = cfg.MaxSegmentHops
	}
	if cfg.MinSegmentProb > 0 {
		co.Segment.MinProb = cfg.MinSegmentProb
	}
	co.StrictProvisioning = cfg.StrictProvisioning
	co.Flow.SwapWeightedObjective = !cfg.PlainObjective
	co.Flow.Workers = cfg.Workers
	co.Tracer = cfg.Tracer
	return core.NewEngine(net, pairs, co)
}

func newREPS(net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	o := reps.Options{KPaths: cfg.KPaths, Tracer: cfg.Tracer}
	o.Flow.Workers = cfg.Workers
	return reps.NewEngine(net, pairs, o)
}

func newE2E(net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	return e2e.NewEngine(net, pairs, e2e.Options{KPaths: cfg.KPaths, Workers: cfg.Workers, Tracer: cfg.Tracer})
}
