// Package engines is the single construction point for the slot-pipeline
// engines: it maps a sched.Algorithm to the package implementing it
// (internal/core, internal/reps, internal/e2e, internal/greedy,
// internal/contend) and
// translates the shared Config into each engine's options. Both the public
// API (package see) and the experiment harness build engines here, so no
// algorithm type-switch exists anywhere else.
//
// The package also owns the degradation ladder (NewResilient): when an
// LP-based engine's construction exceeds its slot budget or fails, the
// scheduler falls back to the greedy non-LP engine for the affected slots
// and retries the LP a bounded number of times, reporting every step
// through the tracer (see DESIGN.md "Fault model & degradation ladder").
package engines

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"see/internal/chaos"
	"see/internal/contend"
	"see/internal/core"
	"see/internal/e2e"
	"see/internal/greedy"
	"see/internal/oracle"
	"see/internal/qnet"
	"see/internal/reps"
	"see/internal/sched"
	"see/internal/state"
	"see/internal/topo"
	"see/internal/warm"
)

// Config tunes an engine; the zero value selects paper defaults for every
// scheme.
type Config struct {
	// KPaths is the Yen candidate-path budget per SD pair (0 = default:
	// 5 for SEE/REPS/Greedy, 1 for E2E).
	KPaths int
	// MaxSegmentHops caps physical hops per entanglement segment for SEE
	// (0 = default 10).
	MaxSegmentHops int
	// MinSegmentProb prunes low-probability candidate segments for SEE
	// (0 = default 0.05).
	MinSegmentProb float64
	// StrictProvisioning switches SEE's ESC to the paper-literal
	// Algorithm 2 (see core.Options).
	StrictProvisioning bool
	// PlainObjective disables the swap-survival weighting of the LP
	// objective (ablation; see flow.Options.SwapWeightedObjective).
	PlainObjective bool
	// Workers bounds the goroutines used by the LP pricing rounds of every
	// scheme (0 = GOMAXPROCS, 1 = serial; see flow.Options.Workers).
	// Results are byte-identical at any worker count.
	Workers int
	// Tracer observes the slot pipeline; nil means no instrumentation.
	Tracer sched.Tracer
	// Chaos injects deterministic faults into every engine's physical
	// phase; nil (or a zero-plan injector) leaves engines byte-identical
	// to a run without the chaos layer.
	Chaos *chaos.Injector
	// Warm, when non-nil, memoizes segment-candidate sets and LP solutions
	// across engine (re)builds over the same network (see internal/warm).
	// Every replayed artifact is byte-identical to a cold build, and
	// budgeted construction (a non-nil ctx) bypasses the cache, so enabling
	// it never changes results — only how fast rebuilds go.
	Warm *warm.Cache
	// FidelityFloors is the per-request minimum delivered end-to-end
	// fidelity (see qnet.FloorSpec and DESIGN.md §10). Engines never
	// attempt a candidate assembly whose predicted fidelity misses its
	// pair's floor. Nil (or an all-zero spec) disables enforcement and
	// leaves every engine byte-identical to pre-floor behavior.
	FidelityFloors *qnet.FloorSpec
	// SwapOrder selects the stitch phase's swap schedule. The zero value
	// (qnet.SwapOrderPath) is the historical left-to-right path order and
	// is byte-identical to pre-knob behavior; qnet.SwapOrderGreedy swaps
	// the least reliable junction first.
	SwapOrder qnet.SwapOrder
	// CarryAwareLP re-prices the SEE LP each slot with banked-inventory
	// weights, so column generation prefers stitches that reuse
	// high-fidelity carried segments (no-op without an attached bank or
	// with an empty one; see flow.Options.CarryWeights).
	CarryAwareLP bool
}

// Builder constructs one scheme's engine; ctx (nil = never cancelled)
// bounds any LP solves the construction performs.
type Builder func(ctx context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error)

// builders is the algorithm registry.
var builders = map[sched.Algorithm]Builder{
	sched.SEE:          newSEE,
	sched.REPS:         newREPS,
	sched.E2E:          newE2E,
	sched.Greedy:       newGreedy,
	sched.Contend:      newContend,
	sched.QPass:        newQPass,
	sched.ContendAware: newContendAware,
	sched.SEEAware:     newSEEAware,
	sched.Oracle:       newOracle,
}

// List returns every registered algorithm in ascending order. The
// cross-engine invariant harness (internal/sched/schedtest) iterates this
// list so a newly registered engine is automatically subjected to the
// shared pipeline invariants.
func List() []sched.Algorithm {
	out := make([]sched.Algorithm, 0, len(builders))
	for alg := range builders {
		out = append(out, alg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// New builds the engine for the given algorithm.
func New(alg sched.Algorithm, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	return NewCtx(nil, alg, net, pairs, cfg)
}

// NewCtx is New with construction bounded by a context (nil = never
// cancelled): LP-based engines abort their solve with an error wrapping
// ctx.Err() once the deadline expires. The greedy engine solves no LP and
// ignores the context.
func NewCtx(ctx context.Context, alg sched.Algorithm, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	if net == nil {
		return nil, errors.New("engines: nil network")
	}
	b, ok := builders[alg]
	if !ok {
		return nil, fmt.Errorf("engines: unknown algorithm %v", alg)
	}
	return b(ctx, net, pairs, cfg)
}

func newSEE(ctx context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	co := core.DefaultOptions()
	if cfg.KPaths > 0 {
		co.Segment.KPaths = cfg.KPaths
	}
	if cfg.MaxSegmentHops > 0 {
		co.Segment.MaxSegmentHops = cfg.MaxSegmentHops
	}
	if cfg.MinSegmentProb > 0 {
		co.Segment.MinProb = cfg.MinSegmentProb
	}
	co.StrictProvisioning = cfg.StrictProvisioning
	co.Flow.SwapWeightedObjective = !cfg.PlainObjective
	co.Flow.Workers = cfg.Workers
	co.Tracer = cfg.Tracer
	co.Chaos = cfg.Chaos
	co.Warm = cfg.Warm
	co.FidelityFloors = cfg.FidelityFloors
	co.SwapOrder = cfg.SwapOrder
	co.CarryAwareLP = cfg.CarryAwareLP
	return core.NewEngineCtx(ctx, net, pairs, co)
}

func newREPS(ctx context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	o := reps.Options{KPaths: cfg.KPaths, Tracer: cfg.Tracer, Chaos: cfg.Chaos, Warm: cfg.Warm,
		FidelityFloors: cfg.FidelityFloors, SwapOrder: cfg.SwapOrder}
	o.Flow.Workers = cfg.Workers
	return reps.NewEngineCtx(ctx, net, pairs, o)
}

func newE2E(ctx context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	return e2e.NewEngineCtx(ctx, net, pairs, e2e.Options{KPaths: cfg.KPaths, Workers: cfg.Workers, Tracer: cfg.Tracer, Chaos: cfg.Chaos, Warm: cfg.Warm,
		FidelityFloors: cfg.FidelityFloors, SwapOrder: cfg.SwapOrder})
}

func newContend(_ context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	return contend.NewEngine(net, pairs, contendOptions(cfg))
}

// contendOptions translates the shared Config into contend options; the
// Contend, ContendAware and QPass builders all start from it.
func contendOptions(cfg Config) contend.Options {
	o := contend.DefaultOptions()
	if cfg.KPaths > 0 {
		o.Segment.KPaths = cfg.KPaths
		o.PathsPerPair = cfg.KPaths
	}
	if cfg.MaxSegmentHops > 0 {
		o.Segment.MaxSegmentHops = cfg.MaxSegmentHops
	}
	if cfg.MinSegmentProb > 0 {
		o.Segment.MinProb = cfg.MinSegmentProb
	}
	o.Tracer = cfg.Tracer
	o.Chaos = cfg.Chaos
	o.Warm = cfg.Warm
	o.FidelityFloors = cfg.FidelityFloors
	o.SwapOrder = cfg.SwapOrder
	return o
}

// forecastTables turns the injector's announced-fault forecast into
// planning capacity tables: channels/memory with forecast-dead elements
// zeroed and browned links derated, plus the number of elements the
// forecast routes around. All nil/0 when there is no forecast, so
// fault-aware engines without announced faults plan on the true topology
// and stay byte-identical to their fault-blind twins.
func forecastTables(in *chaos.Injector, net *topo.Network) (channels, memory []int, avoided int) {
	fc := in.Forecast()
	if fc.IsZero() {
		return nil, nil, 0
	}
	channels = make([]int, net.NumLinks())
	for id := range channels {
		channels[id] = fc.Channels(id, net.Channels[id])
	}
	memory = make([]int, net.NumNodes())
	for v := range memory {
		memory[v] = fc.Memory(v, net.Memory[v])
	}
	return channels, memory, fc.Avoided()
}

func newSEEAware(ctx context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	co := core.DefaultOptions()
	if cfg.KPaths > 0 {
		co.Segment.KPaths = cfg.KPaths
	}
	if cfg.MaxSegmentHops > 0 {
		co.Segment.MaxSegmentHops = cfg.MaxSegmentHops
	}
	if cfg.MinSegmentProb > 0 {
		co.Segment.MinProb = cfg.MinSegmentProb
	}
	co.StrictProvisioning = cfg.StrictProvisioning
	co.Flow.SwapWeightedObjective = !cfg.PlainObjective
	co.Flow.Workers = cfg.Workers
	co.Tracer = cfg.Tracer
	co.Chaos = cfg.Chaos
	co.Warm = cfg.Warm
	co.FidelityFloors = cfg.FidelityFloors
	co.SwapOrder = cfg.SwapOrder
	co.CarryAwareLP = cfg.CarryAwareLP
	co.Algorithm = sched.SEEAware
	co.PlanChannels, co.PlanMemory, co.ForecastAvoided = forecastTables(cfg.Chaos, net)
	// Always on (not gated on a non-zero forecast) so planning on a full
	// topology with forecast tables is the same code path as planning on a
	// pre-shrunk topology with none — the equivalence the schedtest
	// forecast contract pins. With no dead links it drops nothing.
	co.Flow.DropDeadLinks = true
	return core.NewEngineCtx(ctx, net, pairs, co)
}

func newContendAware(_ context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	o := contendOptions(cfg)
	o.Algorithm = sched.ContendAware
	o.PlanChannels, o.PlanMemory, o.ForecastAvoided = forecastTables(cfg.Chaos, net)
	return contend.NewEngine(net, pairs, o)
}

// newQPass builds the Q-PASS-style offline contrast baseline: paths are
// fixed from the fault-free topology with per-hop recovery reserved up
// front, and the forecast is deliberately ignored.
func newQPass(_ context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	o := contendOptions(cfg)
	o.Algorithm = sched.QPass
	o.Offline = true
	return contend.NewEngine(net, pairs, o)
}

func newGreedy(_ context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	o := greedy.DefaultOptions()
	if cfg.KPaths > 0 {
		o.Segment.KPaths = cfg.KPaths
	}
	if cfg.MaxSegmentHops > 0 {
		o.Segment.MaxSegmentHops = cfg.MaxSegmentHops
	}
	if cfg.MinSegmentProb > 0 {
		o.Segment.MinProb = cfg.MinSegmentProb
	}
	o.Tracer = cfg.Tracer
	o.Chaos = cfg.Chaos
	o.Warm = cfg.Warm
	o.FidelityFloors = cfg.FidelityFloors
	o.SwapOrder = cfg.SwapOrder
	return greedy.NewEngine(net, pairs, o)
}

// newOracle builds the capacity-bound pseudo-engine. It takes only the
// tracer from the shared Config, on purpose: capacity bounds depend on the
// topology and the demand set alone, not on any scheme tuning.
func newOracle(_ context.Context, net *topo.Network, pairs []topo.SDPair, cfg Config) (sched.Engine, error) {
	return oracle.NewEngine(net, pairs, cfg.Tracer)
}

// maxConstructionRetries bounds how many slots retry a failed LP
// construction before the resilient engine settles on the greedy fallback
// for good.
const maxConstructionRetries = 3

// Resilient is the degradation ladder around an LP-based engine. The
// primary engine's LP solve happens lazily inside the first RunSlot under
// the slot budget, so a solve that blows the budget degrades that same
// slot to the greedy fallback — the slot still completes with nonzero
// attempted paths. Later slots retry the LP up to maxConstructionRetries
// times (each retry reported as sched.IncidentRetry, each degraded slot as
// sched.IncidentDegraded) before settling on the fallback permanently.
type Resilient struct {
	alg    sched.Algorithm
	net    *topo.Network
	pairs  []topo.SDPair
	cfg    Config
	budget time.Duration
	tracer sched.Tracer

	primary  sched.Engine
	fallback sched.Engine
	failures int
	lastErr  error
	// bank is the cross-slot segment bank to attach to whichever engine
	// ends up serving slots. It is held here because both the primary and
	// the fallback are built lazily — and it deliberately survives
	// degradation: banked photons sit in node memories, which do not care
	// which scheduler failed over.
	bank *state.Bank
}

var _ sched.Stateful = (*Resilient)(nil)

// NewResilient wraps the algorithm in the degradation ladder. budget <= 0
// means no deadline (the primary still degrades on solver errors or
// panics). The network and configuration are validated eagerly, but the
// primary's LP is deferred to the first slot.
func NewResilient(alg sched.Algorithm, net *topo.Network, pairs []topo.SDPair, cfg Config, budget time.Duration) (*Resilient, error) {
	if net == nil {
		return nil, errors.New("engines: nil network")
	}
	if _, ok := builders[alg]; !ok {
		return nil, fmt.Errorf("engines: unknown algorithm %v", alg)
	}
	return &Resilient{
		alg:    alg,
		net:    net,
		pairs:  pairs,
		cfg:    cfg,
		budget: budget,
		tracer: sched.OrNop(cfg.Tracer),
	}, nil
}

// buildPrimary attempts the budgeted LP construction, converting panics
// (e.g. a par.WorkerPanic escaping a pricing worker) into errors so one
// broken solve degrades the slot instead of killing the process.
func (r *Resilient) buildPrimary() (eng sched.Engine, err error) {
	ctx := context.Context(nil)
	cancel := func() {}
	if r.budget > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), r.budget)
	}
	defer cancel()
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("engines: construction panic: %v", v)
		}
	}()
	return NewCtx(ctx, r.alg, r.net, r.pairs, r.cfg)
}

// RunSlot serves the slot with the primary engine when available, else
// degrades to the greedy fallback.
func (r *Resilient) RunSlot(rng *rand.Rand) (*sched.SlotResult, error) {
	if r.primary == nil && r.failures <= maxConstructionRetries {
		if r.failures > 0 {
			r.tracer.Incident(sched.IncidentRetry, 1)
		}
		eng, err := r.buildPrimary()
		if err != nil {
			r.failures++
			r.lastErr = err
		} else {
			r.primary = eng
			r.attachBank(eng)
		}
	}
	if r.primary != nil {
		return r.primary.RunSlot(rng)
	}
	if r.fallback == nil {
		eng, err := newGreedy(nil, r.net, r.pairs, r.cfg)
		if err != nil {
			return nil, fmt.Errorf("engines: greedy fallback: %w (primary: %v)", err, r.lastErr)
		}
		r.fallback = eng
		r.attachBank(eng)
	}
	r.tracer.Incident(sched.IncidentDegraded, 1)
	return r.fallback.RunSlot(rng)
}

// Algorithm reports the scheme the caller asked for, degraded or not.
func (r *Resilient) Algorithm() sched.Algorithm { return r.alg }

// UpperBound returns the primary's LP bound when available, else the
// fallback's heuristic value (0 before any slot has run).
func (r *Resilient) UpperBound() float64 {
	if r.primary != nil {
		return r.primary.UpperBound()
	}
	if r.fallback != nil {
		return r.fallback.UpperBound()
	}
	return 0
}

// Degraded reports how the ladder stands: whether the primary is
// unavailable and the error of its last failed construction.
func (r *Resilient) Degraded() (bool, error) {
	return r.primary == nil && r.failures > 0, r.lastErr
}

// AttachBank implements sched.Stateful. The bank is handed to whichever
// engine serves slots — including a primary built lazily on a later slot —
// so banked segments survive degradation and recovery alike.
func (r *Resilient) AttachBank(b *state.Bank) {
	r.bank = b
	r.attachBank(r.primary)
	r.attachBank(r.fallback)
}

// Bank implements sched.Stateful.
func (r *Resilient) Bank() *state.Bank { return r.bank }

// attachBank forwards the stored bank to a newly built engine (no-op for
// a nil engine or a nil bank).
func (r *Resilient) attachBank(eng sched.Engine) {
	if eng == nil || r.bank == nil {
		return
	}
	if s, ok := eng.(sched.Stateful); ok {
		s.AttachBank(r.bank)
	}
}
