package engines

import (
	"reflect"
	"testing"
	"time"

	"see/internal/chaos"
	"see/internal/sched"
	"see/internal/topo"
	"see/internal/xrand"
)

// allAlgorithms is the paper trio plus the repo-grown greedy baseline.
var allAlgorithms = append(append([]sched.Algorithm(nil), sched.Algorithms...), sched.Greedy)

// runSlots builds the engine and returns every SlotResult from a fixed
// seed schedule.
func runSlots(t *testing.T, alg sched.Algorithm, net *topo.Network, pairs []topo.SDPair, cfg Config, slots int) []sched.SlotResult {
	t.Helper()
	eng, err := New(alg, net, pairs, cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", alg, err)
	}
	rng := xrand.New(99)
	out := make([]sched.SlotResult, 0, slots)
	for s := 0; s < slots; s++ {
		res, err := eng.RunSlot(rng)
		if err != nil {
			t.Fatalf("RunSlot(%v): %v", alg, err)
		}
		out = append(out, *res)
	}
	return out
}

// TestZeroFaultPlanByteIdentical is the chaos determinism contract: with a
// zero FaultPlan every engine must produce results byte-identical to a run
// with no chaos layer at all — the injector may not consume randomness or
// perturb any code path when it has nothing to inject.
func TestZeroFaultPlanByteIdentical(t *testing.T) {
	net, pairs := topo.Motivation()
	genCfg := topo.DefaultConfig()
	genCfg.Nodes = 40
	gen, err := topo.Generate(genCfg, xrand.New(5))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	genPairs := topo.ChooseSDPairs(gen, 6, xrand.New(6))

	nets := []struct {
		name  string
		net   *topo.Network
		pairs []topo.SDPair
	}{
		{"motivation", net, pairs},
		{"waxman40", gen, genPairs},
	}
	for _, tc := range nets {
		for _, alg := range allAlgorithms {
			t.Run(tc.name+"/"+alg.String(), func(t *testing.T) {
				plain := runSlots(t, alg, tc.net, tc.pairs, Config{}, 8)
				inj, err := chaos.NewInjector(&chaos.FaultPlan{}, tc.net)
				if err != nil {
					t.Fatalf("NewInjector: %v", err)
				}
				chaotic := runSlots(t, alg, tc.net, tc.pairs, Config{Chaos: inj}, 8)
				if !reflect.DeepEqual(plain, chaotic) {
					t.Fatalf("zero fault plan changed results:\nplain:   %+v\nchaotic: %+v", plain, chaotic)
				}
				if inj.Counts().Total() != 0 {
					t.Errorf("zero plan counted faults: %+v", inj.Counts())
				}
			})
		}
	}
}

// TestFaultsReportedThroughTracer checks that a plan which certainly fires
// (every node down) is both counted by the injector and surfaced as
// IncidentFault through the tracer, and that the slot still completes.
func TestFaultsReportedThroughTracer(t *testing.T) {
	net, pairs := topo.Motivation()
	plan := &chaos.FaultPlan{}
	for v := 0; v < net.NumNodes(); v++ {
		plan.NodeOutages = append(plan.NodeOutages, chaos.Window{ID: v, From: 0})
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			inj, err := chaos.NewInjector(plan, net)
			if err != nil {
				t.Fatalf("NewInjector: %v", err)
			}
			tr := sched.NewCountingTracer()
			eng, err := New(alg, net, pairs, Config{Chaos: inj, Tracer: tr})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := eng.RunSlot(xrand.New(1))
			if err != nil {
				t.Fatalf("RunSlot: %v", err)
			}
			if res.SegmentsCreated != 0 || res.Established != 0 {
				t.Errorf("all nodes down but created %d segments, established %d",
					res.SegmentsCreated, res.Established)
			}
			if inj.Counts().RoutesBlocked == 0 {
				t.Error("no routes blocked with every node down")
			}
			if tr.Counts().IncidentCount(sched.IncidentFault) == 0 {
				t.Error("faults not reported through tracer")
			}
		})
	}
}

// TestResilientDegradation forces the LP construction over an impossible
// budget: every slot must degrade to the greedy fallback, still attempt
// paths, and report the degradations and bounded retries via the tracer.
func TestResilientDegradation(t *testing.T) {
	net, pairs := topo.Motivation()
	tr := sched.NewCountingTracer()
	r, err := NewResilient(sched.SEE, net, pairs, Config{Tracer: tr}, time.Nanosecond)
	if err != nil {
		t.Fatalf("NewResilient: %v", err)
	}
	if got := r.Algorithm(); got != sched.SEE {
		t.Errorf("Algorithm() = %v, want SEE", got)
	}
	rng := xrand.New(4)
	const slots = 6
	attempted := 0
	for s := 0; s < slots; s++ {
		res, err := r.RunSlot(rng)
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		attempted += res.Attempts
		if res.PlannedPaths == 0 {
			t.Errorf("slot %d: degraded slot planned no paths", s)
		}
	}
	if attempted == 0 {
		t.Error("no attempts across degraded slots")
	}
	c := tr.Counts()
	if got := c.IncidentCount(sched.IncidentDegraded); got != slots {
		t.Errorf("degraded incidents = %d, want %d", got, slots)
	}
	// Construction is tried on slots 0..maxConstructionRetries, and only
	// retries (not the first try) are incidents.
	if got := c.IncidentCount(sched.IncidentRetry); got != maxConstructionRetries {
		t.Errorf("retry incidents = %d, want %d", got, maxConstructionRetries)
	}
	degraded, lastErr := r.Degraded()
	if !degraded || lastErr == nil {
		t.Errorf("Degraded() = %v, %v; want true with error", degraded, lastErr)
	}
	if r.UpperBound() <= 0 {
		t.Errorf("fallback bound = %v, want > 0", r.UpperBound())
	}
}

// TestResilientHealthy checks the other side of the ladder: with a generous
// budget the resilient wrapper must behave exactly like the plain engine.
func TestResilientHealthy(t *testing.T) {
	net, pairs := topo.Motivation()
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			plain := runSlots(t, alg, net, pairs, Config{}, 5)
			tr := sched.NewCountingTracer()
			r, err := NewResilient(alg, net, pairs, Config{Tracer: tr}, time.Minute)
			if err != nil {
				t.Fatalf("NewResilient: %v", err)
			}
			rng := xrand.New(99)
			for s := 0; s < 5; s++ {
				res, err := r.RunSlot(rng)
				if err != nil {
					t.Fatalf("slot %d: %v", s, err)
				}
				if !reflect.DeepEqual(*res, plain[s]) {
					t.Fatalf("slot %d diverged from plain engine:\nplain:     %+v\nresilient: %+v", s, plain[s], *res)
				}
			}
			c := tr.Counts()
			if c.IncidentCount(sched.IncidentDegraded) != 0 || c.IncidentCount(sched.IncidentRetry) != 0 {
				t.Errorf("healthy run reported incidents: %+v", c.Incidents)
			}
			if degraded, _ := r.Degraded(); degraded {
				t.Error("healthy run reports degraded")
			}
		})
	}
}

// announcedInjector builds an injector whose plan is entirely announced:
// a dead link, a browned link and a flapping link, all windows covering
// every slot the tests run.
func announcedInjector(t *testing.T, net *topo.Network) *chaos.Injector {
	t.Helper()
	plan := &chaos.FaultPlan{
		Seed:        5,
		LinkOutages: []chaos.Window{{ID: 0, From: 0}},
		Brownouts:   []chaos.Brownout{{Link: 1, Frac: 0.5, From: 0}},
		Flaps:       []chaos.Flap{{Link: 2, Period: 4, Duty: 0.5, From: 0}},
	}
	if err := plan.Validate(net.NumNodes(), net.NumLinks()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	inj, err := chaos.NewInjector(plan, net)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return inj
}

// TestForecastTables checks the translation from the injector's announced
// forecast to planning capacity tables: dead links zeroed, browned links
// derated, flapping links scaled by duty, everything else untouched — and
// all-nil for an injector with nothing announced.
func TestForecastTables(t *testing.T) {
	net, _ := topo.Motivation()
	inj := announcedInjector(t, net)
	channels, memory, avoided := forecastTables(inj, net)
	if avoided == 0 {
		t.Error("announced plan but Avoided() = 0")
	}
	if channels[0] != 0 {
		t.Errorf("dead link 0: planning capacity %d, want 0", channels[0])
	}
	if want := net.Channels[1] / 2; channels[1] != want {
		t.Errorf("browned link 1: planning capacity %d, want %d", channels[1], want)
	}
	if channels[2] >= net.Channels[2] || channels[2] < 0 {
		t.Errorf("flapping link 2: planning capacity %d, want in [0, %d)", channels[2], net.Channels[2])
	}
	for id := 3; id < net.NumLinks(); id++ {
		if channels[id] != net.Channels[id] {
			t.Errorf("clean link %d: planning capacity %d, want %d", id, channels[id], net.Channels[id])
		}
	}
	for v, m := range memory {
		if m != net.Memory[v] {
			t.Errorf("node %d: planning memory %d, want %d (no node announced)", v, m, net.Memory[v])
		}
	}

	inert, err := chaos.NewInjector(&chaos.FaultPlan{}, net)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if c, m, a := forecastTables(inert, net); c != nil || m != nil || a != 0 {
		t.Errorf("inert injector: forecastTables = (%v, %v, %d), want (nil, nil, 0)", c, m, a)
	}
	if c, m, a := forecastTables(nil, net); c != nil || m != nil || a != 0 {
		t.Errorf("nil injector: forecastTables = (%v, %v, %d), want (nil, nil, 0)", c, m, a)
	}
}

// TestFaultAwareBuilders constructs every registered engine against an
// announced fault plan and checks the registry labels survive the trip:
// each engine reports its own algorithm, the fault-aware variants report
// the forecast through IncidentForecastAvoid and the rest do not.
func TestFaultAwareBuilders(t *testing.T) {
	net, pairs := topo.Motivation()
	for _, alg := range List() {
		t.Run(alg.String(), func(t *testing.T) {
			inj := announcedInjector(t, net)
			tr := sched.NewCountingTracer()
			eng, err := New(alg, net, pairs, Config{Chaos: inj, Tracer: tr})
			if err != nil {
				t.Fatalf("New(%v): %v", alg, err)
			}
			if got := eng.Algorithm(); got != alg {
				t.Errorf("Algorithm() = %v, want %v", got, alg)
			}
			if _, err := eng.RunSlot(xrand.New(3)); err != nil {
				t.Fatalf("RunSlot: %v", err)
			}
			avoided := tr.Counts().IncidentCount(sched.IncidentForecastAvoid)
			if alg.FaultAware() && avoided == 0 {
				t.Error("fault-aware engine reported no IncidentForecastAvoid")
			}
			if !alg.FaultAware() && avoided != 0 {
				t.Errorf("fault-blind engine reported IncidentForecastAvoid = %d", avoided)
			}
		})
	}
}
