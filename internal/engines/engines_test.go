package engines

import (
	"testing"

	"see/internal/sched"
	"see/internal/topo"
	"see/internal/xrand"
)

// TestTracerReconciliation runs every engine on the motivation fixture and
// checks that the phase events observed by a CountingTracer reconcile with
// the SlotResult the engine returns: reservation counts sum to Attempts,
// every attempt is resolved exactly once, created=true events equal
// SegmentsCreated, and assembly events match Assembled/Established.
func TestTracerReconciliation(t *testing.T) {
	for _, alg := range sched.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			net, pairs := topo.Motivation()
			tr := sched.NewCountingTracer()
			eng, err := New(alg, net, pairs, Config{Tracer: tr})
			if err != nil {
				t.Fatalf("New(%v): %v", alg, err)
			}
			if got := eng.Algorithm(); got != alg {
				t.Fatalf("Algorithm() = %v, want %v", got, alg)
			}
			const slots = 20
			rng := xrand.New(7)
			var total sched.SlotResult
			for s := 0; s < slots; s++ {
				res, err := eng.RunSlot(rng)
				if err != nil {
					t.Fatalf("RunSlot: %v", err)
				}
				total.PlannedPaths += res.PlannedPaths
				total.ProvisionedPaths += res.ProvisionedPaths
				total.Attempts += res.Attempts
				total.SegmentsCreated += res.SegmentsCreated
				total.Assembled += res.Assembled
				total.Established += res.Established
			}
			c := tr.Counts()
			if c.Slots != slots {
				t.Errorf("Slots = %d, want %d", c.Slots, slots)
			}
			if c.PathsPlanned != total.PlannedPaths {
				t.Errorf("PathsPlanned = %d, want %d", c.PathsPlanned, total.PlannedPaths)
			}
			if c.PathsProvisioned != total.ProvisionedPaths {
				t.Errorf("PathsProvisioned = %d, want %d", c.PathsProvisioned, total.ProvisionedPaths)
			}
			if c.AttemptsReserved != total.Attempts {
				t.Errorf("AttemptsReserved = %d, want SlotResult.Attempts %d", c.AttemptsReserved, total.Attempts)
			}
			if c.AttemptsResolved != total.Attempts {
				t.Errorf("AttemptsResolved = %d, want SlotResult.Attempts %d", c.AttemptsResolved, total.Attempts)
			}
			if c.SegmentsCreated != total.SegmentsCreated {
				t.Errorf("SegmentsCreated = %d, want %d", c.SegmentsCreated, total.SegmentsCreated)
			}
			if c.SegmentsCreated+c.AttemptsFailed != c.AttemptsResolved {
				t.Errorf("created %d + failed %d != resolved %d",
					c.SegmentsCreated, c.AttemptsFailed, c.AttemptsResolved)
			}
			if c.ConnectionsAssembled != total.Assembled {
				t.Errorf("ConnectionsAssembled = %d, want SlotResult.Assembled %d", c.ConnectionsAssembled, total.Assembled)
			}
			if c.ConnectionsEstablished != total.Established {
				t.Errorf("ConnectionsEstablished = %d, want SlotResult.Established %d", c.ConnectionsEstablished, total.Established)
			}
			if c.Established != total.Established {
				t.Errorf("Established = %d, want %d", c.Established, total.Established)
			}
			// The motivation fixture is tiny but active: a working pipeline
			// must reserve attempts and resolve swaps somewhere in 20 slots.
			if c.AttemptsResolved == 0 {
				t.Error("no physical attempts observed")
			}
			if alg != sched.E2E && c.SwapsResolved == 0 {
				t.Errorf("%v: no swaps observed over %d slots", alg, slots)
			}
			for ph := sched.Phase(0); ph < sched.NumPhases; ph++ {
				if alg == sched.REPS && ph == sched.PhasePlan {
					continue // REPS plans links at construction, not per slot
				}
				if s := tr.PhaseLatency(ph); s.N == 0 {
					t.Errorf("no %v latency samples", ph)
				}
			}
		})
	}
}

// TestDeterminismWithTracer checks that attaching a tracer does not change
// an engine's randomness consumption: the same seed must yield the same
// result with and without instrumentation.
func TestDeterminismWithTracer(t *testing.T) {
	for _, alg := range sched.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			net, pairs := topo.Motivation()
			run := func(cfg Config) []int {
				eng, err := New(alg, net, pairs, cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				rng := xrand.New(99)
				var out []int
				for s := 0; s < 10; s++ {
					res, err := eng.RunSlot(rng)
					if err != nil {
						t.Fatalf("RunSlot: %v", err)
					}
					out = append(out, res.Established, res.SegmentsCreated, res.Attempts)
				}
				return out
			}
			plain := run(Config{})
			traced := run(Config{Tracer: sched.NewCountingTracer()})
			for i := range plain {
				if plain[i] != traced[i] {
					t.Fatalf("traced run diverged at %d: %v vs %v", i, plain, traced)
				}
			}
		})
	}
}

// TestUnknownAlgorithm ensures the factory rejects schemes it cannot build.
func TestUnknownAlgorithm(t *testing.T) {
	net, pairs := topo.Motivation()
	if _, err := New(sched.Algorithm(42), net, pairs, Config{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := New(sched.SEE, nil, pairs, Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
}
