package engines

import (
	"errors"
	"fmt"

	"see/internal/sched"
)

// Registered reports whether an algorithm has a registered builder.
// Validation layers (experiment.Params.Validate) use it so unknown schemes
// are rejected at the configuration boundary instead of deep in a run.
func Registered(alg sched.Algorithm) bool {
	_, ok := builders[alg]
	return ok
}

var _ sched.Checkpointable = (*Resilient)(nil)

// activeEngine returns the engine currently serving slots (primary wins),
// or nil before the first slot.
func (r *Resilient) activeEngine() sched.Engine {
	if r.primary != nil {
		return r.primary
	}
	return r.fallback
}

// EngineState implements sched.Checkpointable: the ladder's position plus
// the active engine's state. Chaos phase and bank contents live in the
// inner state — primary and fallback share the one injector and the one
// bank, so capturing them through whichever engine is active captures them
// for both.
func (r *Resilient) EngineState() (*sched.EngineState, error) {
	st := &sched.EngineState{
		Algorithm: r.alg,
		Ladder: &sched.LadderState{
			Failures:      r.failures,
			PrimaryBuilt:  r.primary != nil,
			FallbackBuilt: r.fallback != nil,
		},
	}
	if active := r.activeEngine(); active != nil {
		ck, ok := active.(sched.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("engines: %v engine is not checkpointable", active.Algorithm())
		}
		inner, err := ck.EngineState()
		if err != nil {
			return nil, err
		}
		st.Inner = inner
	}
	return st, nil
}

// RestoreEngineState implements sched.Checkpointable: it rebuilds the
// engines the snapshot says existed and restores the shared chaos/bank
// phase through the active one. The primary is rebuilt without the
// wall-clock budget — its deterministic LP construction already succeeded
// once in the original run, and a resume on a slower machine must not
// diverge into the fallback. A snapshot taken mid-ladder (primary still
// failing) restores the failure count, so the resumed run retries the
// budgeted construction exactly as the uninterrupted one would.
func (r *Resilient) RestoreEngineState(st *sched.EngineState) error {
	if err := sched.CheckRestoreAlgorithm(r.alg, st); err != nil {
		return err
	}
	ld := &sched.LadderState{}
	if st != nil {
		if st.Ladder == nil {
			return errors.New("engines: resilient snapshot is missing its ladder state")
		}
		ld = st.Ladder
	}
	r.failures = ld.Failures
	r.lastErr = nil
	r.primary, r.fallback = nil, nil
	if ld.PrimaryBuilt {
		eng, err := NewCtx(nil, r.alg, r.net, r.pairs, r.cfg)
		if err != nil {
			return fmt.Errorf("engines: rebuilding primary: %w", err)
		}
		r.primary = eng
		r.attachBank(eng)
	}
	if ld.FallbackBuilt {
		eng, err := newGreedy(nil, r.net, r.pairs, r.cfg)
		if err != nil {
			return fmt.Errorf("engines: rebuilding fallback: %w", err)
		}
		r.fallback = eng
		r.attachBank(eng)
	}
	active := r.activeEngine()
	if active == nil {
		// Pre-first-slot snapshot: no engine ever ran, so the shared phase
		// state is pristine; reset the injector and bank explicitly.
		if err := r.cfg.Chaos.Restore(nil); err != nil {
			return err
		}
		return r.bank.Restore(nil, nil)
	}
	ck, ok := active.(sched.Checkpointable)
	if !ok {
		return fmt.Errorf("engines: %v engine is not checkpointable", active.Algorithm())
	}
	var inner *sched.EngineState
	if st != nil {
		inner = st.Inner
	}
	return ck.RestoreEngineState(inner)
}
