GO ?= go

.PHONY: all build test vet race verify bench bench-smoke bench-pr4 bench-pr9 profile chaos-smoke serve-smoke fidelity-smoke docs-check cover cover-update fuzz-smoke figures

# bench narrows the benchmark pattern / iteration budget, e.g.
#   make bench BENCH=ColumnGeneration BENCHTIME=5s
BENCH ?= .
BENCHTIME ?= 1s

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the repo's full gate: vet, the docs gate, build, the test
# suite under the race detector (the experiment harness runs trials
# concurrently), the per-package coverage floor, a short fuzz pass over
# every committed fuzz target, a single-iteration pass over the substrate
# benchmarks so perf-path regressions that only bench code exercises are
# caught early, a chaos smoke that drives fault injection and the
# degradation ladder end-to-end through the CLI, a serve smoke that
# kills and resumes a checkpointing service-mode run, and a fidelity
# smoke that pins the floor layer's disabled path to the committed
# golden and drives floors + swap order + carry-aware pricing end-to-end.
verify: vet docs-check build race cover fuzz-smoke bench-smoke chaos-smoke serve-smoke fidelity-smoke

# cover enforces the committed per-package statement-coverage floors in
# COVERAGE.txt (cmd/covercheck); cover-update re-derives the floors after
# an intentional test-surface change.
cover:
	$(GO) test -cover ./... | $(GO) run ./cmd/covercheck

cover-update:
	$(GO) test -cover ./... | $(GO) run ./cmd/covercheck -update

# fuzz-smoke runs each committed fuzz target for a few seconds beyond its
# seed corpus — a quick shake, not a soak (go test accepts one -fuzz
# pattern per package invocation, hence the separate lines).
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) -run='^$$' ./internal/chaos
	$(GO) test -fuzz=FuzzLoadEdgeList -fuzztime=$(FUZZTIME) -run='^$$' ./internal/topo
	$(GO) test -fuzz=FuzzParseFloorSpec -fuzztime=$(FUZZTIME) -run='^$$' ./internal/qnet

# docs-check keeps the documentation honest: gofmt-clean tree, a package
# comment on every internal/* package, and every seesim flag present in
# README.md's flag table (cmd/docscheck).
docs-check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) run ./cmd/docscheck

# chaos-smoke runs seesim with a canned fault spec plus an LP budget tight
# enough to exercise the injector, the JSONL sink and the greedy fallback
# in two slots, then a correlated-fault run (disc cut + brownout + flap,
# fault-aware planning) under -race to shake the new capacity paths.
chaos-smoke:
	$(GO) run ./cmd/seesim -nodes 40 -pairs 6 -trials 1 -slots 2 -alg all \
		-faults 'seed=7;node=3@1-;loss=0.05;decohere=0.01' -slot-budget 5s
	$(GO) run ./cmd/seesim -nodes 40 -pairs 6 -trials 1 -slots 2 -alg see \
		-slot-budget 1ns -trace-jsonl /tmp/see-chaos-smoke.jsonl
	$(GO) run -race ./cmd/seesim -nodes 40 -pairs 6 -trials 1 -slots 6 -workers 4 \
		-alg see,contend,qpass -fault-aware \
		-faults 'seed=7;cut:2500,2500,1500@0-;brown:1,0.4@0-;flap:2,3,0.67@0-;node=!4@4-5'

# serve-smoke is the kill/resume invariant end-to-end through real
# processes: run service mode uninterrupted, run it again with periodic
# checkpoints and a deterministic crash (-die-at, exit 3), resume from
# the surviving checkpoint, and require the concatenated slot lines and
# the final summary to be byte-identical to the uninterrupted run.
SERVE_SMOKE_ARGS = -serve -alg greedy,contend -nodes 40 -pairs 4 -slots 20 -seed 5 \
	-arrivals 'bursty;rate=2;burst-rate=8;switch=0.2;users=40;max-active=30'
serve-smoke:
	@rm -rf /tmp/see-serve-smoke && mkdir -p /tmp/see-serve-smoke/ckpt
	$(GO) build -o /tmp/see-serve-smoke/seesim ./cmd/seesim
	/tmp/see-serve-smoke/seesim $(SERVE_SMOKE_ARGS) > /tmp/see-serve-smoke/full.out
	@# go run would collapse the exit code to 1, so run the built binary:
	@# the crash must exit with the -die-at code 3, not a generic failure.
	/tmp/see-serve-smoke/seesim $(SERVE_SMOKE_ARGS) \
		-ckpt-dir /tmp/see-serve-smoke/ckpt -ckpt-every 7 -die-at 11 \
		> /tmp/see-serve-smoke/crash.out; \
		code=$$?; if [ $$code -ne 3 ]; then \
		echo "serve-smoke: crash run exited $$code, want 3"; exit 1; fi
	/tmp/see-serve-smoke/seesim $(SERVE_SMOKE_ARGS) \
		-ckpt-dir /tmp/see-serve-smoke/ckpt -ckpt-every 7 -resume \
		> /tmp/see-serve-smoke/resume.out
	@grep '^slot' /tmp/see-serve-smoke/full.out > /tmp/see-serve-smoke/full.slots
	@# Checkpoints land after slots 6 and 13; dying after slot 11 leaves
	@# the slot-7 one, so Greedy resumes at slot 7 and Contend (which the
	@# crash run never reached) starts from slot 0. Splicing the crashed
	@# prefix onto the resumed lines must reproduce the full run exactly.
	@{ grep '^slot Greedy' /tmp/see-serve-smoke/crash.out | head -n 7; \
		grep '^slot Greedy' /tmp/see-serve-smoke/resume.out; \
		grep '^slot Contend' /tmp/see-serve-smoke/resume.out; } \
		> /tmp/see-serve-smoke/resumed.slots
	diff /tmp/see-serve-smoke/full.slots /tmp/see-serve-smoke/resumed.slots
	@grep -A4 'service summary' /tmp/see-serve-smoke/full.out > /tmp/see-serve-smoke/full.sum
	@grep -A4 'service summary' /tmp/see-serve-smoke/resume.out > /tmp/see-serve-smoke/resume.sum
	diff /tmp/see-serve-smoke/full.sum /tmp/see-serve-smoke/resume.sum
	@echo "serve-smoke: kill/resume byte-identical"

# fidelity-smoke pins the fidelity layer's two promises through the real
# binary: with no floor flag (and the explicit default swap order) the
# output is byte-identical to the committed pre-floor golden, and a
# floored run with greedy swap order, carry-over aging and carry-aware LP
# pricing completes cleanly end-to-end.
fidelity-smoke:
	@rm -rf /tmp/see-fidelity-smoke && mkdir -p /tmp/see-fidelity-smoke
	$(GO) build -o /tmp/see-fidelity-smoke/seesim ./cmd/seesim
	/tmp/see-fidelity-smoke/seesim -alg see -nodes 30 -pairs 5 -trials 2 -seed 7 -workers 1 \
		> /tmp/see-fidelity-smoke/plain.out
	diff cmd/seesim/testdata/golden/see.txt /tmp/see-fidelity-smoke/plain.out
	/tmp/see-fidelity-smoke/seesim -alg see -nodes 30 -pairs 5 -trials 2 -seed 7 -workers 1 \
		-swap-order path > /tmp/see-fidelity-smoke/knobs.out
	diff /tmp/see-fidelity-smoke/plain.out /tmp/see-fidelity-smoke/knobs.out
	/tmp/see-fidelity-smoke/seesim -alg see,oracle -nodes 40 -pairs 6 -trials 2 -slots 4 -seed 7 \
		-workers 2 -fidelity-floor '0.65;0=0.7' -swap-order greedy \
		-carry -carry-retention 0.9 -carry-min-scale 0.5 -carry-aware-lp > /dev/null
	@echo "fidelity-smoke: floor-disabled output byte-identical to committed golden"

# bench records the run in BENCH_PR2.json next to the committed pre-change
# baseline (BenchmarkColumnGeneration at commit 51e778b, serial kernel:
# 663402285 ns/op) so the speedup claim is reproducible from the repo.
bench:
	$(GO) test -bench='$(BENCH)' -benchmem -benchtime=$(BENCHTIME) -timeout 30m -run='^$$' . | \
		$(GO) run ./cmd/benchjson -out BENCH_PR2.json \
		-note 'column-generation kernel optimization PR; baseline from commit 51e778b' \
		-baseline BenchmarkColumnGeneration=663402285

# bench-smoke executes each substrate benchmark exactly once — a fast
# compile-and-run check, not a measurement — then guards the warm-start
# workload against the committed BENCH_PR9.json record: if warm slots/sec
# drops below 80% of the committed number, the hot path regressed and the
# target fails (cmd/benchjson -check; docs/PROFILING.md is the follow-up).
bench-smoke:
	$(GO) test -bench='ColumnGeneration|LPDenseSolve|YenKShortest' -benchtime=1x -run='^$$' .
	$(GO) test -bench='WorkloadSlotsWarm' -benchmem -benchtime=3x -run='^$$' . | \
		$(GO) run ./cmd/benchjson -check BENCH_PR9.json -metric slots/sec -min-ratio 0.8

# bench-pr4 records the cross-slot carry-over workload benchmarks in
# BENCH_PR4.json; the baseline is BenchmarkWorkloadMemoryless measured on
# the same host, so the delivered/slot gain of the state bank is readable
# from the file alone.
bench-pr4:
	$(GO) test -bench='WorkloadCarryOver|WorkloadMemoryless' -benchmem -benchtime=$(BENCHTIME) -count=3 -timeout 30m -run='^$$' . | \
		$(GO) run ./cmd/benchjson -out BENCH_PR4.json \
		-note 'cross-slot entanglement carry-over PR; memoryless workload is the in-file baseline'

# bench-pr9 records the warm-start workload benchmarks in BENCH_PR9.json:
# the cold variant rebuilds all planning per iteration (the pre-PR-9 cost
# of every scheduler restart), the warm variant replays the memoized
# artifacts, and the per-slot benches carry pre-PR ns/op baselines so the
# scratch-arena gains are readable from the file alone. DESIGN.md §9
# explains how to read and regenerate the record.
bench-pr9:
	$(GO) test -bench='WorkloadSlotsCold|WorkloadSlotsWarm|SlotSEE$$|SlotREPS' -benchmem -benchtime=$(BENCHTIME) -timeout 30m -run='^$$' . | \
		$(GO) run ./cmd/benchjson -out BENCH_PR9.json \
		-note 'warm-start PR; cold workload variant is the in-file baseline, per-slot ns/op baselines from commit a564a5e' \
		-baseline BenchmarkSlotSEE=546727 -baseline BenchmarkSlotREPS=4507219

# profile captures CPU and allocation profiles of the warm workload and
# prints the top functions of each — the entry point of the workflow in
# docs/PROFILING.md. Profiles land in /tmp/see-profile for interactive
# follow-up with `go tool pprof`.
profile:
	@mkdir -p /tmp/see-profile
	$(GO) test -bench='WorkloadSlotsWarm' -benchtime=$(BENCHTIME) -run='^$$' \
		-cpuprofile /tmp/see-profile/cpu.pprof -memprofile /tmp/see-profile/mem.pprof \
		-o /tmp/see-profile/see.test .
	$(GO) tool pprof -top -nodecount=15 /tmp/see-profile/see.test /tmp/see-profile/cpu.pprof
	$(GO) tool pprof -top -nodecount=15 -sample_index=alloc_space /tmp/see-profile/see.test /tmp/see-profile/mem.pprof

figures:
	$(GO) run ./cmd/seefig -fig 3
