GO ?= go

.PHONY: all build test vet race verify bench figures

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the repo's full gate: vet, build, and the test suite under the
# race detector (the experiment harness runs trials concurrently).
verify: vet build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

figures:
	$(GO) run ./cmd/seefig -fig 3
