package see_test

import (
	"fmt"
	"log"
	"math/rand"

	"see"
)

// The basic loop: generate a network, build a scheduler, run time slots.
func ExampleNewScheduler() {
	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = 60
	net, pairs, err := see.GenerateNetwork(cfg, 6, 42)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := see.NewScheduler(see.SEE, net, pairs, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.RunSlot(rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Established >= 0 && len(res.PerPair) == 6)
	// Output: true
}

// The Fig. 2 values are exact.
func ExampleMotivationExample() {
	conv, seg := see.MotivationExample()
	fmt.Printf("conventional %.3f, segmented %.3f\n", conv, seg)
	// Output: conventional 0.729, segmented 1.489
}

// The reference NSFNET topology ships with the library.
func ExampleNSFNETNetwork() {
	net, err := see.NSFNETNetwork(see.DefaultNetworkConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.NumNodes(), net.NumLinks())
	// Output: 14 21
}

// A queued-qubit workload over many slots.
func ExampleRunWorkload() {
	net, pairs := see.MotivationNetwork()
	sched, err := see.NewScheduler(see.SEE, net, pairs, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := see.RunWorkload(sched, len(pairs), see.WorkloadConfig{
		Slots:           20,
		ArrivalsPerPair: 0.5,
		Seed:            3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Arrived == res.Delivered+res.Dropped+res.Backlog)
	// Output: true
}
