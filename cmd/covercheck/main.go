// Command covercheck is the coverage gate wired into `make cover` (and
// through it `make verify`): it reads `go test -cover ./...` output on
// stdin and compares each package's statement coverage against the
// committed floor in COVERAGE.txt, failing on any regression below a
// floor.
//
// Floors are deliberately a couple of points below the measured value so
// routine churn does not trip the gate; a real coverage drop does. Update
// the floors after intentionally growing or shrinking a package's test
// surface:
//
//	go test -cover ./... | go run ./cmd/covercheck -update
//
// which re-derives every floor as the current measurement minus the
// margin. Packages without test files carry no floor and are ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	floorsPath := flag.String("floors", "COVERAGE.txt", "committed per-package coverage floors")
	update := flag.Bool("update", false, "rewrite the floors file from the measured coverage minus margin")
	margin := flag.Float64("margin", 2.0, "percentage points of slack between measurement and floor")
	flag.Parse()

	measured, err := parseCoverOutput(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: no coverage lines on stdin (pipe `go test -cover ./...` into this command)")
		os.Exit(1)
	}

	if *update {
		if err := writeFloors(*floorsPath, measured, *margin); err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(1)
		}
		fmt.Printf("covercheck: wrote %d floors to %s\n", len(measured), *floorsPath)
		return
	}

	floors, err := readFloors(*floorsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
	var problems []string
	for _, pkg := range sortedKeys(floors) {
		floor := floors[pkg]
		got, ok := measured[pkg]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: floor %.1f%% but no coverage measured (tests deleted?)", pkg, floor))
			continue
		}
		if got < floor {
			problems = append(problems, fmt.Sprintf("%s: coverage %.1f%% fell below floor %.1f%%", pkg, got, floor))
		}
	}
	for _, pkg := range sortedKeys(measured) {
		if _, ok := floors[pkg]; !ok {
			problems = append(problems, fmt.Sprintf("%s: has coverage %.1f%% but no committed floor (run covercheck -update)", pkg, measured[pkg]))
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "covercheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("covercheck: %d packages at or above their coverage floors\n", len(floors))
}

// parseCoverOutput extracts per-package statement coverage from `go test
// -cover` output. Packages without test files ("[no test files]") and
// packages reporting "coverage: [no statements]" are skipped.
func parseCoverOutput(f *os.File) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "ok") {
			continue
		}
		i := strings.Index(line, "coverage: ")
		if i < 0 {
			continue
		}
		rest := strings.TrimPrefix(line[i:], "coverage: ")
		pct, _, ok := strings.Cut(rest, "%")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		out[fields[1]] = v
	}
	return out, sc.Err()
}

// readFloors parses the floors file: one "import/path floor%" pair per
// line, '#' comments allowed.
func readFloors(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for n, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"package floor%%\", got %q", path, n+1, line)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "%"), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad floor %q: %v", path, n+1, fields[1], err)
		}
		out[fields[0]] = v
	}
	return out, nil
}

// writeFloors renders the floors file from the measurement, clamping at
// zero so sparsely covered packages keep a meaningful (non-negative)
// floor.
func writeFloors(path string, measured map[string]float64, margin float64) error {
	var b strings.Builder
	b.WriteString("# Per-package statement-coverage floors enforced by `make cover`\n")
	b.WriteString("# (cmd/covercheck). Regenerate after intentional test-surface changes:\n")
	b.WriteString("#   go test -cover ./... | go run ./cmd/covercheck -update\n")
	for _, pkg := range sortedKeys(measured) {
		floor := measured[pkg] - margin
		if floor < 0 {
			floor = 0
		}
		fmt.Fprintf(&b, "%s %.1f%%\n", pkg, floor)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
