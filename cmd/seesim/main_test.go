package main

import "testing"

func TestParseAlgs(t *testing.T) {
	if got, err := parseAlgs("all"); err != nil || len(got) != 3 {
		t.Fatalf("all -> %v, %v", got, err)
	}
	for _, name := range []string{"see", "SEE", "reps", "e2e"} {
		got, err := parseAlgs(name)
		if err != nil || len(got) != 1 {
			t.Fatalf("%s -> %v, %v", name, got, err)
		}
	}
	if _, err := parseAlgs("bogus"); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestParseTraffic(t *testing.T) {
	for _, name := range []string{"uniform", "hotspot", "gravity", "Gravity"} {
		if _, err := parseTraffic(name); err != nil {
			t.Fatalf("%s rejected: %v", name, err)
		}
	}
	if _, err := parseTraffic("nope"); err == nil {
		t.Fatal("bad traffic accepted")
	}
}
