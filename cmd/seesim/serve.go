package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"see"
)

// serveParams carries the parsed service-mode configuration into runServe.
type serveParams struct {
	algs      []see.Algorithm
	cfg       see.NetworkConfig
	pairs     int
	topoName  string
	pattern   see.Traffic
	traffic   string
	slots     int
	seed      int64
	workers   int
	plan      *see.FaultPlan
	budget    time.Duration
	carry     bool
	decohere  int
	trace     bool
	jsonl     *see.JSONLTracer
	arrivals  string
	ckptDir   string
	ckptEvery int
	resume    bool
	dieAt     int
	warm      *see.WarmCache
	floors    *see.FloorSpec
	swapOrder see.SwapOrder
	carryLP   bool
	retention float64
	minScale  float64
}

// errDied is the sentinel the -die-at crash simulation stops a run with.
var errDied = errors.New("seesim: -die-at reached")

// runServe is service mode: one long-lived instance per scheduler, driven
// by an arrival-generated request workload, with optional checkpoint/resume.
// All output is deterministic in the flags, so an interrupted-and-resumed
// run's slot lines can be diffed against an uninterrupted run's.
func runServe(p serveParams, stdout, stderr io.Writer) int {
	if p.resume && p.ckptDir == "" {
		fmt.Fprintln(stderr, "seesim: -resume requires -ckpt-dir")
		return 2
	}
	if p.ckptDir != "" && p.ckptEvery <= 0 {
		fmt.Fprintf(stderr, "seesim: -ckpt-every must be positive, got %d\n", p.ckptEvery)
		return 2
	}
	if p.ckptDir != "" {
		if err := os.MkdirAll(p.ckptDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	net, sdPairs, err := buildInstance(p.topoName, p.cfg, p.pairs, p.pattern, p.seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintf(stdout, "# serve topo=%s traffic=%s pairs=%d slots=%d seed=%d arrivals=%q\n",
		strings.ToLower(p.topoName), strings.ToLower(p.traffic), len(sdPairs), p.slots, p.seed, p.arrivals)

	for _, a := range p.algs {
		if code := p.serveOne(a, net, sdPairs, stdout, stderr); code != 0 {
			return code
		}
	}
	return 0
}

// serveOne runs (or resumes) one scheduler's traffic server to the slot
// horizon.
func (p serveParams) serveOne(a see.Algorithm, net *see.Network, sdPairs []see.SDPair, stdout, stderr io.Writer) int {
	tracer := see.NewCountingTracer()
	ts := []see.Tracer{tracer}
	if p.jsonl != nil {
		ts = append(ts, p.jsonl)
	}
	sc, err := see.NewScheduler(a, net, sdPairs, &see.SchedulerOptions{
		Workers:              p.workers,
		Tracer:               see.MultiTracer(ts...),
		Faults:               p.plan,
		SlotBudget:           p.budget,
		CarryOver:            p.carry,
		DecoherenceSlots:     p.decohere,
		Warm:                 p.warm,
		FidelityFloor:        p.floors,
		SwapOrder:            p.swapOrder,
		CarryAwareLP:         p.carryLP,
		CarryWernerRetention: p.retention,
		CarryMinWernerScale:  p.minScale,
	})
	if err != nil {
		fmt.Fprintf(stderr, "%v: %v\n", a, err)
		return 1
	}
	scfg, err := see.ParseArrivalSpec(p.arrivals)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	scfg.Seed = p.seed
	scfg.Tracer = tracer
	scfg.Warm = p.warm
	srv, err := see.NewTrafficServer(sc, len(sdPairs), scfg)
	if err != nil {
		fmt.Fprintf(stderr, "%v: %v\n", a, err)
		return 1
	}

	ckptPath := ""
	if p.ckptDir != "" {
		ckptPath = filepath.Join(p.ckptDir, strings.ToLower(a.String())+".ckpt")
	}
	if p.resume {
		// A crashed multi-scheduler run may have died before later
		// schedulers ever checkpointed; those start from slot 0.
		if _, err := os.Stat(ckptPath); os.IsNotExist(err) {
			fmt.Fprintf(stdout, "# resume %v: no checkpoint, starting at slot 0\n", a)
		} else if err := srv.ResumeFrom(ckptPath); err != nil {
			fmt.Fprintf(stderr, "%v: resume: %v\n", a, err)
			return 1
		} else {
			fmt.Fprintf(stdout, "# resume %v at slot %d\n", a, srv.Slot())
		}
	}
	if srv.Slot() > p.slots {
		fmt.Fprintf(stderr, "%v: checkpoint is at slot %d, beyond -slots %d\n", a, srv.Slot(), p.slots)
		return 1
	}

	died := false
	err = srv.Run(p.slots-srv.Slot(), func(st *see.ServeSlotStats) error {
		fmt.Fprintf(stdout, "slot %v %d arrived=%d admitted=%d rejected=%d expired=%d served=%d established=%d backlog=%d\n",
			a, st.Slot, st.Arrived, st.Admitted, st.Rejected, st.Expired, st.Served, st.Established, st.Backlog)
		if ckptPath != "" && (st.Slot+1)%p.ckptEvery == 0 && st.Slot+1 < p.slots {
			if err := srv.WriteCheckpoint(ckptPath); err != nil {
				return err
			}
		}
		if p.dieAt >= 0 && st.Slot >= p.dieAt {
			died = true
			return errDied
		}
		return nil
	})
	if died {
		fmt.Fprintf(stderr, "%v: dying after slot %d (-die-at)\n", a, p.dieAt)
		return 3
	}
	if err != nil {
		fmt.Fprintf(stderr, "%v: %v\n", a, err)
		return 1
	}
	if ckptPath != "" {
		if err := srv.WriteCheckpoint(ckptPath); err != nil {
			fmt.Fprintf(stderr, "%v: checkpoint: %v\n", a, err)
			return 1
		}
	}

	reportServe(stdout, a, srv.Report(), p.trace, tracer)
	return 0
}

// reportServe prints one scheduler's service summary: throughput and
// fairness side by side, then the per-class lifecycle.
func reportServe(w io.Writer, a see.Algorithm, r *see.ServeReport, trace bool, tracer *see.CountingTracer) {
	fmt.Fprintf(w, "# %v service summary (%d slots)\n", a, r.Slots)
	fmt.Fprintf(w, "%-7v served=%d/%d throughput=%.3f fairness=%.3f established=%d rejected=%d expired=%d backlog=%d",
		a, r.Served, r.Arrived, r.Throughput, r.Fairness, r.Established, r.Rejected, r.Expired, r.Backlog)
	// Floor rejections print only when any happened, so floor-less service
	// summaries stay byte-identical to the pre-floor format.
	if r.FloorRejected > 0 {
		fmt.Fprintf(w, " floor_rejected=%d", r.FloorRejected)
	}
	fmt.Fprintln(w)
	classes := []string{"gold", "silver", "bronze"}
	for c, name := range classes {
		cr := r.PerClass[c]
		fmt.Fprintf(w, "class %-7s served=%d/%d rate=%.3f expired=%d rejected=%d latency=%.2f\n",
			name, cr.Served, cr.Arrived, cr.ServiceRate, cr.Expired, cr.Rejected, cr.MeanLatency)
	}
	if trace {
		fmt.Fprintf(w, "\n# %v pipeline\n%s\n", a, tracer)
	}
}
