package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./cmd/seesim -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCases pins the canonical stdout of one small, fast configuration
// per engine plus the combined robustness surface (faults + carry +
// incidents). Every case must be deterministic: fixed seed, fixed worker
// count.
var goldenCases = []struct {
	name string
	args []string
}{
	{"see", []string{"-alg", "see", "-nodes", "30", "-pairs", "5", "-trials", "2", "-seed", "7", "-workers", "1"}},
	{"reps", []string{"-alg", "reps", "-nodes", "30", "-pairs", "5", "-trials", "2", "-seed", "7", "-workers", "1"}},
	{"e2e", []string{"-alg", "e2e", "-nodes", "30", "-pairs", "5", "-trials", "2", "-seed", "7", "-workers", "1"}},
	{"greedy", []string{"-alg", "greedy", "-nodes", "30", "-pairs", "5", "-trials", "2", "-seed", "7", "-workers", "1"}},
	{"contend", []string{"-alg", "contend", "-nodes", "30", "-pairs", "5", "-trials", "2", "-seed", "7", "-workers", "1"}},
	{"all", []string{"-alg", "all", "-nodes", "30", "-pairs", "5", "-trials", "2", "-seed", "7", "-workers", "1"}},
	{"faults", []string{"-alg", "greedy,contend", "-nodes", "30", "-pairs", "5", "-trials", "2", "-slots", "4", "-seed", "7", "-workers", "1",
		"-faults", "seed=7;node=2@1-2;loss=0.1"}},
	{"carry", []string{"-alg", "greedy,contend", "-nodes", "30", "-pairs", "5", "-trials", "2", "-slots", "4", "-seed", "7", "-workers", "1",
		"-carry", "-decohere-slots", "2"}},
	{"correlated", []string{"-alg", "see,contend,qpass", "-fault-aware", "-nodes", "30", "-pairs", "5", "-trials", "2", "-slots", "6", "-seed", "7", "-workers", "1",
		"-faults", "seed=7;cut:5000,5000,2500@1-2;brown:1,0.5@0-;flap:2,3,0.67@0-;node=!4@3-4"}},
	{"nsfnet", []string{"-alg", "see", "-topo", "nsfnet", "-pairs", "4", "-trials", "2", "-seed", "7", "-workers", "1"}},
	{"oracle", []string{"-alg", "see,oracle", "-nodes", "30", "-pairs", "5", "-trials", "2", "-seed", "7", "-workers", "1",
		"-fidelity-floor", "0.6;0=0.7"}},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("run exited %d, stderr:\n%s", code, stderr.String())
			}
			if stderr.Len() != 0 {
				t.Errorf("unexpected stderr output:\n%s", stderr.String())
			}
			path := filepath.Join("testdata", "golden", tc.name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got := stdout.String(); got != string(want) {
				t.Errorf("output drifted from %s (run with -update if intended)\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}

// TestRunBadFlags locks the CLI's error behavior: bad values exit
// non-zero (2 for usage errors caught at parse time, 1 for errors caught
// once trials start, like an unknown topology) and report through stderr,
// not stdout.
func TestRunBadFlags(t *testing.T) {
	for _, tc := range []struct {
		args []string
		code int
	}{
		{[]string{"-alg", "nope"}, 2},
		{[]string{"-topo", "torus"}, 1},
		{[]string{"-traffic", "bursty"}, 2},
		{[]string{"-faults", "node=abc"}, 2},
		{[]string{"-not-a-flag"}, 2},
	} {
		args := tc.args
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != tc.code {
			t.Errorf("run(%q) exited %d, want %d", args, code, tc.code)
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%q) wrote to stdout: %q", args, stdout.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("run(%q) reported nothing on stderr", args)
		}
	}
}

// TestGoldenCoversAllEngines keeps the golden set in sync with the
// registry: every algorithm name accepted by -alg must appear in some
// golden case.
func TestGoldenCoversAllEngines(t *testing.T) {
	all, err := parseAlgs("all")
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, tc := range goldenCases {
		joined += strings.Join(tc.args, " ") + "\n"
	}
	for _, a := range all {
		if !strings.Contains(strings.ToLower(joined), strings.ToLower(a.String())) {
			t.Errorf("algorithm %v has no golden case", a)
		}
	}
	for _, name := range []string{"greedy", "contend"} {
		if !strings.Contains(joined, name) {
			t.Errorf("baseline %s has no golden case", name)
		}
	}
}
