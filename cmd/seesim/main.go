// Command seesim runs one simulation configuration and prints per-slot and
// aggregate throughput for the selected scheduler(s).
//
// Usage:
//
//	seesim -nodes 200 -pairs 20 -slots 1 -trials 20 -alg all
//
// Each trial draws a fresh topology and SD pairs from the seed; all
// schedulers see identical instances.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"see"
	"see/internal/metrics"
	"see/internal/xrand"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected: it parses args, runs the
// simulation and writes reports to stdout and diagnostics to stderr,
// returning the process exit code. The golden-file tests drive it directly.
// The code is a named return so deferred cleanup (the JSONL tracer close,
// whose flush can be the first point a disk-full error surfaces) can fail
// the process instead of only logging.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("seesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes      = fs.Int("nodes", 200, "number of quantum nodes")
		pairs      = fs.Int("pairs", 20, "number of SD pairs")
		channels   = fs.Int("channels", 3, "quantum channels per link")
		memory     = fs.Int("memory", 10, "quantum memory per node")
		swap       = fs.Float64("swap", 0.9, "quantum swapping success probability")
		alpha      = fs.Float64("alpha", 2e-4, "attenuation parameter in p = exp(-alpha*l)+delta")
		trials     = fs.Int("trials", 10, "independent trials (topology redrawn each)")
		slots      = fs.Int("slots", 1, "time slots per trial")
		seed       = fs.Int64("seed", 1, "base random seed")
		alg        = fs.String("alg", "all", "scheduler: see, reps, e2e, greedy, contend, qpass, see-aware, contend-aware, a comma-separated list, or all")
		topoName   = fs.String("topo", "waxman", "topology: waxman or nsfnet")
		traffic    = fs.String("traffic", "uniform", "SD pair pattern: uniform, hotspot or gravity")
		trace      = fs.Bool("trace", false, "print per-scheduler pipeline phase counters after the run")
		workers    = fs.Int("workers", 0, "goroutines for LP pricing rounds (0 = GOMAXPROCS, 1 = serial; results are identical at any value)")
		faults     = fs.String("faults", "", "deterministic fault spec, e.g. \"seed=7;node=3@2-5;cut:100,200,50@2-5;brown:4,0.5@1-;flap:2,4,0.5@0-8;loss=0.05\" (! marks an item as unannounced)")
		faultAware = fs.Bool("fault-aware", false, "plan around announced faults: schemes with a fault-aware variant (see, contend) are swapped for it")
		budget     = fs.Duration("slot-budget", 0, "LP solve budget per scheduler; on timeout the slot degrades to the greedy fallback (0 = unbounded)")
		jsonl      = fs.String("trace-jsonl", "", "stream every pipeline event as JSON lines to this file")
		carry      = fs.Bool("carry", false, "carry unconsumed entanglement segments across slots in node memories (cross-slot state bank)")
		decohere   = fs.Int("decohere-slots", 1, "with -carry: slot boundaries a banked segment survives before decohering")
		warmStart  = fs.Bool("warm-start", true, "reuse memoized candidate sets and LP solutions across scheduler rebuilds over the same topology (results are byte-identical either way)")
		floorSpec  = fs.String("fidelity-floor", "", "per-request minimum delivered fidelity, e.g. \"0.8;3=0.95\" (default floor plus pair=floor overrides; empty = no floors, also enables the fidelity report)")
		swapOrder  = fs.String("swap-order", "path", "junction swap sampling order: path (source to destination) or greedy (least reliable junction first)")
		carryLP    = fs.Bool("carry-aware-lp", false, "with -carry: re-price the provisioning LP on slots that withdrew banked segments, so edges covered by carried inventory price cheaper")
		retention  = fs.Float64("carry-retention", 0, "with -carry: per-slot-boundary Werner-parameter retention of banked segments in (0,1); 0 or 1 disables aging")
		minScale   = fs.Float64("carry-min-scale", 0, "with -carry: minimum decayed Werner scale below which a banked segment stops substituting for planned attempts")

		serveMode = fs.Bool("serve", false, "service mode: run one long-lived instance where an arrival process generates per-user requests with QoS classes and deadlines (-trials is ignored)")
		arrivals  = fs.String("arrivals", "poisson;rate=2", "service-mode arrival spec, e.g. \"poisson;rate=3;users=200;mix=0.2/0.3/0.5;deadline=4/8/16;max-active=64\"")
		ckptDir   = fs.String("ckpt-dir", "", "service mode: write per-scheduler checkpoints (plus JSON debug dumps) to this directory")
		ckptEvery = fs.Int("ckpt-every", 100, "service mode: with -ckpt-dir, checkpoint every N slots (a final checkpoint is always written)")
		resume    = fs.Bool("resume", false, "service mode: resume from the checkpoints in -ckpt-dir and run to -slots")
		dieAt     = fs.Int("die-at", -1, "service mode: exit abruptly (code 3) after this slot, skipping the final checkpoint — crash simulation for resume tests (-1 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	algs, err := parseAlgs(*alg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *faultAware {
		algs = faultAwareAlgs(algs)
	}

	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = *nodes
	cfg.Channels = *channels
	cfg.Memory = *memory
	// Flag value 0 is an explicit request (the config's zero value would
	// silently fall back to the paper default).
	cfg.SwapProb = explicitFloat(*swap)
	cfg.Alpha = explicitFloat(*alpha)

	pattern, err := parseTraffic(*traffic)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var plan *see.FaultPlan
	if *faults != "" {
		plan, err = see.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	var floors *see.FloorSpec
	if *floorSpec != "" {
		floors, err = see.ParseFloorSpec(*floorSpec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	order, err := see.ParseSwapOrder(*swapOrder)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Fault injection, slot budgets, carry-over and fidelity floors report
	// through the tracer, so any of those flags implies counters even
	// without -trace.
	countInjected := plan != nil || *budget > 0 || *carry || floors != nil
	var jsonlTracer *see.JSONLTracer
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		jsonlTracer = see.NewJSONLTracer(f)
		defer func() {
			// A buffered trace stream can first surface write errors at
			// the final flush; a silently truncated trace must not exit 0.
			if err := jsonlTracer.Close(); err != nil {
				fmt.Fprintf(stderr, "trace-jsonl: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	// One cache for the whole run: trials redraw topologies so sim mode
	// only pays the (cheap) fingerprint lookups, but service mode and any
	// same-topology rebuild replay their candidate sets and LP solutions.
	var warmCache *see.WarmCache
	if *warmStart {
		warmCache = see.NewWarmCache()
	}

	if *serveMode {
		return runServe(serveParams{
			algs: algs, cfg: cfg, pairs: *pairs, topoName: *topoName,
			pattern: pattern, traffic: *traffic, slots: *slots, seed: *seed,
			workers: *workers, plan: plan, budget: *budget, carry: *carry,
			decohere: *decohere, trace: *trace, jsonl: jsonlTracer,
			arrivals: *arrivals, ckptDir: *ckptDir, ckptEvery: *ckptEvery,
			resume: *resume, dieAt: *dieAt, warm: warmCache,
			floors: floors, swapOrder: order, carryLP: *carryLP,
			retention: *retention, minScale: *minScale,
		}, stdout, stderr)
	}

	totals := make(map[see.Algorithm]float64, len(algs))
	bounds := make(map[see.Algorithm]float64, len(algs))
	tracers := make(map[see.Algorithm]*see.CountingTracer, len(algs))
	fids := make(map[see.Algorithm][]float64, len(algs))
	for _, a := range algs {
		tracers[a] = see.NewCountingTracer()
	}
	slotCount := 0
	for trial := 0; trial < *trials; trial++ {
		trialSeed := *seed + int64(trial)
		net, sdPairs, err := buildInstance(*topoName, cfg, *pairs, pattern, trialSeed)
		if err != nil {
			fmt.Fprintf(stderr, "trial %d: %v\n", trial, err)
			return 1
		}
		for _, a := range algs {
			opts := &see.SchedulerOptions{
				Workers:              *workers,
				Faults:               plan,
				SlotBudget:           *budget,
				CarryOver:            *carry,
				DecoherenceSlots:     *decohere,
				Warm:                 warmCache,
				FidelityFloor:        floors,
				SwapOrder:            order,
				CarryAwareLP:         *carryLP,
				CarryWernerRetention: *retention,
				CarryMinWernerScale:  *minScale,
			}
			var ts []see.Tracer
			if *trace || countInjected {
				ts = append(ts, tracers[a])
			}
			if jsonlTracer != nil {
				ts = append(ts, jsonlTracer)
			}
			if len(ts) > 0 {
				opts.Tracer = see.MultiTracer(ts...)
			}
			sc, err := see.NewScheduler(a, net, sdPairs, opts)
			if err != nil {
				fmt.Fprintf(stderr, "trial %d (%v): %v\n", trial, a, err)
				return 1
			}
			rng := xrand.ForTrial(trialSeed, 1000)
			for s := 0; s < *slots; s++ {
				res, err := sc.RunSlot(rng)
				if err != nil {
					fmt.Fprintf(stderr, "trial %d (%v): %v\n", trial, a, err)
					return 1
				}
				totals[a] += float64(res.Established)
				if floors != nil {
					for _, c := range res.Connections {
						fids[a] = append(fids[a], c.Fidelity)
					}
				}
			}
			// Read the bound after the slots: under -slot-budget the LP is
			// built lazily inside the first slot, so the bound is 0 before.
			bounds[a] += sc.UpperBound()
		}
		slotCount += *slots
	}

	report(stdout, reportParams{
		algs: algs, nodes: *nodes, pairs: *pairs, channels: *channels,
		memory: *memory, swap: *swap, alpha: *alpha, trials: *trials,
		slots: *slots, slotCount: slotCount, topoName: *topoName,
		traffic: *traffic, trace: *trace, countInjected: countInjected,
		faults: *faults, budget: *budget, carry: *carry, decohere: *decohere,
		totals: totals, bounds: bounds, tracers: tracers,
		floorSpec: *floorSpec, swapOrder: order, fids: fids,
	})
	return 0
}

// reportParams carries the run configuration and results into report.
type reportParams struct {
	algs                           []see.Algorithm
	nodes, pairs, channels, memory int
	swap, alpha                    float64
	trials, slots, slotCount       int
	topoName, traffic              string
	trace, countInjected, carry    bool
	faults                         string
	budget                         time.Duration
	decohere                       int
	totals, bounds                 map[see.Algorithm]float64
	tracers                        map[see.Algorithm]*see.CountingTracer
	// floorSpec is the raw -fidelity-floor flag; non-empty enables the
	// fidelity section (even for an all-zero spec, which reports delivered
	// fidelity without enforcing anything).
	floorSpec string
	swapOrder see.SwapOrder
	fids      map[see.Algorithm][]float64
}

// report prints the run summary: the configuration header, the throughput
// table, and — when tracing or robustness features are active — the
// pipeline counters and incident lines.
func report(w io.Writer, p reportParams) {
	fmt.Fprintf(w, "# topo=%s traffic=%s, %d SD pairs, %d channels, %d memory, q=%.2f, alpha=%.1e\n",
		strings.ToLower(p.topoName), strings.ToLower(p.traffic), p.pairs, p.channels, p.memory, p.swap, p.alpha)
	if strings.EqualFold(p.topoName, "waxman") {
		fmt.Fprintf(w, "# %d nodes\n", p.nodes)
	}
	fmt.Fprintf(w, "# %d trials x %d slots\n", p.trials, p.slots)
	fmt.Fprintf(w, "%-7s %-18s %-14s\n", "alg", "throughput(qbps)", "LP bound/slot")
	for _, a := range p.algs {
		fmt.Fprintf(w, "%-7s %-18.3f %-14.3f\n",
			a, p.totals[a]/float64(p.slotCount), p.bounds[a]/float64(p.trials))
	}
	// With the oracle in the selection, quote every real scheme's
	// throughput as a fraction of the network's expected entanglement
	// capacity (the oracle's per-trial UpperBound; see internal/oracle).
	if capacity, ok := p.bounds[see.Oracle]; ok && capacity > 0 && p.slotCount > 0 {
		perSlot := capacity / float64(p.trials)
		fmt.Fprintf(w, "\n# capacity (oracle expected bound = %.3f/slot)\n", perSlot)
		for _, a := range p.algs {
			if a == see.Oracle {
				continue
			}
			fmt.Fprintf(w, "%-7s %5.1f%% of capacity\n", a, 100*p.totals[a]/float64(p.slotCount)/perSlot)
		}
	}
	// The fidelity section follows the -fidelity-floor flag, not the
	// floors' strength: "-fidelity-floor 0" reports delivered fidelity
	// while enforcing nothing.
	if p.floorSpec != "" {
		fmt.Fprintf(w, "\n# fidelity (floor=%q swap-order=%s)\n", p.floorSpec, p.swapOrder)
		for _, a := range p.algs {
			if a == see.Oracle {
				continue
			}
			s := metrics.Summarize(p.fids[a])
			if s.N == 0 {
				fmt.Fprintf(w, "%-7s delivered=0\n", a)
				continue
			}
			fmt.Fprintf(w, "%-7s delivered=%d p50=%.4f mean=%.4f min=%.4f\n",
				a, s.N, s.MedianApprox, s.Mean, s.Min)
		}
	}
	if p.trace {
		for _, a := range p.algs {
			fmt.Fprintf(w, "\n# %v pipeline\n%s\n", a, p.tracers[a])
		}
	}
	if p.countInjected {
		// The bank incident kinds print only under -carry so fault-only
		// runs keep bank-free incident lines.
		if p.carry {
			fmt.Fprintf(w, "\n# incidents (faults=%q slot-budget=%v carry=%d-slot)\n", p.faults, p.budget, p.decohere)
		} else {
			fmt.Fprintf(w, "\n# incidents (faults=%q slot-budget=%v)\n", p.faults, p.budget)
		}
		for _, a := range p.algs {
			c := p.tracers[a].Counts()
			fmt.Fprintf(w, "%-7v", a)
			for k := see.Incident(0); k < see.Incident(len(c.Incidents)); k++ {
				if !p.carry && isBankIncident(k) {
					continue
				}
				if p.floorSpec == "" && isFloorIncident(k) {
					continue
				}
				fmt.Fprintf(w, " %s=%d", k, c.IncidentCount(k))
			}
			fmt.Fprintln(w)
		}
	}
}

// isBankIncident reports whether the kind fires only with the carry-over
// bank enabled (those lines are suppressed in bank-less runs).
func isBankIncident(k see.Incident) bool {
	return k == see.IncidentBankWithdraw || k == see.IncidentBankDeposit || k == see.IncidentBankDecohered
}

// isFloorIncident reports whether the kind fires only with fidelity floors
// configured (suppressed in floor-less runs, like the bank kinds).
func isFloorIncident(k see.Incident) bool {
	return k == see.IncidentFloorReject
}

// explicitFloat maps a flag value of 0 to see.ExplicitZero so that
// "-swap 0" and "-alpha 0" override the paper default instead of
// silently re-selecting it.
func explicitFloat(v float64) float64 {
	if v == 0 {
		return see.ExplicitZero
	}
	return v
}

// buildInstance draws one trial's topology and demand set.
func buildInstance(topoName string, cfg see.NetworkConfig, pairs int, pattern see.Traffic, seed int64) (*see.Network, []see.SDPair, error) {
	switch strings.ToLower(topoName) {
	case "waxman":
		if pattern == see.TrafficUniform {
			return see.GenerateNetwork(cfg, pairs, seed)
		}
		net, _, err := see.GenerateNetwork(cfg, 0, seed)
		if err != nil {
			return nil, nil, err
		}
		return net, see.ChoosePairsWithTraffic(net, pairs, pattern, seed+1), nil
	case "nsfnet":
		net, err := see.NSFNETNetwork(cfg, seed)
		if err != nil {
			return nil, nil, err
		}
		return net, see.ChoosePairsWithTraffic(net, pairs, pattern, seed+1), nil
	default:
		return nil, nil, fmt.Errorf("seesim: unknown -topo %q (want waxman or nsfnet)", topoName)
	}
}

func parseTraffic(s string) (see.Traffic, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return see.TrafficUniform, nil
	case "hotspot":
		return see.TrafficHotspot, nil
	case "gravity":
		return see.TrafficGravity, nil
	default:
		return 0, fmt.Errorf("seesim: unknown -traffic %q (want uniform, hotspot or gravity)", s)
	}
}

// faultAwareAlgs swaps every scheme for its fault-aware variant where one
// exists (see -> see-aware, contend -> contend-aware; everything else is
// kept as-is), deduplicating in case the selection already named the
// variant.
func faultAwareAlgs(algs []see.Algorithm) []see.Algorithm {
	out := make([]see.Algorithm, 0, len(algs))
	seen := make(map[see.Algorithm]bool, len(algs))
	for _, a := range algs {
		if v, ok := a.FaultAwareVariant(); ok {
			a = v
		}
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// parseAlgs accepts "all", one scheme name, or a comma-separated list;
// names are resolved by the scheduler layer itself, so a new scheme needs
// no change here.
func parseAlgs(s string) ([]see.Algorithm, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return append([]see.Algorithm(nil), see.Algorithms...), nil
	}
	parts := strings.Split(s, ",")
	algs := make([]see.Algorithm, 0, len(parts))
	for _, part := range parts {
		a, err := see.ParseAlgorithm(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("seesim: -alg %q: %w; also accepted: a comma-separated list, or \"all\"", s, err)
		}
		algs = append(algs, a)
	}
	return algs, nil
}
