// Command seesim runs one simulation configuration and prints per-slot and
// aggregate throughput for the selected scheduler(s).
//
// Usage:
//
//	seesim -nodes 200 -pairs 20 -slots 1 -trials 20 -alg all
//
// Each trial draws a fresh topology and SD pairs from the seed; all
// schedulers see identical instances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"see"
	"see/internal/xrand"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 200, "number of quantum nodes")
		pairs    = flag.Int("pairs", 20, "number of SD pairs")
		channels = flag.Int("channels", 3, "quantum channels per link")
		memory   = flag.Int("memory", 10, "quantum memory per node")
		swap     = flag.Float64("swap", 0.9, "quantum swapping success probability")
		alpha    = flag.Float64("alpha", 2e-4, "attenuation parameter in p = exp(-alpha*l)+delta")
		trials   = flag.Int("trials", 10, "independent trials (topology redrawn each)")
		slots    = flag.Int("slots", 1, "time slots per trial")
		seed     = flag.Int64("seed", 1, "base random seed")
		alg      = flag.String("alg", "all", "scheduler: see, reps, e2e, a comma-separated list, or all")
		topoName = flag.String("topo", "waxman", "topology: waxman or nsfnet")
		traffic  = flag.String("traffic", "uniform", "SD pair pattern: uniform, hotspot or gravity")
		trace    = flag.Bool("trace", false, "print per-scheduler pipeline phase counters after the run")
		workers  = flag.Int("workers", 0, "goroutines for LP pricing rounds (0 = GOMAXPROCS, 1 = serial; results are identical at any value)")
		faults   = flag.String("faults", "", "deterministic fault spec, e.g. \"seed=7;node=3@2-5;link=10@1-;loss=0.05;decohere=0.02\"")
		budget   = flag.Duration("slot-budget", 0, "LP solve budget per scheduler; on timeout the slot degrades to the greedy fallback (0 = unbounded)")
		jsonl    = flag.String("trace-jsonl", "", "stream every pipeline event as JSON lines to this file")
		carry    = flag.Bool("carry", false, "carry unconsumed entanglement segments across slots in node memories (cross-slot state bank)")
		decohere = flag.Int("decohere-slots", 1, "with -carry: slot boundaries a banked segment survives before decohering")
	)
	flag.Parse()

	algs, err := parseAlgs(*alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = *nodes
	cfg.Channels = *channels
	cfg.Memory = *memory
	// Flag value 0 is an explicit request (the config's zero value would
	// silently fall back to the paper default).
	cfg.SwapProb = explicitFloat(*swap)
	cfg.Alpha = explicitFloat(*alpha)

	pattern, err := parseTraffic(*traffic)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var plan *see.FaultPlan
	if *faults != "" {
		plan, err = see.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// Fault injection, slot budgets and carry-over report through the
	// tracer, so any of those flags implies counters even without -trace.
	countInjected := plan != nil || *budget > 0 || *carry
	var jsonlTracer *see.JSONLTracer
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		jsonlTracer = see.NewJSONLTracer(f)
		defer func() {
			if err := jsonlTracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace-jsonl: %v\n", err)
			}
		}()
	}

	totals := make(map[see.Algorithm]float64, len(algs))
	bounds := make(map[see.Algorithm]float64, len(algs))
	tracers := make(map[see.Algorithm]*see.CountingTracer, len(algs))
	for _, a := range algs {
		tracers[a] = see.NewCountingTracer()
	}
	slotCount := 0
	for trial := 0; trial < *trials; trial++ {
		trialSeed := *seed + int64(trial)
		net, sdPairs, err := buildInstance(*topoName, cfg, *pairs, pattern, trialSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trial %d: %v\n", trial, err)
			os.Exit(1)
		}
		for _, a := range algs {
			opts := &see.SchedulerOptions{
				Workers:          *workers,
				Faults:           plan,
				SlotBudget:       *budget,
				CarryOver:        *carry,
				DecoherenceSlots: *decohere,
			}
			var ts []see.Tracer
			if *trace || countInjected {
				ts = append(ts, tracers[a])
			}
			if jsonlTracer != nil {
				ts = append(ts, jsonlTracer)
			}
			if len(ts) > 0 {
				opts.Tracer = see.MultiTracer(ts...)
			}
			sc, err := see.NewScheduler(a, net, sdPairs, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trial %d (%v): %v\n", trial, a, err)
				os.Exit(1)
			}
			rng := xrand.ForTrial(trialSeed, 1000)
			for s := 0; s < *slots; s++ {
				res, err := sc.RunSlot(rng)
				if err != nil {
					fmt.Fprintf(os.Stderr, "trial %d (%v): %v\n", trial, a, err)
					os.Exit(1)
				}
				totals[a] += float64(res.Established)
			}
			// Read the bound after the slots: under -slot-budget the LP is
			// built lazily inside the first slot, so the bound is 0 before.
			bounds[a] += sc.UpperBound()
		}
		slotCount += *slots
	}

	fmt.Printf("# topo=%s traffic=%s, %d SD pairs, %d channels, %d memory, q=%.2f, alpha=%.1e\n",
		strings.ToLower(*topoName), strings.ToLower(*traffic), *pairs, *channels, *memory, *swap, *alpha)
	if strings.EqualFold(*topoName, "waxman") {
		fmt.Printf("# %d nodes\n", *nodes)
	}
	fmt.Printf("# %d trials x %d slots\n", *trials, *slots)
	fmt.Printf("%-6s %-18s %-14s\n", "alg", "throughput(qbps)", "LP bound/slot")
	for _, a := range algs {
		fmt.Printf("%-6s %-18.3f %-14.3f\n",
			a, totals[a]/float64(slotCount), bounds[a]/float64(*trials))
	}
	if *trace {
		for _, a := range algs {
			fmt.Printf("\n# %v pipeline\n%s\n", a, tracers[a])
		}
	}
	if countInjected {
		// The bank incident kinds print only under -carry so fault-only
		// runs keep their exact pre-carry output.
		if *carry {
			fmt.Printf("\n# incidents (faults=%q slot-budget=%v carry=%d-slot)\n", *faults, *budget, *decohere)
		} else {
			fmt.Printf("\n# incidents (faults=%q slot-budget=%v)\n", *faults, *budget)
		}
		for _, a := range algs {
			c := tracers[a].Counts()
			fmt.Printf("%-6v", a)
			for k := see.Incident(0); k < see.Incident(len(c.Incidents)); k++ {
				if !*carry && k >= see.IncidentBankWithdraw {
					continue
				}
				fmt.Printf(" %s=%d", k, c.IncidentCount(k))
			}
			fmt.Println()
		}
	}
}

// explicitFloat maps a flag value of 0 to see.ExplicitZero so that
// "-swap 0" and "-alpha 0" override the paper default instead of
// silently re-selecting it.
func explicitFloat(v float64) float64 {
	if v == 0 {
		return see.ExplicitZero
	}
	return v
}

// buildInstance draws one trial's topology and demand set.
func buildInstance(topoName string, cfg see.NetworkConfig, pairs int, pattern see.Traffic, seed int64) (*see.Network, []see.SDPair, error) {
	switch strings.ToLower(topoName) {
	case "waxman":
		if pattern == see.TrafficUniform {
			return see.GenerateNetwork(cfg, pairs, seed)
		}
		net, _, err := see.GenerateNetwork(cfg, 0, seed)
		if err != nil {
			return nil, nil, err
		}
		return net, see.ChoosePairsWithTraffic(net, pairs, pattern, seed+1), nil
	case "nsfnet":
		net, err := see.NSFNETNetwork(cfg, seed)
		if err != nil {
			return nil, nil, err
		}
		return net, see.ChoosePairsWithTraffic(net, pairs, pattern, seed+1), nil
	default:
		return nil, nil, fmt.Errorf("seesim: unknown -topo %q (want waxman or nsfnet)", topoName)
	}
}

func parseTraffic(s string) (see.Traffic, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return see.TrafficUniform, nil
	case "hotspot":
		return see.TrafficHotspot, nil
	case "gravity":
		return see.TrafficGravity, nil
	default:
		return 0, fmt.Errorf("seesim: unknown -traffic %q (want uniform, hotspot or gravity)", s)
	}
}

// parseAlgs accepts "all", one scheme name, or a comma-separated list;
// names are resolved by the scheduler layer itself, so a new scheme needs
// no change here.
func parseAlgs(s string) ([]see.Algorithm, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return append([]see.Algorithm(nil), see.Algorithms...), nil
	}
	parts := strings.Split(s, ",")
	algs := make([]see.Algorithm, 0, len(parts))
	for _, part := range parts {
		a, err := see.ParseAlgorithm(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("seesim: -alg %q: %w; also accepted: a comma-separated list, or \"all\"", s, err)
		}
		algs = append(algs, a)
	}
	return algs, nil
}
